/**
 * @file
 * Ablations of the design choices and extensions DESIGN.md calls out,
 * beyond the paper's main figures:
 *
 *  (a) Adaptive semantic pruning (Sec. VII-D future work): fixed
 *      top-k schedule vs top-p and attention-threshold selection —
 *      accuracy, sparsity, and the run-to-run retention variation
 *      the paper warns about.
 *  (b) Matcher parallelism in the K < 256 corner (Sec. VI-A): a
 *      single matcher approaches the critical path on short-K GEMMs;
 *      parallel matchers (enabled by the conflict-free layout)
 *      restore full overlap.
 *  (c) Weight-traffic sensitivity: how the speedup claim depends on
 *      the input re-read amplification (output-buffer capacity).
 */

#include <cmath>

#include "bench_util.h"

#include "eval/report.h"
#include "sim/systolic.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 6);
    benchBanner("Ablations: adaptive SEC, matcher parallelism, "
                "buffer sensitivity", bo);

    // One grid for every functional measurement: the five SEC
    // selection rules of (a) plus the Focus trace that (c) sweeps.
    ExperimentGrid grid(benchEvalOptions(bo));

    std::vector<std::pair<std::string, size_t>> rule_ids;
    auto add_rule = [&](const char *name, const MethodConfig &m) {
        ExperimentCell cell{"Llava-Vid", "VideoMME", m};
        cell.simulate = false;
        cell.trace_sparsity = true;
        cell.tag = name;
        rule_ids.emplace_back(name, grid.add(cell));
    };

    add_rule("top-k (Tbl. I)", MethodConfig::focusFull());
    for (double p : {0.85, 0.92, 0.97}) {
        MethodConfig m = MethodConfig::focusFull();
        m.focus.sec.select = SecSelect::TopP;
        m.focus.sec.top_p = p;
        char name[32];
        std::snprintf(name, sizeof(name), "top-p %.2f", p);
        add_rule(name, m);
    }
    {
        MethodConfig m = MethodConfig::focusFull();
        m.focus.sec.select = SecSelect::Threshold;
        m.focus.sec.threshold = 0.05;
        add_rule("threshold 0.05", m);
    }

    ExperimentCell trace_cell{"Llava-Vid", "VideoMME",
                              MethodConfig::focusFull(),
                              AccelConfig::focus()};
    trace_cell.simulate = false;
    trace_cell.keep_trace = true;
    const size_t trace_id = grid.add(trace_cell);

    const std::vector<ExperimentResult> res = grid.run();
    const Evaluator &ev = grid.evaluator("Llava-Vid", "VideoMME");

    // ------------------------------------------------------------
    // (a) adaptive semantic pruning
    // ------------------------------------------------------------
    {
        std::printf("--- (a) SEC selection rule ---\n");
        TextTable t({"Rule", "Sparsity(%)", "Accuracy(%)",
                     "FinalKeep(mean)", "FinalKeep(std)"});

        for (const auto &[name, id] : rule_ids) {
            const ExperimentResult &r = res[id];
            // Per-sample variation of the final retained fraction.
            double mean = 0.0, sq = 0.0;
            for (int s = 0; s < bo.samples; ++s) {
                const VideoSample sample = ev.generator().sample(
                    static_cast<uint64_t>(s));
                const ForwardResult fr = ev.model().forward(
                    sample, r.cell.method, ev.generator().bank());
                const double keep =
                    static_cast<double>(fr.layers.back().visual_out) /
                    static_cast<double>(fr.visual_original);
                mean += keep;
                sq += keep * keep;
            }
            mean /= bo.samples;
            const double var =
                std::max(0.0, sq / bo.samples - mean * mean);
            t.addRow({name, fmtPct(r.trace_sparsity),
                      fmtPct(r.eval.accuracy), fmtF(mean, 3),
                      fmtF(std::sqrt(var), 3)});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Adaptive rules trade the fixed schedule's "
                    "predictability for input-dependent retention "
                    "(non-zero FinalKeep std), the paper's stated "
                    "caveat.\n\n");
    }

    // ------------------------------------------------------------
    // (b) matcher parallelism in the K < 256 corner
    // ------------------------------------------------------------
    {
        std::printf("--- (b) similarity matchers vs K ---\n");
        TextTable t({"K", "Matchers", "MatcherStall(cyc)",
                     "TileCycles"});
        for (int64_t k : {3584, 256, 128, 64}) {
            for (int matchers : {1, 4}) {
                AccelConfig cfg = AccelConfig::focus();
                cfg.sic_matchers = matchers;
                FracSampler psi(nullptr, 1.0);
                const GemmTiming gt =
                    timeGemm(cfg, 1024, k, 32, psi, false, true);
                t.addRow({std::to_string(k),
                          std::to_string(matchers),
                          std::to_string(gt.stall_matcher),
                          std::to_string(gt.cycles)});
            }
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Matching the paper's Sec. VI-A analysis: the "
                    "matcher only approaches the critical path for "
                    "K < 256, and parallel matchers (conflict-free "
                    "banking) remove the stall.\n\n");
    }

    // ------------------------------------------------------------
    // (c) output-buffer capacity sensitivity
    // ------------------------------------------------------------
    {
        std::printf("--- (c) output-buffer capacity ---\n");
        const WorkloadTrace &focus_tr = res[trace_id].trace;
        const WorkloadTrace dense_tr =
            buildDenseTrace(ev.modelProfile(), ev.datasetProfile());
        TextTable t({"OutBuf(KB)", "Speedup", "DRAM(GB)"});
        for (int64_t kb : {128, 256, 512, 1024, 2048}) {
            AccelConfig cfg = AccelConfig::focus();
            cfg.output_buffer = kb * 1024;
            AccelConfig sa_cfg = AccelConfig::systolicArray();
            sa_cfg.output_buffer = kb * 1024;
            const RunMetrics sa =
                simulateAccelerator(sa_cfg, dense_tr);
            const RunMetrics fo = simulateAccelerator(cfg, focus_tr);
            t.addRow({std::to_string(kb),
                      fmtX(static_cast<double>(sa.cycles) /
                           fo.cycles),
                      fmtF(static_cast<double>(fo.dramTotalBytes()) /
                           1e9, 1)});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Focus's input compression also shrinks the "
                    "re-read traffic that smaller output buffers "
                    "amplify, so the speedup is robust to the buffer "
                    "budget.\n");
    }
    return 0;
}
