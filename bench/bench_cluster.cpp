/**
 * @file
 * Cluster-scale serving benchmark: replica scaling, routing policies,
 * overload shedding, tensor-parallel splits and continuous batching
 * over one large open-loop arrival trace.
 *
 * One ServingSimulator calibration (and its composition cache) backs
 * every cluster configuration, so the whole sweep costs one
 * functional pass plus the incremental accelerator simulations.  The
 * headline table replays the standard mix across 1 -> 64 replicas
 * with consistent-hash routing; satellite tables isolate routing
 * policy, admission shedding, tensor parallelism and the
 * continuous-batching knee at a fixed fleet size.  Latencies are
 * simulated accelerator seconds at full paper scale, not wall-clock.
 *
 * Usage: bench_cluster [samples] [--threads=N] [--batch=N]
 *                      [--arrival-rate=R] [--replicas=N]
 *                      [--requests=N]
 * Defaults: batch 8, arrival rate 0.25 req/s, 256 requests, sweep up
 * to 64 replicas, seed 42.  Output is deterministic in the seed at
 * every thread count.
 */

#include "bench_util.h"

#include "eval/report.h"
#include "serve/cluster.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 1);
    benchBanner("Cluster serving: sharded replicas, hash routing, "
                "overload shedding", bo);

    const int max_batch = bo.batch > 0 ? bo.batch : 8;
    // ~7 engines' worth of offered load (mix-weighted batch-of-1
    // service is ~27 s): one replica drowns, the sweep's top end
    // drains the queue — the full overload-to-headroom arc.
    const double rate = bo.arrival_rate > 0.0 ? bo.arrival_rate : 0.25;
    // 1024 requests keep the top of the replica sweep fed: at 64
    // replicas every replica still sees ~16 requests (256 left the
    // 32- and 64-replica rows key-starved, each replica batching 4
    // near-simultaneous arrivals and idling).
    const int num_requests = bo.requests > 0 ? bo.requests : 1024;
    const int max_replicas = bo.replicas > 0 ? bo.replicas : 64;

    QueueConfig queue;
    queue.process = ArrivalProcess::OpenPoisson;
    queue.arrival_rate_rps = rate;
    queue.num_requests = num_requests;
    queue.seed = 42;
    queue.mix = standardServingMix();

    std::printf("mix: %zu classes, %d requests, open-loop %.3f "
                "req/s, max batch %d, hash ring %d vnodes\n",
                queue.mix.size(), num_requests, rate, max_batch,
                HashRing::kDefaultVnodes);
    std::printf("(latencies are simulated accelerator seconds on "
                "the %s config)\n\n",
                AccelConfig::focus().name.c_str());

    ServingSimulator base(queue, AccelConfig::focus(),
                          benchEvalOptions(bo));
    BenchRecorder rec("cluster", bo);

    SchedulerConfig sched;
    sched.policy = BatchPolicy::Timeout;
    sched.max_batch = max_batch;
    sched.timeout_s = 120.0;

    // ---- replica scaling ----
    TextTable scale({"Replicas", "Imbal", "Occup", "Req/min",
                     "p50(s)", "p95(s)", "p99(s)", "SLO",
                     "Makespan(s)"});
    for (int replicas = 1; replicas <= max_replicas; replicas *= 2) {
        ClusterConfig cfg;
        cfg.replicas = replicas;
        const ClusterReport rep =
            ClusterSimulator(base, cfg).run(sched);
        const ServingReport &m = rep.merged;
        scale.addRow({std::to_string(replicas),
                      fmtF(rep.load_imbalance, 2),
                      fmtPct(m.mean_occupancy),
                      fmtF(m.throughput_rps * 60.0, 3),
                      fmtF(m.latency.p50, 1), fmtF(m.latency.p95, 1),
                      fmtF(m.latency.p99, 1), fmtPct(m.slo_attainment),
                      fmtF(m.makespan_s, 1)});
        const std::string tag = "r" + std::to_string(replicas);
        rec.metric(tag + "_throughput_rps", m.throughput_rps);
        rec.metric(tag + "_p50_s", m.latency.p50);
        rec.metric(tag + "_p95_s", m.latency.p95);
        rec.metric(tag + "_p99_s", m.latency.p99);
        rec.metric(tag + "_slo", m.slo_attainment);
        rec.metric(tag + "_makespan_s", m.makespan_s);
    }
    std::printf("replica scaling (hash routing, no shedding):\n%s\n",
                scale.render().c_str());

    const int fixed_fleet = std::min(8, max_replicas);

    // ---- routing policy ----
    TextTable routing({"Routing", "Imbal", "p95(s)", "p99(s)", "SLO"});
    for (const RoutingPolicy policy :
         {RoutingPolicy::HashRing, RoutingPolicy::RoundRobin}) {
        ClusterConfig cfg;
        cfg.replicas = fixed_fleet;
        cfg.routing = policy;
        const ClusterReport rep =
            ClusterSimulator(base, cfg).run(sched);
        routing.addRow({routingPolicyName(policy),
                        fmtF(rep.load_imbalance, 2),
                        fmtF(rep.merged.latency.p95, 1),
                        fmtF(rep.merged.latency.p99, 1),
                        fmtPct(rep.merged.slo_attainment)});
        rec.metric(std::string(routingPolicyName(policy)) +
                       "_imbalance",
                   rep.load_imbalance);
    }
    std::printf("routing policy at %d replicas:\n%s\n", fixed_fleet,
                routing.render().c_str());

    // ---- overload shedding ----
    // Half the fleet for the same offered load: sustained overload.
    const int shed_fleet = std::max(1, fixed_fleet / 2);
    TextTable shedding({"Backlog(s)", "Shed", "Rate", "p95(s)",
                        "p99(s)", "SLO"});
    for (const double backlog : {0.0, 480.0, 120.0}) {
        ClusterConfig cfg;
        cfg.replicas = shed_fleet;
        cfg.shed_backlog_s = backlog;
        const ClusterReport rep =
            ClusterSimulator(base, cfg).run(sched);
        shedding.addRow(
            {backlog > 0.0 ? fmtF(backlog, 0) : "off",
             std::to_string(rep.shed), fmtPct(rep.shed_rate),
             fmtF(rep.merged.latency.p95, 1),
             fmtF(rep.merged.latency.p99, 1),
             fmtPct(rep.merged.slo_attainment)});
        const std::string tag =
            "shed" + std::to_string(static_cast<int>(backlog));
        rec.metric(tag + "_rate", rep.shed_rate);
        rec.metric(tag + "_p99_s", rep.merged.latency.p99);
    }
    std::printf("admission shedding at %d replicas (backlog bound "
                "on estimated queued work):\n%s\n",
                shed_fleet, shedding.render().c_str());

    // ---- tensor parallelism ----
    TextTable tensor({"TP", "Makespan(s)", "p95(s)", "SLO",
                      "Interconnect(GB)"});
    for (const int tp : {1, 2, 4}) {
        ClusterConfig cfg;
        cfg.replicas = shed_fleet;
        cfg.tensor_parallel = tp;
        const ClusterReport rep =
            ClusterSimulator(base, cfg).run(sched);
        tensor.addRow(
            {std::to_string(tp), fmtF(rep.merged.makespan_s, 1),
             fmtF(rep.merged.latency.p95, 1),
             fmtPct(rep.merged.slo_attainment),
             fmtF(static_cast<double>(rep.interconnect_bytes) / 1e9,
                  2)});
        const std::string tag = "tp" + std::to_string(tp);
        rec.metric(tag + "_makespan_s", rep.merged.makespan_s);
        rec.metric(tag + "_interconnect_gb",
                   static_cast<double>(rep.interconnect_bytes) / 1e9);
    }
    std::printf("tensor-parallel shards per replica at %d replicas "
                "(ring all-reduce per layer):\n%s\n",
                shed_fleet, tensor.render().c_str());

    // ---- continuous batching ----
    TextTable cont({"Theta", "Makespan(s)", "p95(s)", "SLO"});
    for (const double theta : {0.0, 0.25, 0.5}) {
        ClusterConfig cfg;
        cfg.replicas = shed_fleet;
        cfg.continuous_theta = theta;
        const ClusterReport rep =
            ClusterSimulator(base, cfg).run(sched);
        cont.addRow({theta > 0.0 ? fmtF(theta, 2) : "serial",
                     fmtF(rep.merged.makespan_s, 1),
                     fmtF(rep.merged.latency.p95, 1),
                     fmtPct(rep.merged.slo_attainment)});
        const std::string tag =
            "theta" + std::to_string(static_cast<int>(theta * 100));
        rec.metric(tag + "_makespan_s", rep.merged.makespan_s);
    }
    std::printf("continuous batching at %d replicas (next batch "
                "launches at the SEC shrink knee):\n%s\n",
                shed_fleet, cont.render().c_str());

    // ---- cross-request prefix cache ----
    // Marker-line convention shared with bench_serving: the CI
    // digest diffs stdout above the first "prefix-cache" line, so
    // cache sections may only appear below it.
    std::printf("prefix-cache: per-replica retained-token caches "
                "(FOCUS_PREFIX_CACHE=%s)\n\n",
                prefixCacheModeName(activePrefixCacheMode()));
    if (activePrefixCacheMode() == PrefixCacheMode::Off) {
        std::printf("(disabled; budget sweep skipped)\n");
        return 0;
    }

    // Budget sweep at the fixed fleet, hashed vs round-robin: the
    // same fleet-total bytes go much further when affinity routing
    // keeps each prefix's repeats on one replica's cache.
    const int64_t slab_bytes =
        base.comboSlabSpec(base.classCombo(0), "probe").bytes();
    TextTable cache({"Budget/replica(MB)", "Routing", "HitRate",
                     "Hits", "Evict", "p95(s)", "SLO"});
    for (const int slabs : {4, 16, 64}) {
        for (const RoutingPolicy policy :
             {RoutingPolicy::HashRing, RoutingPolicy::RoundRobin}) {
            ClusterConfig cfg;
            cfg.replicas = fixed_fleet;
            cfg.routing = policy;
            cfg.prefix_cache.budget_bytes = slabs * slab_bytes;
            const ClusterReport rep =
                ClusterSimulator(base, cfg).run(sched);
            cache.addRow(
                {fmtF(static_cast<double>(slabs * slab_bytes) /
                          (1024.0 * 1024.0), 2),
                 routingPolicyName(policy),
                 fmtPct(rep.prefix_cache.hitRate()),
                 std::to_string(rep.prefix_cache.hits),
                 std::to_string(rep.prefix_cache.evictions),
                 fmtF(rep.merged.latency.p95, 1),
                 fmtPct(rep.merged.slo_attainment)});
            const std::string tag = "cache_s" + std::to_string(slabs) +
                "_" + routingPolicyName(policy);
            rec.metric(tag + "_hit_rate", rep.prefix_cache.hitRate());
            rec.metric(tag + "_p95_s", rep.merged.latency.p95);
        }
    }
    std::printf("prefix-cache budget sweep at %d replicas (fp16 "
                "slabs, independent cache per replica):\n%s\n",
                fixed_fleet, cache.render().c_str());
    return 0;
}
