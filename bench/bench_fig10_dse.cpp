/**
 * @file
 * Fig. 10: design space exploration of the four primary Focus
 * parameters.  Each sweep varies one factor with the others at their
 * defaults, on Llava-Video (VideoMME / MLVU as in the paper).
 *
 *  (a) GEMM m tile size: smaller tiles cut similarity across tile
 *      boundaries -> latency rises as tiles shrink; the paper picks
 *      1024 (~19% over full-height at a practical buffer size).
 *  (b) Vector size: smaller vectors remove more array MACs but add
 *      accumulator work; 32 balances both and matches the array.
 *  (c) SIC block size (f,h,w): larger blocks find more redundancy,
 *      temporal extent helping most; 2x2x2 suffices.
 *  (d) Scatter accumulators: 64 is within a few percent of 160.
 *
 * All sweep points are cells of one ExperimentGrid, so the whole DSE
 * dispatches across the thread pool at once.
 */

#include <algorithm>

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 4);
    benchBanner("Fig. 10: design space exploration", bo);
    BenchRecorder rec("fig10", bo);

    ExperimentGrid grid(benchEvalOptions(bo));

    // ------------------------------------------------------------
    // (a) GEMM m tile size.  The functional tile size scales with
    // the reduced token count; the timing tile scales at full scale.
    // ------------------------------------------------------------
    const std::vector<int64_t> tiles = {4096, 2048, 1024, 512, 128,
                                        32};
    std::vector<size_t> a_ids;
    for (int64_t tile : tiles) {
        MethodConfig m = MethodConfig::focusFull();
        // Scale the functional tile proportionally (reduced
        // scale is ~600 active rows vs 6381 full).
        m.focus.sic.m_tile = std::max<int64_t>(2, tile / 10);
        AccelConfig a = AccelConfig::focus();
        a.m_tile = tile;
        a.output_buffer = tile * 4 * 128; // keep 128 cols resident
        ExperimentCell cell{"Llava-Vid", "VideoMME", m, a};
        cell.tag = std::to_string(tile);
        a_ids.push_back(grid.add(cell));
    }

    // ------------------------------------------------------------
    // (b) Vector size: systolic-array MACs vs accumulator ops.
    // ------------------------------------------------------------
    const std::vector<int> vecs = {8, 16, 32, 64};
    std::vector<size_t> b_ids;
    for (int vec : vecs) {
        MethodConfig m = MethodConfig::focusFull();
        m.focus.sic.vector_size = vec;
        AccelConfig a = AccelConfig::focus();
        a.vector_size = vec;
        // The array height must not exceed the vector size
        // (Sec. VII-D), so k-subtiles shrink with the vector.
        a.array_rows = std::min(32, vec);
        ExperimentCell cell{"Llava-Vid", "MLVU", m, a};
        cell.keep_trace = true; // array MACs come from the trace
        cell.tag = std::to_string(vec);
        b_ids.push_back(grid.add(cell));
    }

    // ------------------------------------------------------------
    // (c) SIC block size (f, h, w).
    // ------------------------------------------------------------
    const int sizes[][3] = {{1, 1, 1}, {1, 2, 2}, {1, 3, 3},
                            {2, 1, 1}, {2, 2, 2}, {2, 3, 3},
                            {3, 2, 2}, {3, 3, 3}};
    std::vector<size_t> c_ids;
    for (const auto &s : sizes) {
        MethodConfig m = MethodConfig::focusFull();
        m.focus.sic.block_f = s[0];
        m.focus.sic.block_h = s[1];
        m.focus.sic.block_w = s[2];
        char label[16];
        std::snprintf(label, sizeof(label), "%d%d%d", s[0], s[1],
                      s[2]);
        ExperimentCell cell{"Llava-Vid", "VideoMME", m,
                            AccelConfig::focus()};
        cell.tag = label;
        c_ids.push_back(grid.add(cell));
    }

    // ------------------------------------------------------------
    // (d) Scatter accumulators: one functional measurement, many
    // timing-only simulations of its trace (accuracy unaffected).
    // ------------------------------------------------------------
    ExperimentCell d_cell{"Llava-Vid", "VideoMME",
                          MethodConfig::focusFull(),
                          AccelConfig::focus()};
    d_cell.simulate = false;
    d_cell.keep_trace = true;
    const size_t d_id = grid.add(d_cell);

    const std::vector<ExperimentResult> res = grid.run();

    {
        std::printf("--- (a) GEMM m tile size ---\n");
        TextTable t({"mTile", "NormLatency", "Accuracy(%)",
                     "OutBuf(KB)"});
        double base = 0.0;
        for (size_t id : a_ids) {
            const ExperimentResult &r = res[id];
            const double lat =
                static_cast<double>(r.metrics.cycles);
            if (base == 0.0) {
                base = lat;
            }
            if (r.cell.tag == "1024") {
                rec.metric("mtile_1024_norm_latency", lat / base);
            }
            t.addRow({r.cell.tag, fmtF(lat / base, 3),
                      fmtPct(r.eval.accuracy),
                      fmtF(static_cast<double>(
                               r.cell.accel.output_buffer) /
                               1024.0,
                           0)});
        }
        std::printf("%s\n", t.render().c_str());
    }

    {
        std::printf("--- (b) vector size ---\n");
        TextTable t({"VecSize", "ArrayGOPs", "AccumGOPs",
                     "Accuracy(%)"});
        for (size_t id : b_ids) {
            const ExperimentResult &r = res[id];
            t.addRow({r.cell.tag, fmtF(r.trace.totalMacs() / 1e9, 1),
                      fmtF(r.metrics.scatter_ops / 1e9, 1),
                      fmtPct(r.eval.accuracy)});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Expected shape: array ops fall and accumulator "
                    "ops rise as vectors shrink; 32 balances.\n\n");
    }

    {
        std::printf("--- (c) SIC block size (f,h,w) ---\n");
        TextTable t({"Block", "NormLatency", "Accuracy(%)"});
        double base = 0.0;
        for (size_t id : c_ids) {
            const ExperimentResult &r = res[id];
            const double lat =
                static_cast<double>(r.metrics.cycles);
            if (base == 0.0) {
                base = lat;
            }
            if (r.cell.tag == "222") {
                rec.metric("block_222_norm_latency", lat / base);
            }
            t.addRow({r.cell.tag, fmtF(lat / base, 3),
                      fmtPct(r.eval.accuracy)});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Expected shape: larger blocks reduce latency; "
                    "the temporal dimension helps most; 2x2x2 is "
                    "sufficient.\n\n");
    }

    {
        std::printf("--- (d) scatter accumulators ---\n");
        const WorkloadTrace &tr = res[d_id].trace;
        TextTable t({"Accumulators", "NormLatency"});
        double base = 0.0;
        for (int acc : {160, 128, 96, 64, 32}) {
            AccelConfig a = AccelConfig::focus();
            a.scatter_accumulators = acc;
            const RunMetrics rm = simulateAccelerator(a, tr);
            const double lat = static_cast<double>(rm.cycles);
            if (base == 0.0) {
                base = lat;
            }
            if (acc == 64) {
                rec.metric("accum_64_norm_latency", lat / base);
            }
            t.addRow({std::to_string(acc), fmtF(lat / base, 3)});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Expected shape: 64 accumulators within a few "
                    "percent of 160; 32 visibly worse "
                    "(paper: ~5%% / ~1.5x).\n");
    }
    return 0;
}
