/**
 * @file
 * Fig. 10: design space exploration of the four primary Focus
 * parameters.  Each sweep varies one factor with the others at their
 * defaults, on Llava-Video (VideoMME / MLVU as in the paper).
 *
 *  (a) GEMM m tile size: smaller tiles cut similarity across tile
 *      boundaries -> latency rises as tiles shrink; the paper picks
 *      1024 (~19% over full-height at a practical buffer size).
 *  (b) Vector size: smaller vectors remove more array MACs but add
 *      accumulator work; 32 balances both and matches the array.
 *  (c) SIC block size (f,h,w): larger blocks find more redundancy,
 *      temporal extent helping most; 2x2x2 suffices.
 *  (d) Scatter accumulators: 64 is within a few percent of 160.
 */

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const int samples = benchSamples(argc, argv, 4);
    benchBanner("Fig. 10: design space exploration", samples);

    EvalOptions opts;
    opts.samples = samples;
    Evaluator ev("Llava-Vid", "VideoMME", opts);
    Evaluator ev_mlvu("Llava-Vid", "MLVU", opts);

    // ------------------------------------------------------------
    // (a) GEMM m tile size.  The functional tile size scales with
    // the reduced token count; the timing tile scales at full scale.
    // ------------------------------------------------------------
    {
        std::printf("--- (a) GEMM m tile size ---\n");
        TextTable t({"mTile", "NormLatency", "Accuracy(%)",
                     "OutBuf(KB)"});
        double base = 0.0;
        for (int64_t tile : {4096, 2048, 1024, 512, 128, 32}) {
            MethodConfig m = MethodConfig::focusFull();
            // Scale the functional tile proportionally (reduced
            // scale is ~600 active rows vs 6381 full).
            m.focus.sic.m_tile = std::max<int64_t>(2, tile / 10);
            AccelConfig a = AccelConfig::focus();
            a.m_tile = tile;
            a.output_buffer = tile * 4 * 128; // keep 128 cols resident
            MethodEval e;
            const RunMetrics rm = ev.simulate(m, a, &e);
            const double lat = static_cast<double>(rm.cycles);
            if (base == 0.0) {
                base = lat;
            }
            t.addRow({std::to_string(tile), fmtF(lat / base, 3),
                      fmtPct(e.accuracy),
                      fmtF(static_cast<double>(a.output_buffer) /
                           1024.0, 0)});
        }
        std::printf("%s\n", t.render().c_str());
    }

    // ------------------------------------------------------------
    // (b) Vector size: systolic-array MACs vs accumulator ops.
    // ------------------------------------------------------------
    {
        std::printf("--- (b) vector size ---\n");
        TextTable t({"VecSize", "ArrayGOPs", "AccumGOPs",
                     "Accuracy(%)"});
        for (int vec : {8, 16, 32, 64}) {
            MethodConfig m = MethodConfig::focusFull();
            m.focus.sic.vector_size = vec;
            AccelConfig a = AccelConfig::focus();
            a.vector_size = vec;
            // The array height must not exceed the vector size
            // (Sec. VII-D), so k-subtiles shrink with the vector.
            a.array_rows = std::min(32, vec);
            MethodEval e;
            const RunMetrics rm = ev_mlvu.simulate(m, a, &e);
            const WorkloadTrace tr = ev_mlvu.buildFullTrace(m, e);
            t.addRow({std::to_string(vec),
                      fmtF(tr.totalMacs() / 1e9, 1),
                      fmtF(rm.scatter_ops / 1e9, 1),
                      fmtPct(e.accuracy)});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Expected shape: array ops fall and accumulator "
                    "ops rise as vectors shrink; 32 balances.\n\n");
    }

    // ------------------------------------------------------------
    // (c) SIC block size (f, h, w).
    // ------------------------------------------------------------
    {
        std::printf("--- (c) SIC block size (f,h,w) ---\n");
        TextTable t({"Block", "NormLatency", "Accuracy(%)"});
        double base = 0.0;
        const int sizes[][3] = {{1, 1, 1}, {1, 2, 2}, {1, 3, 3},
                                {2, 1, 1}, {2, 2, 2}, {2, 3, 3},
                                {3, 2, 2}, {3, 3, 3}};
        for (const auto &s : sizes) {
            MethodConfig m = MethodConfig::focusFull();
            m.focus.sic.block_f = s[0];
            m.focus.sic.block_h = s[1];
            m.focus.sic.block_w = s[2];
            MethodEval e;
            const RunMetrics rm =
                ev.simulate(m, AccelConfig::focus(), &e);
            const double lat = static_cast<double>(rm.cycles);
            if (base == 0.0) {
                base = lat;
            }
            char label[16];
            std::snprintf(label, sizeof(label), "%d%d%d", s[0], s[1],
                          s[2]);
            t.addRow({label, fmtF(lat / base, 3), fmtPct(e.accuracy)});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Expected shape: larger blocks reduce latency; "
                    "the temporal dimension helps most; 2x2x2 is "
                    "sufficient.\n\n");
    }

    // ------------------------------------------------------------
    // (d) Scatter accumulators (timing only; accuracy unaffected).
    // ------------------------------------------------------------
    {
        std::printf("--- (d) scatter accumulators ---\n");
        const MethodEval e =
            ev.runFunctional(MethodConfig::focusFull());
        const WorkloadTrace tr =
            ev.buildFullTrace(MethodConfig::focusFull(), e);
        TextTable t({"Accumulators", "NormLatency"});
        double base = 0.0;
        for (int acc : {160, 128, 96, 64, 32}) {
            AccelConfig a = AccelConfig::focus();
            a.scatter_accumulators = acc;
            const RunMetrics rm = simulateAccelerator(a, tr);
            const double lat = static_cast<double>(rm.cycles);
            if (base == 0.0) {
                base = lat;
            }
            t.addRow({std::to_string(acc), fmtF(lat / base, 3)});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("Expected shape: 64 accumulators within a few "
                    "percent of 160; 32 visibly worse "
                    "(paper: ~5%% / ~1.5x).\n");
    }
    return 0;
}
