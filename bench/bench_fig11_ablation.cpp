/**
 * @file
 * Fig. 11: ablation study on Llava-Video — speedup over the dense
 * systolic array when enabling SEC alone and then SEC+SIC, compared
 * against CMC.
 *
 * Paper reference: CMC 2.00x; +SEC 3.15x (1.58x over CMC); +SIC
 * 4.53x total (an extra 1.44x from vector-wise concentration).
 */

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 6);
    benchBanner("Fig. 11: ablation (SEC / SIC contributions)", bo);
    BenchRecorder rec("fig11", bo);

    ExperimentGrid grid(benchEvalOptions(bo));
    const size_t sa_id =
        grid.add({"Llava-Vid", "VideoMME", MethodConfig::dense(),
                  AccelConfig::systolicArray()});
    const size_t cmc_id =
        grid.add({"Llava-Vid", "VideoMME", MethodConfig::cmcBaseline(),
                  AccelConfig::cmc()});
    const size_t sec_id =
        grid.add({"Llava-Vid", "VideoMME",
                  MethodConfig::focusSecOnly(), AccelConfig::focus()});
    const size_t full_id =
        grid.add({"Llava-Vid", "VideoMME", MethodConfig::focusFull(),
                  AccelConfig::focus()});
    const std::vector<ExperimentResult> res = grid.run();

    const RunMetrics &sa = res[sa_id].metrics;
    const double s_cmc = static_cast<double>(sa.cycles) /
        res[cmc_id].metrics.cycles;
    const double s_sec = static_cast<double>(sa.cycles) /
        res[sec_id].metrics.cycles;
    const double s_full = static_cast<double>(sa.cycles) /
        res[full_id].metrics.cycles;

    TextTable table({"Configuration", "Speedup", "PaperRef"});
    table.addRow({"Systolic Array (Dense)", "1.00x", "1.00x"});
    table.addRow({"CMC (Token-wise Pruning)", fmtX(s_cmc), "2.00x"});
    table.addRow({"Ours (SEC only)", fmtX(s_sec), "3.15x"});
    table.addRow({"Ours (SEC + SIC)", fmtX(s_full), "4.53x"});
    std::printf("%s\n", table.render().c_str());

    std::printf("SEC over CMC: %.2fx (paper 1.58x); "
                "SIC on top of SEC: %.2fx (paper 1.44x)\n",
                s_sec / s_cmc, s_full / s_sec);

    rec.metric("speedup_cmc", s_cmc);
    rec.metric("speedup_sec_only", s_sec);
    rec.metric("speedup_sec_sic", s_full);
    rec.metric("sec_over_cmc", s_sec / s_cmc);
    rec.metric("sic_over_sec", s_full / s_sec);
    return 0;
}
