/**
 * @file
 * Fig. 12: memory access analysis — (a) overall DRAM activation
 * traffic and (b) mean input (activation) matrix size, both
 * normalized to the dense systolic array, per model (averaged over
 * the three video datasets) plus the mean.
 *
 * Paper reference: Focus reaches ~0.21x DRAM access and ~0.18x
 * activation size; AdapTiV ~0.44/0.53 and CMC ~0.76/0.38 — CMC
 * compresses more than AdapTiV yet moves *more* DRAM data because of
 * its off-chip codec round trip (Sec. VII-F).
 */

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 4);
    BenchRecorder rec("fig12", bo);
    benchBanner("Fig. 12: DRAM access and activation size", bo);

    TextTable dram_table({"Model", "SA", "Adaptiv", "CMC", "Ours"});
    TextTable size_table({"Model", "SA", "Adaptiv", "CMC", "Ours"});

    // Per (model, dataset): the SA reference plus the three
    // compressed architectures, in a fixed order.
    struct Arch
    {
        MethodConfig method;
        AccelConfig accel;
    };
    const std::vector<Arch> archs = {
        {MethodConfig::dense(), AccelConfig::systolicArray()},
        {MethodConfig::adaptivBaseline(), AccelConfig::adaptiv()},
        {MethodConfig::cmcBaseline(), AccelConfig::cmc()},
        {MethodConfig::focusFull(), AccelConfig::focus()},
    };

    ExperimentGrid grid(benchEvalOptions(bo));
    const auto models = videoModelNames();
    const auto datasets = videoDatasetNames();
    for (const std::string &model : models) {
        for (const std::string &dataset : datasets) {
            for (const Arch &arch : archs) {
                grid.add({model, dataset, arch.method, arch.accel});
            }
        }
    }
    const std::vector<ExperimentResult> res = grid.run();

    double mean_dram[3] = {0, 0, 0};
    double mean_size[3] = {0, 0, 0};
    size_t next = 0;
    for (const std::string &model : models) {
        double dram[3] = {0, 0, 0};
        double size[3] = {0, 0, 0};
        for (size_t d = 0; d < datasets.size(); ++d) {
            const RunMetrics &sa = res[next].metrics;
            for (int i = 0; i < 3; ++i) {
                const RunMetrics &rm =
                    res[next + 1 + static_cast<size_t>(i)].metrics;
                dram[i] +=
                    static_cast<double>(rm.dramActivationBytes()) /
                    static_cast<double>(sa.dramActivationBytes());
                size[i] += rm.mean_input_frac / sa.mean_input_frac;
            }
            next += archs.size();
        }
        const double inv =
            1.0 / static_cast<double>(datasets.size());
        dram_table.addRow({model, "1.000", fmtF(dram[0] * inv, 3),
                           fmtF(dram[1] * inv, 3),
                           fmtF(dram[2] * inv, 3)});
        size_table.addRow({model, "1.000", fmtF(size[0] * inv, 3),
                           fmtF(size[1] * inv, 3),
                           fmtF(size[2] * inv, 3)});
        for (int i = 0; i < 3; ++i) {
            mean_dram[i] += dram[i] * inv / models.size();
            mean_size[i] += size[i] * inv / models.size();
        }
    }
    dram_table.addRow({"Mean", "1.000", fmtF(mean_dram[0], 3),
                       fmtF(mean_dram[1], 3), fmtF(mean_dram[2], 3)});
    size_table.addRow({"Mean", "1.000", fmtF(mean_size[0], 3),
                       fmtF(mean_size[1], 3), fmtF(mean_size[2], 3)});

    rec.metric("mean_dram_adaptiv", mean_dram[0]);
    rec.metric("mean_dram_cmc", mean_dram[1]);
    rec.metric("mean_dram_focus", mean_dram[2]);
    rec.metric("mean_size_adaptiv", mean_size[0]);
    rec.metric("mean_size_cmc", mean_size[1]);
    rec.metric("mean_size_focus", mean_size[2]);

    std::printf("(a) normalized DRAM activation access\n%s\n",
                dram_table.render().c_str());
    std::printf("(b) normalized activation (input matrix) size\n%s\n",
                size_table.render().c_str());
    std::printf("Expected shape: Ours lowest on both; CMC's traffic "
                "ratio worse than its size ratio (codec round "
                "trip).\n");
    return 0;
}
