/**
 * @file
 * Fig. 13: distribution of concentrated tile lengths (vectors per
 * m=1024 tile after Similarity Gather) together with the
 * systolic-array utilization at each length, plus the cycle-weighted
 * average utilization.
 *
 * Paper reference: a broad distribution with most mass at mid-to-high
 * tile lengths and an average utilization of 92.2% — the extremes
 * (near-empty tiles that underutilize, near-full tiles that gain
 * little) are rare.
 */

#include <algorithm>

#include "bench_util.h"

#include "common/stats.h"
#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 6);
    BenchRecorder rec("fig13", bo);
    benchBanner("Fig. 13: concentrated tile-length histogram", bo);

    ExperimentGrid grid(benchEvalOptions(bo));
    grid.add({"Llava-Vid", "VideoMME", MethodConfig::focusFull(),
              AccelConfig::focus()});
    const RunMetrics rm = grid.run().front().metrics;

    const AccelConfig cfg = AccelConfig::focus();
    const int64_t fill = cfg.array_rows + cfg.array_cols - 2;

    Histogram hist(0.0, 1024.0, 16);
    for (int64_t p : rm.tile_lengths) {
        hist.add(static_cast<double>(p));
    }

    TextTable table({"TileLen", "Density", "Utilization"});
    for (int b = 0; b < hist.bins(); ++b) {
        const double mid = 0.5 * (hist.binLo(b) + hist.binHi(b));
        const double density = hist.total() == 0
            ? 0.0
            : static_cast<double>(hist.binCount(b)) /
                static_cast<double>(hist.total());
        // Utilization of a sub-tile streaming `mid` vectors: useful
        // cycles over useful + fill.
        const double util = mid / (mid + static_cast<double>(fill));
        char range[32];
        std::snprintf(range, sizeof(range), "%4.0f-%4.0f",
                      hist.binLo(b), hist.binHi(b));
        table.addRow({range, fmtF(density, 4), fmtF(util, 3)});
    }
    rec.metric("tiles", static_cast<double>(rm.tile_lengths.size()));
    rec.metric("utilization", rm.utilization);

    std::printf("%s\n", table.render().c_str());
    std::printf("Tiles observed: %llu; cycle-weighted array "
                "utilization: %.3f (paper: 0.922)\n",
                static_cast<unsigned long long>(rm.tile_lengths.size()),
                rm.utilization);
    return 0;
}
