/**
 * @file
 * Fig. 2(b): cosine-similarity CDF of activation vectors as a
 * function of vector size.
 *
 * For each vector size we compare every token's activation slice
 * against the same slice of the same-position token in the previous
 * frame (the dominant redundancy axis) and print the CDF of the
 * similarity, plus the fraction exceeding the 0.9 threshold.  Paper
 * reference: ~64% of 8-dim vectors exceed 0.9 while only ~18% of
 * full-width (3584) vectors do — finer granularity exposes more
 * redundancy.
 */

#include "bench_util.h"

#include "common/stats.h"
#include "eval/report.h"
#include "tensor/ops.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 4);
    benchBanner("Fig. 2(b): similarity CDF vs vector size", bo);

    const DatasetProfile dp = datasetProfile("VideoMME");
    const ModelProfile mp = modelProfile("Llava-Vid");
    const VideoGenerator gen(dp, mp, 42);

    const std::vector<int> vector_sizes = {8, 16, 32, 64};
    const std::vector<double> thresholds = {0.5, 0.6, 0.7, 0.8,
                                            0.9, 0.95};

    // One histogram per vector size, filled in parallel; binning is
    // integer counting, so the result is order-independent.
    std::vector<Histogram> hists(vector_sizes.size(),
                                 Histogram(-1.0, 1.0, 100));
    ThreadPool::global().parallelFor(
        static_cast<int64_t>(vector_sizes.size()), [&](int64_t v) {
            const int vec = vector_sizes[static_cast<size_t>(v)];
            Histogram &hist = hists[static_cast<size_t>(v)];
            for (int s = 0; s < bo.samples; ++s) {
                const VideoSample sample =
                    gen.sample(static_cast<uint64_t>(s));
                for (int f = 1; f < sample.frames; ++f) {
                    for (int r = 0; r < sample.grid_h; ++r) {
                        for (int c = 0; c < sample.grid_w; ++c) {
                            const float *a = sample.visual_tokens.row(
                                sample.tokenIndex(f, r, c));
                            const float *b = sample.visual_tokens.row(
                                sample.tokenIndex(f - 1, r, c));
                            for (int o = 0; o + vec <= mp.hidden;
                                 o += vec) {
                                hist.add(cosineSimilarity(a + o,
                                                          b + o,
                                                          vec));
                            }
                        }
                    }
                }
            }
        });

    BenchRecorder rec("fig2b", bo);
    TextTable table({"VecSize", "P(<=0.5)", "P(<=0.6)", "P(<=0.7)",
                     "P(<=0.8)", "P(<=0.9)", "P(<=0.95)", "P(>0.9)"});
    for (size_t v = 0; v < vector_sizes.size(); ++v) {
        const Histogram &hist = hists[v];
        std::vector<std::string> row = {
            std::to_string(vector_sizes[v])};
        for (double th : thresholds) {
            row.push_back(fmtF(hist.cdfAt(th), 3));
        }
        row.push_back(fmtF(1.0 - hist.cdfAt(0.9), 3));
        table.addRow(row);
        rec.metric("vec" + std::to_string(vector_sizes[v]) +
                       "_frac_above_090",
                   1.0 - hist.cdfAt(0.9));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: P(>0.9) decreases monotonically "
                "with vector size (paper: 64%% at 8 dims vs 18%% at "
                "full width).\n");
    return 0;
}
