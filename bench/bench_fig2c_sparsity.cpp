/**
 * @file
 * Fig. 2(c): sparsity comparison on Llava-Video x VideoMME including
 * the token-wise ablation of our own method.
 *
 * Paper reference: Dense 0 / CMC 44.5 / AdapTiV 54.0 / Ours
 * token-wise 73.0 / Ours vector-wise 82.8, with accuracy roughly
 * flat (62.4-64.2) across all of them.
 */

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 8);
    benchBanner("Fig. 2(c): sparsity comparison (token- vs "
                "vector-wise)", bo);

    const std::vector<MethodConfig> methods = {
        MethodConfig::dense(),
        MethodConfig::cmcBaseline(),
        MethodConfig::adaptivBaseline(),
        MethodConfig::focusTokenWise(),
        MethodConfig::focusFull(),
    };

    ExperimentGrid grid(benchEvalOptions(bo));
    for (const MethodConfig &m : methods) {
        ExperimentCell cell{"Llava-Vid", "VideoMME", m};
        cell.simulate = false;
        cell.trace_sparsity = true;
        grid.add(cell);
    }
    const std::vector<ExperimentResult> res = grid.run();

    TextTable table({"Method", "Sparsity(%)", "Accuracy(%)"});
    for (const ExperimentResult &r : res) {
        table.addRow({r.cell.method.name(),
                      fmtPct(r.trace_sparsity),
                      fmtPct(r.eval.accuracy)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: vector-wise > token-wise > "
                "AdapTiV/CMC > dense in sparsity, accuracy ~flat.\n");
    return 0;
}
