/**
 * @file
 * Fig. 9(a): end-to-end speedup of every architecture over the dense
 * systolic array, per (model, dataset) cell plus geometric mean.
 *
 * Paper reference (geomean): GPU 0.57x, AdapTiV 1.72x, CMC 1.90x,
 * GPU+FrameFusion 1.89x, Focus 4.47x (i.e. Focus is 2.60x over
 * AdapTiV, 2.35x over CMC, 7.90x over the GPU, 2.37x over GPU+FF).
 */

#include <cmath>

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 5);
    benchBanner("Fig. 9(a): speedup over the dense systolic array",
                bo);
    BenchRecorder rec("fig9a", bo);

    TextTable table({"Model", "Dataset", "SA", "GPU", "Adaptiv",
                     "CMC", "GPU+FF", "Ours"});

    struct Geo
    {
        double log_sum = 0.0;
        int n = 0;
        void add(double v) { log_sum += std::log(v); ++n; }
        double mean() const { return std::exp(log_sum / n); }
    };
    Geo g_gpu, g_ada, g_cmc, g_ff, g_ours;

    // Five cells per (model, dataset): the dense trace doubles as the
    // GPU reference workload, and the FrameFusion cell only needs its
    // trace (it is timed by the GPU model, not the cycle model).
    struct RowIds
    {
        std::string model, dataset;
        size_t dense, ada, cmc, ours, ff;
    };
    ExperimentGrid grid(benchEvalOptions(bo));
    std::vector<RowIds> rows;
    for (const std::string &model : videoModelNames()) {
        for (const std::string &dataset : videoDatasetNames()) {
            RowIds ids;
            ids.model = model;
            ids.dataset = dataset;

            ExperimentCell dense{model, dataset,
                                 MethodConfig::dense(),
                                 AccelConfig::systolicArray()};
            dense.keep_trace = true;
            ids.dense = grid.add(dense);

            ids.ada = grid.add({model, dataset,
                                MethodConfig::adaptivBaseline(),
                                AccelConfig::adaptiv()});
            ids.cmc = grid.add({model, dataset,
                                MethodConfig::cmcBaseline(),
                                AccelConfig::cmc()});
            ids.ours = grid.add({model, dataset,
                                 MethodConfig::focusFull(),
                                 AccelConfig::focus()});

            MethodConfig ff = MethodConfig::frameFusionBaseline();
            ff.framefusion.reduction =
                grid.evaluator(model, dataset)
                    .frameFusionReductionFor(0.70);
            ExperimentCell ff_cell{model, dataset, ff,
                                   AccelConfig::systolicArray()};
            ff_cell.simulate = false;
            ff_cell.keep_trace = true;
            ids.ff = grid.add(ff_cell);

            rows.push_back(ids);
        }
    }
    const std::vector<ExperimentResult> res = grid.run();

    const GpuConfig gpu;
    for (const RowIds &ids : rows) {
        const RunMetrics &sa = res[ids.dense].metrics;
        const double t_gpu =
            gpuSeconds(res[ids.dense].trace, gpu, false);
        const double t_ff = gpuSeconds(res[ids.ff].trace, gpu, true);

        const double s_gpu = sa.seconds() / t_gpu;
        const double s_ada = static_cast<double>(sa.cycles) /
            res[ids.ada].metrics.cycles;
        const double s_cmc = static_cast<double>(sa.cycles) /
            res[ids.cmc].metrics.cycles;
        const double s_ff = sa.seconds() / t_ff;
        const double s_ours = static_cast<double>(sa.cycles) /
            res[ids.ours].metrics.cycles;

        g_gpu.add(s_gpu);
        g_ada.add(s_ada);
        g_cmc.add(s_cmc);
        g_ff.add(s_ff);
        g_ours.add(s_ours);

        table.addRow({ids.model, ids.dataset, "1.00", fmtF(s_gpu, 2),
                      fmtF(s_ada, 2), fmtF(s_cmc, 2), fmtF(s_ff, 2),
                      fmtF(s_ours, 2)});
    }
    table.addRow({"Geometric", "Mean", "1.00", fmtF(g_gpu.mean(), 2),
                  fmtF(g_ada.mean(), 2), fmtF(g_cmc.mean(), 2),
                  fmtF(g_ff.mean(), 2), fmtF(g_ours.mean(), 2)});

    std::printf("%s\n", table.render().c_str());
    std::printf("Derived ratios (paper): Ours/Adaptiv = %.2fx (2.60), "
                "Ours/CMC = %.2fx (2.35), Ours/GPU = %.2fx (7.90), "
                "Ours/GPU+FF = %.2fx (2.37)\n",
                g_ours.mean() / g_ada.mean(),
                g_ours.mean() / g_cmc.mean(),
                g_ours.mean() / g_gpu.mean(),
                g_ours.mean() / g_ff.mean());

    rec.metric("geomean_gpu", g_gpu.mean());
    rec.metric("geomean_adaptiv", g_ada.mean());
    rec.metric("geomean_cmc", g_cmc.mean());
    rec.metric("geomean_gpu_framefusion", g_ff.mean());
    rec.metric("geomean_focus", g_ours.mean());
    return 0;
}
