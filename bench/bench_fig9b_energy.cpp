/**
 * @file
 * Fig. 9(b): energy consumption normalized to the dense systolic
 * array, broken into core / buffer / DRAM components.
 *
 * Paper reference: Focus improves energy efficiency by 4.67x over the
 * dense SA, 2.98x over AdapTiV and 3.29x over CMC, with DRAM the
 * largest component in every design.
 */

#include <cmath>

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const int samples = benchSamples(argc, argv, 5);
    benchBanner("Fig. 9(b): normalized energy with breakdown",
                samples);

    TextTable table({"Model", "Dataset", "Arch", "Core", "Buffer",
                     "DRAM", "Total(norm)"});

    struct Geo
    {
        double log_sum = 0.0;
        int n = 0;
        void add(double v) { log_sum += std::log(v); ++n; }
        double mean() const { return std::exp(log_sum / n); }
    };
    Geo g_ada, g_cmc, g_ours;

    for (const std::string &model : videoModelNames()) {
        for (const std::string &dataset : videoDatasetNames()) {
            EvalOptions opts;
            opts.samples = samples;
            Evaluator ev(model, dataset, opts);

            const RunMetrics sa = ev.simulate(
                MethodConfig::dense(), AccelConfig::systolicArray());
            const double base = sa.energy.total();

            struct Entry
            {
                const char *name;
                RunMetrics rm;
            };
            const std::vector<Entry> entries = {
                {"SA", sa},
                {"Adaptiv",
                 ev.simulate(MethodConfig::adaptivBaseline(),
                             AccelConfig::adaptiv())},
                {"CMC", ev.simulate(MethodConfig::cmcBaseline(),
                                    AccelConfig::cmc())},
                {"Ours", ev.simulate(MethodConfig::focusFull(),
                                     AccelConfig::focus())},
            };
            for (const Entry &e : entries) {
                const EnergyBreakdown &en = e.rm.energy;
                const double core_frac =
                    (en.core + en.sfu + en.sec + en.sic + en.merge) /
                    base;
                table.addRow({model, dataset, e.name,
                              fmtF(core_frac, 3),
                              fmtF(en.buffer / base, 3),
                              fmtF(en.dram / base, 3),
                              fmtF(en.total() / base, 3)});
                if (std::string(e.name) == "Adaptiv") {
                    g_ada.add(base / en.total());
                } else if (std::string(e.name) == "CMC") {
                    g_cmc.add(base / en.total());
                } else if (std::string(e.name) == "Ours") {
                    g_ours.add(base / en.total());
                }
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Energy-efficiency geomeans vs SA (paper): "
                "Ours %.2fx (4.67), Adaptiv %.2fx (1.57), "
                "CMC %.2fx (1.42); Ours/Adaptiv = %.2fx (2.98), "
                "Ours/CMC = %.2fx (3.29)\n",
                g_ours.mean(), g_ada.mean(), g_cmc.mean(),
                g_ours.mean() / g_ada.mean(),
                g_ours.mean() / g_cmc.mean());
    return 0;
}
