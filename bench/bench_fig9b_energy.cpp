/**
 * @file
 * Fig. 9(b): energy consumption normalized to the dense systolic
 * array, broken into core / buffer / DRAM components.
 *
 * Paper reference: Focus improves energy efficiency by 4.67x over the
 * dense SA, 2.98x over AdapTiV and 3.29x over CMC, with DRAM the
 * largest component in every design.
 */

#include <cmath>

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 5);
    benchBanner("Fig. 9(b): normalized energy with breakdown", bo);

    TextTable table({"Model", "Dataset", "Arch", "Core", "Buffer",
                     "DRAM", "Total(norm)"});

    struct Geo
    {
        double log_sum = 0.0;
        int n = 0;
        void add(double v) { log_sum += std::log(v); ++n; }
        double mean() const { return std::exp(log_sum / n); }
    };
    Geo g_ada, g_cmc, g_ours;

    // Four architectures per (model, dataset) cell, SA first so its
    // energy normalizes the other three.
    struct Arch
    {
        const char *name;
        MethodConfig method;
        AccelConfig accel;
    };
    const std::vector<Arch> archs = {
        {"SA", MethodConfig::dense(), AccelConfig::systolicArray()},
        {"Adaptiv", MethodConfig::adaptivBaseline(),
         AccelConfig::adaptiv()},
        {"CMC", MethodConfig::cmcBaseline(), AccelConfig::cmc()},
        {"Ours", MethodConfig::focusFull(), AccelConfig::focus()},
    };

    ExperimentGrid grid(benchEvalOptions(bo));
    for (const std::string &model : videoModelNames()) {
        for (const std::string &dataset : videoDatasetNames()) {
            for (const Arch &arch : archs) {
                ExperimentCell cell{model, dataset, arch.method,
                                    arch.accel};
                cell.tag = arch.name;
                grid.add(cell);
            }
        }
    }
    const std::vector<ExperimentResult> res = grid.run();

    for (size_t i = 0; i < res.size(); i += archs.size()) {
        const double base = res[i].metrics.energy.total();
        for (size_t a = 0; a < archs.size(); ++a) {
            const ExperimentResult &r = res[i + a];
            const EnergyBreakdown &en = r.metrics.energy;
            const double core_frac =
                (en.core + en.sfu + en.sec + en.sic + en.merge) /
                base;
            table.addRow({r.cell.model, r.cell.dataset, r.cell.tag,
                          fmtF(core_frac, 3),
                          fmtF(en.buffer / base, 3),
                          fmtF(en.dram / base, 3),
                          fmtF(en.total() / base, 3)});
            if (r.cell.tag == "Adaptiv") {
                g_ada.add(base / en.total());
            } else if (r.cell.tag == "CMC") {
                g_cmc.add(base / en.total());
            } else if (r.cell.tag == "Ours") {
                g_ours.add(base / en.total());
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Energy-efficiency geomeans vs SA (paper): "
                "Ours %.2fx (4.67), Adaptiv %.2fx (1.57), "
                "CMC %.2fx (1.42); Ours/Adaptiv = %.2fx (2.98), "
                "Ours/CMC = %.2fx (3.29)\n",
                g_ours.mean(), g_ada.mean(), g_cmc.mean(),
                g_ours.mean() / g_ada.mean(),
                g_ours.mean() / g_cmc.mean());

    BenchRecorder rec("fig9b", bo);
    rec.metric("geomean_ours_vs_sa", g_ours.mean());
    rec.metric("geomean_adaptiv_vs_sa", g_ada.mean());
    rec.metric("geomean_cmc_vs_sa", g_cmc.mean());
    rec.metric("ours_vs_adaptiv", g_ours.mean() / g_ada.mean());
    rec.metric("ours_vs_cmc", g_ours.mean() / g_cmc.mean());
    return 0;
}
