/**
 * @file
 * Fig. 9(c): area and power breakdown of the Focus design.
 *
 * Paper reference: area 3.21 mm^2 split ~44% systolic array, ~43%
 * buffer, ~10% SFU, 1.9% SEC, 0.8% SIC; total power 1.79 W split
 * ~59% DRAM, 18% systolic array, 13% buffer, 9% SFU, 0.3% SEC,
 * 0.5% SIC (measured on Llava-Video x VideoMME).
 */

#include "bench_util.h"

#include "eval/report.h"
#include "sim/area.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 6);
    benchBanner("Fig. 9(c): Focus area and power breakdown", bo);

    const AccelConfig cfg = AccelConfig::focus();

    // ---- area ----
    const auto parts = areaBreakdown(cfg);
    const double area_total = totalArea(cfg);
    TextTable area_table({"Component", "Area(mm2)", "Share(%)"});
    for (const auto &[name, mm2] : parts) {
        area_table.addRow({name, fmtF(mm2, 3),
                           fmtPct(mm2 / area_total, 1)});
    }
    area_table.addRow({"TOTAL", fmtF(area_total, 2), "100.0"});
    std::printf("%s\n", area_table.render().c_str());

    // ---- power ----
    ExperimentGrid grid(benchEvalOptions(bo));
    grid.add({"Llava-Vid", "VideoMME", MethodConfig::focusFull(),
              cfg});
    const RunMetrics rm = grid.run().front().metrics;

    const EnergyBreakdown &en = rm.energy;
    const double total = en.total();
    TextTable power_table({"Component", "Power(mW)", "Share(%)"});
    const double secs = rm.seconds();
    auto row = [&](const char *name, double joules) {
        power_table.addRow({name, fmtF(joules / secs * 1e3, 0),
                            fmtPct(joules / total, 1)});
    };
    row("systolic_array", en.core);
    row("buffer", en.buffer);
    row("sfu", en.sfu);
    row("sec", en.sec);
    row("sic", en.sic);
    row("dram", en.dram);
    power_table.addRow({"TOTAL", fmtF(total / secs * 1e3, 0),
                        "100.0"});
    std::printf("%s\n", power_table.render().c_str());
    std::printf("Paper reference: total 3.21 mm2 / 1.79 W; "
                "DRAM is the dominant power component and the Focus "
                "unit (SEC+SIC) stays under ~3%% of both budgets.\n");
    return 0;
}
