/**
 * @file
 * Micro-kernel throughput benchmarks (google-benchmark): the hot
 * functional kernels underneath the reproduction — GEMM, cosine
 * similarity matching, similarity gather, streaming top-k, offset
 * coding, and the DRAM model.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/rng.h"
#include "focus/offset_encoding.h"
#include "focus/sec.h"
#include "focus/sic.h"
#include "runtime/thread_pool.h"
#include "sim/accel_model.h"
#include "sim/dram.h"
#include "sim/systolic.h"
#include "sim/trace.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "workload/profiles.h"

using namespace focus;

namespace
{

Tensor
randomTensor(Rng &rng, int64_t r, int64_t c)
{
    Tensor t(r, c);
    for (int64_t i = 0; i < t.numel(); ++i) {
        t.data()[i] = static_cast<float>(rng.gaussian());
    }
    return t;
}

void
BM_Gemm(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    const Tensor a = randomTensor(rng, n, n);
    const Tensor b = randomTensor(rng, n, n);
    Tensor c;
    for (auto _ : state) {
        gemm(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_GemmNaive(benchmark::State &state)
{
    // A/B reference: the pre-kernel-layer ikj triple loop, selected
    // through the same dispatch the FOCUS_GEMM_BACKEND knob drives.
    const int64_t n = state.range(0);
    Rng rng(1);
    const Tensor a = randomTensor(rng, n, n);
    const Tensor b = randomTensor(rng, n, n);
    Tensor c;
    const kernels::GemmBackend prev = kernels::activeBackend();
    kernels::setBackend(kernels::GemmBackend::Naive);
    for (auto _ : state) {
        gemm(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    kernels::setBackend(prev);
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void
BM_GemmFp16(benchmark::State &state)
{
    // fp16-input variant: operands rounded through binary16 during
    // packing (not per-FMA).
    const int64_t n = state.range(0);
    Rng rng(1);
    const Tensor a = randomTensor(rng, n, n);
    const Tensor b = randomTensor(rng, n, n);
    Tensor c;
    for (auto _ : state) {
        gemm(a, b, c, /*fp16_inputs=*/true);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmFp16)->Arg(64)->Arg(128);

void
BM_GemmTransB(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    const Tensor a = randomTensor(rng, n, n);
    const Tensor b = randomTensor(rng, n, n); // (N x K) row-major
    Tensor c;
    for (auto _ : state) {
        gemmTransB(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmTransB)->Arg(64)->Arg(128);

void
BM_GemmInt8(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(2);
    const Tensor a = randomTensor(rng, n, n);
    const Tensor b = randomTensor(rng, n, n);
    Tensor c;
    for (auto _ : state) {
        gemmInt8(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128);

void
BM_Softmax(benchmark::State &state)
{
    // Row-wise softmax on an (n x n) score matrix — the attention
    // shape that dominates the post-GEMM fig9a profile.  Runs the
    // ambient math backend (vector by default in benches; see main).
    const int64_t n = state.range(0);
    Rng rng(7);
    const Tensor base = randomTensor(rng, n, n);
    for (auto _ : state) {
        Tensor t = base;
        softmaxRows(t);
        benchmark::DoNotOptimize(t.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(256);

void
BM_SoftmaxExact(benchmark::State &state)
{
    // A/B reference: the historical libm scalar path through the
    // same dispatch FOCUS_MATH_BACKEND drives.
    const int64_t n = state.range(0);
    Rng rng(7);
    const Tensor base = randomTensor(rng, n, n);
    const kernels::MathBackend prev = kernels::activeMathBackend();
    kernels::setMathBackend(kernels::MathBackend::Exact);
    for (auto _ : state) {
        Tensor t = base;
        softmaxRows(t);
        benchmark::DoNotOptimize(t.data());
    }
    kernels::setMathBackend(prev);
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SoftmaxExact)->Arg(64)->Arg(256);

void
BM_Silu(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(8);
    const Tensor base = randomTensor(rng, n, n);
    for (auto _ : state) {
        Tensor t = base;
        siluInPlace(t);
        benchmark::DoNotOptimize(t.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Silu)->Arg(256);

void
BM_CosineSimilarity(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    const Tensor t = randomTensor(rng, 2, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cosineSimilarity(t.row(0), t.row(1), n));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CosineSimilarity)->Arg(8)->Arg(32)->Arg(128);

void
BM_SicGather(benchmark::State &state)
{
    const int frames = 8, h = 10, w = 10;
    Rng rng(4);
    std::vector<TokenCoord> coords;
    for (int f = 0; f < frames; ++f) {
        for (int r = 0; r < h; ++r) {
            for (int c = 0; c < w; ++c) {
                coords.push_back(TokenCoord{f, r, c});
            }
        }
    }
    const Tensor base = randomTensor(rng, frames * h * w, 64);
    SicConfig cfg;
    for (auto _ : state) {
        Tensor x = base;
        const SicResult res = sicGather(x, coords, cfg);
        benchmark::DoNotOptimize(res.unique_vectors);
    }
    state.SetItemsProcessed(state.iterations() * frames * h * w * 2);
}
BENCHMARK(BM_SicGather);

void
BM_SicGatherExact(benchmark::State &state)
{
    // A/B reference for the similarity-gather kernel: the historical
    // scalar cosine path.
    const int frames = 8, h = 10, w = 10;
    Rng rng(4);
    std::vector<TokenCoord> coords;
    for (int f = 0; f < frames; ++f) {
        for (int r = 0; r < h; ++r) {
            for (int c = 0; c < w; ++c) {
                coords.push_back(TokenCoord{f, r, c});
            }
        }
    }
    const Tensor base = randomTensor(rng, frames * h * w, 64);
    SicConfig cfg;
    const kernels::MathBackend prev = kernels::activeMathBackend();
    kernels::setMathBackend(kernels::MathBackend::Exact);
    for (auto _ : state) {
        Tensor x = base;
        const SicResult res = sicGather(x, coords, cfg);
        benchmark::DoNotOptimize(res.unique_vectors);
    }
    kernels::setMathBackend(prev);
    state.SetItemsProcessed(state.iterations() * frames * h * w * 2);
}
BENCHMARK(BM_SicGatherExact);

void
BM_StreamingTopK(benchmark::State &state)
{
    const int64_t m = state.range(0);
    Rng rng(5);
    std::vector<float> imp(static_cast<size_t>(m));
    for (auto &v : imp) {
        v = static_cast<float>(rng.uniform());
    }
    StreamingTopK sorter(32, m / 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sorter.select(imp));
    }
    state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_StreamingTopK)->Arg(800)->Arg(6400);

void
BM_OffsetCoding(benchmark::State &state)
{
    std::vector<int64_t> retained;
    Rng rng(6);
    int64_t pos = 0;
    for (int i = 0; i < 2000; ++i) {
        pos += 1 + static_cast<int64_t>(rng.uniformInt(9));
        retained.push_back(pos);
    }
    for (auto _ : state) {
        const auto enc = encodeOffsets(retained);
        benchmark::DoNotOptimize(decodeOffsets(enc));
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_OffsetCoding);

void
BM_DramRequests(benchmark::State &state)
{
    DramModel dram{DramConfig{}};
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dram.access(addr, 64, false));
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRequests);

void
BM_TimeGemmModel(benchmark::State &state)
{
    const AccelConfig cfg = AccelConfig::focus();
    FracSampler psi(nullptr, 0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            timeGemm(cfg, 6381, 3584, 3584, psi, true, true).cycles);
    }
}
BENCHMARK(BM_TimeGemmModel);

// ---- whole-trace cycle model, per FOCUS_SIM_BACKEND ----

const WorkloadTrace &
microDenseTrace()
{
    static const WorkloadTrace tr = buildDenseTrace(
        modelProfile("Llava-Vid"), datasetProfile("VideoMME"));
    return tr;
}

const WorkloadTrace &
microFocusTrace()
{
    static const WorkloadTrace tr = [] {
        const ModelProfile mp = modelProfile("Llava-Vid");
        FunctionalAggregate agg;
        agg.reduced_layers = mp.layers;
        const size_t n = static_cast<size_t>(mp.layers);
        agg.keep_in.assign(n, 1.0);
        agg.keep_out.assign(n, 1.0);
        agg.psi_qkv.assign(n, 0.5);
        agg.psi_oproj.assign(n, 0.5);
        agg.psi_ffn.assign(n, 0.5);
        agg.psi_down.assign(n, 0.5);
        // Empirical per-tile distribution so the SIC sampling path
        // (not the mean-backed closed form) is what gets measured.
        agg.tile_fracs.resize(96);
        for (size_t i = 0; i < agg.tile_fracs.size(); ++i) {
            agg.tile_fracs[i] =
                0.1 + 0.8 * static_cast<double>(i) / 95.0;
        }
        return buildTrace(mp, datasetProfile("VideoMME"),
                          MethodConfig::focusFull(), agg);
    }();
    return tr;
}

void
simulateAccelRow(benchmark::State &state, const AccelConfig &cfg,
                 const WorkloadTrace &trace, SimBackend backend)
{
    const SimBackend saved = activeSimBackend();
    setSimBackend(backend);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulateAccelerator(cfg, trace).cycles);
    }
    setSimBackend(saved);
}

void
BM_SimulateAccelDenseWalk(benchmark::State &state)
{
    simulateAccelRow(state, AccelConfig::systolicArray(),
                     microDenseTrace(), SimBackend::Walk);
}
BENCHMARK(BM_SimulateAccelDenseWalk);

void
BM_SimulateAccelDenseFast(benchmark::State &state)
{
    simulateAccelRow(state, AccelConfig::systolicArray(),
                     microDenseTrace(), SimBackend::Fast);
}
BENCHMARK(BM_SimulateAccelDenseFast);

void
BM_SimulateAccelFocusWalk(benchmark::State &state)
{
    simulateAccelRow(state, AccelConfig::focus(), microFocusTrace(),
                     SimBackend::Walk);
}
BENCHMARK(BM_SimulateAccelFocusWalk);

void
BM_SimulateAccelFocusFast(benchmark::State &state)
{
    simulateAccelRow(state, AccelConfig::focus(), microFocusTrace(),
                     SimBackend::Fast);
}
BENCHMARK(BM_SimulateAccelFocusFast);

} // namespace

// Custom main: kernel microbenches measure the functional kernels the
// pool's workers execute, so the pool defaults to a single thread
// here (the blocked GEMM would otherwise fan M blocks out and the
// per-kernel numbers would depend on the host's core count).
// --threads=N opts back in to a wider pool; the GEMM backend follows
// FOCUS_GEMM_BACKEND as everywhere else.  The SFU math backend
// defaults to vector in benches (FOCUS_MATH_BACKEND overrides) — the
// exact libm path is the ctest default and has its own *Exact rows.
int
main(int argc, char **argv)
{
    int threads = 1;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            threads = std::atoi(argv[i] + 10);
            if (threads < 1) {
                std::fprintf(stderr,
                             "bench_micro_kernels: bad %s "
                             "(expected --threads=N, N >= 1)\n",
                             argv[i]);
                return 1;
            }
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    ThreadPool::setGlobalThreads(threads);
    if (std::getenv("FOCUS_MATH_BACKEND") == nullptr) {
        kernels::setMathBackend(kernels::MathBackend::Vector);
    }
    std::printf("# pool threads: %d, gemm backend: %s, "
                "math backend: %s, sim backend: %s\n",
                ThreadPool::global().threads(),
                kernels::backendName(kernels::activeBackend()),
                kernels::mathBackendName(kernels::activeMathBackend()),
                simBackendName(activeSimBackend()));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
