/**
 * @file
 * Serving-layer benchmark: throughput / latency / batch occupancy of
 * the scheduler policies over a mixed-profile request stream.
 *
 * Replays the standard serving mix (Focus on VideoMME/MVBench, a
 * dense minority class, and the long-video MLVU-Long class) through
 * the ServingSimulator under every batching policy, open loop, plus
 * a closed-loop client population, all from one functional
 * calibration.  Latencies are simulated accelerator seconds at full
 * paper scale (a ~6k-token prefill on the 32x32 array takes tens of
 * seconds), not wall-clock.
 *
 * Usage: bench_serving [samples] [--threads=N] [--batch=N]
 *                      [--arrival-rate=R]
 * Defaults: batch 8, arrival rate 0.025 req/s, 24 requests, seed 42.
 * Output is deterministic in the seed at every thread count.
 */

#include "bench_util.h"

#include "eval/report.h"
#include "serve/cluster.h"
#include "serve/serving_sim.h"

using namespace focus;

namespace
{

void
addPolicyRow(TextTable &table, const char *process,
             const ServingReport &rep, int max_batch,
             BenchRecorder &rec)
{
    table.addRow({rep.policy, process, std::to_string(max_batch),
                  std::to_string(rep.batches.size()),
                  fmtPct(rep.mean_occupancy),
                  fmtF(rep.throughput_rps * 60.0, 3),
                  fmtF(rep.latency.p50, 1), fmtF(rep.latency.p95, 1),
                  fmtF(rep.latency.p99, 1),
                  fmtPct(rep.slo_attainment)});
    const std::string tag =
        std::string(process) + "_" + rep.policy;
    rec.metric(tag + "_throughput_rps", rep.throughput_rps);
    rec.metric(tag + "_p95_s", rep.latency.p95);
    rec.metric(tag + "_slo", rep.slo_attainment);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 2);
    benchBanner("Serving: scheduler policies over a mixed request "
                "stream", bo);

    // Default rate targets ~70% utilization of the Focus config on
    // this mix (mix-weighted batch-of-1 service is ~35 s), so the
    // policy comparison runs in the stable-queue regime; --arrival-rate
    // pushes it into overload.
    const int max_batch = bo.batch > 0 ? bo.batch : 8;
    const double rate =
        bo.arrival_rate > 0.0 ? bo.arrival_rate : 0.025;
    const int num_requests = 24;

    QueueConfig queue;
    queue.process = ArrivalProcess::OpenPoisson;
    queue.arrival_rate_rps = rate;
    queue.num_requests = num_requests;
    queue.seed = 42;
    queue.mix = standardServingMix();

    std::printf("mix: %zu classes, %d requests, open-loop %.3f "
                "req/s, max batch %d\n",
                queue.mix.size(), num_requests, rate, max_batch);
    std::printf("(latencies are simulated accelerator seconds on "
                "the %s config)\n\n",
                AccelConfig::focus().name.c_str());

    ServingSimulator sim(queue, AccelConfig::focus(),
                         benchEvalOptions(bo));
    BenchRecorder rec("serving", bo);

    // Dynamic-batching timeout: the former holds an open batch for
    // up to ~3 mean batch-of-1 service times, trading a bounded
    // formation wait for occupancy.  Fixed rather than rate-scaled
    // so raising --arrival-rate grows the batches.
    const double timeout_s = 120.0;

    TextTable table({"Policy", "Process", "MaxB", "Batches", "Occup",
                     "Req/min", "p50(s)", "p95(s)", "p99(s)", "SLO"});

    SchedulerConfig single;
    single.policy = BatchPolicy::Single;
    single.max_batch = 1;
    addPolicyRow(table, "open", sim.run(single), 1, rec);

    SchedulerConfig fixed;
    fixed.policy = BatchPolicy::FixedSize;
    fixed.max_batch = max_batch;
    addPolicyRow(table, "open", sim.run(fixed), max_batch, rec);

    SchedulerConfig timeout;
    timeout.policy = BatchPolicy::Timeout;
    timeout.max_batch = max_batch;
    timeout.timeout_s = timeout_s;
    addPolicyRow(table, "open", sim.run(timeout), max_batch,
                 rec);

    SchedulerConfig conc;
    conc.policy = BatchPolicy::ConcAware;
    conc.max_batch = max_batch;
    conc.timeout_s = timeout_s;
    const ServingReport conc_rep = sim.run(conc);
    addPolicyRow(table, "open", conc_rep, max_batch, rec);

    // Closed loop: the same mix issued by a finite client
    // population; offered load self-limits to the service rate.
    QueueConfig closed = queue;
    closed.process = ArrivalProcess::ClosedLoop;
    closed.clients = 4;
    closed.think_mean_s = 30.0;
    ServingSimulator closed_sim(closed, AccelConfig::focus(),
                                benchEvalOptions(bo));
    SchedulerConfig closed_sched;
    closed_sched.policy = BatchPolicy::Timeout;
    closed_sched.max_batch = max_batch;
    addPolicyRow(table, "closed", closed_sim.run(closed_sched),
                 max_batch, rec);

    std::printf("%s\n", table.render().c_str());
    std::printf("(timeout policies use timeout = %.1f s; closed "
                "loop: %d clients, %.0f s mean think)\n\n",
                timeout_s, closed.clients, closed.think_mean_s);

    // Accuracy is a property of the method, not the schedule: the
    // delta vs the dense reference shows what concentration costs
    // each class.  Latency columns are from the conc-aware run.
    TextTable cls({"Class", "Req", "Solo(s)", "MeanLat(s)", "SLO",
                   "Acc", "Dense", "dAcc"});
    for (const ClassOutcome &co : conc_rep.classes) {
        cls.addRow({co.label, std::to_string(co.requests),
                    fmtF(co.solo_latency_s, 1),
                    fmtF(co.mean_latency_s, 1),
                    fmtPct(co.slo_attainment), fmtPct(co.accuracy),
                    fmtPct(co.dense_accuracy),
                    fmtF(co.accuracyDelta() * 100.0, 1)});
    }
    std::printf("%s\n", cls.render().c_str());

    // ---- cross-request prefix cache ----
    // Everything above this marker is cache-independent; the CI
    // digest diffs the stdout head (lines before the first line
    // starting with "prefix-cache") of a FOCUS_PREFIX_CACHE=on run
    // against an =off run, so cache sections may only appear below.
    std::printf("prefix-cache: cross-request retained-token cache "
                "(FOCUS_PREFIX_CACHE=%s)\n\n",
                prefixCacheModeName(activePrefixCacheMode()));
    if (activePrefixCacheMode() == PrefixCacheMode::Off) {
        std::printf("(disabled; budget sweep and routing sections "
                    "skipped)\n");
        return 0;
    }

    // A longer stream than the policy tables: with the standard
    // mix's Zipf(0.9) identities over 256 prefixes per class, hot
    // prefixes need ~10+ draws per class to repeat enough for the
    // doorkeeper to admit and the budget sweep to separate.
    QueueConfig cache_queue = queue;
    cache_queue.num_requests = 8 * num_requests;
    ServingSimulator csim(cache_queue, AccelConfig::focus(),
                          benchEvalOptions(bo));
    SchedulerConfig csched;
    csched.policy = BatchPolicy::Timeout;
    csched.max_batch = max_batch;
    csched.timeout_s = timeout_s;

    // Budgets in units of the Focus class's slab so the sweep spans
    // "one resident prefix" to "whole working set" at any model
    // scale; the table prints real megabytes.
    const double slab_mb =
        static_cast<double>(
            csim.comboSlabSpec(csim.classCombo(0), "probe").bytes()) /
        (1024.0 * 1024.0);
    TextTable sweep({"Budget(MB)", "HitRate", "Hits", "Adm", "Evict",
                     "Res(MB)", "RTerr(1e-3)", "p50(s)", "p95(s)",
                     "SLO"});
    ServingReport best;
    for (const int slabs : {0, 2, 8, 64}) {
        PrefixCacheConfig pc;
        pc.budget_bytes = static_cast<int64_t>(slabs) *
            csim.comboSlabSpec(csim.classCombo(0), "probe").bytes();
        csim.setPrefixCache(pc);
        const ServingReport rep = csim.run(csched);
        const PrefixCacheStats &pcs = rep.prefix_cache;
        sweep.addRow(
            {slabs == 0 ? "off" : fmtF(slabs * slab_mb, 2),
             slabs == 0 ? "-" : fmtPct(pcs.hitRate()),
             std::to_string(pcs.hits), std::to_string(pcs.admissions),
             std::to_string(pcs.evictions),
             fmtF(static_cast<double>(pcs.bytes_resident) /
                      (1024.0 * 1024.0), 2),
             fmtF(pcs.meanRoundTripError() * 1e3, 3),
             fmtF(rep.latency.p50, 1), fmtF(rep.latency.p95, 1),
             fmtPct(rep.slo_attainment)});
        const std::string tag = "cache_s" + std::to_string(slabs);
        rec.metric(tag + "_hit_rate", pcs.hitRate());
        rec.metric(tag + "_p95_s", rep.latency.p95);
        rec.metric(tag + "_mean_s", rep.latency.mean);
        if (slabs == 64) {
            best = rep;
        }
    }
    std::printf("fp16 slab budget sweep (%d requests, timeout "
                "policy; budgets in %.2f MB slabs):\n%s\n",
                cache_queue.num_requests, slab_mb,
                sweep.render().c_str());

    // Per-class view at the largest budget: the hit-solo column is
    // the batch-of-1 service of a cache hit (text rows + cached-KV
    // streaming only) against the full recompute.
    TextTable chit({"Class", "Req", "Hits", "Solo(s)", "HitSolo(s)",
                    "MeanLat(s)"});
    for (size_t c = 0; c < best.classes.size(); ++c) {
        const ClassOutcome &co = best.classes[c];
        const int cid = static_cast<int>(c);
        chit.addRow({co.label, std::to_string(co.requests),
                     std::to_string(co.prefix_hits),
                     fmtF(csim.classSolo(cid).seconds(), 1),
                     fmtF(csim.classHitSolo(cid).seconds(), 1),
                     fmtF(co.mean_latency_s, 1)});
        rec.metric("cache_hits_class" + std::to_string(cid),
                   co.prefix_hits);
    }
    std::printf("per-class cache effect at the largest budget:\n%s\n",
                chit.render().c_str());

    // Per-replica caches make routing policy visible: hash-affinity
    // routing concentrates a prefix's repeats on the replica holding
    // its slab, round-robin scatters them across all caches.
    TextTable route({"Routing", "HitRate", "Hits", "p95(s)", "SLO"});
    for (const RoutingPolicy policy :
         {RoutingPolicy::HashRing, RoutingPolicy::RoundRobin}) {
        ClusterConfig cfg;
        cfg.replicas = 4;
        cfg.routing = policy;
        cfg.prefix_cache.budget_bytes = 16 *
            csim.comboSlabSpec(csim.classCombo(0), "probe").bytes();
        const ClusterReport rep =
            ClusterSimulator(csim, cfg).run(csched);
        route.addRow({routingPolicyName(policy),
                      fmtPct(rep.prefix_cache.hitRate()),
                      std::to_string(rep.prefix_cache.hits),
                      fmtF(rep.merged.latency.p95, 1),
                      fmtPct(rep.merged.slo_attainment)});
        rec.metric(std::string("cache_") + routingPolicyName(policy) +
                       "_hit_rate",
                   rep.prefix_cache.hitRate());
    }
    std::printf("routing policy vs per-replica caches (4 replicas, "
                "16-slab budget each):\n%s\n", route.render().c_str());
    return 0;
}
