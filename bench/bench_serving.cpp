/**
 * @file
 * Serving-layer benchmark: throughput / latency / batch occupancy of
 * the scheduler policies over a mixed-profile request stream.
 *
 * Replays the standard serving mix (Focus on VideoMME/MVBench, a
 * dense minority class, and the long-video MLVU-Long class) through
 * the ServingSimulator under every batching policy, open loop, plus
 * a closed-loop client population, all from one functional
 * calibration.  Latencies are simulated accelerator seconds at full
 * paper scale (a ~6k-token prefill on the 32x32 array takes tens of
 * seconds), not wall-clock.
 *
 * Usage: bench_serving [samples] [--threads=N] [--batch=N]
 *                      [--arrival-rate=R]
 * Defaults: batch 8, arrival rate 0.025 req/s, 24 requests, seed 42.
 * Output is deterministic in the seed at every thread count.
 */

#include "bench_util.h"

#include "eval/report.h"
#include "serve/serving_sim.h"

using namespace focus;

namespace
{

void
addPolicyRow(TextTable &table, const char *process,
             const ServingReport &rep, int max_batch,
             BenchRecorder &rec)
{
    table.addRow({rep.policy, process, std::to_string(max_batch),
                  std::to_string(rep.batches.size()),
                  fmtPct(rep.mean_occupancy),
                  fmtF(rep.throughput_rps * 60.0, 3),
                  fmtF(rep.latency.p50, 1), fmtF(rep.latency.p95, 1),
                  fmtF(rep.latency.p99, 1),
                  fmtPct(rep.slo_attainment)});
    const std::string tag =
        std::string(process) + "_" + rep.policy;
    rec.metric(tag + "_throughput_rps", rep.throughput_rps);
    rec.metric(tag + "_p95_s", rep.latency.p95);
    rec.metric(tag + "_slo", rep.slo_attainment);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 2);
    benchBanner("Serving: scheduler policies over a mixed request "
                "stream", bo);

    // Default rate targets ~70% utilization of the Focus config on
    // this mix (mix-weighted batch-of-1 service is ~35 s), so the
    // policy comparison runs in the stable-queue regime; --arrival-rate
    // pushes it into overload.
    const int max_batch = bo.batch > 0 ? bo.batch : 8;
    const double rate =
        bo.arrival_rate > 0.0 ? bo.arrival_rate : 0.025;
    const int num_requests = 24;

    QueueConfig queue;
    queue.process = ArrivalProcess::OpenPoisson;
    queue.arrival_rate_rps = rate;
    queue.num_requests = num_requests;
    queue.seed = 42;
    queue.mix = standardServingMix();

    std::printf("mix: %zu classes, %d requests, open-loop %.3f "
                "req/s, max batch %d\n",
                queue.mix.size(), num_requests, rate, max_batch);
    std::printf("(latencies are simulated accelerator seconds on "
                "the %s config)\n\n",
                AccelConfig::focus().name.c_str());

    ServingSimulator sim(queue, AccelConfig::focus(),
                         benchEvalOptions(bo));
    BenchRecorder rec("serving", bo);

    // Dynamic-batching timeout: the former holds an open batch for
    // up to ~3 mean batch-of-1 service times, trading a bounded
    // formation wait for occupancy.  Fixed rather than rate-scaled
    // so raising --arrival-rate grows the batches.
    const double timeout_s = 120.0;

    TextTable table({"Policy", "Process", "MaxB", "Batches", "Occup",
                     "Req/min", "p50(s)", "p95(s)", "p99(s)", "SLO"});

    SchedulerConfig single;
    single.policy = BatchPolicy::Single;
    single.max_batch = 1;
    addPolicyRow(table, "open", sim.run(single), 1, rec);

    SchedulerConfig fixed;
    fixed.policy = BatchPolicy::FixedSize;
    fixed.max_batch = max_batch;
    addPolicyRow(table, "open", sim.run(fixed), max_batch, rec);

    SchedulerConfig timeout;
    timeout.policy = BatchPolicy::Timeout;
    timeout.max_batch = max_batch;
    timeout.timeout_s = timeout_s;
    addPolicyRow(table, "open", sim.run(timeout), max_batch,
                 rec);

    SchedulerConfig conc;
    conc.policy = BatchPolicy::ConcAware;
    conc.max_batch = max_batch;
    conc.timeout_s = timeout_s;
    const ServingReport conc_rep = sim.run(conc);
    addPolicyRow(table, "open", conc_rep, max_batch, rec);

    // Closed loop: the same mix issued by a finite client
    // population; offered load self-limits to the service rate.
    QueueConfig closed = queue;
    closed.process = ArrivalProcess::ClosedLoop;
    closed.clients = 4;
    closed.think_mean_s = 30.0;
    ServingSimulator closed_sim(closed, AccelConfig::focus(),
                                benchEvalOptions(bo));
    SchedulerConfig closed_sched;
    closed_sched.policy = BatchPolicy::Timeout;
    closed_sched.max_batch = max_batch;
    addPolicyRow(table, "closed", closed_sim.run(closed_sched),
                 max_batch, rec);

    std::printf("%s\n", table.render().c_str());
    std::printf("(timeout policies use timeout = %.1f s; closed "
                "loop: %d clients, %.0f s mean think)\n\n",
                timeout_s, closed.clients, closed.think_mean_s);

    // Accuracy is a property of the method, not the schedule: the
    // delta vs the dense reference shows what concentration costs
    // each class.  Latency columns are from the conc-aware run.
    TextTable cls({"Class", "Req", "Solo(s)", "MeanLat(s)", "SLO",
                   "Acc", "Dense", "dAcc"});
    for (const ClassOutcome &co : conc_rep.classes) {
        cls.addRow({co.label, std::to_string(co.requests),
                    fmtF(co.solo_latency_s, 1),
                    fmtF(co.mean_latency_s, 1),
                    fmtPct(co.slo_attainment), fmtPct(co.accuracy),
                    fmtPct(co.dense_accuracy),
                    fmtF(co.accuracyDelta() * 100.0, 1)});
    }
    std::printf("%s\n", cls.render().c_str());
    return 0;
}
