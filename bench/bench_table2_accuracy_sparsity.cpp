/**
 * @file
 * Table II: accuracy and computation sparsity of Focus and baselines
 * across three video VLM profiles and three video dataset profiles.
 *
 * Paper reference (measured on the real 7B checkpoints): dense
 * accuracy 55.6-67.7; Focus sparsity 76.0-85.5 (80.2 mean) vs
 * AdapTiV 32.5-52.2 and CMC 35.2-63.7; FrameFusion fixed at 70.
 * Our synthetic proxy reproduces the orderings and bands, not the
 * absolute accuracy points.
 */

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const int samples = benchSamples(argc, argv, 10);
    benchBanner("Table II: accuracy and computation sparsity",
                samples);

    TextTable table({"Model", "Dataset", "Metric", "Ori.", "FF",
                     "Ada.", "CMC", "Ours"});

    double focus_sparsity_sum = 0.0;
    double focus_acc_drop_sum = 0.0;
    int cells = 0;

    for (const std::string &model : videoModelNames()) {
        for (const std::string &dataset : videoDatasetNames()) {
            EvalOptions opts;
            opts.samples = samples;
            Evaluator ev(model, dataset, opts);

            std::vector<std::string> acc_row = {model, dataset,
                                                "Acc.(%)"};
            std::vector<std::string> sp_row = {"", "", "Sparsity(%)"};
            double dense_acc = 0.0;
            for (const MethodConfig &m : ev.standardMethods()) {
                const MethodEval e = ev.runFunctional(m);
                const double sp = ev.traceSparsity(m, e);
                acc_row.push_back(fmtPct(e.accuracy));
                sp_row.push_back(fmtPct(sp));
                if (m.kind == MethodKind::Dense) {
                    dense_acc = e.accuracy;
                }
                if (m.kind == MethodKind::Focus) {
                    focus_sparsity_sum += sp;
                    focus_acc_drop_sum += dense_acc - e.accuracy;
                    ++cells;
                }
            }
            table.addRow(acc_row);
            table.addRow(sp_row);
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Focus mean sparsity: %.2f%% (paper: 80.19%%)\n",
                focus_sparsity_sum / cells * 100.0);
    std::printf("Focus mean accuracy drop vs dense: %.2f%% "
                "(paper: 1.20%%)\n",
                focus_acc_drop_sum / cells * 100.0);
    return 0;
}
