/**
 * @file
 * Table II: accuracy and computation sparsity of Focus and baselines
 * across three video VLM profiles and three video dataset profiles.
 *
 * Paper reference (measured on the real 7B checkpoints): dense
 * accuracy 55.6-67.7; Focus sparsity 76.0-85.5 (80.2 mean) vs
 * AdapTiV 32.5-52.2 and CMC 35.2-63.7; FrameFusion fixed at 70.
 * Our synthetic proxy reproduces the orderings and bands, not the
 * absolute accuracy points.
 */

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 10);
    benchBanner("Table II: accuracy and computation sparsity", bo);
    BenchRecorder rec("table2", bo);

    TextTable table({"Model", "Dataset", "Metric", "Ori.", "FF",
                     "Ada.", "CMC", "Ours"});

    // One functional-only cell per method of the standard roster,
    // per (model, dataset); the roster's FrameFusion budget depends
    // on the pair, hence standardMethods() on the shared Evaluator.
    ExperimentGrid grid(benchEvalOptions(bo));
    size_t methods_per_cell = 0;
    for (const std::string &model : videoModelNames()) {
        for (const std::string &dataset : videoDatasetNames()) {
            const std::vector<MethodConfig> methods =
                grid.evaluator(model, dataset).standardMethods();
            methods_per_cell = methods.size();
            for (const MethodConfig &m : methods) {
                ExperimentCell cell{model, dataset, m};
                cell.simulate = false;
                cell.trace_sparsity = true;
                grid.add(cell);
            }
        }
    }
    const std::vector<ExperimentResult> res = grid.run();

    double focus_sparsity_sum = 0.0;
    double focus_acc_drop_sum = 0.0;
    int cells = 0;

    for (size_t i = 0; i < res.size(); i += methods_per_cell) {
        std::vector<std::string> acc_row = {res[i].cell.model,
                                            res[i].cell.dataset,
                                            "Acc.(%)"};
        std::vector<std::string> sp_row = {"", "", "Sparsity(%)"};
        double dense_acc = 0.0;
        for (size_t m = 0; m < methods_per_cell; ++m) {
            const ExperimentResult &r = res[i + m];
            acc_row.push_back(fmtPct(r.eval.accuracy));
            sp_row.push_back(fmtPct(r.trace_sparsity));
            if (r.cell.method.kind == MethodKind::Dense) {
                dense_acc = r.eval.accuracy;
            }
            if (r.cell.method.kind == MethodKind::Focus) {
                focus_sparsity_sum += r.trace_sparsity;
                focus_acc_drop_sum += dense_acc - r.eval.accuracy;
                ++cells;
            }
        }
        table.addRow(acc_row);
        table.addRow(sp_row);
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Focus mean sparsity: %.2f%% (paper: 80.19%%)\n",
                focus_sparsity_sum / cells * 100.0);
    std::printf("Focus mean accuracy drop vs dense: %.2f%% "
                "(paper: 1.20%%)\n",
                focus_acc_drop_sum / cells * 100.0);

    rec.metric("focus_mean_sparsity", focus_sparsity_sum / cells);
    rec.metric("focus_mean_accuracy_drop",
               focus_acc_drop_sum / cells);
    return 0;
}
