/**
 * @file
 * Table III: configuration comparison of Focus and the baseline
 * architectures — PE array, buffers, DRAM bandwidth, on-chip area and
 * power (power measured on the Llava-Vid x VideoMME workload, as in
 * the paper).
 *
 * Paper reference: area 3.12 / 3.38 / 3.58 / 3.21 mm^2 and on-chip
 * power 720 / 1176 / 832 / 736 mW for SA / AdapTiV / CMC / Focus.
 */

#include "bench_util.h"

#include "eval/report.h"
#include "sim/area.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 6);
    benchBanner("Table III: architecture configuration comparison",
                bo);

    struct Row
    {
        MethodConfig method;
        AccelConfig accel;
    };
    const std::vector<Row> rows = {
        {MethodConfig::dense(), AccelConfig::systolicArray()},
        {MethodConfig::adaptivBaseline(), AccelConfig::adaptiv()},
        {MethodConfig::cmcBaseline(), AccelConfig::cmc()},
        {MethodConfig::focusFull(), AccelConfig::focus()},
    };

    ExperimentGrid grid(benchEvalOptions(bo));
    for (const Row &row : rows) {
        grid.add({"Llava-Vid", "VideoMME", row.method, row.accel});
    }
    const std::vector<ExperimentResult> res = grid.run();

    BenchRecorder rec("table3", bo);
    const char *tags[] = {"sa", "adaptiv", "cmc", "focus"};
    TextTable table({"Architecture", "PE Array", "Buffer(KB)",
                     "DRAM(GB/s)", "Area(mm2)", "OnChipPower(mW)"});
    for (size_t i = 0; i < res.size(); ++i) {
        const ExperimentResult &r = res[i];
        const AccelConfig &accel = r.cell.accel;
        char pe[32];
        std::snprintf(pe, sizeof(pe), "%dx%d", accel.array_rows,
                      accel.array_cols);
        const double bw = accel.dram.bytes_per_cycle_per_channel *
            accel.dram.channels * accel.freq_ghz;
        table.addRow({accel.name, pe,
                      fmtF(static_cast<double>(
                               accel.totalBufferBytes()) / 1024.0,
                           0),
                      fmtF(bw, 0), fmtF(totalArea(accel), 2),
                      fmtF(r.metrics.onChipPowerW() * 1e3, 0)});
        const std::string tag = tags[i];
        rec.metric(tag + "_area_mm2", totalArea(accel));
        rec.metric(tag + "_onchip_power_mw",
                   r.metrics.onChipPowerW() * 1e3);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper reference: area 3.12/3.38/3.58/3.21 mm2, "
                "power 720/1176/832/736 mW\n");
    return 0;
}
