/**
 * @file
 * Table IV: influence of INT8 quantization on accuracy and sparsity.
 *
 * For each (model, dataset) cell we report the dense and Focus
 * accuracy under INT8 with the degradation relative to FP16, and the
 * Focus sparsity with its change relative to FP16.  Paper reference:
 * INT8 costs ~0.5% accuracy on average and shifts sparsity by only
 * ~0.13%, demonstrating that concentration and quantization compose.
 */

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 8);
    benchBanner("Table IV: INT8 quantization synergy", bo);
    BenchRecorder rec("table4", bo);

    TextTable table({"Model", "Dataset", "DenseAcc", "DenseDeg",
                     "OursAcc", "OursDeg", "Sparsity", "SpDeg"});

    // Four functional variants per (model, dataset); only the Focus
    // pair needs the full-scale sparsity metric.
    MethodConfig dense_fp = MethodConfig::dense();
    MethodConfig dense_q = MethodConfig::dense();
    dense_q.int8 = true;
    MethodConfig focus_fp = MethodConfig::focusFull();
    MethodConfig focus_q = MethodConfig::focusFull();
    focus_q.int8 = true;

    ExperimentGrid grid(benchEvalOptions(bo));
    constexpr size_t kPerCell = 4;
    for (const std::string &model : videoModelNames()) {
        for (const std::string &dataset : videoDatasetNames()) {
            for (const MethodConfig &m :
                 {dense_fp, dense_q, focus_fp, focus_q}) {
                ExperimentCell cell{model, dataset, m};
                cell.simulate = false;
                cell.trace_sparsity = m.kind == MethodKind::Focus;
                grid.add(cell);
            }
        }
    }
    const std::vector<ExperimentResult> res = grid.run();

    double acc_deg_sum = 0.0, sp_deg_sum = 0.0;
    int cells = 0;
    for (size_t i = 0; i < res.size(); i += kPerCell) {
        const ExperimentResult &dfp = res[i];
        const ExperimentResult &dq = res[i + 1];
        const ExperimentResult &ffp = res[i + 2];
        const ExperimentResult &fq = res[i + 3];

        table.addRow({dfp.cell.model, dfp.cell.dataset,
                      fmtPct(dq.eval.accuracy),
                      fmtPct(dfp.eval.accuracy - dq.eval.accuracy),
                      fmtPct(fq.eval.accuracy),
                      fmtPct(ffp.eval.accuracy - fq.eval.accuracy),
                      fmtPct(fq.trace_sparsity),
                      fmtPct(ffp.trace_sparsity -
                             fq.trace_sparsity)});
        acc_deg_sum += ffp.eval.accuracy - fq.eval.accuracy;
        sp_deg_sum += ffp.trace_sparsity - fq.trace_sparsity;
        ++cells;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Mean Focus accuracy degradation under INT8: %.2f%% "
                "(paper: ~0.5%%)\n", acc_deg_sum / cells * 100.0);
    std::printf("Mean sparsity change under INT8: %.2f%% "
                "(paper: ~0.13%%)\n", sp_deg_sum / cells * 100.0);

    rec.metric("mean_focus_int8_accuracy_degradation",
               acc_deg_sum / cells);
    rec.metric("mean_sparsity_change_int8", sp_deg_sum / cells);
    return 0;
}
