/**
 * @file
 * Table IV: influence of INT8 quantization on accuracy and sparsity.
 *
 * For each (model, dataset) cell we report the dense and Focus
 * accuracy under INT8 with the degradation relative to FP16, and the
 * Focus sparsity with its change relative to FP16.  Paper reference:
 * INT8 costs ~0.5% accuracy on average and shifts sparsity by only
 * ~0.13%, demonstrating that concentration and quantization compose.
 */

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const int samples = benchSamples(argc, argv, 8);
    benchBanner("Table IV: INT8 quantization synergy", samples);

    TextTable table({"Model", "Dataset", "DenseAcc", "DenseDeg",
                     "OursAcc", "OursDeg", "Sparsity", "SpDeg"});

    double acc_deg_sum = 0.0, sp_deg_sum = 0.0;
    int cells = 0;
    for (const std::string &model : videoModelNames()) {
        for (const std::string &dataset : videoDatasetNames()) {
            EvalOptions opts;
            opts.samples = samples;
            Evaluator ev(model, dataset, opts);

            MethodConfig dense_fp = MethodConfig::dense();
            MethodConfig dense_q = MethodConfig::dense();
            dense_q.int8 = true;
            MethodConfig focus_fp = MethodConfig::focusFull();
            MethodConfig focus_q = MethodConfig::focusFull();
            focus_q.int8 = true;

            const MethodEval dfp = ev.runFunctional(dense_fp);
            const MethodEval dq = ev.runFunctional(dense_q);
            const MethodEval ffp = ev.runFunctional(focus_fp);
            const MethodEval fq = ev.runFunctional(focus_q);

            const double sp_fp = ev.traceSparsity(focus_fp, ffp);
            const double sp_q = ev.traceSparsity(focus_q, fq);

            table.addRow({model, dataset, fmtPct(dq.accuracy),
                          fmtPct(dfp.accuracy - dq.accuracy),
                          fmtPct(fq.accuracy),
                          fmtPct(ffp.accuracy - fq.accuracy),
                          fmtPct(sp_q), fmtPct(sp_fp - sp_q)});
            acc_deg_sum += ffp.accuracy - fq.accuracy;
            sp_deg_sum += sp_fp - sp_q;
            ++cells;
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Mean Focus accuracy degradation under INT8: %.2f%% "
                "(paper: ~0.5%%)\n", acc_deg_sum / cells * 100.0);
    std::printf("Mean sparsity change under INT8: %.2f%% "
                "(paper: ~0.13%%)\n", sp_deg_sum / cells * 100.0);
    return 0;
}
