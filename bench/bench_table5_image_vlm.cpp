/**
 * @file
 * Table V: generalization to image VLMs — single-frame workloads on
 * VQAv2/MME/MMBench-like profiles for LLaVA-OneVision and
 * Qwen2.5-VL profiles.
 *
 * With one frame there is no temporal axis: the SIC block degenerates
 * to 1x2x2 and the remaining gains come from semantic pruning and
 * spatial vector similarity.  Paper reference: Focus reaches ~4.3x on
 * Llava-OV and ~1.9x on Qwen2.5-VL (whose dense accuracy is more
 * sensitive), always with smaller accuracy loss than AdapTiV.
 */

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const int samples = benchSamples(argc, argv, 8);
    benchBanner("Table V: image-VLM generalization", samples);

    TextTable table({"Model", "Dataset", "Metric", "Dense", "AdapTiV",
                     "Ours"});

    for (const std::string &model :
         {std::string("Llava-OV"), std::string("Qwen2.5-VL")}) {
        for (const std::string &dataset : imageDatasetNames()) {
            EvalOptions opts;
            opts.samples = samples;
            Evaluator ev(model, dataset, opts);

            // Single frame: restrict the SIC window temporally.
            MethodConfig focus = MethodConfig::focusFull();
            focus.focus.sic.block_f = 1;

            const MethodEval dense =
                ev.runFunctional(MethodConfig::dense());
            const MethodEval ada =
                ev.runFunctional(MethodConfig::adaptivBaseline());
            const MethodEval ours = ev.runFunctional(focus);

            const RunMetrics sa = simulateAccelerator(
                AccelConfig::systolicArray(),
                ev.buildFullTrace(MethodConfig::dense(), dense));
            const RunMetrics ada_rm = simulateAccelerator(
                AccelConfig::adaptiv(),
                ev.buildFullTrace(MethodConfig::adaptivBaseline(),
                                  ada));
            const RunMetrics ours_rm = simulateAccelerator(
                AccelConfig::focus(), ev.buildFullTrace(focus, ours));

            table.addRow({model, dataset, "Speedup", "1.00",
                          fmtX(static_cast<double>(sa.cycles) /
                               ada_rm.cycles),
                          fmtX(static_cast<double>(sa.cycles) /
                               ours_rm.cycles)});
            table.addRow({"", "", "Accuracy(%)", fmtPct(dense.accuracy),
                          fmtPct(ada.accuracy),
                          fmtPct(ours.accuracy)});
        }
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
