/**
 * @file
 * Table V: generalization to image VLMs — single-frame workloads on
 * VQAv2/MME/MMBench-like profiles for LLaVA-OneVision and
 * Qwen2.5-VL profiles.
 *
 * With one frame there is no temporal axis: the SIC block degenerates
 * to 1x2x2 and the remaining gains come from semantic pruning and
 * spatial vector similarity.  Paper reference: Focus reaches ~4.3x on
 * Llava-OV and ~1.9x on Qwen2.5-VL (whose dense accuracy is more
 * sensitive), always with smaller accuracy loss than AdapTiV.
 */

#include "bench_util.h"

#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    const BenchOptions bo = benchOptions(argc, argv, 8);
    benchBanner("Table V: image-VLM generalization", bo);

    // Single frame: restrict the SIC window temporally.
    MethodConfig single_frame_focus = MethodConfig::focusFull();
    single_frame_focus.focus.sic.block_f = 1;

    struct Arch
    {
        MethodConfig method;
        AccelConfig accel;
    };
    const std::vector<Arch> archs = {
        {MethodConfig::dense(), AccelConfig::systolicArray()},
        {MethodConfig::adaptivBaseline(), AccelConfig::adaptiv()},
        {single_frame_focus, AccelConfig::focus()},
    };

    ExperimentGrid grid(benchEvalOptions(bo));
    for (const std::string &model :
         {std::string("Llava-OV"), std::string("Qwen2.5-VL")}) {
        for (const std::string &dataset : imageDatasetNames()) {
            for (const Arch &arch : archs) {
                grid.add({model, dataset, arch.method, arch.accel});
            }
        }
    }
    const std::vector<ExperimentResult> res = grid.run();

    TextTable table({"Model", "Dataset", "Metric", "Dense", "AdapTiV",
                     "Ours"});
    for (size_t i = 0; i < res.size(); i += archs.size()) {
        const ExperimentResult &dense = res[i];
        const ExperimentResult &ada = res[i + 1];
        const ExperimentResult &ours = res[i + 2];
        const double sa_cycles =
            static_cast<double>(dense.metrics.cycles);

        table.addRow({dense.cell.model, dense.cell.dataset, "Speedup",
                      "1.00", fmtX(sa_cycles / ada.metrics.cycles),
                      fmtX(sa_cycles / ours.metrics.cycles)});
        table.addRow({"", "", "Accuracy(%)",
                      fmtPct(dense.eval.accuracy),
                      fmtPct(ada.eval.accuracy),
                      fmtPct(ours.eval.accuracy)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
