/**
 * @file
 * Shared helpers for the bench harness binaries.
 *
 * Every bench accepts an optional sample-count argument (argv[1], or
 * the FOCUS_BENCH_SAMPLES environment variable) controlling how many
 * synthetic QA samples feed each functional measurement; defaults are
 * sized so the full bench suite completes in minutes.  Results are
 * deterministic in the seed.
 */

#ifndef FOCUS_BENCH_BENCH_UTIL_H
#define FOCUS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/evaluator.h"
#include "sim/gpu_model.h"

namespace focus
{

/** Parse the per-cell sample count. */
inline int
benchSamples(int argc, char **argv, int fallback)
{
    if (argc > 1) {
        return std::max(1, std::atoi(argv[1]));
    }
    if (const char *env = std::getenv("FOCUS_BENCH_SAMPLES")) {
        return std::max(1, std::atoi(env));
    }
    return fallback;
}

/** Accelerator architecture matching a method (for Fig. 9 style). */
inline AccelConfig
accelForMethod(const MethodConfig &m)
{
    switch (m.kind) {
      case MethodKind::AdapTiV:
        return AccelConfig::adaptiv();
      case MethodKind::CMC:
        return AccelConfig::cmc();
      case MethodKind::Focus:
        return AccelConfig::focus();
      default:
        return AccelConfig::systolicArray();
    }
}

/** Standard bench banner. */
inline void
benchBanner(const char *what, int samples)
{
    std::printf("=== %s ===\n", what);
    std::printf("(synthetic reproduction; %d samples per cell; "
                "see EXPERIMENTS.md for paper-vs-measured)\n\n",
                samples);
}

} // namespace focus

#endif // FOCUS_BENCH_BENCH_UTIL_H
