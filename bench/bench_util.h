/**
 * @file
 * Shared helpers for the bench harness binaries.
 *
 * Every bench accepts an optional sample-count argument (the first
 * non-flag argument, or the FOCUS_BENCH_SAMPLES environment variable)
 * controlling how many synthetic QA samples feed each functional
 * measurement, and a `--threads=N` flag (or the FOCUS_THREADS
 * environment variable) sizing the thread pool that the experiment
 * grid dispatches cells on; defaults are sized so the full bench
 * suite completes in minutes.  Results are deterministic in the seed
 * and bit-identical at every thread count.
 *
 * Benches run the SFU vector math backend by default (ctest runs
 * exact); set FOCUS_MATH_BACKEND=exact to reproduce the historical
 * libm arithmetic bit-for-bit (see tensor/kernels.h).
 */

#ifndef FOCUS_BENCH_BENCH_UTIL_H
#define FOCUS_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "eval/experiment.h"
#include "eval/evaluator.h"
#include "eval/func_cache.h"
#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "runtime/thread_pool.h"
#include "sim/gpu_model.h"
#include "sim/systolic.h"
#include "tensor/kernels.h"

#ifndef FOCUS_GIT_REV
#define FOCUS_GIT_REV "unknown"
#endif

namespace focus
{

/** Parsed bench command line. */
struct BenchOptions
{
    int samples = 1; ///< QA samples per grid cell
    int threads = 0; ///< explicit --threads=N (0 = pool default)
    int batch = 0;   ///< explicit --batch=N (0 = bench default)
    /** Explicit --arrival-rate=R in req/s (0 = bench default). */
    double arrival_rate = 0.0;
    /** Explicit --replicas=N sweep ceiling (0 = bench default). */
    int replicas = 0;
    /** Explicit --requests=N stream length (0 = bench default). */
    int requests = 0;
};

/**
 * Parse "[samples] [--threads=N] [--batch=N] [--arrival-rate=R]
 * [--replicas=N] [--requests=N]" with the environment fallbacks
 * described in the file header, and size the global pool when
 * --threads is given.  The batch / arrival-rate / replicas /
 * requests serving knobs are consumed by the serving and cluster
 * benches; every bench parses (and rejects malformed values of)
 * them so a shared wrapper script can pass one flag set.
 */
inline BenchOptions
benchOptions(int argc, char **argv, int fallback_samples)
{
    BenchOptions bo;
    bo.samples = fallback_samples;
    bool have_samples = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            bo.threads = std::atoi(argv[i] + 10);
            if (bo.threads < 1) {
                fatal("invalid thread count in '%s' (want a "
                      "positive integer)", argv[i]);
            }
        } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
            char *end = nullptr;
            bo.batch = static_cast<int>(
                std::strtol(argv[i] + 8, &end, 10));
            if (end == argv[i] + 8 || *end != '\0' || bo.batch < 1) {
                fatal("invalid batch size in '%s' (want a positive "
                      "integer)", argv[i]);
            }
        } else if (std::strncmp(argv[i], "--arrival-rate=", 15) == 0) {
            char *end = nullptr;
            bo.arrival_rate = std::strtod(argv[i] + 15, &end);
            if (end == argv[i] + 15 || *end != '\0' ||
                !(bo.arrival_rate > 0.0)) {
                fatal("invalid arrival rate in '%s' (want a positive "
                      "req/s value)", argv[i]);
            }
        } else if (std::strncmp(argv[i], "--replicas=", 11) == 0) {
            char *end = nullptr;
            bo.replicas = static_cast<int>(
                std::strtol(argv[i] + 11, &end, 10));
            if (end == argv[i] + 11 || *end != '\0' ||
                bo.replicas < 1) {
                fatal("invalid replica count in '%s' (want a "
                      "positive integer)", argv[i]);
            }
        } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
            char *end = nullptr;
            bo.requests = static_cast<int>(
                std::strtol(argv[i] + 11, &end, 10));
            if (end == argv[i] + 11 || *end != '\0' ||
                bo.requests < 1) {
                fatal("invalid request count in '%s' (want a "
                      "positive integer)", argv[i]);
            }
        } else if (argv[i][0] == '-' && argv[i][1] != '\0' &&
                   (argv[i][1] < '0' || argv[i][1] > '9')) {
            // Reject unknown flags loudly: a typo like --thread=4
            // must not silently become the sample count.
            fatal("unknown option '%s' (usage: %s [samples] "
                  "[--threads=N] [--batch=N] [--arrival-rate=R] "
                  "[--replicas=N] [--requests=N])",
                  argv[i], argv[0]);
        } else if (!have_samples) {
            bo.samples = std::max(1, std::atoi(argv[i]));
            have_samples = true;
        }
    }
    if (!have_samples) {
        if (const char *env = std::getenv("FOCUS_BENCH_SAMPLES")) {
            bo.samples = std::max(1, std::atoi(env));
        }
    }
    if (bo.threads > 0) {
        ThreadPool::setGlobalThreads(bo.threads);
    }
    // Benches default the SFU tier to the vector backend (the perf
    // configuration); an explicit FOCUS_MATH_BACKEND always wins.
    if (std::getenv("FOCUS_MATH_BACKEND") == nullptr) {
        kernels::setMathBackend(kernels::MathBackend::Vector);
    }
    return bo;
}

/** Shorthand for the per-cell evaluation options. */
inline EvalOptions
benchEvalOptions(const BenchOptions &bo)
{
    EvalOptions opts;
    opts.samples = bo.samples;
    return opts;
}

/** Accelerator architecture matching a method (for Fig. 9 style). */
inline AccelConfig
accelForMethod(const MethodConfig &m)
{
    switch (m.kind) {
      case MethodKind::AdapTiV:
        return AccelConfig::adaptiv();
      case MethodKind::CMC:
        return AccelConfig::cmc();
      case MethodKind::Focus:
        return AccelConfig::focus();
      default:
        return AccelConfig::systolicArray();
    }
}

/**
 * Standard bench banner.  Echoes the active backends so a result can
 * be tied to its configuration; everything *below* the banner is
 * bit-identical across FOCUS_SIM_BACKEND values (the CI smoke diffs
 * it), so the banner is the only line that names the cycle-model
 * backend.
 */
inline void
benchBanner(const char *what, const BenchOptions &bo)
{
    std::printf("=== %s ===\n", what);
    std::printf("(synthetic reproduction; %d samples per cell; "
                "%d threads; %s math; %s sim; %s cache; see "
                "EXPERIMENTS.md for paper-vs-measured)\n\n",
                bo.samples, ThreadPool::global().threads(),
                kernels::mathBackendName(kernels::activeMathBackend()),
                simBackendName(activeSimBackend()),
                funcCacheModeName(activeFuncCacheMode()));
}

/**
 * Machine-readable bench snapshot: wall clock, configuration, and the
 * headline metrics a bench prints, written as BENCH_<name>.json when
 * the recorder goes out of scope.  The FOCUS_BENCH_JSON environment
 * variable controls emission: unset writes into the current
 * directory, "off" disables it, any other value is the destination
 * directory.  Emission is silent — bench stdout below the banner must
 * stay bit-identical across configurations, so the JSON (which embeds
 * wall-clock and backend names) never touches stdout.  CI compares a
 * fresh snapshot against the checked-in one with
 * bench/compare_bench_json.py: metrics must match exactly (they are
 * deterministic), wall clock within a tolerance band.
 */
class BenchRecorder
{
  public:
    BenchRecorder(std::string name, const BenchOptions &bo)
        : name_(std::move(name)), samples_(bo.samples),
          start_(std::chrono::steady_clock::now())
    {
        // Baseline counter snapshot so the obs block reports only the
        // work attributable to this bench (a process may run several
        // recorders back to back).
        if (obs::countersEnabled()) {
            obs_base_work_ = obs::MetricsRegistry::instance()
                                 .counterValues(obs::CounterKind::Work);
            obs_base_sched_ =
                obs::MetricsRegistry::instance().counterValues(
                    obs::CounterKind::Sched);
        }
    }

    BenchRecorder(const BenchRecorder &) = delete;
    BenchRecorder &operator=(const BenchRecorder &) = delete;

    /** Record one headline metric (insertion order is preserved). */
    void
    metric(const std::string &key, double value)
    {
        metrics_.emplace_back(key, value);
    }

    ~BenchRecorder()
    {
        const char *dest = std::getenv("FOCUS_BENCH_JSON");
        if (dest != nullptr && std::strcmp(dest, "off") == 0) {
            return;
        }
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start_)
                .count();
        std::string path;
        if (dest != nullptr && dest[0] != '\0') {
            path = std::string(dest) + "/";
        }
        path += "BENCH_" + name_ + ".json";
        FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr,
                         "bench: cannot write snapshot %s (skipped)\n",
                         path.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
        std::fprintf(f, "  \"git_rev\": \"%s\",\n", FOCUS_GIT_REV);
        std::fprintf(
            f,
            "  \"config\": {\n"
            "    \"samples\": %d,\n    \"threads\": %d,\n"
            "    \"gemm_backend\": \"%s\",\n"
            "    \"math_backend\": \"%s\",\n"
            "    \"sim_backend\": \"%s\",\n"
            "    \"func_cache\": \"%s\"\n  },\n",
            samples_, ThreadPool::global().threads(),
            kernels::backendName(kernels::activeBackend()),
            kernels::mathBackendName(kernels::activeMathBackend()),
            simBackendName(activeSimBackend()),
            funcCacheModeName(activeFuncCacheMode()));
        std::fprintf(f, "  \"wall_ms\": %.3f,\n", wall_ms);
        std::fprintf(f, "  \"metrics\": {");
        for (size_t i = 0; i < metrics_.size(); ++i) {
            std::fprintf(f, "%s\n    \"%s\": %.17g",
                         i == 0 ? "" : ",", metrics_[i].first.c_str(),
                         metrics_[i].second);
        }
        std::fprintf(f, "\n  }");
        // Counter deltas since construction, when FOCUS_OBS enables
        // the registry.  The snapshot comparator ignores unknown
        // top-level keys, so checked-in snapshots (recorded with obs
        // off) stay comparable against obs-on runs.
        if (obs::countersEnabled()) {
            std::fprintf(f, ",\n  \"obs\": {\n    \"mode\": \"%s\",\n",
                         obs::obsModeName(obs::activeObsMode()));
            writeObsSection(f, "counters", obs::CounterKind::Work,
                            obs_base_work_);
            std::fprintf(f, ",\n");
            writeObsSection(f, "sched_counters",
                            obs::CounterKind::Sched, obs_base_sched_);
            std::fprintf(f, "\n  }");
        }
        std::fprintf(f, "\n}\n");
        std::fclose(f);
    }

  private:
    static void
    writeObsSection(
        FILE *f, const char *section, obs::CounterKind kind,
        const std::vector<std::pair<std::string, uint64_t>> &base)
    {
        const std::vector<std::pair<std::string, uint64_t>> now =
            obs::MetricsRegistry::instance().counterValues(kind);
        std::fprintf(f, "    \"%s\": {", section);
        bool first = true;
        for (const auto &kv : now) {
            uint64_t before = 0;
            for (const auto &b : base) {
                if (b.first == kv.first) {
                    before = b.second;
                    break;
                }
            }
            std::fprintf(f, "%s\n      \"%s\": %llu",
                         first ? "" : ",", kv.first.c_str(),
                         static_cast<unsigned long long>(kv.second -
                                                         before));
            first = false;
        }
        std::fprintf(f, first ? "}" : "\n    }");
    }

    std::string name_;
    int samples_;
    std::chrono::steady_clock::time_point start_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, uint64_t>> obs_base_work_;
    std::vector<std::pair<std::string, uint64_t>> obs_base_sched_;
};

} // namespace focus

#endif // FOCUS_BENCH_BENCH_UTIL_H
