#!/usr/bin/env python3
"""Validate FOCUS_OBS_JSON output: metrics.json and trace.json.

The obs subsystem (src/obs/) flushes two documents when
FOCUS_OBS_JSON=<dir> is set and FOCUS_OBS is not off:

  metrics.json  the metrics registry — schema "focus-metrics-v1" with
                "counters" (work: thread-count-invariant totals),
                "sched_counters" (scheduling artifacts), "gauges",
                and "histograms" sections.
  trace.json    Chrome trace-event JSON ("X" complete events plus "M"
                thread_name metadata), loadable in Perfetto.

This script checks both documents against those schemas so CI catches
a malformed flush before a human tries to load it.  With
--diff-counters it instead compares the *deterministic* sections
("counters" and "histograms") of two metrics.json files — the CI leg
runs one bench at --threads=1 and --threads=4 and requires identical
work totals; sched_counters are exempt by design (chunking and latch
waits legitimately follow the thread count).

Exit status: 0 on pass, 1 on validation/diff failure, 2 on usage/IO
errors.
"""

import argparse
import json
import sys

METRICS_SCHEMA = "focus-metrics-v1"
METRICS_SECTIONS = ("counters", "sched_counters", "gauges",
                    "histograms")
DETERMINISTIC_SECTIONS = ("counters", "histograms")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_trace_json: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def fail(msg):
    print(f"check_trace_json: FAIL: {msg}", file=sys.stderr)
    return 1


def check_metrics(doc, path):
    errors = 0
    if doc.get("schema") != METRICS_SCHEMA:
        errors += fail(f"{path}: schema is {doc.get('schema')!r}, "
                       f"want {METRICS_SCHEMA!r}")
    if doc.get("mode") not in ("off", "counters", "trace"):
        errors += fail(f"{path}: bad mode {doc.get('mode')!r}")
    for section in METRICS_SECTIONS:
        if not isinstance(doc.get(section), dict):
            errors += fail(f"{path}: missing section {section!r}")
    for section in ("counters", "sched_counters"):
        for name, v in doc.get(section, {}).items():
            if not isinstance(v, int) or v < 0:
                errors += fail(f"{path}: {section}.{name} = {v!r} "
                               "(want a non-negative integer)")
    for name, h in doc.get("histograms", {}).items():
        bounds = h.get("bounds")
        counts = h.get("counts")
        if (not isinstance(bounds, list) or not bounds or
                sorted(bounds) != bounds or
                len(set(bounds)) != len(bounds)):
            errors += fail(f"{path}: histogram {name}: bounds must "
                           "be a non-empty strictly ascending list")
            continue
        if (not isinstance(counts, list) or
                len(counts) != len(bounds) + 1):
            errors += fail(f"{path}: histogram {name}: want "
                           f"{len(bounds) + 1} counts (bounds + "
                           f"overflow), got "
                           f"{len(counts) if isinstance(counts, list) else counts!r}")
            continue
        if sum(counts) != h.get("count"):
            errors += fail(f"{path}: histogram {name}: bucket sum "
                           f"{sum(counts)} != count {h.get('count')}")
    return errors


def check_trace(doc, path):
    errors = 0
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: no traceEvents array")
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("X", "M"):
            errors += fail(f"{path}: event {i}: ph={ph!r} "
                           "(want X or M)")
            continue
        for key in ("name", "pid", "tid"):
            if key not in e:
                errors += fail(f"{path}: event {i}: missing {key!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                v = e.get(key)
                if not isinstance(v, (int, float)) or v < 0:
                    errors += fail(f"{path}: event {i}: {key}={v!r} "
                                   "(want a non-negative number)")
            if e.get("cat") is None:
                errors += fail(f"{path}: event {i}: missing 'cat'")
    n_x = sum(1 for e in events if e.get("ph") == "X")
    print(f"check_trace_json: {path}: {len(events)} events "
          f"({n_x} spans) OK" if errors == 0 else
          f"check_trace_json: {path}: {errors} error(s)")
    return errors


def diff_counters(a_path, b_path):
    a, b = load(a_path), load(b_path)
    errors = check_metrics(a, a_path) + check_metrics(b, b_path)
    for section in DETERMINISTIC_SECTIONS:
        sa, sb = a.get(section, {}), b.get(section, {})
        for name in sorted(set(sa) | set(sb)):
            if sa.get(name) != sb.get(name):
                errors += fail(
                    f"deterministic {section}.{name} differs: "
                    f"{sa.get(name)!r} ({a_path}) vs "
                    f"{sb.get(name)!r} ({b_path})")
    if errors == 0:
        n = sum(len(a.get(s, {})) for s in DETERMINISTIC_SECTIONS)
        print(f"check_trace_json: {n} deterministic entries "
              f"identical across {a_path} and {b_path}")
    return errors


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--metrics", help="metrics.json to validate")
    ap.add_argument("--trace", help="trace.json to validate")
    ap.add_argument("--diff-counters", nargs=2,
                    metavar=("A", "B"),
                    help="compare deterministic sections of two "
                         "metrics.json files")
    args = ap.parse_args()
    if not (args.metrics or args.trace or args.diff_counters):
        ap.error("nothing to do: pass --metrics, --trace, or "
                 "--diff-counters")

    errors = 0
    if args.metrics:
        doc = load(args.metrics)
        errors += check_metrics(doc, args.metrics)
        if errors == 0:
            n = sum(len(doc.get(s, {})) for s in METRICS_SECTIONS)
            print(f"check_trace_json: {args.metrics}: {n} metrics OK")
    if args.trace:
        errors += check_trace(load(args.trace), args.trace)
    if args.diff_counters:
        errors += diff_counters(*args.diff_counters)
    sys.exit(0 if errors == 0 else 1)


if __name__ == "__main__":
    main()
