#!/usr/bin/env python3
"""Compare a fresh BENCH_<name>.json against a checked-in snapshot.

The bench binaries emit machine-readable snapshots (bench_util.h
BenchRecorder) holding the headline metrics printed below the banner
plus the wall clock.  Metrics are deterministic for a fixed
configuration (samples, seed, GEMM and math backends), so they must
match the snapshot up to --metric-rtol (a small relative tolerance
for libm variation across glibc builds when the exact math backend
leans on the host libm).  Wall clock varies across machines, so it is
only banded: the fresh value must lie within a factor of --wall-band
of the snapshot in either direction — catching order-of-magnitude
regressions (e.g. the functional cache silently disabled) without
flaking on hardware differences.

Exit status: 0 on pass, 1 on any mismatch (with a report), 2 on
usage/IO errors.
"""

import argparse
import json
import sys

# Configuration fields that change what the metrics *mean*; a snapshot
# taken under a different one of these is not comparable.
COMPARABLE_CONFIG = ("samples", "gemm_backend", "math_backend")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"compare_bench_json: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(
        description="Diff a fresh bench JSON against a snapshot.")
    ap.add_argument("fresh", help="freshly generated BENCH_*.json")
    ap.add_argument("snapshot", help="checked-in reference snapshot")
    ap.add_argument("--wall-band", type=float, default=4.0,
                    help="allowed wall-clock ratio in either "
                         "direction (default 4.0)")
    ap.add_argument("--metric-rtol", type=float, default=0.0,
                    help="relative tolerance for metric drift "
                         "(default 0 = exact)")
    args = ap.parse_args()

    fresh = load(args.fresh)
    snap = load(args.snapshot)
    errors = []

    if fresh.get("bench") != snap.get("bench"):
        errors.append(f"bench name mismatch: fresh "
                      f"{fresh.get('bench')!r} vs snapshot "
                      f"{snap.get('bench')!r}")

    fcfg = fresh.get("config", {})
    scfg = snap.get("config", {})
    for key in COMPARABLE_CONFIG:
        if fcfg.get(key) != scfg.get(key):
            errors.append(f"config.{key} mismatch: fresh "
                          f"{fcfg.get(key)!r} vs snapshot "
                          f"{scfg.get(key)!r} (metrics are only "
                          f"comparable under identical {key})")

    fm = fresh.get("metrics", {})
    sm = snap.get("metrics", {})
    missing = sorted(set(sm) - set(fm))
    extra = sorted(set(fm) - set(sm))
    if missing:
        errors.append(f"metrics missing from fresh run: {missing}")
    if extra:
        errors.append(f"metrics not in snapshot: {extra} "
                      f"(regenerate the snapshot when adding metrics)")

    for key in sorted(set(fm) & set(sm)):
        fv, sv = fm[key], sm[key]
        tol = args.metric_rtol * max(abs(fv), abs(sv))
        if abs(fv - sv) > tol:
            errors.append(
                f"metric {key}: fresh {fv!r} vs snapshot {sv!r} "
                f"(|delta| {abs(fv - sv):.3e} > rtol "
                f"{args.metric_rtol:g})")

    fw, sw = fresh.get("wall_ms"), snap.get("wall_ms")
    if not isinstance(fw, (int, float)) or not isinstance(
            sw, (int, float)) or sw <= 0:
        errors.append(f"wall_ms unreadable: fresh {fw!r} snapshot "
                      f"{sw!r}")
    elif not (sw / args.wall_band <= fw <= sw * args.wall_band):
        errors.append(
            f"wall clock out of band: fresh {fw:.1f} ms vs snapshot "
            f"{sw:.1f} ms (band {args.wall_band:g}x)")

    if errors:
        print(f"FAIL: {args.fresh} vs {args.snapshot}")
        for e in errors:
            print(f"  - {e}")
        return 1
    print(f"OK: {args.fresh} matches {args.snapshot} "
          f"({len(sm)} metrics exact within rtol "
          f"{args.metric_rtol:g}; wall {fw:.1f} ms vs {sw:.1f} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
