/**
 * @file
 * Calibration probe (development utility): sweeps baseline thresholds
 * and dumps Focus per-layer concentration state so the default
 * hyper-parameters can be placed in the paper's operating regime.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/evaluator.h"

using namespace focus;

int
main(int argc, char **argv)
{
    EvalOptions opts;
    opts.samples = argc > 1 ? std::max(1, std::atoi(argv[1])) : 8;
    const std::string dataset = argc > 2 ? argv[2] : "VideoMME";

    Evaluator ev("Llava-Vid", dataset, opts);

    std::printf("== dense ==\n");
    const MethodEval dense = ev.runFunctional(MethodConfig::dense());
    std::printf("accuracy %.3f\n\n", dense.accuracy);

    std::printf("== adaptiv sign-threshold sweep ==\n");
    for (double th : {0.60, 0.65, 0.70, 0.72, 0.75, 0.78}) {
        MethodConfig m = MethodConfig::adaptivBaseline();
        m.adaptiv.sign_threshold = th;
        const MethodEval e = ev.runFunctional(m);
        std::printf("th=%.2f  keep=%.3f sparsity=%.3f acc=%.3f\n", th,
                    e.agg.keep_in.front(), e.sparsity, e.accuracy);
    }

    std::printf("\n== cmc sad-threshold sweep ==\n");
    for (double th : {0.5, 0.7, 0.9, 1.1, 1.3, 1.5}) {
        MethodConfig m = MethodConfig::cmcBaseline();
        m.cmc.sad_threshold = th;
        const MethodEval e = ev.runFunctional(m);
        std::printf("th=%.2f  keep=%.3f sparsity=%.3f acc=%.3f\n", th,
                    e.agg.keep_in.front(), e.sparsity, e.accuracy);
    }

    std::printf("\n== focus threshold sweep ==\n");
    for (double th : {0.80, 0.85, 0.90, 0.95}) {
        MethodConfig m = MethodConfig::focusFull();
        m.focus.sic.threshold = static_cast<float>(th);
        const MethodEval e = ev.runFunctional(m);
        std::printf("th=%.2f sparsity=%.3f acc=%.3f\n", th, e.sparsity,
                    e.accuracy);
        std::printf("  layer: keep_in/out  psi qkv/oproj/ffn/down\n");
        for (int l = 0; l < e.agg.reduced_layers; ++l) {
            std::printf("  L%d: %.2f/%.2f  %.2f %.2f %.2f %.2f\n", l,
                        e.agg.keep_in[l], e.agg.keep_out[l],
                        e.agg.psi_qkv[l], e.agg.psi_oproj[l],
                        e.agg.psi_ffn[l], e.agg.psi_down[l]);
        }
    }
    return 0;
}
