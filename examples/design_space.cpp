/**
 * @file
 * Design-space exploration with the public simulator API: how does a
 * custom Focus configuration trade latency against buffer cost?
 *
 *   design_space [samples]
 *
 * Demonstrates driving the trace/simulation layers directly: one
 * functional measurement is reused across many accelerator
 * configurations, which is how an architect would sweep a design.
 */

#include <cstdio>
#include <cstdlib>

#include "eval/evaluator.h"
#include "eval/report.h"
#include "sim/area.h"

using namespace focus;

int
main(int argc, char **argv)
{
    EvalOptions opts;
    opts.samples = argc > 1 ? std::atoi(argv[1]) : 4;

    Evaluator ev("Llava-Vid", "VideoMME", opts);
    std::printf("Functional measurement (one pass, reused by every "
                "design point)...\n");
    const MethodEval eval =
        ev.runFunctional(MethodConfig::focusFull());
    const WorkloadTrace trace =
        ev.buildFullTrace(MethodConfig::focusFull(), eval);
    const WorkloadTrace dense_trace =
        buildDenseTrace(ev.modelProfile(), ev.datasetProfile());

    const RunMetrics sa = simulateAccelerator(
        AccelConfig::systolicArray(), dense_trace);

    std::printf("Sweeping array geometry x m-tile x accumulators "
                "(%d design points):\n\n", 3 * 3 * 2);
    TextTable table({"Array", "mTile", "Accum", "Speedup",
                     "Area(mm2)", "Util"});
    for (int geom = 0; geom < 3; ++geom) {
        for (int64_t tile : {512, 1024, 2048}) {
            for (int acc : {32, 64}) {
                AccelConfig cfg = AccelConfig::focus();
                if (geom == 1) {
                    cfg.array_rows = 16;
                    cfg.array_cols = 64;
                } else if (geom == 2) {
                    cfg.array_rows = 64;
                    cfg.array_cols = 16;
                }
                cfg.m_tile = tile;
                cfg.output_buffer = tile * 4 * 128;
                cfg.scatter_accumulators = acc;
                const RunMetrics rm = simulateAccelerator(cfg, trace);
                char geom_s[16];
                std::snprintf(geom_s, sizeof(geom_s), "%dx%d",
                              cfg.array_rows, cfg.array_cols);
                table.addRow({geom_s, std::to_string(tile),
                              std::to_string(acc),
                              fmtX(static_cast<double>(sa.cycles) /
                                   rm.cycles),
                              fmtF(totalArea(cfg), 2),
                              fmtF(rm.utilization, 3)});
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("The paper's pick (32x32, m=1024, 64 accumulators) "
                "balances speedup against buffer area.\n");
    return 0;
}
