/**
 * @file
 * Design-space exploration with the public simulator API: how does a
 * custom Focus configuration trade latency against buffer cost?
 *
 *   design_space [samples]
 *
 * Demonstrates the two-layer experiment API: an ExperimentGrid cell
 * produces the functional measurement and its full-scale trace (the
 * grid parallelizes sample evaluation on the thread pool — set
 * FOCUS_THREADS to control it), and the trace is then reused across
 * many accelerator configurations, which is how an architect would
 * sweep a design.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "eval/experiment.h"
#include "eval/report.h"
#include "sim/area.h"

using namespace focus;

int
main(int argc, char **argv)
{
    EvalOptions opts;
    opts.samples = argc > 1 ? std::max(1, std::atoi(argv[1])) : 4;

    std::printf("Functional measurement (one grid cell, reused by "
                "every design point; %d threads)...\n",
                ThreadPool::global().threads());
    ExperimentGrid grid(opts);
    ExperimentCell cell{"Llava-Vid", "VideoMME",
                        MethodConfig::focusFull()};
    cell.simulate = false;
    cell.keep_trace = true;
    grid.add(cell);
    const ExperimentResult measured = grid.run().front();
    const WorkloadTrace &trace = measured.trace;

    const Evaluator &ev = grid.evaluator("Llava-Vid", "VideoMME");
    const WorkloadTrace dense_trace =
        buildDenseTrace(ev.modelProfile(), ev.datasetProfile());

    const RunMetrics sa = simulateAccelerator(
        AccelConfig::systolicArray(), dense_trace);

    std::printf("Sweeping array geometry x m-tile x accumulators "
                "(%d design points):\n\n", 3 * 3 * 2);
    TextTable table({"Array", "mTile", "Accum", "Speedup",
                     "Area(mm2)", "Util"});
    for (int geom = 0; geom < 3; ++geom) {
        for (int64_t tile : {512, 1024, 2048}) {
            for (int acc : {32, 64}) {
                AccelConfig cfg = AccelConfig::focus();
                if (geom == 1) {
                    cfg.array_rows = 16;
                    cfg.array_cols = 64;
                } else if (geom == 2) {
                    cfg.array_rows = 64;
                    cfg.array_cols = 16;
                }
                cfg.m_tile = tile;
                cfg.output_buffer = tile * 4 * 128;
                cfg.scatter_accumulators = acc;
                const RunMetrics rm = simulateAccelerator(cfg, trace);
                char geom_s[16];
                std::snprintf(geom_s, sizeof(geom_s), "%dx%d",
                              cfg.array_rows, cfg.array_cols);
                table.addRow({geom_s, std::to_string(tile),
                              std::to_string(acc),
                              fmtX(static_cast<double>(sa.cycles) /
                                   rm.cycles),
                              fmtF(totalArea(cfg), 2),
                              fmtF(rm.utilization, 3)});
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("The paper's pick (32x32, m=1024, 64 accumulators) "
                "balances speedup against buffer area.\n");
    return 0;
}
