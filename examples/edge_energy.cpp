/**
 * @file
 * Edge-deployment energy study: joules per video-QA query for each
 * architecture — the deployment argument of the paper's introduction
 * (VLMs on battery-powered edge devices).
 *
 *   edge_energy [samples]
 *
 * Reports per-query latency, average power, energy, and queries per
 * watt-hour for the dense systolic array, AdapTiV, CMC, the Jetson
 * GPU model, and Focus.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "eval/evaluator.h"
#include "eval/report.h"
#include "sim/gpu_model.h"

using namespace focus;

int
main(int argc, char **argv)
{
    EvalOptions opts;
    opts.samples = argc > 1 ? std::max(1, std::atoi(argv[1])) : 4;

    Evaluator ev("Llava-Vid", "VideoMME", opts);

    struct Entry
    {
        MethodConfig method;
        AccelConfig accel;
    };
    const std::vector<Entry> entries = {
        {MethodConfig::dense(), AccelConfig::systolicArray()},
        {MethodConfig::adaptivBaseline(), AccelConfig::adaptiv()},
        {MethodConfig::cmcBaseline(), AccelConfig::cmc()},
        {MethodConfig::focusFull(), AccelConfig::focus()},
    };

    TextTable table({"Design", "Latency(s)", "AvgPower(W)",
                     "Energy(J)", "Queries/Wh"});
    for (const Entry &e : entries) {
        const RunMetrics rm = ev.simulate(e.method, e.accel);
        const double energy = rm.energy.total();
        table.addRow({e.accel.name, fmtF(rm.seconds(), 2),
                      fmtF(rm.totalPowerW(), 2), fmtF(energy, 1),
                      fmtF(3600.0 / energy, 1)});
    }

    // GPU reference: dense prefill on a Jetson-class device at a
    // representative 10 W board power.
    {
        MethodEval dense_eval;
        ev.simulate(MethodConfig::dense(),
                    AccelConfig::systolicArray(), &dense_eval);
        const WorkloadTrace tr =
            ev.buildFullTrace(MethodConfig::dense(), dense_eval);
        const double secs = gpuSeconds(tr, GpuConfig{}, false);
        const double watts = 10.0;
        table.addRow({"Jetson-GPU", fmtF(secs, 2), fmtF(watts, 2),
                      fmtF(secs * watts, 1),
                      fmtF(3600.0 / (secs * watts), 1)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Per-query energy on one long-video QA prefill "
                "(Llava-Vid x VideoMME scale).  Focus's concentration "
                "turns the same silicon budget into several times "
                "more queries per charge.\n");
    return 0;
}
