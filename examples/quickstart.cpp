/**
 * @file
 * Quickstart: evaluate Focus against all baselines on one
 * (model, dataset) pair, end to end.
 *
 *   quickstart [samples]
 *
 * Runs the functional pipeline (synthetic video QA at reduced scale),
 * builds full-scale traces, simulates every accelerator, and prints
 * accuracy, computation sparsity, speedup and energy ratios.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/evaluator.h"
#include "eval/report.h"
#include "sim/gpu_model.h"

using namespace focus;

int
main(int argc, char **argv)
{
    EvalOptions opts;
    opts.samples = argc > 1 ? std::max(1, std::atoi(argv[1])) : 6;

    std::printf("Focus quickstart: Llava-Vid x VideoMME, %d samples\n\n",
                opts.samples);

    Evaluator ev("Llava-Vid", "VideoMME", opts);

    // Dense reference on the vanilla systolic array.
    MethodEval dense_eval;
    const RunMetrics sa = ev.simulate(MethodConfig::dense(),
                                      AccelConfig::systolicArray(),
                                      &dense_eval);

    TextTable table({"Method", "Arch", "Accuracy(%)", "Sparsity(%)",
                     "Speedup", "EnergyRatio"});
    table.addRow({"Dense", "SystolicArray", fmtPct(dense_eval.accuracy),
                  fmtPct(0.0), "1.00x", "1.00x"});

    struct Entry
    {
        MethodConfig method;
        AccelConfig accel;
    };
    std::vector<Entry> entries;
    entries.push_back(
        {MethodConfig::adaptivBaseline(), AccelConfig::adaptiv()});
    entries.push_back({MethodConfig::cmcBaseline(), AccelConfig::cmc()});
    entries.push_back({MethodConfig::focusFull(), AccelConfig::focus()});

    for (const Entry &e : entries) {
        MethodEval me;
        const RunMetrics rm = ev.simulate(e.method, e.accel, &me);
        const double speedup =
            static_cast<double>(sa.cycles) / rm.cycles;
        const double energy = sa.energy.total() / rm.energy.total();
        table.addRow({me.method, rm.arch, fmtPct(me.accuracy),
                      fmtPct(ev.traceSparsity(e.method, me)),
                      fmtX(speedup), fmtX(energy)});
    }

    // GPU reference points (analytic roofline).
    {
        const WorkloadTrace dense_tr =
            ev.buildFullTrace(MethodConfig::dense(), dense_eval);
        const GpuConfig gpu;
        const double t_gpu = gpuSeconds(dense_tr, gpu, false);

        MethodConfig ff = MethodConfig::frameFusionBaseline();
        ff.framefusion.reduction = ev.frameFusionReductionFor(0.70);
        const MethodEval ff_eval = ev.runFunctional(ff);
        const WorkloadTrace ff_tr = ev.buildFullTrace(ff, ff_eval);
        const double t_gpu_ff = gpuSeconds(ff_tr, gpu, true);

        table.addRow({"Dense", "GPU", fmtPct(dense_eval.accuracy),
                      fmtPct(0.0), fmtX(sa.seconds() / t_gpu), "-"});
        table.addRow({"FrameFusion", "GPU", fmtPct(ff_eval.accuracy),
                      fmtPct(ev.traceSparsity(ff, ff_eval)),
                      fmtX(sa.seconds() / t_gpu_ff), "-"});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Dense SA: %.2fs at %.0f MHz, %.1f GB DRAM traffic\n",
                sa.seconds(), sa.freq_ghz * 1e3,
                static_cast<double>(sa.dramTotalBytes()) / 1e9);
    return 0;
}
