/**
 * @file
 * Serving demo: replay a small mixed-profile request stream through
 * the batching scheduler and print the per-request timeline.
 *
 *   serve_demo [samples]
 *
 * Generates an open-loop Poisson stream over the standard serving
 * mix, batches it with the timeout policy, fuses each batch into one
 * multi-query trace, and times it on the Focus accelerator.  Shows
 * where each request waited, which batch carried it, and what the
 * stream-level throughput/latency came out to.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "eval/report.h"
#include "serve/serving_sim.h"

using namespace focus;

int
main(int argc, char **argv)
{
    EvalOptions opts;
    opts.samples = argc > 1 ? std::max(1, std::atoi(argv[1])) : 2;

    QueueConfig queue;
    queue.process = ArrivalProcess::OpenPoisson;
    queue.arrival_rate_rps = 0.04;
    queue.num_requests = 10;
    queue.seed = 7;
    queue.mix = standardServingMix();

    std::printf("Serving demo: %d requests, open-loop %.2f req/s, "
                "%d samples per calibration\n\n",
                queue.num_requests, queue.arrival_rate_rps,
                opts.samples);

    ServingSimulator sim(queue, AccelConfig::focus(), opts);

    SchedulerConfig sched;
    sched.policy = BatchPolicy::Timeout;
    sched.max_batch = 4;
    sched.timeout_s = 40.0;
    const ServingReport rep = sim.run(sched);

    TextTable table({"Req", "Class", "Arrive(s)", "Start(s)",
                     "Finish(s)", "Latency(s)", "Batch", "Size",
                     "SLO"});
    for (const RequestOutcome &o : rep.outcomes) {
        table.addRow(
            {std::to_string(o.id),
             queue.mix[static_cast<size_t>(o.class_id)].label(),
             fmtF(o.arrival_s, 1), fmtF(o.start_s, 1),
             fmtF(o.finish_s, 1), fmtF(o.latency_s(), 1),
             std::to_string(o.batch_id),
             std::to_string(o.batch_size),
             o.slo_met ? "ok" : "MISS"});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("policy=%s  batches=%zu  occupancy=%.0f%%  "
                "throughput=%.2f req/min\n",
                rep.policy.c_str(), rep.batches.size(),
                rep.mean_occupancy * 100.0,
                rep.throughput_rps * 60.0);
    std::printf("latency p50/p95/p99 = %.1f / %.1f / %.1f s  "
                "SLO attainment = %.0f%%\n",
                rep.latency.p50, rep.latency.p95, rep.latency.p99,
                rep.slo_attainment * 100.0);
    return 0;
}
