/**
 * @file
 * Video question answering with prompt-aware concentration — the
 * scenario that motivates SEC (paper Fig. 1(a) / Fig. 2(a)).
 *
 *   video_qa [sample_index]
 *
 * Generates one synthetic video QA sample, renders the cross-modal
 * attention heatmap as ASCII per frame (the prompt asks about one
 * object type; attention should concentrate on it), runs Focus and
 * dense forward passes, and reports which tokens SEC retained, the
 * answer, and the per-layer concentration state.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/evaluator.h"

using namespace focus;

namespace
{

/** ASCII intensity ramp for the heatmap. */
char
shade(double v)
{
    static const char ramp[] = " .:-=+*#%@";
    const int idx = static_cast<int>(v * 9.999);
    return ramp[std::clamp(idx, 0, 9)];
}

} // namespace

int
main(int argc, char **argv)
{
    const uint64_t sample_idx =
        argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 0;

    EvalOptions opts;
    opts.samples = 1;
    Evaluator ev("Llava-Vid", "VideoMME", opts);
    const VideoSample sample = ev.generator().sample(sample_idx);

    std::printf("Synthetic video QA sample %llu\n",
                static_cast<unsigned long long>(sample_idx));
    std::printf("Question: \"What is the color of object type %d?\"\n",
                sample.target_type);
    std::printf("Ground-truth answer: color %d\n\n",
                sample.answer_color);

    // ---- Fig. 2(a)-style heatmap ----
    const std::vector<float> imp =
        ev.model().attentionHeatmap(sample);
    float mx = 1e-9f;
    for (float v : imp) {
        mx = std::max(mx, v);
    }
    std::printf("Cross-modal attention heatmap (frames 0 and %d):\n",
                sample.frames - 1);
    for (int r = 0; r < sample.grid_h; ++r) {
        std::string line;
        for (int f : {0, sample.frames - 1}) {
            for (int c = 0; c < sample.grid_w; ++c) {
                const float v =
                    imp[static_cast<size_t>(
                        sample.tokenIndex(f, r, c))];
                line += shade(v / mx);
            }
            line += "   ";
        }
        std::printf("  %s\n", line.c_str());
    }
    std::printf("  ('@' = highest prompt relevance)\n\n");

    // ---- dense vs Focus answers ----
    const ForwardResult dense = ev.model().forward(
        sample, MethodConfig::dense(), ev.generator().bank());
    const ForwardResult fo = ev.model().forward(
        sample, MethodConfig::focusFull(), ev.generator().bank());

    std::printf("Dense answer: color %d (%s)\n", dense.predicted_color,
                dense.correct ? "correct" : "wrong");
    std::printf("Focus answer: color %d (%s)\n", fo.predicted_color,
                fo.correct ? "correct" : "wrong");
    std::printf("Focus computation sparsity (reduced scale): %.1f%%\n\n",
                fo.sparsity() * 100.0);

    std::printf("Per-layer concentration (visual tokens, psi per "
                "gather site):\n");
    std::printf("  %-6s %-10s %-8s %-8s %-8s %-8s\n", "layer",
                "tokens", "qkv", "oproj", "ffn", "down");
    for (size_t l = 0; l < fo.layers.size(); ++l) {
        const LayerRecord &rec = fo.layers[l];
        std::printf("  %-6zu %4ld->%-4ld %-8.2f %-8.2f %-8.2f %-8.2f\n",
                    l, static_cast<long>(rec.visual_in),
                    static_cast<long>(rec.visual_out), rec.psi_qkv,
                    rec.psi_oproj, rec.psi_ffn, rec.psi_down);
    }

    // Coverage of the queried object among retained tokens.
    int retained_relevant = 0;
    for (int64_t orig : fo.active_original) {
        if (std::find(sample.relevant_tokens.begin(),
                      sample.relevant_tokens.end(),
                      orig) != sample.relevant_tokens.end()) {
            ++retained_relevant;
        }
    }
    std::printf("\nSEC retained %zu of %" PRId64 " visual tokens; %d "
                "cover the queried object (of %zu relevant).\n",
                fo.active_original.size(), sample.numVisual(),
                retained_relevant, sample.relevant_tokens.size());
    return 0;
}
