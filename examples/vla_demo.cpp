/**
 * @file
 * Vision-Language-Action extension (paper Sec. VIII-A): applying the
 * Focus unit to an embodied-AI style workload.
 *
 *   vla_demo [samples]
 *
 * VLA models consume the same modalities as VLMs — frames plus an
 * instruction — so SEC's prompt-aware pruning and SIC's vector
 * concentration transfer directly.  A manipulation episode is nearly
 * static (tabletop scene, slow end-effector), so temporal redundancy
 * is even higher than in web video; the instruction names the object
 * to act on, so semantic pruning can be aggressive.  This demo runs
 * the full pipeline on the VLA-Manip profile and reports the
 * grounding accuracy (did the policy attend to the commanded
 * object?), sparsity, and speedup/energy over the dense array.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "eval/evaluator.h"
#include "eval/report.h"

using namespace focus;

int
main(int argc, char **argv)
{
    EvalOptions opts;
    opts.samples = argc > 1 ? std::max(1, std::atoi(argv[1])) : 8;

    std::printf("VLA extension demo: manipulation episodes "
                "(%d episodes)\n\n", opts.samples);

    Evaluator ev("Llava-OV", "VLA-Manip", opts);

    const RunMetrics sa = ev.simulate(MethodConfig::dense(),
                                      AccelConfig::systolicArray());

    TextTable table({"Method", "Grounding(%)", "Sparsity(%)",
                     "Speedup", "EnergyRatio"});
    MethodEval dense_eval = ev.runFunctional(MethodConfig::dense());
    table.addRow({"Dense", fmtPct(dense_eval.accuracy), "0.00",
                  "1.00x", "1.00x"});

    for (MethodConfig m :
         {MethodConfig::adaptivBaseline(), MethodConfig::cmcBaseline(),
          MethodConfig::focusFull()}) {
        AccelConfig accel = m.kind == MethodKind::Focus
            ? AccelConfig::focus()
            : (m.kind == MethodKind::CMC ? AccelConfig::cmc()
                                         : AccelConfig::adaptiv());
        MethodEval e;
        const RunMetrics rm = ev.simulate(m, accel, &e);
        table.addRow({m.name(), fmtPct(e.accuracy),
                      fmtPct(ev.traceSparsity(m, e)),
                      fmtX(static_cast<double>(sa.cycles) / rm.cycles),
                      fmtX(sa.energy.total() / rm.energy.total())});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Near-static episodes concentrate harder than web "
                "video: the redundancy the paper exploits for VLMs "
                "is even more pronounced in embodied settings, "
                "supporting the Sec. VIII-A outlook.\n");
    return 0;
}
