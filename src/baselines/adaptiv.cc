#include "baselines/adaptiv.h"

#include "common/half.h"
#include "common/logging.h"

namespace focus
{

double
signAgreement(const float *a, const float *b, int64_t n)
{
    int64_t agree = 0;
    for (int64_t i = 0; i < n; ++i) {
        const bool sa = Half(a[i]).signBit();
        const bool sb = Half(b[i]).signBit();
        if (sa == sb) {
            ++agree;
        }
    }
    return static_cast<double>(agree) / static_cast<double>(n);
}

TokenReduction
adaptivReduce(const Tensor &visual, const std::vector<TokenCoord> &coords,
              int frames, int grid_h, int grid_w,
              const AdaptivConfig &cfg)
{
    const int64_t m = visual.rows();
    const int64_t d = visual.cols();
    if (static_cast<int64_t>(coords.size()) != m) {
        panic("adaptivReduce: coords/rows mismatch");
    }

    TokenReduction red;
    red.assign.assign(static_cast<size_t>(m), -1);

    auto flat = [&](int f, int r, int c) {
        return (static_cast<int64_t>(f) * grid_h + r) * grid_w + c;
    };

    for (int f = 0; f < frames; ++f) {
        for (int r = 0; r < grid_h; ++r) {
            for (int c = 0; c < grid_w; ++c) {
                const int64_t i = flat(f, r, c);
                const float *xi = visual.row(i);

                // Candidate kept neighbours: left, top (intra-frame).
                int64_t best = -1;
                double best_sim = cfg.sign_threshold;
                for (int nb = 0; nb < 2; ++nb) {
                    const int rr = nb == 0 ? r : r - 1;
                    const int cc = nb == 0 ? c - 1 : c;
                    if (rr < 0 || cc < 0) {
                        continue;
                    }
                    const int64_t j = flat(f, rr, cc);
                    // Merge into the neighbour's surviving
                    // representative.
                    const int64_t rep = red.assign[
                        static_cast<size_t>(j)];
                    if (rep < 0) {
                        continue;
                    }
                    const double sim =
                        signAgreement(xi, visual.row(rep), d);
                    if (sim >= best_sim) {
                        best_sim = sim;
                        best = rep;
                    }
                }
                red.assign[static_cast<size_t>(i)] = best >= 0 ? best : i;
            }
        }
    }

    for (int64_t i = 0; i < m; ++i) {
        if (red.assign[static_cast<size_t>(i)] == i) {
            red.kept.push_back(i);
        }
    }
    return red;
}

} // namespace focus
