/**
 * @file
 * AdapTiV baseline: sign-similarity based image-adaptive token
 * merging (Yoo et al., MICRO 2024), extended to VLM inputs as in the
 * paper's baseline setup.
 *
 * AdapTiV compares the *sign bits* of token embeddings — a very cheap
 * hardware similarity check — and merges a token into a spatial
 * neighbour when the fraction of agreeing signs exceeds a threshold.
 * It is intra-frame only (designed for static images) and ignores the
 * text prompt.
 */

#ifndef FOCUS_BASELINES_ADAPTIV_H
#define FOCUS_BASELINES_ADAPTIV_H

#include "baselines/token_reduction.h"
#include "tensor/tensor.h"
#include "workload/video_gen.h"

namespace focus
{

struct AdaptivConfig
{
    /** Fraction of matching sign bits required to merge. */
    double sign_threshold = 0.72;
};

/**
 * Sign-bit agreement fraction between two length-n embeddings,
 * evaluated on their binary16 sign bits.
 */
double signAgreement(const float *a, const float *b, int64_t n);

/**
 * Compute the AdapTiV token reduction for one sample.
 *
 * Tokens are scanned in raster order within each frame; each token is
 * compared against its left and top kept neighbours and merged into
 * the more sign-similar one if above threshold.
 */
TokenReduction adaptivReduce(const Tensor &visual,
                             const std::vector<TokenCoord> &coords,
                             int frames, int grid_h, int grid_w,
                             const AdaptivConfig &cfg);

} // namespace focus

#endif // FOCUS_BASELINES_ADAPTIV_H
