#include "baselines/cmc.h"

#include <cmath>

#include "common/logging.h"

namespace focus
{

double
normalizedSad(const float *a, const float *b, int64_t n)
{
    double sad = 0.0;
    double mag = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        sad += std::abs(static_cast<double>(a[i]) -
                        static_cast<double>(b[i]));
        mag += std::abs(static_cast<double>(a[i]));
    }
    if (mag < 1e-9) {
        return sad < 1e-9 ? 0.0 : 1e9;
    }
    return sad / mag;
}

TokenReduction
cmcReduce(const Tensor &visual, const std::vector<TokenCoord> &coords,
          int frames, int grid_h, int grid_w, const CmcConfig &cfg)
{
    const int64_t m = visual.rows();
    const int64_t d = visual.cols();
    if (static_cast<int64_t>(coords.size()) != m) {
        panic("cmcReduce: coords/rows mismatch");
    }

    TokenReduction red;
    red.assign.assign(static_cast<size_t>(m), -1);

    auto flat = [&](int f, int r, int c) {
        return (static_cast<int64_t>(f) * grid_h + r) * grid_w + c;
    };

    for (int f = 0; f < frames; ++f) {
        for (int r = 0; r < grid_h; ++r) {
            for (int c = 0; c < grid_w; ++c) {
                const int64_t i = flat(f, r, c);
                if (f == 0) {
                    red.assign[static_cast<size_t>(i)] = i;
                    continue;
                }
                const float *xi = visual.row(i);
                int64_t best_ref = -1;
                double best_sad = cfg.sad_threshold;
                for (int dr = -cfg.search_radius;
                     dr <= cfg.search_radius; ++dr) {
                    for (int dc = -cfg.search_radius;
                         dc <= cfg.search_radius; ++dc) {
                        const int rr = r + dr;
                        const int cc = c + dc;
                        if (rr < 0 || rr >= grid_h || cc < 0 ||
                            cc >= grid_w) {
                            continue;
                        }
                        const int64_t j = flat(f - 1, rr, cc);
                        const double sad =
                            normalizedSad(xi, visual.row(j), d);
                        if (sad < best_sad) {
                            best_sad = sad;
                            best_ref = j;
                        }
                    }
                }
                if (best_ref >= 0) {
                    // Inter-code: chain to the reference's surviving
                    // representative (which may itself be inter-coded
                    // into an earlier frame).
                    const int64_t rep =
                        red.assign[static_cast<size_t>(best_ref)];
                    red.assign[static_cast<size_t>(i)] =
                        rep >= 0 ? rep : best_ref;
                } else {
                    red.assign[static_cast<size_t>(i)] = i;
                }
            }
        }
    }

    for (int64_t i = 0; i < m; ++i) {
        if (red.assign[static_cast<size_t>(i)] == i) {
            red.kept.push_back(i);
        }
    }
    return red;
}

} // namespace focus
