/**
 * @file
 * CMC baseline: codec-assisted matrix condensing (Song et al.,
 * ASPLOS 2024), extended to VLM inputs.
 *
 * CMC borrows H.264-style motion estimation: for every token of
 * frame f it searches a window in frame f-1 for the minimum-SAD
 * (sum of absolute differences) reference; tokens whose best residual
 * falls below a threshold are inter-coded, i.e. dropped and replaced
 * by a reference to the matched token.  The search is global
 * token-wise and — in the hardware design — runs in an off-chip codec
 * unit after full token outputs are staged in DRAM, which is the
 * traffic behaviour contrasted in Fig. 3/Fig. 12.
 */

#ifndef FOCUS_BASELINES_CMC_H
#define FOCUS_BASELINES_CMC_H

#include "baselines/token_reduction.h"
#include "tensor/tensor.h"
#include "workload/video_gen.h"

namespace focus
{

struct CmcConfig
{
    /** Motion search radius in patches (window = (2R+1)^2). */
    int search_radius = 2;

    /**
     * Normalized SAD threshold: mean |a_i - b_i| divided by the mean
     * |a_i| of the current token; below this the token is inter-coded.
     */
    double sad_threshold = 0.72;
};

/** Normalized SAD between two length-n embeddings. */
double normalizedSad(const float *a, const float *b, int64_t n);

/**
 * Compute the CMC token reduction for one sample.  Frame 0 is fully
 * intra-coded (kept); subsequent frames motion-search the previous
 * frame's tokens.
 */
TokenReduction cmcReduce(const Tensor &visual,
                         const std::vector<TokenCoord> &coords,
                         int frames, int grid_h, int grid_w,
                         const CmcConfig &cfg);

} // namespace focus

#endif // FOCUS_BASELINES_CMC_H
