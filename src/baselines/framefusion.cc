#include "baselines/framefusion.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace focus
{

TokenReduction
frameFusionReduce(const Tensor &visual,
                  const std::vector<TokenCoord> &coords, int frames,
                  int grid_h, int grid_w, const FrameFusionConfig &cfg)
{
    const int64_t m = visual.rows();
    const int64_t d = visual.cols();
    if (static_cast<int64_t>(coords.size()) != m) {
        panic("frameFusionReduce: coords/rows mismatch");
    }

    TokenReduction red = identityReduction(m);
    const int64_t budget = static_cast<int64_t>(
        std::round(cfg.reduction * static_cast<double>(m)));
    if (budget <= 0) {
        return red;
    }
    const int64_t merge_budget = static_cast<int64_t>(
        std::round(cfg.merge_share * static_cast<double>(budget)));

    auto flat = [&](int f, int r, int c) {
        return (static_cast<int64_t>(f) * grid_h + r) * grid_w + c;
    };

    // Candidate merges: token (f, r, c) into (f-1, r, c), ranked by
    // cosine similarity.
    struct Cand
    {
        int64_t from;
        int64_t into;
        float sim;
    };
    std::vector<Cand> cands;
    cands.reserve(static_cast<size_t>(m));
    for (int f = 1; f < frames; ++f) {
        for (int r = 0; r < grid_h; ++r) {
            for (int c = 0; c < grid_w; ++c) {
                const int64_t i = flat(f, r, c);
                const int64_t j = flat(f - 1, r, c);
                const float sim = cosineSimilarity(
                    visual.row(i), visual.row(j), d);
                if (static_cast<double>(sim) >= cfg.min_similarity) {
                    cands.push_back(Cand{i, j, sim});
                }
            }
        }
    }
    std::sort(cands.begin(), cands.end(),
              [](const Cand &a, const Cand &b) { return a.sim > b.sim; });

    int64_t removed = 0;
    std::vector<bool> gone(static_cast<size_t>(m), false);
    for (const Cand &cand : cands) {
        if (removed >= merge_budget) {
            break;
        }
        if (gone[static_cast<size_t>(cand.from)]) {
            continue;
        }
        // Merge into the target's surviving representative.
        int64_t rep = cand.into;
        while (red.assign[static_cast<size_t>(rep)] != rep) {
            rep = red.assign[static_cast<size_t>(rep)];
            if (rep < 0) {
                break;
            }
        }
        if (rep < 0 || gone[static_cast<size_t>(cand.from)] ||
            rep == cand.from) {
            continue;
        }
        red.assign[static_cast<size_t>(cand.from)] = rep;
        gone[static_cast<size_t>(cand.from)] = true;
        ++removed;
    }

    // Importance pruning: drop the lowest-L2 survivors until the
    // budget is met.
    struct Mag
    {
        int64_t idx;
        float norm;
    };
    std::vector<Mag> mags;
    for (int64_t i = 0; i < m; ++i) {
        if (!gone[static_cast<size_t>(i)] &&
            red.assign[static_cast<size_t>(i)] == i) {
            mags.push_back(Mag{i, l2Norm(visual.row(i), d)});
        }
    }
    std::sort(mags.begin(), mags.end(),
              [](const Mag &a, const Mag &b) { return a.norm < b.norm; });
    for (const Mag &mg : mags) {
        if (removed >= budget) {
            break;
        }
        // Pruning a token that others merged into would lose them
        // too; only prune tokens that are their own singleton group.
        bool has_dependents = false;
        for (int64_t i = 0; i < m && !has_dependents; ++i) {
            if (i != mg.idx &&
                red.assign[static_cast<size_t>(i)] == mg.idx) {
                has_dependents = true;
            }
        }
        if (has_dependents) {
            continue;
        }
        red.assign[static_cast<size_t>(mg.idx)] = -1;
        gone[static_cast<size_t>(mg.idx)] = true;
        ++removed;
    }

    // Path-compress: a merge target may itself have been merged
    // later; resolve every token to its terminal representative.
    for (int64_t i = 0; i < m; ++i) {
        int64_t rep = red.assign[static_cast<size_t>(i)];
        while (rep >= 0 && rep != red.assign[static_cast<size_t>(rep)]) {
            rep = red.assign[static_cast<size_t>(rep)];
        }
        red.assign[static_cast<size_t>(i)] = rep;
    }

    red.kept.clear();
    for (int64_t i = 0; i < m; ++i) {
        if (red.assign[static_cast<size_t>(i)] == i) {
            red.kept.push_back(i);
        }
    }
    return red;
}

} // namespace focus
