/**
 * @file
 * FrameFusion baseline (Fu et al., 2024): software token reduction
 * combining temporal similarity merging with importance pruning,
 * configured to a fixed reduction budget (70% in the paper's Tbl. II).
 */

#ifndef FOCUS_BASELINES_FRAMEFUSION_H
#define FOCUS_BASELINES_FRAMEFUSION_H

#include "baselines/token_reduction.h"
#include "tensor/tensor.h"
#include "workload/video_gen.h"

namespace focus
{

struct FrameFusionConfig
{
    /** Fraction of visual tokens to eliminate (merge + prune). */
    double reduction = 0.70;

    /**
     * Of the reduction budget, the fraction satisfied by similarity
     * merging (the rest by low-magnitude pruning).
     */
    double merge_share = 0.6;

    /** Minimum cosine similarity for a temporal merge. */
    double min_similarity = 0.6;
};

/**
 * Compute the FrameFusion reduction: merge the most temporally
 * similar (same-position, adjacent-frame) token pairs first, then
 * prune the lowest-L2 tokens until the budget is met.
 */
TokenReduction frameFusionReduce(const Tensor &visual,
                                 const std::vector<TokenCoord> &coords,
                                 int frames, int grid_h, int grid_w,
                                 const FrameFusionConfig &cfg);

} // namespace focus

#endif // FOCUS_BASELINES_FRAMEFUSION_H
