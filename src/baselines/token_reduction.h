/**
 * @file
 * Common representation of token-level reduction (merge/prune)
 * produced by the baseline methods.
 *
 * The baselines (AdapTiV, CMC, FrameFusion) all operate at token
 * granularity: they either merge a token into a surviving
 * representative or drop it entirely.  The VLM forward pass applies a
 * TokenReduction before the transformer layers: kept tokens carry the
 * (weighted) mean embedding of their merge group.
 */

#ifndef FOCUS_BASELINES_TOKEN_REDUCTION_H
#define FOCUS_BASELINES_TOKEN_REDUCTION_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace focus
{

/** Result of a token-level reduction over M visual tokens. */
struct TokenReduction
{
    /**
     * Per original token: index of the kept token absorbing it,
     * itself if kept, or -1 if pruned outright.
     */
    std::vector<int64_t> assign;

    /** Ascending original indices of kept tokens. */
    std::vector<int64_t> kept;

    double
    keepFraction() const
    {
        return assign.empty()
            ? 1.0
            : static_cast<double>(kept.size()) /
                  static_cast<double>(assign.size());
    }
};

/** Identity reduction over @p m tokens. */
inline TokenReduction
identityReduction(int64_t m)
{
    TokenReduction r;
    r.assign.resize(static_cast<size_t>(m));
    r.kept.resize(static_cast<size_t>(m));
    for (int64_t i = 0; i < m; ++i) {
        r.assign[static_cast<size_t>(i)] = i;
        r.kept[static_cast<size_t>(i)] = i;
    }
    return r;
}

} // namespace focus

#endif // FOCUS_BASELINES_TOKEN_REDUCTION_H
