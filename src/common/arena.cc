#include "common/arena.h"

#include <algorithm>
#include <cinttypes>

#include "common/logging.h"

namespace focus
{

namespace
{

/** Fresh chunks grow in this granularity (256 KiB). */
constexpr int64_t kChunkBytes = 256 * 1024;

int64_t
roundUp(int64_t bytes)
{
    return (bytes + SlabArena::kAlign - 1) / SlabArena::kAlign *
        SlabArena::kAlign;
}

} // namespace

SlabArena::SlabArena(int64_t capacity_bytes)
    : capacity_(capacity_bytes)
{
    if (capacity_bytes <= 0) {
        panic("SlabArena: capacity must be positive (got %" PRId64
              " bytes)", capacity_bytes);
    }
}

SlabArena::~SlabArena() = default;

bool
SlabArena::owns(const void *p) const
{
    const unsigned char *b = static_cast<const unsigned char *>(p);
    for (const Chunk &c : chunks_) {
        if (b >= c.mem.get() && b < c.mem.get() + c.size) {
            return true;
        }
    }
    return false;
}

void *
SlabArena::alloc(int64_t bytes)
{
    if (bytes <= 0) {
        panic("SlabArena::alloc: non-positive size %" PRId64, bytes);
    }
    const int64_t rounded = roundUp(bytes);
    if (allocated_ + rounded > capacity_) {
        return nullptr; // over budget: the caller must evict first
    }

    // Exact-size reuse first: slab sizes repeat per combo, so the
    // free list almost always has a fit after warm-up.
    const auto it = free_lists_.find(rounded);
    if (it != free_lists_.end() && !it->second.empty()) {
        void *p = it->second.back();
        it->second.pop_back();
        allocated_ += rounded;
        peak_ = std::max(peak_, allocated_);
        return p;
    }

    // Bump-allocate from the newest chunk; chain a new chunk (sized
    // for the request when it exceeds the granularity) on overflow.
    if (chunks_.empty() ||
        chunks_.back().used + rounded >
            chunks_.back().size - chunks_.back().base) {
        Chunk c;
        // Over-allocate by one alignment quantum so the base offset
        // can round the raw pointer up to a 64-byte boundary.
        c.size = std::max(rounded, kChunkBytes) + kAlign;
        c.mem = std::make_unique<unsigned char[]>(
            static_cast<size_t>(c.size));
        const uintptr_t raw =
            reinterpret_cast<uintptr_t>(c.mem.get());
        c.base = static_cast<int64_t>(
            (kAlign - raw % kAlign) % kAlign);
        chunks_.push_back(std::move(c));
    }
    Chunk &c = chunks_.back();
    void *p = c.mem.get() + c.base + c.used;
    c.used += rounded;
    allocated_ += rounded;
    peak_ = std::max(peak_, allocated_);
    return p;
}

void
SlabArena::free(void *p, int64_t bytes)
{
    if (p == nullptr) {
        panic("SlabArena::free: null pointer");
    }
    if (bytes <= 0) {
        panic("SlabArena::free: non-positive size %" PRId64, bytes);
    }
    if (!owns(p)) {
        panic("SlabArena::free: pointer %p is not from this arena", p);
    }
    const int64_t rounded = roundUp(bytes);
    if (rounded > allocated_) {
        panic("SlabArena::free: freeing %" PRId64 " bytes with only "
              "%" PRId64 " live", rounded, allocated_);
    }
    allocated_ -= rounded;
    free_lists_[rounded].push_back(p);
}

} // namespace focus
