/**
 * @file
 * Pooled slab arena with a hard byte budget.
 *
 * The serving prefix cache (serve/prefix_cache.h) stores compressed
 * retained-token slabs whose sizes repeat per (model, dataset,
 * method) combo, so allocation follows the membound/atomPool idiom:
 * backing memory is carved from large chained chunks by a bump
 * pointer, and freed slabs go onto an exact-size free list for O(1)
 * reuse instead of returning to the chunk.  The budget bounds *live*
 * slab bytes — alloc() fails with nullptr (never throws, never
 * over-allocates) once the resident total would exceed it, which is
 * what makes a cache's memory budget real bytes rather than an entry
 * count.
 *
 * Every allocation is 64-byte aligned (one cache line / typical SIMD
 * width for the fp16 batch converters).  Not thread-safe: the cache
 * tier mutates it only from the serial replay pre-pass.
 */

#ifndef FOCUS_COMMON_ARENA_H
#define FOCUS_COMMON_ARENA_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace focus
{

class SlabArena
{
  public:
    /** Arena with a live-byte budget (fatal when non-positive). */
    explicit SlabArena(int64_t capacity_bytes);

    SlabArena(const SlabArena &) = delete;
    SlabArena &operator=(const SlabArena &) = delete;
    ~SlabArena();

    /**
     * Allocate @p bytes (rounded up to the 64-byte alignment
     * quantum).  Returns nullptr when the rounded size would push the
     * live total past the capacity; panics on a non-positive size.
     */
    void *alloc(int64_t bytes);

    /**
     * Return a slab obtained from alloc() to the size-class free
     * list.  @p bytes must be the original request size; panics on a
     * null pointer, a non-positive size, or a pointer outside every
     * chunk of this arena.
     */
    void free(void *p, int64_t bytes);

    /** Live-byte budget. */
    int64_t capacity() const { return capacity_; }
    /** Currently live (allocated minus freed) bytes, rounded. */
    int64_t allocated() const { return allocated_; }
    /** High-water mark of allocated(). */
    int64_t peak() const { return peak_; }
    /** Backing chunks reserved so far. */
    int64_t chunkCount() const
    {
        return static_cast<int64_t>(chunks_.size());
    }

    /** Allocation alignment and size quantum. */
    static constexpr int64_t kAlign = 64;

  private:
    struct Chunk
    {
        std::unique_ptr<unsigned char[]> mem;
        int64_t size = 0;
        int64_t used = 0;
        /** First 64-byte-aligned offset into mem. */
        int64_t base = 0;
    };

    /** True when @p p lies inside one of this arena's chunks. */
    bool owns(const void *p) const;

    int64_t capacity_ = 0;
    int64_t allocated_ = 0;
    int64_t peak_ = 0;
    std::vector<Chunk> chunks_;
    /** Rounded size -> reusable slab pointers (atomPool free list). */
    std::map<int64_t, std::vector<void *>> free_lists_;
};

} // namespace focus

#endif // FOCUS_COMMON_ARENA_H
