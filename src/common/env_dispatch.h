/**
 * @file
 * Shared environment-variable backend dispatch.
 *
 * Every runtime backend knob in this repo follows the same contract
 * (`FOCUS_GEMM_BACKEND`, `FOCUS_MATH_BACKEND`, `FOCUS_SIM_BACKEND`):
 * an unset or empty variable selects the default, a known name selects
 * that backend, and an unknown name panics loudly listing the valid
 * choices — a typo must never silently fall back to the default.
 */

#ifndef FOCUS_COMMON_ENV_DISPATCH_H
#define FOCUS_COMMON_ENV_DISPATCH_H

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"

namespace focus
{

/**
 * Resolve the environment variable @p env_name against @p names (an
 * array of @p count backend names).  Returns @p fallback when the
 * variable is unset or empty, the matching index otherwise; panics on
 * an unrecognized value.
 */
inline int
envBackendChoice(const char *env_name, const char *const *names,
                 int count, int fallback)
{
    const char *env = std::getenv(env_name);
    if (env == nullptr || *env == '\0') {
        return fallback;
    }
    for (int i = 0; i < count; ++i) {
        if (std::strcmp(env, names[i]) == 0) {
            return i;
        }
    }
    std::string expected;
    for (int i = 0; i < count; ++i) {
        if (i > 0) {
            expected += '|';
        }
        expected += names[i];
    }
    panic("%s: unknown backend '%s' (expected %s)", env_name, env,
          expected.c_str());
}

} // namespace focus

#endif // FOCUS_COMMON_ENV_DISPATCH_H
