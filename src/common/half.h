/**
 * @file
 * IEEE-754 binary16 (half precision) emulation.
 *
 * The functional model of the accelerator operates on FP16 activations
 * with FP32 accumulation, matching the paper's PE configuration
 * ("FP16 Mul FP32 Acc", Tbl. I).  This header provides a storage type
 * with round-to-nearest-even conversions and float-backed arithmetic.
 */

#ifndef FOCUS_COMMON_HALF_H
#define FOCUS_COMMON_HALF_H

#include <cstdint>
#include <cstring>
#include <limits>

namespace focus
{

namespace detail
{

/** Bit-exact float -> uint32 reinterpretation. */
inline uint32_t
floatBits(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

/** Bit-exact uint32 -> float reinterpretation. */
inline float
bitsFloat(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace detail

/**
 * Convert a float to binary16 bits with round-to-nearest-even.
 *
 * Handles normals, subnormals, infinities and NaN.  Overflow saturates
 * to infinity, matching IEEE default rounding behaviour.
 */
inline uint16_t
floatToHalfBits(float value)
{
    const uint32_t bits = detail::floatBits(value);
    const uint32_t sign = (bits >> 16) & 0x8000u;
    uint32_t exp = (bits >> 23) & 0xffu;
    uint32_t mant = bits & 0x7fffffu;

    if (exp == 0xffu) {
        // Inf or NaN: preserve NaN-ness with a quiet bit.
        const uint16_t nan_payload = mant ? 0x0200u : 0x0000u;
        return static_cast<uint16_t>(sign | 0x7c00u | nan_payload |
                                     (mant >> 13));
    }

    // Re-bias 127 -> 15.
    int half_exp = static_cast<int>(exp) - 127 + 15;

    if (half_exp >= 0x1f) {
        // Overflow -> infinity.
        return static_cast<uint16_t>(sign | 0x7c00u);
    }

    if (half_exp <= 0) {
        // Subnormal half (or underflow to zero).
        if (half_exp < -10) {
            return static_cast<uint16_t>(sign);
        }
        // Add implicit leading 1, then shift into subnormal position.
        mant |= 0x800000u;
        const int shift = 14 - half_exp;
        const uint32_t sub = mant >> shift;
        const uint32_t rem = mant & ((1u << shift) - 1);
        const uint32_t half_bit = 1u << (shift - 1);
        uint32_t rounded = sub;
        if (rem > half_bit || (rem == half_bit && (sub & 1u))) {
            rounded += 1;
        }
        return static_cast<uint16_t>(sign | rounded);
    }

    // Normal half: round 23-bit mantissa to 10 bits (RNE).
    uint32_t half_mant = mant >> 13;
    const uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
        half_mant += 1;
        if (half_mant == 0x400u) {
            half_mant = 0;
            half_exp += 1;
            if (half_exp >= 0x1f) {
                return static_cast<uint16_t>(sign | 0x7c00u);
            }
        }
    }
    return static_cast<uint16_t>(
        sign | (static_cast<uint32_t>(half_exp) << 10) | half_mant);
}

/** Convert binary16 bits to float (exact). */
inline float
halfBitsToFloat(uint16_t h)
{
    const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
    uint32_t exp = (h >> 10) & 0x1fu;
    uint32_t mant = h & 0x3ffu;

    if (exp == 0) {
        if (mant == 0) {
            return detail::bitsFloat(sign);
        }
        // Subnormal: normalize.
        int shift = 0;
        while ((mant & 0x400u) == 0) {
            mant <<= 1;
            ++shift;
        }
        mant &= 0x3ffu;
        const uint32_t fexp = 127 - 15 - shift + 1;
        return detail::bitsFloat(sign | (fexp << 23) | (mant << 13));
    }
    if (exp == 0x1fu) {
        return detail::bitsFloat(sign | 0x7f800000u | (mant << 13));
    }
    const uint32_t fexp = exp - 15 + 127;
    return detail::bitsFloat(sign | (fexp << 23) | (mant << 13));
}

/**
 * Half-precision storage type.
 *
 * Arithmetic promotes to float; assignment rounds back to binary16.
 * This mirrors an FP16 datapath with higher-precision intermediate
 * computation.
 */
class Half
{
  public:
    Half() : bits_(0) {}
    explicit Half(float f) : bits_(floatToHalfBits(f)) {}

    /** Construct directly from raw binary16 bits. */
    static Half
    fromBits(uint16_t b)
    {
        Half h;
        h.bits_ = b;
        return h;
    }

    /** Raw binary16 bit pattern. */
    uint16_t bits() const { return bits_; }

    /** Exact widening conversion. */
    float toFloat() const { return halfBitsToFloat(bits_); }

    operator float() const { return toFloat(); }

    /** Sign bit, used by the AdapTiV sign-similarity baseline. */
    bool signBit() const { return (bits_ & 0x8000u) != 0; }

    Half &
    operator+=(Half o)
    {
        *this = Half(toFloat() + o.toFloat());
        return *this;
    }

    bool operator==(const Half &o) const { return bits_ == o.bits_; }
    bool operator!=(const Half &o) const { return bits_ != o.bits_; }

  private:
    uint16_t bits_;
};

/** Round-trip a float through binary16 precision. */
inline float
fp16Round(float f)
{
    return halfBitsToFloat(floatToHalfBits(f));
}

} // namespace focus

#endif // FOCUS_COMMON_HALF_H
