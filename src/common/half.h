/**
 * @file
 * IEEE-754 binary16 (half precision) and bfloat16 emulation.
 *
 * The functional model of the accelerator operates on FP16 activations
 * with FP32 accumulation, matching the paper's PE configuration
 * ("FP16 Mul FP32 Acc", Tbl. I).  This header provides a storage type
 * with round-to-nearest-even conversions and float-backed arithmetic,
 * plus the compressed-slab conversion tier used by the serving
 * prefix cache (serve/prefix_cache.h):
 *
 *  - floatToHalfBits: the readable reference conversion (RNE).
 *  - floatToHalfBitsFast: a branch-light integer-only conversion,
 *    bit-exact to the reference for every input including NaN payload
 *    and subnormal rounding (tests/test_half_arena.cc proves it
 *    exhaustively over all binary16 patterns and the boundary bands).
 *  - floatToBf16Bits / bf16BitsToFloat: bfloat16 with RNE and quiet
 *    NaN handling.
 *  - floatToHalfN / halfToFloatN / floatToBf16N / bf16ToFloatN: batch
 *    converters over contiguous spans (the slab compression path).
 */

#ifndef FOCUS_COMMON_HALF_H
#define FOCUS_COMMON_HALF_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

namespace focus
{

namespace detail
{

/** Bit-exact float -> uint32 reinterpretation. */
inline uint32_t
floatBits(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

/** Bit-exact uint32 -> float reinterpretation. */
inline float
bitsFloat(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace detail

/**
 * Convert a float to binary16 bits with round-to-nearest-even.
 *
 * Handles normals, subnormals, infinities and NaN.  Overflow saturates
 * to infinity, matching IEEE default rounding behaviour.
 */
inline uint16_t
floatToHalfBits(float value)
{
    const uint32_t bits = detail::floatBits(value);
    const uint32_t sign = (bits >> 16) & 0x8000u;
    uint32_t exp = (bits >> 23) & 0xffu;
    uint32_t mant = bits & 0x7fffffu;

    if (exp == 0xffu) {
        // Inf or NaN: preserve NaN-ness with a quiet bit.
        const uint16_t nan_payload = mant ? 0x0200u : 0x0000u;
        return static_cast<uint16_t>(sign | 0x7c00u | nan_payload |
                                     (mant >> 13));
    }

    // Re-bias 127 -> 15.
    int half_exp = static_cast<int>(exp) - 127 + 15;

    if (half_exp >= 0x1f) {
        // Overflow -> infinity.
        return static_cast<uint16_t>(sign | 0x7c00u);
    }

    if (half_exp <= 0) {
        // Subnormal half (or underflow to zero).
        if (half_exp < -10) {
            return static_cast<uint16_t>(sign);
        }
        // Add implicit leading 1, then shift into subnormal position.
        mant |= 0x800000u;
        const int shift = 14 - half_exp;
        const uint32_t sub = mant >> shift;
        const uint32_t rem = mant & ((1u << shift) - 1);
        const uint32_t half_bit = 1u << (shift - 1);
        uint32_t rounded = sub;
        if (rem > half_bit || (rem == half_bit && (sub & 1u))) {
            rounded += 1;
        }
        return static_cast<uint16_t>(sign | rounded);
    }

    // Normal half: round 23-bit mantissa to 10 bits (RNE).
    uint32_t half_mant = mant >> 13;
    const uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
        half_mant += 1;
        if (half_mant == 0x400u) {
            half_mant = 0;
            half_exp += 1;
            if (half_exp >= 0x1f) {
                return static_cast<uint16_t>(sign | 0x7c00u);
            }
        }
    }
    return static_cast<uint16_t>(
        sign | (static_cast<uint32_t>(half_exp) << 10) | half_mant);
}

/** Convert binary16 bits to float (exact). */
inline float
halfBitsToFloat(uint16_t h)
{
    const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
    uint32_t exp = (h >> 10) & 0x1fu;
    uint32_t mant = h & 0x3ffu;

    if (exp == 0) {
        if (mant == 0) {
            return detail::bitsFloat(sign);
        }
        // Subnormal: normalize.
        int shift = 0;
        while ((mant & 0x400u) == 0) {
            mant <<= 1;
            ++shift;
        }
        mant &= 0x3ffu;
        const uint32_t fexp = 127 - 15 - shift + 1;
        return detail::bitsFloat(sign | (fexp << 23) | (mant << 13));
    }
    if (exp == 0x1fu) {
        return detail::bitsFloat(sign | 0x7f800000u | (mant << 13));
    }
    const uint32_t fexp = exp - 15 + 127;
    return detail::bitsFloat(sign | (fexp << 23) | (mant << 13));
}

/**
 * Half-precision storage type.
 *
 * Arithmetic promotes to float; assignment rounds back to binary16.
 * This mirrors an FP16 datapath with higher-precision intermediate
 * computation.
 */
class Half
{
  public:
    Half() : bits_(0) {}
    explicit Half(float f) : bits_(floatToHalfBits(f)) {}

    /** Construct directly from raw binary16 bits. */
    static Half
    fromBits(uint16_t b)
    {
        Half h;
        h.bits_ = b;
        return h;
    }

    /** Raw binary16 bit pattern. */
    uint16_t bits() const { return bits_; }

    /** Exact widening conversion. */
    float toFloat() const { return halfBitsToFloat(bits_); }

    operator float() const { return toFloat(); }

    /** Sign bit, used by the AdapTiV sign-similarity baseline. */
    bool signBit() const { return (bits_ & 0x8000u) != 0; }

    Half &
    operator+=(Half o)
    {
        *this = Half(toFloat() + o.toFloat());
        return *this;
    }

    bool operator==(const Half &o) const { return bits_ == o.bits_; }
    bool operator!=(const Half &o) const { return bits_ != o.bits_; }

  private:
    uint16_t bits_;
};

/** Round-trip a float through binary16 precision. */
inline float
fp16Round(float f)
{
    return halfBitsToFloat(floatToHalfBits(f));
}

/**
 * Fast float -> binary16 conversion (round-to-nearest-even).
 *
 * Pure integer pipeline with the float's magnitude classified once
 * against three thresholds; the normal-range path folds exponent
 * re-bias and RNE rounding (carry into the exponent included) into a
 * single add-and-shift, the F16C-style hot path.  Bit-exact to
 * floatToHalfBits on every input: same overflow saturation, same
 * subnormal rounding, same NaN quieting and payload truncation.
 */
inline uint16_t
floatToHalfBitsFast(float value)
{
    const uint32_t bits = detail::floatBits(value);
    const uint32_t sign = (bits >> 16) & 0x8000u;
    const uint32_t abs = bits & 0x7fffffffu;

    uint32_t out;
    if (abs >= 0x7f800000u) {
        // Inf stays inf; NaN keeps its truncated payload plus the
        // quiet bit (0x0200), matching the reference exactly.
        out = abs > 0x7f800000u
            ? (0x7e00u | ((abs & 0x7fffffu) >> 13))
            : 0x7c00u;
    } else if (abs >= 0x47800000u) {
        // Magnitude at or above 2^16: saturate to infinity.
        out = 0x7c00u;
    } else if (abs >= 0x38800000u) {
        // Normal half: subtract the bias difference (112 << 23) so a
        // plain shift yields exponent|mantissa, then add the RNE
        // increment — 0xfff plus the kept lsb — before shifting; a
        // mantissa carry rolls into the exponent (and, right at the
        // top of the range, into the correct saturation to inf).
        const uint32_t v = abs - 0x38000000u;
        out = (v + 0xfffu + ((v >> 13) & 1u)) >> 13;
    } else if (abs >= 0x33000000u) {
        // Subnormal half: shift the implicit-1 mantissa into the
        // subnormal position, rounding the remainder to nearest even.
        const uint32_t shift = 126u - (abs >> 23);
        const uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
        const uint32_t sub = mant >> shift;
        const uint32_t rem = mant & ((1u << shift) - 1u);
        const uint32_t half_bit = 1u << (shift - 1u);
        out = sub +
            ((rem > half_bit || (rem == half_bit && (sub & 1u)))
                 ? 1u
                 : 0u);
    } else {
        // Below half the smallest subnormal: flush to signed zero.
        out = 0;
    }
    return static_cast<uint16_t>(sign | out);
}

/**
 * Convert a float to bfloat16 bits with round-to-nearest-even.
 * Overflow saturates to infinity; NaN keeps its truncated payload
 * with the quiet bit forced (a payload living entirely in the low 16
 * float bits would otherwise truncate to infinity).
 */
inline uint16_t
floatToBf16Bits(float value)
{
    const uint32_t bits = detail::floatBits(value);
    if ((bits & 0x7fffffffu) > 0x7f800000u) {
        return static_cast<uint16_t>((bits >> 16) | 0x0040u);
    }
    const uint32_t lsb = (bits >> 16) & 1u;
    return static_cast<uint16_t>((bits + 0x7fffu + lsb) >> 16);
}

/** Convert bfloat16 bits to float (exact: low mantissa zero-fill). */
inline float
bf16BitsToFloat(uint16_t b)
{
    return detail::bitsFloat(static_cast<uint32_t>(b) << 16);
}

/** Round-trip a float through bfloat16 precision. */
inline float
bf16Round(float f)
{
    return bf16BitsToFloat(floatToBf16Bits(f));
}

// ---- batch conversion (slab compression path) ----
// Contiguous spans through the fast scalar kernels; n == 0 is a
// no-op, so callers need no empty-span guards.

inline void
floatToHalfN(const float *src, uint16_t *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = floatToHalfBitsFast(src[i]);
    }
}

inline void
halfToFloatN(const uint16_t *src, float *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = halfBitsToFloat(src[i]);
    }
}

inline void
floatToBf16N(const float *src, uint16_t *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = floatToBf16Bits(src[i]);
    }
}

inline void
bf16ToFloatN(const uint16_t *src, float *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = bf16BitsToFloat(src[i]);
    }
}

} // namespace focus

#endif // FOCUS_COMMON_HALF_H
