#include "common/logging.h"

#include <atomic>

#include "common/env_dispatch.h"

namespace focus
{

namespace
{

const char *const kLevelNames[] = {"quiet", "warn", "info"};

// Zero-initialized false until the dynamic initializer below runs;
// fatal()/panic() messages from other static initializers still
// print because the gate only covers warn()/inform().
std::atomic<int> g_log_level{static_cast<int>(LogLevel::Info)};

// Resolve FOCUS_LOG once at static-init so an unknown value panics at
// process start, matching the other FOCUS_* dispatch knobs.
struct LogLevelInit
{
    LogLevelInit()
    {
        g_log_level.store(static_cast<int>(logLevelFromEnv()),
                          std::memory_order_relaxed);
    }
};

LogLevelInit g_log_level_init;

} // namespace

const char *
logLevelName(LogLevel l)
{
    return kLevelNames[static_cast<int>(l)];
}

LogLevel
activeLogLevel()
{
    return static_cast<LogLevel>(
        g_log_level.load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel l)
{
    g_log_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

LogLevel
logLevelFromEnv()
{
    return static_cast<LogLevel>(envBackendChoice(
        "FOCUS_LOG", kLevelNames, 3,
        static_cast<int>(LogLevel::Info)));
}

} // namespace focus
