/**
 * @file
 * Minimal logging and error-exit helpers in the gem5 spirit.
 *
 * fatal(): user/configuration error, exits with status 1.
 * panic(): internal invariant violation, aborts.
 * warn()/inform(): status messages on stderr.
 */

#ifndef FOCUS_COMMON_LOGGING_H
#define FOCUS_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>

namespace focus
{

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    std::fprintf(stderr, "fatal: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

[[noreturn]] inline void
fatal(const char *msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg);
    std::exit(1);
}

/** Report an internal simulator bug and abort(). */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    std::fprintf(stderr, "panic: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
    std::abort();
}

[[noreturn]] inline void
panic(const char *msg)
{
    std::fprintf(stderr, "panic: %s\n", msg);
    std::abort();
}

/** Non-fatal warning. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    std::fprintf(stderr, "warn: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
}

inline void
warn(const char *msg)
{
    std::fprintf(stderr, "warn: %s\n", msg);
}

/** Informational status message. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    std::fprintf(stderr, "info: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
}

inline void
inform(const char *msg)
{
    std::fprintf(stderr, "info: %s\n", msg);
}

} // namespace focus

#endif // FOCUS_COMMON_LOGGING_H
