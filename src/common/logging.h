/**
 * @file
 * Minimal logging and error-exit helpers in the gem5 spirit.
 *
 * fatal(): user/configuration error, exits with status 1.
 * panic(): internal invariant violation, aborts.
 * warn()/inform(): status messages on stderr, gated by a runtime
 * level.
 *
 * The level comes from FOCUS_LOG (quiet | warn | info, default info —
 * the historical always-print behavior), resolved through the shared
 * env-dispatch contract (common/env_dispatch.h: unknown values panic
 * loudly).  `quiet` silences warn() and inform() for bench sweeps and
 * CI logs; `warn` silences inform() only.  fatal() and panic() always
 * print — an error exit must never be silenced.
 */

#ifndef FOCUS_COMMON_LOGGING_H
#define FOCUS_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>

namespace focus
{

/** Runtime log level; each level includes the ones below it. */
enum class LogLevel
{
    Quiet, ///< only fatal()/panic()
    Warn,  ///< + warn()
    Info   ///< + inform() (default)
};

/** Name for logging / tests ("quiet" | "warn" | "info"). */
const char *logLevelName(LogLevel l);

/**
 * Currently active level.  Initialized once from the FOCUS_LOG
 * environment variable (default Info; panics on an unknown value).
 */
LogLevel activeLogLevel();

/** Override the active level (tests and bench flags flip this). */
void setLogLevel(LogLevel l);

/**
 * Re-read FOCUS_LOG from the environment (unset/empty selects Info;
 * panics on an unknown value).  Tests call this directly for the
 * dispatch contract; normal code uses activeLogLevel().
 */
LogLevel logLevelFromEnv();

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    std::fprintf(stderr, "fatal: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

[[noreturn]] inline void
fatal(const char *msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg);
    std::exit(1);
}

/** Report an internal simulator bug and abort(). */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    std::fprintf(stderr, "panic: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
    std::abort();
}

[[noreturn]] inline void
panic(const char *msg)
{
    std::fprintf(stderr, "panic: %s\n", msg);
    std::abort();
}

/** Non-fatal warning (printed at FOCUS_LOG=warn and above). */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    if (activeLogLevel() < LogLevel::Warn) {
        return;
    }
    std::fprintf(stderr, "warn: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
}

inline void
warn(const char *msg)
{
    if (activeLogLevel() < LogLevel::Warn) {
        return;
    }
    std::fprintf(stderr, "warn: %s\n", msg);
}

/** Informational status message (printed at FOCUS_LOG=info only). */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    if (activeLogLevel() < LogLevel::Info) {
        return;
    }
    std::fprintf(stderr, "info: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
}

inline void
inform(const char *msg)
{
    if (activeLogLevel() < LogLevel::Info) {
        return;
    }
    std::fprintf(stderr, "info: %s\n", msg);
}

} // namespace focus

#endif // FOCUS_COMMON_LOGGING_H
