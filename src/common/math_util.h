/**
 * @file
 * Small integer/float math helpers shared across modules.
 */

#ifndef FOCUS_COMMON_MATH_UTIL_H
#define FOCUS_COMMON_MATH_UTIL_H

#include <cstdint>
#include <type_traits>

namespace focus
{

/** Ceiling division for non-negative integers. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
template <typename T>
constexpr T
roundUp(T a, T b)
{
    return ceilDiv(a, b) * b;
}

/** True if @p x is a power of two (x > 0). */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 for exact powers of two. */
constexpr int
log2Exact(uint64_t x)
{
    int n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** Clamp @p v into [lo, hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

} // namespace focus

#endif // FOCUS_COMMON_MATH_UTIL_H
