#include "common/rng.h"

#include <cmath>

namespace focus
{

namespace
{

/** splitmix64 step, used for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
    : cached_gauss_(0.0), has_cached_gauss_(false), lineage_(seed)
{
    uint64_t sm = seed;
    for (auto &s : s_) {
        s = splitmix64(sm);
    }
    // Guard against the all-zero state (astronomically unlikely but
    // fatal for xoshiro).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
        s_[0] = 0x1ull;
    }
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold) {
            return r % n;
        }
    }
}

double
Rng::gaussian()
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Avoid log(0).
    if (u1 < 1e-300) {
        u1 = 1e-300;
    }
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(uint64_t salt)
{
    uint64_t mix = lineage_;
    // Two splitmix rounds keyed by the salt give distinct lineages for
    // distinct salts with overwhelming probability.
    mix ^= splitmix64(salt);
    mix ^= splitmix64(salt);
    return Rng(mix ^ (salt * 0x2545f4914f6cdd1dull));
}

} // namespace focus
