/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components (workload synthesis, weight initialization,
 * noise injection) draw from this generator so experiments are exactly
 * reproducible from a seed.  The implementation is xoshiro256++, which
 * is fast, high-quality, and has a well-defined jump function for
 * deriving independent streams.
 */

#ifndef FOCUS_COMMON_RNG_H
#define FOCUS_COMMON_RNG_H

#include <cstdint>

namespace focus
{

/**
 * xoshiro256++ generator with convenience distributions.
 *
 * Not thread-safe; create one instance per logical stream.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal via Box-Muller (cached pair). */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Derive an independent child stream.
     *
     * Mixes the parent's seed lineage with @p salt so sub-generators
     * for different purposes do not overlap.
     */
    Rng fork(uint64_t salt);

  private:
    uint64_t s_[4];
    double cached_gauss_;
    bool has_cached_gauss_;
    uint64_t lineage_;
};

} // namespace focus

#endif // FOCUS_COMMON_RNG_H
