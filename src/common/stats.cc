#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace focus
{

ScalarSummary::ScalarSummary()
    : count_(0), sum_(0.0), sum_sq_(0.0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
}

void
ScalarSummary::add(double v)
{
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
ScalarSummary::merge(const ScalarSummary &other)
{
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
ScalarSummary::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
ScalarSummary::variance() const
{
    if (count_ == 0) {
        return 0.0;
    }
    const double m = mean();
    const double v = sum_sq_ / static_cast<double>(count_) - m * m;
    return v < 0.0 ? 0.0 : v;
}

double
ScalarSummary::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), counts_(static_cast<size_t>(bins), 0), total_(0)
{
    if (bins <= 0 || hi <= lo) {
        panic("Histogram: invalid range [%f, %f) with %d bins",
              lo, hi, bins);
    }
}

void
Histogram::add(double v)
{
    const double frac = (v - lo_) / (hi_ - lo_);
    int idx = static_cast<int>(frac * static_cast<double>(counts_.size()));
    idx = std::clamp(idx, 0, static_cast<int>(counts_.size()) - 1);
    counts_[static_cast<size_t>(idx)] += 1;
    ++total_;
    raw_.push_back(v);
}

double
Histogram::binLo(int i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(counts_.size());
}

double
Histogram::binHi(int i) const
{
    return binLo(i + 1);
}

double
Histogram::cdfAt(double v) const
{
    if (raw_.empty()) {
        return 0.0;
    }
    uint64_t n = 0;
    for (double x : raw_) {
        if (x <= v) {
            ++n;
        }
    }
    return static_cast<double>(n) / static_cast<double>(raw_.size());
}

void
StatSet::inc(const std::string &name, uint64_t by)
{
    vals_[name] += by;
}

void
StatSet::set(const std::string &name, uint64_t v)
{
    vals_[name] = v;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = vals_.find(name);
    return it == vals_.end() ? 0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return vals_.count(name) != 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[k, v] : other.vals_) {
        vals_[k] += v;
    }
}

void
StatSet::clear()
{
    vals_.clear();
}

std::string
StatSet::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[k, v] : vals_) {
        os << prefix << k << " = " << v << "\n";
    }
    return os.str();
}

} // namespace focus
