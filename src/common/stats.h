/**
 * @file
 * Lightweight statistics: named counters, scalar summaries and
 * fixed-bin histograms used by the timing/energy models and benches.
 */

#ifndef FOCUS_COMMON_STATS_H
#define FOCUS_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace focus
{

/**
 * Running summary of a scalar series: count/mean/min/max/stddev.
 */
class ScalarSummary
{
  public:
    ScalarSummary();

    void add(double v);
    void merge(const ScalarSummary &other);

    uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }
    double variance() const;
    double stddev() const;
    double sum() const { return sum_; }

  private:
    uint64_t count_;
    double sum_;
    double sum_sq_;
    double min_;
    double max_;
};

/**
 * Histogram with uniform bins over [lo, hi); out-of-range samples are
 * clamped into the first/last bin.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, int bins);

    void add(double v);

    int bins() const { return static_cast<int>(counts_.size()); }
    uint64_t binCount(int i) const { return counts_[i]; }
    double binLo(int i) const;
    double binHi(int i) const;
    uint64_t total() const { return total_; }

    /** Fraction of mass at or below @p v (empirical CDF). */
    double cdfAt(double v) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_;
    std::vector<double> raw_;
};

/**
 * A bag of named 64-bit counters with formatted dumping.  Components
 * of the simulator (buffers, DRAM, PEs) record activity here and the
 * energy model converts counters to joules at the end of a run.
 */
class StatSet
{
  public:
    void inc(const std::string &name, uint64_t by = 1);
    void set(const std::string &name, uint64_t v);
    uint64_t get(const std::string &name) const;
    bool has(const std::string &name) const;
    void merge(const StatSet &other);
    void clear();

    const std::map<std::string, uint64_t> &all() const { return vals_; }

    /** Render "name = value" lines, sorted by name. */
    std::string dump(const std::string &prefix = "") const;

  private:
    std::map<std::string, uint64_t> vals_;
};

} // namespace focus

#endif // FOCUS_COMMON_STATS_H
