#include "eval/evaluator.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/logging.h"
#include "eval/func_cache.h"
#include "obs/trace_span.h"
#include "runtime/thread_pool.h"

namespace focus
{

/**
 * Lazily computed per-Evaluator state.  Heap-allocated behind a
 * shared_ptr so Evaluator stays copyable (copies share the memo) and
 * const member functions can fill it under the mutex.
 */
struct EvalMemos
{
    std::mutex mu;
    bool samples_ready = false;
    std::vector<VideoSample> samples;
    bool dense_ready = false;
    double dense_macs = 0.0;
};

Evaluator::Evaluator(const std::string &model_name,
                     const std::string &dataset_name,
                     const EvalOptions &opts)
    : model_name_(model_name),
      dataset_name_(dataset_name),
      mp_(::focus::modelProfile(model_name)),
      dp_(::focus::datasetProfile(dataset_name)),
      opts_(opts),
      gen_(dp_, mp_,
           opts.seed ^ mp_.seed_salt ^
               (std::hash<std::string>{}(dataset_name) * 0x9e37ull)),
      model_(mp_, (opts.seed ^ 0x1234567890abcdefull) + mp_.seed_salt),
      memos_(std::make_shared<EvalMemos>())
{
}

const std::vector<VideoSample> &
Evaluator::cachedSamples() const
{
    std::lock_guard<std::mutex> lock(memos_->mu);
    if (!memos_->samples_ready) {
        memos_->samples.reserve(static_cast<size_t>(opts_.samples));
        for (int s = 0; s < opts_.samples; ++s) {
            memos_->samples.push_back(
                gen_.sample(static_cast<uint64_t>(s)));
        }
        memos_->samples_ready = true;
    }
    return memos_->samples;
}

double
Evaluator::denseTraceMacs() const
{
    std::lock_guard<std::mutex> lock(memos_->mu);
    if (!memos_->dense_ready) {
        memos_->dense_macs = buildDenseTrace(mp_, dp_).totalMacs();
        memos_->dense_ready = true;
    }
    return memos_->dense_macs;
}

MethodEval
Evaluator::runFunctional(const MethodConfig &method,
                         ThreadPool *pool) const
{
    if (opts_.samples <= 0) {
        panic("Evaluator::runFunctional: EvalOptions::samples must be "
              "positive (got %d)", opts_.samples);
    }
    if (activeFuncCacheMode() == FuncCacheMode::Off) {
        return runFunctionalDirect(method, pool);
    }
    return FunctionalCache::instance().getOrCompute(
        functionalCacheKey(model_name_, dataset_name_, opts_, method),
        [&] { return runFunctionalBatched(method, pool); });
}

MethodEval
Evaluator::runFunctionalDirect(const MethodConfig &method,
                               ThreadPool *pool) const
{
    obs::TraceSpan span("eval.forward");
    // Per-sample forward passes fan out across the pool; each task
    // writes only its own slot.  The aggregation then runs serially
    // in sample order, so every floating-point sum is evaluated in
    // exactly the order the serial loop used — results are
    // bit-identical at any thread count (threads=1 never spawns a
    // thread at all).
    std::vector<ForwardResult> forwards(
        static_cast<size_t>(opts_.samples));
    (pool ? *pool : ThreadPool::global()).parallelFor(
        opts_.samples, [&](int64_t s) {
            const VideoSample sample =
                gen_.sample(static_cast<uint64_t>(s));
            forwards[static_cast<size_t>(s)] =
                model_.forward(sample, method, gen_.bank());
        });
    return aggregateForwards(method, forwards);
}

MethodEval
Evaluator::runFunctionalBatched(const MethodConfig &method,
                                ThreadPool *pool) const
{
    obs::TraceSpan span("eval.forward");
    // Contiguous chunks of samples packed through
    // VlmModel::forwardBatch.  Chunking only affects which GEMM a
    // sample's rows ride in — forwardBatch is bit-identical to
    // forward() at every batch split, so neither the chunk count nor
    // the thread count ever changes a result.  The chunk size is
    // locality-aware: packed projection panels cost ~1 KiB per token
    // row across xp/qp/kp/vp, and each sample's per-head probability
    // matrices already claim most of L2, so batching pays off only
    // while the added panel rows stay under a small budget.  Video
    // samples (hundreds of rows) thus run near batch 1, while short
    // image samples pack several per GEMM.  At least one chunk per
    // pool thread keeps the fan-out saturated.
    const std::vector<VideoSample> &samples = cachedSamples();
    const int64_t n = static_cast<int64_t>(samples.size());
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    constexpr int64_t kPackedRowBudget = 512;
    const int64_t rows0 = std::max<int64_t>(
        1, samples.front().numVisual() + samples.front().numText());
    const int64_t per_batch =
        std::max<int64_t>(1, kPackedRowBudget / rows0);
    const int64_t chunks = std::min<int64_t>(
        n, std::max<int64_t>(tp.threads(),
                             (n + per_batch - 1) / per_batch));
    std::vector<ForwardResult> forwards(static_cast<size_t>(n));
    tp.parallelFor(chunks, [&](int64_t ci) {
        const int64_t lo = ci * n / chunks;
        const int64_t hi = (ci + 1) * n / chunks;
        if (lo >= hi) {
            return;
        }
        std::vector<const VideoSample *> ptrs(
            static_cast<size_t>(hi - lo));
        for (int64_t s = lo; s < hi; ++s) {
            ptrs[static_cast<size_t>(s - lo)] =
                &samples[static_cast<size_t>(s)];
        }
        std::vector<ForwardResult> part = model_.forwardBatch(
            ptrs.data(), hi - lo, method, gen_.bank());
        for (int64_t s = lo; s < hi; ++s) {
            forwards[static_cast<size_t>(s)] =
                std::move(part[static_cast<size_t>(s - lo)]);
        }
    });
    return aggregateForwards(method, forwards);
}

MethodEval
Evaluator::aggregateForwards(
    const MethodConfig &method,
    const std::vector<ForwardResult> &forwards) const
{
    MethodEval ev;
    ev.method = method.name();

    const int L = mp_.layers;
    FunctionalAggregate &agg = ev.agg;
    agg.reduced_layers = L;
    agg.keep_in.assign(static_cast<size_t>(L), 0.0);
    agg.keep_out.assign(static_cast<size_t>(L), 0.0);
    agg.psi_qkv.assign(static_cast<size_t>(L), 0.0);
    agg.psi_oproj.assign(static_cast<size_t>(L), 0.0);
    agg.psi_ffn.assign(static_cast<size_t>(L), 0.0);
    agg.psi_down.assign(static_cast<size_t>(L), 0.0);

    int correct = 0;
    double sparsity_sum = 0.0;
    for (int s = 0; s < opts_.samples; ++s) {
        const ForwardResult &fr = forwards[static_cast<size_t>(s)];
        correct += fr.correct ? 1 : 0;
        sparsity_sum += fr.sparsity();
        for (int l = 0; l < L; ++l) {
            const LayerRecord &rec =
                fr.layers[static_cast<size_t>(l)];
            const double m0 =
                static_cast<double>(fr.visual_original);
            agg.keep_in[static_cast<size_t>(l)] +=
                static_cast<double>(rec.visual_in) / m0;
            agg.keep_out[static_cast<size_t>(l)] +=
                static_cast<double>(rec.visual_out) / m0;
            agg.psi_qkv[static_cast<size_t>(l)] += rec.psi_qkv;
            agg.psi_oproj[static_cast<size_t>(l)] += rec.psi_oproj;
            agg.psi_ffn[static_cast<size_t>(l)] += rec.psi_ffn;
            agg.psi_down[static_cast<size_t>(l)] += rec.psi_down;
            agg.tile_fracs.insert(agg.tile_fracs.end(),
                                  rec.tile_fracs.begin(),
                                  rec.tile_fracs.end());
        }
        agg.samples += 1;
    }

    const double inv = 1.0 / static_cast<double>(opts_.samples);
    for (int l = 0; l < L; ++l) {
        agg.keep_in[static_cast<size_t>(l)] *= inv;
        agg.keep_out[static_cast<size_t>(l)] *= inv;
        agg.psi_qkv[static_cast<size_t>(l)] *= inv;
        agg.psi_oproj[static_cast<size_t>(l)] *= inv;
        agg.psi_ffn[static_cast<size_t>(l)] *= inv;
        agg.psi_down[static_cast<size_t>(l)] *= inv;
    }
    ev.accuracy = static_cast<double>(correct) /
        static_cast<double>(opts_.samples);
    ev.sparsity = sparsity_sum * inv;
    agg.accuracy = ev.accuracy;
    agg.sparsity = ev.sparsity;
    return ev;
}

WorkloadTrace
Evaluator::buildFullTrace(const MethodConfig &method,
                          const MethodEval &eval) const
{
    obs::TraceSpan span("eval.trace");
    return buildTrace(mp_, dp_, method, eval.agg);
}

WorkloadTrace
Evaluator::buildPrefixCachedTrace(const MethodConfig &method,
                                  const MethodEval &eval) const
{
    obs::TraceSpan span("eval.trace.prefix_cached");
    return applyPrefixCache(buildTrace(mp_, dp_, method, eval.agg));
}

RunMetrics
Evaluator::simulate(const MethodConfig &method, const AccelConfig &accel,
                    MethodEval *out_eval) const
{
    MethodEval ev = runFunctional(method);
    const WorkloadTrace tr = buildFullTrace(method, ev);
    if (out_eval) {
        *out_eval = ev;
    }
    obs::TraceSpan span("eval.simulate");
    return simulateAccelerator(accel, tr);
}

RunMetrics
Evaluator::simulateBatch(const std::vector<MethodConfig> &methods,
                         const AccelConfig &accel) const
{
    if (methods.empty()) {
        panic("Evaluator::simulateBatch: empty method batch");
    }
    std::vector<WorkloadTrace> traces;
    traces.reserve(methods.size());
    for (const MethodConfig &m : methods) {
        const MethodEval ev = runFunctional(m);
        traces.push_back(buildFullTrace(m, ev));
    }
    std::vector<const WorkloadTrace *> parts;
    parts.reserve(traces.size());
    for (const WorkloadTrace &t : traces) {
        parts.push_back(&t);
    }
    return simulateAccelerator(accel, fuseTraces(parts));
}

double
Evaluator::traceSparsity(const MethodConfig &method,
                         const MethodEval &eval) const
{
    const WorkloadTrace tr = buildFullTrace(method, eval);
    // buildDenseTrace is a pure function of (mp_, dp_): memoize its
    // MAC total instead of rebuilding the dense trace per call.
    const double dense_macs = denseTraceMacs();
    return dense_macs <= 0.0 ? 0.0 : 1.0 - tr.totalMacs() / dense_macs;
}

double
Evaluator::opsAtKeep(double keep) const
{
    // Per-layer GEMM MACs with a visual keep fraction applied at the
    // input, evaluated at *full* scale (the Tbl. II sparsity metric).
    const double m = keep * mp_.visual_token_scale *
        static_cast<double>(dp_.full_visual_tokens);
    const double t = static_cast<double>(dp_.full_text_tokens);
    const double rows = m + t;
    const double d = static_cast<double>(mp_.full_hidden);
    const double inner = static_cast<double>(mp_.full_ffn_inner);
    return 3.0 * rows * d * d + 2.0 * rows * rows * d + rows * d * d +
        2.0 * rows * d * inner + rows * inner * d;
}

double
Evaluator::frameFusionReductionFor(double target_sparsity) const
{
    const double dense = opsAtKeep(1.0);
    double lo = 0.0, hi = 1.0;
    for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double sparsity = 1.0 - opsAtKeep(1.0 - mid) / dense;
        if (sparsity < target_sparsity) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

std::vector<MethodConfig>
Evaluator::standardMethods() const
{
    std::vector<MethodConfig> methods;
    methods.push_back(MethodConfig::dense());
    MethodConfig ff = MethodConfig::frameFusionBaseline();
    ff.framefusion.reduction = frameFusionReductionFor(0.70);
    methods.push_back(ff);
    methods.push_back(MethodConfig::adaptivBaseline());
    methods.push_back(MethodConfig::cmcBaseline());
    methods.push_back(MethodConfig::focusFull());
    return methods;
}

} // namespace focus
