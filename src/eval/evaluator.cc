#include "eval/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "runtime/thread_pool.h"

namespace focus
{

Evaluator::Evaluator(const std::string &model_name,
                     const std::string &dataset_name,
                     const EvalOptions &opts)
    : mp_(::focus::modelProfile(model_name)),
      dp_(::focus::datasetProfile(dataset_name)),
      opts_(opts),
      gen_(dp_, mp_,
           opts.seed ^ mp_.seed_salt ^
               (std::hash<std::string>{}(dataset_name) * 0x9e37ull)),
      model_(mp_, (opts.seed ^ 0x1234567890abcdefull) + mp_.seed_salt)
{
}

MethodEval
Evaluator::runFunctional(const MethodConfig &method,
                         ThreadPool *pool) const
{
    if (opts_.samples <= 0) {
        panic("Evaluator::runFunctional: EvalOptions::samples must be "
              "positive (got %d)", opts_.samples);
    }

    MethodEval ev;
    ev.method = method.name();

    const int L = mp_.layers;
    FunctionalAggregate &agg = ev.agg;
    agg.reduced_layers = L;
    agg.keep_in.assign(static_cast<size_t>(L), 0.0);
    agg.keep_out.assign(static_cast<size_t>(L), 0.0);
    agg.psi_qkv.assign(static_cast<size_t>(L), 0.0);
    agg.psi_oproj.assign(static_cast<size_t>(L), 0.0);
    agg.psi_ffn.assign(static_cast<size_t>(L), 0.0);
    agg.psi_down.assign(static_cast<size_t>(L), 0.0);

    // Per-sample forward passes fan out across the pool; each task
    // writes only its own slot.  The aggregation below then runs
    // serially in sample order, so every floating-point sum is
    // evaluated in exactly the order the serial loop used — results
    // are bit-identical at any thread count (threads=1 never spawns
    // a thread at all).
    std::vector<ForwardResult> forwards(
        static_cast<size_t>(opts_.samples));
    (pool ? *pool : ThreadPool::global()).parallelFor(
        opts_.samples, [&](int64_t s) {
            const VideoSample sample =
                gen_.sample(static_cast<uint64_t>(s));
            forwards[static_cast<size_t>(s)] =
                model_.forward(sample, method, gen_.bank());
        });

    int correct = 0;
    double sparsity_sum = 0.0;
    for (int s = 0; s < opts_.samples; ++s) {
        const ForwardResult &fr = forwards[static_cast<size_t>(s)];
        correct += fr.correct ? 1 : 0;
        sparsity_sum += fr.sparsity();
        for (int l = 0; l < L; ++l) {
            const LayerRecord &rec =
                fr.layers[static_cast<size_t>(l)];
            const double m0 =
                static_cast<double>(fr.visual_original);
            agg.keep_in[static_cast<size_t>(l)] +=
                static_cast<double>(rec.visual_in) / m0;
            agg.keep_out[static_cast<size_t>(l)] +=
                static_cast<double>(rec.visual_out) / m0;
            agg.psi_qkv[static_cast<size_t>(l)] += rec.psi_qkv;
            agg.psi_oproj[static_cast<size_t>(l)] += rec.psi_oproj;
            agg.psi_ffn[static_cast<size_t>(l)] += rec.psi_ffn;
            agg.psi_down[static_cast<size_t>(l)] += rec.psi_down;
            agg.tile_fracs.insert(agg.tile_fracs.end(),
                                  rec.tile_fracs.begin(),
                                  rec.tile_fracs.end());
        }
        agg.samples += 1;
    }

    const double inv = 1.0 / static_cast<double>(opts_.samples);
    for (int l = 0; l < L; ++l) {
        agg.keep_in[static_cast<size_t>(l)] *= inv;
        agg.keep_out[static_cast<size_t>(l)] *= inv;
        agg.psi_qkv[static_cast<size_t>(l)] *= inv;
        agg.psi_oproj[static_cast<size_t>(l)] *= inv;
        agg.psi_ffn[static_cast<size_t>(l)] *= inv;
        agg.psi_down[static_cast<size_t>(l)] *= inv;
    }
    ev.accuracy = static_cast<double>(correct) /
        static_cast<double>(opts_.samples);
    ev.sparsity = sparsity_sum * inv;
    agg.accuracy = ev.accuracy;
    agg.sparsity = ev.sparsity;
    return ev;
}

WorkloadTrace
Evaluator::buildFullTrace(const MethodConfig &method,
                          const MethodEval &eval) const
{
    return buildTrace(mp_, dp_, method, eval.agg);
}

RunMetrics
Evaluator::simulate(const MethodConfig &method, const AccelConfig &accel,
                    MethodEval *out_eval) const
{
    MethodEval ev = runFunctional(method);
    const WorkloadTrace tr = buildFullTrace(method, ev);
    if (out_eval) {
        *out_eval = ev;
    }
    return simulateAccelerator(accel, tr);
}

RunMetrics
Evaluator::simulateBatch(const std::vector<MethodConfig> &methods,
                         const AccelConfig &accel) const
{
    if (methods.empty()) {
        panic("Evaluator::simulateBatch: empty method batch");
    }
    std::vector<WorkloadTrace> traces;
    traces.reserve(methods.size());
    for (const MethodConfig &m : methods) {
        const MethodEval ev = runFunctional(m);
        traces.push_back(buildFullTrace(m, ev));
    }
    std::vector<const WorkloadTrace *> parts;
    parts.reserve(traces.size());
    for (const WorkloadTrace &t : traces) {
        parts.push_back(&t);
    }
    return simulateAccelerator(accel, fuseTraces(parts));
}

double
Evaluator::traceSparsity(const MethodConfig &method,
                         const MethodEval &eval) const
{
    const WorkloadTrace tr = buildFullTrace(method, eval);
    const WorkloadTrace dense = buildDenseTrace(mp_, dp_);
    const double dense_macs = dense.totalMacs();
    return dense_macs <= 0.0 ? 0.0 : 1.0 - tr.totalMacs() / dense_macs;
}

double
Evaluator::opsAtKeep(double keep) const
{
    // Per-layer GEMM MACs with a visual keep fraction applied at the
    // input, evaluated at *full* scale (the Tbl. II sparsity metric).
    const double m = keep * mp_.visual_token_scale *
        static_cast<double>(dp_.full_visual_tokens);
    const double t = static_cast<double>(dp_.full_text_tokens);
    const double rows = m + t;
    const double d = static_cast<double>(mp_.full_hidden);
    const double inner = static_cast<double>(mp_.full_ffn_inner);
    return 3.0 * rows * d * d + 2.0 * rows * rows * d + rows * d * d +
        2.0 * rows * d * inner + rows * inner * d;
}

double
Evaluator::frameFusionReductionFor(double target_sparsity) const
{
    const double dense = opsAtKeep(1.0);
    double lo = 0.0, hi = 1.0;
    for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double sparsity = 1.0 - opsAtKeep(1.0 - mid) / dense;
        if (sparsity < target_sparsity) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

std::vector<MethodConfig>
Evaluator::standardMethods() const
{
    std::vector<MethodConfig> methods;
    methods.push_back(MethodConfig::dense());
    MethodConfig ff = MethodConfig::frameFusionBaseline();
    ff.framefusion.reduction = frameFusionReductionFor(0.70);
    methods.push_back(ff);
    methods.push_back(MethodConfig::adaptivBaseline());
    methods.push_back(MethodConfig::cmcBaseline());
    methods.push_back(MethodConfig::focusFull());
    return methods;
}

} // namespace focus
