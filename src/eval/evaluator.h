/**
 * @file
 * End-to-end experiment runner: functional evaluation at reduced
 * scale, aggregation, full-scale trace construction, and accelerator
 * simulation.
 */

#ifndef FOCUS_EVAL_EVALUATOR_H
#define FOCUS_EVAL_EVALUATOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/accel_model.h"
#include "sim/trace.h"
#include "vlm/method.h"
#include "vlm/model.h"
#include "workload/video_gen.h"

namespace focus
{
class ThreadPool;
struct EvalMemos;
}

namespace focus
{

/** Options shared by all experiments. */
struct EvalOptions
{
    int samples = 8;       ///< QA samples per (model, dataset, method)
    uint64_t seed = 42;
};

/** Functional evaluation outcome for one method. */
struct MethodEval
{
    std::string method;
    double accuracy = 0.0;  ///< fraction of correctly answered samples
    double sparsity = 0.0;  ///< mean computation sparsity
    FunctionalAggregate agg;
};

/**
 * Runs methods on a fixed (model, dataset) pair; all methods see the
 * same samples and the same model weights.
 */
class Evaluator
{
  public:
    Evaluator(const std::string &model_name,
              const std::string &dataset_name, const EvalOptions &opts);

    /**
     * Functional run: accuracy, sparsity, per-layer aggregates.
     * Samples fan out across @p pool (the global pool when null);
     * aggregates are bit-identical at every thread count.
     *
     * With FOCUS_FUNC_CACHE=on (the default) the result is memoized
     * in the process-wide FunctionalCache (eval/func_cache.h) and the
     * samples run through VlmModel::forwardBatch; =off reproduces the
     * historical per-sample path with no reuse layer.  Both paths
     * return bit-identical values.
     */
    MethodEval runFunctional(const MethodConfig &method,
                             ThreadPool *pool = nullptr) const;

    /** Build the full-scale trace implied by a functional run. */
    WorkloadTrace buildFullTrace(const MethodConfig &method,
                                 const MethodEval &eval) const;

    /**
     * Build the prefix-cache-*hit* variant of the full-scale trace:
     * the retained visual rows are restored from the serving prefix
     * cache (serve/prefix_cache.h) instead of recomputed, so only the
     * text rows flow through the backbone while the cached rows serve
     * as attention context (sim/trace.h applyPrefixCache).  This is
     * the serve -> cache -> eval seam: the serving simulator costs a
     * hit with this trace and a miss with buildFullTrace's.
     */
    WorkloadTrace buildPrefixCachedTrace(const MethodConfig &method,
                                         const MethodEval &eval) const;

    /** Functional + trace + accelerator simulation in one step. */
    RunMetrics simulate(const MethodConfig &method,
                        const AccelConfig &accel,
                        MethodEval *out_eval = nullptr) const;

    /**
     * Batch-aware simulation: run the functional model per method,
     * fuse the per-method full-scale traces into one multi-query
     * batch trace (sim/trace.h fuseTraces) and cost it in a single
     * accelerator pass.  With one method this is bit-identical to
     * simulate().  The serving layer (src/serve/) builds on the same
     * seam for request streams across (model, dataset) pairs.
     */
    RunMetrics simulateBatch(const std::vector<MethodConfig> &methods,
                             const AccelConfig &accel) const;

    /**
     * Full-scale computation sparsity: 1 - trace MACs / dense trace
     * MACs.  This is the paper's Tbl. II metric (the reduced-scale
     * functional sparsity over-weights attention, which is a much
     * smaller share of compute at 7B dimensions).
     */
    double traceSparsity(const MethodConfig &method,
                         const MethodEval &eval) const;

    const ModelProfile &modelProfile() const { return mp_; }
    const DatasetProfile &datasetProfile() const { return dp_; }
    const VlmModel &model() const { return model_; }
    const VideoGenerator &generator() const { return gen_; }
    const EvalOptions &options() const { return opts_; }

    /**
     * FrameFusion reduction fraction that yields the target
     * computation sparsity on this (model, dataset) pair; solves the
     * analytic op-count equation by bisection.
     */
    double frameFusionReductionFor(double target_sparsity) const;

    /** Standard method roster used across experiments. */
    std::vector<MethodConfig> standardMethods() const;

  private:
    std::string model_name_;
    std::string dataset_name_;
    ModelProfile mp_;
    DatasetProfile dp_;
    EvalOptions opts_;
    VideoGenerator gen_;
    VlmModel model_;

    /**
     * Per-Evaluator memos (generated samples, dense-trace MACs),
     * shared across copies; defined in evaluator.cc.
     */
    std::shared_ptr<EvalMemos> memos_;

    /** Historical per-sample functional run (FOCUS_FUNC_CACHE=off). */
    MethodEval runFunctionalDirect(const MethodConfig &method,
                                   ThreadPool *pool) const;

    /** Batched functional run (cache-miss path when =on). */
    MethodEval runFunctionalBatched(const MethodConfig &method,
                                    ThreadPool *pool) const;

    /** Serial sample-order aggregation shared by both paths. */
    MethodEval
    aggregateForwards(const MethodConfig &method,
                      const std::vector<ForwardResult> &forwards) const;

    /** All opts_.samples QA samples, generated once per Evaluator. */
    const std::vector<VideoSample> &cachedSamples() const;

    /** Dense-trace MACs, computed once per Evaluator. */
    double denseTraceMacs() const;

    double opsAtKeep(double keep) const;
};

} // namespace focus

#endif // FOCUS_EVAL_EVALUATOR_H
