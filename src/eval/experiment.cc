#include "eval/experiment.h"

#include "obs/trace_span.h"
#include "sim/accel_model.h"

namespace focus
{

size_t
ExperimentGrid::add(const ExperimentCell &cell)
{
    cells_.push_back(cell);
    return cells_.size() - 1;
}

const Evaluator &
ExperimentGrid::evaluator(const std::string &model,
                          const std::string &dataset)
{
    auto key = std::make_pair(model, dataset);
    auto it = evaluators_.find(key);
    if (it == evaluators_.end()) {
        it = evaluators_
                 .emplace(std::move(key),
                          std::make_unique<Evaluator>(model, dataset,
                                                      opts_))
                 .first;
    }
    return *it->second;
}

std::vector<ExperimentResult>
ExperimentGrid::run(ThreadPool &pool)
{
    // Materialize every Evaluator up front (serially, in first-use
    // order): construction seeds model weights and the sample
    // generator, and doing it here keeps the parallel phase strictly
    // read-only on shared state.
    for (const ExperimentCell &cell : cells_) {
        evaluator(cell.model, cell.dataset);
    }

    std::vector<ExperimentResult> results(cells_.size());
    pool.parallelFor(
        static_cast<int64_t>(cells_.size()), [&](int64_t i) {
            const ExperimentCell &cell =
                cells_[static_cast<size_t>(i)];
            const Evaluator &ev = *evaluators_.at(
                std::make_pair(cell.model, cell.dataset));
            ExperimentResult &r = results[static_cast<size_t>(i)];
            r.cell = cell;
            // The sample layer nests on the same pool: inside a
            // worker it runs inline; at pool width 1 the whole grid
            // (cells and samples) is genuinely serial.
            r.eval = ev.runFunctional(cell.method, &pool);
            if (cell.simulate || cell.keep_trace) {
                WorkloadTrace trace =
                    ev.buildFullTrace(cell.method, r.eval);
                if (cell.simulate) {
                    obs::TraceSpan span("eval.simulate");
                    r.metrics =
                        simulateAccelerator(cell.accel, trace);
                }
                if (cell.keep_trace) {
                    r.trace = std::move(trace);
                }
            }
            if (cell.trace_sparsity) {
                r.trace_sparsity =
                    ev.traceSparsity(cell.method, r.eval);
            }
        });
    return results;
}

} // namespace focus
