/**
 * @file
 * Declarative experiment grid: the (model x dataset x method x
 * accelerator) sweep every bench harness runs, expressed as a list of
 * cells and dispatched across the thread pool.
 *
 * A cell names its (model, dataset) pair by profile name, the method
 * to evaluate, and optionally the accelerator to simulate.  Cells
 * that share a (model, dataset) pair share one Evaluator — same
 * synthetic samples, same model weights — exactly as the hand-rolled
 * bench loops did.  run() computes every cell and returns results in
 * insertion order, so output is deterministic regardless of how the
 * pool schedules the cells; per-cell work itself nests its per-sample
 * parallelFor, which the pool serializes inside workers.
 */

#ifndef FOCUS_EVAL_EXPERIMENT_H
#define FOCUS_EVAL_EXPERIMENT_H

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "eval/evaluator.h"
#include "runtime/thread_pool.h"

namespace focus
{

/** One point of the experiment grid. */
struct ExperimentCell
{
    ExperimentCell() = default;
    ExperimentCell(std::string model_name, std::string dataset_name,
                   MethodConfig method_config,
                   AccelConfig accel_config =
                       AccelConfig::systolicArray())
        : model(std::move(model_name)),
          dataset(std::move(dataset_name)),
          method(std::move(method_config)),
          accel(std::move(accel_config))
    {
    }

    std::string model;
    std::string dataset;
    MethodConfig method;
    AccelConfig accel = AccelConfig::systolicArray();

    /** Run the accelerator cycle model on the full-scale trace. */
    bool simulate = true;
    /** Retain the full-scale trace in the result (GPU model, MACs). */
    bool keep_trace = false;
    /** Compute the Tbl. II full-scale computation sparsity. */
    bool trace_sparsity = false;

    /** Free-form label echoed into the result (sweep point names). */
    std::string tag;
};

/** Everything measured for one cell. */
struct ExperimentResult
{
    ExperimentCell cell;
    MethodEval eval;
    RunMetrics metrics;          ///< meaningful iff cell.simulate
    WorkloadTrace trace;         ///< filled iff cell.keep_trace
    double trace_sparsity = 0.0; ///< filled iff cell.trace_sparsity
};

/**
 * Builds and runs a grid of experiment cells.  Typical use:
 *
 *   ExperimentGrid grid(opts);
 *   for (const auto &model : videoModelNames())
 *       for (const auto &dataset : videoDatasetNames())
 *           grid.add({model, dataset, MethodConfig::focusFull(),
 *                     AccelConfig::focus()});
 *   const auto results = grid.run();
 *
 * Results are keyed by the index add() returned and ordered by it.
 */
class ExperimentGrid
{
  public:
    explicit ExperimentGrid(const EvalOptions &opts) : opts_(opts) {}

    /** Append a cell; returns its index into run()'s result vector. */
    size_t add(const ExperimentCell &cell);

    /**
     * The shared Evaluator for a (model, dataset) pair, creating it
     * on first use.  Also useful before run() for method setup that
     * depends on the pair (frameFusionReductionFor, standardMethods).
     */
    const Evaluator &evaluator(const std::string &model,
                               const std::string &dataset);

    size_t size() const { return cells_.size(); }
    const EvalOptions &options() const { return opts_; }

    /** Compute every cell; results ordered by insertion index. */
    std::vector<ExperimentResult>
    run(ThreadPool &pool = ThreadPool::global());

  private:
    EvalOptions opts_;
    std::vector<ExperimentCell> cells_;
    std::map<std::pair<std::string, std::string>,
             std::unique_ptr<Evaluator>>
        evaluators_;
};

} // namespace focus

#endif // FOCUS_EVAL_EXPERIMENT_H
