#include "eval/func_cache.h"

#include <cinttypes>
#include <cstdio>

#include "common/env_dispatch.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "tensor/kernels.h"

namespace focus
{

namespace
{

const char *const kModeNames[] = {"on", "off"};

FuncCacheMode &
modeRef()
{
    static FuncCacheMode mode = static_cast<FuncCacheMode>(
        envBackendChoice("FOCUS_FUNC_CACHE", kModeNames, 2, 0));
    return mode;
}

void
appendDouble(std::string &out, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    out += buf;
}

} // namespace

const char *
funcCacheModeName(FuncCacheMode m)
{
    return kModeNames[static_cast<int>(m)];
}

FuncCacheMode
activeFuncCacheMode()
{
    return modeRef();
}

void
setFuncCacheMode(FuncCacheMode m)
{
    modeRef() = m;
}

std::string
methodSignature(const MethodConfig &m)
{
    // Every field of every sub-config, unconditionally: fields that a
    // kind does not consult cost a few bytes and rule out any future
    // aliasing if a kind starts consulting them.
    std::string s;
    s.reserve(160);
    char buf[64];
    std::snprintf(buf, sizeof buf, "k%d;i%d;se%d;si%d;",
                  static_cast<int>(m.kind), m.int8 ? 1 : 0,
                  m.focus.sec_enable ? 1 : 0,
                  m.focus.sic_enable ? 1 : 0);
    s += buf;
    std::snprintf(buf, sizeof buf, "sec{%d,%d,", m.focus.sec.lanes,
                  static_cast<int>(m.focus.sec.select));
    s += buf;
    appendDouble(s, m.focus.sec.top_p);
    s += ',';
    appendDouble(s, m.focus.sec.threshold);
    s += "};sic{";
    appendDouble(s, static_cast<double>(m.focus.sic.threshold));
    std::snprintf(buf, sizeof buf, ",%d,%d,%d,%d,%" PRId64 ",%d};",
                  m.focus.sic.vector_size, m.focus.sic.block_f,
                  m.focus.sic.block_h, m.focus.sic.block_w,
                  m.focus.sic.m_tile, m.focus.sic.token_wise ? 1 : 0);
    s += buf;
    s += "ada{";
    appendDouble(s, m.adaptiv.sign_threshold);
    std::snprintf(buf, sizeof buf, "};cmc{%d,", m.cmc.search_radius);
    s += buf;
    appendDouble(s, m.cmc.sad_threshold);
    s += "};ff{";
    appendDouble(s, m.framefusion.reduction);
    s += ',';
    appendDouble(s, m.framefusion.merge_share);
    s += ',';
    appendDouble(s, m.framefusion.min_similarity);
    s += '}';
    return s;
}

std::string
functionalCacheKey(const std::string &model, const std::string &dataset,
                   const EvalOptions &opts, const MethodConfig &method)
{
    std::string key;
    key.reserve(model.size() + dataset.size() + 220);
    key += model;
    key += '\x1f';
    key += dataset;
    key += '\x1f';
    char buf[48];
    std::snprintf(buf, sizeof buf, "%" PRIu64 "\x1f%d\x1f", opts.seed,
                  opts.samples);
    key += buf;
    key += kernels::backendName(kernels::activeBackend());
    key += '\x1f';
    key += kernels::mathBackendName(kernels::activeMathBackend());
    key += '\x1f';
    key += methodSignature(method);
    return key;
}

FunctionalCache &
FunctionalCache::instance()
{
    static FunctionalCache cache;
    return cache;
}

MethodEval
FunctionalCache::getOrCompute(const std::string &key,
                              const std::function<MethodEval()> &compute)
{
    std::shared_ptr<Entry> entry;
    bool compute_here = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            entry = std::make_shared<Entry>();
            map_.emplace(key, entry);
            order_.push_back(key);
            ++misses_;
            compute_here = true;
            evictOverflowLocked();
        } else {
            entry = it->second;
            ++hits_;
        }
    }
    // Hit/miss totals are work counters: each distinct key computes
    // exactly once regardless of which thread wins the race, so the
    // split is thread-count invariant.
    if (obs::countersEnabled()) {
        static obs::Counter &hits =
            obs::MetricsRegistry::instance().counter(
                "func_cache.hits");
        static obs::Counter &misses =
            obs::MetricsRegistry::instance().counter(
                "func_cache.misses");
        (compute_here ? misses : hits).add(1);
    }

    if (compute_here) {
        try {
            MethodEval value = compute();
            {
                std::lock_guard<std::mutex> lock(mu_);
                entry->value = std::move(value);
                entry->ready = true;
            }
            cv_.notify_all();
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                entry->failed = true;
                auto it = map_.find(key);
                if (it != map_.end() && it->second == entry) {
                    map_.erase(it);
                }
            }
            cv_.notify_all();
            throw;
        }
        // Sole writer, ready flag published under the lock above;
        // the entry is immutable from here on.
        return entry->value;
    }

    std::unique_lock<std::mutex> lock(mu_);
    if (!entry->ready && !entry->failed) {
        // Sched counter: whether a hit has to block on the computing
        // thread is a scheduling accident, not a property of the run.
        ++latch_waits_;
        if (obs::countersEnabled()) {
            static obs::Counter &waits =
                obs::MetricsRegistry::instance().schedCounter(
                    "func_cache.latch_waits");
            waits.add(1);
        }
    }
    cv_.wait(lock, [&] { return entry->ready || entry->failed; });
    if (entry->failed) {
        lock.unlock();
        return getOrCompute(key, compute);
    }
    return entry->value;
}

bool
FunctionalCache::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    return it != map_.end() && it->second->ready;
}

void
FunctionalCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    order_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    latch_waits_ = 0;
}

void
FunctionalCache::setCapacity(std::size_t entries)
{
    if (entries == 0) {
        panic("FunctionalCache::setCapacity: capacity must be >= 1");
    }
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = entries;
    evictOverflowLocked();
}

std::size_t
FunctionalCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

FunctionalCache::Stats
FunctionalCache::stats() const
{
    if (activeFuncCacheMode() == FuncCacheMode::Off) {
        // Bypassed: the cache serves nothing right now, so report
        // zeros instead of the stale totals of an earlier On phase
        // (see the header comment).  Internal counters are kept and
        // resurface when the mode returns to On.
        return Stats{};
    }
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.latch_waits = latch_waits_;
    s.entries = map_.size();
    return s;
}

void
FunctionalCache::evictOverflowLocked()
{
    // Oldest-first among *ready* entries; in-flight computations are
    // pinned (evicting one would let a second caller recompute it).
    std::size_t scan = order_.size();
    while (map_.size() > capacity_ && scan-- > 0) {
        const std::string victim = std::move(order_.front());
        order_.pop_front();
        auto it = map_.find(victim);
        if (it == map_.end()) {
            continue; // stale order entry (cleared or re-keyed)
        }
        if (!it->second->ready) {
            order_.push_back(victim); // pinned: still computing
            continue;
        }
        map_.erase(it);
        ++evictions_;
        if (obs::countersEnabled()) {
            static obs::Counter &evictions =
                obs::MetricsRegistry::instance().counter(
                    "func_cache.evictions");
            evictions.add(1);
        }
    }
}

} // namespace focus
