/**
 * @file
 * Process-wide functional-evaluation cache.
 *
 * Every bench, DSE sweep, and serving replay drives the same reduced
 * functional model through `Evaluator::runFunctional`, and methods
 * repeat across cells: the dense baseline anchors every comparison,
 * serving calibration re-evaluates each (model, dataset, method)
 * combo per replay, and DSE grids revisit the default configuration.
 * The FunctionalCache memoizes the full `MethodEval` (accuracy,
 * sparsity, `FunctionalAggregate`) keyed by everything the result
 * depends on — model, dataset, seed, sample count, the *complete*
 * method parameterization (`methodSignature`, not the display name,
 * which collapses distinct configurations), and the active GEMM/math
 * backends — so each distinct evaluation runs exactly once per
 * process and every later consumer gets the same doubles back.
 *
 * Gating follows the repo's backend-knob contract
 * (`common/env_dispatch.h`): `FOCUS_FUNC_CACHE=on|off`, default on.
 * `off` bypasses the reuse layer *and* the batched forward path in
 * `Evaluator::runFunctional`, reproducing the historical per-sample
 * evaluation byte for byte — CI diffs bench output across both modes.
 *
 * Concurrency: `getOrCompute` is compute-once-per-key.  The first
 * caller computes outside the cache lock; concurrent callers for the
 * same key block until the value is ready.  A blocked waiter is safe
 * under the fork-join pool: the computing thread participates in its
 * own nested `parallelFor`, so it always makes progress even when
 * every other worker is waiting on its key.
 */

#ifndef FOCUS_EVAL_FUNC_CACHE_H
#define FOCUS_EVAL_FUNC_CACHE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "eval/evaluator.h"
#include "vlm/method.h"

namespace focus
{

/** Functional-cache mode (see file comment). */
enum class FuncCacheMode
{
    On, ///< memoize MethodEvals + batched QA forward path (default)
    Off ///< historical per-sample evaluation, no reuse layer
};

/** Name for logging / bench banners ("on" | "off"). */
const char *funcCacheModeName(FuncCacheMode m);

/**
 * Currently active mode.  Initialized once from the FOCUS_FUNC_CACHE
 * environment variable (default On; panics on an unknown value).
 */
FuncCacheMode activeFuncCacheMode();

/** Override the active mode (tests flip this to compare paths). */
void setFuncCacheMode(FuncCacheMode m);

/**
 * Full method parameterization as a string: every field of every
 * sub-config, doubles in hex-float so distinct values can never
 * collide.  Unlike `MethodConfig::name()` (a display label that maps
 * many configurations to "Focus"), equal signatures imply functionally
 * identical method behavior.
 */
std::string methodSignature(const MethodConfig &m);

/**
 * Cache key for one functional evaluation: model, dataset, seed,
 * sample count, method signature, plus the active GEMM and SFU math
 * backends (results are thread-count invariant but *not* backend
 * invariant, and tests flip backends mid-process).
 */
std::string functionalCacheKey(const std::string &model,
                               const std::string &dataset,
                               const EvalOptions &opts,
                               const MethodConfig &method);

/** Process-wide memo of MethodEval results (see file comment). */
class FunctionalCache
{
  public:
    static FunctionalCache &instance();

    /**
     * Return the cached MethodEval for @p key, computing it via
     * @p compute on first request.  Exactly one caller computes;
     * concurrent callers for the same key block until ready.  If the
     * computation throws, the entry is dropped, the exception
     * propagates to the computing caller, and blocked waiters retry.
     */
    MethodEval getOrCompute(const std::string &key,
                            const std::function<MethodEval()> &compute);

    /** True when @p key holds a ready value. */
    bool contains(const std::string &key) const;

    /** Drop all entries and reset the hit/miss/eviction counters. */
    void clear();

    /**
     * Cap on resident entries (default 256); the oldest ready entry
     * is evicted on overflow.  Entries still being computed are never
     * evicted, so the cache can transiently exceed the cap.
     */
    void setCapacity(std::size_t entries);
    std::size_t capacity() const;

    struct Stats
    {
        std::uint64_t hits = 0;   ///< lookups served from the cache
        std::uint64_t misses = 0; ///< lookups that had to compute
        std::uint64_t evictions = 0;
        std::uint64_t latch_waits = 0; ///< hits that blocked on compute
        std::size_t entries = 0;  ///< currently resident
    };

    /**
     * Internal counters.  When the cache is bypassed
     * (`FOCUS_FUNC_CACHE=off`) this reads all-zero rather than the
     * stale totals of an earlier on-phase: a bypassed cache serves
     * nothing, and reporting old hit counts as if they were current
     * misleads every consumer.  The internal totals are preserved and
     * reappear when the mode returns to On.  The same counts stream
     * into the obs registry (`func_cache.*`, see obs/metrics.h) when
     * `FOCUS_OBS` enables it.
     */
    Stats stats() const;

  private:
    FunctionalCache() = default;

    struct Entry
    {
        bool ready = false;
        bool failed = false;
        MethodEval value;
    };

    void evictOverflowLocked();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::unordered_map<std::string, std::shared_ptr<Entry>> map_;
    std::deque<std::string> order_; ///< insertion order for eviction
    std::size_t capacity_ = 256;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t latch_waits_ = 0;
};

} // namespace focus

#endif // FOCUS_EVAL_FUNC_CACHE_H
