#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace focus
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    };
    widen(header_);
    for (const auto &row : rows_) {
        widen(row);
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            os << cell;
            if (i + 1 < widths.size()) {
                os << std::string(widths[i] - cell.size() + 2, ' ');
            }
        }
        os << "\n";
    };
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) {
        total += w + 2;
    }
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_) {
        emit(row);
    }
    return os.str();
}

std::string
fmtF(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtPct(double v, int decimals)
{
    return fmtF(v * 100.0, decimals);
}

std::string
fmtX(double v, int decimals)
{
    return fmtF(v, decimals) + "x";
}

} // namespace focus
