/**
 * @file
 * Fixed-width table rendering for bench harness output.
 */

#ifndef FOCUS_EVAL_REPORT_H
#define FOCUS_EVAL_REPORT_H

#include <string>
#include <vector>

namespace focus
{

/**
 * Simple column-aligned table: set a header, append rows of cells,
 * render to stdout-friendly text.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Render with column padding and a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals digits. */
std::string fmtF(double v, int decimals = 2);

/** Format a percentage (value in [0,1] -> "xx.x"). */
std::string fmtPct(double v, int decimals = 2);

/** Format with an 'x' multiplier suffix ("2.35x"). */
std::string fmtX(double v, int decimals = 2);

} // namespace focus

#endif // FOCUS_EVAL_REPORT_H
