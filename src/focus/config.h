/**
 * @file
 * Configuration of the Focus unit (SEC + SIC).
 *
 * Defaults reproduce the paper's Tbl. I hyper-parameters: 2x2x2
 * blocks, vector length 32, similarity threshold 0.9, m tile 1024.
 */

#ifndef FOCUS_FOCUS_CONFIG_H
#define FOCUS_FOCUS_CONFIG_H

#include <cstdint>

namespace focus
{

/** Similarity Concentrator (SIC) configuration. */
struct SicConfig
{
    /** Cosine similarity threshold for a match. */
    float threshold = 0.9f;

    /** Vector (channel-slice) length for similarity granularity. */
    int vector_size = 32;

    /** Spatiotemporal block extents (frames, height, width). */
    int block_f = 2;
    int block_h = 2;
    int block_w = 2;

    /** GEMM m tile size: comparisons never cross a tile boundary. */
    int64_t m_tile = 1024;

    /**
     * Token-wise ablation (Fig. 2(c) "Ours token-wise"): match whole
     * token rows instead of vector slices.
     */
    bool token_wise = false;
};

/** How SEC selects the retained tokens at a pruning layer. */
enum class SecSelect
{
    TopK,      ///< fixed per-layer retention ratios (paper Tbl. I)
    TopP,      ///< cumulative-importance mass (Sec. VII-D extension)
    Threshold, ///< post-softmax attention threshold (ditto)
};

/** Semantic Concentrator (SEC) configuration. */
struct SecConfig
{
    /**
     * Number of parallel max units / sorter lanes ("a" in the paper);
     * equals the PE array width.
     */
    int lanes = 32;

    /** Selection rule at each scheduled pruning layer. */
    SecSelect select = SecSelect::TopK;

    /** Cumulative importance mass for SecSelect::TopP. */
    double top_p = 0.92;

    /** Fraction of max importance for SecSelect::Threshold. */
    double threshold = 0.05;
};

/** Complete Focus unit configuration. */
struct FocusConfig
{
    bool sec_enable = true;
    bool sic_enable = true;
    SecConfig sec;
    SicConfig sic;
};

} // namespace focus

#endif // FOCUS_FOCUS_CONFIG_H
