#include "focus/focus_unit.h"

#include "common/logging.h"

namespace focus
{

FocusUnit::FocusUnit(const FocusConfig &cfg,
                     std::vector<TokenCoord> coords)
    : cfg_(cfg), coords_(std::move(coords))
{
    active_original_.resize(coords_.size());
    for (size_t i = 0; i < coords_.size(); ++i) {
        active_original_[i] = static_cast<int64_t>(i);
    }
    stats_.tokens_in = static_cast<int64_t>(coords_.size());
    stats_.tokens_retained = stats_.tokens_in;
}

std::vector<int64_t>
FocusUnit::semanticPrune(const std::vector<Tensor> &head_probs,
                         int64_t num_text, int64_t k)
{
    if (!cfg_.sec_enable) {
        std::vector<int64_t> all(coords_.size());
        for (size_t i = 0; i < coords_.size(); ++i) {
            all[i] = static_cast<int64_t>(i);
        }
        return all;
    }
    const int64_t s_cur = static_cast<int64_t>(coords_.size());
    const std::vector<float> importance =
        secImportance(head_probs, s_cur, num_text);

    std::vector<int64_t> retained;
    switch (cfg_.sec.select) {
      case SecSelect::TopK:
        retained = secTopK(importance, k);
        break;
      case SecSelect::TopP:
        retained = secTopP(importance, cfg_.sec.top_p);
        break;
      case SecSelect::Threshold:
        retained = secThreshold(importance, cfg_.sec.threshold);
        break;
    }

    std::vector<TokenCoord> next_coords;
    std::vector<int64_t> next_orig;
    next_coords.reserve(retained.size());
    next_orig.reserve(retained.size());
    for (int64_t idx : retained) {
        next_coords.push_back(coords_[static_cast<size_t>(idx)]);
        next_orig.push_back(
            active_original_[static_cast<size_t>(idx)]);
    }
    coords_ = std::move(next_coords);
    active_original_ = std::move(next_orig);
    stats_.tokens_retained = static_cast<int64_t>(coords_.size());
    return retained;
}

SicResult
FocusUnit::concentrate(Tensor &activations) const
{
    if (!cfg_.sic_enable) {
        SicResult res;
        res.total_vectors = 0;
        res.unique_vectors = 0;
        return res;
    }
    const int64_t rows = activations.rows();
    const int64_t visual = static_cast<int64_t>(coords_.size());
    if (rows < visual) {
        panic("FocusUnit::concentrate: %ld rows for %ld active "
              "tokens", static_cast<long>(rows),
              static_cast<long>(visual));
    }
    // Trailing non-visual rows (e.g. text) get sentinel coordinates.
    std::vector<TokenCoord> gc = coords_;
    gc.resize(static_cast<size_t>(rows), TokenCoord{-1, 0, 0});

    SicResult res = sicGather(activations, gc, cfg_.sic);
    stats_.vectors_total += res.total_vectors;
    stats_.vectors_unique += res.unique_vectors;
    return res;
}

OffsetEncoding
FocusUnit::offsetEncoding() const
{
    return encodeOffsets(active_original_);
}

} // namespace focus
