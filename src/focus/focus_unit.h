/**
 * @file
 * FocusUnit: the public facade over the two concentrator submodules,
 * mirroring the hardware block of Fig. 4 — a modular unit placed
 * between compute stages, intercepting activations before memory
 * write-back.
 *
 * Library users who do not want to drive SEC/SIC separately can hand
 * the unit an attention map (to select tokens) and activation tiles
 * (to concentrate); the unit keeps the running token set, offset
 * encoding, and cumulative statistics.
 */

#ifndef FOCUS_FOCUS_FOCUS_UNIT_H
#define FOCUS_FOCUS_FOCUS_UNIT_H

#include <cstdint>
#include <vector>

#include "focus/config.h"
#include "focus/offset_encoding.h"
#include "focus/sec.h"
#include "focus/sic.h"
#include "tensor/tensor.h"
#include "workload/video_gen.h"

namespace focus
{

/** Cumulative statistics of a FocusUnit instance. */
struct FocusUnitStats
{
    int64_t tokens_in = 0;       ///< visual tokens seen at attach time
    int64_t tokens_retained = 0; ///< after the latest semantic prune
    int64_t vectors_total = 0;   ///< vectors streamed through gather
    int64_t vectors_unique = 0;  ///< vectors kept after gather

    double
    tokenKeepFraction() const
    {
        return tokens_in == 0
            ? 1.0
            : static_cast<double>(tokens_retained) /
                  static_cast<double>(tokens_in);
    }

    double
    vectorUniqueFraction() const
    {
        return vectors_total == 0
            ? 1.0
            : static_cast<double>(vectors_unique) /
                  static_cast<double>(vectors_total);
    }
};

/**
 * The Focus unit (SEC + SIC) as one object.
 *
 * Usage:
 *   FocusUnit unit(cfg, coords);           // attach to a token set
 *   unit.semanticPrune(head_probs, T, k);  // inside attention
 *   unit.concentrate(activations);         // on each FC output
 *   unit.offsetEncoding();                 // positions for downstream
 */
class FocusUnit
{
  public:
    /**
     * @param cfg    unit configuration (Tbl. I defaults)
     * @param coords original (frame,row,col) of every visual token,
     *               in stream (FHW) order
     */
    FocusUnit(const FocusConfig &cfg,
              std::vector<TokenCoord> coords);

    /**
     * Semantic Concentrator step: select the retained tokens from
     * per-head attention maps over [visual ; text] rows.
     *
     * @param head_probs softmax(QK^T) per head, (S+T) x (S+T)
     * @param num_text   trailing text rows (never pruned)
     * @param k          tokens to keep (SecSelect::TopK), ignored for
     *                   the adaptive modes
     * @return indices (into the *current* active set) retained
     */
    std::vector<int64_t> semanticPrune(
        const std::vector<Tensor> &head_probs, int64_t num_text,
        int64_t k);

    /**
     * Similarity Concentrator step: gather one activation tensor of
     * the active tokens in place (text rows may be appended by the
     * caller with sentinel coordinates).  Returns the gather result
     * (maps + fractions).
     */
    SicResult concentrate(Tensor &activations) const;

    /** Offset encoding of the current active token positions. */
    OffsetEncoding offsetEncoding() const;

    /** Active token coordinates (after any semantic pruning). */
    const std::vector<TokenCoord> &activeCoords() const
    {
        return coords_;
    }

    /** Original stream index of each active token. */
    const std::vector<int64_t> &activeOriginal() const
    {
        return active_original_;
    }

    const FocusUnitStats &stats() const { return stats_; }
    const FocusConfig &config() const { return cfg_; }

  private:
    FocusConfig cfg_;
    std::vector<TokenCoord> coords_;
    std::vector<int64_t> active_original_;
    mutable FocusUnitStats stats_;
};

} // namespace focus

#endif // FOCUS_FOCUS_FOCUS_UNIT_H
