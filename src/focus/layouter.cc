#include "focus/layouter.h"

#include <array>

#include "common/logging.h"

namespace focus
{

LayouterBuffer::LayouterBuffer(int grid_w, int64_t depth)
    : grid_w_(grid_w), depth_(depth),
      banks_(kLayouterBanks,
             std::vector<int64_t>(static_cast<size_t>(depth), -1))
{
    if (depth <= 0) {
        panic("LayouterBuffer: depth must be positive");
    }
}

int
LayouterBuffer::store(const TokenCoord &t, int64_t token_id)
{
    const int bank = layouterBank(t);
    const int64_t off = layouterOffset(t, grid_w_) % depth_;
    banks_[static_cast<size_t>(bank)][static_cast<size_t>(off)] =
        token_id;
    return bank;
}

int
LayouterBuffer::fetchBlock(const TokenCoord &key, int64_t out_ids[8]) const
{
    std::array<bool, kLayouterBanks> used{};
    int distinct = 0;
    int member = 0;
    for (int df = 0; df < 2; ++df) {
        for (int dr = 0; dr < 2; ++dr) {
            for (int dc = 0; dc < 2; ++dc, ++member) {
                const TokenCoord t{key.f - df, key.r - dr, key.c - dc};
                if (t.f < 0 || t.r < 0 || t.c < 0) {
                    out_ids[member] = -1;
                    continue;
                }
                const int bank = layouterBank(t);
                const int64_t off =
                    layouterOffset(t, grid_w_) % depth_;
                out_ids[member] = banks_[static_cast<size_t>(bank)]
                    [static_cast<size_t>(off)];
                if (!used[static_cast<size_t>(bank)]) {
                    used[static_cast<size_t>(bank)] = true;
                    ++distinct;
                }
            }
        }
    }
    return distinct;
}

} // namespace focus
