/**
 * @file
 * Convolution-style layouter: conflict-free bank addressing for
 * block-level similarity matching (Sec. VI-B, Fig. 7).
 *
 * Given a token's (frame, row, col) coordinate, the layouter maps it
 * to one of 8 SRAM banks and an offset such that the 8 members of any
 * 2x2x2 block land in 8 distinct banks — enabling one-cycle parallel
 * block fetch with zero data duplication:
 *
 *   bank   = (f % 2) * 4 + (r % 2) * 2 + (c % 2)
 *   offset = floor(r / 2) * ceil(W / 2) + floor(c / 2)
 *
 * (The frame pair alternates between the two 4-bank halves; offsets
 * address within a frame's half.)
 */

#ifndef FOCUS_FOCUS_LAYOUTER_H
#define FOCUS_FOCUS_LAYOUTER_H

#include <cstdint>

#include "workload/video_gen.h"

namespace focus
{

/** Number of SRAM banks in the layouter (2x2x2 block members). */
constexpr int kLayouterBanks = 8;

/** Bank index for a token coordinate. */
inline int
layouterBank(const TokenCoord &t)
{
    return (t.f % 2) * 4 + (t.r % 2) * 2 + (t.c % 2);
}

/** Offset within the bank for a token coordinate in a WxH frame. */
inline int64_t
layouterOffset(const TokenCoord &t, int grid_w)
{
    const int64_t half_w = (grid_w + 1) / 2;
    return (static_cast<int64_t>(t.r) / 2) * half_w + (t.c / 2);
}

/**
 * Simulated layouter buffer: a window of recent tokens stored across
 * 8 banks.  Used by the unit tests to demonstrate conflict-free block
 * fetches and by the timing model to size the 16 KB window buffer.
 */
class LayouterBuffer
{
  public:
    /**
     * @param grid_w frame width in patches (needed by the offset fn)
     * @param depth  entries per bank
     */
    LayouterBuffer(int grid_w, int64_t depth);

    /**
     * Store a token id at its mapped (bank, offset % depth) slot.
     * Returns the bank used.
     */
    int store(const TokenCoord &t, int64_t token_id);

    /**
     * Fetch the token ids of an aligned block anchored at @p key
     * (the block spans f-df, r-dr, c-dc for df,dr,dc in {0,1}).
     * Returns the number of *distinct banks* touched; a correct
     * layout always reports the number of valid members, i.e. no two
     * members share a bank.  Missing members (never stored or evicted)
     * yield -1 entries.
     */
    int fetchBlock(const TokenCoord &key, int64_t out_ids[8]) const;

  private:
    int grid_w_;
    int64_t depth_;
    // banks_[bank][slot] = token id or -1.
    std::vector<std::vector<int64_t>> banks_;
};

} // namespace focus

#endif // FOCUS_FOCUS_LAYOUTER_H
