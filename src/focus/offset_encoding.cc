#include "focus/offset_encoding.h"

#include <cinttypes>

#include "common/logging.h"

namespace focus
{

OffsetEncoding
encodeOffsets(const std::vector<int64_t> &retained)
{
    // An escape entry contributes kEscape - 1 to the running gap and
    // emits no token, so the literal that terminates a gap is always
    // in [1, kEscape - 1].
    constexpr int64_t escape_gap = OffsetEncoding::kEscape - 1;

    OffsetEncoding enc;
    enc.offsets.reserve(retained.size());
    int64_t prev = -1;
    for (int64_t idx : retained) {
        if (idx <= prev) {
            panic("encodeOffsets: indices must be strictly increasing "
                  "(%" PRId64 " after %" PRId64 ")", idx, prev);
        }
        int64_t gap = idx - prev;
        while (gap > escape_gap) {
            enc.offsets.push_back(OffsetEncoding::kEscape);
            gap -= escape_gap;
        }
        enc.offsets.push_back(static_cast<uint16_t>(gap));
        prev = idx;
    }
    return enc;
}

std::vector<int64_t>
decodeOffsets(const OffsetEncoding &enc)
{
    constexpr int64_t escape_gap = OffsetEncoding::kEscape - 1;
    std::vector<int64_t> out;
    int64_t pos = -1;
    int64_t pending = 0;
    for (uint16_t o : enc.offsets) {
        if (o == OffsetEncoding::kEscape) {
            pending += escape_gap;
            continue;
        }
        pos += pending + o;
        pending = 0;
        out.push_back(pos);
    }
    return out;
}

} // namespace focus
