/**
 * @file
 * Localized offset encoding for retained-token positions (Sec. V-C).
 *
 * After semantic pruning, downstream block-level similarity matching
 * must recover each retained token's (frame, row, col) coordinate.
 * The SEC emits, per retained token, the offset (gap) to the previous
 * retained token; positions are reconstructed by a running sum.  The
 * hardware uses a small per-tile register carrying the prior tile's
 * last index (Fig. 5(5)); functionally this is a prefix sum, which is
 * what we implement, plus an explicit tile-aware encoder used by the
 * tests to check the per-tile handoff logic.
 */

#ifndef FOCUS_FOCUS_OFFSET_ENCODING_H
#define FOCUS_FOCUS_OFFSET_ENCODING_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace focus
{

/**
 * Offset-encoded retained-token positions.
 *
 * `offsets[i]` is the gap from the previous retained token's original
 * index (the first token's offset is measured from -1, so a retained
 * token 0 has offset 1).  Gaps are stored as uint16; a gap that would
 * overflow is split by inserting `kEscape` markers, each standing for
 * a gap contribution of 65534 with no token emitted, so arbitrarily
 * sparse retention encodes losslessly.
 */
struct OffsetEncoding
{
    static constexpr uint16_t kEscape = 0xffffu;

    std::vector<uint16_t> offsets;

    /** Encoded size in bytes (2 bytes per entry). */
    size_t byteSize() const { return offsets.size() * 2; }
};

/**
 * Encode ascending original indices of retained tokens.
 * Indices must be strictly increasing and non-negative.
 */
OffsetEncoding encodeOffsets(const std::vector<int64_t> &retained);

/** Decode back to original indices. */
std::vector<int64_t> decodeOffsets(const OffsetEncoding &enc);

} // namespace focus

#endif // FOCUS_FOCUS_OFFSET_ENCODING_H
