#include "focus/sec.h"

#include <algorithm>
#include <cinttypes>
#include <limits>

#include "common/logging.h"

namespace focus
{

std::vector<float>
secImportance(const std::vector<Tensor> &attn, int64_t num_image,
              int64_t num_text)
{
    if (attn.empty()) {
        panic("secImportance: no attention heads");
    }
    const int64_t total = num_image + num_text;
    std::vector<float> importance(static_cast<size_t>(num_image),
                                  -std::numeric_limits<float>::infinity());
    for (const Tensor &head : attn) {
        if (head.rows() != total || head.cols() != total) {
            panic("secImportance: head shape %" PRId64 "x%" PRId64
                  ", expected %" PRId64 "x%" PRId64,
                  head.rows(), head.cols(), total, total);
        }
        // Text-to-Image block: rows M..M+T-1, columns 0..M-1.
        for (int64_t i = num_image; i < total; ++i) {
            const float *row = head.row(i);
            for (int64_t j = 0; j < num_image; ++j) {
                importance[static_cast<size_t>(j)] =
                    std::max(importance[static_cast<size_t>(j)], row[j]);
            }
        }
    }
    return importance;
}

std::vector<int64_t>
secTopK(const std::vector<float> &importance, int64_t k)
{
    const int64_t m = static_cast<int64_t>(importance.size());
    if (k >= m) {
        std::vector<int64_t> all(static_cast<size_t>(m));
        for (int64_t i = 0; i < m; ++i) {
            all[static_cast<size_t>(i)] = i;
        }
        return all;
    }
    std::vector<int64_t> idx(static_cast<size_t>(m));
    for (int64_t i = 0; i < m; ++i) {
        idx[static_cast<size_t>(i)] = i;
    }
    // Stable comparator: larger value first, lower index on ties.
    auto cmp = [&](int64_t a, int64_t b) {
        const float va = importance[static_cast<size_t>(a)];
        const float vb = importance[static_cast<size_t>(b)];
        if (va != vb) {
            return va > vb;
        }
        return a < b;
    };
    std::nth_element(idx.begin(), idx.begin() + k, idx.end(), cmp);
    idx.resize(static_cast<size_t>(k));
    std::sort(idx.begin(), idx.end());
    return idx;
}

std::vector<int64_t>
secTopP(const std::vector<float> &importance, double p)
{
    const int64_t m = static_cast<int64_t>(importance.size());
    if (m == 0) {
        return {};
    }
    std::vector<int64_t> order(static_cast<size_t>(m));
    for (int64_t i = 0; i < m; ++i) {
        order[static_cast<size_t>(i)] = i;
    }
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        const float va = importance[static_cast<size_t>(a)];
        const float vb = importance[static_cast<size_t>(b)];
        if (va != vb) {
            return va > vb;
        }
        return a < b;
    });
    double total = 0.0;
    for (float v : importance) {
        total += static_cast<double>(std::max(v, 0.0f));
    }
    const double target = p * total;

    std::vector<int64_t> keep;
    double cum = 0.0;
    for (int64_t idx : order) {
        keep.push_back(idx);
        cum += static_cast<double>(
            std::max(importance[static_cast<size_t>(idx)], 0.0f));
        if (cum >= target && !keep.empty()) {
            break;
        }
    }
    std::sort(keep.begin(), keep.end());
    return keep;
}

std::vector<int64_t>
secThreshold(const std::vector<float> &importance, double theta)
{
    const int64_t m = static_cast<int64_t>(importance.size());
    if (m == 0) {
        return {};
    }
    float mx = importance[0];
    int64_t argmax = 0;
    for (int64_t i = 1; i < m; ++i) {
        if (importance[static_cast<size_t>(i)] > mx) {
            mx = importance[static_cast<size_t>(i)];
            argmax = i;
        }
    }
    const double cut = theta * static_cast<double>(mx);
    std::vector<int64_t> keep;
    for (int64_t i = 0; i < m; ++i) {
        if (static_cast<double>(importance[static_cast<size_t>(i)]) >
            cut) {
            keep.push_back(i);
        }
    }
    if (keep.empty()) {
        keep.push_back(argmax);
    }
    return keep;
}

StreamingTopK::StreamingTopK(int lanes, int64_t k)
    : lanes_(lanes), k_(k), cycles_(0)
{
    if (lanes <= 0) {
        panic("StreamingTopK: lanes must be positive");
    }
}

std::vector<int64_t>
StreamingTopK::select(const std::vector<float> &importance)
{
    const int64_t m = static_cast<int64_t>(importance.size());
    cycles_ = 0;
    if (k_ >= m) {
        std::vector<int64_t> all(static_cast<size_t>(m));
        for (int64_t i = 0; i < m; ++i) {
            all[static_cast<size_t>(i)] = i;
        }
        return all;
    }

    // Each pass streams all M candidates through a chain of `lanes`
    // max registers; candidates already selected in earlier passes are
    // masked out.  A pass costs M cycles (one candidate per cycle; the
    // drain of the short chain is hidden by pipelining).
    std::vector<bool> taken(static_cast<size_t>(m), false);
    std::vector<int64_t> selected;
    selected.reserve(static_cast<size_t>(k_));

    const int64_t passes = (k_ + lanes_ - 1) / lanes_;
    for (int64_t p = 0; p < passes &&
             static_cast<int64_t>(selected.size()) < k_; ++p) {
        // Chain state: (value, index) per lane, ordered best-first.
        std::vector<std::pair<float, int64_t>> chain;
        for (int64_t j = 0; j < m; ++j) {
            ++cycles_;
            if (taken[static_cast<size_t>(j)]) {
                continue;
            }
            const float v = importance[static_cast<size_t>(j)];
            // Bubble the candidate into the chain.  The comparator
            // is lexicographic on (value, stream index): ties go to
            // the earlier-streamed candidate, including for elements
            // displaced mid-chain by a larger newcomer.
            std::pair<float, int64_t> cand{v, j};
            for (auto &slot : chain) {
                if (cand.first > slot.first ||
                    (cand.first == slot.first &&
                     cand.second < slot.second)) {
                    std::swap(cand, slot);
                }
            }
            if (static_cast<int>(chain.size()) < lanes_) {
                chain.push_back(cand);
            }
        }
        const int64_t want = std::min<int64_t>(
            lanes_, k_ - static_cast<int64_t>(selected.size()));
        for (int64_t i = 0; i < want &&
                 i < static_cast<int64_t>(chain.size()); ++i) {
            selected.push_back(chain[static_cast<size_t>(i)].second);
            taken[static_cast<size_t>(
                chain[static_cast<size_t>(i)].second)] = true;
        }
    }
    std::sort(selected.begin(), selected.end());
    return selected;
}

} // namespace focus
