/**
 * @file
 * Semantic Concentrator (SEC): prompt-aware token importance,
 * streaming top-k selection, and offset encoding (Sec. V).
 */

#ifndef FOCUS_FOCUS_SEC_H
#define FOCUS_FOCUS_SEC_H

#include <cstdint>
#include <vector>

#include "focus/config.h"
#include "tensor/tensor.h"

namespace focus
{

/**
 * Compute per-image-token importance from per-head attention maps.
 *
 * @param attn  vector of per-head softmax(QK^T) matrices, each of
 *              shape ((M+T) x (M+T)) with image tokens first.
 * @param num_image  M, number of image tokens (columns 0..M-1).
 * @param num_text   T, number of text tokens (rows M..M+T-1).
 * @return length-M importance vector:
 *         s_j = max over heads and text rows of attn[h](text_i, j).
 *
 * This is the streaming importance analyzer of Fig. 5(2); the
 * functional result is exact (max-reduction order does not matter).
 */
std::vector<float> secImportance(const std::vector<Tensor> &attn,
                                 int64_t num_image, int64_t num_text);

/**
 * Exact top-k selection: returns the indices of the k largest
 * importance values, in ascending index order (the order tokens
 * stream in).  Ties broken toward lower index, matching a stable
 * hardware comparator chain.
 */
std::vector<int64_t> secTopK(const std::vector<float> &importance,
                             int64_t k);

/**
 * Top-p selection (the paper's Sec. VII-D future-work variant):
 * retain the smallest prefix of tokens, taken in descending
 * importance order, whose cumulative importance reaches @p p of the
 * total.  Adapts the retained count to the input: a frame with one
 * salient region keeps few tokens, a busy frame keeps many.
 * Returns ascending indices; always retains at least one token.
 */
std::vector<int64_t> secTopP(const std::vector<float> &importance,
                             double p);

/**
 * Threshold selection (post-softmax attention threshold variant):
 * retain every token whose importance exceeds @p theta times the
 * maximum importance.  Always retains at least the argmax.
 */
std::vector<int64_t> secThreshold(const std::vector<float> &importance,
                                  double theta);

/**
 * Cycle-faithful emulation of the a-way streaming bubble sorter of
 * Fig. 5(4).
 *
 * The hardware chains `a` max units into a pipelined bubble-sort lane
 * and makes ceil(k/a) passes over the M candidates, extracting `a`
 * more of the top-k per pass (M*k/a cycles total).  This class
 * reproduces that pass structure so tests can verify it selects
 * exactly the same set as secTopK, and so the timing model can read
 * off its cycle count.
 */
class StreamingTopK
{
  public:
    StreamingTopK(int lanes, int64_t k);

    /** Run the selection over the full importance vector. */
    std::vector<int64_t> select(const std::vector<float> &importance);

    /** Cycles consumed by the last select() call: passes * M. */
    uint64_t cycles() const { return cycles_; }

  private:
    int lanes_;
    int64_t k_;
    uint64_t cycles_;
};

} // namespace focus

#endif // FOCUS_FOCUS_SEC_H
