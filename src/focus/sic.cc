#include "focus/sic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/math_util.h"
#include "obs/trace_span.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace focus
{

namespace
{

/** Dense (f, r, c) -> row lookup built per gather call. */
class CoordIndex
{
  public:
    explicit CoordIndex(const std::vector<TokenCoord> &coords)
    {
        for (size_t i = 0; i < coords.size(); ++i) {
            const TokenCoord &t = coords[i];
            if (t.f < 0) {
                continue;
            }
            max_f_ = std::max(max_f_, t.f);
            max_r_ = std::max(max_r_, t.r);
            max_c_ = std::max(max_c_, t.c);
        }
        stride_r_ = max_c_ + 1;
        stride_f_ = (max_r_ + 1) * stride_r_;
        table_.assign(static_cast<size_t>((max_f_ + 1) * stride_f_), -1);
        for (size_t i = 0; i < coords.size(); ++i) {
            const TokenCoord &t = coords[i];
            if (t.f < 0) {
                continue;
            }
            table_[key(t)] = static_cast<int64_t>(i);
        }
    }

    /** Row of the token at coordinate @p t, or -1. */
    int64_t
    lookup(const TokenCoord &t) const
    {
        if (t.f < 0 || t.r < 0 || t.c < 0 || t.f > max_f_ ||
            t.r > max_r_ || t.c > max_c_) {
            return -1;
        }
        return table_[key(t)];
    }

  private:
    size_t
    key(const TokenCoord &t) const
    {
        return static_cast<size_t>(t.f * stride_f_ + t.r * stride_r_ +
                                   t.c);
    }

    int max_f_ = 0;
    int max_r_ = 0;
    int max_c_ = 0;
    int64_t stride_f_ = 1;
    int64_t stride_r_ = 1;
    std::vector<int64_t> table_;
};

} // namespace

SicResult
sicGather(Tensor &x, const std::vector<TokenCoord> &coords,
          const SicConfig &cfg)
{
    if (x.rank() != 2) {
        panic("sicGather: rank-2 tensor required");
    }
    const int64_t rows = x.rows();
    const int64_t cols = x.cols();
    if (static_cast<int64_t>(coords.size()) != rows) {
        panic("sicGather: coords size %zu != rows %ld", coords.size(),
              static_cast<long>(rows));
    }

    const int64_t vec = cfg.token_wise ? cols : cfg.vector_size;
    if (vec <= 0 || cols % vec != 0) {
        panic("sicGather: vector size %ld does not divide cols %ld",
              static_cast<long>(vec), static_cast<long>(cols));
    }
    const int64_t slices = cols / vec;
    const int64_t m_tile = std::max<int64_t>(1, cfg.m_tile);

    obs::TraceSpan span("sic.gather");
    if (obs::countersEnabled()) {
        static obs::Counter &tokens =
            obs::MetricsRegistry::instance().counter(
                "sic.gather.tokens");
        tokens.add(static_cast<uint64_t>(rows));
    }

    SicResult res;
    CoordIndex index(coords);

    // Neighbour offsets of the block, excluding (0,0,0): the key is
    // the highest-index member and looks backwards.
    std::vector<TokenCoord> deltas;
    for (int df = 0; df < cfg.block_f; ++df) {
        for (int dr = 0; dr < cfg.block_h; ++dr) {
            for (int dc = 0; dc < cfg.block_w; ++dc) {
                if (df == 0 && dr == 0 && dc == 0) {
                    continue;
                }
                deltas.push_back(TokenCoord{df, dr, dc});
            }
        }
    }

    std::vector<float> orig;    // original tile slice values
    std::vector<float> norms;   // per-row L2 of the original slice
    std::vector<int64_t> cand;  // candidate tile-local rows, delta order
    std::vector<float> sims;    // their similarities vs the key row
    cand.reserve(deltas.size());
    sims.resize(deltas.size());

    for (int64_t tile0 = 0; tile0 < rows; tile0 += m_tile) {
        const int64_t tile_rows = std::min(m_tile, rows - tile0);
        for (int64_t s = 0; s < slices; ++s) {
            const int64_t c0 = s * vec;

            // Pack the tile slice once (the layouter buffer holds raw
            // GEMM outputs) and precompute L2 norms, as the hardware
            // does; the matcher below streams candidates against this
            // packed copy.
            orig.resize(static_cast<size_t>(tile_rows * vec));
            norms.resize(static_cast<size_t>(tile_rows));
            for (int64_t i = 0; i < tile_rows; ++i) {
                const float *src = x.row(tile0 + i) + c0;
                std::copy(src, src + vec,
                          orig.begin() + i * vec);
            }
            kernels::l2NormRowsF32(orig.data(), vec, tile_rows, vec,
                                   norms.data());

            SliceMap map;
            map.tile_row0 = tile0;
            map.rows = tile_rows;
            map.slice = static_cast<int>(s);
            map.compact_index.assign(static_cast<size_t>(tile_rows), -1);

            // rep[i]: tile-local row whose original values represent
            // row i (path-compressed root).
            std::vector<int32_t> rep(static_cast<size_t>(tile_rows));

            int32_t next_compact = 0;
            for (int64_t i = 0; i < tile_rows; ++i) {
                const int64_t gi = tile0 + i;
                const TokenCoord &key = coords[static_cast<size_t>(gi)];
                int64_t best_j = -1;
                float best_sim = cfg.threshold;

                if (key.f >= 0) {
                    cand.clear();
                    for (const TokenCoord &d : deltas) {
                        const TokenCoord nb{key.f - d.f, key.r - d.r,
                                            key.c - d.c};
                        const int64_t gj = index.lookup(nb);
                        // Neighbour must exist, precede the key, and
                        // live in the same tile.
                        if (gj < 0 || gj >= gi || gj < tile0) {
                            continue;
                        }
                        cand.push_back(gj - tile0);
                    }
                    // Batched similarity kernel over the packed tile
                    // slice; the selection scan below keeps the
                    // historical delta order and >= tie rule, so
                    // match decisions are backend-independent up to
                    // the vector backend's rounding.
                    kernels::simGatherF32(
                        orig.data() + i * vec,
                        norms[static_cast<size_t>(i)], orig.data(),
                        vec, norms.data(), cand.data(),
                        static_cast<int64_t>(cand.size()), vec,
                        sims.data());
                    for (size_t c = 0; c < cand.size(); ++c) {
                        if (sims[c] >= best_sim) {
                            best_sim = sims[c];
                            best_j = cand[c];
                        }
                    }
                }

                if (best_j >= 0) {
                    // Match: reuse the representative of the matched
                    // neighbour; reconstruct the value in-stream.
                    const int32_t root = rep[static_cast<size_t>(best_j)];
                    rep[static_cast<size_t>(i)] = root;
                    map.compact_index[static_cast<size_t>(i)] =
                        map.compact_index[static_cast<size_t>(root)];
                    const float *rv = orig.data() +
                        static_cast<int64_t>(root) * vec;
                    std::copy(rv, rv + vec, x.row(gi) + c0);
                } else {
                    rep[static_cast<size_t>(i)] =
                        static_cast<int32_t>(i);
                    map.compact_index[static_cast<size_t>(i)] =
                        next_compact++;
                }
            }

            map.unique = next_compact;
            res.total_vectors += tile_rows;
            res.unique_vectors += map.unique;
            res.tile_slice_unique_frac.push_back(map.uniqueFrac());
            res.maps.push_back(std::move(map));
        }
    }
    return res;
}

std::vector<Tensor>
sicCompactBuffers(const Tensor &gathered, const SicResult &res)
{
    std::vector<Tensor> out;
    out.reserve(res.maps.size());
    const int64_t cols = gathered.cols();

    // Uniform slice width: cols / slices_per_tile, where the slice
    // count is how many maps share the first tile's row origin.
    int64_t slices_per_tile = 0;
    for (const SliceMap &map : res.maps) {
        if (map.tile_row0 == res.maps.front().tile_row0) {
            ++slices_per_tile;
        }
    }
    const int64_t vec = cols / slices_per_tile;

    for (const SliceMap &map : res.maps) {
        Tensor buf(std::max<int64_t>(map.unique, 1), vec);
        const int64_t c0 = static_cast<int64_t>(map.slice) * vec;
        std::vector<bool> written(static_cast<size_t>(map.unique),
                                  false);
        for (int64_t i = 0; i < map.rows; ++i) {
            const int32_t ci =
                map.compact_index[static_cast<size_t>(i)];
            if (!written[static_cast<size_t>(ci)]) {
                const float *src = gathered.row(map.tile_row0 + i) + c0;
                std::copy(src, src + vec, buf.row(ci));
                written[static_cast<size_t>(ci)] = true;
            }
        }
        out.push_back(std::move(buf));
    }
    return out;
}

Tensor
sicScatter(const SicResult &res, const std::vector<Tensor> &compact,
           int64_t rows, int64_t cols)
{
    if (compact.size() != res.maps.size()) {
        panic("sicScatter: %zu compact buffers for %zu maps",
              compact.size(), res.maps.size());
    }
    Tensor out(rows, cols);
    for (size_t mi = 0; mi < res.maps.size(); ++mi) {
        const SliceMap &map = res.maps[mi];
        const Tensor &buf = compact[mi];
        const int64_t vec = buf.cols();
        const int64_t c0 = static_cast<int64_t>(map.slice) * vec;
        for (int64_t i = 0; i < map.rows; ++i) {
            const int32_t ci =
                map.compact_index[static_cast<size_t>(i)];
            const float *src = buf.row(ci);
            std::copy(src, src + vec, out.row(map.tile_row0 + i) + c0);
        }
    }
    return out;
}

} // namespace focus
