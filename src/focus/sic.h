/**
 * @file
 * Similarity Concentrator (SIC): vector-level redundancy removal
 * within GEMM tiles (Sec. VI).
 *
 * Similarity Gather scans each m x n output tile of a GEMM (n = the
 * vector size, 32 by default), groups vectors into 2x2x2
 * spatiotemporal blocks via the convolution-style layout, and
 * replaces vectors whose cosine similarity to a block neighbour
 * exceeds the threshold with an index reference to that neighbour's
 * representative.  A per-tile similarity map permits exact layout
 * reconstruction (Similarity Scatter).
 */

#ifndef FOCUS_FOCUS_SIC_H
#define FOCUS_FOCUS_SIC_H

#include <cstdint>
#include <vector>

#include "focus/config.h"
#include "tensor/tensor.h"
#include "workload/video_gen.h"

namespace focus
{

/** Similarity map for one (m-tile, vector-slice) pair. */
struct SliceMap
{
    int64_t tile_row0 = 0;  ///< first global row of the tile
    int64_t rows = 0;       ///< rows in the tile
    int slice = 0;          ///< channel-slice index within the tensor

    /**
     * Per tile-local row: index of its vector in the compact buffer.
     * Unique rows get fresh ascending indices; matched rows reuse the
     * index of their representative (Fig. 6(4)).
     */
    std::vector<int32_t> compact_index;

    int64_t unique = 0;     ///< number of unique vectors (= compact size)

    double
    uniqueFrac() const
    {
        return rows == 0 ? 1.0
                         : static_cast<double>(unique) /
                               static_cast<double>(rows);
    }
};

/** Result of gathering one tensor. */
struct SicResult
{
    std::vector<SliceMap> maps;

    /** Unique fraction per (tile, slice), in scan order. */
    std::vector<double> tile_slice_unique_frac;

    /** Total vectors and unique vectors across the tensor. */
    int64_t total_vectors = 0;
    int64_t unique_vectors = 0;

    double
    uniqueFrac() const
    {
        return total_vectors == 0
            ? 1.0
            : static_cast<double>(unique_vectors) /
                  static_cast<double>(total_vectors);
    }
};

/**
 * Similarity Gather over a full activation tensor, in place.
 *
 * @param x       (rows x cols) activations; rows are tokens in FHW
 *                stream order.  Matched vectors are overwritten with
 *                their representative's values, which is numerically
 *                identical to computing the next GEMM on the compact
 *                buffer and scattering partial sums (the hardware
 *                path of Fig. 8).
 * @param coords  per-row token coordinate; rows with f < 0 (e.g.
 *                text tokens) are never matched and always unique.
 * @param cfg     SIC configuration (threshold, vector size, block
 *                extents, m tile size).
 *
 * Comparisons use the *original* streamed values (the layouter
 * buffer holds raw GEMM outputs), and never cross an m-tile boundary
 * (Fig. 10(a) boundary effect).
 */
SicResult sicGather(Tensor &x, const std::vector<TokenCoord> &coords,
                    const SicConfig &cfg);

/**
 * Similarity Scatter reference: reconstruct the full (rows x cols)
 * tensor from compact per-slice buffers and the maps.  Used by tests
 * to prove gather/scatter losslessness and by the FC GEMM model.
 *
 * @param compact  per map, the unique vectors in compact order
 *                 (unique x slice_width each).
 */
Tensor sicScatter(const SicResult &res,
                  const std::vector<Tensor> &compact, int64_t rows,
                  int64_t cols);

/**
 * Extract the compact buffers implied by a gathered tensor, matching
 * the maps of @p res.  (Utility for tests and the scatter path.)
 */
std::vector<Tensor> sicCompactBuffers(const Tensor &gathered,
                                      const SicResult &res);

} // namespace focus

#endif // FOCUS_FOCUS_SIC_H
