#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/env_dispatch.h"
#include "common/logging.h"

namespace focus
{
namespace obs
{

namespace
{

const char *const kModeNames[] = {"off", "counters", "trace"};

} // namespace

namespace detail
{

// Zero-initialized (Off) until this dynamic initializer runs; see
// metrics.h.  An invalid FOCUS_OBS value panics at process start —
// a typo must never silently disable telemetry.
std::atomic<int> g_mode{static_cast<int>(obsModeFromEnv())};

} // namespace detail

const char *
obsModeName(ObsMode m)
{
    return kModeNames[static_cast<int>(m)];
}

bool
parseObsMode(const char *name, ObsMode &out)
{
    const std::string s(name != nullptr ? name : "");
    for (int i = 0; i < 3; ++i) {
        if (s == kModeNames[i]) {
            out = static_cast<ObsMode>(i);
            return true;
        }
    }
    return false;
}

ObsMode
obsModeFromEnv()
{
    return static_cast<ObsMode>(
        envBackendChoice("FOCUS_OBS", kModeNames, 3, 0));
}

ObsMode
activeObsMode()
{
    return static_cast<ObsMode>(
        detail::g_mode.load(std::memory_order_relaxed));
}

void
setObsMode(ObsMode m)
{
    detail::g_mode.store(static_cast<int>(m),
                         std::memory_order_relaxed);
}

// -----------------------------------------------------------------
// Histogram
// -----------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1)
{
    if (bounds_.empty()) {
        panic("obs::Histogram: at least one bucket bound required");
    }
    for (size_t i = 1; i < bounds_.size(); ++i) {
        if (!(bounds_[i - 1] < bounds_[i])) {
            panic("obs::Histogram: bounds must be strictly ascending "
                  "(bound[%zu]=%g >= bound[%zu]=%g)",
                  i - 1, bounds_[i - 1], i, bounds_[i]);
        }
    }
}

void
Histogram::observe(double v)
{
    // First bucket whose inclusive upper bound admits v; everything
    // past the last bound lands in the overflow bucket.
    const size_t i = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (std::atomic<uint64_t> &c : counts_) {
        c.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
}

// -----------------------------------------------------------------
// MetricsRegistry
// -----------------------------------------------------------------

MetricsRegistry &
MetricsRegistry::instance()
{
    // Leaked: instrumented code and the atexit flush may run during
    // static destruction, after a function-local static would have
    // been destroyed.
    static MetricsRegistry *reg = new MetricsRegistry();
    return *reg;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(name, std::unique_ptr<Counter>(new Counter(
                                    CounterKind::Work)))
                 .first;
    } else if (it->second->kind() != CounterKind::Work) {
        panic("obs counter '%s' already registered as a sched "
              "counter", name.c_str());
    }
    return *it->second;
}

Counter &
MetricsRegistry::schedCounter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(name, std::unique_ptr<Counter>(new Counter(
                                    CounterKind::Sched)))
                 .first;
    } else if (it->second->kind() != CounterKind::Sched) {
        panic("obs counter '%s' already registered as a work "
              "counter", name.c_str());
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge()))
                 .first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, std::unique_ptr<Histogram>(
                                    new Histogram(bounds)))
                 .first;
    } else if (it->second->bounds_ != bounds) {
        panic("obs histogram '%s' already registered with different "
              "bucket bounds", name.c_str());
    }
    return *it->second;
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &kv : counters_) {
        kv.second->reset();
    }
    for (auto &kv : gauges_) {
        kv.second->reset();
    }
    for (auto &kv : histograms_) {
        kv.second->reset();
    }
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::counterValues(CounterKind kind) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, uint64_t>> out;
    for (const auto &kv : counters_) {
        if (kv.second->kind() == kind) {
            out.emplace_back(kv.first, kv.second->value());
        }
    }
    return out; // std::map iteration is already name-sorted
}

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
}

void
appendCounterSection(
    std::string &out, const char *section,
    const std::vector<std::pair<std::string, uint64_t>> &values)
{
    out += "  \"";
    out += section;
    out += "\": {";
    char buf[32];
    for (size_t i = 0; i < values.size(); ++i) {
        out += i == 0 ? "\n    \"" : ",\n    \"";
        appendEscaped(out, values[i].first);
        std::snprintf(buf, sizeof buf, "\": %" PRIu64,
                      values[i].second);
        out += buf;
    }
    out += values.empty() ? "}" : "\n  }";
}

} // namespace

std::string
MetricsRegistry::toJson() const
{
    const std::vector<std::pair<std::string, uint64_t>> work =
        counterValues(CounterKind::Work);
    const std::vector<std::pair<std::string, uint64_t>> sched =
        counterValues(CounterKind::Sched);

    std::string out;
    out.reserve(4096);
    out += "{\n  \"schema\": \"focus-metrics-v1\",\n  \"mode\": \"";
    out += obsModeName(activeObsMode());
    out += "\",\n";
    appendCounterSection(out, "counters", work);
    out += ",\n";
    appendCounterSection(out, "sched_counters", sched);
    out += ",\n  \"gauges\": {";

    std::lock_guard<std::mutex> lock(mu_);
    char buf[48];
    bool first = true;
    for (const auto &kv : gauges_) {
        out += first ? "\n    \"" : ",\n    \"";
        first = false;
        appendEscaped(out, kv.first);
        std::snprintf(buf, sizeof buf, "\": %" PRId64,
                      kv.second->value());
        out += buf;
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"histograms\": {";
    first = true;
    for (const auto &kv : histograms_) {
        const Histogram &h = *kv.second;
        out += first ? "\n    \"" : ",\n    \"";
        first = false;
        appendEscaped(out, kv.first);
        out += "\": {\"bounds\": [";
        for (size_t i = 0; i < h.bounds_.size(); ++i) {
            std::snprintf(buf, sizeof buf, "%s%.17g",
                          i == 0 ? "" : ", ", h.bounds_[i]);
            out += buf;
        }
        out += "], \"counts\": [";
        for (size_t i = 0; i < h.buckets(); ++i) {
            std::snprintf(buf, sizeof buf, "%s%" PRIu64,
                          i == 0 ? "" : ", ", h.bucketCount(i));
            out += buf;
        }
        std::snprintf(buf, sizeof buf, "], \"count\": %" PRIu64 "}",
                      h.count());
        out += buf;
    }
    out += first ? "}" : "\n  }";
    out += "\n}\n";
    return out;
}

} // namespace obs
} // namespace focus
