/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket histograms behind a single runtime observability knob.
 *
 * Every hot layer of the reproduction (thread pool, GEMM/SFU kernels,
 * functional cache, evaluator, serving, cluster) reports into one
 * registry so a bench or serving run can explain *where* its work
 * went — the always-on equivalent of the paper's per-stage breakdown
 * figures.  The design contract:
 *
 *  - **Lock-light.** Updates are single relaxed atomic adds on
 *    registered handles; the registry mutex is only taken at
 *    registration (first use of a name) and export.
 *  - **Off by default, one-branch off path.** `FOCUS_OBS=off` (the
 *    ctest default) makes every instrumentation site a single relaxed
 *    atomic load plus an untaken branch — no clock reads, no
 *    registration, no allocation.  Bench/test output is bit-identical
 *    to uninstrumented binaries.
 *  - **Deterministic aggregates.** Counters come in two kinds.
 *    *Work* counters (`counter()`) count units of work — MACs, rows,
 *    requests, cache misses — whose totals are bit-identical at any
 *    thread count because atomic integer adds commute.  *Sched*
 *    counters (`schedCounter()`) count scheduling artifacts —
 *    invocation counts that follow thread-dependent chunking, latch
 *    waits, dropped trace events — and are exported in a separate
 *    section that determinism checks skip.  Export order is
 *    name-sorted, so the flushed JSON never depends on which thread
 *    registered a name first.
 *
 * Mode dispatch follows the repo's backend-knob contract
 * (`common/env_dispatch.h`): `FOCUS_OBS=off|counters|trace`, default
 * off, panic on an unknown value.  `counters` enables the registry;
 * `trace` additionally enables the scoped spans of
 * `obs/trace_span.h`.  `FOCUS_OBS_JSON=<dir>` registers an atexit
 * flush of `metrics.json` + `trace.json` into the directory
 * (validated by `bench/check_trace_json.py`).
 *
 * Instrumentation idiom (registration amortized to one mutex hit per
 * site via the function-local static):
 *
 *     if (obs::countersEnabled()) {
 *         static obs::Counter &c = obs::MetricsRegistry::instance()
 *             .counter("kernels.gemm.portable.macs");
 *         c.add(static_cast<uint64_t>(m * n * k));
 *     }
 */

#ifndef FOCUS_OBS_METRICS_H
#define FOCUS_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace focus
{
namespace obs
{

/** Observability mode (see file comment). */
enum class ObsMode
{
    Off,      ///< no recording anywhere (default; ctest runs this)
    Counters, ///< metrics registry live, spans disabled
    Trace     ///< registry + scoped trace spans into ring buffers
};

/** Name for logging / JSON ("off" | "counters" | "trace"). */
const char *obsModeName(ObsMode m);

/**
 * Parse a mode name; returns false on an unknown name (the env-init
 * path panics instead, per the env-dispatch contract).
 */
bool parseObsMode(const char *name, ObsMode &out);

/**
 * Re-read FOCUS_OBS from the environment: unset/empty selects Off, a
 * known name selects that mode, an unknown name panics listing the
 * valid choices.  The process mode is initialized from this once at
 * static-init time; tests call it directly for the death contract.
 */
ObsMode obsModeFromEnv();

/** Currently active mode. */
ObsMode activeObsMode();

/** Override the active mode (tests flip this to compare paths). */
void setObsMode(ObsMode m);

namespace detail
{
/**
 * Active mode as a raw int.  Zero-initialized (= Off) before its
 * dynamic initializer reads FOCUS_OBS, so instrumentation reached
 * from other static initializers safely records nothing.
 */
extern std::atomic<int> g_mode;
} // namespace detail

/** True when the registry records (mode counters or trace). */
inline bool
countersEnabled()
{
    return detail::g_mode.load(std::memory_order_relaxed) !=
        static_cast<int>(ObsMode::Off);
}

/** True when scoped spans record (mode trace). */
inline bool
traceEnabled()
{
    return detail::g_mode.load(std::memory_order_relaxed) ==
        static_cast<int>(ObsMode::Trace);
}

/** Counter kind: see the determinism contract in the file comment. */
enum class CounterKind
{
    Work, ///< unit-of-work totals, bit-identical at any thread count
    Sched ///< scheduling artifacts, excluded from determinism checks
};

/** Monotonic counter; relaxed atomic adds. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        v_.store(0, std::memory_order_relaxed);
    }

    CounterKind kind() const { return kind_; }

  private:
    friend class MetricsRegistry;
    explicit Counter(CounterKind kind) : kind_(kind) {}

    std::atomic<uint64_t> v_{0};
    CounterKind kind_;
};

/** Last-writer-wins signed gauge (fleet sizes, occupancy permille). */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t n)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        v_.store(0, std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    Gauge() = default;

    std::atomic<int64_t> v_{0};
};

/**
 * Fixed-bucket histogram.  Buckets are defined once at registration
 * by a strictly ascending list of inclusive upper bounds; an implicit
 * overflow bucket catches everything above the last bound.  A value v
 * lands in the first bucket i with v <= bound(i).  Per-bucket counts
 * are relaxed atomics, so totals are bit-identical at any thread
 * count; no floating-point sum is kept (a concurrent double
 * accumulation would be order-dependent).
 */
class Histogram
{
  public:
    void observe(double v);

    /** Bucket count including the overflow bucket (= bounds + 1). */
    size_t buckets() const { return counts_.size(); }

    /** Inclusive upper bound of bucket @p i (finite buckets only). */
    double
    bound(size_t i) const
    {
        return bounds_[i];
    }

    uint64_t
    bucketCount(size_t i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }

    /** Total observations. */
    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    void reset();

  private:
    friend class MetricsRegistry;
    explicit Histogram(std::vector<double> bounds);

    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> counts_; ///< bounds + overflow
    std::atomic<uint64_t> count_{0};
};

/** Process-wide registry (see file comment). */
class MetricsRegistry
{
  public:
    /** Leaked singleton: handles stay valid through process exit. */
    static MetricsRegistry &instance();

    /**
     * Return the work counter named @p name, registering it on first
     * use.  Panics if @p name is already registered as a sched
     * counter (a site's determinism class is a fixed property).
     */
    Counter &counter(const std::string &name);

    /** Sched-kind variant of counter(). */
    Counter &schedCounter(const std::string &name);

    Gauge &gauge(const std::string &name);

    /**
     * Return the histogram named @p name, registering it with
     * @p bounds (strictly ascending, non-empty) on first use.  Panics
     * if it is already registered with different bounds.
     */
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &bounds);

    /** Zero every counter, gauge, and histogram (registrations stay). */
    void resetAll();

    /**
     * Name-sorted snapshot of counter values of one kind (the
     * BenchRecorder obs block and the JSON export both use this).
     */
    std::vector<std::pair<std::string, uint64_t>>
    counterValues(CounterKind kind) const;

    /**
     * Full registry as a metrics.json document:
     * {"schema": "focus-metrics-v1", "mode": ..., "counters": {...},
     *  "sched_counters": {...}, "gauges": {...}, "histograms": {...}}
     * with every section in name order.
     */
    std::string toJson() const;

  private:
    MetricsRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace obs
} // namespace focus

#endif // FOCUS_OBS_METRICS_H
