#include "obs/trace_span.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/logging.h"

namespace focus
{
namespace obs
{

namespace
{

struct TraceEvent
{
    const char *name;
    uint64_t start_ns;
    uint64_t dur_ns;
};

/**
 * One thread's span ring.  Only the owning thread writes; the cursor
 * counts events ever written (monotonic), published with release so
 * an exporter's acquire load sees completed slots.  Slot reuse past
 * kTraceRingCapacity overwrites the oldest events.
 */
struct ThreadRing
{
    int tid = 0;
    std::atomic<uint64_t> cursor{0};
    std::vector<TraceEvent> events{
        std::vector<TraceEvent>(kTraceRingCapacity)};
};

std::mutex g_rings_mu;
// Leaked: rings of exited threads must stay readable for the final
// flush (the pool's workers outlive most spans but not the atexit).
std::vector<ThreadRing *> &
ringList()
{
    static std::vector<ThreadRing *> *rings =
        new std::vector<ThreadRing *>();
    return *rings;
}

ThreadRing &
localRing()
{
    thread_local ThreadRing *ring = [] {
        ThreadRing *r = new ThreadRing();
        std::lock_guard<std::mutex> lock(g_rings_mu);
        std::vector<ThreadRing *> &rings = ringList();
        r->tid = static_cast<int>(rings.size());
        rings.push_back(r);
        return r;
    }();
    return *ring;
}

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    return t0;
}

void
appendEvent(std::string &out, const TraceEvent &e, int tid,
            bool first)
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s\n  {\"name\": \"%s\", \"cat\": \"focus\", "
                  "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": 1, \"tid\": %d}",
                  first ? "" : ",", e.name,
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, tid);
    out += buf;
}

void
flushAtExit()
{
    const char *dir = std::getenv("FOCUS_OBS_JSON");
    if (dir != nullptr && *dir != '\0' &&
        activeObsMode() != ObsMode::Off) {
        flushObsJson(dir);
    }
}

/**
 * Registers the FOCUS_OBS_JSON atexit flush once the obs mode has
 * been initialized from the environment.  Registration itself is
 * unconditional (the env is re-read at exit), so a test that flips
 * the mode after startup still flushes.
 */
struct FlushRegistrar
{
    FlushRegistrar()
    {
        const char *dir = std::getenv("FOCUS_OBS_JSON");
        if (dir != nullptr && *dir != '\0') {
            std::atexit(flushAtExit);
        }
    }
};

FlushRegistrar g_flush_registrar;

} // namespace

uint64_t
traceNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

void
TraceSpan::record(const char *name, uint64_t start_ns,
                  uint64_t end_ns)
{
    ThreadRing &ring = localRing();
    const uint64_t c = ring.cursor.load(std::memory_order_relaxed);
    TraceEvent &slot = ring.events[c % kTraceRingCapacity];
    slot.name = name;
    slot.start_ns = start_ns;
    slot.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
    ring.cursor.store(c + 1, std::memory_order_release);
    if (c >= kTraceRingCapacity && countersEnabled()) {
        static Counter &dropped =
            MetricsRegistry::instance().schedCounter(
                "obs.trace.dropped");
        dropped.add(1);
    }
}

size_t
traceEventCount()
{
    std::lock_guard<std::mutex> lock(g_rings_mu);
    size_t total = 0;
    for (const ThreadRing *ring : ringList()) {
        const uint64_t c = ring->cursor.load(std::memory_order_acquire);
        total += static_cast<size_t>(
            c < kTraceRingCapacity ? c : kTraceRingCapacity);
    }
    return total;
}

uint64_t
traceDroppedCount()
{
    std::lock_guard<std::mutex> lock(g_rings_mu);
    uint64_t total = 0;
    for (const ThreadRing *ring : ringList()) {
        const uint64_t c = ring->cursor.load(std::memory_order_acquire);
        total += c < kTraceRingCapacity ? 0 : c - kTraceRingCapacity;
    }
    return total;
}

void
clearTrace()
{
    std::lock_guard<std::mutex> lock(g_rings_mu);
    for (ThreadRing *ring : ringList()) {
        ring->cursor.store(0, std::memory_order_release);
    }
}

std::string
traceJson()
{
    std::lock_guard<std::mutex> lock(g_rings_mu);
    std::string out;
    out.reserve(1 << 16);
    out += "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
    bool first = true;
    char buf[160];
    for (const ThreadRing *ring : ringList()) {
        std::snprintf(buf, sizeof buf,
                      "%s\n  {\"name\": \"thread_name\", \"ph\": "
                      "\"M\", \"pid\": 1, \"tid\": %d, \"args\": "
                      "{\"name\": \"focus-thread-%d\"}}",
                      first ? "" : ",", ring->tid, ring->tid);
        out += buf;
        first = false;
        const uint64_t c = ring->cursor.load(std::memory_order_acquire);
        const uint64_t resident =
            c < kTraceRingCapacity ? c : kTraceRingCapacity;
        // Oldest resident event first: slot order below the wrap
        // point, cursor order past it.
        const uint64_t begin = c - resident;
        for (uint64_t i = 0; i < resident; ++i) {
            const TraceEvent &e =
                ring->events[(begin + i) % kTraceRingCapacity];
            appendEvent(out, e, ring->tid, false);
        }
    }
    out += "\n]}\n";
    return out;
}

void
flushObsJson(const std::string &dir)
{
    const std::string prefix = dir.empty() ? "" : dir + "/";
    const struct
    {
        const char *file;
        std::string body;
    } outputs[] = {
        {"metrics.json", MetricsRegistry::instance().toJson()},
        {"trace.json", traceJson()},
    };
    for (const auto &o : outputs) {
        const std::string path = prefix + o.file;
        FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            warn("obs: cannot write %s (skipped)", path.c_str());
            continue;
        }
        std::fwrite(o.body.data(), 1, o.body.size(), f);
        std::fclose(f);
    }
}

} // namespace obs
} // namespace focus
