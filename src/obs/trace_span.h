/**
 * @file
 * Scoped trace spans: RAII wall-clock timers recording (name, tid,
 * start, duration) into per-thread ring buffers, exported as Chrome
 * trace-event JSON ("X" complete events) that Perfetto loads
 * directly.
 *
 * Recording is gated on `FOCUS_OBS=trace` (`obs::traceEnabled()`): a
 * span constructed in any other mode is a single relaxed atomic load
 * plus an untaken branch — no clock read, no buffer touch.  Each
 * thread owns a fixed-capacity ring (`kTraceRingCapacity` events), so
 * memory stays bounded on arbitrarily long runs: once a ring wraps,
 * the oldest events are overwritten (streaming-safe — the flushed
 * trace is the most recent window) and the `obs.trace.dropped` sched
 * counter records how many were lost.
 *
 * Span names must be string literals (or otherwise outlive the
 * process): the ring stores the pointer, not a copy, which keeps the
 * record path allocation-free.
 *
 * Export: `traceJson()` renders every resident event;
 * `flushObsJson(dir)` writes `metrics.json` (the registry) and
 * `trace.json` (the spans) into @p dir.  When `FOCUS_OBS_JSON=<dir>`
 * is set and the mode is not off, the same flush runs automatically
 * at process exit.  Readers snapshot ring cursors with acquire loads;
 * flushing while spans are actively being recorded is safe but may
 * omit (or, on a concurrently wrapping ring, tear) the newest events
 * — the atexit and bench flush points run at quiescence.
 */

#ifndef FOCUS_OBS_TRACE_SPAN_H
#define FOCUS_OBS_TRACE_SPAN_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace focus
{
namespace obs
{

/** Per-thread ring capacity in events (~1.5 MiB per thread). */
constexpr size_t kTraceRingCapacity = size_t{1} << 16;

/** Nanoseconds since the process trace epoch (first use). */
uint64_t traceNowNs();

/** RAII span; records on destruction when tracing is enabled. */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name)
    {
        if (traceEnabled()) {
            name_ = name;
            start_ns_ = traceNowNs();
        }
    }

    ~TraceSpan()
    {
        if (name_ != nullptr) {
            record(name_, start_ns_, traceNowNs());
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /**
     * Append one complete event to the calling thread's ring (spans
     * use this; exposed for instrumentation that cannot scope an
     * object, e.g. phases spanning a callback boundary).
     */
    static void record(const char *name, uint64_t start_ns,
                       uint64_t end_ns);

  private:
    const char *name_ = nullptr;
    uint64_t start_ns_ = 0;
};

/** Total events currently resident across all thread rings. */
size_t traceEventCount();

/** Total events overwritten by ring wrap-around across all threads. */
uint64_t traceDroppedCount();

/**
 * Reset every ring (test hook).  Must only run while no thread is
 * recording spans.
 */
void clearTrace();

/**
 * All resident events as a Chrome trace-event JSON document:
 * {"displayTimeUnit": "ms", "traceEvents": [...]} with one "M"
 * thread_name metadata event per thread and one "X" complete event
 * per span (ts/dur in microseconds, pid 1, tid = registration order).
 */
std::string traceJson();

/**
 * Write metrics.json (obs/metrics.h registry) and trace.json
 * (traceJson()) into @p dir; warns and continues on IO failure.
 */
void flushObsJson(const std::string &dir);

} // namespace obs
} // namespace focus

#endif // FOCUS_OBS_TRACE_SPAN_H
