#include "runtime/thread_pool.h"

#include <cstdlib>
#include <memory>

#include "common/logging.h"
#include "obs/trace_span.h"

namespace focus
{

namespace
{

thread_local bool tls_in_parallel = false;

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

} // namespace

ThreadPool::ThreadPool(int threads)
    : threads_(threads > 0 ? threads : defaultThreads())
{
    workers_.reserve(static_cast<size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    cv_job_.notify_all();
    for (std::thread &t : workers_) {
        t.join();
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lk(m_);
            cv_job_.wait(lk,
                         [&] { return stop_ || epoch_ != seen; });
            if (stop_) {
                return;
            }
            seen = epoch_;
            job = job_;
            if (!job) {
                // The job finished before this worker woke up.
                continue;
            }
            ++job->active;
        }
        {
            obs::TraceSpan span("pool.worker.job");
            runJob(*job);
        }
        {
            std::lock_guard<std::mutex> lk(m_);
            --job->active;
        }
        cv_done_.notify_all();
    }
}

void
ThreadPool::runJob(Job &job)
{
    const bool was_nested = tls_in_parallel;
    tls_in_parallel = true;
    for (;;) {
        const int64_t i =
            job.cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n) {
            break;
        }
        try {
            (*job.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(m_);
            if (job.error_index < 0 || i < job.error_index) {
                job.error_index = i;
                job.error = std::current_exception();
            }
            // Cancel the indices nobody claimed yet.
            job.cursor.store(job.n, std::memory_order_relaxed);
        }
    }
    tls_in_parallel = was_nested;
}

void
ThreadPool::parallelFor(int64_t n,
                        const std::function<void(int64_t)> &fn)
{
    if (n <= 0) {
        return;
    }
    // Sched counters: whether a site reaches parallelFor at all (and
    // with how many tasks) depends on pool width and nesting, so
    // these are scheduling artifacts, not work totals.
    if (obs::countersEnabled()) {
        static obs::Counter &calls =
            obs::MetricsRegistry::instance().schedCounter(
                "pool.parallel_for.calls");
        static obs::Counter &tasks =
            obs::MetricsRegistry::instance().schedCounter(
                "pool.parallel_for.tasks");
        calls.add(1);
        tasks.add(static_cast<uint64_t>(n));
    }
    obs::TraceSpan span("pool.parallelFor");
    if (threads_ == 1 || tls_in_parallel) {
        // Serial fallback: no threads, no cursor, exceptions
        // propagate directly.  The region is still marked so that a
        // nested parallelFor — even on a wider pool — stays inline:
        // the outermost parallelFor decides the parallelism.
        const bool was_nested = tls_in_parallel;
        tls_in_parallel = true;
        try {
            for (int64_t i = 0; i < n; ++i) {
                fn(i);
            }
        } catch (...) {
            tls_in_parallel = was_nested;
            throw;
        }
        tls_in_parallel = was_nested;
        return;
    }
    if (n == 1) {
        // A single index carries no outer parallelism, so run it
        // inline *without* marking the region: a nested parallelFor
        // (e.g. the per-sample layer under a one-cell experiment
        // grid) may still fan out across this pool.
        fn(0);
        return;
    }

    Job job;
    job.fn = &fn;
    job.n = n;
    {
        std::lock_guard<std::mutex> lk(m_);
        job_ = &job;
        ++epoch_;
    }
    cv_job_.notify_all();

    runJob(job); // the caller is worker 0

    std::unique_lock<std::mutex> lk(m_);
    job_ = nullptr; // no new worker may join past this point
    cv_done_.wait(lk, [&] { return job.active == 0; });
    if (job.error) {
        std::rethrow_exception(job.error);
    }
}

bool
ThreadPool::inParallelRegion()
{
    return tls_in_parallel;
}

int
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("FOCUS_THREADS")) {
        const int v = std::atoi(env);
        if (v >= 1) {
            return v;
        }
        warn("ignoring invalid FOCUS_THREADS=%s", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1u ? static_cast<int>(hw) : 1;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    if (!g_pool) {
        g_pool = std::make_unique<ThreadPool>();
    }
    return *g_pool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    g_pool = std::make_unique<ThreadPool>(threads);
}

} // namespace focus
