/**
 * @file
 * Deterministic fork-join thread pool.
 *
 * The pool is intentionally work-stealing-free: parallelFor(n, fn)
 * feeds indices 0..n-1 to the workers through a single atomic cursor,
 * runs every index exactly once, and blocks until all of them
 * completed.  The determinism contract is:
 *
 *  - tasks write their results only into per-index slots, and
 *  - any order-sensitive reduction (floating-point sums in
 *    particular) happens in the caller after the join, in index
 *    order.
 *
 * Under that contract results are bit-identical for every thread
 * count, including the serial threads=1 configuration, which never
 * spawns a thread and simply runs the loop inline.
 *
 * parallelFor called from inside a pool task executes inline
 * (serially) on the calling worker, so two parallel layers — e.g.
 * experiment-grid cells over QA samples — compose without deadlock or
 * oversubscription; the outermost parallelFor wins.
 *
 * The process-wide pool (ThreadPool::global()) sizes itself from the
 * FOCUS_THREADS environment variable, falling back to the hardware
 * concurrency; setGlobalThreads() lets command-line flags override
 * both.
 */

#ifndef FOCUS_RUNTIME_THREAD_POOL_H
#define FOCUS_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace focus
{

class ThreadPool
{
  public:
    /**
     * @p threads is the total worker count including the calling
     * thread (which participates in every parallelFor); 0 means
     * defaultThreads().
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threads() const { return threads_; }

    /**
     * Run fn(i) for every i in [0, n); blocks until all indices
     * completed.  If any task throws, the remaining indices are
     * cancelled and the exception from the lowest-indexed task that
     * threw (among those that started) is rethrown here.
     */
    void parallelFor(int64_t n, const std::function<void(int64_t)> &fn);

    /** True while the calling thread is executing a parallelFor task. */
    static bool inParallelRegion();

    /**
     * FOCUS_THREADS environment override if set to a positive
     * integer, else std::thread::hardware_concurrency (minimum 1).
     */
    static int defaultThreads();

    /** Process-wide pool shared by Evaluator and ExperimentGrid. */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of @p threads workers (0 =
     * defaultThreads()); used by the bench --threads flag.  Must not
     * be called while a global parallelFor is in flight.
     */
    static void setGlobalThreads(int threads);

  private:
    /** One fork-join region; lives on the caller's stack. */
    struct Job
    {
        const std::function<void(int64_t)> *fn = nullptr;
        int64_t n = 0;
        std::atomic<int64_t> cursor{0};
        int active = 0;           ///< workers inside runJob (guarded by m_)
        std::exception_ptr error; ///< guarded by m_
        int64_t error_index = -1; ///< guarded by m_
    };

    void workerLoop();
    void runJob(Job &job);

    int threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex m_;
    std::condition_variable cv_job_;  ///< workers wait here for a job
    std::condition_variable cv_done_; ///< caller waits here for the join
    Job *job_ = nullptr;
    uint64_t epoch_ = 0;
    bool stop_ = false;
};

} // namespace focus

#endif // FOCUS_RUNTIME_THREAD_POOL_H
