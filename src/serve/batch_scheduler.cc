#include "serve/batch_scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace focus
{

const char *
batchPolicyName(BatchPolicy p)
{
    switch (p) {
      case BatchPolicy::Single:
        return "single";
      case BatchPolicy::FixedSize:
        return "fixed-size";
      case BatchPolicy::Timeout:
        return "timeout";
      case BatchPolicy::ConcAware:
        return "conc-aware";
    }
    return "?";
}

BatchScheduler::BatchScheduler(const SchedulerConfig &cfg) : cfg_(cfg)
{
    if (cfg_.max_batch <= 0) {
        fatal("BatchScheduler: max_batch must be positive (got %d)",
              cfg_.max_batch);
    }
    if ((cfg_.policy == BatchPolicy::Timeout ||
         cfg_.policy == BatchPolicy::ConcAware) &&
        cfg_.timeout_s < 0.0) {
        fatal("BatchScheduler: negative batching timeout (%g s)",
              cfg_.timeout_s);
    }
}

namespace
{

/**
 * ConcAware retained-token bucket: requests group when their
 * retained-row counts fall in the same power-of-two band, i.e. are
 * within ~2x of each other.
 */
int64_t
costBucket(int64_t retained_rows)
{
    if (retained_rows <= 0) {
        return 0;
    }
    return static_cast<int64_t>(
        std::llround(std::floor(
            std::log2(static_cast<double>(retained_rows)))));
}

} // namespace

bool
BatchScheduler::compatible(const BatchKey &a, const BatchKey &b) const
{
    if (a.model != b.model) {
        return false;
    }
    if (cfg_.policy == BatchPolicy::ConcAware) {
        return costBucket(a.cost) == costBucket(b.cost);
    }
    return true;
}

std::vector<PlannedBatch>
BatchScheduler::planOpenLoop(const std::vector<ServeRequest> &stream,
                             const std::vector<BatchKey> &keys) const
{
    if (keys.size() != stream.size()) {
        panic("BatchScheduler::planOpenLoop: %zu keys for %zu "
              "requests", keys.size(), stream.size());
    }
    for (size_t i = 1; i < stream.size(); ++i) {
        if (stream[i].arrival_s < stream[i - 1].arrival_s) {
            panic("BatchScheduler::planOpenLoop: stream not sorted "
                  "by arrival");
        }
    }

    const bool timed = cfg_.policy == BatchPolicy::Timeout ||
        cfg_.policy == BatchPolicy::ConcAware;

    struct OpenBatch
    {
        PlannedBatch batch;
        BatchKey key;
        double opened_s = 0.0; ///< arrival of the oldest member
    };

    std::vector<OpenBatch> open;
    std::vector<PlannedBatch> done;

    const auto close = [&](size_t open_idx, double ready) {
        open[open_idx].batch.ready_s = ready;
        done.push_back(std::move(open[open_idx].batch));
        open.erase(open.begin() + static_cast<ptrdiff_t>(open_idx));
    };

    for (size_t i = 0; i < stream.size(); ++i) {
        const double now = stream[i].arrival_s;

        // Expire open batches whose oldest member has waited out the
        // timeout before this arrival.
        if (timed) {
            for (size_t b = 0; b < open.size();) {
                if (open[b].opened_s + cfg_.timeout_s <= now) {
                    close(b, open[b].opened_s + cfg_.timeout_s);
                } else {
                    ++b;
                }
            }
        }

        if (cfg_.policy == BatchPolicy::Single) {
            PlannedBatch pb;
            pb.members.push_back(i);
            pb.ready_s = now;
            done.push_back(std::move(pb));
            continue;
        }

        size_t slot = open.size();
        for (size_t b = 0; b < open.size(); ++b) {
            if (compatible(open[b].key, keys[i])) {
                slot = b;
                break;
            }
        }
        if (slot == open.size()) {
            OpenBatch ob;
            ob.key = keys[i];
            ob.opened_s = now;
            open.push_back(std::move(ob));
        }
        open[slot].batch.members.push_back(i);
        if (static_cast<int>(open[slot].batch.members.size()) >=
            cfg_.max_batch) {
            close(slot, now);
        }
    }

    // Stream-end flush: Timeout/ConcAware wait out their bound, a
    // FixedSize former only ever flushes at end of stream.
    while (!open.empty()) {
        const double ready = timed
            ? open.front().opened_s + cfg_.timeout_s
            : stream[open.front().batch.members.back()].arrival_s;
        close(0, ready);
    }

    std::sort(done.begin(), done.end(),
              [](const PlannedBatch &a, const PlannedBatch &b) {
                  if (a.ready_s != b.ready_s) {
                      return a.ready_s < b.ready_s;
                  }
                  return a.members.front() < b.members.front();
              });
    return done;
}

std::vector<size_t>
BatchScheduler::pickPending(const std::vector<size_t> &pending,
                            const std::vector<BatchKey> &keys) const
{
    std::vector<size_t> picked;
    if (pending.empty()) {
        return picked;
    }
    picked.push_back(pending.front());
    if (cfg_.policy == BatchPolicy::Single) {
        return picked;
    }
    const BatchKey &lead = keys[pending.front()];
    for (size_t p = 1; p < pending.size() &&
         static_cast<int>(picked.size()) < cfg_.max_batch; ++p) {
        if (compatible(lead, keys[pending[p]])) {
            picked.push_back(pending[p]);
        }
    }
    return picked;
}

} // namespace focus
