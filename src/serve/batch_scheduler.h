/**
 * @file
 * Batch formation policies for the serving layer.
 *
 * The scheduler turns a timed request stream into batches that the
 * accelerator executes as one fused trace (sim/trace.h fuseTraces).
 * Requests only co-batch when they target the same model — a fused
 * batch shares weight panels, and two different models have none to
 * share — so every policy keys its open batches by model first.
 *
 * Policies:
 *
 *  - Single: no batching; every request runs alone (the batch-of-1
 *    reference, bit-identical to Evaluator::simulate).
 *  - FixedSize: close a batch only when it reaches max_batch; the
 *    stream-end flush releases trailing partial batches.
 *  - Timeout: dynamic batching — close at max_batch or when the
 *    oldest member has waited timeout_s, whichever is first.
 *  - ConcAware: concentration-aware grouping — like Timeout, but the
 *    batch key also includes a retained-token bucket
 *    (log2 of the trace's retained row count), so requests whose SEC
 *    schedules leave similar work behind share a batch and a light
 *    query never rides behind a heavy one.
 *
 * Open-loop formation (planOpenLoop) is a pure function of arrival
 * times and cost keys — the batch former runs ahead of the execution
 * engine and never sees completions — which lets the serving
 * simulator cost all planned batches across the thread pool and keep
 * results bit-identical at every thread count.  Closed-loop serving
 * instead picks from the pending queue each time the accelerator
 * frees up (pickPending).
 */

#ifndef FOCUS_SERVE_BATCH_SCHEDULER_H
#define FOCUS_SERVE_BATCH_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "serve/request_queue.h"

namespace focus
{

/** Batch formation policy. */
enum class BatchPolicy
{
    Single,    ///< batch of 1 (reference)
    FixedSize, ///< close only at max_batch
    Timeout,   ///< close at max_batch or timeout_s
    ConcAware, ///< Timeout + retained-token grouping
};

const char *batchPolicyName(BatchPolicy p);

/** Scheduler configuration. */
struct SchedulerConfig
{
    BatchPolicy policy = BatchPolicy::Timeout;
    int max_batch = 8;
    /** Oldest-member wait bound for Timeout / ConcAware. */
    double timeout_s = 30.0;
};

/**
 * Per-request batching key: the model index separates incompatible
 * batches, the cost key feeds ConcAware grouping.
 */
struct BatchKey
{
    int model = 0;        ///< dense model index (same index = same weights)
    int64_t cost = 0;     ///< retained-row count of the request's trace
};

/** One planned batch of an open-loop stream. */
struct PlannedBatch
{
    std::vector<size_t> members; ///< request indices, arrival order
    double ready_s = 0.0;        ///< when the former releases the batch
};

class BatchScheduler
{
  public:
    explicit BatchScheduler(const SchedulerConfig &cfg);

    const SchedulerConfig &config() const { return cfg_; }

    /**
     * Open-loop batch plan.  @p stream must be sorted by arrival_s
     * (RequestQueue::generate guarantees this for OpenPoisson);
     * @p keys holds one BatchKey per request.  Returned batches are
     * sorted by (ready_s, first member id).
     */
    std::vector<PlannedBatch>
    planOpenLoop(const std::vector<ServeRequest> &stream,
                 const std::vector<BatchKey> &keys) const;

    /**
     * Closed-loop pick when the accelerator frees up: take the
     * oldest pending request and fill the batch with compatible
     * pending requests in queue order, up to max_batch.  @p pending
     * holds request indices in arrival order; @p keys is indexed by
     * request index.  Timeout never applies here — the pick happens
     * exactly when capacity exists.
     */
    std::vector<size_t>
    pickPending(const std::vector<size_t> &pending,
                const std::vector<BatchKey> &keys) const;

    /** True if two requests may share a batch under this policy. */
    bool compatible(const BatchKey &a, const BatchKey &b) const;

  private:
    SchedulerConfig cfg_;
};

} // namespace focus

#endif // FOCUS_SERVE_BATCH_SCHEDULER_H
