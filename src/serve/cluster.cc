#include "serve/cluster.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"
#include "obs/trace_span.h"
#include "runtime/thread_pool.h"

namespace focus
{

namespace
{

/** splitmix64 finalizer: deterministic stateless bit mixing. */
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Ring position of (replica, vnode) — a pure function of the pair. */
uint64_t
vnodePosition(int replica, int vnode)
{
    const uint64_t r = static_cast<uint64_t>(replica) *
        0x9e3779b97f4a7c15ull + 1;
    const uint64_t v = static_cast<uint64_t>(vnode) *
        0xd6e8feb86659fd93ull + 0x2545f4914f6cdd1dull;
    return mix64(mix64(r) ^ v);
}

} // namespace

// ---------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------

HashRing::HashRing(int replicas, int vnodes) : vnodes_(vnodes)
{
    if (replicas <= 0) {
        fatal("HashRing: at least one replica required (got %d)",
              replicas);
    }
    if (vnodes <= 0) {
        fatal("HashRing: virtual-node count must be positive (got %d)",
              vnodes);
    }
    members_.reserve(static_cast<size_t>(replicas));
    for (int r = 0; r < replicas; ++r) {
        members_.push_back(r);
    }
    rebuild();
}

void
HashRing::rebuild()
{
    ring_.clear();
    ring_.reserve(members_.size() * static_cast<size_t>(vnodes_));
    for (const int id : members_) {
        for (int v = 0; v < vnodes_; ++v) {
            ring_.emplace_back(vnodePosition(id, v), id);
        }
    }
    // Sorting (position, id) pairs makes placement independent of
    // the order members were added in; a position collision (already
    // astronomically unlikely) resolves by the lower id on both
    // lookup and rebuild.
    std::sort(ring_.begin(), ring_.end());
}

int
HashRing::route(uint64_t key_hash) const
{
    // First vnode at or clockwise after the hash, wrapping to the
    // ring start past the largest position.
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(key_hash, 0),
        [](const std::pair<uint64_t, int> &a,
           const std::pair<uint64_t, int> &b) {
            return a.first < b.first;
        });
    return it == ring_.end() ? ring_.front().second : it->second;
}

int
HashRing::route(const std::string &key) const
{
    return route(hashKey(key));
}

int
HashRing::addReplica()
{
    const int id = members_.empty() ? 0 : members_.back() + 1;
    members_.push_back(id);
    rebuild();
    return id;
}

void
HashRing::removeReplica(int replica)
{
    const auto it =
        std::find(members_.begin(), members_.end(), replica);
    if (it == members_.end()) {
        fatal("HashRing: cannot remove unknown replica %d", replica);
    }
    if (members_.size() == 1) {
        fatal("HashRing: cannot remove the last replica (%d)",
              replica);
    }
    members_.erase(it);
    rebuild();
}

uint64_t
HashRing::hashKey(const std::string &key)
{
    // FNV-1a 64-bit, then a splitmix64 finalizer: bare FNV-1a has no
    // final avalanche, so keys differing only in a short suffix
    // ("cls#1", "cls#2", ...) hash into one narrow band of the ring
    // and pile onto the same few vnodes.
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return mix64(h);
}

// ---------------------------------------------------------------
// ClusterSimulator
// ---------------------------------------------------------------

const char *
routingPolicyName(RoutingPolicy p)
{
    switch (p) {
      case RoutingPolicy::HashRing:
        return "hash-ring";
      case RoutingPolicy::RoundRobin:
        return "round-robin";
    }
    return "?";
}

ClusterSimulator::ClusterSimulator(ServingSimulator &base,
                                   const ClusterConfig &cluster)
    : base_(base), cfg_(cluster)
{
    if (cfg_.replicas <= 0) {
        fatal("ClusterSimulator: at least one replica required "
              "(got %d)", cfg_.replicas);
    }
    if (cfg_.vnodes <= 0) {
        fatal("ClusterSimulator: virtual-node count must be positive "
              "(got %d)", cfg_.vnodes);
    }
    if (cfg_.tensor_parallel <= 0) {
        fatal("ClusterSimulator: invalid split factor %d (want a "
              "positive tensor-parallel degree)",
              cfg_.tensor_parallel);
    }
    if (cfg_.data_parallel <= 0) {
        fatal("ClusterSimulator: invalid split factor %d (want a "
              "positive data-parallel degree)", cfg_.data_parallel);
    }
    if (cfg_.shed_backlog_s < 0.0) {
        fatal("ClusterSimulator: negative shed backlog bound (%g s)",
              cfg_.shed_backlog_s);
    }
    if (cfg_.continuous_theta >= 1.0) {
        fatal("ClusterSimulator: continuous-batching theta must be "
              "below 1 (got %g)", cfg_.continuous_theta);
    }
}

std::string
ClusterSimulator::routingKey(const ServeRequest &req,
                             const RequestClass &cls)
{
    // One key definition serves both tiers: the ring routes on it and
    // every replica's prefix cache stores under it, so hash affinity
    // concentrates a prefix's repeats onto the replica that holds its
    // slab by construction.
    return prefixKey(req, cls);
}

const ClusterSimulator::ShardCost &
ClusterSimulator::costSharded(const std::vector<size_t> &comp)
{
    const auto hit = shard_cache_.find(comp);
    if (hit != shard_cache_.end()) {
        return hit->second;
    }

    ShardCost sc;
    const int tp = cfg_.tensor_parallel;
    // A data-parallel group never splits below one request.
    const int dp = std::min(cfg_.data_parallel,
                            static_cast<int>(comp.size()));

    std::vector<const WorkloadTrace *> parts;
    parts.reserve(comp.size());
    for (const size_t code : comp) {
        parts.push_back(&base_.codeTrace(code));
    }

    std::vector<uint64_t> layer_cycles;
    if (tp == 1 && dp == 1) {
        // Delegate to the base composition cache: bit-identical to
        // the single-box path (and shared with it).
        const RunMetrics &m = base_.costComposition(comp);
        sc.metrics = m;
        sc.service_s = m.seconds();
        layer_cycles = m.layer_cycles;
    } else {
        const std::vector<WorkloadTrace> groups =
            splitDataParallel(parts, dp);
        double worst = -1.0;
        for (const WorkloadTrace &group : groups) {
            std::vector<WorkloadTrace> shards =
                splitTensorParallel(group, tp);
            for (const WorkloadTrace &shard : shards) {
                RunMetrics rm = simulateAccelerator(
                    base_.accelConfig(), shard);
                sc.interconnect_bytes += rm.interconnect_bytes;
                if (rm.seconds() > worst) {
                    worst = rm.seconds();
                    layer_cycles = rm.layer_cycles;
                    sc.metrics = std::move(rm);
                }
            }
        }
        sc.service_s = worst;
    }

    // Continuous-batching knee: the first layer whose active rows
    // have shrunk to theta * layer-0 rows.  The knee time scales the
    // batch service by the critical engine's cycle prefix; the tail
    // fraction is the mean active share past the knee (the residual
    // array occupancy the next batch serializes behind).
    sc.knee_s = sc.service_s;
    sc.tail_frac = 0.0;
    if (cfg_.continuous_theta > 0.0 && !layer_cycles.empty()) {
        const WorkloadTrace fused_storage =
            parts.size() > 1 ? fuseTraces(parts) : WorkloadTrace{};
        const WorkloadTrace &fused =
            parts.size() > 1 ? fused_storage : *parts.front();
        const double rows0 =
            static_cast<double>(fused.layers.front().rowsIn());
        const size_t L = fused.layers.size();
        size_t knee = L;
        for (size_t l = 0; l < L; ++l) {
            if (static_cast<double>(fused.layers[l].rowsIn()) <=
                cfg_.continuous_theta * rows0) {
                knee = l;
                break;
            }
        }
        if (knee < L && rows0 > 0.0) {
            uint64_t prefix = 0, total = 0;
            for (size_t l = 0; l < layer_cycles.size(); ++l) {
                total += layer_cycles[l];
                if (l < knee) {
                    prefix += layer_cycles[l];
                }
            }
            if (total > 0) {
                sc.knee_s = sc.service_s *
                    (static_cast<double>(prefix) /
                     static_cast<double>(total));
                double frac_sum = 0.0;
                for (size_t l = knee; l < L; ++l) {
                    frac_sum += std::min(
                        1.0,
                        static_cast<double>(
                            fused.layers[l].rowsIn()) / rows0);
                }
                sc.tail_frac =
                    frac_sum / static_cast<double>(L - knee);
            }
        }
    }

    return shard_cache_.emplace(comp, std::move(sc)).first->second;
}

namespace
{

/**
 * Append one executed cluster batch and stamp its members' outcomes;
 * @p members holds positions into @p sub.  @p service may exceed the
 * batch's own cost (continuous batching serializes the previous
 * batch's residual tail ahead of it).
 */
double
recordClusterBatch(const std::vector<ServeRequest> &sub,
                   std::vector<RequestOutcome> &outcomes,
                   std::vector<BatchRecord> &batches,
                   const std::vector<size_t> &members, double ready,
                   double start, double service,
                   const RunMetrics &metrics)
{
    BatchRecord rec;
    rec.ready_s = ready;
    rec.start_s = start;
    rec.service_s = service;
    rec.metrics = metrics;
    const int batch_id = static_cast<int>(batches.size());
    for (const size_t i : members) {
        rec.request_ids.push_back(sub[i].id);
        RequestOutcome &o = outcomes[i];
        o.id = sub[i].id;
        o.class_id = sub[i].class_id;
        o.batch_id = batch_id;
        o.batch_size = static_cast<int>(members.size());
        o.start_s = start;
        o.finish_s = start + service;
    }
    batches.push_back(std::move(rec));
    return start + service;
}

} // namespace

void
ClusterSimulator::replayAdvanced(
    const BatchScheduler &scheduler,
    const std::vector<ServeRequest> &sub,
    std::vector<RequestOutcome> &outcomes,
    std::vector<BatchRecord> &batches,
    uint64_t &interconnect_bytes, PrefixCache *cache)
{
    const size_t n = sub.size();
    const bool caching = cache != nullptr && cache->enabled();
    const QueueConfig &queue = base_.queueConfig();
    outcomes.assign(n, RequestOutcome{});
    batches.clear();
    const std::vector<BatchKey> keys = base_.batchKeys(sub);
    std::vector<size_t> req_combo(n);
    std::vector<size_t> req_code(n);
    for (size_t i = 0; i < n; ++i) {
        outcomes[i].arrival_s = sub[i].arrival_s;
        req_combo[i] = base_.classCombo(sub[i].class_id);
        req_code[i] = ServingSimulator::comboCode(req_combo[i], false);
    }

    // Cache resolution for one batch, in execution order: lookups
    // first (same-key members of one batch share the miss), then one
    // admit per distinct missed key — the exact protocol of the base
    // replay, so a trivial split reproduces its hit stream.
    const auto resolveCache = [&](const std::vector<size_t> &members) {
        if (!caching) {
            return;
        }
        std::vector<size_t> missed;
        for (const size_t i : members) {
            const RequestClass &cls =
                queue.mix[static_cast<size_t>(sub[i].class_id)];
            if (cache->lookup(prefixKey(sub[i], cls))) {
                outcomes[i].prefix_hit = true;
                req_code[i] =
                    ServingSimulator::comboCode(req_combo[i], true);
            } else {
                missed.push_back(i);
            }
        }
        std::vector<std::string> admitted;
        for (const size_t i : missed) {
            const RequestClass &cls =
                queue.mix[static_cast<size_t>(sub[i].class_id)];
            const std::string key = prefixKey(sub[i], cls);
            if (std::find(admitted.begin(), admitted.end(), key) ==
                admitted.end()) {
                admitted.push_back(key);
                cache->admit(key,
                             base_.comboSlabSpec(req_combo[i], key));
            }
        }
    };

    const auto compOf = [&](const std::vector<size_t> &members) {
        std::vector<size_t> comp;
        comp.reserve(members.size());
        for (const size_t i : members) {
            comp.push_back(req_code[i]);
        }
        return comp;
    };

    if (cfg_.continuous_theta <= 0.0) {
        // Serial batch boundaries: the planned open-loop schedule
        // with sharded costs.
        const std::vector<PlannedBatch> plans =
            scheduler.planOpenLoop(sub, keys);
        double free_t = 0.0;
        for (const PlannedBatch &plan : plans) {
            resolveCache(plan.members);
            const ShardCost &sc = costSharded(compOf(plan.members));
            const double start = std::max(free_t, plan.ready_s);
            free_t = recordClusterBatch(
                sub, outcomes, batches, plan.members, plan.ready_s,
                start, sc.service_s, sc.metrics);
            interconnect_bytes += sc.interconnect_bytes;
        }
        return;
    }

    // Continuous batching: launch the next batch at the previous
    // batch's knee, serializing its residual tail occupancy (which
    // drains linearly between knee and finish) ahead of the new
    // batch's own service.
    size_t next = 0;
    std::vector<size_t> pending;
    double release_t = 0.0;
    double knee_abs = 0.0, finish_abs = 0.0, tail_work = 0.0;
    while (next < n || !pending.empty()) {
        double t = release_t;
        if (pending.empty()) {
            t = std::max(t, sub[next].arrival_s);
        }
        while (next < n && sub[next].arrival_s <= t) {
            pending.push_back(next++);
        }
        obs::TraceSpan step_span("cluster.continuous.step");
        const std::vector<size_t> picked =
            scheduler.pickPending(pending, keys);
        resolveCache(picked);
        const ShardCost &sc = costSharded(compOf(picked));

        double carry = 0.0;
        if (finish_abs > knee_abs && t < finish_abs) {
            carry = tail_work * (finish_abs - t) /
                (finish_abs - knee_abs);
        }
        const double start = t;
        const double service = carry + sc.service_s;
        recordClusterBatch(sub, outcomes, batches, picked, t, start,
                           service, sc.metrics);
        interconnect_bytes += sc.interconnect_bytes;

        release_t = start + carry + sc.knee_s;
        knee_abs = release_t;
        finish_abs = start + service;
        tail_work = (sc.service_s - sc.knee_s) * sc.tail_frac;

        for (const size_t i : picked) {
            pending.erase(
                std::find(pending.begin(), pending.end(), i));
        }
    }
}

ClusterReport
ClusterSimulator::run(const SchedulerConfig &sched, ThreadPool *pool)
{
    const QueueConfig &queue = base_.queueConfig();
    if (queue.process != ArrivalProcess::OpenPoisson) {
        fatal("ClusterSimulator: cluster replay models the open-loop "
              "overload regime; closed-loop populations self-limit "
              "and stay a single-box (ServingSimulator) question");
    }
    base_.calibrate(pool);
    const bool caching = cfg_.prefix_cache.enabled();
    if (caching) {
        base_.ensureHitTraces(pool);
    }
    const BatchScheduler scheduler(sched);
    const std::vector<ServeRequest> stream =
        RequestQueue(queue).generate();
    const size_t n = stream.size();
    const int R = cfg_.replicas;

    // ---- route ----
    std::vector<int> replica_of(n);
    {
        obs::TraceSpan route_span("cluster.route");
        if (cfg_.routing == RoutingPolicy::RoundRobin) {
            for (size_t i = 0; i < n; ++i) {
                replica_of[i] = static_cast<int>(
                    stream[i].id % static_cast<int64_t>(R));
            }
        } else {
            const HashRing ring(R, cfg_.vnodes);
            for (size_t i = 0; i < n; ++i) {
                const RequestClass &cls =
                    queue.mix[static_cast<size_t>(stream[i].class_id)];
                replica_of[i] =
                    ring.route(routingKey(stream[i], cls));
            }
        }
    }

    // ---- admission / shedding ----
    // Leaky-bucket backlog per replica: drains in real time, fills
    // by the admitted request's estimated (sharded) solo service.
    std::vector<double> est;
    if (cfg_.shed_backlog_s > 0.0) {
        est.reserve(queue.mix.size());
        for (size_t cls = 0; cls < queue.mix.size(); ++cls) {
            est.push_back(
                costSharded({ServingSimulator::comboCode(
                                base_.classCombo(static_cast<int>(cls)),
                                false)})
                    .service_s);
        }
    }
    std::vector<std::vector<size_t>> admitted(
        static_cast<size_t>(R));
    std::vector<int> shed_count(static_cast<size_t>(R), 0);
    std::vector<char> is_shed(n, 0);
    std::vector<double> backlog(static_cast<size_t>(R), 0.0);
    std::vector<double> last_seen(static_cast<size_t>(R), 0.0);
    for (size_t i = 0; i < n; ++i) {
        const size_t r = static_cast<size_t>(replica_of[i]);
        if (cfg_.shed_backlog_s > 0.0) {
            const double t = stream[i].arrival_s;
            backlog[r] =
                std::max(0.0, backlog[r] - (t - last_seen[r]));
            last_seen[r] = t;
            if (backlog[r] > cfg_.shed_backlog_s) {
                is_shed[i] = 1;
                shed_count[r] += 1;
                continue;
            }
            backlog[r] +=
                est[static_cast<size_t>(stream[i].class_id)];
        }
        admitted[r].push_back(i);
    }

    // ---- per-replica replay ----
    const bool simple = cfg_.tensor_parallel == 1 &&
        cfg_.data_parallel == 1 && cfg_.continuous_theta <= 0.0;
    std::vector<RequestOutcome> outcomes(n);
    std::vector<std::vector<BatchRecord>> rep_batches(
        static_cast<size_t>(R));
    ClusterReport rep;
    rep.replicas.resize(static_cast<size_t>(R));
    for (int r = 0; r < R; ++r) {
        const size_t ri = static_cast<size_t>(r);
        ReplicaStats &rs = rep.replicas[ri];
        rs.replica = r;
        rs.routed = static_cast<int>(admitted[ri].size()) +
            shed_count[ri];
        rs.shed = shed_count[ri];

        std::vector<ServeRequest> sub;
        sub.reserve(admitted[ri].size());
        for (const size_t i : admitted[ri]) {
            sub.push_back(stream[i]);
        }
        // Routing and shedding are deterministic functions of the
        // stream (hash ring / round robin + leaky bucket), so the
        // per-replica split is a work total, not a sched artifact.
        if (obs::countersEnabled()) {
            obs::MetricsRegistry &reg =
                obs::MetricsRegistry::instance();
            const std::string base =
                "cluster.replica." + std::to_string(r);
            reg.counter(base + ".routed")
                .add(static_cast<uint64_t>(rs.routed));
            reg.counter(base + ".shed")
                .add(static_cast<uint64_t>(rs.shed));
        }
        obs::TraceSpan replay_span("cluster.replica.replay");
        // One independent cache per replica: affinity (or its
        // absence) shows up directly in each replica's hit rate.
        PrefixCache cache(cfg_.prefix_cache);
        std::vector<RequestOutcome> sub_out;
        std::vector<BatchRecord> sub_batches;
        if (!sub.empty()) {
            if (simple) {
                base_.replayOpenLoop(scheduler, sub, pool, sub_out,
                                     sub_batches, &cache);
            } else {
                replayAdvanced(scheduler, sub, sub_out, sub_batches,
                               rs.interconnect_bytes, &cache);
            }
        }
        const PrefixCacheStats cs = cache.stats();
        rs.prefix_hits = cs.hits;
        rs.prefix_misses = cs.misses;
        rep.prefix_cache.lookups += cs.lookups;
        rep.prefix_cache.hits += cs.hits;
        rep.prefix_cache.misses += cs.misses;
        rep.prefix_cache.admissions += cs.admissions;
        rep.prefix_cache.evictions += cs.evictions;
        rep.prefix_cache.rejected += cs.rejected;
        rep.prefix_cache.bytes_resident += cs.bytes_resident;
        rep.prefix_cache.bytes_peak += cs.bytes_peak;
        rep.prefix_cache.full_bytes_resident +=
            cs.full_bytes_resident;
        rep.prefix_cache.err_sum += cs.err_sum;
        rep.prefix_cache.err_slabs += cs.err_slabs;
        for (BatchRecord &b : sub_batches) {
            b.replica = r;
            rs.busy_s += b.service_s;
            rs.makespan_s = std::max(rs.makespan_s,
                                     b.start_s + b.service_s);
        }
        rs.batches = static_cast<int>(sub_batches.size());
        for (size_t j = 0; j < admitted[ri].size(); ++j) {
            outcomes[admitted[ri][j]] = sub_out[j];
        }
        rep_batches[ri] = std::move(sub_batches);
    }

    // Shed requests never execute: they carry their arrival time and
    // count as SLO misses in the merged report.
    for (size_t i = 0; i < n; ++i) {
        if (!is_shed[i]) {
            continue;
        }
        RequestOutcome &o = outcomes[i];
        o.id = stream[i].id;
        o.class_id = stream[i].class_id;
        o.batch_id = -1;
        o.batch_size = 0;
        o.arrival_s = stream[i].arrival_s;
        o.start_s = stream[i].arrival_s;
        o.finish_s = stream[i].arrival_s;
        o.shed = true;
    }

    // ---- merge batches into one fleet-order timeline ----
    std::vector<std::tuple<double, double, int64_t, int, size_t>>
        order;
    for (int r = 0; r < R; ++r) {
        const size_t ri = static_cast<size_t>(r);
        for (size_t b = 0; b < rep_batches[ri].size(); ++b) {
            const BatchRecord &rec = rep_batches[ri][b];
            order.emplace_back(rec.start_s, rec.ready_s,
                               rec.request_ids.front(), r, b);
        }
    }
    std::sort(order.begin(), order.end());
    std::vector<std::vector<int>> remap(static_cast<size_t>(R));
    for (int r = 0; r < R; ++r) {
        remap[static_cast<size_t>(r)].resize(
            rep_batches[static_cast<size_t>(r)].size(), -1);
    }
    std::vector<BatchRecord> merged;
    merged.reserve(order.size());
    for (const auto &o : order) {
        const size_t r = static_cast<size_t>(std::get<3>(o));
        const size_t b = std::get<4>(o);
        remap[r][b] = static_cast<int>(merged.size());
        merged.push_back(std::move(rep_batches[r][b]));
    }
    for (size_t i = 0; i < n; ++i) {
        if (is_shed[i] || outcomes[i].batch_id < 0) {
            continue;
        }
        outcomes[i].batch_id =
            remap[static_cast<size_t>(replica_of[i])]
                 [static_cast<size_t>(outcomes[i].batch_id)];
    }

    rep.merged = base_.assemble(sched, stream, std::move(outcomes),
                                std::move(merged));
    // Mirror the fleet aggregate into the merged report so a cluster
    // of one replica reproduces ServingSimulator::run field for
    // field (assemble itself leaves the field zeroed).
    rep.merged.prefix_cache = rep.prefix_cache;

    // ---- fleet stats ----
    int max_routed = 0;
    for (const ReplicaStats &rs : rep.replicas) {
        rep.shed += rs.shed;
        rep.interconnect_bytes += rs.interconnect_bytes;
        max_routed = std::max(max_routed, rs.routed);
    }
    rep.admitted = static_cast<int>(n) - rep.shed;
    rep.shed_rate = n > 0
        ? static_cast<double>(rep.shed) / static_cast<double>(n)
        : 0.0;
    const double mean_routed =
        static_cast<double>(n) / static_cast<double>(R);
    rep.load_imbalance = mean_routed > 0.0
        ? static_cast<double>(max_routed) / mean_routed : 0.0;
    return rep;
}

} // namespace focus
