/**
 * @file
 * Cluster-scale serving: N simulated accelerator replicas over one
 * ServingSimulator calibration.
 *
 * The cluster layer turns the single-box serving simulator into a
 * fleet model:
 *
 *  - *Routing*: requests land on replicas via consistent hashing on a
 *    virtual-node ring keyed by request class + prefix identity
 *    (HashRing), so same-prefix traffic keeps replica affinity and
 *    adding a replica moves only ~K/N keys.  A round-robin policy is
 *    kept as the balance reference.
 *  - *Parallel splits*: each replica may itself be a tensor-parallel
 *    group (sim/trace.h splitTensorParallel — per-shard cycle/DRAM
 *    accounting plus the ring-collective interconnect term in
 *    sim/accel_model.cc) and/or a data-parallel engine group
 *    (splitDataParallel); batch service time is the slowest shard's.
 *  - *Continuous batching*: SEC shrinks the active set layer by
 *    layer, so a batch's concentrated tail frees most of the array at
 *    its "knee"; with continuous_theta > 0 the next batch launches at
 *    the knee and pays only the residual tail occupancy, re-forming
 *    batch membership from whatever is pending at that instant.
 *  - *Overload shedding*: a per-replica leaky-bucket backlog estimate
 *    (drains in real time, fills by the admitted request's estimated
 *    solo service) rejects arrivals once the backlog exceeds
 *    shed_backlog_s — the open-loop overload-regime admission policy.
 *
 * Bit-identity contract: a cluster of one replica with default knobs
 * (tp = dp = 1, no shedding, serial batching) replays the exact code
 * path of ServingSimulator::run — same composition cache, same
 * timeline arithmetic, same report assembly — so every reported
 * metric matches bit for bit (tests/test_cluster.cc).
 */

#ifndef FOCUS_SERVE_CLUSTER_H
#define FOCUS_SERVE_CLUSTER_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "serve/serving_sim.h"

namespace focus
{

/**
 * Consistent-hash ring with virtual nodes.
 *
 * Each member replica owns `vnodes` pseudo-random positions on a
 * 64-bit ring (a splitmix64-style mix of the replica id and vnode
 * index — no RNG state, so placement is a pure function of the
 * member set, independent of insertion order).  A key routes to the
 * owner of the first vnode at or clockwise after its hash.
 */
class HashRing
{
  public:
    /** Ring over replica ids 0..replicas-1 (fatal when empty). */
    explicit HashRing(int replicas, int vnodes = kDefaultVnodes);

    int replicas() const { return static_cast<int>(members_.size()); }
    const std::vector<int> &members() const { return members_; }

    /** Owning replica id of a 64-bit key hash. */
    int route(uint64_t key_hash) const;
    /** Owning replica id of a string key (FNV-1a hashed). */
    int route(const std::string &key) const;

    /** Add a replica under the next unused id; returns it. */
    int addReplica();
    /** Remove a member (fatal on unknown id or emptying the ring). */
    void removeReplica(int replica);

    /**
     * FNV-1a 64-bit hash of @p key with a splitmix64 finalizer (the
     * avalanche keeps near-identical keys from clustering on the
     * ring).
     */
    static uint64_t hashKey(const std::string &key);

    static constexpr int kDefaultVnodes = 64;

  private:
    void rebuild();

    int vnodes_;
    std::vector<int> members_; ///< ascending replica ids
    /** (ring position, replica id), sorted ascending. */
    std::vector<std::pair<uint64_t, int>> ring_;
};

/** How the cluster assigns requests to replicas. */
enum class RoutingPolicy
{
    HashRing,   ///< consistent hash on class + prefix identity
    RoundRobin, ///< stream position modulo replica count
};

const char *routingPolicyName(RoutingPolicy p);

/** Cluster topology and policy knobs. */
struct ClusterConfig
{
    int replicas = 1;
    RoutingPolicy routing = RoutingPolicy::HashRing;
    int vnodes = HashRing::kDefaultVnodes;

    /** Tensor-parallel shards per replica (1 = whole engine). */
    int tensor_parallel = 1;
    /**
     * Data-parallel engine groups per replica; a batch's requests
     * round-robin across groups (capped at the batch size, so a
     * group never goes empty).
     */
    int data_parallel = 1;

    /**
     * Admission bound: shed an arrival when its replica's estimated
     * backlog exceeds this many seconds of work (<= 0 admits
     * everything).
     */
    double shed_backlog_s = 0.0;

    /**
     * Continuous-batching knee: the next batch launches at the layer
     * where the active set has shrunk to theta * its layer-0 rows
     * (<= 0 keeps serial batch boundaries; must be < 1).
     */
    double continuous_theta = 0.0;

    /**
     * Per-replica prefix-cache sizing (serve/prefix_cache.h); the
     * default zero budget disables caching.  Each replica owns an
     * independent cache, which is exactly what makes routing policy
     * matter: hash-affinity routing concentrates a prefix's repeats
     * onto one replica's cache, while round-robin scatters them
     * across all caches and forfeits most hits.
     */
    PrefixCacheConfig prefix_cache;
};

/** Per-replica execution summary. */
struct ReplicaStats
{
    int replica = 0;
    int routed = 0;  ///< requests the router sent here
    int shed = 0;    ///< rejected at admission
    int batches = 0;
    double busy_s = 0.0;     ///< sum of batch service times
    double makespan_s = 0.0; ///< last finish on this replica
    uint64_t interconnect_bytes = 0;
    /** This replica's prefix-cache activity (zero when disabled). */
    int64_t prefix_hits = 0;
    int64_t prefix_misses = 0;
};

/** Cluster replay result. */
struct ClusterReport
{
    /** Fleet-level report over the full stream (shed-aware). */
    ServingReport merged;
    std::vector<ReplicaStats> replicas;

    int admitted = 0;
    int shed = 0;
    double shed_rate = 0.0;
    /** Max over replicas of routed count / mean routed count. */
    double load_imbalance = 0.0;
    uint64_t interconnect_bytes = 0;
    /**
     * Fleet-aggregate prefix-cache activity (summed over the
     * replicas' independent caches; also mirrored into
     * merged.prefix_cache so a cluster of one replica reproduces the
     * single-box report field for field).
     */
    PrefixCacheStats prefix_cache;
};

/**
 * Fleet replay over a shared ServingSimulator.
 *
 * Non-owning: the base simulator provides calibration, the fused
 * composition cache, the replay engine for trivial replicas and the
 * report assembly, so sweeping replica counts reuses all functional
 * and simulation work.  Open-loop streams only — overload is an
 * open-loop phenomenon; closed-loop populations self-limit and stay
 * a single-box question (fatal otherwise).
 */
class ClusterSimulator
{
  public:
    ClusterSimulator(ServingSimulator &base,
                     const ClusterConfig &cluster);

    ClusterReport run(const SchedulerConfig &sched,
                      ThreadPool *pool = nullptr);

    const ClusterConfig &clusterConfig() const { return cfg_; }

    /** Ring key of a request: class label + "#" + prefix id. */
    static std::string routingKey(const ServeRequest &req,
                                  const RequestClass &cls);

  private:
    /** Sharded cost of one batch composition. */
    struct ShardCost
    {
        double service_s = 0.0; ///< slowest shard/group
        double knee_s = 0.0;    ///< array mostly free after this
        double tail_frac = 0.0; ///< mean active fraction past knee
        uint64_t interconnect_bytes = 0; ///< all shards, all groups
        RunMetrics metrics;     ///< critical-path engine's metrics
    };

    const ShardCost &costSharded(const std::vector<size_t> &comp);

    /**
     * Replica replay when any advanced knob is on (tp/dp splits or
     * continuous batching); outcomes positional in @p sub.  A
     * non-null enabled @p cache resolves prefix keys the same way the
     * base replay does: serially in execution order (per planned
     * batch on the serial path, at pick time under continuous
     * batching), with hits swapping in the combo's hit-trace code.
     */
    void replayAdvanced(const BatchScheduler &scheduler,
                        const std::vector<ServeRequest> &sub,
                        std::vector<RequestOutcome> &outcomes,
                        std::vector<BatchRecord> &batches,
                        uint64_t &interconnect_bytes,
                        PrefixCache *cache);

    ServingSimulator &base_;
    ClusterConfig cfg_;
    std::map<std::vector<size_t>, ShardCost> shard_cache_;
};

} // namespace focus

#endif // FOCUS_SERVE_CLUSTER_H
