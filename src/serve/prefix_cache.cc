#include "serve/prefix_cache.h"

#include <algorithm>
#include <cmath>

#include "common/env_dispatch.h"
#include "common/half.h"
#include "common/logging.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace focus
{

namespace
{

const char *const kPrefixCacheModeNames[] = {"on", "off"};

PrefixCacheMode &
prefixCacheModeRef()
{
    static PrefixCacheMode mode = static_cast<PrefixCacheMode>(
        envBackendChoice("FOCUS_PREFIX_CACHE", kPrefixCacheModeNames,
                         2, 0));
    return mode;
}

/** splitmix64 finalizer: derives independent probe hashes. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Conversion scratch: slabs stream through in fixed-size passes. */
constexpr std::size_t kConvertChunk = 4096;

} // namespace

uint64_t
prefixKeyHash(const std::string &key)
{
    // FNV-1a 64-bit — stable across platforms, unlike std::hash.
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

const char *
prefixCacheModeName(PrefixCacheMode m)
{
    return kPrefixCacheModeNames[static_cast<int>(m)];
}

PrefixCacheMode
activePrefixCacheMode()
{
    return prefixCacheModeRef();
}

void
setPrefixCacheMode(PrefixCacheMode m)
{
    prefixCacheModeRef() = m;
}

PrefixCache::PrefixCache(const PrefixCacheConfig &config)
    : config_(config), enabled_(config.enabled())
{
    if (!enabled_) {
        return;
    }
    if (config_.sketch_bits <= 0 || config_.sketch_hashes <= 0) {
        panic("PrefixCache: sketch_bits and sketch_hashes must be "
              "positive (got %d / %d)",
              config_.sketch_bits, config_.sketch_hashes);
    }
    arena_ = std::make_unique<SlabArena>(config_.budget_bytes);
    sketch_.assign(
        (static_cast<size_t>(config_.sketch_bits) + 63) / 64, 0);
}

PrefixCache::~PrefixCache() = default;

bool
PrefixCache::sketchTestAndSet(const std::string &key)
{
    const uint64_t base = prefixKeyHash(key);
    bool all_set = true;
    for (int i = 0; i < config_.sketch_hashes; ++i) {
        const uint64_t bit = mix64(base + static_cast<uint64_t>(i)) %
            static_cast<uint64_t>(config_.sketch_bits);
        uint64_t &word = sketch_[bit >> 6];
        const uint64_t mask = 1ull << (bit & 63u);
        if ((word & mask) == 0) {
            all_set = false;
            word |= mask;
        }
    }
    return all_set;
}

double
PrefixCache::storePayload(void *dst, const SlabSpec &spec) const
{
    // Deterministic synthetic activation payload: the functional
    // model's retained rows live at reduced scale, so the slab stores
    // a seed-reproducible stand-in with realistic magnitudes, and the
    // round-trip error below is the compression tier's true fp16/bf16
    // relative RMS delta on that payload.
    Rng rng(spec.seed);
    uint16_t *out = static_cast<uint16_t *>(dst);
    int64_t remaining = spec.rows * spec.cols;
    float src[kConvertChunk];
    double num = 0.0;
    double den = 0.0;
    while (remaining > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<int64_t>(remaining,
                              static_cast<int64_t>(kConvertChunk)));
        for (std::size_t i = 0; i < n; ++i) {
            src[i] = static_cast<float>(rng.gaussian());
        }
        if (config_.format == SlabFormat::Fp16) {
            floatToHalfN(src, out, n);
            for (std::size_t i = 0; i < n; ++i) {
                const double d = static_cast<double>(src[i]) -
                    static_cast<double>(halfBitsToFloat(out[i]));
                num += d * d;
                den += static_cast<double>(src[i]) *
                    static_cast<double>(src[i]);
            }
        } else {
            floatToBf16N(src, out, n);
            for (std::size_t i = 0; i < n; ++i) {
                const double d = static_cast<double>(src[i]) -
                    static_cast<double>(bf16BitsToFloat(out[i]));
                num += d * d;
                den += static_cast<double>(src[i]) *
                    static_cast<double>(src[i]);
            }
        }
        out += n;
        remaining -= static_cast<int64_t>(n);
    }
    return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

void
PrefixCache::evictOne()
{
    if (lru_.empty()) {
        panic("PrefixCache::evictOne: cache is empty");
    }
    const std::string key = lru_.back();
    const auto it = entries_.find(key);
    arena_->free(it->second.data, it->second.spec.bytes());
    stats_.bytes_resident -= it->second.spec.bytes();
    stats_.full_bytes_resident -= it->second.spec.full_bytes;
    entries_.erase(it);
    lru_.pop_back();
    stats_.evictions += 1;
    if (obs::countersEnabled()) {
        static obs::Counter &c = obs::MetricsRegistry::instance()
            .counter("serve.prefix_cache.evictions");
        c.add(1);
    }
}

bool
PrefixCache::lookup(const std::string &key)
{
    if (!enabled_) {
        return false;
    }
    stats_.lookups += 1;
    if (obs::countersEnabled()) {
        static obs::Counter &c = obs::MetricsRegistry::instance()
            .counter("serve.prefix_cache.lookups");
        c.add(1);
    }
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        stats_.misses += 1;
        if (obs::countersEnabled()) {
            static obs::Counter &c = obs::MetricsRegistry::instance()
                .counter("serve.prefix_cache.misses");
            c.add(1);
        }
        return false;
    }
    stats_.hits += 1;
    if (obs::countersEnabled()) {
        static obs::Counter &c = obs::MetricsRegistry::instance()
            .counter("serve.prefix_cache.hits");
        c.add(1);
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return true;
}

void
PrefixCache::admit(const std::string &key, const SlabSpec &spec)
{
    if (!enabled_ || entries_.count(key) > 0) {
        return;
    }
    if (spec.rows <= 0 || spec.cols <= 0) {
        panic("PrefixCache::admit: empty slab for key '%s'",
              key.c_str());
    }
    if (!sketchTestAndSet(key)) {
        // First sighting: the doorkeeper absorbs it.  Only a repeat
        // miss proves the prefix is worth resident bytes.
        stats_.rejected += 1;
        return;
    }
    const int64_t bytes = spec.bytes();
    void *p = arena_->alloc(bytes);
    while (p == nullptr && !lru_.empty()) {
        evictOne();
        p = arena_->alloc(bytes);
    }
    if (p == nullptr) {
        // Larger than the whole budget even with the cache empty.
        stats_.rejected += 1;
        return;
    }
    const double err = storePayload(p, spec);
    lru_.push_front(key);
    entries_[key] = Entry{spec, p, lru_.begin()};
    stats_.admissions += 1;
    stats_.bytes_resident += bytes;
    stats_.bytes_peak =
        std::max(stats_.bytes_peak, stats_.bytes_resident);
    stats_.full_bytes_resident += spec.full_bytes;
    stats_.err_sum += err;
    stats_.err_slabs += 1;
    if (obs::countersEnabled()) {
        static obs::Counter &c = obs::MetricsRegistry::instance()
            .counter("serve.prefix_cache.admissions");
        c.add(1);
    }
}

} // namespace focus
