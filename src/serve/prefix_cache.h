/**
 * @file
 * Cross-request retained-token prefix cache.
 *
 * Requests that share a prefix identity (same request class, same
 * `ServeRequest::prefix_id` — see serve/request_queue.h) re-derive the
 * same concentrated visual token set: the SEC schedule is
 * deterministic per (model, dataset, method), so the retained rows of
 * one request's prefix are byte-for-byte the retained rows of the
 * next.  This tier caches that set across requests.  A hit skips the
 * entire visual portion of the forward pass — the evaluator swaps in
 * the prefix-cached trace (sim/trace.h applyPrefixCache) whose
 * projection/FFN GEMMs cover only the text rows while the cached rows
 * serve as attention K/V context.
 *
 * Design:
 *
 *  - **Admission sketch.**  A tiny Bloom filter remembers keys that
 *    have missed before; a slab is stored only on its *second* miss.
 *    One-hit wonders (cold prefixes that never repeat) therefore
 *    cannot evict hot entries — the TinyLFU-style doorkeeper idiom.
 *  - **LRU within a byte budget.**  Eviction is least-recently-used,
 *    but the budget is *bytes resident in the slab arena*
 *    (common/arena.h), not an entry count: slabs from different
 *    (model, dataset, method) combos have different footprints, and
 *    the budget must mean real memory.
 *  - **Compressed slabs.**  Stored K/V payloads are fp16 (or bf16)
 *    via the batch converters in common/half.h; the round-trip
 *    accuracy delta of each stored slab is accounted in the stats so
 *    serving reports can bound the numerical cost of compression.
 *
 * The cache is gated by `FOCUS_PREFIX_CACHE=on|off` under the shared
 * env-dispatch contract (default on, panic on unknown).  `off` — or a
 * zero byte budget — makes every lookup a non-counting miss, which
 * keeps serving output bit-identical to pre-cache builds.
 *
 * Not thread-safe: the serving layer drives it from the serial replay
 * pre-pass (serve/serving_sim.cc), which is also what keeps hit/miss
 * streams — and the obs work counters — thread-count invariant.
 */

#ifndef FOCUS_SERVE_PREFIX_CACHE_H
#define FOCUS_SERVE_PREFIX_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"

namespace focus
{

/** Prefix-cache mode (see file comment). */
enum class PrefixCacheMode
{
    On, ///< cache active wherever a config enables it (default)
    Off ///< every lookup misses silently; bit-identical to pre-cache
};

/** Name for logging / bench banners ("on" | "off"). */
const char *prefixCacheModeName(PrefixCacheMode m);

/**
 * Currently active mode.  Initialized once from the
 * FOCUS_PREFIX_CACHE environment variable (default On; panics on an
 * unknown value).
 */
PrefixCacheMode activePrefixCacheMode();

/** Override the active mode (tests flip this to compare paths). */
void setPrefixCacheMode(PrefixCacheMode m);

/**
 * Stable 64-bit hash of a cache key (FNV-1a; never std::hash, whose
 * value is implementation-defined).  The admission sketch probes with
 * it, and the serving layer derives each slab's payload seed from it
 * so a key's stored bytes are reproducible across runs and replicas.
 */
uint64_t prefixKeyHash(const std::string &key);

/** Storage format of cached slabs. */
enum class SlabFormat
{
    Fp16, ///< IEEE-754 binary16 (default)
    Bf16  ///< bfloat16
};

/** Cache sizing and admission parameters. */
struct PrefixCacheConfig
{
    /**
     * Live-byte budget for stored slabs; 0 (the default) disables the
     * cache entirely — a budget-0 run is bit-identical to
     * FOCUS_PREFIX_CACHE=off.
     */
    int64_t budget_bytes = 0;
    SlabFormat format = SlabFormat::Fp16;
    /** Bloom-sketch width in bits. */
    int sketch_bits = 4096;
    /** Hash probes per sketch test/set. */
    int sketch_hashes = 2;

    /** True when both the config and the env mode enable caching. */
    bool enabled() const
    {
        return budget_bytes > 0 &&
            activePrefixCacheMode() == PrefixCacheMode::On;
    }
};

/**
 * Geometry of one retained-token slab.  `rows * cols` 16-bit values
 * are stored; `full_bytes` records the *full-scale* fp32 K/V
 * footprint the slab stands in for (the reduced-scale payload mirrors
 * it at a fixed ratio), so reports can quote paper-scale savings.
 * `seed` makes the synthetic payload deterministic per key.
 */
struct SlabSpec
{
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t full_bytes = 0;
    uint64_t seed = 0;

    /** Stored bytes: rows * cols 16-bit values. */
    int64_t bytes() const { return rows * cols * 2; }
};

/** Aggregate cache activity (work counters — thread invariant). */
struct PrefixCacheStats
{
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    /** Slabs stored (second-miss admissions). */
    int64_t admissions = 0;
    /** Slabs evicted to make room. */
    int64_t evictions = 0;
    /** Misses the sketch absorbed, plus slabs too large to ever fit. */
    int64_t rejected = 0;
    /** Live stored bytes / high-water mark. */
    int64_t bytes_resident = 0;
    int64_t bytes_peak = 0;
    /** Full-scale fp32 K/V bytes the resident slabs stand in for. */
    int64_t full_bytes_resident = 0;
    /** Sum over stored slabs of relative RMS round-trip error. */
    double err_sum = 0.0;
    int64_t err_slabs = 0;

    double hitRate() const
    {
        return lookups > 0
            ? static_cast<double>(hits) / static_cast<double>(lookups)
            : 0.0;
    }

    /** Mean per-slab relative RMS fp16/bf16 round-trip error. */
    double meanRoundTripError() const
    {
        return err_slabs > 0 ? err_sum / static_cast<double>(err_slabs)
                             : 0.0;
    }
};

/**
 * The cache proper.  Usage protocol per request, in arrival order:
 *
 *     if (cache.lookup(key)) { ...hit: use the prefix-cached trace... }
 *     else                   { cache.admit(key, spec); }
 *
 * lookup() never mutates resident slabs beyond the LRU touch; admit()
 * is a no-op for keys already resident (a racing same-batch admit).
 */
class PrefixCache
{
  public:
    explicit PrefixCache(const PrefixCacheConfig &config);

    PrefixCache(const PrefixCache &) = delete;
    PrefixCache &operator=(const PrefixCache &) = delete;
    ~PrefixCache();

    /**
     * True when @p key holds a resident slab (counted as a hit and
     * moved to the LRU front).  Always false — and uncounted — when
     * the cache is disabled.
     */
    bool lookup(const std::string &key);

    /**
     * Record a miss for @p key.  First miss only marks the admission
     * sketch; the second stores the slab, evicting LRU entries until
     * the arena accepts it.  A slab larger than the whole budget is
     * rejected.  No-op when disabled or when @p key is resident.
     */
    void admit(const std::string &key, const SlabSpec &spec);

    /** True when the config and env mode enable this instance. */
    bool enabled() const { return enabled_; }

    const PrefixCacheConfig &config() const { return config_; }

    PrefixCacheStats stats() const { return stats_; }

  private:
    struct Entry
    {
        SlabSpec spec;
        void *data = nullptr;
        std::list<std::string>::iterator lru_it;
    };

    /** Bloom test-and-set: true when every probed bit was already set. */
    bool sketchTestAndSet(const std::string &key);

    /** Evict the LRU entry (fatal when empty). */
    void evictOne();

    /** Fill + compress the slab payload; returns relative RMS error. */
    double storePayload(void *dst, const SlabSpec &spec) const;

    PrefixCacheConfig config_;
    bool enabled_ = false;
    PrefixCacheStats stats_;
    std::unique_ptr<SlabArena> arena_;
    std::vector<uint64_t> sketch_;
    /** MRU at front. */
    std::list<std::string> lru_;
    std::unordered_map<std::string, Entry> entries_;
};

} // namespace focus

#endif // FOCUS_SERVE_PREFIX_CACHE_H
