#include "serve/request_queue.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace focus
{

const char *
arrivalProcessName(ArrivalProcess p)
{
    switch (p) {
      case ArrivalProcess::OpenPoisson:
        return "open-poisson";
      case ArrivalProcess::ClosedLoop:
        return "closed-loop";
    }
    return "?";
}

std::string
RequestClass::label() const
{
    return model + "/" + dataset + "/" + method.name();
}

RequestQueue::RequestQueue(const QueueConfig &cfg) : cfg_(cfg)
{
    if (cfg_.mix.empty()) {
        fatal("RequestQueue: empty request mix");
    }
    if (cfg_.num_requests <= 0) {
        fatal("RequestQueue: num_requests must be positive (got %d)",
              cfg_.num_requests);
    }
    double total_weight = 0.0;
    for (const RequestClass &c : cfg_.mix) {
        if (c.weight < 0.0) {
            fatal("RequestQueue: negative weight for class '%s'",
                  c.label().c_str());
        }
        if (c.slo_latency_s <= 0.0) {
            fatal("RequestQueue: non-positive SLO for class '%s'",
                  c.label().c_str());
        }
        if (c.prefix_cardinality <= 0) {
            fatal("RequestQueue: non-positive prefix cardinality for "
                  "class '%s'", c.label().c_str());
        }
        if (c.prefix_zipf < 0.0) {
            fatal("RequestQueue: negative prefix Zipf exponent for "
                  "class '%s'", c.label().c_str());
        }
        total_weight += c.weight;
    }
    if (total_weight <= 0.0) {
        fatal("RequestQueue: request mix has zero total weight");
    }
    if (cfg_.process == ArrivalProcess::OpenPoisson &&
        cfg_.arrival_rate_rps <= 0.0) {
        fatal("RequestQueue: open-loop arrival rate must be positive "
              "(got %g)", cfg_.arrival_rate_rps);
    }
    if (cfg_.process == ArrivalProcess::ClosedLoop) {
        if (cfg_.clients <= 0) {
            fatal("RequestQueue: closed-loop client count must be "
                  "positive (got %d)", cfg_.clients);
        }
        if (cfg_.think_mean_s < 0.0) {
            fatal("RequestQueue: negative think time (%g s)",
                  cfg_.think_mean_s);
        }
    }
}

namespace
{

/** Exponential variate with mean @p mean (mean 0 returns 0). */
double
exponential(Rng &rng, double mean)
{
    if (mean <= 0.0) {
        return 0.0;
    }
    // uniform() is in [0, 1), so 1 - u is in (0, 1] and log() is safe.
    return -std::log(1.0 - rng.uniform()) * mean;
}

/** Weighted class draw (weights validated at construction). */
int
drawClass(Rng &rng, const std::vector<RequestClass> &mix,
          double total_weight)
{
    double u = rng.uniform() * total_weight;
    for (size_t i = 0; i < mix.size(); ++i) {
        u -= mix[i].weight;
        if (u < 0.0) {
            return static_cast<int>(i);
        }
    }
    return static_cast<int>(mix.size()) - 1;
}

/**
 * Zipf(s) cumulative weights over ranks 0..n-1: rank r has mass
 * proportional to (r+1)^-s.  Built once per class per generate()
 * call; a single uniform draw binary-searches the table.
 */
std::vector<double>
zipfCdf(int n, double s)
{
    std::vector<double> cdf(static_cast<size_t>(n));
    double total = 0.0;
    for (int r = 0; r < n; ++r) {
        total += std::pow(static_cast<double>(r + 1), -s);
        cdf[static_cast<size_t>(r)] = total;
    }
    for (double &c : cdf) {
        c /= total;
    }
    return cdf;
}

int64_t
drawZipf(Rng &rng, const std::vector<double> &cdf)
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto idx = it == cdf.end() ? cdf.size() - 1
                                     : static_cast<size_t>(
                                           it - cdf.begin());
    return static_cast<int64_t>(idx);
}

} // namespace

std::vector<ServeRequest>
RequestQueue::generate() const
{
    Rng rng(cfg_.seed ^ 0x5e21f0c4a87d3b19ull);
    // Prefix identities draw from an independent stream so their
    // addition leaves the historical class/arrival sequence (and
    // every downstream report) bit-identical.
    Rng prefix_rng(cfg_.seed ^ 0x2fd3c1b58a49e617ull);
    double total_weight = 0.0;
    for (const RequestClass &c : cfg_.mix) {
        total_weight += c.weight;
    }
    // Per-class Zipf tables, built lazily (zipf == 0 classes keep the
    // historical uniformInt path and its exact RNG consumption).
    std::vector<std::vector<double>> zipf_cdfs(cfg_.mix.size());

    std::vector<ServeRequest> stream;
    stream.reserve(static_cast<size_t>(cfg_.num_requests));

    double clock = 0.0;
    for (int i = 0; i < cfg_.num_requests; ++i) {
        ServeRequest r;
        r.id = i;
        r.class_id = drawClass(rng, cfg_.mix, total_weight);
        const RequestClass &cls =
            cfg_.mix[static_cast<size_t>(r.class_id)];
        r.slo_latency_s = cls.slo_latency_s;
        if (cls.prefix_zipf > 0.0) {
            std::vector<double> &cdf =
                zipf_cdfs[static_cast<size_t>(r.class_id)];
            if (cdf.empty()) {
                cdf = zipfCdf(cls.prefix_cardinality,
                              cls.prefix_zipf);
            }
            r.prefix_id = drawZipf(prefix_rng, cdf);
        } else {
            r.prefix_id = static_cast<int64_t>(prefix_rng.uniformInt(
                static_cast<uint64_t>(cls.prefix_cardinality)));
        }
        if (cfg_.process == ArrivalProcess::OpenPoisson) {
            clock += exponential(rng, 1.0 / cfg_.arrival_rate_rps);
            r.arrival_s = clock;
        } else {
            r.client = i % cfg_.clients;
            r.think_s = exponential(rng, cfg_.think_mean_s);
        }
        stream.push_back(r);
    }
    return stream;
}

std::string
prefixKey(const ServeRequest &req, const RequestClass &cls)
{
    return cls.label() + "#" + std::to_string(req.prefix_id);
}

std::vector<RequestClass>
standardServingMix()
{
    // All classes share the prefix popularity shape: 256 distinct
    // identities under a Zipf(0.9) skew, i.e. a few hot videos carry
    // most of the traffic (the hottest identity alone draws ~12% of a
    // class's requests).  This is what makes single-replica cache hit
    // rates — and the hashed-vs-round-robin routing gap — visible at
    // bench request counts.
    constexpr int kPrefixCardinality = 256;
    constexpr double kPrefixZipf = 0.9;

    std::vector<RequestClass> mix;

    RequestClass focus_vid;
    focus_vid.model = "Llava-Vid";
    focus_vid.dataset = "VideoMME";
    focus_vid.method = MethodConfig::focusFull();
    focus_vid.weight = 3.0;
    focus_vid.slo_latency_s = 120.0;
    focus_vid.prefix_cardinality = kPrefixCardinality;
    focus_vid.prefix_zipf = kPrefixZipf;
    mix.push_back(focus_vid);

    RequestClass dense_vid;
    dense_vid.model = "Llava-Vid";
    dense_vid.dataset = "VideoMME";
    dense_vid.method = MethodConfig::dense();
    dense_vid.weight = 1.0;
    dense_vid.slo_latency_s = 480.0;
    dense_vid.prefix_cardinality = kPrefixCardinality;
    dense_vid.prefix_zipf = kPrefixZipf;
    mix.push_back(dense_vid);

    RequestClass focus_short;
    focus_short.model = "MiniCPM";
    focus_short.dataset = "MVBench";
    focus_short.method = MethodConfig::focusFull();
    focus_short.weight = 2.0;
    focus_short.slo_latency_s = 90.0;
    focus_short.prefix_cardinality = kPrefixCardinality;
    focus_short.prefix_zipf = kPrefixZipf;
    mix.push_back(focus_short);

    RequestClass focus_long;
    focus_long.model = "Llava-OV";
    focus_long.dataset = "MLVU-Long";
    focus_long.method = MethodConfig::focusFull();
    focus_long.weight = 2.0;
    focus_long.slo_latency_s = 240.0;
    focus_long.prefix_cardinality = kPrefixCardinality;
    focus_long.prefix_zipf = kPrefixZipf;
    mix.push_back(focus_long);

    return mix;
}

} // namespace focus
