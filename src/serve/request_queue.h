/**
 * @file
 * Synthetic request streams for the serving layer.
 *
 * A request queue turns a weighted mix of request classes — each a
 * (model, dataset, method) triple with a latency SLO — into a
 * deterministic stream of timed requests.  Two arrival processes are
 * modeled:
 *
 *  - OpenPoisson: an open loop where requests arrive at a fixed mean
 *    rate with exponential inter-arrival times, independent of how
 *    fast the accelerator drains them (the overload-capable regime).
 *  - ClosedLoop: a fixed client population; each client issues its
 *    next request an exponential think time after its previous one
 *    completes, so the offered load self-limits to the service rate.
 *
 * All randomness flows from common/rng seeded by QueueConfig::seed,
 * so a stream is exactly reproducible: same seed, same classes, same
 * arrival times, at every thread count.
 */

#ifndef FOCUS_SERVE_REQUEST_QUEUE_H
#define FOCUS_SERVE_REQUEST_QUEUE_H

#include <cstdint>
#include <string>
#include <vector>

#include "vlm/method.h"

namespace focus
{

/** How requests enter the system. */
enum class ArrivalProcess
{
    OpenPoisson, ///< open loop, exponential inter-arrival at a rate
    ClosedLoop,  ///< fixed clients, exponential think after completion
};

const char *arrivalProcessName(ArrivalProcess p);

/** One request class of a serving mix. */
struct RequestClass
{
    std::string model;
    std::string dataset;
    MethodConfig method;

    /** Relative probability of drawing this class. */
    double weight = 1.0;
    /** Per-request latency SLO (simulated seconds). */
    double slo_latency_s = 120.0;
    /**
     * Distinct prefix identities (shared videos / system prompts)
     * this class draws from; each request carries one.  The cluster
     * router keys its consistent-hash ring on class label + prefix so
     * same-prefix requests land on the same replica, and the prefix
     * cache (serve/prefix_cache.h) keys its slabs the same way —
     * routing affinity is what concentrates repeats into hits.
     */
    int prefix_cardinality = 64;
    /**
     * Zipf exponent of the prefix popularity distribution: identity
     * rank r (0-based) is drawn with probability proportional to
     * (r+1)^-prefix_zipf.  0 (the default) keeps the historical
     * uniform draw bit-identically — real prefix traffic is heavily
     * skewed (a few hot videos dominate), which is what makes a
     * bounded-budget cache effective at all.
     */
    double prefix_zipf = 0.0;

    /** "model/dataset/method" display label. */
    std::string label() const;
};

/** Arrival-process and mix configuration for one stream. */
struct QueueConfig
{
    ArrivalProcess process = ArrivalProcess::OpenPoisson;

    /** OpenPoisson: mean arrival rate in requests per second. */
    double arrival_rate_rps = 0.05;

    /** ClosedLoop: concurrent client population. */
    int clients = 4;
    /** ClosedLoop: mean think time between a finish and the next issue. */
    double think_mean_s = 10.0;

    int num_requests = 32;
    uint64_t seed = 42;

    std::vector<RequestClass> mix;
};

/** One request instance of the stream. */
struct ServeRequest
{
    int64_t id = 0;      ///< position in the stream (0-based)
    int class_id = 0;    ///< index into QueueConfig::mix
    int client = -1;     ///< issuing client (ClosedLoop only)
    /** Prefix identity in [0, class prefix_cardinality). */
    int64_t prefix_id = 0;
    double arrival_s = 0.0; ///< absolute arrival time (OpenPoisson)
    double think_s = 0.0;   ///< think time before issue (ClosedLoop)
    double slo_latency_s = 0.0;
};

/**
 * Deterministic request-stream generator.  Construction validates
 * the configuration (fatal on an empty mix, non-positive rate, ...);
 * generate() is a pure function of the config.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(const QueueConfig &cfg);

    const QueueConfig &config() const { return cfg_; }

    /**
     * The full request stream.  OpenPoisson streams are sorted by
     * arrival time (ids follow arrival order); ClosedLoop streams
     * are in issue order per client with round-robin client
     * assignment (request i belongs to client i % clients) and carry
     * think times instead of absolute arrivals — the serving
     * simulator derives arrivals from completions.
     */
    std::vector<ServeRequest> generate() const;

  private:
    QueueConfig cfg_;
};

/**
 * Canonical cache/affinity key of one request: class label + "#" +
 * prefix identity.  The cluster router hashes it onto the replica
 * ring and every replica's prefix cache keys its slabs with it, so
 * one definition keeps the two tiers aligned by construction.
 */
std::string prefixKey(const ServeRequest &req, const RequestClass &cls);

/**
 * Mixed-profile roster used by bench_serving and the serving demo:
 * interactive Focus traffic on the paper's video workloads, a dense
 * (unconcentrated) minority class, and a long-video class
 * (MLVU-Long, 2x the paper's frame count) that stresses the heavy
 * token-count regime.
 */
std::vector<RequestClass> standardServingMix();

} // namespace focus

#endif // FOCUS_SERVE_REQUEST_QUEUE_H
