#include "serve/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>

#include "common/logging.h"
#include "obs/trace_span.h"
#include "runtime/thread_pool.h"

namespace focus
{

ServingSimulator::ServingSimulator(const QueueConfig &queue,
                                   const AccelConfig &accel,
                                   const EvalOptions &eval)
    : queue_(queue), accel_(accel), eval_(eval)
{
    // Validate the arrival configuration up front (fatal on errors).
    RequestQueue probe(queue_);
    (void)probe;
}

size_t
ServingSimulator::internCombo(const std::string &model,
                              const std::string &dataset,
                              const MethodConfig &method)
{
    // Combos deduplicate by method *name* (see file header): two mix
    // classes whose methods print the same name share a calibration.
    const std::string key = model + "\n" + dataset + "\n" +
        method.name();
    const auto it = combo_index_.find(key);
    if (it != combo_index_.end()) {
        return it->second;
    }
    Combo c;
    c.model = model;
    c.dataset = dataset;
    c.method = method;
    combos_.push_back(std::move(c));
    combo_index_.emplace(key, combos_.size() - 1);
    return combos_.size() - 1;
}

const Evaluator &
ServingSimulator::evaluatorFor(const std::string &model,
                               const std::string &dataset)
{
    const auto key = std::make_pair(model, dataset);
    auto it = evaluators_.find(key);
    if (it == evaluators_.end()) {
        it = evaluators_
                 .emplace(key, std::make_unique<Evaluator>(
                                   model, dataset, eval_))
                 .first;
    }
    return *it->second;
}

void
ServingSimulator::calibrate(ThreadPool *pool)
{
    if (calibrated_) {
        return;
    }
    obs::TraceSpan span("serve.calibrate");

    class_combo_.clear();
    class_dense_.clear();
    for (const RequestClass &c : queue_.mix) {
        class_combo_.push_back(
            internCombo(c.model, c.dataset, c.method));
    }
    // Dense reference per class for the accuracy-delta report; a
    // dense class aliases its own combo.
    for (const RequestClass &c : queue_.mix) {
        class_dense_.push_back(
            internCombo(c.model, c.dataset, MethodConfig::dense()));
    }

    // Evaluators (model weights, sample generators) build serially;
    // combos sharing a (model, dataset) pair share one instance.
    std::vector<std::string> model_names;
    for (Combo &c : combos_) {
        evaluatorFor(c.model, c.dataset);
        const auto it = std::find(model_names.begin(),
                                  model_names.end(), c.model);
        c.model_id = static_cast<int>(it - model_names.begin());
        if (it == model_names.end()) {
            model_names.push_back(c.model);
        }
    }

    // Functional calibration fans across the pool, one slot per
    // combo; per-sample parallelism nests inline inside workers.
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    p.parallelFor(
        static_cast<int64_t>(combos_.size()), [&](int64_t i) {
            Combo &c = combos_[static_cast<size_t>(i)];
            const Evaluator &ev =
                *evaluators_.at(std::make_pair(c.model, c.dataset));
            c.eval = ev.runFunctional(c.method, &p);
            c.trace = ev.buildFullTrace(c.method, c.eval);
            c.solo = simulateAccelerator(accel_, c.trace);
        });
    calibrated_ = true;
}

void
ServingSimulator::ensureHitTraces(ThreadPool *pool)
{
    calibrate(pool);
    if (hit_traces_ready_) {
        return;
    }
    obs::TraceSpan span("serve.hit_traces");
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    p.parallelFor(
        static_cast<int64_t>(combos_.size()), [&](int64_t i) {
            Combo &c = combos_[static_cast<size_t>(i)];
            const Evaluator &ev =
                *evaluators_.at(std::make_pair(c.model, c.dataset));
            c.hit_trace = ev.buildPrefixCachedTrace(c.method, c.eval);
            c.hit_solo = simulateAccelerator(accel_, c.hit_trace);
        });
    hit_traces_ready_ = true;
}

const RunMetrics &
ServingSimulator::classSolo(int class_id)
{
    calibrate();
    if (class_id < 0 ||
        static_cast<size_t>(class_id) >= class_combo_.size()) {
        panic("ServingSimulator::classSolo: class %d out of range",
              class_id);
    }
    return combos_[class_combo_[static_cast<size_t>(class_id)]].solo;
}

const RunMetrics &
ServingSimulator::classHitSolo(int class_id)
{
    ensureHitTraces(nullptr);
    if (class_id < 0 ||
        static_cast<size_t>(class_id) >= class_combo_.size()) {
        panic("ServingSimulator::classHitSolo: class %d out of range",
              class_id);
    }
    return combos_[class_combo_[static_cast<size_t>(class_id)]]
        .hit_solo;
}

size_t
ServingSimulator::classCombo(int class_id)
{
    calibrate();
    if (class_id < 0 ||
        static_cast<size_t>(class_id) >= class_combo_.size()) {
        panic("ServingSimulator::classCombo: class %d out of range",
              class_id);
    }
    return class_combo_[static_cast<size_t>(class_id)];
}

const WorkloadTrace &
ServingSimulator::comboTrace(size_t combo) const
{
    if (combo >= combos_.size()) {
        panic("ServingSimulator::comboTrace: combo %zu out of range",
              combo);
    }
    return combos_[combo].trace;
}

const WorkloadTrace &
ServingSimulator::codeTrace(size_t code) const
{
    const size_t combo = code >> 1;
    if (combo >= combos_.size()) {
        panic("ServingSimulator::codeTrace: code %zu out of range",
              code);
    }
    if ((code & 1) != 0) {
        if (!hit_traces_ready_) {
            panic("ServingSimulator::codeTrace: hit trace requested "
                  "before ensureHitTraces");
        }
        return combos_[combo].hit_trace;
    }
    return combos_[combo].trace;
}

SlabSpec
ServingSimulator::comboSlabSpec(size_t combo,
                                const std::string &key) const
{
    if (combo >= combos_.size()) {
        panic("ServingSimulator::comboSlabSpec: combo %zu out of "
              "range", combo);
    }
    const WorkloadTrace &tr = combos_[combo].trace;
    int64_t visual = 0;
    for (const LayerEvents &l : tr.layers) {
        visual += l.visual_in;
    }
    // The stored payload is a fixed 1/4096 reduced-scale mirror of
    // the full retained K/V set: rows shrink 64x and the 2*hidden
    // K+V columns shrink 64x (to 16-bit values), while full_bytes
    // records the paper-scale fp16 K+V footprint the slab stands in
    // for (visual rows x hidden x 2 tensors x 2 bytes).
    SlabSpec spec;
    spec.rows = (visual + 63) / 64;
    spec.cols = 2 * ((tr.hidden + 63) / 64);
    spec.full_bytes = visual * tr.hidden * 4;
    spec.seed = prefixKeyHash(key);
    return spec;
}

std::vector<BatchKey>
ServingSimulator::batchKeys(const std::vector<ServeRequest> &stream)
{
    calibrate();
    std::vector<BatchKey> keys(stream.size());
    for (size_t i = 0; i < stream.size(); ++i) {
        const size_t combo = classCombo(stream[i].class_id);
        keys[i] = BatchKey{combos_[combo].model_id,
                           combos_[combo].trace.retainedRows()};
    }
    return keys;
}

const RunMetrics &
ServingSimulator::costComposition(const std::vector<size_t> &comp)
{
    const auto it = batch_cache_.find(comp);
    if (it != batch_cache_.end()) {
        return it->second;
    }
    std::vector<const WorkloadTrace *> parts;
    parts.reserve(comp.size());
    for (const size_t code : comp) {
        parts.push_back(&codeTrace(code));
    }
    RunMetrics m = simulateAccelerator(accel_, fuseTraces(parts));
    return batch_cache_.emplace(comp, std::move(m)).first->second;
}

namespace
{

/** Nearest-rank percentile of an ascending-sorted series. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty()) {
        return 0.0;
    }
    const double rank =
        std::ceil(q * static_cast<double>(sorted.size()));
    const size_t idx = static_cast<size_t>(
        std::max(0.0, rank - 1.0));
    return sorted[std::min(idx, sorted.size() - 1)];
}

/**
 * Append one executed batch and stamp its members' outcomes;
 * @p members holds positions into @p stream.  Returns the finish
 * time.  Shared by the open-loop replay and the closed-loop event
 * loop so both paths stay byte-for-byte the same bookkeeping.
 */
double
recordBatch(const std::vector<ServeRequest> &stream,
            std::vector<RequestOutcome> &outcomes,
            std::vector<BatchRecord> &batches,
            const std::vector<size_t> &members, double ready,
            double start, const RunMetrics &m)
{
    BatchRecord rec;
    rec.ready_s = ready;
    rec.start_s = start;
    rec.service_s = m.seconds();
    rec.metrics = m;
    const int batch_id = static_cast<int>(batches.size());
    for (const size_t i : members) {
        rec.request_ids.push_back(stream[i].id);
        RequestOutcome &o = outcomes[i];
        o.id = stream[i].id;
        o.class_id = stream[i].class_id;
        o.batch_id = batch_id;
        o.batch_size = static_cast<int>(members.size());
        o.start_s = start;
        o.finish_s = start + rec.service_s;
    }
    batches.push_back(std::move(rec));
    return start + batches.back().service_s;
}

} // namespace

void
ServingSimulator::replayOpenLoop(
    const BatchScheduler &scheduler,
    const std::vector<ServeRequest> &stream, ThreadPool *pool,
    std::vector<RequestOutcome> &outcomes,
    std::vector<BatchRecord> &batches, PrefixCache *cache)
{
    calibrate(pool);
    const bool caching = cache != nullptr && cache->enabled();
    if (caching) {
        ensureHitTraces(pool);
    }
    obs::TraceSpan span("serve.replay");
    const size_t n = stream.size();
    outcomes.assign(n, RequestOutcome{});
    batches.clear();

    std::vector<size_t> req_combo(n);
    std::vector<BatchKey> keys(n);
    for (size_t i = 0; i < n; ++i) {
        const size_t combo =
            class_combo_[static_cast<size_t>(stream[i].class_id)];
        req_combo[i] = combo;
        keys[i] = BatchKey{combos_[combo].model_id,
                           combos_[combo].trace.retainedRows()};
        outcomes[i].arrival_s = stream[i].arrival_s;
    }

    // Plans key on the *base* trace even when caching: batch
    // membership must not depend on cache state, so an enabled cache
    // changes what a batch costs but never which batches form.
    const std::vector<PlannedBatch> plans =
        scheduler.planOpenLoop(stream, keys);

    // Serial cache pre-pass in execution order: resolve each batch's
    // members against the cache (all lookups first, so same-key
    // members of one batch share the miss), then admit each distinct
    // missed key once in first-occurrence order.  Serial by design —
    // the hit/miss stream (and the obs work counters behind it) must
    // be identical at every thread count.
    std::vector<size_t> req_code(n);
    for (size_t i = 0; i < n; ++i) {
        req_code[i] = comboCode(req_combo[i], false);
    }
    if (caching) {
        for (const PlannedBatch &plan : plans) {
            std::vector<size_t> missed;
            for (const size_t i : plan.members) {
                const RequestClass &cls = queue_.mix[static_cast<
                    size_t>(stream[i].class_id)];
                if (cache->lookup(prefixKey(stream[i], cls))) {
                    outcomes[i].prefix_hit = true;
                    req_code[i] = comboCode(req_combo[i], true);
                } else {
                    missed.push_back(i);
                }
            }
            std::vector<std::string> admitted;
            for (const size_t i : missed) {
                const RequestClass &cls = queue_.mix[static_cast<
                    size_t>(stream[i].class_id)];
                const std::string key = prefixKey(stream[i], cls);
                if (std::find(admitted.begin(), admitted.end(),
                              key) == admitted.end()) {
                    admitted.push_back(key);
                    cache->admit(key,
                                 comboSlabSpec(req_combo[i], key));
                }
            }
        }
    }

    // Fuse + simulate every distinct composition across the
    // pool; the timeline pass below then only reads the cache.
    std::vector<std::vector<size_t>> comps(plans.size());
    std::vector<std::vector<size_t>> todo;
    for (size_t b = 0; b < plans.size(); ++b) {
        for (const size_t i : plans[b].members) {
            comps[b].push_back(req_code[i]);
        }
        if (batch_cache_.find(comps[b]) == batch_cache_.end() &&
            std::find(todo.begin(), todo.end(), comps[b]) ==
                todo.end()) {
            todo.push_back(comps[b]);
        }
    }
    std::vector<RunMetrics> slots(todo.size());
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    p.parallelFor(
        static_cast<int64_t>(todo.size()), [&](int64_t t) {
            const std::vector<size_t> &comp =
                todo[static_cast<size_t>(t)];
            std::vector<const WorkloadTrace *> parts;
            parts.reserve(comp.size());
            for (const size_t code : comp) {
                parts.push_back(&codeTrace(code));
            }
            slots[static_cast<size_t>(t)] =
                simulateAccelerator(accel_, fuseTraces(parts));
        });
    for (size_t t = 0; t < todo.size(); ++t) {
        batch_cache_.emplace(todo[t], std::move(slots[t]));
    }

    double free_t = 0.0;
    for (size_t b = 0; b < plans.size(); ++b) {
        const RunMetrics &m = costComposition(comps[b]);
        const double start = std::max(free_t, plans[b].ready_s);
        free_t = recordBatch(stream, outcomes, batches,
                             plans[b].members, plans[b].ready_s,
                             start, m);
    }
}

ServingReport
ServingSimulator::run(const SchedulerConfig &sched, ThreadPool *pool)
{
    obs::TraceSpan span("serve.run");
    calibrate(pool);
    // Fresh cache per replay: runs never see each other's residency,
    // so budget sweeps on one simulator stay order-independent.
    PrefixCache cache(pcache_);
    const bool caching = cache.enabled();
    if (caching) {
        ensureHitTraces(pool);
    }
    const BatchScheduler scheduler(sched);
    const std::vector<ServeRequest> stream =
        RequestQueue(queue_).generate();
    const size_t n = stream.size();

    std::vector<RequestOutcome> outcomes(n);
    std::vector<BatchRecord> batches;

    if (queue_.process == ArrivalProcess::OpenPoisson) {
        replayOpenLoop(scheduler, stream, pool, outcomes, batches,
                       &cache);
    } else {
        std::vector<size_t> req_combo(n);
        std::vector<BatchKey> keys(n);
        for (size_t i = 0; i < n; ++i) {
            const size_t combo =
                class_combo_[static_cast<size_t>(stream[i].class_id)];
            req_combo[i] = combo;
            keys[i] = BatchKey{combos_[combo].model_id,
                               combos_[combo].trace.retainedRows()};
        }
        // Closed loop: arrivals depend on completions, so the event
        // loop is serial; compositions still hit the shared cache.
        std::vector<double> arr(n, 0.0);
        using Arrival = std::pair<double, int64_t>;
        std::priority_queue<Arrival, std::vector<Arrival>,
                            std::greater<Arrival>>
            heap;
        const size_t clients =
            static_cast<size_t>(queue_.clients);
        for (size_t c = 0; c < clients && c < n; ++c) {
            arr[c] = stream[c].think_s;
            heap.push({arr[c], static_cast<int64_t>(c)});
        }

        std::vector<size_t> pending;
        const auto admitUpTo = [&](double t) {
            while (!heap.empty() && heap.top().first <= t) {
                pending.push_back(
                    static_cast<size_t>(heap.top().second));
                heap.pop();
            }
        };

        double free_t = 0.0;
        size_t completed = 0;
        while (completed < n) {
            if (pending.empty()) {
                if (heap.empty()) {
                    panic("ServingSimulator: closed loop starved "
                          "with %zu/%zu requests done", completed, n);
                }
                admitUpTo(heap.top().first);
            }
            const double start =
                std::max(free_t, arr[pending.front()]);
            admitUpTo(start);

            const std::vector<size_t> picked =
                scheduler.pickPending(pending, keys);
            // Closed loop is already a serial event loop, so the
            // cache resolves at pick time: lookups for the whole
            // batch first, then one admit per distinct missed key.
            std::vector<size_t> comp;
            comp.reserve(picked.size());
            std::vector<size_t> missed;
            for (const size_t i : picked) {
                bool hit = false;
                if (caching) {
                    const RequestClass &cls = queue_.mix[static_cast<
                        size_t>(stream[i].class_id)];
                    hit = cache.lookup(prefixKey(stream[i], cls));
                    if (hit) {
                        outcomes[i].prefix_hit = true;
                    } else {
                        missed.push_back(i);
                    }
                }
                comp.push_back(comboCode(req_combo[i], hit));
            }
            std::vector<std::string> admitted;
            for (const size_t i : missed) {
                const RequestClass &cls = queue_.mix[static_cast<
                    size_t>(stream[i].class_id)];
                const std::string key = prefixKey(stream[i], cls);
                if (std::find(admitted.begin(), admitted.end(),
                              key) == admitted.end()) {
                    admitted.push_back(key);
                    cache.admit(key, comboSlabSpec(req_combo[i], key));
                }
            }
            const RunMetrics &m = costComposition(comp);
            for (const size_t i : picked) {
                outcomes[i].arrival_s = arr[i];
            }
            const double finish = recordBatch(
                stream, outcomes, batches, picked, start, start, m);
            free_t = finish;

            for (const size_t i : picked) {
                pending.erase(std::find(pending.begin(),
                                        pending.end(), i));
                const size_t next = i + clients;
                if (next < n) {
                    arr[next] = finish + stream[next].think_s;
                    heap.push({arr[next],
                               static_cast<int64_t>(next)});
                }
            }
            completed += picked.size();
        }
    }

    ServingReport rep = assemble(sched, stream, std::move(outcomes),
                                 std::move(batches));
    rep.prefix_cache = cache.stats();
    return rep;
}

ServingReport
ServingSimulator::assemble(const SchedulerConfig &sched,
                           const std::vector<ServeRequest> &stream,
                           std::vector<RequestOutcome> outcomes,
                           std::vector<BatchRecord> batches) const
{
    ServingReport rep;
    rep.policy = batchPolicyName(sched.policy);
    rep.outcomes = std::move(outcomes);
    rep.batches = std::move(batches);
    if (rep.outcomes.size() != stream.size()) {
        panic("ServingSimulator::assemble: %zu outcomes for %zu "
              "requests", rep.outcomes.size(), stream.size());
    }

    // Outcomes are positional: outcomes[i] describes stream[i] (the
    // stream may be a routed sub-stream whose ids are not 0..n-1).
    std::vector<double> lat;
    lat.reserve(rep.outcomes.size());
    double lat_sum = 0.0;
    size_t slo_ok = 0;
    for (size_t i = 0; i < rep.outcomes.size(); ++i) {
        RequestOutcome &o = rep.outcomes[i];
        if (o.shed) {
            rep.shed += 1;
            continue;
        }
        o.slo_met = o.latency_s() <= stream[i].slo_latency_s;
        lat.push_back(o.latency_s());
        lat_sum += o.latency_s();
        slo_ok += o.slo_met ? 1 : 0;
        rep.makespan_s = std::max(rep.makespan_s, o.finish_s);
    }
    std::sort(lat.begin(), lat.end());
    if (!lat.empty()) {
        rep.latency.mean =
            lat_sum / static_cast<double>(lat.size());
        rep.latency.p50 = percentile(lat, 0.50);
        rep.latency.p95 = percentile(lat, 0.95);
        rep.latency.p99 = percentile(lat, 0.99);
        rep.latency.max = lat.back();
        // Shed requests never meet their SLO: they stay in the
        // attainment denominator (identical to the historical value
        // when nothing is shed).
        rep.slo_attainment = static_cast<double>(slo_ok) /
            static_cast<double>(rep.outcomes.size());
        rep.throughput_rps = rep.makespan_s > 0.0
            ? static_cast<double>(lat.size()) / rep.makespan_s
            : 0.0;
    }

    if (!rep.batches.empty()) {
        double occ = 0.0;
        for (const BatchRecord &b : rep.batches) {
            occ += static_cast<double>(b.request_ids.size()) /
                static_cast<double>(sched.max_batch);
        }
        rep.mean_occupancy =
            occ / static_cast<double>(rep.batches.size());
    }

    // assemble() runs serially after the replay, so totals recorded
    // here are trivially thread-count invariant (work counters); the
    // replay timeline itself is deterministic by construction.
    if (obs::countersEnabled()) {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        static obs::Counter &requests =
            reg.counter("serve.requests");
        static obs::Counter &shed = reg.counter("serve.shed");
        static obs::Counter &batch_total =
            reg.counter("serve.batches");
        requests.add(rep.outcomes.size());
        shed.add(static_cast<uint64_t>(rep.shed));
        batch_total.add(rep.batches.size());
        reg.gauge("serve.mean_occupancy_permille")
            .set(static_cast<int64_t>(rep.mean_occupancy * 1000.0));
    }

    for (size_t cls = 0; cls < queue_.mix.size(); ++cls) {
        ClassOutcome co;
        co.label = queue_.mix[cls].label();
        co.accuracy = combos_[class_combo_[cls]].eval.accuracy;
        co.dense_accuracy =
            combos_[class_dense_[cls]].eval.accuracy;
        co.solo_latency_s = combos_[class_combo_[cls]].solo.seconds();
        double cls_lat = 0.0;
        size_t cls_slo = 0;
        int cls_done = 0;
        for (const RequestOutcome &o : rep.outcomes) {
            if (o.class_id != static_cast<int>(cls)) {
                continue;
            }
            co.requests += 1;
            if (o.shed) {
                co.shed += 1;
                continue;
            }
            if (o.prefix_hit) {
                co.prefix_hits += 1;
            }
            cls_done += 1;
            cls_lat += o.latency_s();
            cls_slo += o.slo_met ? 1 : 0;
        }
        if (cls_done > 0) {
            co.mean_latency_s =
                cls_lat / static_cast<double>(cls_done);
        }
        if (co.requests > 0) {
            co.slo_attainment = static_cast<double>(cls_slo) /
                static_cast<double>(co.requests);
        }
        if (obs::countersEnabled()) {
            // Power-of-4 latency ladder from 1 ms to 256 s; bounds
            // are fixed so every run of a class shares one histogram.
            static const std::vector<double> kLatencyBounds = {
                0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0,
                64.0, 256.0};
            obs::Histogram &h =
                obs::MetricsRegistry::instance().histogram(
                    "serve.class." + co.label + ".latency_s",
                    kLatencyBounds);
            for (const RequestOutcome &o : rep.outcomes) {
                if (o.class_id == static_cast<int>(cls) && !o.shed) {
                    h.observe(o.latency_s());
                }
            }
        }
        rep.classes.push_back(std::move(co));
    }
    return rep;
}

} // namespace focus
