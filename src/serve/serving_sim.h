/**
 * @file
 * End-to-end serving simulation: request stream -> batches -> fused
 * traces -> accelerator timeline -> throughput/latency report.
 *
 * The simulator separates one-time *calibration* from per-policy
 * *replay*:
 *
 *  - calibrate() runs the functional model once per distinct
 *    (model, dataset, method) combo in the mix (plus a dense
 *    reference per (model, dataset) pair for accuracy deltas), fans
 *    the work across the runtime thread pool, and builds each
 *    combo's full-scale trace and batch-of-1 metrics.  Combos are
 *    deduplicated by method *name*: two classes whose methods share
 *    a name share a calibration.
 *  - run(policy) replays the stream under a scheduler policy.
 *    Open-loop plans are a pure function of arrivals, so every
 *    distinct batch composition is fused and simulated across the
 *    pool before a serial timeline pass assigns start/finish times.
 *    Closed-loop replay is a serial event loop (arrivals depend on
 *    completions) over the same composition cache.
 *
 * Determinism: for a fixed QueueConfig seed every report is
 * bit-identical at every thread count — parallel stages write only
 * per-index slots and all reductions run serially in index order.
 * A Single-policy run reproduces Evaluator::simulate bit-exactly for
 * each request (fuseTraces returns singleton traces verbatim).
 */

#ifndef FOCUS_SERVE_SERVING_SIM_H
#define FOCUS_SERVE_SERVING_SIM_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "eval/evaluator.h"
#include "serve/batch_scheduler.h"
#include "serve/prefix_cache.h"
#include "serve/request_queue.h"

namespace focus
{

/** Timeline outcome of one request. */
struct RequestOutcome
{
    int64_t id = 0;
    int class_id = 0;
    int batch_id = -1;
    int batch_size = 1;
    double arrival_s = 0.0;
    double start_s = 0.0;
    double finish_s = 0.0;
    bool slo_met = false;
    /**
     * Rejected at admission (cluster overload shedding); a shed
     * request never executes — it is excluded from the latency
     * distribution and counted as an SLO miss.
     */
    bool shed = false;
    /**
     * Served with the prefix-cached trace: the retained visual rows
     * came from the cross-request cache (serve/prefix_cache.h), so
     * this request contributed only its text rows to its batch.
     */
    bool prefix_hit = false;

    double latency_s() const { return finish_s - arrival_s; }
    double queue_s() const { return start_s - arrival_s; }
};

/** One executed batch. */
struct BatchRecord
{
    std::vector<int64_t> request_ids;
    double ready_s = 0.0;
    double start_s = 0.0;
    double service_s = 0.0;
    int replica = 0;    ///< executing replica (0 on a single box)
    RunMetrics metrics; ///< fused-trace accelerator metrics
};

/** Per-class accuracy and latency summary. */
struct ClassOutcome
{
    std::string label;
    int requests = 0;
    int shed = 0;
    double accuracy = 0.0;
    double dense_accuracy = 0.0;
    double mean_latency_s = 0.0;
    double slo_attainment = 0.0;
    /** Batch-of-1 service time of this class (reference). */
    double solo_latency_s = 0.0;
    /** Requests of this class served from the prefix cache. */
    int prefix_hits = 0;

    double accuracyDelta() const { return accuracy - dense_accuracy; }
};

/** Nearest-rank latency statistics. */
struct LatencyStats
{
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Full replay result. */
struct ServingReport
{
    std::string policy;
    std::vector<RequestOutcome> outcomes; ///< request-id order
    std::vector<BatchRecord> batches;     ///< execution order
    std::vector<ClassOutcome> classes;    ///< mix order

    double makespan_s = 0.0;
    double throughput_rps = 0.0;
    LatencyStats latency;
    /** Mean executed batch size / max_batch. */
    double mean_occupancy = 0.0;
    /**
     * Fraction of *all* requests that finished within SLO: shed
     * requests count in the denominator as misses (0 shed on a
     * single box, so the historical value is unchanged there).
     */
    double slo_attainment = 0.0;
    int shed = 0;
    /**
     * Activity of the run's prefix cache (all-zero when disabled —
     * FOCUS_PREFIX_CACHE=off or a zero budget).
     */
    PrefixCacheStats prefix_cache;
};

class ServingSimulator
{
  public:
    ServingSimulator(const QueueConfig &queue, const AccelConfig &accel,
                     const EvalOptions &eval);

    /**
     * One-time functional calibration (idempotent); run() calls it
     * on demand.  Fans combos across @p pool (global when null).
     */
    void calibrate(ThreadPool *pool = nullptr);

    /** Replay the stream under @p sched. */
    ServingReport run(const SchedulerConfig &sched,
                      ThreadPool *pool = nullptr);

    /**
     * Configure the cross-request prefix cache for subsequent run()
     * calls (default: disabled).  Each run() replays against a fresh
     * cache instance, so one simulator can sweep budgets while
     * sharing its calibration and composition caches; a disabled
     * config (zero budget, or FOCUS_PREFIX_CACHE=off) reproduces the
     * pre-cache replay bit for bit.
     */
    void setPrefixCache(const PrefixCacheConfig &cfg) { pcache_ = cfg; }
    const PrefixCacheConfig &prefixCacheConfig() const
    {
        return pcache_;
    }

    /** Batch-of-1 metrics of a mix class (calibrates on demand). */
    const RunMetrics &classSolo(int class_id);

    /**
     * Batch-of-1 metrics of a mix class served as a prefix-cache
     * *hit* (builds the hit traces on demand) — the per-class
     * latency-saving reference quoted by bench_serving.
     */
    const RunMetrics &classHitSolo(int class_id);

    const QueueConfig &queueConfig() const { return queue_; }
    const AccelConfig &accelConfig() const { return accel_; }

    // ---- building blocks shared with the cluster layer ----
    // (serve/cluster.h routes sub-streams of the same arrival trace
    // to replicas and replays each through these, so a cluster of one
    // replica is bit-identical to run() by construction.)

    /**
     * Open-loop replay of @p stream — any arrival-sorted subset of
     * the generated stream — under @p scheduler.  Fuses and costs
     * every distinct batch composition across @p pool, then assigns
     * start/finish times in a serial FIFO timeline starting at
     * t = 0.  @p outcomes and @p batches are overwritten, indexed by
     * position in @p stream / execution order.  Calibrates on demand.
     *
     * When @p cache is non-null and enabled, a serial pre-pass walks
     * the planned batches in execution order, resolving each member's
     * prefix key against the cache (lookup, then one admit per
     * distinct missed key in first-occurrence order); hits swap in
     * the combo's prefix-cached trace.  Batch *membership* is
     * identical either way — plans key on the base trace, so a run
     * with an enabled cache differs only in what each batch costs.
     */
    void replayOpenLoop(const BatchScheduler &scheduler,
                        const std::vector<ServeRequest> &stream,
                        ThreadPool *pool,
                        std::vector<RequestOutcome> &outcomes,
                        std::vector<BatchRecord> &batches,
                        PrefixCache *cache = nullptr);

    /** Batching keys (model id, retained rows) for @p stream. */
    std::vector<BatchKey>
    batchKeys(const std::vector<ServeRequest> &stream);

    /** Mix class -> calibrated combo index (calibrates on demand). */
    size_t classCombo(int class_id);

    /** Full-scale trace of a calibrated combo. */
    const WorkloadTrace &comboTrace(size_t combo) const;

    /**
     * Composition code of one request: a combo id tagged with its
     * prefix-cache outcome.  Compositions are sequences of codes, so
     * the memoized batch cost distinguishes hit and miss variants of
     * the same combo; a miss code equals the historical plain combo
     * path bit for bit.
     */
    static size_t comboCode(size_t combo, bool hit)
    {
        return combo * 2 + (hit ? 1 : 0);
    }

    /** Trace behind a composition code (hit or base variant). */
    const WorkloadTrace &codeTrace(size_t code) const;

    /**
     * Fused metrics of a batch composition (sequence of composition
     * codes in member order), memoized in the process-lifetime cache
     * shared with run().
     */
    const RunMetrics &costComposition(const std::vector<size_t> &comp);

    /** Slab geometry of one combo's retained prefix, keyed payload. */
    SlabSpec comboSlabSpec(size_t combo, const std::string &key) const;

    /**
     * Build each combo's prefix-cached trace + solo metrics
     * (idempotent; fans across @p pool; calibrates on demand).
     * Deferred off the calibration path so cache-disabled runs do no
     * hit-trace work; replays with an enabled cache call it first,
     * and the cluster layer must before costing hit codes itself.
     */
    void ensureHitTraces(ThreadPool *pool);

    /**
     * Aggregate a report over @p stream: @p outcomes is positional
     * (outcomes[i] describes stream[i]); shed outcomes are excluded
     * from the latency distribution and counted as SLO misses.
     */
    ServingReport assemble(const SchedulerConfig &sched,
                           const std::vector<ServeRequest> &stream,
                           std::vector<RequestOutcome> outcomes,
                           std::vector<BatchRecord> batches) const;

  private:
    /** Calibrated (model, dataset, method) combo. */
    struct Combo
    {
        std::string model;
        std::string dataset;
        MethodConfig method;
        int model_id = 0;
        MethodEval eval;
        WorkloadTrace trace;
        RunMetrics solo;
        /** Prefix-cache-hit variants (built by ensureHitTraces). */
        WorkloadTrace hit_trace;
        RunMetrics hit_solo;
    };

    size_t internCombo(const std::string &model,
                       const std::string &dataset,
                       const MethodConfig &method);
    const Evaluator &evaluatorFor(const std::string &model,
                                  const std::string &dataset);

    QueueConfig queue_;
    AccelConfig accel_;
    EvalOptions eval_;
    PrefixCacheConfig pcache_;
    bool calibrated_ = false;
    bool hit_traces_ready_ = false;

    std::map<std::pair<std::string, std::string>,
             std::unique_ptr<Evaluator>>
        evaluators_;
    std::vector<Combo> combos_;
    std::map<std::string, size_t> combo_index_;
    std::vector<size_t> class_combo_; ///< mix class -> combo
    std::vector<size_t> class_dense_; ///< mix class -> dense reference

    /** Fused metrics per batch composition (code sequence). */
    std::map<std::vector<size_t>, RunMetrics> batch_cache_;
};

} // namespace focus

#endif // FOCUS_SERVE_SERVING_SIM_H
