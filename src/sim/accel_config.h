/**
 * @file
 * Accelerator configuration (paper Tbl. I and Tbl. III).
 *
 * All baseline architectures share frequency, technology, operand
 * width and DRAM bandwidth; they differ in PE array geometry, buffer
 * capacity, and which concentration unit (if any) is attached.
 */

#ifndef FOCUS_SIM_ACCEL_CONFIG_H
#define FOCUS_SIM_ACCEL_CONFIG_H

#include <cstdint>
#include <string>

namespace focus
{

/** Which accelerator architecture a simulation models. */
enum class ArchKind
{
    SystolicArray, ///< vanilla dense baseline
    AdapTiV,       ///< 16x64 array + sign-similarity merge unit
    CMC,           ///< 32x32 array + off-chip codec unit
    Focus,         ///< 32x32 array + Focus unit (SEC + SIC)
};

/** DDR4 configuration ("DDR4 4Gb x16, 2133R, 4 channels, 64 GB/s"). */
struct DramConfig
{
    int channels = 4;
    int banks_per_channel = 16;
    int64_t row_bytes = 2048;

    /**
     * Peak bytes per accelerator cycle per channel.  64 GB/s total at
     * 500 MHz = 128 B/cycle = 32 B/cycle/channel.
     */
    double bytes_per_cycle_per_channel = 32.0;

    // Timing in accelerator cycles (2 ns at 500 MHz).
    int t_rcd = 7;  ///< ACT -> column command
    int t_rp = 7;   ///< PRE -> ACT
    int t_cl = 7;   ///< CAS latency
    int t_bl = 2;   ///< data beats per 64 B burst at channel rate

    /** Refresh / maintenance bandwidth derate. */
    double refresh_derate = 0.95;

    // Energy (device-level, DRAMsim3-style constants).
    double e_activate_nj = 2.0;       ///< per row activate+precharge
    double e_rw_pj_per_byte = 35.0;   ///< read/write data movement
    double p_background_mw = 750.0;   ///< static across all channels
};

/** Full accelerator configuration. */
struct AccelConfig
{
    ArchKind arch = ArchKind::Focus;
    std::string name = "Focus";

    // --- compute ---
    int array_rows = 32;   ///< b: K-dimension (rows) of the PE array
    int array_cols = 32;   ///< a: N-dimension (cols) of the PE array
    double freq_ghz = 0.5; ///< 500 MHz

    // --- Focus unit ---
    int64_t m_tile = 1024;      ///< GEMM m tile size
    int vector_size = 32;       ///< SIC vector length (= array_cols)
    int scatter_accumulators = 64; ///< 2a-wide accumulator (Fig. 10(d))
    int sic_matchers = 1;       ///< parallel similarity matchers
    int sec_lanes = 32;         ///< importance/sorter lanes (= a)

    // --- buffers (bytes) ---
    int64_t input_buffer = 128 * 1024;
    int64_t weight_buffer = 78 * 1024;
    int64_t output_buffer = 512 * 1024;
    int64_t layouter_buffer = 16 * 1024;

    // --- memory ---
    DramConfig dram;

    // --- interconnect (tensor-parallel collectives) ---
    /**
     * Per-shard link bandwidth for ring collectives, in bytes per
     * accelerator cycle.  128 B/cycle at 500 MHz = 64 GB/s — an
     * accelerator-class scale-up link matching the DRAM bandwidth.
     * Only exercised when a trace carries tp_degree > 1.
     */
    double link_bytes_per_cycle = 128.0;
    /** Per-hop ring-step latency in accelerator cycles (~1 us). */
    int64_t link_hop_cycles = 500;

    /**
     * Weight-traffic amortization factor: effective batch over which
     * streamed weights are reused (images/clips processed per weight
     * fetch).  The paper's traffic accounting is activation-dominated;
     * this factor makes that accounting explicit and configurable.
     */
    double weight_batch = 8.0;

    int64_t totalBufferBytes() const
    {
        return input_buffer + weight_buffer + output_buffer +
            layouter_buffer;
    }

    /** Vanilla 32x32 systolic array (Tbl. III column 1). */
    static AccelConfig systolicArray();
    /** AdapTiV: 16x64 array, 768 KB buffer. */
    static AccelConfig adaptiv();
    /** CMC: 32x32 array, 907 KB buffer incl. codec staging. */
    static AccelConfig cmc();
    /** Focus (Tbl. I). */
    static AccelConfig focus();
};

inline AccelConfig
AccelConfig::systolicArray()
{
    AccelConfig c;
    c.arch = ArchKind::SystolicArray;
    c.name = "SystolicArray";
    c.layouter_buffer = 16 * 1024; // same SRAM macro budget
    return c;
}

inline AccelConfig
AccelConfig::adaptiv()
{
    AccelConfig c;
    c.arch = ArchKind::AdapTiV;
    c.name = "Adaptiv";
    c.array_rows = 16;
    c.array_cols = 64;
    c.input_buffer = 160 * 1024;
    c.weight_buffer = 96 * 1024;
    c.output_buffer = 512 * 1024;
    c.layouter_buffer = 0;
    return c;
}

inline AccelConfig
AccelConfig::cmc()
{
    AccelConfig c;
    c.arch = ArchKind::CMC;
    c.name = "CMC";
    c.input_buffer = 128 * 1024;
    c.weight_buffer = 78 * 1024;
    c.output_buffer = 512 * 1024;
    c.layouter_buffer = 189 * 1024; // codec staging buffer
    return c;
}

inline AccelConfig
AccelConfig::focus()
{
    AccelConfig c;
    c.arch = ArchKind::Focus;
    c.name = "Focus";
    return c;
}

} // namespace focus

#endif // FOCUS_SIM_ACCEL_CONFIG_H
