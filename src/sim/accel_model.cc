#include "sim/accel_model.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <map>
#include <tuple>

#include "common/logging.h"
#include "common/math_util.h"
#include "sim/dram.h"
#include "sim/systolic.h"

namespace focus
{

namespace
{

/** Bytes of a similarity map for @p vectors compact-index entries. */
uint64_t
mapBytes(double vectors)
{
    // 2-byte compact index per vector position (10 bits padded).
    return static_cast<uint64_t>(std::llround(vectors * 2.0));
}

/** Cap on recorded tile lengths (Fig. 13 histogram sample). */
constexpr size_t kTileLengthCap = 200000;

/**
 * One-time config validation at simulation entry: every division in
 * the cycle/traffic models below assumes positive dimensions, so a
 * non-positive value panics here instead of silently flooring to 1
 * (or dividing by zero) deep inside a tile walk.
 */
void
validateAccelConfig(const AccelConfig &cfg)
{
    if (cfg.array_rows <= 0 || cfg.array_cols <= 0 ||
        cfg.m_tile <= 0 || cfg.sec_lanes <= 0 ||
        cfg.vector_size <= 0 || cfg.scatter_accumulators <= 0 ||
        cfg.sic_matchers <= 0) {
        panic("simulateAccelerator: non-positive AccelConfig "
              "dimension (array_rows=%d array_cols=%d m_tile=%" PRId64
              " sec_lanes=%d vector_size=%d scatter_accumulators=%d "
              "sic_matchers=%d)",
              cfg.array_rows, cfg.array_cols, cfg.m_tile,
              cfg.sec_lanes, cfg.vector_size,
              cfg.scatter_accumulators, cfg.sic_matchers);
    }
    if (cfg.link_bytes_per_cycle <= 0.0 || cfg.link_hop_cycles < 0) {
        panic("simulateAccelerator: invalid interconnect config "
              "(link_bytes_per_cycle=%g link_hop_cycles=%" PRId64 ")",
              cfg.link_bytes_per_cycle, cfg.link_hop_cycles);
    }
}

/**
 * Memoization key for one GEMM's timing under the fast backend: the
 * event geometry, the effective SIC/gather flags, the psi value, and
 * — when drawing from the trace's empirical tile_fracs distribution —
 * the sampler's round-robin cursor, since the draws (and so the
 * result and the post-call sampler state) are a pure function of the
 * cursor.  Keyed with an ordered map like the serving layer's
 * composition cache; AccelConfig is fixed within one call, so it
 * stays out of the key.
 */
struct TimingKey
{
    int64_t m, k, n;
    bool sic, gather;
    uint64_t psi_bits;
    int64_t cursor; ///< -1 for the stateless mean sampler

    bool
    operator<(const TimingKey &o) const
    {
        return std::tie(m, k, n, sic, gather, psi_bits, cursor) <
            std::tie(o.m, o.k, o.n, o.sic, o.gather, o.psi_bits,
                     o.cursor);
    }
};

uint64_t
doubleBits(double v)
{
    uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

} // namespace

RunMetrics
simulateAccelerator(const AccelConfig &cfg, const WorkloadTrace &trace,
                    const EnergyParams &ep)
{
    validateAccelConfig(cfg);

    RunMetrics rm;
    rm.arch = cfg.name;
    rm.method = trace.method;
    rm.freq_ghz = cfg.freq_ghz;

    DramModel dram(cfg.dram);
    FracSampler psi_dist(&trace.tile_fracs, 1.0);

    // Fast backend: layers repeat geometry, so (TimingKey -> timing)
    // hits replace whole tile walks.  The walk backend stays cacheless
    // — it is the reference the equivalence suite diffs against.
    const bool memoize = activeSimBackend() == SimBackend::Fast;
    std::map<TimingKey, GemmTiming> timing_cache;

    const bool is_focus_arch = cfg.arch == ArchKind::Focus;
    const bool is_cmc = cfg.arch == ArchKind::CMC;
    const bool is_adaptiv = cfg.arch == ArchKind::AdapTiV;

    // Output-column group that fits the output buffer alongside one
    // m-tile of fp32 partial sums.
    const int64_t n_buffered = std::max<int64_t>(
        cfg.array_cols, cfg.output_buffer / (cfg.m_tile * 4));

    double input_frac_sum = 0.0;
    double input_frac_den = 0.0;

    // AdapTiV stages the uncompressed token matrix through DRAM once
    // for the merge unit (read full, write merged).
    if (is_adaptiv) {
        const uint64_t full = static_cast<uint64_t>(
            trace.visual_original) * trace.hidden * 2;
        const uint64_t merged = static_cast<uint64_t>(trace.visual0) *
            trace.hidden * 2;
        rm.dram_codec_extra += full + merged;
    }

    for (const LayerEvents &layer : trace.layers) {
        uint64_t layer_compute = 0;
        uint64_t layer_dram_bytes = 0;

        for (const GemmEvent &g : layer.gemms) {
            const bool sic_in = g.psi_in < 1.0;
            const bool use_dist = sic_in && !trace.tile_fracs.empty();
            const bool gather = is_focus_arch && g.gather_out;
            FracSampler mean_sampler(nullptr, g.psi_in);
            FracSampler &sampler = use_dist ? psi_dist : mean_sampler;

            GemmTiming fresh;
            const GemmTiming *timing = nullptr;
            if (memoize) {
                const TimingKey key{
                    g.m, g.k, g.n, sic_in, gather,
                    doubleBits(g.psi_in),
                    use_dist
                        ? static_cast<int64_t>(psi_dist.cursor())
                        : -1};
                const auto it = timing_cache.find(key);
                if (it != timing_cache.end()) {
                    // Leave the shared sampler exactly where a real
                    // walk would have (sampler-order invariant).
                    if (use_dist) {
                        psi_dist.advance(
                            timeGemmDraws(cfg, g.m, g.k, g.n));
                    }
                    timing = &it->second;
                } else {
                    fresh = timeGemm(cfg, g.m, g.k, g.n, sampler,
                                     sic_in, gather);
                    timing = &timing_cache
                                  .emplace(key, std::move(fresh))
                                  .first->second;
                }
            } else {
                fresh = timeGemm(cfg, g.m, g.k, g.n, sampler, sic_in,
                                 gather);
                timing = &fresh;
            }
            const GemmTiming &t = *timing;
            layer_compute += t.cycles * g.count;
            rm.stall_scatter += t.stall_scatter * g.count;
            rm.stall_matcher += t.stall_matcher * g.count;
            rm.mac_ops += t.mac_ops * g.count;
            rm.scatter_ops += t.scatter_ops * g.count;
            rm.matcher_ops += t.matcher_ops * g.count;
            if (sic_in && rm.tile_lengths.size() < kTileLengthCap) {
                // Truncate the batch insert precisely at the cap (a
                // whole-batch insert used to overshoot it by up to
                // one GEMM's worth of tiles).
                if (rm.tile_lengths.empty()) {
                    rm.tile_lengths.reserve(kTileLengthCap);
                }
                const size_t room =
                    kTileLengthCap - rm.tile_lengths.size();
                const size_t take =
                    std::min(room, t.tile_lengths.size());
                rm.tile_lengths.insert(
                    rm.tile_lengths.end(), t.tile_lengths.begin(),
                    t.tile_lengths.begin() +
                        static_cast<int64_t>(take));
            }

            // ---- DRAM traffic ----
            const int64_t m_tiles = ceilDiv(g.m, cfg.m_tile);
            const double in_elems = static_cast<double>(g.m) * g.k;
            const double out_elems = static_cast<double>(g.m) * g.n;

            uint64_t in_bytes = 0, w_bytes = 0, out_bytes = 0,
                map_in = 0, map_out = 0, codec_extra = 0;
            if (g.site == GemmSite::Qk || g.site == GemmSite::Pv) {
                // Fused flash-style attention: Q read once, K (and V
                // in PV) streamed per query m-tile; scores stay
                // on-chip, only the PV output is written.
                in_bytes = static_cast<uint64_t>(in_elems * 2.0);
                w_bytes = static_cast<uint64_t>(g.k) * g.n * 2 *
                    m_tiles;
                out_bytes = g.site == GemmSite::Pv
                    ? static_cast<uint64_t>(out_elems * 2.0 *
                                            (g.gather_out ? g.psi_out
                                                          : 1.0))
                    : 0;
                if (g.gather_out && g.site == GemmSite::Pv) {
                    map_out = mapBytes(out_elems /
                                       cfg.vector_size);
                }
            } else {
                const int64_t n_groups = ceilDiv(g.n, n_buffered);
                in_bytes = static_cast<uint64_t>(
                    in_elems * 2.0 * g.psi_in * n_groups);
                if (g.psi_in < 1.0) {
                    map_in = mapBytes(in_elems / cfg.vector_size) *
                        n_groups;
                }
                w_bytes = static_cast<uint64_t>(g.k) * g.n * 2 *
                    m_tiles;
                out_bytes = static_cast<uint64_t>(
                    out_elems * 2.0 *
                    (g.gather_out ? g.psi_out : 1.0));
                if (g.gather_out) {
                    map_out = mapBytes(out_elems / cfg.vector_size);
                }
                const bool cmc_condensed_site =
                    g.site == GemmSite::OProj ||
                    g.site == GemmSite::GateUp ||
                    g.site == GemmSite::Down;
                if (is_cmc && cmc_condensed_site) {
                    // Codec round trip (Fig. 3(a)): the codec's
                    // frame-based matching needs the *full-resolution*
                    // token stream, so the tensor is scattered back to
                    // original token count, staged in DRAM, read by
                    // the codec, and re-written condensed.  Extra vs.
                    // dense: one full-resolution write + read.
                    const double full_elems =
                        static_cast<double>(trace.visual_original +
                                            trace.text) * g.n;
                    codec_extra = static_cast<uint64_t>(
                        2.0 * full_elems * 2.0);
                    rm.merge_ops += full_elems;
                }
            }

            rm.dram_act_read += in_bytes * g.count;
            rm.dram_act_write += out_bytes * g.count;
            rm.dram_weights += w_bytes * g.count;
            rm.dram_maps += (map_in + map_out) * g.count;
            rm.dram_codec_extra += codec_extra * g.count;
            layer_dram_bytes += (in_bytes + out_bytes + w_bytes +
                                 map_in + map_out + codec_extra) *
                g.count;

            // ---- buffer traffic ----
            rm.ib_bytes += in_bytes * g.count;
            rm.wb_bytes += w_bytes * g.count;
            // fp32 read-modify-write per output element per k-subtile.
            rm.ob_bytes += static_cast<uint64_t>(
                out_elems * 8.0 *
                ceilDiv<int64_t>(g.k, cfg.array_rows)) *
                g.count;

            // Fig. 12(b): mean input matrix size vs. dense.
            const double dense_rows = static_cast<double>(
                trace.visual_original + trace.text);
            input_frac_sum += static_cast<double>(g.m) * g.psi_in /
                dense_rows;
            input_frac_den += 1.0;
        }

        // ---- baseline merge-unit activity ----
        if (is_adaptiv) {
            // AdapTiV re-evaluates sign-similarity merges on every
            // layer's token stream (MICRO'24 design), a major power
            // contributor (Tbl. III: 1176 mW vs the 720 mW array).
            rm.merge_ops += static_cast<double>(layer.rowsIn()) *
                trace.hidden;
        }

        // ---- SFU activity ----
        // Softmax and SEC are per-request: in a fused batch trace a
        // query only attends within its own rows, so quadratic terms
        // cost sum(r_i^2) over LayerEvents::queries, never
        // (sum r_i)^2.  The linear rmsnorm/swiglu terms sum either
        // way.  Single-query traces take the scalar path untouched
        // (batch-of-1 bit-identity).  Prefix-cached context rows
        // widen a request's softmax — each query row normalizes over
        // its computed rows *plus* the cached keys — without adding
        // query rows of their own; cached == 0 reproduces the
        // historical r*r term bit for bit (r + 0.0 == r exactly).
        const double rows_in = static_cast<double>(layer.rowsIn());
        const double rows_out = static_cast<double>(layer.rowsOut());
        if (layer.queries.empty()) {
            const double cached =
                static_cast<double>(layer.cached_visual);
            rm.sfu_ops +=
                rows_in * (rows_in + cached) * trace.heads * 3.0;
        } else {
            for (const QueryRows &q : layer.queries) {
                const double r = static_cast<double>(q.rowsIn());
                const double cached =
                    static_cast<double>(q.cached_visual);
                rm.sfu_ops +=
                    r * (r + cached) * trace.heads * 3.0; // softmax
            }
        }
        rm.sfu_ops += 2.0 * rows_in * trace.hidden * 2.0;    // rmsnorm
        rm.sfu_ops += rows_out * trace.ffn_inner * 2.0;      // swiglu

        // ---- SEC ----
        if (layer.sec_topk > 0 && is_focus_arch) {
            const auto secForQuery = [&](int64_t visual_in,
                                         int64_t text, int64_t topk) {
                const double q_rows =
                    static_cast<double>(visual_in + text);
                rm.sec_ops += static_cast<double>(text) * q_rows *
                    trace.heads;         // streaming max
                rm.sec_ops += q_rows *
                    ceilDiv<int64_t>(topk, cfg.sec_lanes);
                const uint64_t stall = secSorterStall(
                    cfg, visual_in, text, trace.head_dim,
                    trace.heads, topk);
                rm.stall_sec += stall;
                layer_compute += stall;
            };
            if (layer.queries.empty()) {
                secForQuery(layer.visual_in, layer.text,
                            layer.sec_topk);
            } else {
                for (const QueryRows &q : layer.queries) {
                    if (q.sec_topk > 0) {
                        secForQuery(q.visual_in, q.text, q.sec_topk);
                    }
                }
            }
        }

        // ---- tensor-parallel collectives ----
        // Row-parallel outputs (O-proj, FFN down) hold partial sums
        // that must meet across the tp_degree shards: a ring
        // reduce-scatter moves the uncompressed fp16 partials, the
        // all-gather redistributes the (psi-compressed when gathered)
        // result, each at (tp-1)/tp of the tensor per shard.  The
        // collective blocks the layer critical path (Megatron-style
        // synchronous TP), so it adds serially after compute/DMA
        // overlap.  Exactly zero at tp_degree == 1.
        uint64_t icx_cycles = 0;
        if (trace.tp_degree > 1) {
            const double tp = static_cast<double>(trace.tp_degree);
            uint64_t icx_bytes = 0;
            for (const GemmEvent &g : layer.gemms) {
                if (g.site != GemmSite::OProj &&
                    g.site != GemmSite::Down) {
                    continue;
                }
                const double elems = static_cast<double>(g.m) * g.n *
                    g.count;
                const double out_psi = is_focus_arch && g.gather_out
                    ? g.psi_out : 1.0;
                const double vol = (tp - 1.0) / tp * elems * 2.0 *
                    (1.0 + out_psi);
                icx_bytes += static_cast<uint64_t>(std::llround(vol));
                icx_cycles += static_cast<uint64_t>(
                    2 * (trace.tp_degree - 1)) *
                    static_cast<uint64_t>(cfg.link_hop_cycles);
            }
            icx_cycles += static_cast<uint64_t>(
                std::llround(static_cast<double>(icx_bytes) /
                             cfg.link_bytes_per_cycle));
            rm.interconnect_bytes += icx_bytes;
            rm.interconnect_cycles += icx_cycles;
        }

        // ---- compute / DMA overlap ----
        const uint64_t dram_cycles = dram.streamCycles(layer_dram_bytes);
        dram.addStreamEnergy(layer_dram_bytes);
        const uint64_t layer_total =
            std::max(layer_compute, dram_cycles) + icx_cycles;
        rm.layer_cycles.push_back(layer_total);
        rm.cycles += layer_total;
    }

    // Drop the cap-sized reservation slack: RunMetrics objects are
    // stored long-term (serving composition cache, grid results).
    rm.tile_lengths.shrink_to_fit();

    rm.mean_input_frac = input_frac_den > 0.0
        ? input_frac_sum / input_frac_den : 1.0;

    // ---- energy composition ----
    rm.energy.core = rm.mac_ops * ep.e_mac_pj * 1e-12 +
        ep.p_core_leak_mw * 1e-3 * rm.seconds();
    rm.energy.buffer =
        static_cast<double>(rm.ib_bytes) * ep.e_ib_pj_per_byte * 1e-12 +
        static_cast<double>(rm.wb_bytes) * ep.e_wb_pj_per_byte * 1e-12 +
        static_cast<double>(rm.ob_bytes) * ep.e_ob_pj_per_byte * 1e-12;
    rm.energy.sfu = rm.sfu_ops * ep.e_sfu_pj_per_op * 1e-12;
    rm.energy.sec = rm.sec_ops * ep.e_sec_pj_per_op * 1e-12;
    rm.energy.sic = (rm.matcher_ops + rm.scatter_ops) *
        ep.e_sic_pj_per_op * 1e-12;
    rm.energy.merge = rm.merge_ops * ep.e_merge_pj_per_op * 1e-12;
    if (is_cmc) {
        rm.energy.merge += static_cast<double>(rm.dram_codec_extra) *
            ep.e_codec_pj_per_byte * 1e-12;
        rm.energy.merge += ep.p_cmc_codec_mw * 1e-3 * rm.seconds();
    }
    if (is_adaptiv) {
        rm.energy.merge += ep.p_adaptiv_merge_mw * 1e-3 * rm.seconds();
    }
    rm.energy.interconnect = static_cast<double>(rm.interconnect_bytes) *
        ep.e_link_pj_per_byte * 1e-12;
    rm.energy.dram = dram.dynamicEnergyJ() +
        dram.backgroundEnergyJ(rm.cycles, cfg.freq_ghz);

    const double denom = static_cast<double>(rm.cycles) *
        cfg.array_rows * cfg.array_cols;
    rm.utilization = denom > 0.0 ? rm.mac_ops / denom : 0.0;

    return rm;
}

} // namespace focus
