/**
 * @file
 * End-to-end accelerator simulation: trace -> cycles, traffic,
 * energy, utilization.
 *
 * The model walks every GEMM event of a WorkloadTrace through the
 * systolic-array cycle model, accounts DRAM traffic with
 * buffer-capacity-aware reuse (inputs re-read per output-column
 * group, weights re-read per m-tile, outputs written once), overlaps
 * DMA with compute per layer, and applies the architecture-specific
 * behaviours:
 *
 *  - Focus: compressed reads/writes at gathered sites (+ similarity
 *    map overhead), SEC sorter overlap check, scatter/matcher stalls.
 *  - CMC: per-tensor codec round trip — write full, read full (codec),
 *    write compressed, read compressed (Fig. 3(a)); codec energy.
 *  - AdapTiV: uncompressed input staging pass + merge-unit energy.
 *  - SystolicArray: dense everything.
 */

#ifndef FOCUS_SIM_ACCEL_MODEL_H
#define FOCUS_SIM_ACCEL_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/accel_config.h"
#include "sim/energy.h"
#include "sim/trace.h"

namespace focus
{

/** Simulation output for one (architecture, trace) pair. */
struct RunMetrics
{
    std::string arch;
    std::string method;
    double freq_ghz = 0.5;

    uint64_t cycles = 0;
    uint64_t stall_scatter = 0;
    uint64_t stall_matcher = 0;
    uint64_t stall_sec = 0;

    double mac_ops = 0.0;
    double scatter_ops = 0.0;
    double matcher_ops = 0.0;
    double sec_ops = 0.0;
    double sfu_ops = 0.0;
    double merge_ops = 0.0;

    // DRAM traffic (bytes)
    uint64_t dram_act_read = 0;
    uint64_t dram_act_write = 0;
    uint64_t dram_weights = 0;
    uint64_t dram_maps = 0;
    uint64_t dram_codec_extra = 0;

    // On-chip buffer traffic (bytes)
    uint64_t ib_bytes = 0;
    uint64_t wb_bytes = 0;
    uint64_t ob_bytes = 0;

    /**
     * Tensor-parallel ring-collective traffic and (serialized)
     * cycles; exactly zero unless the trace carries tp_degree > 1, so
     * single-engine results are bit-identical to pre-TP builds.
     */
    uint64_t interconnect_bytes = 0;
    uint64_t interconnect_cycles = 0;

    /**
     * Per-layer critical-path cycles (compute/DMA overlap plus the
     * layer's collective cost).  Sums to `cycles`; the cluster
     * layer's continuous batching reads the prefix up to the SEC
     * shrink knee to decide when the array can accept the next batch.
     */
    std::vector<uint64_t> layer_cycles;

    EnergyBreakdown energy;

    /** Cycle-weighted PE utilization. */
    double utilization = 0.0;

    /** Concentrated tile lengths (Fig. 13); empty unless SIC ran. */
    std::vector<int64_t> tile_lengths;

    /** Mean input-matrix size relative to dense (Fig. 12(b)). */
    double mean_input_frac = 1.0;

    double
    seconds() const
    {
        return static_cast<double>(cycles) / (freq_ghz * 1e9);
    }

    uint64_t
    dramActivationBytes() const
    {
        return dram_act_read + dram_act_write + dram_maps +
            dram_codec_extra;
    }

    uint64_t
    dramTotalBytes() const
    {
        return dramActivationBytes() + dram_weights;
    }

    double
    onChipPowerW() const
    {
        const double s = seconds();
        return s > 0.0 ? energy.onChip() / s : 0.0;
    }

    double
    totalPowerW() const
    {
        const double s = seconds();
        return s > 0.0 ? energy.total() / s : 0.0;
    }
};

/** Simulate @p trace on @p cfg. */
RunMetrics simulateAccelerator(const AccelConfig &cfg,
                               const WorkloadTrace &trace,
                               const EnergyParams &ep = {});

} // namespace focus

#endif // FOCUS_SIM_ACCEL_MODEL_H
