#include "sim/area.h"

namespace focus
{

std::map<std::string, double>
areaBreakdown(const AccelConfig &cfg, const AreaParams &p)
{
    std::map<std::string, double> parts;
    const double pes = static_cast<double>(cfg.array_rows) *
        cfg.array_cols;
    parts["systolic_array"] = pes * p.pe_mm2;
    parts["buffer"] =
        static_cast<double>(cfg.totalBufferBytes()) / 1024.0 *
        p.sram_mm2_per_kb;
    parts["sfu"] = p.sfu_mm2;
    switch (cfg.arch) {
      case ArchKind::Focus:
        parts["sec"] = p.sec_mm2;
        parts["sic"] = p.sic_mm2;
        break;
      case ArchKind::AdapTiV:
        parts["merge_unit"] = p.adaptiv_merge_mm2;
        break;
      case ArchKind::CMC:
        parts["codec"] = p.cmc_codec_mm2;
        break;
      case ArchKind::SystolicArray:
        break;
    }
    return parts;
}

double
totalArea(const AccelConfig &cfg, const AreaParams &p)
{
    double total = 0.0;
    for (const auto &[name, mm2] : areaBreakdown(cfg, p)) {
        (void)name;
        total += mm2;
    }
    return total;
}

} // namespace focus
