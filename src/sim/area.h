/**
 * @file
 * Area model (28 nm, post-synthesis-style constants).
 *
 * Component areas are fitted to the paper's Tbl. III / Fig. 9(c):
 * the vanilla 32x32 systolic design (array + 734 KB buffers + SFU)
 * comes to ~3.12 mm^2, Focus adds SEC (1.9%) + SIC (0.8%) for
 * ~3.21 mm^2, AdapTiV and CMC pay for their merge/codec units and
 * larger buffers.
 */

#ifndef FOCUS_SIM_AREA_H
#define FOCUS_SIM_AREA_H

#include <map>
#include <string>

#include "sim/accel_config.h"

namespace focus
{

/** Per-component area constants in mm^2. */
struct AreaParams
{
    double pe_mm2 = 1.41 / 1024.0;      ///< one FP16/FP32 MAC PE
    double sram_mm2_per_kb = 1.38 / 734.0;
    double sfu_mm2 = 0.32;
    double sec_mm2 = 0.061;             ///< analyzer + sorter + encoder
    double sic_mm2 = 0.026;             ///< matcher + maps + scatter
    double adaptiv_merge_mm2 = 0.21;
    double cmc_codec_mm2 = 0.145;
};

/** Component name -> mm^2 for an architecture. */
std::map<std::string, double> areaBreakdown(const AccelConfig &cfg,
                                            const AreaParams &p = {});

/** Total on-chip area in mm^2. */
double totalArea(const AccelConfig &cfg, const AreaParams &p = {});

} // namespace focus

#endif // FOCUS_SIM_AREA_H
