#include "sim/dram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace focus
{

namespace
{
/** Burst granularity: one 64-byte access per command. */
constexpr uint64_t kBurstBytes = 64;
} // namespace

DramModel::DramModel(const DramConfig &cfg)
    : cfg_(cfg),
      banks_(static_cast<size_t>(cfg.channels * cfg.banks_per_channel)),
      bytes_moved_(0), activates_(0)
{
}

void
DramModel::reset()
{
    for (auto &b : banks_) {
        b.open_row = -1;
    }
    bytes_moved_ = 0;
    activates_ = 0;
    stats.clear();
}

void
DramModel::mapAddress(uint64_t addr, int &channel, int &bank,
                      int64_t &row) const
{
    // Fine-grained channel interleave at burst granularity, then bank
    // interleave, then row: the address layout that maximizes
    // streaming parallelism.
    const uint64_t burst = addr / kBurstBytes;
    channel = static_cast<int>(burst % cfg_.channels);
    const uint64_t per_channel = burst / cfg_.channels;
    const uint64_t bursts_per_row =
        static_cast<uint64_t>(cfg_.row_bytes) / kBurstBytes;
    const uint64_t row_linear = per_channel / bursts_per_row;
    bank = static_cast<int>(row_linear % cfg_.banks_per_channel);
    row = static_cast<int64_t>(row_linear / cfg_.banks_per_channel);
}

uint64_t
DramModel::access(uint64_t addr, uint64_t bytes, bool write)
{
    uint64_t busy = 0;
    const uint64_t first = addr / kBurstBytes;
    const uint64_t last = (addr + std::max<uint64_t>(bytes, 1) - 1) /
        kBurstBytes;
    for (uint64_t b = first; b <= last; ++b) {
        int channel, bank;
        int64_t row;
        mapAddress(b * kBurstBytes, channel, bank, row);
        BankState &st = banks_[static_cast<size_t>(
            channel * cfg_.banks_per_channel + bank)];
        if (st.open_row != row) {
            // Precharge (if a row was open) + activate.
            busy += (st.open_row >= 0 ? cfg_.t_rp : 0) + cfg_.t_rcd;
            st.open_row = row;
            ++activates_;
            stats.inc(write ? "row_miss_wr" : "row_miss_rd");
        } else {
            stats.inc(write ? "row_hit_wr" : "row_hit_rd");
        }
        // Column access; CAS latency pipelines with the data burst
        // for back-to-back accesses, so only the first in a row run
        // pays it — approximated by folding tCL into row misses.
        busy += cfg_.t_bl;
        bytes_moved_ += kBurstBytes;
    }
    stats.inc(write ? "bytes_written" : "bytes_read",
              (last - first + 1) * kBurstBytes);
    return busy;
}

double
DramModel::streamEfficiency() const
{
    // Per 2 KB row: data beats vs. the activate/precharge gap that
    // bank interleaving cannot hide.  With >= 4 banks the gap is
    // fully overlapped, leaving only the refresh derate.
    const double data_cycles =
        static_cast<double>(cfg_.row_bytes) / kBurstBytes * cfg_.t_bl;
    const double gap = cfg_.t_rp + cfg_.t_rcd;
    const double hidden = std::min(
        gap, data_cycles * (cfg_.banks_per_channel - 1));
    const double eff = data_cycles / (data_cycles + gap - hidden);
    return eff * cfg_.refresh_derate;
}

uint64_t
DramModel::streamCycles(uint64_t bytes) const
{
    const double peak = cfg_.bytes_per_cycle_per_channel *
        cfg_.channels;
    const double cycles =
        static_cast<double>(bytes) / (peak * streamEfficiency());
    return static_cast<uint64_t>(std::ceil(cycles));
}

void
DramModel::addStreamEnergy(uint64_t bytes)
{
    bytes_moved_ += bytes;
    activates_ += ceilDiv<uint64_t>(
        bytes, static_cast<uint64_t>(cfg_.row_bytes));
    stats.inc("bytes_streamed", bytes);
}

double
DramModel::dynamicEnergyJ() const
{
    return static_cast<double>(activates_) * cfg_.e_activate_nj * 1e-9 +
        static_cast<double>(bytes_moved_) * cfg_.e_rw_pj_per_byte *
        1e-12;
}

double
DramModel::backgroundEnergyJ(uint64_t cycles, double freq_ghz) const
{
    const double seconds = static_cast<double>(cycles) /
        (freq_ghz * 1e9);
    return cfg_.p_background_mw * 1e-3 * seconds;
}

} // namespace focus
