/**
 * @file
 * DDR4 DRAM model (DRAMsim3-lite).
 *
 * Two operating modes share one set of device parameters:
 *
 *  - Request mode: per-(channel, bank) open-row state with
 *    tRCD/tRP/tCL/tBL timing.  Used for unit-level validation and for
 *    small workloads.
 *  - Stream mode: analytic cost of a large contiguous transfer,
 *    calibrated against request mode (row-hit streaming with bank
 *    interleaving hides activation latency; refresh derates peak).
 *
 * Energy follows device-level accounting: activates + data movement
 * + background power (added by the caller from elapsed time).
 */

#ifndef FOCUS_SIM_DRAM_H
#define FOCUS_SIM_DRAM_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "sim/accel_config.h"

namespace focus
{

/** DDR4 device model. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg);

    /**
     * Request mode: access @p bytes starting at @p addr.  Returns the
     * channel busy cycles consumed (the caller may overlap across
     * channels).  Updates open-row state and energy counters.
     */
    uint64_t access(uint64_t addr, uint64_t bytes, bool write);

    /**
     * Stream mode: cycles to move @p bytes of contiguous data across
     * all channels at streaming efficiency.
     */
    uint64_t streamCycles(uint64_t bytes) const;

    /**
     * Streaming efficiency: fraction of peak bandwidth sustained for
     * large contiguous transfers (row-hit dominated).
     */
    double streamEfficiency() const;

    /** Account the energy of a streamed transfer of @p bytes. */
    void addStreamEnergy(uint64_t bytes);

    /** Dynamic DRAM energy accumulated so far, in joules. */
    double dynamicEnergyJ() const;

    /** Background energy for @p cycles of wall-clock, in joules. */
    double backgroundEnergyJ(uint64_t cycles, double freq_ghz) const;

    /** Total bytes moved (reads + writes). */
    uint64_t totalBytes() const { return bytes_moved_; }

    const DramConfig &config() const { return cfg_; }

    StatSet stats;

    void reset();

  private:
    struct BankState
    {
        int64_t open_row = -1;
    };

    DramConfig cfg_;
    std::vector<BankState> banks_; ///< [channel * banks + bank]
    uint64_t bytes_moved_;
    uint64_t activates_;

    /** Decompose an address into (channel, bank, row). */
    void mapAddress(uint64_t addr, int &channel, int &bank,
                    int64_t &row) const;
};

} // namespace focus

#endif // FOCUS_SIM_DRAM_H
