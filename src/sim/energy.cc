// Energy model is header-only aside from this anchor translation unit;
// the composition happens in accel_model.cc where activity counters
// live.
#include "sim/energy.h"
