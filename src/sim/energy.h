/**
 * @file
 * Energy model: activity counters x per-operation constants.
 *
 * Constants are representative 28 nm values (MAC and SRAM numbers in
 * the Horowitz range, DRAM at device+IO cost) chosen so the *dense
 * systolic baseline* reproduces the paper's Fig. 9(c) power-breakdown
 * shape; all architectures share the same constants, so the reported
 * ratios between methods are produced by the activity model, not by
 * the constants.
 */

#ifndef FOCUS_SIM_ENERGY_H
#define FOCUS_SIM_ENERGY_H

#include <cstdint>

namespace focus
{

/** Per-operation energy constants. */
struct EnergyParams
{
    double e_mac_pj = 0.90;          ///< FP16 mul + FP32 acc
    double e_ib_pj_per_byte = 2.0;  ///< input buffer access
    double e_wb_pj_per_byte = 1.7;  ///< weight buffer access
    double e_ob_pj_per_byte = 1.2;  ///< output/accumulator access
    double e_sfu_pj_per_op = 30.0;    ///< exp/div/sqrt-class op
    double e_sec_pj_per_op = 0.8;   ///< comparator / max op
    double e_sic_pj_per_op = 1.0;   ///< matcher element op
    double e_merge_pj_per_op = 100.0; ///< baseline merge-unit op
    double e_codec_pj_per_byte = 200.0; ///< CMC motion search + codec
    double e_link_pj_per_byte = 10.0; ///< TP collective link transfer
    double p_core_leak_mw = 80.0;    ///< on-chip static power

    /**
     * Merge/codec unit block power for the baseline accelerators.
     * Their published on-chip powers (1176 mW AdapTiV, 832 mW CMC vs
     * the 720 mW vanilla array, Tbl. III) are dominated by these
     * always-active units, far beyond what per-comparison energy
     * accounts for; we model them as constant-power blocks.
     */
    double p_adaptiv_merge_mw = 430.0;
    double p_cmc_codec_mw = 95.0;
};

/** Energy by component, in joules. */
struct EnergyBreakdown
{
    double core = 0.0;    ///< PE array MACs + leakage share
    double buffer = 0.0;  ///< on-chip SRAM
    double sfu = 0.0;     ///< special function unit
    double sec = 0.0;     ///< semantic concentrator
    double sic = 0.0;     ///< similarity concentrator (+ scatter)
    double merge = 0.0;   ///< baseline merge/codec units
    double dram = 0.0;    ///< off-chip dynamic + background
    /** Tensor-parallel collective links (zero unless tp_degree > 1). */
    double interconnect = 0.0;

    double
    total() const
    {
        return core + buffer + sfu + sec + sic + merge + dram +
            interconnect;
    }

    double
    onChip() const
    {
        return core + buffer + sfu + sec + sic + merge;
    }
};

} // namespace focus

#endif // FOCUS_SIM_ENERGY_H
