#include "sim/gpu_model.h"

#include <algorithm>

namespace focus
{

double
gpuSeconds(const WorkloadTrace &trace, const GpuConfig &cfg,
           bool token_reduced)
{
    double seconds = 0.0;
    for (const LayerEvents &layer : trace.layers) {
        for (const GemmEvent &g : layer.gemms) {
            // GPUs cannot exploit vector-level (psi) sparsity; only
            // token-count reduction shows up in m.
            const double flops = 2.0 * static_cast<double>(g.m) *
                g.k * g.n * g.count;
            const double bytes =
                (static_cast<double>(g.m) * g.k +
                 static_cast<double>(g.k) * g.n +
                 static_cast<double>(g.m) * g.n) * 2.0 * g.count;
            const bool attn = g.site == GemmSite::Qk ||
                g.site == GemmSite::Pv;
            const double util = attn ? cfg.util_attn : cfg.util_gemm;
            const double t_compute =
                flops / (cfg.peak_tflops * 1e12 * util);
            const double t_mem = bytes / (cfg.mem_bw_gbps * 1e9);
            seconds += std::max(t_compute, t_mem);
        }
        seconds += cfg.layer_overhead_us * 1e-6;
    }
    if (token_reduced) {
        seconds /= cfg.reduction_efficiency;
    }
    return seconds;
}

} // namespace focus
