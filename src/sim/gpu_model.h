/**
 * @file
 * Analytic GPU model (Jetson Orin Nano class) used for the paper's
 * GPU and GPU+FrameFusion comparison points.
 *
 * A roofline per GEMM: time = max(flops / (peak * util),
 * bytes / bandwidth) plus a per-layer kernel-launch/software
 * overhead.  Token-reduction baselines run on a reduced trace but pay
 * an irregularity derate, reflecting the paper's observation that
 * fine-grained sparsity is hard to exploit on tensor cores.
 */

#ifndef FOCUS_SIM_GPU_MODEL_H
#define FOCUS_SIM_GPU_MODEL_H

#include "sim/trace.h"

namespace focus
{

/** Device constants (Jetson Orin Nano class). */
struct GpuConfig
{
    double peak_tflops = 2.5;        ///< dense FP16 tensor throughput
    double mem_bw_gbps = 68.0;
    double util_gemm = 0.27;         ///< achievable GEMM efficiency
    double util_attn = 0.11;         ///< attention kernels
    double reduction_efficiency = 0.95; ///< irregular token sparsity
    double layer_overhead_us = 50.0; ///< launches, softmax glue, etc.
};

/** End-to-end latency in seconds for a trace on the GPU. */
double gpuSeconds(const WorkloadTrace &trace, const GpuConfig &cfg,
                  bool token_reduced);

} // namespace focus

#endif // FOCUS_SIM_GPU_MODEL_H
