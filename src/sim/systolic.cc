#include "sim/systolic.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstring>

#include "common/env_dispatch.h"
#include "common/logging.h"
#include "common/math_util.h"

namespace focus
{

namespace
{

SimBackend
simBackendFromEnv()
{
    static const char *const names[] = {"walk", "fast"};
    return static_cast<SimBackend>(envBackendChoice(
        "FOCUS_SIM_BACKEND", names, 2,
        static_cast<int>(SimBackend::Fast)));
}

std::atomic<SimBackend> g_sim_backend{simBackendFromEnv()};

/**
 * The cycle model divides by array/tile/unit dimensions; a
 * non-positive value is a config bug, not a degenerate workload.
 */
void
validateTimingConfig(const AccelConfig &cfg)
{
    if (cfg.array_rows <= 0 || cfg.array_cols <= 0 ||
        cfg.m_tile <= 0 || cfg.scatter_accumulators <= 0 ||
        cfg.sic_matchers <= 0) {
        panic("timeGemm: non-positive AccelConfig dimension "
              "(array_rows=%d array_cols=%d m_tile=%" PRId64
              " scatter_accumulators=%d sic_matchers=%d)",
              cfg.array_rows, cfg.array_cols, cfg.m_tile,
              cfg.scatter_accumulators, cfg.sic_matchers);
    }
}

/** One run of equally-sized tiles along a dimension. */
struct TileBand
{
    int64_t size;  ///< rows (or cols) per tile in this band
    int64_t count; ///< number of such tiles
};

/**
 * Decompose @p total (> 0) tiled by @p tile into at most two bands:
 * the full tiles and the (possibly absent) edge tile.
 */
int
tileBands(int64_t total, int64_t tile, TileBand out[2])
{
    const int64_t tiles = ceilDiv(total, tile);
    const int64_t edge = total - (tiles - 1) * tile;
    if (edge == tile) {
        out[0] = {tile, tiles};
        return 1;
    }
    int n = 0;
    if (tiles > 1) {
        out[n++] = {tile, tiles - 1};
    }
    out[n++] = {edge, 1};
    return n;
}

/**
 * Sum of @p len consecutive entries of the cyclic sequence whose
 * prefix sums are @p prefix (prefix[j] = sum of the first j entries,
 * so prefix.size() = S + 1), starting at position @p c < S.  Integer
 * arithmetic throughout, so the result equals the sequential sum
 * exactly.
 */
template <typename T>
T
cyclicRangeSum(const std::vector<T> &prefix, size_t c, uint64_t len)
{
    const size_t S = prefix.size() - 1;
    const T total = prefix[S];
    T sum = static_cast<T>(len / S) * total;
    const size_t e = c + len % S;
    if (e <= S) {
        sum += prefix[e] - prefix[c];
    } else {
        sum += (total - prefix[c]) + prefix[e - S];
    }
    return sum;
}

/**
 * Append @p len entries of the cyclic table @p tab starting at
 * position @p c < S, in chunked bulk inserts.
 */
void
appendCyclic(std::vector<int64_t> &out, const std::vector<int64_t> &tab,
             size_t c, uint64_t len)
{
    const size_t S = tab.size();
    while (len > 0) {
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(len, S - c));
        out.insert(out.end(), tab.begin() + c, tab.begin() + c + chunk);
        len -= chunk;
        c = (c + chunk) % S;
    }
}

} // namespace

double
GemmTiming::utilization(const AccelConfig &cfg) const
{
    if (cycles == 0) {
        return 0.0;
    }
    return mac_ops / (static_cast<double>(cycles) * cfg.array_rows *
                      cfg.array_cols);
}

const char *
simBackendName(SimBackend b)
{
    return b == SimBackend::Walk ? "walk" : "fast";
}

bool
parseSimBackend(const char *name, SimBackend &out)
{
    const std::string s(name != nullptr ? name : "");
    if (s == "walk") {
        out = SimBackend::Walk;
        return true;
    }
    if (s == "fast") {
        out = SimBackend::Fast;
        return true;
    }
    return false;
}

SimBackend
activeSimBackend()
{
    return g_sim_backend.load(std::memory_order_relaxed);
}

void
setSimBackend(SimBackend b)
{
    g_sim_backend.store(b, std::memory_order_relaxed);
}

GemmTiming
timeGemm(const AccelConfig &cfg, int64_t m, int64_t k, int64_t n,
         FracSampler &psi, bool sic_input, bool gather_out)
{
    return activeSimBackend() == SimBackend::Walk
        ? timeGemmWalk(cfg, m, k, n, psi, sic_input, gather_out)
        : timeGemmFast(cfg, m, k, n, psi, sic_input, gather_out);
}

GemmTiming
timeGemmWalk(const AccelConfig &cfg, int64_t m, int64_t k, int64_t n,
             FracSampler &psi, bool sic_input, bool gather_out)
{
    validateTimingConfig(cfg);
    GemmTiming t;
    if (m <= 0 || k <= 0 || n <= 0) {
        return t;
    }
    const int64_t a = cfg.array_cols;
    const int64_t b = cfg.array_rows;
    const int64_t fill = (a - 1) + (b - 1);

    const int64_t m_tiles = ceilDiv(m, cfg.m_tile);
    const int64_t k_subs = ceilDiv(k, b);
    const int64_t n_tiles = ceilDiv(n, a);

    uint64_t cycles = 0;
    for (int64_t mt = 0; mt < m_tiles; ++mt) {
        const int64_t m_rows = std::min(cfg.m_tile, m - mt * cfg.m_tile);
        for (int64_t nt = 0; nt < n_tiles; ++nt) {
            const int64_t n_eff = std::min(a, n - nt * a);
            // First weight sub-tile load is exposed; the rest are
            // double-buffered behind compute.
            uint64_t tile_cycles = static_cast<uint64_t>(b);
            for (int64_t ks = 0; ks < k_subs; ++ks) {
                const int64_t k_eff = std::min(b, k - ks * b);
                int64_t p = m_rows;
                if (sic_input) {
                    const double f = clamp(psi.next(), 0.0, 1.0);
                    p = std::max<int64_t>(1, static_cast<int64_t>(
                        std::llround(f * static_cast<double>(m_rows))));
                    t.tile_lengths.push_back(p);
                }
                const uint64_t compute =
                    static_cast<uint64_t>(p) + fill;
                uint64_t sub = compute;
                if (sic_input) {
                    // Scatter: every partial sum is redistributed to
                    // all m_rows original rows through the W-wide
                    // accumulator (Fig. 8(2)); with W = 2a = 64 this
                    // hides behind compute at typical concentration
                    // (Fig. 10(d): ~5% over a 160-lane design, while
                    // 32 lanes stall ~1.5x).
                    const uint64_t scatter = ceilDiv<uint64_t>(
                        static_cast<uint64_t>(m_rows) * n_eff,
                        static_cast<uint64_t>(
                            cfg.scatter_accumulators));
                    t.scatter_ops +=
                        static_cast<double>(m_rows) * n_eff;
                    if (scatter > sub) {
                        t.stall_scatter += scatter - sub;
                        sub = scatter;
                    }
                }
                t.mac_ops += static_cast<double>(p) * k_eff * n_eff;
                tile_cycles += sub;
            }
            if (gather_out) {
                // Matcher: up to 7 compare dot-products + 1 norm per
                // output vector, one vector element per cycle per
                // matcher; overlapped with the tile's GEMM time.
                const uint64_t matcher = ceilDiv<uint64_t>(
                    8ull * static_cast<uint64_t>(m_rows),
                    static_cast<uint64_t>(cfg.sic_matchers));
                t.matcher_ops += 8.0 * static_cast<double>(m_rows) *
                    n_eff;
                if (matcher > tile_cycles) {
                    t.stall_matcher += matcher - tile_cycles;
                    tile_cycles = matcher;
                }
            }
            cycles += tile_cycles;
        }
    }
    t.cycles = cycles;
    return t;
}

GemmTiming
timeGemmFast(const AccelConfig &cfg, int64_t m, int64_t k, int64_t n,
             FracSampler &psi, bool sic_input, bool gather_out)
{
    validateTimingConfig(cfg);
    GemmTiming t;
    if (m <= 0 || k <= 0 || n <= 0) {
        return t;
    }
    const int64_t a = cfg.array_cols;
    const int64_t b = cfg.array_rows;
    const int64_t fill = (a - 1) + (b - 1);

    const int64_t m_tiles = ceilDiv(m, cfg.m_tile);
    const int64_t k_subs = ceilDiv(k, b);
    const int64_t n_tiles = ceilDiv(n, a);
    const int64_t last_k_eff = k - (k_subs - 1) * b;

    if (!sic_input) {
        // Dense input: every sub-tile of an (m-rows, n-cols) tile
        // costs the same, so the whole walk collapses onto the <= 2x2
        // distinct (m-band, n-band) combinations.  All op counters
        // accumulate integer-valued doubles, so these aggregated sums
        // equal the walk's incremental sums bit-for-bit below 2^53.
        TileBand mb[2], nb[2];
        const int mbn = tileBands(m, cfg.m_tile, mb);
        const int nbn = tileBands(n, a, nb);
        for (int mi = 0; mi < mbn; ++mi) {
            const int64_t m_rows = mb[mi].size;
            const uint64_t tile_base = static_cast<uint64_t>(b) +
                static_cast<uint64_t>(k_subs) *
                    (static_cast<uint64_t>(m_rows) + fill);
            const uint64_t matcher = gather_out
                ? ceilDiv<uint64_t>(
                      8ull * static_cast<uint64_t>(m_rows),
                      static_cast<uint64_t>(cfg.sic_matchers))
                : 0;
            for (int ni = 0; ni < nbn; ++ni) {
                const int64_t n_eff = nb[ni].size;
                const int64_t tiles = mb[mi].count * nb[ni].count;
                uint64_t tile_cycles = tile_base;
                if (gather_out) {
                    t.matcher_ops += 8.0 *
                        static_cast<double>(m_rows) * n_eff * tiles;
                    if (matcher > tile_cycles) {
                        t.stall_matcher += (matcher - tile_cycles) *
                            static_cast<uint64_t>(tiles);
                        tile_cycles = matcher;
                    }
                }
                t.cycles += tile_cycles * static_cast<uint64_t>(tiles);
                t.mac_ops += static_cast<double>(m_rows) * k * n_eff *
                    tiles;
            }
        }
        return t;
    }

    // SIC input: one psi draw per (m-tile, n-tile, k-sub-tile), in
    // exactly the walk's order.
    const uint64_t total_draws = static_cast<uint64_t>(m_tiles) *
        static_cast<uint64_t>(n_tiles) * static_cast<uint64_t>(k_subs);
    t.tile_lengths.reserve(static_cast<size_t>(total_draws));
    const uint64_t matcher_den =
        static_cast<uint64_t>(cfg.sic_matchers);
    const uint64_t scatter_den =
        static_cast<uint64_t>(cfg.scatter_accumulators);
    TileBand mb[2], nb[2];
    const int mbn = tileBands(m, cfg.m_tile, mb);
    const int nbn = tileBands(n, a, nb);

    if (!psi.empirical()) {
        // Mean-backed sampler: every draw is the same value, so the
        // whole walk collapses to closed form per (m-band, n-band);
        // only the tile-length log stays O(draws) (bulk fill, in
        // m-tile-major walk order — full m-tiles precede the edge).
        for (int mi = 0; mi < mbn; ++mi) {
            const int64_t m_rows = mb[mi].size;
            const double f = clamp(psi.mean(), 0.0, 1.0);
            const int64_t p = std::max<int64_t>(
                1, static_cast<int64_t>(
                       std::llround(f * static_cast<double>(m_rows))));
            const uint64_t compute = static_cast<uint64_t>(p) + fill;
            const uint64_t matcher = gather_out
                ? ceilDiv<uint64_t>(
                      8ull * static_cast<uint64_t>(m_rows),
                      matcher_den)
                : 0;
            for (int ni = 0; ni < nbn; ++ni) {
                const int64_t n_eff = nb[ni].size;
                const int64_t tiles = mb[mi].count * nb[ni].count;
                const uint64_t scatter = ceilDiv<uint64_t>(
                    static_cast<uint64_t>(m_rows) * n_eff,
                    scatter_den);
                const uint64_t sub = std::max(compute, scatter);
                if (scatter > compute) {
                    t.stall_scatter += (scatter - compute) *
                        static_cast<uint64_t>(k_subs) *
                        static_cast<uint64_t>(tiles);
                }
                uint64_t tile_cycles = static_cast<uint64_t>(b) +
                    static_cast<uint64_t>(k_subs) * sub;
                t.scatter_ops += static_cast<double>(m_rows) * n_eff *
                    k_subs * tiles;
                t.mac_ops += static_cast<double>(p) * k * n_eff *
                    tiles;
                if (gather_out) {
                    t.matcher_ops += 8.0 *
                        static_cast<double>(m_rows) * n_eff * tiles;
                    if (matcher > tile_cycles) {
                        t.stall_matcher += (matcher - tile_cycles) *
                            static_cast<uint64_t>(tiles);
                        tile_cycles = matcher;
                    }
                }
                t.cycles += tile_cycles * static_cast<uint64_t>(tiles);
            }
            t.tile_lengths.insert(
                t.tile_lengths.end(),
                static_cast<size_t>(mb[mi].count) *
                    static_cast<size_t>(n_tiles) *
                    static_cast<size_t>(k_subs),
                p);
        }
        return t;
    }

    // Empirical distribution: the round-robin sampler makes every
    // (m-tile, n-tile) draw window a cyclic slice of the
    // distribution, so tabulate p (and the sub-tile latency / scatter
    // stall it implies) once per distribution value and distinct tile
    // geometry, with prefix sums; each window then costs O(1) lookups
    // plus a bulk cyclic append of its tile lengths.  Falls back to
    // the straight draw loop when the distribution is longer than the
    // draw count (tabulating would cost more than drawing).
    const std::vector<double> &dist = *psi.dist();
    const size_t S = dist.size();
    size_t c = psi.cursor();

    if (static_cast<uint64_t>(S) > total_draws) {
        for (int64_t mt = 0; mt < m_tiles; ++mt) {
            const int mi = (mbn == 2 && mt == m_tiles - 1) ? 1 : 0;
            const int64_t m_rows = mb[mi].size;
            const double md = static_cast<double>(m_rows);
            const uint64_t matcher = gather_out
                ? ceilDiv<uint64_t>(
                      8ull * static_cast<uint64_t>(m_rows),
                      matcher_den)
                : 0;
            for (int64_t nt = 0; nt < n_tiles; ++nt) {
                const int64_t n_eff =
                    (nbn == 2 && nt == n_tiles - 1) ? nb[1].size
                                                    : nb[0].size;
                const uint64_t scatter = ceilDiv<uint64_t>(
                    static_cast<uint64_t>(m_rows) * n_eff,
                    scatter_den);
                uint64_t sum_sub = 0;
                uint64_t stall = 0;
                int64_t p_sum = 0;
                int64_t p_last = 0;
                for (int64_t ks = 0; ks < k_subs; ++ks) {
                    const double f = clamp(dist[c], 0.0, 1.0);
                    c = c + 1 == S ? 0 : c + 1;
                    const int64_t p = std::max<int64_t>(
                        1, static_cast<int64_t>(
                               std::llround(f * md)));
                    t.tile_lengths.push_back(p);
                    p_sum += p;
                    p_last = p;
                    const uint64_t compute =
                        static_cast<uint64_t>(p) + fill;
                    if (scatter > compute) {
                        stall += scatter - compute;
                        sum_sub += scatter;
                    } else {
                        sum_sub += compute;
                    }
                }
                t.scatter_ops += md * n_eff * k_subs;
                t.stall_scatter += stall;
                t.mac_ops += static_cast<double>(
                    (p_sum - p_last) * b + p_last * last_k_eff) *
                    n_eff;
                uint64_t tile_cycles =
                    static_cast<uint64_t>(b) + sum_sub;
                if (gather_out) {
                    t.matcher_ops += 8.0 * md * n_eff;
                    if (matcher > tile_cycles) {
                        t.stall_matcher += matcher - tile_cycles;
                        tile_cycles = matcher;
                    }
                }
                t.cycles += tile_cycles;
            }
        }
        psi.advance(total_draws);
        return t;
    }

    // p and prefix(p) per m-band; prefix(sub-tile latency) per
    // (m-band, n-band).  The scatter stall needs no table of its own:
    // per sub-tile stall = sub - compute, so a window's stall is
    // sum(sub) - (sum(p) + len * fill), exactly, in integers.
    std::vector<int64_t> p_tab[2];
    std::vector<int64_t> pre_p[2];
    std::vector<uint64_t> pre_sub[2][2];
    for (int mi = 0; mi < mbn; ++mi) {
        const int64_t m_rows = mb[mi].size;
        const double md = static_cast<double>(m_rows);
        p_tab[mi].resize(S);
        pre_p[mi].assign(S + 1, 0);
        for (size_t j = 0; j < S; ++j) {
            const double f = clamp(dist[j], 0.0, 1.0);
            const int64_t p = std::max<int64_t>(
                1, static_cast<int64_t>(std::llround(f * md)));
            p_tab[mi][j] = p;
            pre_p[mi][j + 1] = pre_p[mi][j] + p;
        }
        for (int ni = 0; ni < nbn; ++ni) {
            const uint64_t scatter = ceilDiv<uint64_t>(
                static_cast<uint64_t>(m_rows) * nb[ni].size,
                scatter_den);
            pre_sub[mi][ni].assign(S + 1, 0);
            for (size_t j = 0; j < S; ++j) {
                const uint64_t compute =
                    static_cast<uint64_t>(p_tab[mi][j]) + fill;
                pre_sub[mi][ni][j + 1] = pre_sub[mi][ni][j] +
                    std::max(compute, scatter);
            }
        }
    }

    for (int64_t mt = 0; mt < m_tiles; ++mt) {
        const int mi = (mbn == 2 && mt == m_tiles - 1) ? 1 : 0;
        const int64_t m_rows = mb[mi].size;
        const double md = static_cast<double>(m_rows);
        const uint64_t matcher = gather_out
            ? ceilDiv<uint64_t>(8ull * static_cast<uint64_t>(m_rows),
                                matcher_den)
            : 0;
        for (int64_t nt = 0; nt < n_tiles; ++nt) {
            const int ni = (nbn == 2 && nt == n_tiles - 1) ? 1 : 0;
            const int64_t n_eff = nb[ni].size;
            const uint64_t sum_sub = cyclicRangeSum(
                pre_sub[mi][ni], c, static_cast<uint64_t>(k_subs));
            const int64_t p_sum = cyclicRangeSum(
                pre_p[mi], c, static_cast<uint64_t>(k_subs));
            t.stall_scatter += sum_sub -
                (static_cast<uint64_t>(p_sum) +
                 static_cast<uint64_t>(k_subs) *
                     static_cast<uint64_t>(fill));
            const int64_t p_last =
                p_tab[mi][(c + static_cast<size_t>(k_subs) - 1) % S];
            appendCyclic(t.tile_lengths, p_tab[mi], c,
                         static_cast<uint64_t>(k_subs));
            t.scatter_ops += md * n_eff * k_subs;
            t.mac_ops += static_cast<double>(
                (p_sum - p_last) * b + p_last * last_k_eff) * n_eff;
            uint64_t tile_cycles = static_cast<uint64_t>(b) + sum_sub;
            if (gather_out) {
                t.matcher_ops += 8.0 * md * n_eff;
                if (matcher > tile_cycles) {
                    t.stall_matcher += matcher - tile_cycles;
                    tile_cycles = matcher;
                }
            }
            t.cycles += tile_cycles;
            c = (c + static_cast<size_t>(k_subs)) % S;
        }
    }
    psi.advance(total_draws);
    return t;
}

uint64_t
timeGemmDraws(const AccelConfig &cfg, int64_t m, int64_t k, int64_t n)
{
    validateTimingConfig(cfg);
    if (m <= 0 || k <= 0 || n <= 0) {
        return 0;
    }
    return static_cast<uint64_t>(ceilDiv(m, cfg.m_tile)) *
        static_cast<uint64_t>(ceilDiv(n,
                                      static_cast<int64_t>(
                                          cfg.array_cols))) *
        static_cast<uint64_t>(ceilDiv(k,
                                      static_cast<int64_t>(
                                          cfg.array_rows)));
}

uint64_t
secSorterStall(const AccelConfig &cfg, int64_t m_tokens, int64_t text,
               int64_t head_dim, int64_t heads, int64_t topk)
{
    if (topk <= 0) {
        return 0;
    }
    const int64_t a = cfg.sec_lanes;
    const int64_t b = cfg.array_rows;
    // Sorter: ceil(k/a) passes of M candidates each (Fig. 5(4)).
    const uint64_t sorter = static_cast<uint64_t>(m_tokens) *
        ceilDiv(topk, a);
    // Overlap window: the image-query attention GEMM,
    // M(M+T)h/(a*b) cycles per head across all heads (Fig. 5 bottom).
    const double window = static_cast<double>(m_tokens) *
        (m_tokens + text) * head_dim * heads /
        (static_cast<double>(a) * b);
    if (static_cast<double>(sorter) <= window) {
        return 0;
    }
    return sorter - static_cast<uint64_t>(window);
}

} // namespace focus
