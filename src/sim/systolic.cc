#include "sim/systolic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace focus
{

double
GemmTiming::utilization(const AccelConfig &cfg) const
{
    if (cycles == 0) {
        return 0.0;
    }
    return mac_ops / (static_cast<double>(cycles) * cfg.array_rows *
                      cfg.array_cols);
}

GemmTiming
timeGemm(const AccelConfig &cfg, int64_t m, int64_t k, int64_t n,
         FracSampler &psi, bool sic_input, bool gather_out)
{
    GemmTiming t;
    if (m <= 0 || k <= 0 || n <= 0) {
        return t;
    }
    const int64_t a = cfg.array_cols;
    const int64_t b = cfg.array_rows;
    const int64_t fill = (a - 1) + (b - 1);

    const int64_t m_tiles = ceilDiv(m, cfg.m_tile);
    const int64_t k_subs = ceilDiv(k, b);
    const int64_t n_tiles = ceilDiv(n, a);

    uint64_t cycles = 0;
    for (int64_t mt = 0; mt < m_tiles; ++mt) {
        const int64_t m_rows = std::min(cfg.m_tile, m - mt * cfg.m_tile);
        for (int64_t nt = 0; nt < n_tiles; ++nt) {
            const int64_t n_eff = std::min(a, n - nt * a);
            // First weight sub-tile load is exposed; the rest are
            // double-buffered behind compute.
            uint64_t tile_cycles = static_cast<uint64_t>(b);
            for (int64_t ks = 0; ks < k_subs; ++ks) {
                const int64_t k_eff = std::min(b, k - ks * b);
                int64_t p = m_rows;
                if (sic_input) {
                    const double f = clamp(psi.next(), 0.0, 1.0);
                    p = std::max<int64_t>(1, static_cast<int64_t>(
                        std::llround(f * static_cast<double>(m_rows))));
                    t.tile_lengths.push_back(p);
                }
                const uint64_t compute =
                    static_cast<uint64_t>(p) + fill;
                uint64_t sub = compute;
                if (sic_input) {
                    // Scatter: every partial sum is redistributed to
                    // all m_rows original rows through the W-wide
                    // accumulator (Fig. 8(2)); with W = 2a = 64 this
                    // hides behind compute at typical concentration
                    // (Fig. 10(d): ~5% over a 160-lane design, while
                    // 32 lanes stall ~1.5x).
                    const uint64_t scatter = ceilDiv<uint64_t>(
                        static_cast<uint64_t>(m_rows) * n_eff,
                        static_cast<uint64_t>(
                            std::max(cfg.scatter_accumulators, 1)));
                    t.scatter_ops +=
                        static_cast<double>(m_rows) * n_eff;
                    if (scatter > sub) {
                        t.stall_scatter += scatter - sub;
                        sub = scatter;
                    }
                }
                t.mac_ops += static_cast<double>(p) * k_eff * n_eff;
                tile_cycles += sub;
            }
            if (gather_out) {
                // Matcher: up to 7 compare dot-products + 1 norm per
                // output vector, one vector element per cycle per
                // matcher; overlapped with the tile's GEMM time.
                const uint64_t matcher = ceilDiv<uint64_t>(
                    8ull * static_cast<uint64_t>(m_rows),
                    static_cast<uint64_t>(std::max(cfg.sic_matchers,
                                                   1)));
                t.matcher_ops += 8.0 * static_cast<double>(m_rows) *
                    n_eff;
                if (matcher > tile_cycles) {
                    t.stall_matcher += matcher - tile_cycles;
                    tile_cycles = matcher;
                }
            }
            cycles += tile_cycles;
        }
    }
    t.cycles = cycles;
    return t;
}

uint64_t
secSorterStall(const AccelConfig &cfg, int64_t m_tokens, int64_t text,
               int64_t head_dim, int64_t heads, int64_t topk)
{
    if (topk <= 0) {
        return 0;
    }
    const int64_t a = cfg.sec_lanes;
    const int64_t b = cfg.array_rows;
    // Sorter: ceil(k/a) passes of M candidates each (Fig. 5(4)).
    const uint64_t sorter = static_cast<uint64_t>(m_tokens) *
        ceilDiv(topk, a);
    // Overlap window: the image-query attention GEMM,
    // M(M+T)h/(a*b) cycles per head across all heads (Fig. 5 bottom).
    const double window = static_cast<double>(m_tokens) *
        (m_tokens + text) * head_dim * heads /
        (static_cast<double>(a) * b);
    if (static_cast<double>(sorter) <= window) {
        return 0;
    }
    return sorter - static_cast<uint64_t>(window);
}

} // namespace focus
