/**
 * @file
 * Cycle model of a weight-stationary systolic array executing one
 * tiled GEMM, with Focus's concentrated-input streaming and scatter
 * accumulation (Sec. VI-C, Fig. 8).
 *
 * Tiling: the m x n output tile is produced by iterating ceil(K/b)
 * weight sub-tiles (k = b rows each); per sub-tile the array streams
 * the p <= m unique input vectors (p = psi * m under SIC) plus the
 * pipeline fill/drain of (a - 1) + (b - 1) cycles.  Weight loads are
 * double-buffered and hidden except the first.  This matches the
 * paper's asymptotic cost of K/b * m cycles per tile.
 *
 * Scatter: reconstructed partial sums must be replicated to all m
 * original rows each sub-tile; with W accumulator lanes this takes
 * m*a/W cycles, overlapping compute — sub-tile latency is the max of
 * the two (Fig. 10(d)).
 *
 * Gather (on the output): the similarity matcher performs up to
 * (block_size-1) comparisons per output vector, 8*m cycles per
 * m x a output tile with one matcher; it runs off the critical path
 * unless the GEMM's per-tile time K/b*m is smaller (K < 256 corner,
 * Sec. VI-A), in which case extra matchers or a stall apply.
 */

#ifndef FOCUS_SIM_SYSTOLIC_H
#define FOCUS_SIM_SYSTOLIC_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "sim/accel_config.h"

namespace focus
{

/**
 * Round-robin sampler over an empirical unique-fraction distribution;
 * falls back to a fixed mean when no distribution is available.
 */
class FracSampler
{
  public:
    FracSampler(const std::vector<double> *fracs, double mean)
        : fracs_(fracs && !fracs->empty() ? fracs : nullptr),
          mean_(mean), cursor_(0)
    {
    }

    double
    next()
    {
        if (!fracs_) {
            return mean_;
        }
        const double v = (*fracs_)[cursor_];
        cursor_ = (cursor_ + 1) % fracs_->size();
        return v;
    }

  private:
    const std::vector<double> *fracs_;
    double mean_;
    size_t cursor_;
};

/** Timing/activity result for one GEMM. */
struct GemmTiming
{
    uint64_t cycles = 0;          ///< latency including stalls
    uint64_t stall_scatter = 0;   ///< cycles lost to scatter accumulation
    uint64_t stall_matcher = 0;   ///< cycles lost to output gathering

    double mac_ops = 0.0;         ///< useful MACs executed
    double scatter_ops = 0.0;     ///< accumulator element operations
    double matcher_ops = 0.0;     ///< similarity compare element ops

    /** Tile lengths (p per input sub-tile) observed, for Fig. 13. */
    std::vector<int64_t> tile_lengths;

    /** PE utilization = mac_ops / (cycles * a * b). */
    double utilization(const AccelConfig &cfg) const;
};

/**
 * Time one logical GEMM of @p m x @p k x @p n (already including any
 * `count` replication by the caller).
 *
 * @param psi      sampler for per-(m-tile, k-subtile) input unique
 *                 fractions (1.0 when the input is dense)
 * @param gather_out whether the output stream passes the matcher
 */
GemmTiming timeGemm(const AccelConfig &cfg, int64_t m, int64_t k,
                    int64_t n, FracSampler &psi, bool sic_input,
                    bool gather_out);

/**
 * SEC schedule check (Sec. V-B): cycles of the top-k sorter
 * (M * ceil(k/a) passes) vs. the image-query attention window it
 * overlaps with; returns the non-overlapped residue (usually 0).
 */
uint64_t secSorterStall(const AccelConfig &cfg, int64_t m_tokens,
                        int64_t text, int64_t head_dim, int64_t heads,
                        int64_t topk);

} // namespace focus

#endif // FOCUS_SIM_SYSTOLIC_H
