/**
 * @file
 * Cycle model of a weight-stationary systolic array executing one
 * tiled GEMM, with Focus's concentrated-input streaming and scatter
 * accumulation (Sec. VI-C, Fig. 8).
 *
 * Tiling: the m x n output tile is produced by iterating ceil(K/b)
 * weight sub-tiles (k = b rows each); per sub-tile the array streams
 * the p <= m unique input vectors (p = psi * m under SIC) plus the
 * pipeline fill/drain of (a - 1) + (b - 1) cycles.  Weight loads are
 * double-buffered and hidden except the first.  This matches the
 * paper's asymptotic cost of K/b * m cycles per tile.
 *
 * Scatter: reconstructed partial sums must be replicated to all m
 * original rows each sub-tile; with W accumulator lanes this takes
 * m*a/W cycles, overlapping compute — sub-tile latency is the max of
 * the two (Fig. 10(d)).
 *
 * Gather (on the output): the similarity matcher performs up to
 * (block_size-1) comparisons per output vector, 8*m cycles per
 * m x a output tile with one matcher; it runs off the critical path
 * unless the GEMM's per-tile time K/b*m is smaller (K < 256 corner,
 * Sec. VI-A), in which case extra matchers or a stall apply.
 *
 * Two implementations sit behind the runtime `FOCUS_SIM_BACKEND`
 * dispatch (same contract as `FOCUS_GEMM_BACKEND` /
 * `FOCUS_MATH_BACKEND`, see common/env_dispatch.h):
 *
 *  - **walk**: the reference per-tile triple loop, kept verbatim.
 *  - **fast** (default): dense (non-SIC) GEMMs are costed in closed
 *    form over the <= 2x2 distinct (m-rows, n-cols) edge-tile bands —
 *    every per-sub-tile quantity is affine in the tile counts, and
 *    all op counters are integer-valued doubles, so the aggregated
 *    sums are bit-identical to the walk for any total below 2^53
 *    (far above paper scale).  SIC GEMMs are data-dependent — one psi
 *    draw per sub-tile — but a round-robin sampler makes every draw
 *    window a cyclic slice of the distribution, so the per-value
 *    arithmetic (p, sub-tile latency, scatter stall) is tabulated
 *    once per distinct tile geometry and each window reduces to
 *    prefix-sum lookups plus a bulk tile-length append; a mean-backed
 *    sampler collapses to closed form outright.  The draw consumption
 *    order (m-tile, n-tile, k-sub-tile, exactly one draw per
 *    sub-tile) is identical to the walk's, which
 *    `tests/test_sim_equiv.cc` asserts bit-for-bit.
 */

#ifndef FOCUS_SIM_SYSTOLIC_H
#define FOCUS_SIM_SYSTOLIC_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "sim/accel_config.h"

namespace focus
{

/**
 * Round-robin sampler over an empirical unique-fraction distribution;
 * falls back to a fixed mean when no distribution is available.
 */
class FracSampler
{
  public:
    FracSampler(const std::vector<double> *fracs, double mean)
        : fracs_(fracs && !fracs->empty() ? fracs : nullptr),
          mean_(mean), cursor_(0)
    {
    }

    double
    next()
    {
        if (!fracs_) {
            return mean_;
        }
        const double v = (*fracs_)[cursor_];
        cursor_ = (cursor_ + 1) % fracs_->size();
        return v;
    }

    /**
     * Skip @p n draws (cursor advance only).  Lets the fast backend
     * consume a whole draw window through precomputed per-value
     * tables — or a memoized timing result — while leaving the
     * sampler in exactly the state @p n next() calls would have
     * (the sampler-order invariant).
     */
    void
    advance(uint64_t n)
    {
        if (fracs_) {
            cursor_ = (cursor_ + n) % fracs_->size();
        }
    }

    /** True when drawing from an empirical distribution (stateful). */
    bool empirical() const { return fracs_ != nullptr; }

    /** The empirical distribution (nullptr when mean-backed). */
    const std::vector<double> *dist() const { return fracs_; }

    /** The fallback mean next() returns without a distribution. */
    double mean() const { return mean_; }

    /** Current round-robin position (0 when mean-backed). */
    size_t cursor() const { return cursor_; }

  private:
    const std::vector<double> *fracs_;
    double mean_;
    size_t cursor_;
};

/** Timing/activity result for one GEMM. */
struct GemmTiming
{
    uint64_t cycles = 0;          ///< latency including stalls
    uint64_t stall_scatter = 0;   ///< cycles lost to scatter accumulation
    uint64_t stall_matcher = 0;   ///< cycles lost to output gathering

    double mac_ops = 0.0;         ///< useful MACs executed
    double scatter_ops = 0.0;     ///< accumulator element operations
    double matcher_ops = 0.0;     ///< similarity compare element ops

    /** Tile lengths (p per input sub-tile) observed, for Fig. 13. */
    std::vector<int64_t> tile_lengths;

    /** PE utilization = mac_ops / (cycles * a * b). */
    double utilization(const AccelConfig &cfg) const;
};

// ---------------------------------------------------------------
// Simulator backend dispatch (FOCUS_SIM_BACKEND=walk|fast)
// ---------------------------------------------------------------

/** Cycle-model backend selected at runtime (see file comment). */
enum class SimBackend
{
    Walk, ///< reference per-tile walk, verbatim
    Fast  ///< closed-form dense + hoisted-sampler SIC (default)
};

/** Name for logging / bench banners ("walk" | "fast"). */
const char *simBackendName(SimBackend b);

/**
 * Parse a sim-backend name ("walk", "fast"); returns false on an
 * unknown name.
 */
bool parseSimBackend(const char *name, SimBackend &out);

/**
 * Currently active sim backend.  Initialized once from the
 * FOCUS_SIM_BACKEND environment variable (default Fast; panics on an
 * unknown name).
 */
SimBackend activeSimBackend();

/** Override the active sim backend. */
void setSimBackend(SimBackend b);

/**
 * Time one logical GEMM of @p m x @p k x @p n (already including any
 * `count` replication by the caller) on the active backend.
 *
 * Panics on a config with non-positive array/tile/unit dimensions —
 * callers reaching this layer must hold a validated AccelConfig (see
 * simulateAccelerator).
 *
 * @param psi      sampler for per-(m-tile, k-subtile) input unique
 *                 fractions (1.0 when the input is dense)
 * @param gather_out whether the output stream passes the matcher
 */
GemmTiming timeGemm(const AccelConfig &cfg, int64_t m, int64_t k,
                    int64_t n, FracSampler &psi, bool sic_input,
                    bool gather_out);

/** The reference per-tile walk (FOCUS_SIM_BACKEND=walk). */
GemmTiming timeGemmWalk(const AccelConfig &cfg, int64_t m, int64_t k,
                        int64_t n, FracSampler &psi, bool sic_input,
                        bool gather_out);

/** The aggregated closed-form model (FOCUS_SIM_BACKEND=fast). */
GemmTiming timeGemmFast(const AccelConfig &cfg, int64_t m, int64_t k,
                        int64_t n, FracSampler &psi, bool sic_input,
                        bool gather_out);

/**
 * Number of FracSampler draws a SIC-input timeGemm of this shape
 * consumes (one per (m-tile, n-tile, k-sub-tile)); 0 for empty
 * shapes.  The memoization layer uses this to advance a shared
 * sampler past a cached result.
 */
uint64_t timeGemmDraws(const AccelConfig &cfg, int64_t m, int64_t k,
                       int64_t n);

/**
 * SEC schedule check (Sec. V-B): cycles of the top-k sorter
 * (M * ceil(k/a) passes) vs. the image-query attention window it
 * overlaps with; returns the non-overlapped residue (usually 0).
 */
uint64_t secSorterStall(const AccelConfig &cfg, int64_t m_tokens,
                        int64_t text, int64_t head_dim, int64_t heads,
                        int64_t topk);

} // namespace focus

#endif // FOCUS_SIM_SYSTOLIC_H
