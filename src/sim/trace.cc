#include "sim/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>

#include "common/logging.h"

namespace focus
{

const char *
gemmSiteName(GemmSite s)
{
    switch (s) {
      case GemmSite::Qkv:
        return "qkv";
      case GemmSite::Qk:
        return "qk";
      case GemmSite::Pv:
        return "pv";
      case GemmSite::OProj:
        return "oproj";
      case GemmSite::GateUp:
        return "gate_up";
      case GemmSite::Down:
        return "down";
    }
    return "?";
}

double
WorkloadTrace::totalMacs() const
{
    double total = 0.0;
    for (const LayerEvents &l : layers) {
        for (const GemmEvent &g : l.gemms) {
            total += g.macs();
        }
    }
    return total;
}

int64_t
WorkloadTrace::retainedRows() const
{
    int64_t rows = 0;
    for (const LayerEvents &l : layers) {
        rows += l.rowsIn();
    }
    return rows;
}

namespace
{

/** Value of @p v at reduced layer mapped from full layer index. */
double
mapLayer(const std::vector<double> &v, int l_full, int64_t full_layers,
         double fallback)
{
    if (v.empty()) {
        return fallback;
    }
    const size_t idx = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(v.size()) - 1,
                          static_cast<int64_t>(v.size()) * l_full /
                              full_layers));
    return v[idx];
}

} // namespace

WorkloadTrace
buildTrace(const ModelProfile &model, const DatasetProfile &dataset,
           const MethodConfig &method, const FunctionalAggregate &agg)
{
    WorkloadTrace tr;
    tr.model = model.name;
    tr.dataset = dataset.name;
    tr.method = method.name();
    tr.text = dataset.full_text_tokens;
    tr.hidden = model.full_hidden;
    tr.heads = model.full_heads;
    tr.head_dim = model.full_head_dim;
    tr.ffn_inner = model.full_ffn_inner;
    tr.visual_original = static_cast<int64_t>(std::llround(
        model.visual_token_scale *
        static_cast<double>(dataset.full_visual_tokens)));
    tr.tile_fracs = agg.tile_fracs;
    tr.functional_sparsity = agg.sparsity;

    const bool is_focus = method.kind == MethodKind::Focus;
    const bool sec_on = is_focus && method.focus.sec_enable;
    const bool sic_on = is_focus && method.focus.sic_enable;

    const int64_t L = model.full_layers;
    const int64_t m_vis = tr.visual_original;
    const int64_t t_cnt = dataset.full_text_tokens;

    // Input-side reduction for the token-merging baselines: the
    // measured initial keep fraction.
    double input_keep = 1.0;
    if (!is_focus && !agg.keep_in.empty()) {
        input_keep = agg.keep_in.front();
    }
    tr.visual0 = static_cast<int64_t>(
        std::llround(input_keep * static_cast<double>(m_vis)));

    int64_t vis_cur = tr.visual0;
    for (int64_t l = 0; l < L; ++l) {
        LayerEvents le;
        le.text = t_cnt;
        le.visual_in = vis_cur;

        // Token counts after this layer.
        int64_t vis_next = vis_cur;
        if (sec_on && method.focus.sec.select == SecSelect::TopK) {
            // Fixed schedule: exact Tbl. I retention at full depth.
            const double keep = model.retentionAfterLayer(
                static_cast<int>(l), static_cast<int>(L));
            const int64_t target = static_cast<int64_t>(
                std::llround(keep * static_cast<double>(m_vis)));
            if (target < vis_cur &&
                model.pruneAtLayer(static_cast<int>(l),
                                   static_cast<int>(L))) {
                vis_next = target;
                le.sec_topk = target;
            }
        } else if (sec_on) {
            // Adaptive selection (top-p / threshold): token counts
            // come from the measured per-layer keep fractions.
            const double keep_out = mapLayer(
                agg.keep_out, static_cast<int>(l), L, 1.0);
            const int64_t target = static_cast<int64_t>(
                std::llround(keep_out * static_cast<double>(m_vis)));
            if (target < vis_cur) {
                vis_next = target;
                le.sec_topk = target;
            }
        }
        le.visual_out = vis_next;

        const int64_t rows_in = le.rowsIn();
        const int64_t rows_out = le.rowsOut();
        const int lf = static_cast<int>(l);

        const double psi_qkv = sic_on && l > 0
            ? mapLayer(agg.psi_qkv, lf, L, 1.0) : 1.0;
        const double psi_oproj = sic_on
            ? mapLayer(agg.psi_oproj, lf, L, 1.0) : 1.0;
        const double psi_ffn = sic_on
            ? mapLayer(agg.psi_ffn, lf, L, 1.0) : 1.0;
        const double psi_down = sic_on
            ? mapLayer(agg.psi_down, lf, L, 1.0) : 1.0;
        // The gathered output of the FFN feeds the next layer's QKV.
        const double psi_next_qkv = sic_on
            ? mapLayer(agg.psi_qkv,
                       static_cast<int>(std::min<int64_t>(l + 1, L - 1)),
                       L, 1.0)
            : 1.0;

        // Q/K/V projections.
        le.gemms.push_back(GemmEvent{GemmSite::Qkv, rows_in, tr.hidden,
                                     tr.hidden, 3, psi_qkv, false, 1.0});
        // Attention scores (per head).
        le.gemms.push_back(GemmEvent{GemmSite::Qk, rows_in,
                                     tr.head_dim, rows_in,
                                     static_cast<int>(tr.heads), 1.0,
                                     false, 1.0});
        // PV: only surviving rows are computed (Sec. V-C); output is
        // gathered (footnote 1).
        le.gemms.push_back(GemmEvent{GemmSite::Pv, rows_out, rows_in,
                                     tr.head_dim,
                                     static_cast<int>(tr.heads), 1.0,
                                     sic_on, psi_oproj});
        // O projection; its (post-residual) output is gathered.
        le.gemms.push_back(GemmEvent{GemmSite::OProj, rows_out,
                                     tr.hidden, tr.hidden, 1,
                                     psi_oproj, sic_on, psi_ffn});
        // FFN gate/up; inner activations gathered.
        le.gemms.push_back(GemmEvent{GemmSite::GateUp, rows_out,
                                     tr.hidden, tr.ffn_inner, 2,
                                     psi_ffn, sic_on, psi_down});
        // FFN down; the block output feeds the next layer's QKV.
        le.gemms.push_back(GemmEvent{GemmSite::Down, rows_out,
                                     tr.ffn_inner, tr.hidden, 1,
                                     psi_down, sic_on, psi_next_qkv});

        tr.layers.push_back(std::move(le));
        vis_cur = vis_next;
    }
    return tr;
}

WorkloadTrace
buildDenseTrace(const ModelProfile &model, const DatasetProfile &dataset)
{
    FunctionalAggregate agg;
    MethodConfig dense = MethodConfig::dense();
    return buildTrace(model, dataset, dense, agg);
}

namespace
{

/** Join the distinct values of @p get over @p parts with '+'. */
std::string
joinUnique(const std::vector<const WorkloadTrace *> &parts,
           const std::string &(*get)(const WorkloadTrace &))
{
    std::vector<std::string> seen;
    for (const WorkloadTrace *p : parts) {
        const std::string &v = get(*p);
        if (std::find(seen.begin(), seen.end(), v) == seen.end()) {
            seen.push_back(v);
        }
    }
    std::string out;
    for (const std::string &v : seen) {
        if (!out.empty()) {
            out += "+";
        }
        out += v;
    }
    return out;
}

/**
 * The single event of @p site in @p layer (panics if not unique).
 * Shared-weight sites stay unique even in fused traces.
 */
const GemmEvent &
findSite(const LayerEvents &layer, GemmSite site)
{
    const GemmEvent *found = nullptr;
    for (const GemmEvent &g : layer.gemms) {
        if (g.site == site) {
            if (found) {
                panic("fuseTraces: duplicate %s event in layer",
                      gemmSiteName(site));
            }
            found = &g;
        }
    }
    if (!found) {
        panic("fuseTraces: missing %s event in layer",
              gemmSiteName(site));
    }
    return *found;
}

/**
 * Append every event of @p site from each part's layer, in part
 * order.  Attention events are per-request, so a fused part
 * contributes one per original request — re-fusing an already-fused
 * trace keeps them all.
 */
void
appendSite(const std::vector<const WorkloadTrace *> &parts,
           size_t layer, GemmSite site, std::vector<GemmEvent> &out)
{
    for (const WorkloadTrace *p : parts) {
        for (const GemmEvent &g : p->layers[layer].gemms) {
            if (g.site == site) {
                out.push_back(g);
            }
        }
    }
}

/**
 * Merge one shared-weight site across parts: rows concatenate and
 * psi values are row-weighted so total MACs are preserved.
 */
GemmEvent
fuseSharedSite(const std::vector<const WorkloadTrace *> &parts,
               size_t layer, GemmSite site)
{
    GemmEvent fused;
    fused.site = site;
    double m_psi_in = 0.0;
    double m_psi_out = 0.0;
    for (const WorkloadTrace *p : parts) {
        const GemmEvent &g = findSite(p->layers[layer], site);
        if (fused.m == 0) {
            fused.k = g.k;
            fused.n = g.n;
            fused.count = g.count;
        } else if (g.k != fused.k || g.n != fused.n ||
                   g.count != fused.count) {
            panic("fuseTraces: %s weight shapes differ across parts "
                  "(%" PRId64 "x%" PRId64 " c%d vs %" PRId64
                  "x%" PRId64 " c%d)",
                  gemmSiteName(site), g.k, g.n, g.count, fused.k,
                  fused.n, fused.count);
        }
        fused.m += g.m;
        m_psi_in += static_cast<double>(g.m) * g.psi_in;
        // A dense part streams its output uncompressed: weight its
        // share with psi = 1 so fused write traffic is preserved.
        m_psi_out += static_cast<double>(g.m) *
            (g.gather_out ? g.psi_out : 1.0);
        fused.gather_out = fused.gather_out || g.gather_out;
    }
    const double m_total = static_cast<double>(fused.m);
    fused.psi_in = fused.m > 0 ? m_psi_in / m_total : 1.0;
    fused.psi_out = fused.m > 0 ? m_psi_out / m_total : 1.0;
    return fused;
}

} // namespace

WorkloadTrace
fuseTraces(const std::vector<const WorkloadTrace *> &parts)
{
    if (parts.empty()) {
        panic("fuseTraces: empty part list");
    }
    for (const WorkloadTrace *p : parts) {
        if (!p) {
            panic("fuseTraces: null part");
        }
    }
    if (parts.size() == 1) {
        return *parts[0];
    }

    const WorkloadTrace &head = *parts[0];
    for (const WorkloadTrace *p : parts) {
        if (p->hidden != head.hidden || p->heads != head.heads ||
            p->head_dim != head.head_dim ||
            p->ffn_inner != head.ffn_inner ||
            p->layers.size() != head.layers.size()) {
            fatal("fuseTraces: incompatible backbone geometry "
                  "('%s' vs '%s'); co-batching requires shared "
                  "weights",
                  p->model.c_str(), head.model.c_str());
        }
    }

    WorkloadTrace tr;
    tr.model = joinUnique(
        parts, +[](const WorkloadTrace &t) -> const std::string & {
            return t.model;
        });
    tr.dataset = joinUnique(
        parts, +[](const WorkloadTrace &t) -> const std::string & {
            return t.dataset;
        });
    tr.method = joinUnique(
        parts, +[](const WorkloadTrace &t) -> const std::string & {
            return t.method;
        });
    tr.hidden = head.hidden;
    tr.heads = head.heads;
    tr.head_dim = head.head_dim;
    tr.ffn_inner = head.ffn_inner;
    tr.batch_size = 0;

    double macs_total = 0.0;
    double sparsity_weighted = 0.0;
    for (const WorkloadTrace *p : parts) {
        tr.visual0 += p->visual0;
        tr.visual_original += p->visual_original;
        tr.text += p->text;
        tr.batch_size += std::max(1, p->batch_size);
        const double macs = p->totalMacs();
        macs_total += macs;
        sparsity_weighted += p->functional_sparsity * macs;
        tr.tile_fracs.insert(tr.tile_fracs.end(),
                             p->tile_fracs.begin(),
                             p->tile_fracs.end());
    }
    tr.functional_sparsity =
        macs_total > 0.0 ? sparsity_weighted / macs_total : 0.0;

    const size_t L = head.layers.size();
    tr.layers.reserve(L);
    for (size_t l = 0; l < L; ++l) {
        LayerEvents le;
        for (const WorkloadTrace *p : parts) {
            const LayerEvents &pl = p->layers[l];
            le.visual_in += pl.visual_in;
            le.visual_out += pl.visual_out;
            le.text += pl.text;
            le.sec_topk += pl.sec_topk;
            le.cached_visual += pl.cached_visual;
            if (pl.queries.empty()) {
                le.queries.push_back(QueryRows{pl.visual_in,
                                               pl.visual_out, pl.text,
                                               pl.sec_topk,
                                               pl.cached_visual});
            } else {
                // Re-fusing an already-fused trace keeps the
                // original per-request spans flat.
                le.queries.insert(le.queries.end(),
                                  pl.queries.begin(),
                                  pl.queries.end());
            }
        }

        le.gemms.push_back(fuseSharedSite(parts, l, GemmSite::Qkv));
        appendSite(parts, l, GemmSite::Qk, le.gemms);
        appendSite(parts, l, GemmSite::Pv, le.gemms);
        le.gemms.push_back(fuseSharedSite(parts, l, GemmSite::OProj));
        le.gemms.push_back(fuseSharedSite(parts, l, GemmSite::GateUp));
        le.gemms.push_back(fuseSharedSite(parts, l, GemmSite::Down));

        tr.layers.push_back(std::move(le));
    }
    return tr;
}

WorkloadTrace
applyPrefixCache(const WorkloadTrace &trace)
{
    if (trace.batch_size != 1) {
        panic("applyPrefixCache: want a single-query trace, got a "
              "fused batch of %d", trace.batch_size);
    }
    if (trace.tp_degree != 1) {
        panic("applyPrefixCache: want an unsplit trace, got a "
              "tensor-parallel shard (tp=%d)", trace.tp_degree);
    }
    if (trace.layers.empty()) {
        panic("applyPrefixCache: empty trace");
    }

    WorkloadTrace tr = trace;
    // No visual rows enter layer 0 — the retained set is restored
    // from the cache, not recomputed from the frame stream.
    tr.visual0 = 0;
    // SIC never runs on the hit path, so the empirical per-tile
    // distribution must not be sampled (sampler-order invariant).
    tr.tile_fracs.clear();
    tr.functional_sparsity = 0.0;

    for (LayerEvents &le : tr.layers) {
        const int64_t cached = le.visual_in;
        const int64_t text = le.text;
        const int64_t keys = text + cached;
        le.cached_visual = cached;
        le.visual_in = 0;
        le.visual_out = 0;
        le.sec_topk = 0;
        le.queries.clear();

        for (GemmEvent &g : le.gemms) {
            // Text rows only through every site; the attention
            // events keep the full original key/value set so the
            // cached-KV stream (w_bytes per query m-tile) and the
            // softmax width are charged against the cached rows.
            switch (g.site) {
              case GemmSite::Qk:
                g.m = text;
                g.n = keys;
                break;
              case GemmSite::Pv:
                g.m = text;
                g.k = keys;
                break;
              case GemmSite::Qkv:
              case GemmSite::OProj:
              case GemmSite::GateUp:
              case GemmSite::Down:
                g.m = text;
                break;
            }
            g.psi_in = 1.0;
            g.gather_out = false;
            g.psi_out = 1.0;
        }
    }
    return tr;
}

TraceWork
traceWork(const WorkloadTrace &trace)
{
    TraceWork w;
    w.retained_rows = trace.retainedRows();
    for (const LayerEvents &l : trace.layers) {
        for (const GemmEvent &g : l.gemms) {
            w.dense_macs += g.m * g.k * g.n * g.count;
            w.weighted_macs += g.macs();
            w.weight_bytes += g.k * g.n * 2 * g.count;
        }
    }
    return w;
}

namespace
{

/** Shard @p shard's share of an exact integer @p total / @p shards
    partition (the first total%shards shards get one extra). */
int64_t
shardShare(int64_t total, int shard, int shards)
{
    return total / shards + (shard < total % shards ? 1 : 0);
}

} // namespace

std::vector<WorkloadTrace>
splitTensorParallel(const WorkloadTrace &trace, int tp)
{
    if (tp <= 0) {
        fatal("splitTensorParallel: invalid split factor %d (want a "
              "positive tensor-parallel degree)", tp);
    }
    if (tp == 1) {
        return {trace};
    }
    if (static_cast<int64_t>(tp) > trace.heads) {
        fatal("splitTensorParallel: invalid split factor %d (trace "
              "has %" PRId64 " attention heads; a shard would own "
              "none)", tp, trace.heads);
    }

    std::vector<WorkloadTrace> shards;
    shards.reserve(static_cast<size_t>(tp));
    for (int r = 0; r < tp; ++r) {
        WorkloadTrace sh = trace;
        sh.tp_degree = tp;
        sh.tp_rank = r;
        // The shard's private head and FFN-inner slices drive the
        // per-shard softmax / swiglu SFU accounting.
        sh.heads = shardShare(trace.heads, r, tp);
        sh.ffn_inner = shardShare(trace.ffn_inner, r, tp);
        for (LayerEvents &le : sh.layers) {
            for (GemmEvent &g : le.gemms) {
                switch (g.site) {
                  case GemmSite::Qkv:
                  case GemmSite::GateUp:
                    // Column-parallel: output dim partitions.
                    g.n = shardShare(g.n, r, tp);
                    break;
                  case GemmSite::OProj:
                  case GemmSite::Down:
                    // Row-parallel: inner dim partitions; the partial
                    // sums meet in the post-layer all-reduce.
                    g.k = shardShare(g.k, r, tp);
                    break;
                  case GemmSite::Qk:
                  case GemmSite::Pv:
                    // Per-head events partition by head count.
                    g.count = static_cast<int>(
                        shardShare(g.count, r, tp));
                    break;
                }
            }
        }
        shards.push_back(std::move(sh));
    }
    return shards;
}

std::vector<WorkloadTrace>
splitDataParallel(const std::vector<const WorkloadTrace *> &parts,
                  int dp)
{
    if (dp <= 0) {
        fatal("splitDataParallel: invalid split factor %d (want a "
              "positive data-parallel degree)", dp);
    }
    if (static_cast<size_t>(dp) > parts.size()) {
        fatal("splitDataParallel: invalid split factor %d for %zu "
              "request parts (a group would be empty)", dp,
              parts.size());
    }
    std::vector<WorkloadTrace> groups;
    groups.reserve(static_cast<size_t>(dp));
    for (int g = 0; g < dp; ++g) {
        std::vector<const WorkloadTrace *> sub;
        for (size_t i = static_cast<size_t>(g); i < parts.size();
             i += static_cast<size_t>(dp)) {
            sub.push_back(parts[i]);
        }
        groups.push_back(fuseTraces(sub));
    }
    return groups;
}

} // namespace focus
