/**
 * @file
 * Full-scale workload traces for the timing model.
 *
 * A trace describes, layer by layer at *paper scale* (3584 hidden, 28
 * layers, ~6.3k visual tokens), every GEMM the accelerator executes
 * together with the concentration state: active token rows, the
 * unique-vector fraction of the (gathered) input stream, and whether
 * the output passes through Similarity Gather.  Traces are built from
 * functional measurements at reduced scale (see eval/), with SEC
 * token counts reproduced exactly from the Tbl. I retention schedule.
 */

#ifndef FOCUS_SIM_TRACE_H
#define FOCUS_SIM_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "vlm/method.h"
#include "workload/profiles.h"

namespace focus
{

/** GEMM site within a transformer layer. */
enum class GemmSite
{
    Qkv,    ///< Q/K/V projections (count = 3)
    Qk,     ///< attention scores (per head)
    Pv,     ///< attention values (per head)
    OProj,  ///< output projection
    GateUp, ///< FFN gate and up (count = 2)
    Down,   ///< FFN down
};

const char *gemmSiteName(GemmSite s);

/** One GEMM execution (possibly replicated `count` times). */
struct GemmEvent
{
    GemmSite site = GemmSite::Qkv;
    int64_t m = 0;  ///< token rows
    int64_t k = 0;  ///< inner dim
    int64_t n = 0;  ///< output dim
    int count = 1;  ///< identical instances (heads, gate+up, ...)

    /** Unique-vector fraction of the input stream (1 = dense). */
    double psi_in = 1.0;
    /** Output passes through Similarity Gather. */
    bool gather_out = false;
    /** Unique fraction of the gathered output (write compression). */
    double psi_out = 1.0;

    double
    macs() const
    {
        return static_cast<double>(m) * k * n * count * psi_in;
    }
};

/**
 * Per-request row span of one layer inside a fused multi-query trace.
 * Attention, softmax and SEC are private to a request — a query never
 * attends across batch boundaries — so the cost models need the
 * per-request partition of the concatenated rows, not just the sums.
 */
struct QueryRows
{
    int64_t visual_in = 0;
    int64_t visual_out = 0;
    int64_t text = 0;
    /** Top-k size if SEC prunes this request at this layer, else 0. */
    int64_t sec_topk = 0;
    /**
     * Prefix-cached context rows: retained visual tokens restored
     * from the cross-request cache (serve/prefix_cache.h) instead of
     * recomputed.  They contribute attention keys/values (the Qk/Pv
     * events stream them, the softmax normalizes over them) but no
     * query rows — rowsIn/rowsOut stay the *computed* row counts.
     */
    int64_t cached_visual = 0;

    int64_t rowsIn() const { return visual_in + text; }
    int64_t rowsOut() const { return visual_out + text; }
};

/** One transformer layer's events. */
struct LayerEvents
{
    int64_t visual_in = 0;
    int64_t visual_out = 0;
    int64_t text = 0;
    /** Top-k size if SEC prunes at this layer, else 0. */
    int64_t sec_topk = 0;
    /** Prefix-cached context rows (see QueryRows::cached_visual). */
    int64_t cached_visual = 0;
    std::vector<GemmEvent> gemms;

    /**
     * Per-request spans when this layer belongs to a fused batch
     * trace (see fuseTraces); empty for single-query traces, where
     * the scalar fields above describe the one request.
     */
    std::vector<QueryRows> queries;

    int64_t rowsIn() const { return visual_in + text; }
    int64_t rowsOut() const { return visual_out + text; }
};

/** A complete accelerator workload. */
struct WorkloadTrace
{
    std::string model;
    std::string dataset;
    std::string method;

    int64_t visual0 = 0;  ///< visual tokens entering layer 0
    int64_t visual_original = 0; ///< before any input reduction
    int64_t text = 0;
    int64_t hidden = 0;
    int64_t heads = 0;
    int64_t head_dim = 0;
    int64_t ffn_inner = 0;

    std::vector<LayerEvents> layers;

    /**
     * Empirical unique-fraction distribution over (tile, slice)
     * pairs, pooled across layers; the timing model samples it
     * round-robin for per-tile variation (Fig. 13).
     *
     * Sampler-order invariant: within one simulateAccelerator call a
     * single round-robin cursor walks this vector, consuming exactly
     * one draw per (m-tile, n-tile, k-sub-tile) of every SIC-input
     * GEMM, in layer -> event -> m-tile -> n-tile -> k-sub-tile
     * order.  Both cycle-model backends (FOCUS_SIM_BACKEND=walk|fast)
     * and the fast backend's memoization preserve this order, which
     * is what makes their outputs bit-identical — see
     * docs/SIMULATOR.md and tests/test_sim_equiv.cc.
     */
    std::vector<double> tile_fracs;

    /** Functional computation sparsity (cross-check). */
    double functional_sparsity = 0.0;

    /** Requests fused into this trace (1 = single query). */
    int batch_size = 1;

    /**
     * Tensor-parallel group size this trace is a shard of (1 =
     * unsplit).  The accelerator model adds ring-collective
     * interconnect cost per layer only when tp_degree > 1, so an
     * unsplit trace's metrics are bit-identical to pre-split builds.
     */
    int tp_degree = 1;
    /** Shard index within the tensor-parallel group. */
    int tp_rank = 0;

    /** Total GEMM MACs of the trace. */
    double totalMacs() const;

    /**
     * Serving cost key: total active rows summed over layers
     * (rowsIn).  Proportional to the retained-token footprint, so the
     * concentration-aware scheduler can group requests whose SEC
     * schedules leave similar work behind.
     */
    int64_t retainedRows() const;
};

/**
 * Per-reduced-layer aggregates measured by the functional runs; the
 * bridge between the functional model and the full-scale trace.
 */
struct FunctionalAggregate
{
    int reduced_layers = 0;

    /** Mean active-visual fraction entering / leaving each layer. */
    std::vector<double> keep_in;
    std::vector<double> keep_out;

    /** Mean unique-vector fraction per gather site per layer. */
    std::vector<double> psi_qkv;
    std::vector<double> psi_oproj;
    std::vector<double> psi_ffn;
    std::vector<double> psi_down;

    /** Pooled per-(tile,slice) unique fractions. */
    std::vector<double> tile_fracs;

    double accuracy = 0.0;
    double sparsity = 0.0;
    int64_t samples = 0;
};

/**
 * Build a full-scale trace.
 *
 * For MethodKind::Focus the per-layer token counts follow the exact
 * Tbl. I retention schedule at full depth; psi values map from the
 * reduced functional layers.  For baselines the measured keep
 * fractions apply uniformly (input-side reduction).
 */
WorkloadTrace buildTrace(const ModelProfile &model,
                         const DatasetProfile &dataset,
                         const MethodConfig &method,
                         const FunctionalAggregate &agg);

/** Dense trace (no method, no functional data needed). */
WorkloadTrace buildDenseTrace(const ModelProfile &model,
                              const DatasetProfile &dataset);

/**
 * Fuse per-request traces into one multi-query batch trace.
 *
 * All parts must share the backbone geometry (hidden, heads,
 * head_dim, ffn_inner, layer count); token counts, methods and
 * datasets may differ.  Per layer:
 *
 *  - Shared-weight GEMMs (QKV, O-proj, FFN gate/up/down) merge into
 *    one event with the row counts concatenated (m = sum m_i), so
 *    the accelerator streams each weight panel once per fused m-tile
 *    sweep instead of once per request.  The unique-vector fractions
 *    are row-weighted so the fused MAC total equals the sum of the
 *    parts'.
 *  - Attention GEMMs (QK^T, PV) stay one event per request: a query
 *    only attends within its own token rows.
 *  - LayerEvents::queries records the per-request spans so the SFU
 *    softmax and SEC sorter models cost sum(r_i^2), not (sum r_i)^2.
 *
 * A single-part fusion returns the input verbatim, which makes the
 * batch-of-1 serving path bit-identical to the unbatched simulation.
 * Parts may themselves be fused traces: re-fusion flattens their
 * per-request spans and attention events, so incrementally grown
 * batches behave like one flat fusion.
 */
WorkloadTrace fuseTraces(const std::vector<const WorkloadTrace *> &parts);

/**
 * Derive the prefix-cache *hit* trace of a single-query trace: the
 * retained visual token set is restored from the cross-request cache
 * (serve/prefix_cache.h) instead of recomputed, so only the text
 * (question) rows flow through the backbone while the cached rows
 * serve as attention context.
 *
 * Per layer: the layer's original visual_in moves to cached_visual,
 * visual_in/visual_out drop to zero, and SEC is disabled (the
 * retained set was already concentrated when the slab was built).
 * The projection and FFN GEMMs shrink to the text rows; QK^T keeps
 * every original key (n = text + cached) and PV every original value
 * row (k = text + cached), which is exactly how the accelerator
 * model charges the cached-KV DRAM streaming — the attention events'
 * weight-stream term reads K/V per query m-tile.  SIC is off on the
 * hit path (psi = 1, no gathers, no tile_fracs draws): the text rows
 * are too few to amortize a concentration pass.
 *
 * A hit trace with zero cached rows would be a degenerate request;
 * the function requires an unfused (batch_size == 1), unsplit
 * (tp_degree == 1) input and panics otherwise — hits are decided per
 * request before fusion, and parallel splits happen downstream.
 */
WorkloadTrace applyPrefixCache(const WorkloadTrace &trace);

/**
 * Exact work accounting of a trace, on quantities that partition
 * *exactly* under the parallel splits below.  The psi-weighted MAC
 * total (GemmEvent::macs) is floating point and only approximately
 * distributive, so conservation tests assert on the integer fields
 * with equality and on weighted_macs with a relative tolerance.
 */
struct TraceWork
{
    /** Sum of m*k*n*count over all events (psi-free, exact). */
    int64_t dense_macs = 0;
    /** Sum of GemmEvent::macs() (psi-weighted, floating point). */
    double weighted_macs = 0.0;
    /** Sum of per-layer active rows (WorkloadTrace::retainedRows). */
    int64_t retained_rows = 0;
    /** Sum of k*n*2*count over all events (one weight-panel pass). */
    int64_t weight_bytes = 0;
};

TraceWork traceWork(const WorkloadTrace &trace);

/**
 * Megatron-style tensor-parallel split of @p trace into @p tp shards.
 *
 * Per layer: QKV and FFN gate/up are column-parallel (the output dim
 * n partitions), O-proj and FFN down are row-parallel (the inner dim
 * k partitions), and the per-head attention events (QK^T, PV)
 * partition by head count.  Every dimension is apportioned with an
 * exact integer split (shard i gets total/tp plus one of the
 * remainder), so dense MACs and weight bytes sum back to the unsplit
 * totals exactly; token rows replicate — every shard streams the full
 * activation set, which is what the post-layer all-reduce pays for.
 * Shards carry tp_degree/tp_rank so simulateAccelerator adds the
 * reduce-scatter + all-gather interconnect term after O-proj and
 * down; tp == 1 returns the input verbatim.
 *
 * Fatal when tp is non-positive or exceeds the head count (a shard
 * would own no attention head).
 */
std::vector<WorkloadTrace> splitTensorParallel(const WorkloadTrace &trace,
                                               int tp);

/**
 * Data-parallel split: partition the per-request @p parts round-robin
 * across @p dp engine groups and fuse each group (fuseTraces).  Rows
 * and MACs partition exactly; weights replicate per group (each
 * engine streams the full panel set).  No interconnect term —
 * inference data parallelism needs no gradient exchange.
 *
 * Fatal when dp is non-positive or exceeds the part count (a group
 * would be empty).
 */
std::vector<WorkloadTrace>
splitDataParallel(const std::vector<const WorkloadTrace *> &parts, int dp);

} // namespace focus

#endif // FOCUS_SIM_TRACE_H
