#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/env_dispatch.h"
#include "common/half.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

// Portable restrict qualifier: the microkernels rely on it so the
// compiler can vectorize the packed-panel loops without alias checks.
#if defined(_MSC_VER)
#define FOCUS_RESTRICT __restrict
#else
#define FOCUS_RESTRICT __restrict__
#endif

// Function multi-versioning for the hot FP kernels: on x86-64 the
// loader picks the widest clone the CPU supports (x86-64-v3 = AVX2 +
// FMA, then AVX2, then baseline SSE2) — no -march flags, so the
// binary stays portable.  The v3 clone contracts each mul+add step
// into one FMA, which changes rounding vs the baseline clone; to keep
// the blocked-vs-naive bit-identity invariant machine-independent,
// the SAME clone list is applied to the naive reference kernels in
// this TU, so every backend contracts identically on any given
// machine.  (Cross-machine value drift already exists via libm; all
// determinism contracts in this repo are within-build.)
#ifndef __has_attribute
#define __has_attribute(x) 0
#endif
#if defined(__x86_64__) && __has_attribute(target_clones) &&          \
    defined(__linux__)
#define FOCUS_KERNEL_CLONES                                           \
    __attribute__((                                                   \
        target_clones("default", "avx2", "arch=x86-64-v3")))
#else
#define FOCUS_KERNEL_CLONES
#endif

namespace focus
{
namespace kernels
{

namespace
{

// -----------------------------------------------------------------
// Backend selection
// -----------------------------------------------------------------

GemmBackend
backendFromEnv()
{
    static const char *const names[] = {"portable", "naive", "blas"};
    const GemmBackend b = static_cast<GemmBackend>(envBackendChoice(
        "FOCUS_GEMM_BACKEND", names, 3,
        static_cast<int>(GemmBackend::Portable)));
    if (b == GemmBackend::Blas && !blasAvailable()) {
        panic("FOCUS_GEMM_BACKEND=blas but this binary was built "
              "without FOCUS_WITH_BLAS");
    }
    return b;
}

std::atomic<GemmBackend> g_backend{backendFromEnv()};

MathBackend
mathBackendFromEnv()
{
    static const char *const names[] = {"exact", "vector"};
    return static_cast<MathBackend>(envBackendChoice(
        "FOCUS_MATH_BACKEND", names, 2,
        static_cast<int>(MathBackend::Exact)));
}

std::atomic<MathBackend> g_math_backend{mathBackendFromEnv()};

// -----------------------------------------------------------------
// Packing
//
// B is packed once per gemm call into column panels of kNr: panel jp
// holds, for each depth step p, the kNr values b[p][jp*kNr .. +kNr),
// zero-padded past n.  The microkernel then streams one contiguous
// kNr-wide panel slice per K block.  A is packed per (M block, K
// block) into row quads of kMr: quad iq holds, for each depth step p,
// the kMr values a[iq*kMr .. +kMr)[p], zero-padded past m.  fp16
// operand rounding happens here, once per element, so the microkernel
// hot loop stays branch-free.
// -----------------------------------------------------------------

void
packB(const float *b, int64_t ldb, int64_t k, int64_t n, bool fp16,
      float *FOCUS_RESTRICT dst)
{
    const int64_t full = (n / kNr) * kNr;
    const int64_t panel_stride = k * kNr;
    // Row-major pass over B: each source row is read once
    // sequentially and scattered into the per-panel slots for depth
    // step p.
    for (int64_t p = 0; p < k; ++p) {
        const float *FOCUS_RESTRICT src = b + p * ldb;
        float *out = dst + p * kNr;
        int64_t j0 = 0;
        if (fp16) {
            for (; j0 < full; j0 += kNr, out += panel_stride) {
                for (int64_t j = 0; j < kNr; ++j) {
                    out[j] = fp16Round(src[j0 + j]);
                }
            }
        } else {
            for (; j0 < full; j0 += kNr, out += panel_stride) {
                for (int64_t j = 0; j < kNr; ++j) {
                    out[j] = src[j0 + j];
                }
            }
        }
        if (j0 < n) {
            const int64_t nr = n - j0;
            for (int64_t j = 0; j < nr; ++j) {
                out[j] = fp16 ? fp16Round(src[j0 + j]) : src[j0 + j];
            }
            for (int64_t j = nr; j < kNr; ++j) {
                out[j] = 0.0f;
            }
        }
    }
}

void
packA(const float *a, int64_t lda, const int64_t *a_rows, int64_t i0,
      int64_t mb, int64_t k0, int64_t kc, bool fp16,
      float *FOCUS_RESTRICT dst)
{
    const int64_t full = (mb / kMr) * kMr;
    int64_t iq = 0;
    // Full quads: branch-free 4-row interleave.
    for (; iq < full; iq += kMr, dst += kMr * kc) {
        const float *FOCUS_RESTRICT r0;
        const float *FOCUS_RESTRICT r1;
        const float *FOCUS_RESTRICT r2;
        const float *FOCUS_RESTRICT r3;
        if (a_rows != nullptr) {
            r0 = a + a_rows[i0 + iq] * lda + k0;
            r1 = a + a_rows[i0 + iq + 1] * lda + k0;
            r2 = a + a_rows[i0 + iq + 2] * lda + k0;
            r3 = a + a_rows[i0 + iq + 3] * lda + k0;
        } else {
            r0 = a + (i0 + iq) * lda + k0;
            r1 = r0 + lda;
            r2 = r1 + lda;
            r3 = r2 + lda;
        }
        if (fp16) {
            for (int64_t p = 0; p < kc; ++p) {
                dst[p * kMr] = fp16Round(r0[p]);
                dst[p * kMr + 1] = fp16Round(r1[p]);
                dst[p * kMr + 2] = fp16Round(r2[p]);
                dst[p * kMr + 3] = fp16Round(r3[p]);
            }
        } else {
            for (int64_t p = 0; p < kc; ++p) {
                dst[p * kMr] = r0[p];
                dst[p * kMr + 1] = r1[p];
                dst[p * kMr + 2] = r2[p];
                dst[p * kMr + 3] = r3[p];
            }
        }
    }
    // Trailing partial quad: zero-fill, then copy the valid rows.
    if (iq < mb) {
        std::fill(dst, dst + kMr * kc, 0.0f);
        for (int64_t r = 0; iq + r < mb; ++r) {
            const int64_t i = i0 + iq + r;
            const int64_t src_row = a_rows != nullptr ? a_rows[i] : i;
            const float *FOCUS_RESTRICT src = a + src_row * lda + k0;
            for (int64_t p = 0; p < kc; ++p) {
                dst[p * kMr + r] = fp16 ? fp16Round(src[p]) : src[p];
            }
        }
    }
}

// -----------------------------------------------------------------
// Microkernels
//
// micro4x8: the full-tile kernel.  ap is a packed kMr-row quad
// (kMr values per depth step), bp a packed kNr-wide panel slice.  On
// the first K block (load_c false) the accumulators start at zero —
// folding the output zeroing into the kernel; later K blocks load the
// partial C tile first and accumulation across K blocks stays
// strictly sequential in k per element — the bit-exactness invariant.
// -----------------------------------------------------------------

FOCUS_KERNEL_CLONES void
micro4x8(int64_t kc, const float *FOCUS_RESTRICT ap,
         const float *FOCUS_RESTRICT bp, float *FOCUS_RESTRICT c,
         int64_t ldc, bool load_c)
{
    float acc[kMr][kNr] = {};
    if (load_c) {
        for (int64_t r = 0; r < kMr; ++r) {
            for (int64_t j = 0; j < kNr; ++j) {
                acc[r][j] = c[r * ldc + j];
            }
        }
    }
    // Per-row inner loops: each row's 8-wide update is an independent
    // j-loop, which GCC turns into exactly one broadcast + one 8-lane
    // multiply-add per row per depth step.
    for (int64_t p = 0; p < kc; ++p) {
        for (int64_t r = 0; r < kMr; ++r) {
            const float ar = ap[r];
            for (int64_t j = 0; j < kNr; ++j) {
                acc[r][j] += ar * bp[j];
            }
        }
        ap += kMr;
        bp += kNr;
    }
    for (int64_t r = 0; r < kMr; ++r) {
        for (int64_t j = 0; j < kNr; ++j) {
            c[r * ldc + j] = acc[r][j];
        }
    }
}

/** Edge-tile variant: identical accumulation, partial C load/store. */
FOCUS_KERNEL_CLONES void
microEdge(int64_t kc, const float *FOCUS_RESTRICT ap,
          const float *FOCUS_RESTRICT bp, float *FOCUS_RESTRICT c,
          int64_t ldc, int64_t mr, int64_t nr, bool load_c)
{
    float acc[kMr][kNr] = {};
    if (load_c) {
        for (int64_t r = 0; r < mr; ++r) {
            for (int64_t j = 0; j < nr; ++j) {
                acc[r][j] = c[r * ldc + j];
            }
        }
    }
    for (int64_t p = 0; p < kc; ++p) {
        for (int64_t r = 0; r < kMr; ++r) {
            const float ar = ap[r];
            for (int64_t j = 0; j < kNr; ++j) {
                acc[r][j] += ar * bp[j];
            }
        }
        ap += kMr;
        bp += kNr;
    }
    for (int64_t r = 0; r < mr; ++r) {
        for (int64_t j = 0; j < nr; ++j) {
            c[r * ldc + j] = acc[r][j];
        }
    }
}

/**
 * One M block: pack A per K block and run the panel microkernels.
 * Writes only C rows [i0, i0+mb), so concurrent blocks never overlap.
 */
void
gemmBlock(int64_t i0, int64_t mb, int64_t n, int64_t k, const float *a,
          int64_t lda, const int64_t *a_rows, const float *bpack,
          float *c, int64_t ldc, bool fp16, bool accumulate)
{
    static thread_local std::vector<float> apack;
    const int64_t mbp = ((mb + kMr - 1) / kMr) * kMr;
    const int64_t panels = (n + kNr - 1) / kNr;
    for (int64_t k0 = 0; k0 < k; k0 += kKc) {
        const int64_t kc = std::min(kKc, k - k0);
        // The first K block starts accumulators at zero unless the
        // caller asked to accumulate into existing C.
        const bool load_c = accumulate || k0 > 0;
        apack.resize(static_cast<size_t>(mbp * kc));
        packA(a, lda, a_rows, i0, mb, k0, kc, fp16, apack.data());
        for (int64_t jp = 0; jp < panels; ++jp) {
            const int64_t nr = std::min(kNr, n - jp * kNr);
            const float *bp = bpack + jp * (k * kNr) + k0 * kNr;
            for (int64_t iq = 0; iq < mb; iq += kMr) {
                const int64_t mr = std::min(kMr, mb - iq);
                const float *ap =
                    apack.data() + (iq / kMr) * (kc * kMr);
                float *cp = c + (i0 + iq) * ldc + jp * kNr;
                if (mr == kMr && nr == kNr) {
                    micro4x8(kc, ap, bp, cp, ldc, load_c);
                } else {
                    microEdge(kc, ap, bp, cp, ldc, mr, nr, load_c);
                }
            }
        }
    }
}

// -----------------------------------------------------------------
// dot4 / dot4x4: FP contraction pinned OFF.
//
// qkScoresCausalF32 mixes the two kernels inside one probability
// matrix, and the batched forward path (vlm/model.cc forwardBatch)
// promises bit-identity with the per-sample dotRowsScaled arithmetic.
// Two separately compiled bodies make the same mul+add-vs-FMA
// contraction choices only by codegen luck — under the project-wide
// -ffp-contract=fast, GCC fused some of dot4x4's accumulations while
// leaving dot4's vector loop as mul+add, which surfaced as 1-ulp
// score drift between the batched and per-sample paths.  Pinning
// contraction off for exactly this pair turns that accident into a
// contract: each product rounds before it accumulates, in every
// clone, on every compiler.  Both kernels are only ever called with
// k = headDim (a multiple of 4), so the pinned scalar tails never
// run in practice and the pin does not perturb historical outputs.
// -----------------------------------------------------------------
#if defined(__clang__)
#define FOCUS_FP_CONTRACT_OFF _Pragma("clang fp contract(off)")
#else
#define FOCUS_FP_CONTRACT_OFF
#endif
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC push_options
#pragma GCC optimize("fp-contract=off")
#endif

/**
 * Four-row dot microkernel preserving ops.h `dot`'s 4-way lane split:
 * per output, lane L accumulates terms k = L, L+4, L+8, ... and the
 * tail (k % 4 leftovers) folds into lane 0; the final sum is
 * (l0+l1)+(l2+l3), exactly as `dot` computes it.
 */
FOCUS_KERNEL_CLONES void
dot4(const float *FOCUS_RESTRICT q, const float *FOCUS_RESTRICT b0,
     const float *FOCUS_RESTRICT b1, const float *FOCUS_RESTRICT b2,
     const float *FOCUS_RESTRICT b3, int64_t k, float scale,
     float *FOCUS_RESTRICT out)
{
    FOCUS_FP_CONTRACT_OFF
    float l0[4] = {}, l1[4] = {}, l2[4] = {}, l3[4] = {};
    int64_t p = 0;
    for (; p + 4 <= k; p += 4) {
        for (int64_t e = 0; e < 4; ++e) {
            const float qv = q[p + e];
            l0[e] += qv * b0[p + e];
            l1[e] += qv * b1[p + e];
            l2[e] += qv * b2[p + e];
            l3[e] += qv * b3[p + e];
        }
    }
    for (; p < k; ++p) {
        const float qv = q[p];
        l0[0] += qv * b0[p];
        l1[0] += qv * b1[p];
        l2[0] += qv * b2[p];
        l3[0] += qv * b3[p];
    }
    out[0] = ((l0[0] + l0[1]) + (l0[2] + l0[3])) * scale;
    out[1] = ((l1[0] + l1[1]) + (l1[2] + l1[3])) * scale;
    out[2] = ((l2[0] + l2[1]) + (l2[2] + l2[3])) * scale;
    out[3] = ((l3[0] + l3[1]) + (l3[2] + l3[3])) * scale;
}

/**
 * Fused 4-query x 4-key block of `dot4`: out_r[j] for query r, key j
 * uses exactly dot4's per-element lane arithmetic (lane e accumulates
 * k = e, e+4, ...; scalar tail folds into lane 0; final sum
 * (l0+l1)+(l2+l3) times scale) — guaranteed, not assumed, because
 * contraction is pinned off for this pair (see the comment above
 * dot4).  Fusing the queries loads each key group once per *block*
 * instead of once per query — the q/k loads, not the arithmetic,
 * bound dot4 on the causal QK^T interior.
 */
FOCUS_KERNEL_CLONES void
dot4x4(const float *FOCUS_RESTRICT q0, const float *FOCUS_RESTRICT q1,
       const float *FOCUS_RESTRICT q2, const float *FOCUS_RESTRICT q3,
       const float *FOCUS_RESTRICT b0, const float *FOCUS_RESTRICT b1,
       const float *FOCUS_RESTRICT b2, const float *FOCUS_RESTRICT b3,
       int64_t k, float scale, float *FOCUS_RESTRICT o0,
       float *FOCUS_RESTRICT o1, float *FOCUS_RESTRICT o2,
       float *FOCUS_RESTRICT o3)
{
    FOCUS_FP_CONTRACT_OFF
    float a0[4][4] = {}, a1[4][4] = {}, a2[4][4] = {}, a3[4][4] = {};
    int64_t p = 0;
    for (; p + 4 <= k; p += 4) {
        for (int64_t e = 0; e < 4; ++e) {
            const float k0 = b0[p + e], k1 = b1[p + e];
            const float k2 = b2[p + e], k3 = b3[p + e];
            const float v0 = q0[p + e], v1 = q1[p + e];
            const float v2 = q2[p + e], v3 = q3[p + e];
            a0[0][e] += v0 * k0;
            a0[1][e] += v0 * k1;
            a0[2][e] += v0 * k2;
            a0[3][e] += v0 * k3;
            a1[0][e] += v1 * k0;
            a1[1][e] += v1 * k1;
            a1[2][e] += v1 * k2;
            a1[3][e] += v1 * k3;
            a2[0][e] += v2 * k0;
            a2[1][e] += v2 * k1;
            a2[2][e] += v2 * k2;
            a2[3][e] += v2 * k3;
            a3[0][e] += v3 * k0;
            a3[1][e] += v3 * k1;
            a3[2][e] += v3 * k2;
            a3[3][e] += v3 * k3;
        }
    }
    for (; p < k; ++p) {
        const float k0 = b0[p], k1 = b1[p], k2 = b2[p], k3 = b3[p];
        a0[0][0] += q0[p] * k0;
        a0[1][0] += q0[p] * k1;
        a0[2][0] += q0[p] * k2;
        a0[3][0] += q0[p] * k3;
        a1[0][0] += q1[p] * k0;
        a1[1][0] += q1[p] * k1;
        a1[2][0] += q1[p] * k2;
        a1[3][0] += q1[p] * k3;
        a2[0][0] += q2[p] * k0;
        a2[1][0] += q2[p] * k1;
        a2[2][0] += q2[p] * k2;
        a2[3][0] += q2[p] * k3;
        a3[0][0] += q3[p] * k0;
        a3[1][0] += q3[p] * k1;
        a3[2][0] += q3[p] * k2;
        a3[3][0] += q3[p] * k3;
    }
    for (int64_t j = 0; j < 4; ++j) {
        o0[j] = ((a0[j][0] + a0[j][1]) + (a0[j][2] + a0[j][3])) * scale;
        o1[j] = ((a1[j][0] + a1[j][1]) + (a1[j][2] + a1[j][3])) * scale;
        o2[j] = ((a2[j][0] + a2[j][1]) + (a2[j][2] + a2[j][3])) * scale;
        o3[j] = ((a3[j][0] + a3[j][1]) + (a3[j][2] + a3[j][3])) * scale;
    }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC pop_options
#endif

/** Single-row remainder of dot4 (same lane split as `dot`). */
FOCUS_KERNEL_CLONES float
dot1(const float *FOCUS_RESTRICT q, const float *FOCUS_RESTRICT b,
     int64_t k)
{
    float l[4] = {};
    int64_t p = 0;
    for (; p + 4 <= k; p += 4) {
        for (int64_t e = 0; e < 4; ++e) {
            l[e] += q[p + e] * b[p + e];
        }
    }
    for (; p < k; ++p) {
        l[0] += q[p] * b[p];
    }
    return (l[0] + l[1]) + (l[2] + l[3]);
}

// -----------------------------------------------------------------
// SFU tier internals
//
// The vector backend's transcendental core is a branch-free
// polynomial expf (Cephes 32-bit constants): clamp to the finite
// range, split x = n*ln2 + r with round-to-nearest via the 1.5*2^23
// trick, evaluate a degree-6 polynomial in r, scale by 2^n through
// the exponent bits.  NaN inputs survive the clamp via the final
// select; inputs below the clamp range (including -inf) flush to
// exactly 0 — see the comment at the flush blend — and +inf
// saturates to exp(hi), large but finite.  The helper is a plain
// inline function so each target_clones caller inlines it and
// vectorizes it with its own ISA (blends for the selects, cvtps2dq
// for the exponent cast).
// -----------------------------------------------------------------

inline float
expfPoly(float x)
{
    constexpr float hi = 88.0f; // exp(88) ~ 1.65e38 < FLT_MAX
    // Low clamp: with n >= round(-86*log2e) = -124 the final p*2^n
    // stays a *normal* float even for p ~ 0.7 — the multiply must
    // never produce a denormal, or every masked softmax entry would
    // pay a floating-point assist before the flush-to-zero blend
    // discards it.
    constexpr float lo = -86.0f;
    float xc = x > lo ? x : lo;  // NaN -> lo (cast below stays defined)
    xc = xc > hi ? hi : xc;
    const float z = xc * 1.44269504088896341f; // x / ln2
    const float t = z + 12582912.0f;           // 1.5*2^23 rounding trick
    const float n = t - 12582912.0f;
    float r = xc - n * 0.693359375f;   // ln2 high part
    r -= n * -2.12194440e-4f;          // ln2 low part
    float p = 1.9875691500e-4f;
    p = p * r + 1.3981999507e-3f;
    p = p * r + 8.3334519073e-3f;
    p = p * r + 4.1665795894e-2f;
    p = p * r + 1.6666665459e-1f;
    p = p * r + 5.0000001201e-1f;
    p = p * r * r + r + 1.0f;
    const int32_t bits = (static_cast<int32_t>(n) + 127) << 23;
    float scale;
    std::memcpy(&scale, &bits, sizeof(scale));
    float out = p * scale;
    // Flush-to-zero under the clamp range, like a hardware SFU (and
    // like libm, which underflows to 0 well before -87).  Without
    // this, softmax rows with -1e30 causal masks would emit ~1e-38
    // probabilities whose products are denormal — and denormal
    // operands stall the downstream P*V GEMM by two orders of
    // magnitude.
    out = x < lo ? 0.0f : out;
    return x != x ? x : out; // propagate NaN
}

FOCUS_KERNEL_CLONES void
expRowVector(float *FOCUS_RESTRICT row, int64_t n)
{
    for (int64_t j = 0; j < n; ++j) {
        row[j] = expfPoly(row[j]);
    }
}

/** Fused max/exp/normalize, 8-lane reductions (vector backend). */
FOCUS_KERNEL_CLONES void
softmaxRowVector(float *FOCUS_RESTRICT row, int64_t n)
{
    constexpr float ninf = -std::numeric_limits<float>::infinity();
    float m[8] = {ninf, ninf, ninf, ninf, ninf, ninf, ninf, ninf};
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        for (int64_t e = 0; e < 8; ++e) {
            const float v = row[j + e];
            m[e] = v > m[e] ? v : m[e];
        }
    }
    for (; j < n; ++j) {
        m[0] = row[j] > m[0] ? row[j] : m[0];
    }
    float mx = m[0];
    for (int64_t e = 1; e < 8; ++e) {
        mx = m[e] > mx ? m[e] : mx;
    }
    float s[8] = {};
    j = 0;
    for (; j + 8 <= n; j += 8) {
        for (int64_t e = 0; e < 8; ++e) {
            const float v = expfPoly(row[j + e] - mx);
            row[j + e] = v;
            s[e] += v;
        }
    }
    for (; j < n; ++j) {
        const float v = expfPoly(row[j] - mx);
        row[j] = v;
        s[0] += v;
    }
    const float sum =
        ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
    const float inv = 1.0f / sum;
    for (j = 0; j < n; ++j) {
        row[j] *= inv;
    }
}

/**
 * The historical tensor/ops.cc softmax row loop, verbatim and
 * deliberately NOT clone-versioned: it must keep producing the exact
 * libm-based bits the pre-SFU-tier code produced.
 */
void
softmaxRowExact(float *row, int64_t n)
{
    float mx = row[0];
    for (int64_t j = 1; j < n; ++j) {
        mx = std::max(mx, row[j]);
    }
    float sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
        row[j] = std::exp(row[j] - mx);
        sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < n; ++j) {
        row[j] *= inv;
    }
}

FOCUS_KERNEL_CLONES float
expBiasedSumVector(float *FOCUS_RESTRICT x, int64_t n, float bias)
{
    float s[8] = {};
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        for (int64_t e = 0; e < 8; ++e) {
            const float v = expfPoly(x[j + e] - bias);
            x[j + e] = v;
            s[e] += v;
        }
    }
    for (; j < n; ++j) {
        const float v = expfPoly(x[j] - bias);
        x[j] = v;
        s[0] += v;
    }
    return ((s[0] + s[1]) + (s[2] + s[3])) +
        ((s[4] + s[5]) + (s[6] + s[7]));
}

FOCUS_KERNEL_CLONES void
siluVector(float *FOCUS_RESTRICT x, int64_t n)
{
    for (int64_t i = 0; i < n; ++i) {
        x[i] = x[i] / (1.0f + expfPoly(-x[i]));
    }
}

FOCUS_KERNEL_CLONES void
geluVector(float *FOCUS_RESTRICT x, int64_t n)
{
    constexpr float c = 0.7978845608f; // sqrt(2/pi)
    for (int64_t i = 0; i < n; ++i) {
        const float v = x[i];
        const float y = c * (v + 0.044715f * v * v * v);
        // tanh(y) = 1 - 2 / (exp(2y) + 1); exact in infinite
        // precision, so accuracy tracks the polynomial expf.
        const float th = 1.0f - 2.0f / (expfPoly(2.0f * y) + 1.0f);
        x[i] = 0.5f * v * (1.0f + th);
    }
}

FOCUS_KERNEL_CLONES void
rmsNormRowVector(float *FOCUS_RESTRICT row, int64_t n,
                 const float *FOCUS_RESTRICT gain, float eps)
{
    float s[8] = {};
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        for (int64_t e = 0; e < 8; ++e) {
            s[e] += row[j + e] * row[j + e];
        }
    }
    for (; j < n; ++j) {
        s[0] += row[j] * row[j];
    }
    float ms = ((s[0] + s[1]) + (s[2] + s[3])) +
        ((s[4] + s[5]) + (s[6] + s[7]));
    ms /= static_cast<float>(n);
    const float inv = 1.0f / std::sqrt(ms + eps);
    if (gain != nullptr) {
        for (j = 0; j < n; ++j) {
            row[j] *= inv * gain[j];
        }
    } else {
        for (j = 0; j < n; ++j) {
            row[j] *= inv;
        }
    }
}

FOCUS_KERNEL_CLONES float
l2NormVector(const float *FOCUS_RESTRICT v, int64_t n)
{
    float s[8] = {};
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        for (int64_t e = 0; e < 8; ++e) {
            s[e] += v[j + e] * v[j + e];
        }
    }
    for (; j < n; ++j) {
        s[0] += v[j] * v[j];
    }
    return std::sqrt(((s[0] + s[1]) + (s[2] + s[3])) +
                     ((s[4] + s[5]) + (s[6] + s[7])));
}

/**
 * Candidate dot kernel for the similarity gather.  Unlike the
 * GEMM-tier dot primitives this uses an 8-wide lane split: the
 * vector backend carries no bit-exactness contract, and the 8-lane
 * shape maps 1:1 onto a ymm accumulator (a pinned 4-lane split — or
 * a multi-candidate variant — forces GCC 12 into permute-heavy
 * reductions that lose to scalar code).
 */
FOCUS_KERNEL_CLONES float
simDot1(const float *FOCUS_RESTRICT q, const float *FOCUS_RESTRICT b,
        int64_t n)
{
    float l[8] = {};
    int64_t p = 0;
    for (; p + 8 <= n; p += 8) {
        for (int64_t e = 0; e < 8; ++e) {
            l[e] += q[p + e] * b[p + e];
        }
    }
    for (; p < n; ++p) {
        l[0] += q[p] * b[p];
    }
    return ((l[0] + l[1]) + (l[2] + l[3])) +
        ((l[4] + l[5]) + (l[6] + l[7]));
}

/**
 * Fan independent rows of a (rows x cols) block across the pool when
 * the block is large enough to amortize the dispatch.  Each task owns
 * a disjoint row range and each row's result depends only on its own
 * data, so output is bit-identical at every thread count (a call
 * from inside a pool task executes inline on that worker).
 */
template <typename RowRangeFn>
void
forRowRanges(int64_t rows, int64_t cols, const RowRangeFn &fn)
{
    constexpr int64_t kRowsPerTask = 16;
    constexpr int64_t kParallelElemCut = 1 << 14;
    ThreadPool &pool = ThreadPool::global();
    const int64_t tasks = (rows + kRowsPerTask - 1) / kRowsPerTask;
    if (tasks > 1 && pool.threads() > 1 &&
        rows * cols >= kParallelElemCut) {
        pool.parallelFor(tasks, [&](int64_t ti) {
            const int64_t i0 = ti * kRowsPerTask;
            fn(i0, std::min(rows, i0 + kRowsPerTask));
        });
    } else {
        fn(0, rows);
    }
}

} // namespace

// -----------------------------------------------------------------
// Public backend controls
// -----------------------------------------------------------------

const char *
backendName(GemmBackend b)
{
    switch (b) {
      case GemmBackend::Portable:
        return "portable";
      case GemmBackend::Naive:
        return "naive";
      case GemmBackend::Blas:
        return "blas";
    }
    return "?";
}

bool
blasAvailable()
{
#ifdef FOCUS_WITH_BLAS
    return true;
#else
    return false;
#endif
}

bool
parseBackend(const char *name, GemmBackend &out)
{
    const std::string s(name != nullptr ? name : "");
    if (s == "portable") {
        out = GemmBackend::Portable;
        return true;
    }
    if (s == "naive") {
        out = GemmBackend::Naive;
        return true;
    }
    if (s == "blas") {
        out = GemmBackend::Blas;
        return true;
    }
    return false;
}

GemmBackend
activeBackend()
{
    return g_backend.load(std::memory_order_relaxed);
}

void
setBackend(GemmBackend b)
{
    if (b == GemmBackend::Blas && !blasAvailable()) {
        panic("setBackend: blas backend requested but this binary was "
              "built without FOCUS_WITH_BLAS");
    }
    g_backend.store(b, std::memory_order_relaxed);
}

const char *
mathBackendName(MathBackend b)
{
    switch (b) {
      case MathBackend::Exact:
        return "exact";
      case MathBackend::Vector:
        return "vector";
    }
    return "?";
}

bool
parseMathBackend(const char *name, MathBackend &out)
{
    const std::string s(name != nullptr ? name : "");
    if (s == "exact") {
        out = MathBackend::Exact;
        return true;
    }
    if (s == "vector") {
        out = MathBackend::Vector;
        return true;
    }
    return false;
}

MathBackend
activeMathBackend()
{
    return g_math_backend.load(std::memory_order_relaxed);
}

void
setMathBackend(MathBackend b)
{
    g_math_backend.store(b, std::memory_order_relaxed);
}

// -----------------------------------------------------------------
// SFU tier entry points
// -----------------------------------------------------------------

void
expRowsF32(int64_t rows, int64_t cols, float *x, int64_t ld)
{
    if (rows <= 0 || cols <= 0) {
        return;
    }
    if (activeMathBackend() == MathBackend::Vector) {
        forRowRanges(rows, cols, [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
                expRowVector(x + i * ld, cols);
            }
        });
        return;
    }
    forRowRanges(rows, cols, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            float *row = x + i * ld;
            for (int64_t j = 0; j < cols; ++j) {
                row[j] = std::exp(row[j]);
            }
        }
    });
}

void
softmaxRowsF32(int64_t rows, int64_t cols, float *x, int64_t ld)
{
    if (rows <= 0 || cols <= 0) {
        // Zero-column rows carry no probability mass: defined no-op,
        // matching the k=0 degenerate-shape rule of the GEMM tier.
        return;
    }
    // Per-backend counter names freeze the math backend at first use;
    // the backend is a per-process knob in real runs.
    if (obs::countersEnabled()) {
        static obs::Counter &calls =
            obs::MetricsRegistry::instance().schedCounter(
                std::string("kernels.softmax.") +
                mathBackendName(activeMathBackend()) + ".calls");
        static obs::Counter &row_total =
            obs::MetricsRegistry::instance().counter(
                std::string("kernels.softmax.") +
                mathBackendName(activeMathBackend()) + ".rows");
        calls.add(1);
        row_total.add(static_cast<uint64_t>(rows));
    }
    if (activeMathBackend() == MathBackend::Vector) {
        forRowRanges(rows, cols, [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
                softmaxRowVector(x + i * ld, cols);
            }
        });
        return;
    }
    forRowRanges(rows, cols, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            softmaxRowExact(x + i * ld, cols);
        }
    });
}

float
expBiasedSumF32(float *x, int64_t n, float bias)
{
    if (n <= 0) {
        return 0.0f;
    }
    if (activeMathBackend() == MathBackend::Vector) {
        return expBiasedSumVector(x, n, bias);
    }
    // Historical readout-logit loop: serial std::exp, serial sum.
    float sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
        x[j] = std::exp(x[j] - bias);
        sum += x[j];
    }
    return sum;
}

void
siluF32(float *x, int64_t n)
{
    if (n <= 0) {
        return;
    }
    if (activeMathBackend() == MathBackend::Vector) {
        siluVector(x, n);
        return;
    }
    for (int64_t i = 0; i < n; ++i) {
        x[i] = x[i] / (1.0f + std::exp(-x[i]));
    }
}

void
geluF32(float *x, int64_t n)
{
    if (n <= 0) {
        return;
    }
    if (activeMathBackend() == MathBackend::Vector) {
        geluVector(x, n);
        return;
    }
    constexpr float c = 0.7978845608f; // sqrt(2/pi)
    for (int64_t i = 0; i < n; ++i) {
        const float v = x[i];
        x[i] = 0.5f * v *
            (1.0f + std::tanh(c * (v + 0.044715f * v * v * v)));
    }
}

void
rmsNormRowsF32(int64_t rows, int64_t cols, float *x, int64_t ld,
               const float *gain, float eps)
{
    if (rows <= 0 || cols <= 0) {
        // A zero-width row has no mean square: defined no-op instead
        // of the historical 0/0 NaN fill.
        return;
    }
    if (activeMathBackend() == MathBackend::Vector) {
        forRowRanges(rows, cols, [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
                rmsNormRowVector(x + i * ld, cols, gain, eps);
            }
        });
        return;
    }
    forRowRanges(rows, cols, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            float *row = x + i * ld;
            float ms = 0.0f;
            for (int64_t j = 0; j < cols; ++j) {
                ms += row[j] * row[j];
            }
            ms /= static_cast<float>(cols);
            const float inv = 1.0f / std::sqrt(ms + eps);
            for (int64_t j = 0; j < cols; ++j) {
                row[j] *= inv * (gain != nullptr ? gain[j] : 1.0f);
            }
        }
    });
}

void
l2NormRowsF32(const float *x, int64_t ld, int64_t rows, int64_t n,
              float *norms)
{
    if (rows <= 0) {
        return;
    }
    if (activeMathBackend() == MathBackend::Vector) {
        for (int64_t i = 0; i < rows; ++i) {
            norms[i] = l2NormVector(x + i * ld, n);
        }
        return;
    }
    for (int64_t i = 0; i < rows; ++i) {
        norms[i] = l2Norm(x + i * ld, n);
    }
}

void
simGatherF32(const float *key, float key_norm, const float *pack,
             int64_t ld, const float *norms, const int64_t *cand,
             int64_t count, int64_t n, float *sims)
{
    if (count <= 0) {
        return;
    }
    if (obs::countersEnabled()) {
        static obs::Counter &calls =
            obs::MetricsRegistry::instance().schedCounter(
                std::string("kernels.sim_gather.") +
                mathBackendName(activeMathBackend()) + ".calls");
        static obs::Counter &dots =
            obs::MetricsRegistry::instance().counter(
                std::string("kernels.sim_gather.") +
                mathBackendName(activeMathBackend()) + ".dots");
        calls.add(1);
        dots.add(static_cast<uint64_t>(count));
    }
    if (activeMathBackend() != MathBackend::Vector) {
        for (int64_t c = 0; c < count; ++c) {
            sims[c] = cosineSimilarityPrenorm(
                key, key_norm, pack + cand[c] * ld, norms[cand[c]], n);
        }
        return;
    }
    constexpr float tiny = 1e-12f;
    for (int64_t c = 0; c < count; ++c) {
        const float nb = norms[cand[c]];
        sims[c] = (key_norm < tiny || nb < tiny)
            ? 0.0f
            : simDot1(key, pack + cand[c] * ld, n) / (key_norm * nb);
    }
}

// -----------------------------------------------------------------
// Portable blocked GEMM
// -----------------------------------------------------------------

void
gemmF32(int64_t m, int64_t n, int64_t k, const float *a, int64_t lda,
        const float *b, int64_t ldb, float *c, int64_t ldc,
        bool fp16_inputs, const int64_t *a_rows, bool accumulate)
{
    if (m <= 0 || n <= 0) {
        return;
    }
    if (k <= 0) {
        // Empty reduction: a plain product is all-zero, an
        // accumulation is a no-op.
        if (!accumulate) {
            for (int64_t i = 0; i < m; ++i) {
                std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
            }
        }
        return;
    }
    // MAC totals are work (fixed by the problem shapes); invocation
    // counts are sched (call sites may batch or split differently).
    if (obs::countersEnabled()) {
        static obs::Counter &calls =
            obs::MetricsRegistry::instance().schedCounter(
                "kernels.gemm.portable.calls");
        static obs::Counter &macs =
            obs::MetricsRegistry::instance().counter(
                "kernels.gemm.portable.macs");
        calls.add(1);
        macs.add(static_cast<uint64_t>(m) *
                 static_cast<uint64_t>(n) * static_cast<uint64_t>(k));
    }
    static thread_local std::vector<float> bpack_tls;
    const int64_t panels = (n + kNr - 1) / kNr;
    bpack_tls.resize(static_cast<size_t>(panels * kNr * k));
    float *bpack = bpack_tls.data();
    packB(b, ldb, k, n, fp16_inputs, bpack);

    const int64_t mblocks = (m + kMc - 1) / kMc;
    auto run_block = [&](int64_t bi) {
        const int64_t i0 = bi * kMc;
        const int64_t mb = std::min(kMc, m - i0);
        gemmBlock(i0, mb, n, k, a, lda, a_rows, bpack, c, ldc,
                  fp16_inputs, accumulate);
    };

    // Fan M blocks across the pool when the product is big enough to
    // amortize the dispatch.  Each block writes a disjoint C row
    // range, so results are bit-identical at every thread count; a
    // call from inside a pool task (e.g. under runFunctional's
    // per-sample fan-out) executes inline on that worker.
    constexpr int64_t kParallelFlopCut = 1 << 21;
    ThreadPool &pool = ThreadPool::global();
    if (mblocks > 1 && pool.threads() > 1 &&
        m * n * k >= kParallelFlopCut) {
        pool.parallelFor(mblocks, run_block);
    } else {
        for (int64_t bi = 0; bi < mblocks; ++bi) {
            run_block(bi);
        }
    }
}

void
gemmTransBF32(int64_t m, int64_t n, int64_t k, const float *a,
              int64_t lda, const float *b, int64_t ldb, float *c,
              int64_t ldc)
{
    if (m <= 0 || n <= 0) {
        return;
    }
    if (obs::countersEnabled()) {
        static obs::Counter &calls =
            obs::MetricsRegistry::instance().schedCounter(
                "kernels.gemm.transb.calls");
        static obs::Counter &macs =
            obs::MetricsRegistry::instance().counter(
                "kernels.gemm.transb.macs");
        calls.add(1);
        macs.add(static_cast<uint64_t>(m) *
                 static_cast<uint64_t>(n) * static_cast<uint64_t>(k));
    }
    // Tile B rows so a j-tile stays cache-resident across the i loop.
    constexpr int64_t kJTile = 64;
    for (int64_t j0 = 0; j0 < n; j0 += kJTile) {
        const int64_t jt = std::min(kJTile, n - j0);
        for (int64_t i = 0; i < m; ++i) {
            dotRowsScaled(a + i * lda, b + j0 * ldb, ldb, jt, k, 1.0f,
                          c + i * ldc + j0);
        }
    }
}

void
dotRowsScaled(const float *q, const float *b, int64_t ldb, int64_t rows,
              int64_t k, float scale, float *out)
{
    int64_t j = 0;
    for (; j + 4 <= rows; j += 4) {
        const float *base = b + j * ldb;
        dot4(q, base, base + ldb, base + 2 * ldb, base + 3 * ldb, k,
             scale, out + j);
    }
    for (; j < rows; ++j) {
        out[j] = dot1(q, b + j * ldb, k) * scale;
    }
}

void
qkScoresCausalF32(const float *q, int64_t ldq, const float *keys,
                  int64_t ldk, int64_t rows, int64_t k, float scale,
                  float *out, int64_t ldo)
{
    // Four query rows share one sweep over their common causal key
    // range; key groups stay 4-aligned from j = 0, so every element
    // is produced by the same dot4/dot1 call shape dotRowsScaled
    // would have used.
    constexpr int64_t kQt = 4;
    int64_t i0 = 0;
    for (; i0 + kQt <= rows; i0 += kQt) {
        const int64_t shared4 = (i0 + 1) & ~int64_t{3};
        const float *q0 = q + i0 * ldq;
        const float *q1 = q0 + ldq;
        const float *q2 = q1 + ldq;
        const float *q3 = q2 + ldq;
        for (int64_t j = 0; j < shared4; j += 4) {
            const float *base = keys + j * ldk;
            dot4x4(q0, q1, q2, q3, base, base + ldk, base + 2 * ldk,
                   base + 3 * ldk, k, scale, out + i0 * ldo + j,
                   out + (i0 + 1) * ldo + j, out + (i0 + 2) * ldo + j,
                   out + (i0 + 3) * ldo + j);
        }
        for (int64_t r = 0; r < kQt; ++r) {
            const int64_t count = i0 + r + 1;
            const float *qr = q + (i0 + r) * ldq;
            float *orow = out + (i0 + r) * ldo;
            int64_t j = shared4;
            for (; j + 4 <= count; j += 4) {
                const float *base = keys + j * ldk;
                dot4(qr, base, base + ldk, base + 2 * ldk,
                     base + 3 * ldk, k, scale, orow + j);
            }
            for (; j < count; ++j) {
                orow[j] = dot1(qr, keys + j * ldk, k) * scale;
            }
        }
    }
    for (; i0 < rows; ++i0) {
        dotRowsScaled(q + i0 * ldq, keys, ldk, i0 + 1, k, scale,
                      out + i0 * ldo);
    }
}

FOCUS_KERNEL_CLONES void
pvCausalF32(int64_t m, int64_t n, const float *p, int64_t ldp,
            const int64_t *rowmap, const float *v, int64_t ldv,
            float *out, int64_t ldo)
{
    for (int64_t r = 0; r < m; ++r) {
        const int64_t src = rowmap ? rowmap[r] : r;
        const float *FOCUS_RESTRICT prow = p + src * ldp;
        float *FOCUS_RESTRICT orow = out + r * ldo;
        for (int64_t c = 0; c < n; ++c) {
            orow[c] = 0.0f;
        }
        const int64_t lim = src + 1;
        for (int64_t j = 0; j < lim; ++j) {
            const float pj = prow[j];
            const float *FOCUS_RESTRICT vrow = v + j * ldv;
            for (int64_t c = 0; c < n; ++c) {
                orow[c] += pj * vrow[c];
            }
        }
    }
}

// -----------------------------------------------------------------
// INT8 kernel
// -----------------------------------------------------------------

FOCUS_KERNEL_CLONES void
gemmInt8S32(int64_t m, int64_t n, int64_t k, const int8_t *a,
            const float *a_scales, const int8_t *bt,
            const float *b_scales, float *c, int64_t ldc)
{
    for (int64_t i = 0; i < m; ++i) {
        const int8_t *FOCUS_RESTRICT arow = a + i * k;
        const float ascale = a_scales[i];
        float *crow = c + i * ldc;
        int64_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const int8_t *FOCUS_RESTRICT b0 = bt + j * k;
            const int8_t *FOCUS_RESTRICT b1 = b0 + k;
            const int8_t *FOCUS_RESTRICT b2 = b1 + k;
            const int8_t *FOCUS_RESTRICT b3 = b2 + k;
            int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
            for (int64_t p = 0; p < k; ++p) {
                const int32_t av = arow[p];
                acc0 += av * b0[p];
                acc1 += av * b1[p];
                acc2 += av * b2[p];
                acc3 += av * b3[p];
            }
            crow[j] = static_cast<float>(acc0) * ascale * b_scales[j];
            crow[j + 1] =
                static_cast<float>(acc1) * ascale * b_scales[j + 1];
            crow[j + 2] =
                static_cast<float>(acc2) * ascale * b_scales[j + 2];
            crow[j + 3] =
                static_cast<float>(acc3) * ascale * b_scales[j + 3];
        }
        for (; j < n; ++j) {
            const int8_t *FOCUS_RESTRICT brow = bt + j * k;
            int32_t acc = 0;
            for (int64_t p = 0; p < k; ++p) {
                acc += static_cast<int32_t>(arow[p]) * brow[p];
            }
            crow[j] = static_cast<float>(acc) * ascale * b_scales[j];
        }
    }
}

// -----------------------------------------------------------------
// Naive references (pre-kernel-layer implementations, verbatim)
// -----------------------------------------------------------------

FOCUS_KERNEL_CLONES void
gemmNaiveF32(int64_t m, int64_t n, int64_t k, const float *a,
             int64_t lda, const float *b, int64_t ldb, float *c,
             int64_t ldc, bool fp16_inputs)
{
    if (obs::countersEnabled()) {
        static obs::Counter &calls =
            obs::MetricsRegistry::instance().schedCounter(
                "kernels.gemm.naive.calls");
        static obs::Counter &macs =
            obs::MetricsRegistry::instance().counter(
                "kernels.gemm.naive.macs");
        calls.add(1);
        if (m > 0 && n > 0 && k > 0) {
            macs.add(static_cast<uint64_t>(m) *
                     static_cast<uint64_t>(n) *
                     static_cast<uint64_t>(k));
        }
    }
    // ikj loop order: streams B rows, decent cache behaviour without
    // blocking machinery.
    for (int64_t i = 0; i < m; ++i) {
        const float *arow = a + i * lda;
        float *crow = c + i * ldc;
        for (int64_t kk = 0; kk < k; ++kk) {
            float av = arow[kk];
            if (fp16_inputs) {
                av = fp16Round(av);
            }
            if (av == 0.0f) {
                continue;
            }
            const float *brow = b + kk * ldb;
            if (fp16_inputs) {
                for (int64_t j = 0; j < n; ++j) {
                    crow[j] += av * fp16Round(brow[j]);
                }
            } else {
                for (int64_t j = 0; j < n; ++j) {
                    crow[j] += av * brow[j];
                }
            }
        }
    }
}

void
gemmTransBNaiveF32(int64_t m, int64_t n, int64_t k, const float *a,
                   int64_t lda, const float *b, int64_t ldb, float *c,
                   int64_t ldc)
{
    // Unblocked row sweep over the same dot primitives the blocked
    // path uses, so the two differ only in j-tile traversal: the
    // per-element call sequence is identical and results are
    // bit-identical by construction on every compiler.  (Sharing the
    // primitive is deliberate — compilers are free to contract
    // mul+add differently in differently-shaped functions, so two
    // structurally different dot loops are NOT guaranteed to agree
    // bitwise; see docs/KERNELS.md.)
    for (int64_t i = 0; i < m; ++i) {
        dotRowsScaled(a + i * lda, b, ldb, n, k, 1.0f, c + i * ldc);
    }
}

// -----------------------------------------------------------------
// BLAS backend
// -----------------------------------------------------------------

#ifdef FOCUS_WITH_BLAS

extern "C" {
void sgemm_(const char *transa, const char *transb, const int *m,
            const int *n, const int *k, const float *alpha,
            const float *a, const int *lda, const float *b,
            const int *ldb, const float *beta, float *c,
            const int *ldc);
}

namespace
{

int
blasInt(int64_t v, const char *what)
{
    if (v > INT32_MAX) {
        panic("gemmBlas: %s=%" PRId64 " exceeds BLAS int range", what,
              v);
    }
    return static_cast<int>(v);
}

} // namespace

void
gemmBlasF32(int64_t m, int64_t n, int64_t k, const float *a,
            int64_t lda, const float *b, int64_t ldb, float *c,
            int64_t ldc, bool fp16_inputs)
{
    if (m <= 0 || n <= 0) {
        return;
    }
    if (k <= 0) {
        for (int64_t i = 0; i < m; ++i) {
            std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
        }
        return;
    }
    if (obs::countersEnabled()) {
        static obs::Counter &calls =
            obs::MetricsRegistry::instance().schedCounter(
                "kernels.gemm.blas.calls");
        static obs::Counter &macs =
            obs::MetricsRegistry::instance().counter(
                "kernels.gemm.blas.macs");
        calls.add(1);
        macs.add(static_cast<uint64_t>(m) *
                 static_cast<uint64_t>(n) * static_cast<uint64_t>(k));
    }
    std::vector<float> ar, br;
    if (fp16_inputs) {
        ar.resize(static_cast<size_t>(m * k));
        br.resize(static_cast<size_t>(k * n));
        for (int64_t i = 0; i < m; ++i) {
            for (int64_t p = 0; p < k; ++p) {
                ar[static_cast<size_t>(i * k + p)] =
                    fp16Round(a[i * lda + p]);
            }
        }
        for (int64_t p = 0; p < k; ++p) {
            for (int64_t j = 0; j < n; ++j) {
                br[static_cast<size_t>(p * n + j)] =
                    fp16Round(b[p * ldb + j]);
            }
        }
        a = ar.data();
        lda = k;
        b = br.data();
        ldb = n;
    }
    // Row-major C = A*B  <=>  col-major C^T = B^T * A^T, where the
    // row-major buffers reinterpret as the transposed col-major
    // matrices directly.
    const int mm = blasInt(n, "n");
    const int nn = blasInt(m, "m");
    const int kk = blasInt(k, "k");
    const int ld_b = blasInt(ldb, "ldb");
    const int ld_a = blasInt(lda, "lda");
    const int ld_c = blasInt(ldc, "ldc");
    const float one = 1.0f, zero = 0.0f;
    sgemm_("N", "N", &mm, &nn, &kk, &one, b, &ld_b, a, &ld_a, &zero, c,
           &ld_c);
}

void
gemmTransBBlasF32(int64_t m, int64_t n, int64_t k, const float *a,
                  int64_t lda, const float *b, int64_t ldb, float *c,
                  int64_t ldc)
{
    if (m <= 0 || n <= 0) {
        return;
    }
    if (k <= 0) {
        for (int64_t i = 0; i < m; ++i) {
            std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
        }
        return;
    }
    // Row-major C = A*B^T  <=>  col-major C^T = B * A^T; the
    // row-major (n x k) B buffer is col-major (k x n), so pass it
    // transposed.
    const int mm = blasInt(n, "n");
    const int nn = blasInt(m, "m");
    const int kk = blasInt(k, "k");
    const int ld_b = blasInt(ldb, "ldb");
    const int ld_a = blasInt(lda, "lda");
    const int ld_c = blasInt(ldc, "ldc");
    const float one = 1.0f, zero = 0.0f;
    sgemm_("T", "N", &mm, &nn, &kk, &one, b, &ld_b, a, &ld_a, &zero, c,
           &ld_c);
}

#else // !FOCUS_WITH_BLAS

void
gemmBlasF32(int64_t, int64_t, int64_t, const float *, int64_t,
            const float *, int64_t, float *, int64_t, bool)
{
    panic("gemmBlasF32: built without FOCUS_WITH_BLAS");
}

void
gemmTransBBlasF32(int64_t, int64_t, int64_t, const float *, int64_t,
                  const float *, int64_t, float *, int64_t)
{
    panic("gemmTransBBlasF32: built without FOCUS_WITH_BLAS");
}

#endif // FOCUS_WITH_BLAS

} // namespace kernels
} // namespace focus
