/**
 * @file
 * Blocked GEMM kernel layer: cache-blocked, register-tiled portable
 * microkernels behind a runtime backend dispatch.
 *
 * This is the compute substrate under `tensor/ops.h` (`gemm`,
 * `gemmTransB`), `tensor/quant.h` (`gemmInt8`) and the attention inner
 * loops of `vlm/model.cc`.  Three backends exist:
 *
 *  - **Portable** (default): B-panel packing + 4xNR register-tiled
 *    microkernel, M-blocks fanned across the `runtime/thread_pool.h`
 *    pool.  Bit-identical to the naive reference — per output element
 *    the accumulation order is exactly the reference order (ascending
 *    k with a single accumulator for `gemm`, the 4-way-split `dot`
 *    order for `gemmTransB`), at every thread count.
 *  - **Naive**: the pre-kernel-layer triple loops, kept as the
 *    exactness reference and for A/B benchmarking.
 *  - **Blas**: system `sgemm_` behind the `FOCUS_WITH_BLAS` CMake
 *    option.  NOT bit-exact (BLAS reorders the k-reduction); expected
 *    agreement is ~1e-5 relative for the shapes used here (see
 *    docs/KERNELS.md).
 *
 * Backend selection: `FOCUS_GEMM_BACKEND` environment variable
 * (`portable` | `naive` | `blas`) or `setBackend()`.  The interior
 * attention kernels (`dotRowsScaled`, the P*V product) always run
 * portable — they are part of the deterministic functional model and
 * have no BLAS equivalent with the required accumulation order.
 */

#ifndef FOCUS_TENSOR_KERNELS_H
#define FOCUS_TENSOR_KERNELS_H

#include <cstdint>

namespace focus
{
namespace kernels
{

/** GEMM backend selected at runtime (see file comment). */
enum class GemmBackend
{
    Portable, ///< blocked/tiled, bit-exact vs naive, pool-parallel
    Naive,    ///< reference triple loops (pre-kernel-layer code)
    Blas      ///< system sgemm, only if built with FOCUS_WITH_BLAS
};

/** Name for logging / bench banners. */
const char *backendName(GemmBackend b);

/** True when the binary was built with FOCUS_WITH_BLAS. */
bool blasAvailable();

/**
 * Parse a backend name ("portable", "naive", "blas"); returns false
 * on an unknown name.
 */
bool parseBackend(const char *name, GemmBackend &out);

/**
 * Currently active backend.  Initialized once from the
 * FOCUS_GEMM_BACKEND environment variable (default Portable; panics
 * if "blas" is requested but unavailable).
 */
GemmBackend activeBackend();

/** Override the active backend (panics on Blas when unavailable). */
void setBackend(GemmBackend b);

// ---------------------------------------------------------------
// Blocking geometry (exposed for tests and docs/KERNELS.md).
// ---------------------------------------------------------------
inline constexpr int64_t kMr = 4;   ///< microkernel rows (A panel)
inline constexpr int64_t kNr = 8;   ///< microkernel cols (B panel)
inline constexpr int64_t kMc = 64;  ///< rows per M block = parallel grain
inline constexpr int64_t kKc = 256; ///< depth per packed K block

/**
 * C = A * B (or C += A * B with @p accumulate) on raw row-major
 * buffers — the portable blocked path.
 *
 * A is (m x k) with row stride @p lda, B is (k x n) with row stride
 * @p ldb, C is (m x n) with row stride @p ldc.  With @p accumulate
 * false (the default) C's prior contents are ignored: the first K
 * block starts its accumulators at zero, so callers need not zero C.
 * When @p fp16_inputs is set, both operands are rounded through
 * binary16 while being packed, so the microkernel hot loop stays
 * branch-free.  @p a_rows, when non-null, is an m-entry gather map:
 * logical A row i reads from a + a_rows[i]*lda (used for the
 * post-prune P*V product).
 *
 * Per output element the accumulation order is ascending k with a
 * single accumulator — bit-identical to `gemmNaiveF32` on finite
 * inputs at every thread count.
 */
void gemmF32(int64_t m, int64_t n, int64_t k, const float *a,
             int64_t lda, const float *b, int64_t ldb, float *c,
             int64_t ldc, bool fp16_inputs = false,
             const int64_t *a_rows = nullptr, bool accumulate = false);

/**
 * C = A * B^T (B stored n x k row-major), blocked, preserving the
 * 4-way-split lane order of ops.h `dot` per element — bit-identical
 * to `gemmTransBNaiveF32` (both share the same per-element dot
 * kernel, so contraction choices can never diverge).
 */
void gemmTransBF32(int64_t m, int64_t n, int64_t k, const float *a,
                   int64_t lda, const float *b, int64_t ldb, float *c,
                   int64_t ldc);

/**
 * out[j] = dot(q, b + j*ldb, k) * scale for j in [0, rows) — the
 * attention-score row kernel (Q_i . K_j over one head slice), using
 * the same 4-way-lane dot as `gemmTransBNaiveF32`.
 */
void dotRowsScaled(const float *q, const float *b, int64_t ldb,
                   int64_t rows, int64_t k, float scale, float *out);

/**
 * INT8 GEMM with per-row / per-output-channel scales:
 * C[i][j] = (sum_k a[i][k]*bt[j][k]) * a_scales[i] * b_scales[j].
 * A is (m x k) int8 row-major, BT is (n x k) int8 row-major (i.e. B
 * transposed).  Integer accumulation is exact, so blocking cannot
 * change results.
 */
void gemmInt8S32(int64_t m, int64_t n, int64_t k, const int8_t *a,
                 const float *a_scales, const int8_t *bt,
                 const float *b_scales, float *c, int64_t ldc);

// ---------------------------------------------------------------
// Reference kernels (the pre-kernel-layer implementations), kept as
// the exactness baseline for tests and the Naive backend.
// ---------------------------------------------------------------

/** C = A * B, naive ikj loop (zero-skip on A elements). */
void gemmNaiveF32(int64_t m, int64_t n, int64_t k, const float *a,
                  int64_t lda, const float *b, int64_t ldb, float *c,
                  int64_t ldc, bool fp16_inputs = false);

/**
 * C = A * B^T, unblocked row sweep.  Shares the blocked path's dot
 * primitives, so it is bit-identical to `gemmTransBF32` by
 * construction; kept as the A/B baseline for the j-tiling.
 */
void gemmTransBNaiveF32(int64_t m, int64_t n, int64_t k,
                        const float *a, int64_t lda, const float *b,
                        int64_t ldb, float *c, int64_t ldc);

// ---------------------------------------------------------------
// BLAS backend entry points.  Callable only when blasAvailable();
// they panic otherwise.  Not bit-exact vs the portable path.
// ---------------------------------------------------------------

/** C = A * B via sgemm_ (fp16_inputs rounds operand copies first). */
void gemmBlasF32(int64_t m, int64_t n, int64_t k, const float *a,
                 int64_t lda, const float *b, int64_t ldb, float *c,
                 int64_t ldc, bool fp16_inputs = false);

/** C = A * B^T via sgemm_. */
void gemmTransBBlasF32(int64_t m, int64_t n, int64_t k, const float *a,
                       int64_t lda, const float *b, int64_t ldb,
                       float *c, int64_t ldc);

} // namespace kernels
} // namespace focus

#endif // FOCUS_TENSOR_KERNELS_H
