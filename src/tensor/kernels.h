/**
 * @file
 * Blocked GEMM kernel layer and SFU/vector-math tier: cache-blocked,
 * register-tiled portable microkernels behind runtime backend
 * dispatches.
 *
 * This is the compute substrate under `tensor/ops.h` (`gemm`,
 * `gemmTransB`, softmax, RMSNorm, activations), `tensor/quant.h`
 * (`gemmInt8`), the attention inner loops of `vlm/model.cc`, and the
 * SIC similarity gather of `focus/sic.cc`.  For GEMM, three backends
 * exist:
 *
 *  - **Portable** (default): B-panel packing + 4xNR register-tiled
 *    microkernel, M-blocks fanned across the `runtime/thread_pool.h`
 *    pool.  Bit-identical to the naive reference — per output element
 *    the accumulation order is exactly the reference order (ascending
 *    k with a single accumulator for `gemm`, the 4-way-split `dot`
 *    order for `gemmTransB`), at every thread count.
 *  - **Naive**: the pre-kernel-layer triple loops, kept as the
 *    exactness reference and for A/B benchmarking.
 *  - **Blas**: system `sgemm_` behind the `FOCUS_WITH_BLAS` CMake
 *    option.  NOT bit-exact (BLAS reorders the k-reduction); expected
 *    agreement is ~1e-5 relative for the shapes used here (see
 *    docs/KERNELS.md).
 *
 * Backend selection: `FOCUS_GEMM_BACKEND` environment variable
 * (`portable` | `naive` | `blas`) or `setBackend()`.  The interior
 * attention kernels (`dotRowsScaled`, the P*V product) always run
 * portable — they are part of the deterministic functional model and
 * have no BLAS equivalent with the required accumulation order.
 *
 * The SFU tier (softmax/exp, SiLU/GELU, RMSNorm, the SIC similarity
 * gather) has its own two-way dispatch, `FOCUS_MATH_BACKEND`:
 *
 *  - **exact** (default): the historical scalar loops, verbatim —
 *    `std::exp`/`std::tanh` through libm, serial per-row
 *    accumulation, the ops.h 4-lane `dot`.  Bit-identical to the
 *    pre-SFU-tier code at every thread count; ctest runs this.
 *  - **vector**: branch-free polynomial `expf` (Cephes-style
 *    degree-6, relative error ~2 ulp over the clamped range) and
 *    multi-lane reductions under the same `target_clones` scheme as
 *    the GEMM microkernels.  Not bit-exact vs `exact`; agreement is
 *    enforced to float-rounding scale by `tests/test_kernels.cc`.
 *    Benches default to this backend.
 *
 * Both SFU backends are deterministic within a build: per-row work is
 * data-parallel with no cross-row reduction, so results are
 * bit-identical at every thread count (`SfuKernels.*` tests).
 */

#ifndef FOCUS_TENSOR_KERNELS_H
#define FOCUS_TENSOR_KERNELS_H

#include <cstdint>

namespace focus
{
namespace kernels
{

/** GEMM backend selected at runtime (see file comment). */
enum class GemmBackend
{
    Portable, ///< blocked/tiled, bit-exact vs naive, pool-parallel
    Naive,    ///< reference triple loops (pre-kernel-layer code)
    Blas      ///< system sgemm, only if built with FOCUS_WITH_BLAS
};

/** Name for logging / bench banners. */
const char *backendName(GemmBackend b);

/** True when the binary was built with FOCUS_WITH_BLAS. */
bool blasAvailable();

/**
 * Parse a backend name ("portable", "naive", "blas"); returns false
 * on an unknown name.
 */
bool parseBackend(const char *name, GemmBackend &out);

/**
 * Currently active backend.  Initialized once from the
 * FOCUS_GEMM_BACKEND environment variable (default Portable; panics
 * if "blas" is requested but unavailable).
 */
GemmBackend activeBackend();

/** Override the active backend (panics on Blas when unavailable). */
void setBackend(GemmBackend b);

// ---------------------------------------------------------------
// SFU / vector-math tier (softmax, exp, activations, RMSNorm, SIC
// similarity gather).  See the file comment for backend semantics.
// ---------------------------------------------------------------

/** Math backend for the SFU tier. */
enum class MathBackend
{
    Exact, ///< historical scalar loops (libm), bit-identical baseline
    Vector ///< polynomial expf + multi-lane loops, tolerance-validated
};

/** Name for logging / bench banners ("exact" | "vector"). */
const char *mathBackendName(MathBackend b);

/**
 * Parse a math-backend name ("exact", "vector"); returns false on an
 * unknown name.
 */
bool parseMathBackend(const char *name, MathBackend &out);

/**
 * Currently active math backend.  Initialized once from the
 * FOCUS_MATH_BACKEND environment variable (default Exact; panics on
 * an unknown name).
 */
MathBackend activeMathBackend();

/** Override the active math backend. */
void setMathBackend(MathBackend b);

/**
 * x[i][j] = exp(x[i][j]) over a (rows x cols) row-major block with
 * row stride @p ld.  Exact: `std::exp` per element.  Vector:
 * polynomial expf — NaN propagates, inputs below the clamp range
 * (about -86) flush to exactly 0 like libm's underflow, and +inf
 * saturates to exp(88) ~ 1.7e38 (large but finite).  Rows fan across
 * the thread pool when the block is large enough; per-row work is
 * independent, so results are bit-identical at every thread count.
 */
void expRowsF32(int64_t rows, int64_t cols, float *x, int64_t ld);

/**
 * Fused row-wise numerically-stable softmax over a (rows x cols)
 * row-major block with row stride @p ld: per row, subtract the max,
 * exponentiate, and scale by the reciprocal of the sum.  Rows of
 * width 0 (or empty blocks) are a no-op.  The exact backend
 * reproduces the historical `tensor/ops.cc` loop bit-for-bit
 * (including its `1/sum` multiply); the vector backend runs the
 * polynomial expf with 8-lane max/sum reductions.  All-NaN /
 * all-(-inf) rows propagate NaN on both backends.  Row-parallel and
 * thread-count invariant like expRowsF32.
 */
void softmaxRowsF32(int64_t rows, int64_t cols, float *x, int64_t ld);

/**
 * x[j] = exp(x[j] - bias) for j in [0, n); returns the sum of the
 * results accumulated in ascending-j order (the readout logit path of
 * `vlm/model.cc`).  Exact: serial `std::exp` + serial float sum —
 * bit-identical to the historical in-line loop.  Vector: polynomial
 * expf + 8-lane sum.
 */
float expBiasedSumF32(float *x, int64_t n, float bias);

/** x[i] = x[i] * sigmoid(x[i]) (SiLU/swish), element-wise over n. */
void siluF32(float *x, int64_t n);

/** GELU tanh approximation, element-wise over n. */
void geluF32(float *x, int64_t n);

/**
 * RMSNorm over each row of a (rows x cols) block with row stride
 * @p ld: row /= sqrt(mean(row^2) + eps), then scaled by @p gain
 * (length cols) when non-null.  cols == 0 is a no-op.  Exact
 * reproduces the historical serial loop; vector uses 8-lane
 * sum-of-squares.
 */
void rmsNormRowsF32(int64_t rows, int64_t cols, float *x, int64_t ld,
                    const float *gain, float eps);

/**
 * norms[i] = l2 norm of row i of a (rows x n) block with row stride
 * @p ld.  Exact matches ops.h `l2Norm` per row (4-lane dot order);
 * vector uses an 8-lane sum of squares.
 */
void l2NormRowsF32(const float *x, int64_t ld, int64_t rows, int64_t n,
                   float *norms);

/**
 * Blocked cosine-similarity gather (the SIC matcher inner loop):
 * sims[c] = cosine(key, pack + cand[c]*ld) for c in [0, count),
 * using precomputed norms (@p key_norm for the key, norms[cand[c]]
 * for candidate c — the per-tile L2 buffer the hardware matcher
 * keeps).  Near-zero norms yield similarity 0, as in ops.h
 * `cosineSimilarityPrenorm`.  The reference rows are packed once per
 * tile slice by the caller; candidates stream through an 8-lane
 * register-tiled dot kernel on the vector backend (one candidate per
 * call — see the simDot1 comment for why wider tiling loses), and
 * through the historical `cosineSimilarityPrenorm` scalar path
 * (bit-identical) on the exact backend.
 */
void simGatherF32(const float *key, float key_norm, const float *pack,
                  int64_t ld, const float *norms, const int64_t *cand,
                  int64_t count, int64_t n, float *sims);

// ---------------------------------------------------------------
// Blocking geometry (exposed for tests and docs/KERNELS.md).
// ---------------------------------------------------------------
inline constexpr int64_t kMr = 4;   ///< microkernel rows (A panel)
inline constexpr int64_t kNr = 8;   ///< microkernel cols (B panel)
inline constexpr int64_t kMc = 64;  ///< rows per M block = parallel grain
inline constexpr int64_t kKc = 256; ///< depth per packed K block

/**
 * C = A * B (or C += A * B with @p accumulate) on raw row-major
 * buffers — the portable blocked path.
 *
 * A is (m x k) with row stride @p lda, B is (k x n) with row stride
 * @p ldb, C is (m x n) with row stride @p ldc.  With @p accumulate
 * false (the default) C's prior contents are ignored: the first K
 * block starts its accumulators at zero, so callers need not zero C.
 * When @p fp16_inputs is set, both operands are rounded through
 * binary16 while being packed, so the microkernel hot loop stays
 * branch-free.  @p a_rows, when non-null, is an m-entry gather map:
 * logical A row i reads from a + a_rows[i]*lda (used for the
 * post-prune P*V product).
 *
 * Per output element the accumulation order is ascending k with a
 * single accumulator — bit-identical to `gemmNaiveF32` on finite
 * inputs at every thread count.
 */
void gemmF32(int64_t m, int64_t n, int64_t k, const float *a,
             int64_t lda, const float *b, int64_t ldb, float *c,
             int64_t ldc, bool fp16_inputs = false,
             const int64_t *a_rows = nullptr, bool accumulate = false);

/**
 * C = A * B^T (B stored n x k row-major), blocked, preserving the
 * 4-way-split lane order of ops.h `dot` per element — bit-identical
 * to `gemmTransBNaiveF32` (both share the same per-element dot
 * kernel, so contraction choices can never diverge).
 */
void gemmTransBF32(int64_t m, int64_t n, int64_t k, const float *a,
                   int64_t lda, const float *b, int64_t ldb, float *c,
                   int64_t ldc);

/**
 * out[j] = dot(q, b + j*ldb, k) * scale for j in [0, rows) — the
 * attention-score row kernel (Q_i . K_j over one head slice), using
 * the same 4-way-lane dot as `gemmTransBNaiveF32`.
 */
void dotRowsScaled(const float *q, const float *b, int64_t ldb,
                   int64_t rows, int64_t k, float scale, float *out);

/**
 * Causal attention scores for one head slice, query-row tiled:
 * out[i*ldo + j] = dot(q + i*ldq, keys + j*ldk, k) * scale for
 * j in [0, i+1), i in [0, rows).  Entries with j > i are NOT written.
 *
 * Per element this is exactly the `dotRowsScaled` arithmetic (the
 * dot4/dot1 lane split with groups of four key rows aligned to
 * j = 0), so a row computed here is bit-identical to a
 * `dotRowsScaled(q_i, keys, ldk, i+1, ...)` call.  The tiling only
 * reorders *which* (i, j) pair is computed when: four query rows
 * share one sweep over their common key range, so the key panel is
 * streamed from cache once per tile instead of once per row (the
 * QK^T interior was the top profile entry of the per-sample path).
 */
void qkScoresCausalF32(const float *q, int64_t ldq, const float *keys,
                       int64_t ldk, int64_t rows, int64_t k,
                       float scale, float *out, int64_t ldo);

/**
 * Causal P*V for one head slice with an optional row gather map:
 * for each output row r in [0, m), with src = rowmap ? rowmap[r] : r,
 *
 *   out[r*ldo + c] = sum_{j=0}^{src} p[src*ldp + j] * v[j*ldv + c]
 *
 * accumulated in ascending-j order with a single accumulator per
 * element — the `gemmF32` reference order.  The j-range stops at the
 * causal limit src+1: rows of P come out of a causal softmax, so
 * every skipped p[src][j] (j > src) is exactly +-0 and the full-range
 * gemmF32 product adds only exact zeros beyond the limit (the same
 * argument that makes `gemmNaiveF32`'s zero-skip bit-identical).
 * Skipping them halves the PV MACs and avoids packing the (rows x
 * rows) probability matrix entirely.
 */
void pvCausalF32(int64_t m, int64_t n, const float *p, int64_t ldp,
                 const int64_t *rowmap, const float *v, int64_t ldv,
                 float *out, int64_t ldo);

/**
 * INT8 GEMM with per-row / per-output-channel scales:
 * C[i][j] = (sum_k a[i][k]*bt[j][k]) * a_scales[i] * b_scales[j].
 * A is (m x k) int8 row-major, BT is (n x k) int8 row-major (i.e. B
 * transposed).  Integer accumulation is exact, so blocking cannot
 * change results.
 */
void gemmInt8S32(int64_t m, int64_t n, int64_t k, const int8_t *a,
                 const float *a_scales, const int8_t *bt,
                 const float *b_scales, float *c, int64_t ldc);

// ---------------------------------------------------------------
// Reference kernels (the pre-kernel-layer implementations), kept as
// the exactness baseline for tests and the Naive backend.
// ---------------------------------------------------------------

/** C = A * B, naive ikj loop (zero-skip on A elements). */
void gemmNaiveF32(int64_t m, int64_t n, int64_t k, const float *a,
                  int64_t lda, const float *b, int64_t ldb, float *c,
                  int64_t ldc, bool fp16_inputs = false);

/**
 * C = A * B^T, unblocked row sweep.  Shares the blocked path's dot
 * primitives, so it is bit-identical to `gemmTransBF32` by
 * construction; kept as the A/B baseline for the j-tiling.
 */
void gemmTransBNaiveF32(int64_t m, int64_t n, int64_t k,
                        const float *a, int64_t lda, const float *b,
                        int64_t ldb, float *c, int64_t ldc);

// ---------------------------------------------------------------
// BLAS backend entry points.  Callable only when blasAvailable();
// they panic otherwise.  Not bit-exact vs the portable path.
// ---------------------------------------------------------------

/** C = A * B via sgemm_ (fp16_inputs rounds operand copies first). */
void gemmBlasF32(int64_t m, int64_t n, int64_t k, const float *a,
                 int64_t lda, const float *b, int64_t ldb, float *c,
                 int64_t ldc, bool fp16_inputs = false);

/** C = A * B^T via sgemm_. */
void gemmTransBBlasF32(int64_t m, int64_t n, int64_t k, const float *a,
                       int64_t lda, const float *b, int64_t ldb,
                       float *c, int64_t ldc);

} // namespace kernels
} // namespace focus

#endif // FOCUS_TENSOR_KERNELS_H
