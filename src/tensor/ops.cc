#include "tensor/ops.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace focus
{

void
gemm(const Tensor &a, const Tensor &b, Tensor &c, bool fp16_inputs)
{
    if (a.rank() != 2 || b.rank() != 2) {
        panic("gemm: operands must be rank-2");
    }
    const int64_t m = a.rows();
    const int64_t k = a.cols();
    const int64_t n = b.cols();
    if (b.rows() != k) {
        panic("gemm: inner dims mismatch (%" PRId64 " vs %" PRId64 ")",
              k, b.rows());
    }
    if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
        c = Tensor(m, n);
    }
    switch (kernels::activeBackend()) {
      case kernels::GemmBackend::Naive:
        // The reference kernel accumulates into C and needs it zeroed;
        // the portable and BLAS paths overwrite.
        c.fill(0.0f);
        kernels::gemmNaiveF32(m, n, k, a.data(), k, b.data(), n,
                              c.data(), n, fp16_inputs);
        break;
      case kernels::GemmBackend::Blas:
        kernels::gemmBlasF32(m, n, k, a.data(), k, b.data(), n,
                             c.data(), n, fp16_inputs);
        break;
      case kernels::GemmBackend::Portable:
        kernels::gemmF32(m, n, k, a.data(), k, b.data(), n, c.data(),
                         n, fp16_inputs);
        break;
    }
}

void
gemmTransB(const Tensor &a, const Tensor &b, Tensor &c)
{
    if (a.rank() != 2 || b.rank() != 2) {
        panic("gemmTransB: operands must be rank-2");
    }
    const int64_t m = a.rows();
    const int64_t k = a.cols();
    const int64_t n = b.rows();
    if (b.cols() != k) {
        panic("gemmTransB: inner dims mismatch (%" PRId64 " vs %" PRId64
              ")",
              k, b.cols());
    }
    if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
        c = Tensor(m, n);
    }
    switch (kernels::activeBackend()) {
      case kernels::GemmBackend::Naive:
        kernels::gemmTransBNaiveF32(m, n, k, a.data(), k, b.data(), k,
                                    c.data(), n);
        break;
      case kernels::GemmBackend::Blas:
        kernels::gemmTransBBlasF32(m, n, k, a.data(), k, b.data(), k,
                                   c.data(), n);
        break;
      case kernels::GemmBackend::Portable:
        kernels::gemmTransBF32(m, n, k, a.data(), k, b.data(), k,
                               c.data(), n);
        break;
    }
}

void
softmaxRows(Tensor &t)
{
    if (t.rank() != 2) {
        panic("softmaxRows: rank-2 required");
    }
    // The kernel defines zero-column (and zero-row) tensors as a
    // no-op — the historical loop read row[0] of an empty row.
    kernels::softmaxRowsF32(t.rows(), t.cols(), t.data(), t.cols());
}

void
softmaxRowsMasked(Tensor &t, const Tensor &mask)
{
    // Rank is validated before the mask is applied so a bad call
    // panics without half-mutating t.
    if (t.rank() != 2) {
        panic("softmaxRowsMasked: rank-2 required");
    }
    if (!t.sameShape(mask)) {
        panic("softmaxRowsMasked: shape mismatch");
    }
    for (int64_t i = 0; i < t.rows(); ++i) {
        float *row = t.row(i);
        const float *mrow = mask.row(i);
        for (int64_t j = 0; j < t.cols(); ++j) {
            row[j] += mrow[j];
        }
    }
    softmaxRows(t);
}

void
rmsNormRows(Tensor &t, const Tensor &gain, float eps)
{
    if (t.rank() != 2) {
        panic("rmsNormRows: rank-2 required");
    }
    const int64_t n = t.cols();
    // Empty gain means all-ones; a non-empty gain of the wrong
    // length is a caller bug (historically it was silently ignored,
    // producing un-gained output).
    if (gain.numel() != 0 && gain.numel() != n) {
        panic("rmsNormRows: gain numel %" PRId64 " != cols %" PRId64,
              gain.numel(), n);
    }
    kernels::rmsNormRowsF32(t.rows(), n, t.data(), n,
                            gain.numel() == n && n > 0 ? gain.data()
                                                       : nullptr,
                            eps);
}

void
siluInPlace(Tensor &t)
{
    kernels::siluF32(t.data(), t.numel());
}

void
geluInPlace(Tensor &t)
{
    kernels::geluF32(t.data(), t.numel());
}

float
dot(const float *a, const float *b, int64_t n)
{
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    for (; i < n; ++i) {
        s0 += a[i] * b[i];
    }
    return (s0 + s1) + (s2 + s3);
}

float
l2Norm(const float *v, int64_t n)
{
    return std::sqrt(dot(v, v, n));
}

float
cosineSimilarity(const float *a, const float *b, int64_t n)
{
    return cosineSimilarityPrenorm(a, l2Norm(a, n), b, l2Norm(b, n), n);
}

float
cosineSimilarityPrenorm(const float *a, float norm_a,
                        const float *b, float norm_b, int64_t n)
{
    constexpr float tiny = 1e-12f;
    if (norm_a < tiny || norm_b < tiny) {
        return 0.0f;
    }
    return dot(a, b, n) / (norm_a * norm_b);
}

double
relativeError(const Tensor &a, const Tensor &b)
{
    if (!a.sameShape(b)) {
        panic("relativeError: shape mismatch");
    }
    double num = 0.0, den = 0.0;
    const float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        num += std::abs(static_cast<double>(pa[i]) -
                        static_cast<double>(pb[i]));
        den += std::abs(static_cast<double>(pb[i]));
    }
    return den == 0.0 ? num : num / den;
}

double
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    if (!a.sameShape(b)) {
        panic("maxAbsDiff: shape mismatch");
    }
    double mx = 0.0;
    const float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        mx = std::max(mx, std::abs(static_cast<double>(pa[i]) -
                                   static_cast<double>(pb[i])));
    }
    return mx;
}

} // namespace focus
