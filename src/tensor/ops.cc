#include "tensor/ops.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace focus
{

void
gemm(const Tensor &a, const Tensor &b, Tensor &c, bool fp16_inputs)
{
    if (a.rank() != 2 || b.rank() != 2) {
        panic("gemm: operands must be rank-2");
    }
    const int64_t m = a.rows();
    const int64_t k = a.cols();
    const int64_t n = b.cols();
    if (b.rows() != k) {
        panic("gemm: inner dims mismatch (%" PRId64 " vs %" PRId64 ")",
              k, b.rows());
    }
    if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
        c = Tensor(m, n);
    }
    switch (kernels::activeBackend()) {
      case kernels::GemmBackend::Naive:
        // The reference kernel accumulates into C and needs it zeroed;
        // the portable and BLAS paths overwrite.
        c.fill(0.0f);
        kernels::gemmNaiveF32(m, n, k, a.data(), k, b.data(), n,
                              c.data(), n, fp16_inputs);
        break;
      case kernels::GemmBackend::Blas:
        kernels::gemmBlasF32(m, n, k, a.data(), k, b.data(), n,
                             c.data(), n, fp16_inputs);
        break;
      case kernels::GemmBackend::Portable:
        kernels::gemmF32(m, n, k, a.data(), k, b.data(), n, c.data(),
                         n, fp16_inputs);
        break;
    }
}

void
gemmTransB(const Tensor &a, const Tensor &b, Tensor &c)
{
    if (a.rank() != 2 || b.rank() != 2) {
        panic("gemmTransB: operands must be rank-2");
    }
    const int64_t m = a.rows();
    const int64_t k = a.cols();
    const int64_t n = b.rows();
    if (b.cols() != k) {
        panic("gemmTransB: inner dims mismatch (%" PRId64 " vs %" PRId64
              ")",
              k, b.cols());
    }
    if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
        c = Tensor(m, n);
    }
    switch (kernels::activeBackend()) {
      case kernels::GemmBackend::Naive:
        kernels::gemmTransBNaiveF32(m, n, k, a.data(), k, b.data(), k,
                                    c.data(), n);
        break;
      case kernels::GemmBackend::Blas:
        kernels::gemmTransBBlasF32(m, n, k, a.data(), k, b.data(), k,
                                   c.data(), n);
        break;
      case kernels::GemmBackend::Portable:
        kernels::gemmTransBF32(m, n, k, a.data(), k, b.data(), k,
                               c.data(), n);
        break;
    }
}

void
softmaxRows(Tensor &t)
{
    if (t.rank() != 2) {
        panic("softmaxRows: rank-2 required");
    }
    const int64_t n = t.cols();
    for (int64_t i = 0; i < t.rows(); ++i) {
        float *row = t.row(i);
        float mx = row[0];
        for (int64_t j = 1; j < n; ++j) {
            mx = std::max(mx, row[j]);
        }
        float sum = 0.0f;
        for (int64_t j = 0; j < n; ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
        }
        const float inv = 1.0f / sum;
        for (int64_t j = 0; j < n; ++j) {
            row[j] *= inv;
        }
    }
}

void
softmaxRowsMasked(Tensor &t, const Tensor &mask)
{
    if (!t.sameShape(mask)) {
        panic("softmaxRowsMasked: shape mismatch");
    }
    for (int64_t i = 0; i < t.rows(); ++i) {
        float *row = t.row(i);
        const float *mrow = mask.row(i);
        for (int64_t j = 0; j < t.cols(); ++j) {
            row[j] += mrow[j];
        }
    }
    softmaxRows(t);
}

void
rmsNormRows(Tensor &t, const Tensor &gain, float eps)
{
    if (t.rank() != 2) {
        panic("rmsNormRows: rank-2 required");
    }
    const int64_t n = t.cols();
    const bool has_gain = gain.numel() == n;
    for (int64_t i = 0; i < t.rows(); ++i) {
        float *row = t.row(i);
        float ms = 0.0f;
        for (int64_t j = 0; j < n; ++j) {
            ms += row[j] * row[j];
        }
        ms /= static_cast<float>(n);
        const float inv = 1.0f / std::sqrt(ms + eps);
        for (int64_t j = 0; j < n; ++j) {
            row[j] *= inv * (has_gain ? gain(j) : 1.0f);
        }
    }
}

void
siluInPlace(Tensor &t)
{
    float *d = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
        d[i] = d[i] / (1.0f + std::exp(-d[i]));
    }
}

void
geluInPlace(Tensor &t)
{
    constexpr float c = 0.7978845608f; // sqrt(2/pi)
    float *d = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
        const float x = d[i];
        d[i] = 0.5f * x *
            (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
    }
}

float
dot(const float *a, const float *b, int64_t n)
{
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    for (; i < n; ++i) {
        s0 += a[i] * b[i];
    }
    return (s0 + s1) + (s2 + s3);
}

float
l2Norm(const float *v, int64_t n)
{
    return std::sqrt(dot(v, v, n));
}

float
cosineSimilarity(const float *a, const float *b, int64_t n)
{
    return cosineSimilarityPrenorm(a, l2Norm(a, n), b, l2Norm(b, n), n);
}

float
cosineSimilarityPrenorm(const float *a, float norm_a,
                        const float *b, float norm_b, int64_t n)
{
    constexpr float tiny = 1e-12f;
    if (norm_a < tiny || norm_b < tiny) {
        return 0.0f;
    }
    return dot(a, b, n) / (norm_a * norm_b);
}

double
relativeError(const Tensor &a, const Tensor &b)
{
    if (!a.sameShape(b)) {
        panic("relativeError: shape mismatch");
    }
    double num = 0.0, den = 0.0;
    const float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        num += std::abs(static_cast<double>(pa[i]) -
                        static_cast<double>(pb[i]));
        den += std::abs(static_cast<double>(pb[i]));
    }
    return den == 0.0 ? num : num / den;
}

double
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    if (!a.sameShape(b)) {
        panic("maxAbsDiff: shape mismatch");
    }
    double mx = 0.0;
    const float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        mx = std::max(mx, std::abs(static_cast<double>(pa[i]) -
                                   static_cast<double>(pb[i])));
    }
    return mx;
}

} // namespace focus
