/**
 * @file
 * Numeric kernels for the functional VLM model: GEMM, softmax,
 * RMSNorm, activation functions, and the vector-similarity primitives
 * used by the concentration algorithms.
 */

#ifndef FOCUS_TENSOR_OPS_H
#define FOCUS_TENSOR_OPS_H

#include <cstdint>

#include "tensor/tensor.h"

namespace focus
{

/**
 * C = A * B.  A is (M x K), B is (K x N), C is (M x N).
 *
 * Accumulation is float (FP32), matching the PE array; if
 * @p fp16_inputs is true both inputs are rounded through binary16
 * element-wise before use, emulating FP16 operand storage.
 *
 * Dispatches to the backend selected in `tensor/kernels.h` (blocked
 * portable kernels by default; the naive reference or system BLAS via
 * `FOCUS_GEMM_BACKEND`).  The portable path is bit-identical to the
 * naive reference and fans M blocks across the global thread pool;
 * see docs/KERNELS.md.
 */
void gemm(const Tensor &a, const Tensor &b, Tensor &c,
          bool fp16_inputs = false);

/**
 * C = A * B^T.  A is (M x K), B is (N x K), C is (M x N).
 * Backend-dispatched like gemm().
 */
void gemmTransB(const Tensor &a, const Tensor &b, Tensor &c);

/**
 * Row-wise numerically-stable softmax over a rank-2 tensor.
 * Degenerate shapes (0 rows and/or 0 columns) are defined no-ops.
 * All-(-inf) rows propagate NaN.  Dispatches on the SFU math backend
 * (`FOCUS_MATH_BACKEND=exact|vector`, see tensor/kernels.h): exact
 * is the historical bit-identical scalar path, vector the polynomial
 * SIMD path.
 */
void softmaxRows(Tensor &t);

/**
 * Row-wise softmax with an additive mask (mask 0 or -inf style).
 * Both operands must be rank-2 of the same shape; rank is validated
 * before the mask is applied.
 */
void softmaxRowsMasked(Tensor &t, const Tensor &mask);

/**
 * RMSNorm over the last dimension: x / sqrt(mean(x^2) + eps) * gain.
 * @p gain may be empty (all-ones); a non-empty gain whose length is
 * not the column count panics.  Zero-column tensors are a no-op.
 * Backend-dispatched like softmaxRows().
 */
void rmsNormRows(Tensor &t, const Tensor &gain, float eps = 1e-6f);

/** SiLU (swish), element-wise.  Backend-dispatched like softmaxRows(). */
void siluInPlace(Tensor &t);

/**
 * GELU (tanh approximation), element-wise.  Backend-dispatched like
 * softmaxRows().
 */
void geluInPlace(Tensor &t);

/** Dot product of two length-n float vectors. */
float dot(const float *a, const float *b, int64_t n);

/** L2 norm of a length-n float vector. */
float l2Norm(const float *v, int64_t n);

/**
 * Cosine similarity of two length-n vectors.  Returns 0 if either
 * vector has (near-)zero norm, so degenerate vectors never match.
 */
float cosineSimilarity(const float *a, const float *b, int64_t n);

/**
 * Cosine similarity with precomputed norms, as the hardware matcher
 * computes it (norms come from a per-token L2 buffer).
 */
float cosineSimilarityPrenorm(const float *a, float norm_a,
                              const float *b, float norm_b, int64_t n);

/** Mean absolute relative error between two same-shape tensors. */
double relativeError(const Tensor &a, const Tensor &b);

/** Max absolute difference between two same-shape tensors. */
double maxAbsDiff(const Tensor &a, const Tensor &b);

} // namespace focus

#endif // FOCUS_TENSOR_OPS_H
