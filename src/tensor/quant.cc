#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace focus
{

QuantizedMatrix
quantizeRows(const Tensor &t)
{
    if (t.rank() != 2) {
        panic("quantizeRows: rank-2 required");
    }
    QuantizedMatrix q;
    q.rows = t.rows();
    q.cols = t.cols();
    q.data.resize(static_cast<size_t>(q.rows * q.cols));
    q.scales.resize(static_cast<size_t>(q.rows));

    for (int64_t i = 0; i < q.rows; ++i) {
        const float *row = t.row(i);
        float absmax = 0.0f;
        for (int64_t j = 0; j < q.cols; ++j) {
            absmax = std::max(absmax, std::abs(row[j]));
        }
        const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
        q.scales[static_cast<size_t>(i)] = scale;
        const float inv = 1.0f / scale;
        for (int64_t j = 0; j < q.cols; ++j) {
            const float v = std::round(row[j] * inv);
            q.data[static_cast<size_t>(i * q.cols + j)] =
                static_cast<int8_t>(std::clamp(v, -127.0f, 127.0f));
        }
    }
    return q;
}

Tensor
dequantize(const QuantizedMatrix &q)
{
    Tensor t(q.rows, q.cols);
    for (int64_t i = 0; i < q.rows; ++i) {
        const float scale = q.scales[static_cast<size_t>(i)];
        const int8_t *src = q.row(i);
        float *dst = t.row(i);
        for (int64_t j = 0; j < q.cols; ++j) {
            dst[j] = static_cast<float>(src[j]) * scale;
        }
    }
    return t;
}

Tensor
int8RoundTrip(const Tensor &t)
{
    return dequantize(quantizeRows(t));
}

void
gemmInt8(const Tensor &a, const Tensor &b, Tensor &c)
{
    if (a.rank() != 2 || b.rank() != 2 || a.cols() != b.rows()) {
        panic("gemmInt8: bad operand shapes");
    }
    const int64_t m = a.rows();
    const int64_t k = a.cols();
    const int64_t n = b.cols();

    const QuantizedMatrix qa = quantizeRows(a);

    // Quantize B per output channel: transpose, quantize rows.
    Tensor bt(n, k);
    for (int64_t i = 0; i < k; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            bt(j, i) = b(i, j);
        }
    }
    const QuantizedMatrix qb = quantizeRows(bt);

    if (c.rank() != 2 || c.rows() != m || c.cols() != n) {
        c = Tensor(m, n);
    }
    // Integer accumulation is exact, so the blocked kernel is free to
    // reorder; results are identical to the reference triple loop.
    kernels::gemmInt8S32(m, n, k, qa.data.data(), qa.scales.data(),
                         qb.data.data(), qb.scales.data(), c.data(),
                         n);
}

} // namespace focus
