/**
 * @file
 * INT8 symmetric quantization used by the Tbl. IV "synergy with
 * quantization" experiment.
 *
 * Activations/weights are quantized per-row (per output channel for
 * weights) with a symmetric scale, multiplied in int32, and
 * dequantized, mirroring bitsandbytes-style W8A8 inference at the
 * fidelity level that matters for the concentration algorithms: the
 * quantization noise perturbs cosine similarities and attention
 * scores, which is what shifts sparsity/accuracy in the paper.
 */

#ifndef FOCUS_TENSOR_QUANT_H
#define FOCUS_TENSOR_QUANT_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace focus
{

/** A rank-2 tensor quantized row-wise to int8. */
struct QuantizedMatrix
{
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<int8_t> data;   ///< row-major int8 values
    std::vector<float> scales;  ///< one scale per row

    const int8_t *row(int64_t i) const { return data.data() + i * cols; }
};

/** Quantize with per-row symmetric scales (absmax / 127). */
QuantizedMatrix quantizeRows(const Tensor &t);

/** Dequantize back to float. */
Tensor dequantize(const QuantizedMatrix &q);

/**
 * Round-trip a tensor through int8 (quantize + dequantize).  This is
 * how the INT8 experiments inject quantization error into the
 * functional pipeline.
 */
Tensor int8RoundTrip(const Tensor &t);

/**
 * INT8 GEMM: C = deq(qA) * deq(qB) computed in int32 then scaled.
 * A is (M x K) quantized per row; B is (K x N) quantized per *column*
 * internally (B is transposed before quantization so each output
 * channel has its own scale).
 */
void gemmInt8(const Tensor &a, const Tensor &b, Tensor &c);

} // namespace focus

#endif // FOCUS_TENSOR_QUANT_H
