#include "tensor/tensor.h"

#include <cinttypes>
#include <numeric>

#include "common/half.h"
#include "common/logging.h"

namespace focus
{

Tensor::Tensor() : stride0_(0), stride1_(0) {}

Tensor::Tensor(int64_t d0)
    : shape_{d0}, data_(static_cast<size_t>(d0), 0.0f)
{
    initStrides();
}

Tensor::Tensor(int64_t d0, int64_t d1)
    : shape_{d0, d1}, data_(static_cast<size_t>(d0 * d1), 0.0f)
{
    initStrides();
}

Tensor::Tensor(int64_t d0, int64_t d1, int64_t d2)
    : shape_{d0, d1, d2}, data_(static_cast<size_t>(d0 * d1 * d2), 0.0f)
{
    initStrides();
}

void
Tensor::initStrides()
{
    if (shape_.size() == 1) {
        stride0_ = 1;
        stride1_ = 0;
    } else if (shape_.size() == 2) {
        stride0_ = shape_[1];
        stride1_ = 1;
    } else if (shape_.size() == 3) {
        stride0_ = shape_[1] * shape_[2];
        stride1_ = shape_[2];
    }
}

int64_t
Tensor::dim(int i) const
{
    if (i < 0 || i >= rank()) {
        panic("Tensor::dim: index %d out of rank %d", i, rank());
    }
    return shape_[static_cast<size_t>(i)];
}

float &
Tensor::operator()(int64_t i)
{
    return data_[static_cast<size_t>(i)];
}

float
Tensor::operator()(int64_t i) const
{
    return data_[static_cast<size_t>(i)];
}

float &
Tensor::operator()(int64_t i, int64_t j)
{
    return data_[static_cast<size_t>(i * stride0_ + j)];
}

float
Tensor::operator()(int64_t i, int64_t j) const
{
    return data_[static_cast<size_t>(i * stride0_ + j)];
}

float &
Tensor::operator()(int64_t i, int64_t j, int64_t k)
{
    return data_[static_cast<size_t>(i * stride0_ + j * stride1_ + k)];
}

float
Tensor::operator()(int64_t i, int64_t j, int64_t k) const
{
    return data_[static_cast<size_t>(i * stride0_ + j * stride1_ + k)];
}

float *
Tensor::row(int64_t i)
{
    return data_.data() + i * stride0_;
}

const float *
Tensor::row(int64_t i) const
{
    return data_.data() + i * stride0_;
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Tensor::roundToFp16()
{
    for (auto &v : data_) {
        v = fp16Round(v);
    }
}

Tensor
Tensor::reshaped(const std::vector<int64_t> &new_shape) const
{
    int64_t n = 1;
    for (int64_t d : new_shape) {
        n *= d;
    }
    if (n != numel()) {
        panic("Tensor::reshaped: element count mismatch (%" PRId64
              " vs %" PRId64 ")",
              n, numel());
    }
    Tensor out;
    out.shape_ = new_shape;
    out.data_ = data_;
    out.initStrides();
    return out;
}

Tensor
Tensor::sliceRows(int64_t r0, int64_t r1) const
{
    if (rank() != 2 || r0 < 0 || r1 > rows() || r0 > r1) {
        panic("Tensor::sliceRows: bad slice [%" PRId64 ", %" PRId64
              ") of %" PRId64 " rows",
              r0, r1, rank() == 2 ? rows() : int64_t{-1});
    }
    Tensor out(r1 - r0, cols());
    std::copy(data_.begin() + r0 * stride0_,
              data_.begin() + r1 * stride0_, out.data_.begin());
    return out;
}

bool
Tensor::sameShape(const Tensor &other) const
{
    return shape_ == other.shape_;
}

} // namespace focus
