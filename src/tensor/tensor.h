/**
 * @file
 * Dense row-major tensor used by the functional model.
 *
 * Values are stored as float for speed; an explicit fp16 rounding pass
 * (`roundToFp16`) emulates binary16 storage where the architecture
 * holds FP16 data (activations, weights).  Shapes are limited to rank
 * <= 3, which covers everything in the pipeline (matrices and
 * frame-stacked activations).
 */

#ifndef FOCUS_TENSOR_TENSOR_H
#define FOCUS_TENSOR_TENSOR_H

#include <cstdint>
#include <vector>

namespace focus
{

/**
 * Row-major float tensor of rank 1..3.
 */
class Tensor
{
  public:
    Tensor();
    /** Rank-1. */
    explicit Tensor(int64_t d0);
    /** Rank-2. */
    Tensor(int64_t d0, int64_t d1);
    /** Rank-3. */
    Tensor(int64_t d0, int64_t d1, int64_t d2);

    int rank() const { return static_cast<int>(shape_.size()); }
    int64_t dim(int i) const;
    const std::vector<int64_t> &shape() const { return shape_; }
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float &operator()(int64_t i);
    float operator()(int64_t i) const;
    float &operator()(int64_t i, int64_t j);
    float operator()(int64_t i, int64_t j) const;
    float &operator()(int64_t i, int64_t j, int64_t k);
    float operator()(int64_t i, int64_t j, int64_t k) const;

    /** Pointer to the start of row @p i (rank-2 only). */
    float *row(int64_t i);
    const float *row(int64_t i) const;

    /** Number of columns of a rank-2 tensor. */
    int64_t rows() const { return dim(0); }
    int64_t cols() const { return dim(1); }

    void fill(float v);

    /** Round every element through binary16 (storage emulation). */
    void roundToFp16();

    /** Reinterpret with a new shape of identical element count. */
    Tensor reshaped(const std::vector<int64_t> &new_shape) const;

    /** Rank-2 slice of rows [r0, r1). */
    Tensor sliceRows(int64_t r0, int64_t r1) const;

    bool sameShape(const Tensor &other) const;

  private:
    std::vector<int64_t> shape_;
    std::vector<float> data_;
    int64_t stride0_;
    int64_t stride1_;

    void initStrides();
};

} // namespace focus

#endif // FOCUS_TENSOR_TENSOR_H
