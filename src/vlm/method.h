/**
 * @file
 * Method selection for a functional VLM forward pass.
 */

#ifndef FOCUS_VLM_METHOD_H
#define FOCUS_VLM_METHOD_H

#include <string>

#include "baselines/adaptiv.h"
#include "baselines/cmc.h"
#include "baselines/framefusion.h"
#include "focus/config.h"

namespace focus
{

/** Which concentration method a forward pass applies. */
enum class MethodKind
{
    Dense,       ///< vanilla, no reduction
    Focus,       ///< SEC + SIC per the FocusConfig flags
    AdapTiV,     ///< sign-similarity intra-frame merging
    CMC,         ///< codec-style inter-frame matching
    FrameFusion, ///< similarity + importance reduction, fixed budget
};

/** Full method configuration for one run. */
struct MethodConfig
{
    MethodKind kind = MethodKind::Dense;

    FocusConfig focus;
    AdaptivConfig adaptiv;
    CmcConfig cmc;
    FrameFusionConfig framefusion;

    /** Emulate INT8 W8A8 quantization (Tbl. IV). */
    bool int8 = false;

    /** Human-readable method name for reports. */
    std::string name() const;

    // -- named constructors for the standard configurations --
    static MethodConfig dense();
    static MethodConfig focusFull();
    static MethodConfig focusSecOnly();
    static MethodConfig focusSicOnly();
    static MethodConfig focusTokenWise();
    static MethodConfig adaptivBaseline();
    static MethodConfig cmcBaseline();
    static MethodConfig frameFusionBaseline();
};

inline std::string
MethodConfig::name() const
{
    switch (kind) {
      case MethodKind::Dense:
        return int8 ? "Dense-INT8" : "Dense";
      case MethodKind::Focus:
        if (focus.sic.token_wise) {
            return "Focus-TokenWise";
        }
        if (focus.sec_enable && !focus.sic_enable) {
            return "Focus-SEC";
        }
        if (!focus.sec_enable && focus.sic_enable) {
            return "Focus-SIC";
        }
        return int8 ? "Focus-INT8" : "Focus";
      case MethodKind::AdapTiV:
        return "AdapTiV";
      case MethodKind::CMC:
        return "CMC";
      case MethodKind::FrameFusion:
        return "FrameFusion";
    }
    return "?";
}

inline MethodConfig
MethodConfig::dense()
{
    return MethodConfig{};
}

inline MethodConfig
MethodConfig::focusFull()
{
    MethodConfig m;
    m.kind = MethodKind::Focus;
    return m;
}

inline MethodConfig
MethodConfig::focusSecOnly()
{
    MethodConfig m;
    m.kind = MethodKind::Focus;
    m.focus.sic_enable = false;
    return m;
}

inline MethodConfig
MethodConfig::focusSicOnly()
{
    MethodConfig m;
    m.kind = MethodKind::Focus;
    m.focus.sec_enable = false;
    return m;
}

inline MethodConfig
MethodConfig::focusTokenWise()
{
    MethodConfig m;
    m.kind = MethodKind::Focus;
    m.focus.sic.token_wise = true;
    return m;
}

inline MethodConfig
MethodConfig::adaptivBaseline()
{
    MethodConfig m;
    m.kind = MethodKind::AdapTiV;
    return m;
}

inline MethodConfig
MethodConfig::cmcBaseline()
{
    MethodConfig m;
    m.kind = MethodKind::CMC;
    return m;
}

inline MethodConfig
MethodConfig::frameFusionBaseline()
{
    MethodConfig m;
    m.kind = MethodKind::FrameFusion;
    return m;
}

} // namespace focus

#endif // FOCUS_VLM_METHOD_H
