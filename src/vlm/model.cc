#include "vlm/model.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "focus/sec.h"
#include "focus/sic.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

namespace focus
{

namespace
{

/** Random matrix with optional identity component. */
Tensor
initWeight(Rng &rng, int64_t rows, int64_t cols, double ident,
           double noise)
{
    Tensor w(rows, cols);
    const double scale = noise / std::sqrt(static_cast<double>(rows));
    for (int64_t i = 0; i < rows; ++i) {
        float *row = w.row(i);
        for (int64_t j = 0; j < cols; ++j) {
            row[j] = static_cast<float>(rng.gaussian(0.0, scale));
        }
        if (i < cols) {
            row[i] += static_cast<float>(ident);
        }
    }
    return w;
}

/**
 * Random matrix with band-local structure: input group g mixes mostly
 * into output band g, with weaker cross-band coupling.
 *
 * Trained transformers show strong channel locality in their
 * activations (outlier channels, per-channel scales); band-local
 * mixing reproduces the consequence that matters here — sub-token
 * (vector-level) similarity survives the FC layers, which is the
 * property SIC's vector granularity exploits over token granularity
 * (Fig. 1(c), Fig. 2(b)).
 */
Tensor
initBlockLocalWeight(Rng &rng, int64_t rows, int64_t cols, double ident,
                     double local_noise, double global_noise,
                     int groups)
{
    Tensor w(rows, cols);
    const int64_t row_band = rows / groups;
    const int64_t col_band = cols / groups;
    const double local_scale =
        local_noise / std::sqrt(static_cast<double>(row_band));
    const double global_scale =
        global_noise / std::sqrt(static_cast<double>(rows));
    for (int64_t i = 0; i < rows; ++i) {
        float *row = w.row(i);
        const int64_t gi = i / row_band;
        for (int64_t j = 0; j < cols; ++j) {
            const bool local = gi == j / col_band;
            row[j] = static_cast<float>(
                rng.gaussian(0.0, local ? local_scale : global_scale));
        }
        if (i < cols) {
            row[i] += static_cast<float>(ident);
        }
    }
    return w;
}

/** Round-trip all weights through int8 (per-row symmetric). */
Tensor
weightInt8(const Tensor &w)
{
    return int8RoundTrip(w);
}

} // namespace

VlmModel::VlmModel(const ModelProfile &profile, uint64_t seed)
    : prof_(profile)
{
    const int64_t d = prof_.hidden;
    const int64_t inner = prof_.ffnInner();
    Rng rng(seed ^ 0xfeedc0dedeadbeefull);

    layers_.reserve(static_cast<size_t>(prof_.layers));
    for (int l = 0; l < prof_.layers; ++l) {
        LayerWeights w;
        // Identity-heavy Q/K keep cross-modal attention grounded in
        // the input semantics (prompt prototype vs. scene content).
        w.wq = initWeight(rng, d, d, 1.6, 0.5);
        w.wk = initWeight(rng, d, d, 1.6, 0.5);
        w.wv = initWeight(rng, d, d, 0.7, 0.3);
        w.wo = initBlockLocalWeight(rng, d, d, 0.25, 0.35, 0.12,
                                    kNumGroups);
        w.wg = initBlockLocalWeight(rng, d, inner, 0.0, 1.0, 0.30,
                                    kNumGroups);
        w.wu = initBlockLocalWeight(rng, d, inner, 0.0, 1.0, 0.30,
                                    kNumGroups);
        w.wd = initBlockLocalWeight(rng, inner, d, 0.0, 0.45, 0.15,
                                    kNumGroups);
        w.n1 = Tensor(d);
        w.n2 = Tensor(d);
        w.n1.fill(1.0f);
        w.n2.fill(1.0f);
        layers_.push_back(std::move(w));
    }

    layers_int8_.reserve(layers_.size());
    for (const LayerWeights &w : layers_) {
        LayerWeights q;
        q.wq = weightInt8(w.wq);
        q.wk = weightInt8(w.wk);
        q.wv = weightInt8(w.wv);
        q.wo = weightInt8(w.wo);
        q.wg = weightInt8(w.wg);
        q.wu = weightInt8(w.wu);
        q.wd = weightInt8(w.wd);
        q.n1 = w.n1;
        q.n2 = w.n2;
        layers_int8_.push_back(std::move(q));
    }
}

void
VlmModel::attention(const Tensor &xn, const LayerWeights &w,
                    std::vector<Tensor> &head_probs, Tensor &q,
                    Tensor &k, Tensor &v) const
{
    const int64_t rows = xn.rows();
    const int64_t hd = prof_.headDim();
    gemm(xn, w.wq, q);
    gemm(xn, w.wk, k);
    gemm(xn, w.wv, v);

    head_probs.assign(static_cast<size_t>(prof_.heads), Tensor());
    const float inv_sqrt =
        1.0f / std::sqrt(static_cast<float>(hd));
    for (int h = 0; h < prof_.heads; ++h) {
        Tensor &p = head_probs[static_cast<size_t>(h)];
        p = Tensor(rows, rows);
        const int64_t c0 = static_cast<int64_t>(h) * hd;
        for (int64_t i = 0; i < rows; ++i) {
            const float *qi = q.row(i) + c0;
            float *prow = p.row(i);
            kernels::dotRowsScaled(qi, k.row(0) + c0, k.cols(), i + 1,
                                   hd, inv_sqrt, prow);
            // Causal mask: stream order is [visual ; text], so text
            // queries see every visual key.
            for (int64_t j = i + 1; j < rows; ++j) {
                prow[j] = -1e30f;
            }
        }
        softmaxRows(p);
    }
}

ForwardResult
VlmModel::forward(const VideoSample &sample, const MethodConfig &method,
                  const PrototypeBank &bank) const
{
    const int64_t d = prof_.hidden;
    const int64_t inner = prof_.ffnInner();
    const int64_t m_orig = sample.numVisual();
    const int64_t t_count = sample.numText();
    const std::vector<LayerWeights> &weights =
        method.int8 ? layers_int8_ : layers_;

    ForwardResult res;
    res.visual_original = m_orig;

    // ------------------------------------------------------------
    // Preprocess: token-level reduction for the merging baselines.
    // ------------------------------------------------------------
    TokenReduction red = identityReduction(m_orig);
    switch (method.kind) {
      case MethodKind::AdapTiV:
        red = adaptivReduce(sample.visual_tokens, sample.coords,
                            sample.frames, sample.grid_h, sample.grid_w,
                            method.adaptiv);
        break;
      case MethodKind::CMC:
        red = cmcReduce(sample.visual_tokens, sample.coords,
                        sample.frames, sample.grid_h, sample.grid_w,
                        method.cmc);
        break;
      case MethodKind::FrameFusion:
        red = frameFusionReduce(sample.visual_tokens, sample.coords,
                                sample.frames, sample.grid_h,
                                sample.grid_w, method.framefusion);
        break;
      default:
        break;
    }

    const int64_t s0 = static_cast<int64_t>(red.kept.size());
    res.visual_initial = s0;

    // Active-state arrays: merged-group mean embeddings, coordinates
    // of the surviving representative, original index (for readout).
    Tensor visual(s0, d);
    std::vector<TokenCoord> coords(static_cast<size_t>(s0));
    std::vector<int64_t> active_orig(static_cast<size_t>(s0));
    {
        std::vector<int64_t> kept_pos(static_cast<size_t>(m_orig), -1);
        for (int64_t p = 0; p < s0; ++p) {
            const int64_t orig = red.kept[static_cast<size_t>(p)];
            kept_pos[static_cast<size_t>(orig)] = p;
            coords[static_cast<size_t>(p)] =
                sample.coords[static_cast<size_t>(orig)];
            active_orig[static_cast<size_t>(p)] = orig;
        }
        std::vector<int64_t> counts(static_cast<size_t>(s0), 0);
        for (int64_t i = 0; i < m_orig; ++i) {
            const int64_t rep = red.assign[static_cast<size_t>(i)];
            if (rep < 0) {
                continue;
            }
            const int64_t p = kept_pos[static_cast<size_t>(rep)];
            if (p < 0) {
                panic("forward: token %" PRId64 " assigned to non-kept "
                      "representative %" PRId64, i, rep);
            }
            const float *src = sample.visual_tokens.row(i);
            float *dst = visual.row(p);
            for (int64_t j = 0; j < d; ++j) {
                dst[j] += src[j];
            }
            ++counts[static_cast<size_t>(p)];
        }
        for (int64_t p = 0; p < s0; ++p) {
            const float inv = 1.0f /
                static_cast<float>(std::max<int64_t>(
                    counts[static_cast<size_t>(p)], 1));
            float *dst = visual.row(p);
            for (int64_t j = 0; j < d; ++j) {
                dst[j] *= inv;
            }
        }
    }

    // Readout embeddings: input-space content of each active token.
    Tensor readout_emb = visual;

    // Working hidden state X = [visual ; text].
    Tensor x(s0 + t_count, d);
    for (int64_t i = 0; i < s0; ++i) {
        std::copy(visual.row(i), visual.row(i) + d, x.row(i));
    }
    for (int64_t i = 0; i < t_count; ++i) {
        std::copy(sample.text_tokens.row(i),
                  sample.text_tokens.row(i) + d, x.row(s0 + i));
    }

    const bool is_focus = method.kind == MethodKind::Focus;
    const bool sec_on = is_focus && method.focus.sec_enable;
    const bool sic_on = is_focus && method.focus.sic_enable;

    // Gather coordinates include text rows as non-spatial sentinels.
    auto gather_coords = [&](int64_t s_cur) {
        std::vector<TokenCoord> gc(coords.begin(),
                                   coords.begin() + s_cur);
        gc.resize(static_cast<size_t>(s_cur + t_count),
                  TokenCoord{-1, 0, 0});
        return gc;
    };

    // Per-layer dense reference ops (no reduction at all).
    const double rows0 = static_cast<double>(m_orig + t_count);
    const double dense_layer_ops =
        3.0 * rows0 * d * d +            // QKV projections
        2.0 * rows0 * rows0 * d +        // QK^T and PV
        1.0 * rows0 * d * d +            // O projection
        2.0 * rows0 * d * inner +        // gate, up
        1.0 * rows0 * inner * d;         // down
    res.dense_ops = dense_layer_ops * prof_.layers;

    int64_t s_cur = s0;
    std::vector<Tensor> head_probs;
    Tensor q, k, v;

    for (int l = 0; l < prof_.layers; ++l) {
        LayerRecord rec;
        rec.visual_in = s_cur;
        rec.text = t_count;
        const int64_t rows = s_cur + t_count;

        // ---- attention block ----
        Tensor xn = x;
        rmsNormRows(xn, weights[static_cast<size_t>(l)].n1);
        if (method.int8) {
            xn = int8RoundTrip(xn);
        } else {
            xn.roundToFp16();
        }
        if (sic_on && l > 0) {
            SicResult g = sicGather(xn, gather_coords(s_cur),
                                    method.focus.sic);
            rec.psi_qkv = g.uniqueFrac();
            rec.tile_fracs.insert(rec.tile_fracs.end(),
                                  g.tile_slice_unique_frac.begin(),
                                  g.tile_slice_unique_frac.end());
        }
        attention(xn, weights[static_cast<size_t>(l)], head_probs, q,
                  k, v);
        res.ops += 3.0 * static_cast<double>(rows) * d * d *
            rec.psi_qkv;
        res.ops += static_cast<double>(rows) * rows * d; // QK^T

        // ---- semantic pruning (SEC) ----
        std::vector<int64_t> retained; // positions among active visuals
        bool pruned = false;
        if (sec_on && prof_.pruneAtLayer(l, prof_.layers)) {
            const std::vector<float> importance =
                secImportance(head_probs, s_cur, t_count);
            switch (method.focus.sec.select) {
              case SecSelect::TopK: {
                const double ratio =
                    prof_.retentionAfterLayer(l, prof_.layers);
                const int64_t want = std::max<int64_t>(
                    1, static_cast<int64_t>(std::llround(
                           ratio * static_cast<double>(m_orig))));
                if (want < s_cur) {
                    retained = secTopK(importance, want);
                    pruned = true;
                }
                break;
              }
              case SecSelect::TopP:
                retained =
                    secTopP(importance, method.focus.sec.top_p);
                pruned = static_cast<int64_t>(retained.size()) < s_cur;
                break;
              case SecSelect::Threshold:
                retained = secThreshold(importance,
                                        method.focus.sec.threshold);
                pruned = static_cast<int64_t>(retained.size()) < s_cur;
                break;
            }
        }

        const int64_t s_next = pruned
            ? static_cast<int64_t>(retained.size()) : s_cur;
        const int64_t rows_after = s_next + t_count;
        rec.visual_out = s_next;

        // ---- P x V, computed only for surviving rows ----
        // (paper Sec. V-C: pruned tokens are skipped in P(i) x V)
        Tensor attn_out(rows_after, d);
        const int64_t hd = prof_.headDim();
        auto out_row_src = [&](int64_t r) {
            // Map post-prune row r to pre-prune row index.
            if (!pruned) {
                return r;
            }
            if (r < s_next) {
                return retained[static_cast<size_t>(r)];
            }
            return s_cur + (r - s_next);
        };
        // Each head is one blocked GEMM over its column slice; when
        // pruned, the row gather map selects surviving P rows without
        // materializing a compacted copy.
        std::vector<int64_t> pv_rows;
        const int64_t *pv_map = nullptr;
        if (pruned) {
            pv_rows.resize(static_cast<size_t>(rows_after));
            for (int64_t r = 0; r < rows_after; ++r) {
                pv_rows[static_cast<size_t>(r)] = out_row_src(r);
            }
            pv_map = pv_rows.data();
        }
        for (int h = 0; h < prof_.heads; ++h) {
            const Tensor &p = head_probs[static_cast<size_t>(h)];
            const int64_t c0 = static_cast<int64_t>(h) * hd;
            kernels::gemmF32(rows_after, hd, rows, p.data(), p.cols(),
                             v.data() + c0, v.cols(),
                             attn_out.data() + c0, attn_out.cols(),
                             /*fp16_inputs=*/false, pv_map);
        }
        res.ops += static_cast<double>(rows_after) * rows * d; // PV

        // ---- shrink the active state if pruned ----
        if (pruned) {
            Tensor x2(rows_after, d);
            Tensor ro2(s_next, d);
            std::vector<TokenCoord> c2(static_cast<size_t>(s_next));
            std::vector<int64_t> ao2(static_cast<size_t>(s_next));
            for (int64_t r = 0; r < s_next; ++r) {
                const int64_t srcv = retained[static_cast<size_t>(r)];
                std::copy(x.row(srcv), x.row(srcv) + d, x2.row(r));
                std::copy(readout_emb.row(srcv),
                          readout_emb.row(srcv) + d, ro2.row(r));
                c2[static_cast<size_t>(r)] =
                    coords[static_cast<size_t>(srcv)];
                ao2[static_cast<size_t>(r)] =
                    active_orig[static_cast<size_t>(srcv)];
            }
            for (int64_t r = 0; r < t_count; ++r) {
                std::copy(x.row(s_cur + r), x.row(s_cur + r) + d,
                          x2.row(s_next + r));
            }
            x = std::move(x2);
            readout_emb = std::move(ro2);
            coords = std::move(c2);
            active_orig = std::move(ao2);
            s_cur = s_next;
        }

        // ---- O projection ----
        if (sic_on) {
            SicResult g = sicGather(attn_out, gather_coords(s_cur),
                                    method.focus.sic);
            rec.psi_oproj = g.uniqueFrac();
            rec.tile_fracs.insert(rec.tile_fracs.end(),
                                  g.tile_slice_unique_frac.begin(),
                                  g.tile_slice_unique_frac.end());
        }
        Tensor o;
        gemm(attn_out, weights[static_cast<size_t>(l)].wo, o);
        res.ops += static_cast<double>(rows_after) * d * d *
            rec.psi_oproj;
        for (int64_t r = 0; r < rows_after; ++r) {
            float *xr = x.row(r);
            const float *orow = o.row(r);
            for (int64_t j = 0; j < d; ++j) {
                xr[j] += orow[j];
            }
        }

        // ---- FFN block ----
        Tensor xn2 = x;
        rmsNormRows(xn2, weights[static_cast<size_t>(l)].n2);
        if (method.int8) {
            xn2 = int8RoundTrip(xn2);
        } else {
            xn2.roundToFp16();
        }
        if (sic_on) {
            SicResult g = sicGather(xn2, gather_coords(s_cur),
                                    method.focus.sic);
            rec.psi_ffn = g.uniqueFrac();
            rec.tile_fracs.insert(rec.tile_fracs.end(),
                                  g.tile_slice_unique_frac.begin(),
                                  g.tile_slice_unique_frac.end());
        }
        Tensor gate, up;
        gemm(xn2, weights[static_cast<size_t>(l)].wg, gate);
        gemm(xn2, weights[static_cast<size_t>(l)].wu, up);
        res.ops += 2.0 * static_cast<double>(rows_after) * d * inner *
            rec.psi_ffn;
        siluInPlace(gate);
        for (int64_t i = 0; i < gate.numel(); ++i) {
            gate.data()[i] *= up.data()[i];
        }
        if (sic_on) {
            SicResult g = sicGather(gate, gather_coords(s_cur),
                                    method.focus.sic);
            rec.psi_down = g.uniqueFrac();
            rec.tile_fracs.insert(rec.tile_fracs.end(),
                                  g.tile_slice_unique_frac.begin(),
                                  g.tile_slice_unique_frac.end());
        }
        Tensor down;
        gemm(gate, weights[static_cast<size_t>(l)].wd, down);
        res.ops += static_cast<double>(rows_after) * inner * d *
            rec.psi_down;
        for (int64_t r = 0; r < rows_after; ++r) {
            float *xr = x.row(r);
            const float *dr = down.row(r);
            for (int64_t j = 0; j < d; ++j) {
                xr[j] += dr[j];
            }
        }

        res.layers.push_back(std::move(rec));
    }

    // ------------------------------------------------------------
    // Readout: final-layer cross-modal attention from the query
    // token over visual tokens, then nearest-prototype color.
    // ------------------------------------------------------------
    {
        Tensor xn = x;
        rmsNormRows(xn, layers_.back().n1);
        const int64_t qrow_idx = s_cur + sample.query_token;
        const int64_t hd = prof_.headDim();
        Tensor qv(1, d), kv;
        {
            Tensor qin = xn.sliceRows(qrow_idx, qrow_idx + 1);
            gemm(qin, layers_.back().wq, qv);
            Tensor vis = xn.sliceRows(0, s_cur);
            gemm(vis, layers_.back().wk, kv);
        }
        std::vector<float> weights_sum(static_cast<size_t>(s_cur),
                                       0.0f);
        const float inv_sqrt =
            1.0f / std::sqrt(static_cast<float>(hd));
        std::vector<float> logits(static_cast<size_t>(s_cur));
        for (int h = 0; h < prof_.heads; ++h) {
            const int64_t c0 = static_cast<int64_t>(h) * hd;
            kernels::dotRowsScaled(qv.row(0) + c0, kv.row(0) + c0,
                                   kv.cols(), s_cur, hd, inv_sqrt,
                                   logits.data());
            float mx = -1e30f;
            for (int64_t j = 0; j < s_cur; ++j) {
                mx = std::max(mx, logits[static_cast<size_t>(j)]);
            }
            // SFU-tier exp: the exact backend reproduces the
            // historical serial std::exp + serial-sum loop bit-exact;
            // the vector backend runs the polynomial expf.
            const float sum =
                kernels::expBiasedSumF32(logits.data(), s_cur, mx);
            for (int64_t j = 0; j < s_cur; ++j) {
                weights_sum[static_cast<size_t>(j)] +=
                    logits[static_cast<size_t>(j)] / sum /
                    static_cast<float>(prof_.heads);
            }
        }

        std::vector<float> readout(static_cast<size_t>(kGroupDim),
                                   0.0f);
        for (int64_t j = 0; j < s_cur; ++j) {
            const float w = weights_sum[static_cast<size_t>(j)];
            if (w <= 0.0f) {
                continue;
            }
            const float *emb = readout_emb.row(j);
            for (int g = 0; g < kNumGroups; ++g) {
                for (int e = 0; e < kGroupDim; ++e) {
                    readout[static_cast<size_t>(e)] +=
                        w * emb[g * kGroupDim + e] /
                        static_cast<float>(kNumGroups);
                }
            }
        }
        res.predicted_color = bank.classifyColor(readout.data());
        res.correct = res.predicted_color == sample.answer_color;
        res.readout_attention = std::move(weights_sum);
        res.active_original = active_orig;
    }

    return res;
}

std::vector<float>
VlmModel::attentionHeatmap(const VideoSample &sample) const
{
    const int64_t d = prof_.hidden;
    const int64_t m = sample.numVisual();
    const int64_t t = sample.numText();
    Tensor x(m + t, d);
    for (int64_t i = 0; i < m; ++i) {
        std::copy(sample.visual_tokens.row(i),
                  sample.visual_tokens.row(i) + d, x.row(i));
    }
    for (int64_t i = 0; i < t; ++i) {
        std::copy(sample.text_tokens.row(i),
                  sample.text_tokens.row(i) + d, x.row(m + i));
    }
    rmsNormRows(x, layers_.front().n1);

    std::vector<Tensor> head_probs;
    Tensor q, k, v;
    attention(x, layers_.front(), head_probs, q, k, v);
    const std::vector<float> imp = secImportance(head_probs, m, t);
    return imp;
}

} // namespace focus
