#include "vlm/model.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "focus/sec.h"
#include "focus/sic.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

namespace focus
{

namespace
{

/** Random matrix with optional identity component. */
Tensor
initWeight(Rng &rng, int64_t rows, int64_t cols, double ident,
           double noise)
{
    Tensor w(rows, cols);
    const double scale = noise / std::sqrt(static_cast<double>(rows));
    for (int64_t i = 0; i < rows; ++i) {
        float *row = w.row(i);
        for (int64_t j = 0; j < cols; ++j) {
            row[j] = static_cast<float>(rng.gaussian(0.0, scale));
        }
        if (i < cols) {
            row[i] += static_cast<float>(ident);
        }
    }
    return w;
}

/**
 * Random matrix with band-local structure: input group g mixes mostly
 * into output band g, with weaker cross-band coupling.
 *
 * Trained transformers show strong channel locality in their
 * activations (outlier channels, per-channel scales); band-local
 * mixing reproduces the consequence that matters here — sub-token
 * (vector-level) similarity survives the FC layers, which is the
 * property SIC's vector granularity exploits over token granularity
 * (Fig. 1(c), Fig. 2(b)).
 */
Tensor
initBlockLocalWeight(Rng &rng, int64_t rows, int64_t cols, double ident,
                     double local_noise, double global_noise,
                     int groups)
{
    Tensor w(rows, cols);
    const int64_t row_band = rows / groups;
    const int64_t col_band = cols / groups;
    const double local_scale =
        local_noise / std::sqrt(static_cast<double>(row_band));
    const double global_scale =
        global_noise / std::sqrt(static_cast<double>(rows));
    for (int64_t i = 0; i < rows; ++i) {
        float *row = w.row(i);
        const int64_t gi = i / row_band;
        for (int64_t j = 0; j < cols; ++j) {
            const bool local = gi == j / col_band;
            row[j] = static_cast<float>(
                rng.gaussian(0.0, local ? local_scale : global_scale));
        }
        if (i < cols) {
            row[i] += static_cast<float>(ident);
        }
    }
    return w;
}

/** Round-trip all weights through int8 (per-row symmetric). */
Tensor
weightInt8(const Tensor &w)
{
    return int8RoundTrip(w);
}

} // namespace

VlmModel::VlmModel(const ModelProfile &profile, uint64_t seed)
    : prof_(profile)
{
    const int64_t d = prof_.hidden;
    const int64_t inner = prof_.ffnInner();
    Rng rng(seed ^ 0xfeedc0dedeadbeefull);

    layers_.reserve(static_cast<size_t>(prof_.layers));
    for (int l = 0; l < prof_.layers; ++l) {
        LayerWeights w;
        // Identity-heavy Q/K keep cross-modal attention grounded in
        // the input semantics (prompt prototype vs. scene content).
        w.wq = initWeight(rng, d, d, 1.6, 0.5);
        w.wk = initWeight(rng, d, d, 1.6, 0.5);
        w.wv = initWeight(rng, d, d, 0.7, 0.3);
        w.wo = initBlockLocalWeight(rng, d, d, 0.25, 0.35, 0.12,
                                    kNumGroups);
        w.wg = initBlockLocalWeight(rng, d, inner, 0.0, 1.0, 0.30,
                                    kNumGroups);
        w.wu = initBlockLocalWeight(rng, d, inner, 0.0, 1.0, 0.30,
                                    kNumGroups);
        w.wd = initBlockLocalWeight(rng, inner, d, 0.0, 0.45, 0.15,
                                    kNumGroups);
        w.n1 = Tensor(d);
        w.n2 = Tensor(d);
        w.n1.fill(1.0f);
        w.n2.fill(1.0f);
        layers_.push_back(std::move(w));
    }

    layers_int8_.reserve(layers_.size());
    for (const LayerWeights &w : layers_) {
        LayerWeights q;
        q.wq = weightInt8(w.wq);
        q.wk = weightInt8(w.wk);
        q.wv = weightInt8(w.wv);
        q.wo = weightInt8(w.wo);
        q.wg = weightInt8(w.wg);
        q.wu = weightInt8(w.wu);
        q.wd = weightInt8(w.wd);
        q.n1 = w.n1;
        q.n2 = w.n2;
        layers_int8_.push_back(std::move(q));
    }
}

void
VlmModel::attention(const Tensor &xn, const LayerWeights &w,
                    std::vector<Tensor> &head_probs, Tensor &q,
                    Tensor &k, Tensor &v) const
{
    const int64_t rows = xn.rows();
    const int64_t hd = prof_.headDim();
    gemm(xn, w.wq, q);
    gemm(xn, w.wk, k);
    gemm(xn, w.wv, v);

    head_probs.assign(static_cast<size_t>(prof_.heads), Tensor());
    const float inv_sqrt =
        1.0f / std::sqrt(static_cast<float>(hd));
    for (int h = 0; h < prof_.heads; ++h) {
        Tensor &p = head_probs[static_cast<size_t>(h)];
        p = Tensor(rows, rows);
        const int64_t c0 = static_cast<int64_t>(h) * hd;
        for (int64_t i = 0; i < rows; ++i) {
            const float *qi = q.row(i) + c0;
            float *prow = p.row(i);
            kernels::dotRowsScaled(qi, k.row(0) + c0, k.cols(), i + 1,
                                   hd, inv_sqrt, prow);
            // Causal mask: stream order is [visual ; text], so text
            // queries see every visual key.
            for (int64_t j = i + 1; j < rows; ++j) {
                prow[j] = -1e30f;
            }
        }
        softmaxRows(p);
    }
}

ForwardResult
VlmModel::forward(const VideoSample &sample, const MethodConfig &method,
                  const PrototypeBank &bank) const
{
    const int64_t d = prof_.hidden;
    const int64_t inner = prof_.ffnInner();
    const int64_t m_orig = sample.numVisual();
    const int64_t t_count = sample.numText();
    const std::vector<LayerWeights> &weights =
        method.int8 ? layers_int8_ : layers_;

    ForwardResult res;
    res.visual_original = m_orig;

    // ------------------------------------------------------------
    // Preprocess: token-level reduction for the merging baselines.
    // ------------------------------------------------------------
    TokenReduction red = identityReduction(m_orig);
    switch (method.kind) {
      case MethodKind::AdapTiV:
        red = adaptivReduce(sample.visual_tokens, sample.coords,
                            sample.frames, sample.grid_h, sample.grid_w,
                            method.adaptiv);
        break;
      case MethodKind::CMC:
        red = cmcReduce(sample.visual_tokens, sample.coords,
                        sample.frames, sample.grid_h, sample.grid_w,
                        method.cmc);
        break;
      case MethodKind::FrameFusion:
        red = frameFusionReduce(sample.visual_tokens, sample.coords,
                                sample.frames, sample.grid_h,
                                sample.grid_w, method.framefusion);
        break;
      default:
        break;
    }

    const int64_t s0 = static_cast<int64_t>(red.kept.size());
    res.visual_initial = s0;

    // Active-state arrays: merged-group mean embeddings, coordinates
    // of the surviving representative, original index (for readout).
    Tensor visual(s0, d);
    std::vector<TokenCoord> coords(static_cast<size_t>(s0));
    std::vector<int64_t> active_orig(static_cast<size_t>(s0));
    {
        std::vector<int64_t> kept_pos(static_cast<size_t>(m_orig), -1);
        for (int64_t p = 0; p < s0; ++p) {
            const int64_t orig = red.kept[static_cast<size_t>(p)];
            kept_pos[static_cast<size_t>(orig)] = p;
            coords[static_cast<size_t>(p)] =
                sample.coords[static_cast<size_t>(orig)];
            active_orig[static_cast<size_t>(p)] = orig;
        }
        std::vector<int64_t> counts(static_cast<size_t>(s0), 0);
        for (int64_t i = 0; i < m_orig; ++i) {
            const int64_t rep = red.assign[static_cast<size_t>(i)];
            if (rep < 0) {
                continue;
            }
            const int64_t p = kept_pos[static_cast<size_t>(rep)];
            if (p < 0) {
                panic("forward: token %" PRId64 " assigned to non-kept "
                      "representative %" PRId64, i, rep);
            }
            const float *src = sample.visual_tokens.row(i);
            float *dst = visual.row(p);
            for (int64_t j = 0; j < d; ++j) {
                dst[j] += src[j];
            }
            ++counts[static_cast<size_t>(p)];
        }
        for (int64_t p = 0; p < s0; ++p) {
            const float inv = 1.0f /
                static_cast<float>(std::max<int64_t>(
                    counts[static_cast<size_t>(p)], 1));
            float *dst = visual.row(p);
            for (int64_t j = 0; j < d; ++j) {
                dst[j] *= inv;
            }
        }
    }

    // Readout embeddings: input-space content of each active token.
    Tensor readout_emb = visual;

    // Working hidden state X = [visual ; text].
    Tensor x(s0 + t_count, d);
    for (int64_t i = 0; i < s0; ++i) {
        std::copy(visual.row(i), visual.row(i) + d, x.row(i));
    }
    for (int64_t i = 0; i < t_count; ++i) {
        std::copy(sample.text_tokens.row(i),
                  sample.text_tokens.row(i) + d, x.row(s0 + i));
    }

    const bool is_focus = method.kind == MethodKind::Focus;
    const bool sec_on = is_focus && method.focus.sec_enable;
    const bool sic_on = is_focus && method.focus.sic_enable;

    // Gather coordinates include text rows as non-spatial sentinels.
    auto gather_coords = [&](int64_t s_cur) {
        std::vector<TokenCoord> gc(coords.begin(),
                                   coords.begin() + s_cur);
        gc.resize(static_cast<size_t>(s_cur + t_count),
                  TokenCoord{-1, 0, 0});
        return gc;
    };

    // Per-layer dense reference ops (no reduction at all).
    const double rows0 = static_cast<double>(m_orig + t_count);
    const double dense_layer_ops =
        3.0 * rows0 * d * d +            // QKV projections
        2.0 * rows0 * rows0 * d +        // QK^T and PV
        1.0 * rows0 * d * d +            // O projection
        2.0 * rows0 * d * inner +        // gate, up
        1.0 * rows0 * inner * d;         // down
    res.dense_ops = dense_layer_ops * prof_.layers;

    int64_t s_cur = s0;
    std::vector<Tensor> head_probs;
    Tensor q, k, v;

    for (int l = 0; l < prof_.layers; ++l) {
        LayerRecord rec;
        rec.visual_in = s_cur;
        rec.text = t_count;
        const int64_t rows = s_cur + t_count;

        // ---- attention block ----
        Tensor xn = x;
        rmsNormRows(xn, weights[static_cast<size_t>(l)].n1);
        if (method.int8) {
            xn = int8RoundTrip(xn);
        } else {
            xn.roundToFp16();
        }
        if (sic_on && l > 0) {
            SicResult g = sicGather(xn, gather_coords(s_cur),
                                    method.focus.sic);
            rec.psi_qkv = g.uniqueFrac();
            rec.tile_fracs.insert(rec.tile_fracs.end(),
                                  g.tile_slice_unique_frac.begin(),
                                  g.tile_slice_unique_frac.end());
        }
        attention(xn, weights[static_cast<size_t>(l)], head_probs, q,
                  k, v);
        res.ops += 3.0 * static_cast<double>(rows) * d * d *
            rec.psi_qkv;
        res.ops += static_cast<double>(rows) * rows * d; // QK^T

        // ---- semantic pruning (SEC) ----
        std::vector<int64_t> retained; // positions among active visuals
        bool pruned = false;
        if (sec_on && prof_.pruneAtLayer(l, prof_.layers)) {
            const std::vector<float> importance =
                secImportance(head_probs, s_cur, t_count);
            switch (method.focus.sec.select) {
              case SecSelect::TopK: {
                const double ratio =
                    prof_.retentionAfterLayer(l, prof_.layers);
                const int64_t want = std::max<int64_t>(
                    1, static_cast<int64_t>(std::llround(
                           ratio * static_cast<double>(m_orig))));
                if (want < s_cur) {
                    retained = secTopK(importance, want);
                    pruned = true;
                }
                break;
              }
              case SecSelect::TopP:
                retained =
                    secTopP(importance, method.focus.sec.top_p);
                pruned = static_cast<int64_t>(retained.size()) < s_cur;
                break;
              case SecSelect::Threshold:
                retained = secThreshold(importance,
                                        method.focus.sec.threshold);
                pruned = static_cast<int64_t>(retained.size()) < s_cur;
                break;
            }
        }

        const int64_t s_next = pruned
            ? static_cast<int64_t>(retained.size()) : s_cur;
        const int64_t rows_after = s_next + t_count;
        rec.visual_out = s_next;

        // ---- P x V, computed only for surviving rows ----
        // (paper Sec. V-C: pruned tokens are skipped in P(i) x V)
        Tensor attn_out(rows_after, d);
        const int64_t hd = prof_.headDim();
        auto out_row_src = [&](int64_t r) {
            // Map post-prune row r to pre-prune row index.
            if (!pruned) {
                return r;
            }
            if (r < s_next) {
                return retained[static_cast<size_t>(r)];
            }
            return s_cur + (r - s_next);
        };
        // Each head is one blocked GEMM over its column slice; when
        // pruned, the row gather map selects surviving P rows without
        // materializing a compacted copy.
        std::vector<int64_t> pv_rows;
        const int64_t *pv_map = nullptr;
        if (pruned) {
            pv_rows.resize(static_cast<size_t>(rows_after));
            for (int64_t r = 0; r < rows_after; ++r) {
                pv_rows[static_cast<size_t>(r)] = out_row_src(r);
            }
            pv_map = pv_rows.data();
        }
        for (int h = 0; h < prof_.heads; ++h) {
            const Tensor &p = head_probs[static_cast<size_t>(h)];
            const int64_t c0 = static_cast<int64_t>(h) * hd;
            kernels::gemmF32(rows_after, hd, rows, p.data(), p.cols(),
                             v.data() + c0, v.cols(),
                             attn_out.data() + c0, attn_out.cols(),
                             /*fp16_inputs=*/false, pv_map);
        }
        res.ops += static_cast<double>(rows_after) * rows * d; // PV

        // ---- shrink the active state if pruned ----
        if (pruned) {
            Tensor x2(rows_after, d);
            Tensor ro2(s_next, d);
            std::vector<TokenCoord> c2(static_cast<size_t>(s_next));
            std::vector<int64_t> ao2(static_cast<size_t>(s_next));
            for (int64_t r = 0; r < s_next; ++r) {
                const int64_t srcv = retained[static_cast<size_t>(r)];
                std::copy(x.row(srcv), x.row(srcv) + d, x2.row(r));
                std::copy(readout_emb.row(srcv),
                          readout_emb.row(srcv) + d, ro2.row(r));
                c2[static_cast<size_t>(r)] =
                    coords[static_cast<size_t>(srcv)];
                ao2[static_cast<size_t>(r)] =
                    active_orig[static_cast<size_t>(srcv)];
            }
            for (int64_t r = 0; r < t_count; ++r) {
                std::copy(x.row(s_cur + r), x.row(s_cur + r) + d,
                          x2.row(s_next + r));
            }
            x = std::move(x2);
            readout_emb = std::move(ro2);
            coords = std::move(c2);
            active_orig = std::move(ao2);
            s_cur = s_next;
        }

        // ---- O projection ----
        if (sic_on) {
            SicResult g = sicGather(attn_out, gather_coords(s_cur),
                                    method.focus.sic);
            rec.psi_oproj = g.uniqueFrac();
            rec.tile_fracs.insert(rec.tile_fracs.end(),
                                  g.tile_slice_unique_frac.begin(),
                                  g.tile_slice_unique_frac.end());
        }
        Tensor o;
        gemm(attn_out, weights[static_cast<size_t>(l)].wo, o);
        res.ops += static_cast<double>(rows_after) * d * d *
            rec.psi_oproj;
        for (int64_t r = 0; r < rows_after; ++r) {
            float *xr = x.row(r);
            const float *orow = o.row(r);
            for (int64_t j = 0; j < d; ++j) {
                xr[j] += orow[j];
            }
        }

        // ---- FFN block ----
        Tensor xn2 = x;
        rmsNormRows(xn2, weights[static_cast<size_t>(l)].n2);
        if (method.int8) {
            xn2 = int8RoundTrip(xn2);
        } else {
            xn2.roundToFp16();
        }
        if (sic_on) {
            SicResult g = sicGather(xn2, gather_coords(s_cur),
                                    method.focus.sic);
            rec.psi_ffn = g.uniqueFrac();
            rec.tile_fracs.insert(rec.tile_fracs.end(),
                                  g.tile_slice_unique_frac.begin(),
                                  g.tile_slice_unique_frac.end());
        }
        Tensor gate, up;
        gemm(xn2, weights[static_cast<size_t>(l)].wg, gate);
        gemm(xn2, weights[static_cast<size_t>(l)].wu, up);
        res.ops += 2.0 * static_cast<double>(rows_after) * d * inner *
            rec.psi_ffn;
        siluInPlace(gate);
        for (int64_t i = 0; i < gate.numel(); ++i) {
            gate.data()[i] *= up.data()[i];
        }
        if (sic_on) {
            SicResult g = sicGather(gate, gather_coords(s_cur),
                                    method.focus.sic);
            rec.psi_down = g.uniqueFrac();
            rec.tile_fracs.insert(rec.tile_fracs.end(),
                                  g.tile_slice_unique_frac.begin(),
                                  g.tile_slice_unique_frac.end());
        }
        Tensor down;
        gemm(gate, weights[static_cast<size_t>(l)].wd, down);
        res.ops += static_cast<double>(rows_after) * inner * d *
            rec.psi_down;
        for (int64_t r = 0; r < rows_after; ++r) {
            float *xr = x.row(r);
            const float *dr = down.row(r);
            for (int64_t j = 0; j < d; ++j) {
                xr[j] += dr[j];
            }
        }

        res.layers.push_back(std::move(rec));
    }

    // ------------------------------------------------------------
    // Readout: final-layer cross-modal attention from the query
    // token over visual tokens, then nearest-prototype color.
    // ------------------------------------------------------------
    {
        Tensor xn = x;
        rmsNormRows(xn, layers_.back().n1);
        const int64_t qrow_idx = s_cur + sample.query_token;
        const int64_t hd = prof_.headDim();
        Tensor qv(1, d), kv;
        {
            Tensor qin = xn.sliceRows(qrow_idx, qrow_idx + 1);
            gemm(qin, layers_.back().wq, qv);
            Tensor vis = xn.sliceRows(0, s_cur);
            gemm(vis, layers_.back().wk, kv);
        }
        std::vector<float> weights_sum(static_cast<size_t>(s_cur),
                                       0.0f);
        const float inv_sqrt =
            1.0f / std::sqrt(static_cast<float>(hd));
        std::vector<float> logits(static_cast<size_t>(s_cur));
        for (int h = 0; h < prof_.heads; ++h) {
            const int64_t c0 = static_cast<int64_t>(h) * hd;
            kernels::dotRowsScaled(qv.row(0) + c0, kv.row(0) + c0,
                                   kv.cols(), s_cur, hd, inv_sqrt,
                                   logits.data());
            float mx = -1e30f;
            for (int64_t j = 0; j < s_cur; ++j) {
                mx = std::max(mx, logits[static_cast<size_t>(j)]);
            }
            // SFU-tier exp: the exact backend reproduces the
            // historical serial std::exp + serial-sum loop bit-exact;
            // the vector backend runs the polynomial expf.
            const float sum =
                kernels::expBiasedSumF32(logits.data(), s_cur, mx);
            for (int64_t j = 0; j < s_cur; ++j) {
                weights_sum[static_cast<size_t>(j)] +=
                    logits[static_cast<size_t>(j)] / sum /
                    static_cast<float>(prof_.heads);
            }
        }

        std::vector<float> readout(static_cast<size_t>(kGroupDim),
                                   0.0f);
        for (int64_t j = 0; j < s_cur; ++j) {
            const float w = weights_sum[static_cast<size_t>(j)];
            if (w <= 0.0f) {
                continue;
            }
            const float *emb = readout_emb.row(j);
            for (int g = 0; g < kNumGroups; ++g) {
                for (int e = 0; e < kGroupDim; ++e) {
                    readout[static_cast<size_t>(e)] +=
                        w * emb[g * kGroupDim + e] /
                        static_cast<float>(kNumGroups);
                }
            }
        }
        res.predicted_color = bank.classifyColor(readout.data());
        res.correct = res.predicted_color == sample.answer_color;
        res.readout_attention = std::move(weights_sum);
        res.active_original = active_orig;
    }

    return res;
}

namespace
{

/** Per-sample working state for VlmModel::forwardBatch. */
struct BatchState
{
    const VideoSample *sample = nullptr;
    ForwardResult res;
    Tensor x;           ///< working hidden state [visual ; text]
    Tensor readout_emb; ///< input-space content of active tokens
    std::vector<TokenCoord> coords;
    std::vector<int64_t> active_orig;
    int64_t s_cur = 0;
    int64_t t_count = 0;
    int64_t m_orig = 0;

    Tensor xn; ///< per-phase normed/rounded activations
    std::vector<Tensor> head_probs;
    Tensor attn_out;
    std::vector<int64_t> retained;
    std::vector<int64_t> pv_rows;
    bool pruned = false;
    int64_t s_next = 0;
    int64_t rows_after = 0;
    LayerRecord rec; ///< record of the layer in flight
};

} // namespace

std::vector<ForwardResult>
VlmModel::forwardBatch(const VideoSample *const *samples, int64_t count,
                       const MethodConfig &method,
                       const PrototypeBank &bank) const
{
    // Mirrors forward() phase for phase; everything whose value could
    // depend on evaluation order (softmax, SEC, SIC, readout sums)
    // stays per-sample on per-sample buffers, and only the
    // row-independent GEMMs see the packed batch.
    std::vector<ForwardResult> out;
    if (count <= 0) {
        return out;
    }
    const int64_t d = prof_.hidden;
    const int64_t inner = prof_.ffnInner();
    const int64_t hd = prof_.headDim();
    const std::vector<LayerWeights> &weights =
        method.int8 ? layers_int8_ : layers_;
    const bool is_focus = method.kind == MethodKind::Focus;
    const bool sec_on = is_focus && method.focus.sec_enable;
    const bool sic_on = is_focus && method.focus.sic_enable;

    std::vector<BatchState> states(static_cast<size_t>(count));

    auto gather_coords = [&](const BatchState &st) {
        std::vector<TokenCoord> gc(st.coords.begin(),
                                   st.coords.begin() + st.s_cur);
        gc.resize(static_cast<size_t>(st.s_cur + st.t_count),
                  TokenCoord{-1, 0, 0});
        return gc;
    };

    // ------------------------------------------------------------
    // Preprocess every sample (identical to forward()).
    // ------------------------------------------------------------
    for (int64_t bi = 0; bi < count; ++bi) {
        BatchState &st = states[static_cast<size_t>(bi)];
        const VideoSample &sample = *samples[bi];
        st.sample = &sample;
        st.m_orig = sample.numVisual();
        st.t_count = sample.numText();
        st.res.visual_original = st.m_orig;

        TokenReduction red = identityReduction(st.m_orig);
        switch (method.kind) {
          case MethodKind::AdapTiV:
            red = adaptivReduce(sample.visual_tokens, sample.coords,
                                sample.frames, sample.grid_h,
                                sample.grid_w, method.adaptiv);
            break;
          case MethodKind::CMC:
            red = cmcReduce(sample.visual_tokens, sample.coords,
                            sample.frames, sample.grid_h,
                            sample.grid_w, method.cmc);
            break;
          case MethodKind::FrameFusion:
            red = frameFusionReduce(sample.visual_tokens,
                                    sample.coords, sample.frames,
                                    sample.grid_h, sample.grid_w,
                                    method.framefusion);
            break;
          default:
            break;
        }

        const int64_t s0 = static_cast<int64_t>(red.kept.size());
        st.res.visual_initial = s0;

        Tensor visual(s0, d);
        st.coords.assign(static_cast<size_t>(s0), TokenCoord{});
        st.active_orig.assign(static_cast<size_t>(s0), 0);
        {
            std::vector<int64_t> kept_pos(
                static_cast<size_t>(st.m_orig), -1);
            for (int64_t p = 0; p < s0; ++p) {
                const int64_t orig = red.kept[static_cast<size_t>(p)];
                kept_pos[static_cast<size_t>(orig)] = p;
                st.coords[static_cast<size_t>(p)] =
                    sample.coords[static_cast<size_t>(orig)];
                st.active_orig[static_cast<size_t>(p)] = orig;
            }
            std::vector<int64_t> counts(static_cast<size_t>(s0), 0);
            for (int64_t i = 0; i < st.m_orig; ++i) {
                const int64_t rep = red.assign[static_cast<size_t>(i)];
                if (rep < 0) {
                    continue;
                }
                const int64_t p = kept_pos[static_cast<size_t>(rep)];
                if (p < 0) {
                    panic("forwardBatch: token %" PRId64 " assigned to "
                          "non-kept representative %" PRId64, i, rep);
                }
                const float *src = sample.visual_tokens.row(i);
                float *dst = visual.row(p);
                for (int64_t j = 0; j < d; ++j) {
                    dst[j] += src[j];
                }
                ++counts[static_cast<size_t>(p)];
            }
            for (int64_t p = 0; p < s0; ++p) {
                const float inv = 1.0f /
                    static_cast<float>(std::max<int64_t>(
                        counts[static_cast<size_t>(p)], 1));
                float *dst = visual.row(p);
                for (int64_t j = 0; j < d; ++j) {
                    dst[j] *= inv;
                }
            }
        }

        st.readout_emb = visual;
        st.x = Tensor(s0 + st.t_count, d);
        for (int64_t i = 0; i < s0; ++i) {
            std::copy(visual.row(i), visual.row(i) + d, st.x.row(i));
        }
        for (int64_t i = 0; i < st.t_count; ++i) {
            std::copy(sample.text_tokens.row(i),
                      sample.text_tokens.row(i) + d,
                      st.x.row(s0 + i));
        }
        st.s_cur = s0;

        const double rows0 =
            static_cast<double>(st.m_orig + st.t_count);
        const double dense_layer_ops = 3.0 * rows0 * d * d +
            2.0 * rows0 * rows0 * d + 1.0 * rows0 * d * d +
            2.0 * rows0 * d * inner + 1.0 * rows0 * inner * d;
        st.res.dense_ops = dense_layer_ops * prof_.layers;
        st.head_probs.assign(static_cast<size_t>(prof_.heads),
                             Tensor());
    }

    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
    // Packed buffers, reused across layers (gemm() reallocates its
    // output only on shape change).
    Tensor xp, qp, kp, vp, aop, op, gatep, upp, downp;
    std::vector<int64_t> off(static_cast<size_t>(count));
    std::vector<int64_t> offa(static_cast<size_t>(count));

    for (int l = 0; l < prof_.layers; ++l) {
        const LayerWeights &w = weights[static_cast<size_t>(l)];

        // ---- attention block: per-sample norm/round/SIC gather ----
        int64_t total = 0;
        for (int64_t bi = 0; bi < count; ++bi) {
            BatchState &st = states[static_cast<size_t>(bi)];
            st.rec = LayerRecord();
            st.rec.visual_in = st.s_cur;
            st.rec.text = st.t_count;
            st.xn = st.x;
            rmsNormRows(st.xn, w.n1);
            if (method.int8) {
                st.xn = int8RoundTrip(st.xn);
            } else {
                st.xn.roundToFp16();
            }
            if (sic_on && l > 0) {
                SicResult g = sicGather(st.xn, gather_coords(st),
                                        method.focus.sic);
                st.rec.psi_qkv = g.uniqueFrac();
                st.rec.tile_fracs.insert(
                    st.rec.tile_fracs.end(),
                    g.tile_slice_unique_frac.begin(),
                    g.tile_slice_unique_frac.end());
            }
            off[static_cast<size_t>(bi)] = total;
            total += st.s_cur + st.t_count;
        }

        // ---- QKV projections, all samples packed as rows ----
        if (xp.rank() != 2 || xp.rows() != total || xp.cols() != d) {
            xp = Tensor(total, d);
        }
        for (int64_t bi = 0; bi < count; ++bi) {
            const BatchState &st = states[static_cast<size_t>(bi)];
            const int64_t rows = st.s_cur + st.t_count;
            std::copy(st.xn.data(), st.xn.data() + rows * d,
                      xp.row(off[static_cast<size_t>(bi)]));
        }
        gemm(xp, w.wq, qp);
        gemm(xp, w.wk, kp);
        gemm(xp, w.wv, vp);

        // ---- per-sample attention interior ----
        // Scores, softmax, SEC and PV run in one pass per sample so
        // the probability matrices stay cache-hot from the softmax
        // into secImportance and pvCausalF32 (splitting these into
        // separate batch sweeps round-trips every sample's (rows x
        // rows) P through memory and erases the kernel wins).
        for (int64_t bi = 0; bi < count; ++bi) {
            BatchState &st = states[static_cast<size_t>(bi)];
            const int64_t rows = st.s_cur + st.t_count;
            const int64_t o = off[static_cast<size_t>(bi)];
            st.res.ops += 3.0 * static_cast<double>(rows) * d * d *
                st.rec.psi_qkv;
            st.res.ops += static_cast<double>(rows) * rows * d;
            for (int h = 0; h < prof_.heads; ++h) {
                Tensor &p = st.head_probs[static_cast<size_t>(h)];
                if (p.rank() != 2 || p.rows() != rows ||
                    p.cols() != rows) {
                    p = Tensor(rows, rows);
                }
                const int64_t c0 = static_cast<int64_t>(h) * hd;
                kernels::qkScoresCausalF32(
                    qp.row(o) + c0, qp.cols(), kp.row(o) + c0,
                    kp.cols(), rows, hd, inv_sqrt, p.data(),
                    p.cols());
                for (int64_t i = 0; i < rows; ++i) {
                    float *prow = p.row(i);
                    for (int64_t j = i + 1; j < rows; ++j) {
                        prow[j] = -1e30f;
                    }
                }
                softmaxRows(p);
            }

            st.retained.clear();
            st.pruned = false;
            if (sec_on && prof_.pruneAtLayer(l, prof_.layers)) {
                const std::vector<float> importance = secImportance(
                    st.head_probs, st.s_cur, st.t_count);
                switch (method.focus.sec.select) {
                  case SecSelect::TopK: {
                    const double ratio = prof_.retentionAfterLayer(
                        l, prof_.layers);
                    const int64_t want = std::max<int64_t>(
                        1, static_cast<int64_t>(std::llround(
                               ratio *
                               static_cast<double>(st.m_orig))));
                    if (want < st.s_cur) {
                        st.retained = secTopK(importance, want);
                        st.pruned = true;
                    }
                    break;
                  }
                  case SecSelect::TopP:
                    st.retained =
                        secTopP(importance, method.focus.sec.top_p);
                    st.pruned = static_cast<int64_t>(
                                    st.retained.size()) < st.s_cur;
                    break;
                  case SecSelect::Threshold:
                    st.retained = secThreshold(
                        importance, method.focus.sec.threshold);
                    st.pruned = static_cast<int64_t>(
                                    st.retained.size()) < st.s_cur;
                    break;
                }
            }
            st.s_next = st.pruned
                ? static_cast<int64_t>(st.retained.size()) : st.s_cur;
            st.rows_after = st.s_next + st.t_count;
            st.rec.visual_out = st.s_next;

            const int64_t *pv_map = nullptr;
            if (st.pruned) {
                st.pv_rows.resize(static_cast<size_t>(st.rows_after));
                for (int64_t r = 0; r < st.rows_after; ++r) {
                    st.pv_rows[static_cast<size_t>(r)] = r < st.s_next
                        ? st.retained[static_cast<size_t>(r)]
                        : st.s_cur + (r - st.s_next);
                }
                pv_map = st.pv_rows.data();
            }
            if (st.attn_out.rank() != 2 ||
                st.attn_out.rows() != st.rows_after ||
                st.attn_out.cols() != d) {
                st.attn_out = Tensor(st.rows_after, d);
            }
            for (int h = 0; h < prof_.heads; ++h) {
                const Tensor &p = st.head_probs[static_cast<size_t>(h)];
                const int64_t c0 = static_cast<int64_t>(h) * hd;
                kernels::pvCausalF32(
                    st.rows_after, hd, p.data(), p.cols(), pv_map,
                    vp.row(off[static_cast<size_t>(bi)]) + c0,
                    vp.cols(), st.attn_out.data() + c0,
                    st.attn_out.cols());
            }
            st.res.ops +=
                static_cast<double>(st.rows_after) * rows * d;

            // ---- shrink the active state if pruned ----
            if (st.pruned) {
                Tensor x2(st.rows_after, d);
                Tensor ro2(st.s_next, d);
                std::vector<TokenCoord> c2(
                    static_cast<size_t>(st.s_next));
                std::vector<int64_t> ao2(
                    static_cast<size_t>(st.s_next));
                for (int64_t r = 0; r < st.s_next; ++r) {
                    const int64_t srcv =
                        st.retained[static_cast<size_t>(r)];
                    std::copy(st.x.row(srcv), st.x.row(srcv) + d,
                              x2.row(r));
                    std::copy(st.readout_emb.row(srcv),
                              st.readout_emb.row(srcv) + d,
                              ro2.row(r));
                    c2[static_cast<size_t>(r)] =
                        st.coords[static_cast<size_t>(srcv)];
                    ao2[static_cast<size_t>(r)] =
                        st.active_orig[static_cast<size_t>(srcv)];
                }
                for (int64_t r = 0; r < st.t_count; ++r) {
                    std::copy(st.x.row(st.s_cur + r),
                              st.x.row(st.s_cur + r) + d,
                              x2.row(st.s_next + r));
                }
                st.x = std::move(x2);
                st.readout_emb = std::move(ro2);
                st.coords = std::move(c2);
                st.active_orig = std::move(ao2);
                st.s_cur = st.s_next;
            }

            if (sic_on) {
                SicResult g = sicGather(st.attn_out,
                                        gather_coords(st),
                                        method.focus.sic);
                st.rec.psi_oproj = g.uniqueFrac();
                st.rec.tile_fracs.insert(
                    st.rec.tile_fracs.end(),
                    g.tile_slice_unique_frac.begin(),
                    g.tile_slice_unique_frac.end());
            }
        }

        // ---- O projection, packed ----
        int64_t total_after = 0;
        for (int64_t bi = 0; bi < count; ++bi) {
            offa[static_cast<size_t>(bi)] = total_after;
            total_after += states[static_cast<size_t>(bi)].rows_after;
        }
        if (aop.rank() != 2 || aop.rows() != total_after ||
            aop.cols() != d) {
            aop = Tensor(total_after, d);
        }
        for (int64_t bi = 0; bi < count; ++bi) {
            const BatchState &st = states[static_cast<size_t>(bi)];
            std::copy(st.attn_out.data(),
                      st.attn_out.data() + st.rows_after * d,
                      aop.row(offa[static_cast<size_t>(bi)]));
        }
        gemm(aop, w.wo, op);
        for (int64_t bi = 0; bi < count; ++bi) {
            BatchState &st = states[static_cast<size_t>(bi)];
            st.res.ops += static_cast<double>(st.rows_after) * d * d *
                st.rec.psi_oproj;
            const int64_t o = offa[static_cast<size_t>(bi)];
            for (int64_t r = 0; r < st.rows_after; ++r) {
                float *xr = st.x.row(r);
                const float *orow = op.row(o + r);
                for (int64_t j = 0; j < d; ++j) {
                    xr[j] += orow[j];
                }
            }
        }

        // ---- FFN block ----
        for (int64_t bi = 0; bi < count; ++bi) {
            BatchState &st = states[static_cast<size_t>(bi)];
            st.xn = st.x;
            rmsNormRows(st.xn, w.n2);
            if (method.int8) {
                st.xn = int8RoundTrip(st.xn);
            } else {
                st.xn.roundToFp16();
            }
            if (sic_on) {
                SicResult g = sicGather(st.xn, gather_coords(st),
                                        method.focus.sic);
                st.rec.psi_ffn = g.uniqueFrac();
                st.rec.tile_fracs.insert(
                    st.rec.tile_fracs.end(),
                    g.tile_slice_unique_frac.begin(),
                    g.tile_slice_unique_frac.end());
            }
        }
        if (xp.rank() != 2 || xp.rows() != total_after ||
            xp.cols() != d) {
            xp = Tensor(total_after, d);
        }
        for (int64_t bi = 0; bi < count; ++bi) {
            const BatchState &st = states[static_cast<size_t>(bi)];
            std::copy(st.xn.data(),
                      st.xn.data() + st.rows_after * d,
                      xp.row(offa[static_cast<size_t>(bi)]));
        }
        gemm(xp, w.wg, gatep);
        gemm(xp, w.wu, upp);
        for (int64_t bi = 0; bi < count; ++bi) {
            BatchState &st = states[static_cast<size_t>(bi)];
            st.res.ops += 2.0 * static_cast<double>(st.rows_after) *
                d * inner * st.rec.psi_ffn;
        }
        siluInPlace(gatep);
        for (int64_t i = 0; i < gatep.numel(); ++i) {
            gatep.data()[i] *= upp.data()[i];
        }
        if (sic_on) {
            for (int64_t bi = 0; bi < count; ++bi) {
                BatchState &st = states[static_cast<size_t>(bi)];
                const int64_t o = offa[static_cast<size_t>(bi)];
                Tensor gs = gatep.sliceRows(o, o + st.rows_after);
                SicResult g = sicGather(gs, gather_coords(st),
                                        method.focus.sic);
                st.rec.psi_down = g.uniqueFrac();
                st.rec.tile_fracs.insert(
                    st.rec.tile_fracs.end(),
                    g.tile_slice_unique_frac.begin(),
                    g.tile_slice_unique_frac.end());
                std::copy(gs.data(),
                          gs.data() + st.rows_after * inner,
                          gatep.row(o));
            }
        }
        gemm(gatep, w.wd, downp);
        for (int64_t bi = 0; bi < count; ++bi) {
            BatchState &st = states[static_cast<size_t>(bi)];
            st.res.ops += static_cast<double>(st.rows_after) * inner *
                d * st.rec.psi_down;
            const int64_t o = offa[static_cast<size_t>(bi)];
            for (int64_t r = 0; r < st.rows_after; ++r) {
                float *xr = st.x.row(r);
                const float *dr = downp.row(o + r);
                for (int64_t j = 0; j < d; ++j) {
                    xr[j] += dr[j];
                }
            }
            st.res.layers.push_back(std::move(st.rec));
        }
    }

    // ------------------------------------------------------------
    // Readout: packed query/key projections, per-sample logits.
    // ------------------------------------------------------------
    int64_t total_vis = 0;
    std::vector<int64_t> offv(static_cast<size_t>(count));
    for (int64_t bi = 0; bi < count; ++bi) {
        BatchState &st = states[static_cast<size_t>(bi)];
        st.xn = st.x;
        rmsNormRows(st.xn, layers_.back().n1);
        offv[static_cast<size_t>(bi)] = total_vis;
        total_vis += st.s_cur;
    }
    Tensor qinp(count, d);
    Tensor visp(total_vis, d);
    for (int64_t bi = 0; bi < count; ++bi) {
        const BatchState &st = states[static_cast<size_t>(bi)];
        const int64_t qrow_idx = st.s_cur + st.sample->query_token;
        std::copy(st.xn.row(qrow_idx), st.xn.row(qrow_idx) + d,
                  qinp.row(bi));
        std::copy(st.xn.data(), st.xn.data() + st.s_cur * d,
                  visp.row(offv[static_cast<size_t>(bi)]));
    }
    Tensor qvp, kvp;
    gemm(qinp, layers_.back().wq, qvp);
    gemm(visp, layers_.back().wk, kvp);

    out.reserve(static_cast<size_t>(count));
    for (int64_t bi = 0; bi < count; ++bi) {
        BatchState &st = states[static_cast<size_t>(bi)];
        std::vector<float> weights_sum(static_cast<size_t>(st.s_cur),
                                       0.0f);
        std::vector<float> logits(static_cast<size_t>(st.s_cur));
        for (int h = 0; h < prof_.heads; ++h) {
            const int64_t c0 = static_cast<int64_t>(h) * hd;
            kernels::dotRowsScaled(
                qvp.row(bi) + c0,
                kvp.row(offv[static_cast<size_t>(bi)]) + c0,
                kvp.cols(), st.s_cur, hd, inv_sqrt, logits.data());
            float mx = -1e30f;
            for (int64_t j = 0; j < st.s_cur; ++j) {
                mx = std::max(mx, logits[static_cast<size_t>(j)]);
            }
            const float sum = kernels::expBiasedSumF32(
                logits.data(), st.s_cur, mx);
            for (int64_t j = 0; j < st.s_cur; ++j) {
                weights_sum[static_cast<size_t>(j)] +=
                    logits[static_cast<size_t>(j)] / sum /
                    static_cast<float>(prof_.heads);
            }
        }

        std::vector<float> readout(static_cast<size_t>(kGroupDim),
                                   0.0f);
        for (int64_t j = 0; j < st.s_cur; ++j) {
            const float wgt = weights_sum[static_cast<size_t>(j)];
            if (wgt <= 0.0f) {
                continue;
            }
            const float *emb = st.readout_emb.row(j);
            for (int g = 0; g < kNumGroups; ++g) {
                for (int e = 0; e < kGroupDim; ++e) {
                    readout[static_cast<size_t>(e)] +=
                        wgt * emb[g * kGroupDim + e] /
                        static_cast<float>(kNumGroups);
                }
            }
        }
        st.res.predicted_color = bank.classifyColor(readout.data());
        st.res.correct =
            st.res.predicted_color == st.sample->answer_color;
        st.res.readout_attention = std::move(weights_sum);
        st.res.active_original = st.active_orig;
        out.push_back(std::move(st.res));
    }
    return out;
}

std::vector<float>
VlmModel::attentionHeatmap(const VideoSample &sample) const
{
    const int64_t d = prof_.hidden;
    const int64_t m = sample.numVisual();
    const int64_t t = sample.numText();
    Tensor x(m + t, d);
    for (int64_t i = 0; i < m; ++i) {
        std::copy(sample.visual_tokens.row(i),
                  sample.visual_tokens.row(i) + d, x.row(i));
    }
    for (int64_t i = 0; i < t; ++i) {
        std::copy(sample.text_tokens.row(i),
                  sample.text_tokens.row(i) + d, x.row(m + i));
    }
    rmsNormRows(x, layers_.front().n1);

    std::vector<Tensor> head_probs;
    Tensor q, k, v;
    attention(x, layers_.front(), head_probs, q, k, v);
    const std::vector<float> imp = secImportance(head_probs, m, t);
    return imp;
}

} // namespace focus
