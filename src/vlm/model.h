/**
 * @file
 * Functional VLM transformer with concentration hooks.
 *
 * The model is a pre-norm decoder stack (RMSNorm -> multi-head causal
 * attention -> RMSNorm -> SwiGLU FFN) over [visual tokens ; text
 * tokens], mirroring the Qwen2-style LLM backbone of the paper's
 * evaluated models at reduced width.  Weight matrices carry an
 * identity component in Q/K so cross-modal attention is semantically
 * informative (text queries attend to image regions containing the
 * queried content), which is the property SEC exploits.
 *
 * The forward pass measures, per layer, everything the cycle model
 * later needs: active token counts before/after semantic pruning and
 * the unique-vector fractions of every similarity-gather site.
 */

#ifndef FOCUS_VLM_MODEL_H
#define FOCUS_VLM_MODEL_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "vlm/method.h"
#include "workload/profiles.h"
#include "workload/scene.h"
#include "workload/video_gen.h"

namespace focus
{

/** Per-layer measurements from one forward pass. */
struct LayerRecord
{
    int64_t visual_in = 0;   ///< active visual tokens entering the layer
    int64_t visual_out = 0;  ///< after semantic pruning (== in if none)
    int64_t text = 0;        ///< text tokens (never pruned)

    /**
     * Mean unique-vector fraction of each similarity-gather site
     * (1.0 when SIC is off).  Sites follow the dataflow:
     * qkv_in   — the stream feeding the Q/K/V projections
     * oproj_in — PV output feeding the O projection
     * ffn_in   — attention-block output feeding gate/up
     * down_in  — FFN inner activations feeding the down projection
     */
    double psi_qkv = 1.0;
    double psi_oproj = 1.0;
    double psi_ffn = 1.0;
    double psi_down = 1.0;

    /** All per-(tile,slice) unique fractions observed this layer. */
    std::vector<double> tile_fracs;
};

/** Result of a forward pass. */
struct ForwardResult
{
    bool correct = false;
    int predicted_color = -1;

    double ops = 0.0;        ///< GEMM MACs required by the method
    double dense_ops = 0.0;  ///< GEMM MACs of the dense reference

    /** Computation sparsity per the paper: 1 - ops/dense_ops. */
    double
    sparsity() const
    {
        return dense_ops <= 0.0 ? 0.0 : 1.0 - ops / dense_ops;
    }

    int64_t visual_initial = 0;  ///< visual tokens after preprocessing
    int64_t visual_original = 0; ///< visual tokens before any reduction

    std::vector<LayerRecord> layers;

    /** Readout attention over active visual tokens (diagnostics). */
    std::vector<float> readout_attention;
    /** Original index of each active visual token at readout. */
    std::vector<int64_t> active_original;
};

/**
 * The functional model.  Weights are deterministic in the seed, so a
 * (model profile, seed) pair defines a reproducible "checkpoint".
 */
class VlmModel
{
  public:
    VlmModel(const ModelProfile &profile, uint64_t seed);

    /**
     * Run one sample under a method.  @p bank is needed to classify
     * the answer readout.
     */
    ForwardResult forward(const VideoSample &sample,
                          const MethodConfig &method,
                          const PrototypeBank &bank) const;

    /**
     * Run a batch of samples under one method, packing the samples'
     * rows through the projection / FFN / readout GEMMs of the
     * kernel tier (tensor/kernels.h) so per-sample small GEMMs
     * become a few large ones, with the attention interiors on the
     * query-row-tiled causal kernels.  Results are bit-identical to
     * calling forward() per sample at every batch split: GEMM output
     * rows are independent (per-element ascending-k accumulation),
     * the causal QK^T/PV kernels preserve the per-element dot4/PV
     * order, and everything per-sample (softmax, SEC, SIC, readout)
     * runs on the same per-sample buffers as the unbatched path.
     * Used by Evaluator::runFunctional when FOCUS_FUNC_CACHE=on.
     */
    std::vector<ForwardResult>
    forwardBatch(const VideoSample *const *samples, int64_t count,
                 const MethodConfig &method,
                 const PrototypeBank &bank) const;

    const ModelProfile &profile() const { return prof_; }

    /**
     * Compute the cross-modal attention heatmap of the *first* layer
     * for a sample: returns per-visual-token max attention received
     * from any text token, any head (the Fig. 2(a) visualization).
     */
    std::vector<float> attentionHeatmap(const VideoSample &sample) const;

  private:
    struct LayerWeights
    {
        Tensor wq, wk, wv, wo;  ///< (D x D)
        Tensor wg, wu;          ///< (D x I)
        Tensor wd;              ///< (I x D)
        Tensor n1, n2;          ///< RMSNorm gains (D)
    };

    ModelProfile prof_;
    std::vector<LayerWeights> layers_;

    /** Weights round-tripped through int8 (for MethodConfig::int8). */
    std::vector<LayerWeights> layers_int8_;

    /** Multi-head causal attention; fills per-head probabilities. */
    void attention(const Tensor &xn, const LayerWeights &w,
                   std::vector<Tensor> &head_probs, Tensor &q,
                   Tensor &k, Tensor &v) const;
};

} // namespace focus

#endif // FOCUS_VLM_MODEL_H
