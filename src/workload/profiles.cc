#include "workload/profiles.h"

#include <cmath>

#include "common/logging.h"

namespace focus
{

double
ModelProfile::retentionAfterLayer(int layer, int total) const
{
    double ratio = 1.0;
    for (const auto &[frac, keep] : retention_schedule) {
        const int at = static_cast<int>(std::round(frac * total));
        if (layer >= at) {
            ratio = keep;
        }
    }
    return ratio;
}

bool
ModelProfile::pruneAtLayer(int layer, int total) const
{
    for (const auto &[frac, keep] : retention_schedule) {
        (void)keep;
        const int at = static_cast<int>(std::round(frac * total));
        if (layer == at) {
            return true;
        }
    }
    return false;
}

DatasetProfile
datasetProfile(const std::string &name)
{
    DatasetProfile p;
    p.name = name;
    if (name == "VideoMME") {
        // Diverse mid-length videos: moderate motion, moderate
        // redundancy, hardest questions.
        p.frames = 8;
        p.num_objects = 3;
        p.motion_scale = 0.55;
        p.background_drift = 0.025;
        p.feature_noise = 0.20;
        p.distractor_prob = 0.40;
        p.full_visual_tokens = 6272;
        p.full_text_tokens = 109;
    } else if (name == "MLVU") {
        // Long videos sampled sparsely: higher inter-frame change,
        // slightly easier questions.
        p.frames = 8;
        p.num_objects = 4;
        p.motion_scale = 0.85;
        p.background_drift = 0.045;
        p.feature_noise = 0.19;
        p.distractor_prob = 0.32;
        p.full_visual_tokens = 6272;
        p.full_text_tokens = 96;
    } else if (name == "MVBench") {
        // Short clips, temporal-reasoning heavy: strong motion,
        // fewer frames.
        p.frames = 6;
        p.num_objects = 3;
        p.motion_scale = 0.95;
        p.background_drift = 0.035;
        p.feature_noise = 0.185;
        p.distractor_prob = 0.36;
        p.full_visual_tokens = 4704;
        p.full_text_tokens = 64;
    } else if (name == "MLVU-Long") {
        // Long-video serving profile (ROADMAP "new workloads"):
        // twice the paper roster's densest frame sampling, so the
        // serving mix exercises a heavier token-count regime.  Dense
        // temporal sampling of a long clip means high inter-frame
        // redundancy: slow motion per sampled frame, low drift —
        // exactly where concentration pays off most.
        p.frames = 16;
        p.num_objects = 4;
        p.motion_scale = 0.40;
        p.background_drift = 0.02;
        p.feature_noise = 0.19;
        p.distractor_prob = 0.32;
        p.full_visual_tokens = 12544; // 16 frames x 784 tokens
        p.full_text_tokens = 96;
    } else if (name == "VLA-Manip") {
        // Vision-Language-Action extension (paper Sec. VIII-A): a
        // short manipulation episode — near-static tabletop scene,
        // slow end-effector motion, an instruction naming the target
        // object.  High temporal redundancy, low ambiguity.
        p.frames = 4;
        p.num_objects = 4;
        p.motion_scale = 0.25;
        p.background_drift = 0.012;
        p.temporal_jitter = 0.01;
        p.feature_noise = 0.14;
        p.distractor_prob = 0.15;
        p.full_visual_tokens = 2352; // 4 frames x 588 tokens
        p.full_text_tokens = 32;
    } else if (name == "VQAv2" || name == "MME" || name == "MMBench") {
        // Image benchmarks (Tbl. V): one frame, no temporal axis.
        p.frames = 1;
        p.grid_h = 14;
        p.grid_w = 14;
        p.num_objects = 4;
        p.motion_scale = 0.0;
        p.background_drift = 0.0;
        p.feature_noise = name == "VQAv2" ? 0.10 : 0.12;
        p.distractor_prob = name == "MMBench" ? 0.26 : 0.20;
        p.full_visual_tokens = 1568;
        p.full_text_tokens = 48;
    } else {
        fatal("unknown dataset profile '%s'", name.c_str());
    }
    return p;
}

ModelProfile
modelProfile(const std::string &name)
{
    ModelProfile m;
    m.name = name;
    if (name == "Llava-Vid" || name == "Llava-Video") {
        // LLaVA-Video-7B-Qwen2: Qwen2-7B LLM backbone.
        m.seed_salt = 0x11aa;
        m.hidden = 64;
        m.heads = 2;
        m.layers = 7;
        m.text_tokens = 8;
        m.full_hidden = 3584;
        m.full_heads = 28;
        m.full_head_dim = 128;
        m.full_layers = 28;
        m.full_ffn_inner = 18944;
    } else if (name == "Llava-OV" || name == "Llava-OneVision") {
        // LLaVA-OneVision-7B: same Qwen2-7B backbone, different
        // projector -> slightly different functional noise profile.
        m.seed_salt = 0x22bb;
        m.hidden = 64;
        m.heads = 2;
        m.layers = 7;
        m.text_tokens = 10;
        m.full_hidden = 3584;
        m.full_heads = 28;
        m.full_head_dim = 128;
        m.full_layers = 28;
        m.full_ffn_inner = 18944;
    } else if (name == "MiniCPM") {
        // MiniCPM-V-2.6: Qwen2-7B backbone with a compressive
        // resampler; fewer visual tokens per frame.
        m.seed_salt = 0x33cc;
        m.visual_token_scale = 0.72;
        m.hidden = 64;
        m.heads = 2;
        m.layers = 7;
        m.text_tokens = 8;
        m.full_hidden = 3584;
        m.full_heads = 28;
        m.full_head_dim = 128;
        m.full_layers = 28;
        m.full_ffn_inner = 18944;
    } else if (name == "Qwen2.5-VL") {
        // Qwen2.5-VL-7B (image generalization study).  Its dense
        // accuracy is more sensitive to pruning, so the best
        // retention schedule keeps far more tokens (paper Tbl. V:
        // ~1.9x speedup vs ~4.3x for Llava-OV).
        m.seed_salt = 0x44dd;
        m.retention_schedule = {
            {3.0 / 28.0, 0.80}, {6.0 / 28.0, 0.70},
            {9.0 / 28.0, 0.60}, {18.0 / 28.0, 0.50},
            {26.0 / 28.0, 0.45},
        };
        m.hidden = 64;
        m.heads = 2;
        m.layers = 7;
        m.text_tokens = 10;
        m.full_hidden = 3584;
        m.full_heads = 28;
        m.full_head_dim = 128;
        m.full_layers = 28;
        m.full_ffn_inner = 18944;
    } else {
        fatal("unknown model profile '%s'", name.c_str());
    }
    return m;
}

std::vector<std::string>
videoDatasetNames()
{
    return {"VideoMME", "MLVU", "MVBench"};
}

std::vector<std::string>
extendedVideoDatasetNames()
{
    // Paper roster plus the long-video extension.  The figure/table
    // benches keep iterating the paper roster (their outputs mirror
    // the paper's grids); the serving mix draws from this list.
    std::vector<std::string> names = videoDatasetNames();
    names.push_back("MLVU-Long");
    return names;
}

std::vector<std::string>
imageDatasetNames()
{
    return {"VQAv2", "MME", "MMBench"};
}

std::vector<std::string>
videoModelNames()
{
    return {"Llava-Vid", "Llava-OV", "MiniCPM"};
}

} // namespace focus
