/**
 * @file
 * Dataset and model profiles.
 *
 * The paper evaluates three video VLMs (LLaVA-Video-7B,
 * LLaVA-OneVision-7B, MiniCPM-V-2.6) on three video benchmarks
 * (VideoMME, MLVU, MVBench), plus image benchmarks for the
 * generalization study (Tbl. V).  We cannot run the 7B checkpoints or
 * the proprietary-licensed datasets, so each is replaced by a
 * *profile*: the dataset profile controls the synthetic scene
 * statistics (clip length, motion, redundancy, distractor rate) and
 * the model profile controls both the reduced functional architecture
 * (what the CPU executes) and the full-scale architecture (what the
 * cycle model times).
 */

#ifndef FOCUS_WORKLOAD_PROFILES_H
#define FOCUS_WORKLOAD_PROFILES_H

#include <cstdint>
#include <string>
#include <vector>

namespace focus
{

/**
 * Synthetic stand-in for a video / image QA dataset.
 */
struct DatasetProfile
{
    std::string name;

    // --- scene geometry ---
    int frames = 8;           ///< sampled frames per clip
    int grid_h = 10;          ///< patch rows per frame
    int grid_w = 10;          ///< patch cols per frame

    // --- content statistics ---
    int num_objects = 3;          ///< foreground objects per scene
    double motion_scale = 0.6;    ///< mean |velocity| in patches/frame
    double background_drift = 0.02; ///< per-frame background change
    double temporal_jitter = 0.015; ///< per-token temporal noise
    double feature_noise = 0.30;  ///< additive embedding noise (sigma)
    double distractor_prob = 0.45; ///< P(scene has a same-type distractor)

    // --- full-scale token counts for the timing model (paper-scale) ---
    int64_t full_visual_tokens = 6272;
    int64_t full_text_tokens = 109;

    bool isVideo() const { return frames > 1; }
};

/**
 * Model profile: reduced functional dims + full-scale timing dims.
 */
struct ModelProfile
{
    std::string name;

    // --- reduced functional architecture (runs on the CPU) ---
    int hidden = 64;          ///< embedding dim D (divisible by 32)
    int heads = 2;            ///< attention heads (head_dim = D/heads)
    int layers = 6;           ///< transformer layers
    int ffn_mult = 4;         ///< FFN inner = ffn_mult * hidden
    int text_tokens = 8;      ///< prompt length

    /**
     * SEC retention schedule: (layer_fraction, retain_ratio) pairs.
     * The paper's Tbl. I schedule is 40/30/20/15/10% at layers
     * 3/6/9/18/26 of a 28-layer model; expressed as fractions it
     * transfers to the reduced layer count.
     */
    std::vector<std::pair<double, double>> retention_schedule = {
        {3.0 / 28.0, 0.40}, {6.0 / 28.0, 0.30}, {9.0 / 28.0, 0.20},
        {18.0 / 28.0, 0.15}, {26.0 / 28.0, 0.10},
    };

    // --- full-scale architecture (timing model only) ---
    int64_t full_hidden = 3584;
    int64_t full_heads = 28;
    int64_t full_head_dim = 128;
    int64_t full_layers = 28;
    int64_t full_ffn_inner = 18944;

    /**
     * Visual-token multiplier applied to the dataset's full-scale
     * count (MiniCPM's compressive resampler emits fewer tokens per
     * frame than the LLaVA projectors).
     */
    double visual_token_scale = 1.0;

    /** Seed salt so different model profiles get distinct weights. */
    uint64_t seed_salt = 0;

    int headDim() const { return hidden / heads; }
    int ffnInner() const { return ffn_mult * hidden; }

    /** Retention ratio in force after layer @p layer (of @p total). */
    double retentionAfterLayer(int layer, int total) const;

    /** True if SEC prunes exactly at this (0-based) layer boundary. */
    bool pruneAtLayer(int layer, int total) const;
};

/** Look up a dataset profile by paper name (fatal on unknown). */
DatasetProfile datasetProfile(const std::string &name);

/** Look up a model profile by paper name (fatal on unknown). */
ModelProfile modelProfile(const std::string &name);

/** All video dataset names in paper order. */
std::vector<std::string> videoDatasetNames();

/**
 * Paper video roster plus the long-video extension (MLVU-Long, 2x
 * the paper's frame count); the serving-mix roster.
 */
std::vector<std::string> extendedVideoDatasetNames();

/** All image dataset names in paper order (Tbl. V). */
std::vector<std::string> imageDatasetNames();

/** All video model names in paper order. */
std::vector<std::string> videoModelNames();

} // namespace focus

#endif // FOCUS_WORKLOAD_PROFILES_H
