#include "workload/scene.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace focus
{

namespace
{

/** Draw a unit-norm random vector of length n. */
std::vector<float>
randomUnit(Rng &rng, int n)
{
    std::vector<float> v(static_cast<size_t>(n));
    double norm_sq = 0.0;
    for (auto &x : v) {
        x = static_cast<float>(rng.gaussian());
        norm_sq += static_cast<double>(x) * static_cast<double>(x);
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq + 1e-12));
    for (auto &x : v) {
        x *= inv;
    }
    return v;
}

/** Snap a velocity to the nearest multiple of 0.5 patches/frame. */
double
snapHalf(double v)
{
    return std::round(v * 2.0) / 2.0;
}

} // namespace

PrototypeBank::PrototypeBank(uint64_t seed)
{
    // Draw random directions and Gram-Schmidt them so the attribute
    // prototypes are exactly orthonormal (kNumTypes + kNumColors <=
    // kGroupDim): classification margins then depend only on scene
    // noise, not on accidental prototype overlap.
    static_assert(kNumTypes + kNumColors <= kGroupDim,
                  "prototype count exceeds sub-feature dimensions");
    Rng rng(seed);
    std::vector<std::vector<float>> basis;
    while (static_cast<int>(basis.size()) < kNumTypes + kNumColors) {
        std::vector<float> v = randomUnit(rng, kGroupDim);
        for (const auto &b : basis) {
            float d = 0.0f;
            for (int i = 0; i < kGroupDim; ++i) {
                d += v[static_cast<size_t>(i)] *
                    b[static_cast<size_t>(i)];
            }
            for (int i = 0; i < kGroupDim; ++i) {
                v[static_cast<size_t>(i)] -=
                    d * b[static_cast<size_t>(i)];
            }
        }
        double norm_sq = 0.0;
        for (float x : v) {
            norm_sq += static_cast<double>(x) * static_cast<double>(x);
        }
        if (norm_sq < 1e-6) {
            continue; // degenerate draw; retry
        }
        const float inv =
            static_cast<float>(1.0 / std::sqrt(norm_sq));
        for (auto &x : v) {
            x *= inv;
        }
        basis.push_back(std::move(v));
    }
    types_.assign(basis.begin(), basis.begin() + kNumTypes);
    colors_.assign(basis.begin() + kNumTypes, basis.end());
}

const std::vector<float> &
PrototypeBank::type(int t) const
{
    if (t < 0 || t >= kNumTypes) {
        panic("PrototypeBank::type: bad index %d", t);
    }
    return types_[static_cast<size_t>(t)];
}

const std::vector<float> &
PrototypeBank::color(int c) const
{
    if (c < 0 || c >= kNumColors) {
        panic("PrototypeBank::color: bad index %d", c);
    }
    return colors_[static_cast<size_t>(c)];
}

int
PrototypeBank::classifyColor(const float *v) const
{
    int best = 0;
    float best_score = -1e30f;
    for (int c = 0; c < kNumColors; ++c) {
        float s = 0.0f;
        for (int i = 0; i < kGroupDim; ++i) {
            s += v[i] * colors_[static_cast<size_t>(c)]
                [static_cast<size_t>(i)];
        }
        if (s > best_score) {
            best_score = s;
            best = c;
        }
    }
    return best;
}

Tensor
PrototypeBank::liftToHidden(const std::vector<float> &proto,
                            int hidden) const
{
    if (hidden % kGroupDim != 0) {
        panic("liftToHidden: hidden %d not a multiple of group dim %d",
              hidden, kGroupDim);
    }
    Tensor out(hidden);
    const int groups = hidden / kGroupDim;
    for (int g = 0; g < groups; ++g) {
        for (int i = 0; i < kGroupDim; ++i) {
            out(g * kGroupDim + i) = proto[static_cast<size_t>(i)];
        }
    }
    return out;
}

void
Scene::backgroundAt(int f, double y, double x, int grid_h, int grid_w,
                    float *out) const
{
    // Map patch coordinates into the background control grid.
    const double sy = y / std::max(grid_h, 1) * (bg_h - 1);
    const double sx = x / std::max(grid_w, 1) * (bg_w - 1);
    const int iy = clamp(static_cast<int>(sy), 0, bg_h - 2);
    const int ix = clamp(static_cast<int>(sx), 0, bg_w - 2);
    const double fy = clamp(sy - iy, 0.0, 1.0);
    const double fx = clamp(sx - ix, 0.0, 1.0);

    auto at = [&](int yy, int xx) {
        return background.data() +
            (((static_cast<size_t>(f) * bg_h + yy) * bg_w + xx) *
             kGroupDim);
    };
    const float *p00 = at(iy, ix);
    const float *p01 = at(iy, ix + 1);
    const float *p10 = at(iy + 1, ix);
    const float *p11 = at(iy + 1, ix + 1);
    for (int i = 0; i < kGroupDim; ++i) {
        const double top = static_cast<double>(p00[i]) * (1 - fx) +
                           static_cast<double>(p01[i]) * fx;
        const double bot = static_cast<double>(p10[i]) * (1 - fx) +
                           static_cast<double>(p11[i]) * fx;
        out[i] = static_cast<float>(top * (1 - fy) + bot * fy);
    }
}

void
Scene::contentAt(int f, double y, double x, int grid_h, int grid_w,
                 float *out) const
{
    backgroundAt(f, y, x, grid_h, grid_w, out);
    for (const auto &obj : objects) {
        const double dy = y - obj.centerY(f);
        const double dx = x - obj.centerX(f);
        const double d2 = dy * dy + dx * dx;
        const double w = obj.intensity *
            std::exp(-d2 / (2.0 * obj.radius * obj.radius));
        if (w < 1e-3) {
            continue;
        }
        for (int i = 0; i < kGroupDim; ++i) {
            out[i] += static_cast<float>(w) *
                obj.signature[static_cast<size_t>(i)];
        }
    }
}

Scene
makeScene(Rng &rng, const PrototypeBank &bank, int frames, int grid_h,
          int grid_w, int num_objects, double motion_scale,
          double background_drift, double distractor_prob)
{
    Scene scene;
    scene.frames = frames;
    scene.bg_h = std::max(3, grid_h / 3 + 2);
    scene.bg_w = std::max(3, grid_w / 3 + 2);
    scene.background.resize(static_cast<size_t>(frames) * scene.bg_h *
                            scene.bg_w * kGroupDim);

    // Frame 0 background, then drift.
    const double bg_mag = 0.5;
    for (int y = 0; y < scene.bg_h; ++y) {
        for (int x = 0; x < scene.bg_w; ++x) {
            for (int i = 0; i < kGroupDim; ++i) {
                const size_t idx =
                    ((static_cast<size_t>(y)) * scene.bg_w + x) *
                    kGroupDim + i;
                scene.background[idx] =
                    static_cast<float>(rng.gaussian(0.0, bg_mag));
            }
        }
    }
    const size_t frame_elems =
        static_cast<size_t>(scene.bg_h) * scene.bg_w * kGroupDim;
    for (int f = 1; f < frames; ++f) {
        for (size_t i = 0; i < frame_elems; ++i) {
            const float prev =
                scene.background[(f - 1) * frame_elems + i];
            scene.background[f * frame_elems + i] = prev +
                static_cast<float>(rng.gaussian(0.0, background_drift));
        }
    }

    // Objects.
    const int target_type = static_cast<int>(rng.uniformInt(kNumTypes));
    for (int i = 0; i < num_objects; ++i) {
        SceneObject obj;
        obj.type_id = static_cast<int>(rng.uniformInt(kNumTypes));
        obj.color_id = static_cast<int>(rng.uniformInt(kNumColors));
        // The first object is the question target.
        if (i == 0) {
            obj.type_id = target_type;
        } else if (obj.type_id == target_type) {
            // Avoid accidental distractors; one may be added below.
            obj.type_id = (obj.type_id + 1) % kNumTypes;
        }
        obj.y0 = rng.uniform(1.0, grid_h - 1.0);
        obj.x0 = rng.uniform(1.0, grid_w - 1.0);
        obj.vy = snapHalf(rng.gaussian(0.0, motion_scale));
        obj.vx = snapHalf(rng.gaussian(0.0, motion_scale));
        // Keep the object inside the frame over the clip.
        const double end_y = obj.y0 + obj.vy * (frames - 1);
        const double end_x = obj.x0 + obj.vx * (frames - 1);
        if (end_y < 0.5 || end_y > grid_h - 0.5) {
            obj.vy = -obj.vy;
        }
        if (end_x < 0.5 || end_x > grid_w - 0.5) {
            obj.vx = -obj.vx;
        }
        obj.radius = rng.uniform(0.9, 1.5);
        obj.intensity = rng.uniform(1.4, 2.0);
        obj.signature.assign(static_cast<size_t>(kGroupDim), 0.0f);
        const auto &tp = bank.type(obj.type_id);
        const auto &cp = bank.color(obj.color_id);
        auto inst = randomUnit(rng, kGroupDim);
        for (int k = 0; k < kGroupDim; ++k) {
            obj.signature[static_cast<size_t>(k)] =
                1.0f * tp[static_cast<size_t>(k)] +
                0.95f * cp[static_cast<size_t>(k)] +
                0.22f * inst[static_cast<size_t>(k)];
        }
        scene.objects.push_back(std::move(obj));
    }
    scene.target_object = 0;

    // Optional same-type distractor with a different color: makes the
    // question ambiguous for a model that loses spatial grounding.
    if (num_objects >= 2 && rng.bernoulli(distractor_prob)) {
        const int di = 1 + static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(num_objects - 1)));
        SceneObject &d = scene.objects[static_cast<size_t>(di)];
        d.type_id = target_type;
        int other_color = static_cast<int>(rng.uniformInt(kNumColors));
        if (other_color == scene.objects[0].color_id) {
            other_color = (other_color + 1) % kNumColors;
        }
        d.color_id = other_color;
        const auto &tp = bank.type(d.type_id);
        const auto &cp = bank.color(d.color_id);
        auto inst = randomUnit(rng, kGroupDim);
        for (int k = 0; k < kGroupDim; ++k) {
            d.signature[static_cast<size_t>(k)] =
                1.0f * tp[static_cast<size_t>(k)] +
                0.95f * cp[static_cast<size_t>(k)] +
                0.22f * inst[static_cast<size_t>(k)];
        }
        scene.distractor = di;
    }

    return scene;
}

} // namespace focus
