/**
 * @file
 * Synthetic scene model: attribute prototypes and moving objects.
 *
 * A scene is a set of foreground objects moving over a drifting
 * background.  Each object carries two categorical attributes (a
 * "type", e.g. the terrier of Fig. 1, and a "color"); the question
 * generator asks for the color of an object of a given type, so
 * ground truth is known by construction.  Token embeddings are
 * composed of four quadrant sub-features sampled from a continuous
 * content field, which gives the *sub-token* structure the paper's
 * vector-level matching exploits: when an object moves by half a
 * patch, whole quadrant groups shift between neighbouring tokens, so
 * vector-granularity comparisons find matches that token-granularity
 * comparisons miss (Fig. 1(c) / Fig. 2(b)).
 */

#ifndef FOCUS_WORKLOAD_SCENE_H
#define FOCUS_WORKLOAD_SCENE_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace focus
{

/** Sub-feature dimensionality of one quadrant group. */
constexpr int kGroupDim = 16;

/** Quadrant groups per token (hidden = kNumGroups * kGroupDim). */
constexpr int kNumGroups = 4;

/** Number of distinct object types ("terrier", "car", ...). */
constexpr int kNumTypes = 8;

/** Number of distinct color values. */
constexpr int kNumColors = 6;

/**
 * Fixed banks of unit-norm prototype vectors for the categorical
 * attributes.  Shared across all samples of an experiment so the
 * "model" can be said to know them.
 */
class PrototypeBank
{
  public:
    explicit PrototypeBank(uint64_t seed);

    /** Type prototype t in [0, kNumTypes). */
    const std::vector<float> &type(int t) const;

    /** Color prototype c in [0, kNumColors). */
    const std::vector<float> &color(int c) const;

    /**
     * Classify a group_dim readout vector as a color by maximum dot
     * product against the color bank.
     */
    int classifyColor(const float *v) const;

    /**
     * Lift a group_dim prototype to a full hidden-dim embedding by
     * tiling it across quadrant groups.
     */
    Tensor liftToHidden(const std::vector<float> &proto, int hidden) const;

  private:
    std::vector<std::vector<float>> types_;
    std::vector<std::vector<float>> colors_;
};

/** One foreground object. */
struct SceneObject
{
    int type_id = 0;
    int color_id = 0;
    double y0 = 0.0;     ///< initial center row (patch units)
    double x0 = 0.0;     ///< initial center col
    double vy = 0.0;     ///< row velocity (patches/frame)
    double vx = 0.0;     ///< col velocity
    double radius = 1.2; ///< Gaussian footprint sigma (patches)
    double intensity = 1.0;
    std::vector<float> signature; ///< group_dim content vector

    /** Object center at frame f. */
    double centerY(int f) const { return y0 + vy * f; }
    double centerX(int f) const { return x0 + vx * f; }
};

/** A full scene: objects + background control field. */
struct Scene
{
    std::vector<SceneObject> objects;
    int target_object = 0;   ///< index of the queried object
    int distractor = -1;     ///< index of same-type distractor, or -1

    /**
     * Background control grid, (frames x bg_h x bg_w x group_dim)
     * flattened; bilinearly interpolated at sample points.
     */
    std::vector<float> background;
    int bg_h = 0;
    int bg_w = 0;
    int frames = 0;

    /** Background sub-feature at continuous position (y, x), frame f. */
    void backgroundAt(int f, double y, double x, int grid_h, int grid_w,
                      float *out) const;

    /**
     * Full content field at continuous position: background plus all
     * object contributions.  @p out has kGroupDim entries.
     */
    void contentAt(int f, double y, double x, int grid_h, int grid_w,
                   float *out) const;
};

/**
 * Build a random scene.
 *
 * @param rng           random stream
 * @param bank          attribute prototypes
 * @param frames        number of frames
 * @param grid_h/grid_w patch grid
 * @param num_objects   foreground object count
 * @param motion_scale  velocity magnitude scale (patches/frame);
 *                      velocities snap to multiples of 0.5 so motion
 *                      aligns with quadrant anchors
 * @param background_drift per-frame background perturbation
 * @param distractor_prob probability of a same-type distractor
 */
Scene makeScene(Rng &rng, const PrototypeBank &bank, int frames,
                int grid_h, int grid_w, int num_objects,
                double motion_scale, double background_drift,
                double distractor_prob);

} // namespace focus

#endif // FOCUS_WORKLOAD_SCENE_H
