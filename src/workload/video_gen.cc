#include "workload/video_gen.h"

#include <cmath>

#include "common/logging.h"

namespace focus
{

VideoGenerator::VideoGenerator(const DatasetProfile &dataset,
                               const ModelProfile &model, uint64_t seed)
    : dataset_(dataset), model_(model), seed_(seed),
      bank_(seed ^ 0xa1b2c3d4e5f60718ull)
{
    if (model_.hidden != kNumGroups * kGroupDim) {
        // The quadrant construction fixes hidden = 4 * 16; other
        // widths would need a different group layout.
        fatal("VideoGenerator: model hidden %d != %d",
              model_.hidden, kNumGroups * kGroupDim);
    }
}

VideoSample
VideoGenerator::sample(uint64_t index) const
{
    Rng rng = Rng(seed_).fork(0x5eedull + index);

    const int F = dataset_.frames;
    const int H = dataset_.grid_h;
    const int W = dataset_.grid_w;
    const int D = model_.hidden;
    const int T = model_.text_tokens;

    Scene scene = makeScene(rng, bank_, F, H, W, dataset_.num_objects,
                            dataset_.motion_scale,
                            dataset_.background_drift,
                            dataset_.distractor_prob);

    VideoSample s;
    s.frames = F;
    s.grid_h = H;
    s.grid_w = W;
    s.visual_tokens = Tensor(static_cast<int64_t>(F) * H * W, D);
    s.coords.resize(static_cast<size_t>(F) * H * W);

    // Quadrant anchors inside a patch, matching the four groups.
    static const double anchor_y[kNumGroups] = {0.25, 0.25, 0.75, 0.75};
    static const double anchor_x[kNumGroups] = {0.25, 0.75, 0.25, 0.75};

    float content[kGroupDim];
    for (int f = 0; f < F; ++f) {
        for (int r = 0; r < H; ++r) {
            for (int c = 0; c < W; ++c) {
                const int64_t idx = s.tokenIndex(f, r, c);
                s.coords[static_cast<size_t>(idx)] = TokenCoord{f, r, c};
                float *row = s.visual_tokens.row(idx);
                for (int g = 0; g < kNumGroups; ++g) {
                    scene.contentAt(f, r + anchor_y[g], c + anchor_x[g],
                                    H, W, content);
                    for (int k = 0; k < kGroupDim; ++k) {
                        row[g * kGroupDim + k] = content[k] +
                            static_cast<float>(rng.gaussian(
                                0.0, dataset_.feature_noise)) +
                            static_cast<float>(rng.gaussian(
                                0.0, dataset_.temporal_jitter));
                    }
                }
            }
        }
    }
    s.visual_tokens.roundToFp16();

    // Prompt: filler tokens plus one query token that carries the
    // target type prototype (this is what cross-modal attention keys
    // on, cf. the prompt-dependent heatmaps of Fig. 2(a)).
    const SceneObject &target =
        scene.objects[static_cast<size_t>(scene.target_object)];
    s.target_type = target.type_id;
    s.answer_color = target.color_id;

    s.text_tokens = Tensor(T, D);
    for (int t = 0; t < T; ++t) {
        float *row = s.text_tokens.row(t);
        for (int d = 0; d < D; ++d) {
            row[d] = static_cast<float>(rng.gaussian(0.0, 0.25));
        }
    }
    s.query_token = T - 1;
    const Tensor query =
        bank_.liftToHidden(bank_.type(s.target_type), D);
    float *qrow = s.text_tokens.row(s.query_token);
    for (int d = 0; d < D; ++d) {
        qrow[d] = 1.6f * query(d) +
            static_cast<float>(rng.gaussian(0.0, 0.05));
    }
    s.text_tokens.roundToFp16();

    // Relevant tokens: patches within ~1.5 sigma of an object's
    // center in any frame.
    auto coverage = [&](const SceneObject &obj,
                        std::vector<int64_t> &out) {
        for (int f = 0; f < F; ++f) {
            const double cy = obj.centerY(f);
            const double cx = obj.centerX(f);
            for (int r = 0; r < H; ++r) {
                for (int c = 0; c < W; ++c) {
                    const double dy = (r + 0.5) - cy;
                    const double dx = (c + 0.5) - cx;
                    if (dy * dy + dx * dx <=
                        2.25 * obj.radius * obj.radius) {
                        out.push_back(s.tokenIndex(f, r, c));
                    }
                }
            }
        }
    };
    coverage(target, s.relevant_tokens);
    if (scene.distractor >= 0) {
        coverage(scene.objects[static_cast<size_t>(scene.distractor)],
                 s.distractor_tokens);
    }

    return s;
}

} // namespace focus
