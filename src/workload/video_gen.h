/**
 * @file
 * Video sample generation: scene -> tokens + prompt + ground truth.
 */

#ifndef FOCUS_WORKLOAD_VIDEO_GEN_H
#define FOCUS_WORKLOAD_VIDEO_GEN_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "workload/profiles.h"
#include "workload/scene.h"

namespace focus
{

/** (frame, row, col) coordinate of a visual token. */
struct TokenCoord
{
    int f = 0;
    int r = 0;
    int c = 0;

    bool
    operator==(const TokenCoord &o) const
    {
        return f == o.f && r == o.r && c == o.c;
    }
};

/**
 * One QA sample: visual tokens, prompt tokens, and metadata needed to
 * score an answer.
 */
struct VideoSample
{
    Tensor visual_tokens;   ///< (M x hidden), fp16-rounded
    Tensor text_tokens;     ///< (T x hidden), fp16-rounded
    std::vector<TokenCoord> coords; ///< per visual token

    int frames = 0;
    int grid_h = 0;
    int grid_w = 0;

    int query_token = 0;    ///< index (within text) of the query token
    int target_type = 0;
    int answer_color = 0;   ///< ground truth
    /** Visual-token indices covering the target object (any frame). */
    std::vector<int64_t> relevant_tokens;

    /**
     * Tokens covering a same-type distractor object, if the scene
     * has one.  Attention that lands here is semantically grounded
     * (the question is ambiguous), even though the answer readout
     * will be wrong.
     */
    std::vector<int64_t> distractor_tokens;

    int64_t numVisual() const { return visual_tokens.rows(); }
    int64_t numText() const { return text_tokens.rows(); }

    /** Flat token index for (f, r, c). */
    int64_t
    tokenIndex(int f, int r, int c) const
    {
        return (static_cast<int64_t>(f) * grid_h + r) * grid_w + c;
    }
};

/**
 * Deterministic generator of QA samples for a (dataset, model)
 * profile pair.  Sample @p i from a given generator is always the
 * same scene, so methods compared on the same generator see the same
 * inputs.
 */
class VideoGenerator
{
  public:
    VideoGenerator(const DatasetProfile &dataset, const ModelProfile &model,
                   uint64_t seed);

    /** Generate the i-th sample. */
    VideoSample sample(uint64_t index) const;

    const PrototypeBank &bank() const { return bank_; }
    const DatasetProfile &dataset() const { return dataset_; }
    const ModelProfile &model() const { return model_; }

  private:
    DatasetProfile dataset_;
    ModelProfile model_;
    uint64_t seed_;
    PrototypeBank bank_;
};

} // namespace focus

#endif // FOCUS_WORKLOAD_VIDEO_GEN_H
