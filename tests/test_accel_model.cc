/**
 * @file
 * Tests for the end-to-end accelerator model: speedups, traffic
 * behaviours per architecture, energy composition, and area.
 */

#include <gtest/gtest.h>

#include "sim/accel_model.h"
#include "sim/area.h"
#include "sim/gpu_model.h"
#include "sim/systolic.h"

namespace focus
{
namespace
{

FunctionalAggregate
flatAggregate(int layers, double keep, double psi)
{
    FunctionalAggregate agg;
    agg.reduced_layers = layers;
    agg.keep_in.assign(static_cast<size_t>(layers), keep);
    agg.keep_out.assign(static_cast<size_t>(layers), keep);
    agg.psi_qkv.assign(static_cast<size_t>(layers), psi);
    agg.psi_oproj.assign(static_cast<size_t>(layers), psi);
    agg.psi_ffn.assign(static_cast<size_t>(layers), psi);
    agg.psi_down.assign(static_cast<size_t>(layers), psi);
    return agg;
}

struct Traces
{
    ModelProfile mp = modelProfile("Llava-Vid");
    DatasetProfile dp = datasetProfile("VideoMME");
    WorkloadTrace dense = buildDenseTrace(mp, dp);
    WorkloadTrace focus = buildTrace(mp, dp, MethodConfig::focusFull(),
                                     flatAggregate(mp.layers, 1.0,
                                                   0.5));
    WorkloadTrace cmc = buildTrace(mp, dp, MethodConfig::cmcBaseline(),
                                   flatAggregate(mp.layers, 0.53,
                                                 1.0));
    WorkloadTrace adaptiv =
        buildTrace(mp, dp, MethodConfig::adaptivBaseline(),
                   flatAggregate(mp.layers, 0.55, 1.0));
};

TEST(AccelModel, FocusSpeedupInPaperBand)
{
    Traces t;
    const RunMetrics sa = simulateAccelerator(
        AccelConfig::systolicArray(), t.dense);
    const RunMetrics fo =
        simulateAccelerator(AccelConfig::focus(), t.focus);
    const double speedup = static_cast<double>(sa.cycles) / fo.cycles;
    // Paper: 4.47x mean over the dense systolic array.
    EXPECT_GT(speedup, 3.0);
    EXPECT_LT(speedup, 7.0);
}

TEST(AccelModel, CmcTrafficPenaltyVsCompute)
{
    // CMC achieves ~47% token reduction but pays the codec round
    // trip: its activation traffic ratio to dense should be far
    // worse than its compute ratio (Sec. VII-F: 46% sparsity yet 79%
    // of dense traffic).
    Traces t;
    const RunMetrics sa = simulateAccelerator(
        AccelConfig::systolicArray(), t.dense);
    const RunMetrics cmc = simulateAccelerator(AccelConfig::cmc(),
                                               t.cmc);
    const double traffic_ratio =
        static_cast<double>(cmc.dramActivationBytes()) /
        static_cast<double>(sa.dramActivationBytes());
    const double compute_ratio = cmc.mac_ops / sa.mac_ops;
    // Our traffic accounting includes tiling re-reads (which CMC's
    // token-condensed format still benefits from), so the gap is
    // smaller than the paper's stricter write-once/read-once
    // accounting (0.79 traffic at 0.54 compute); the direction must
    // hold regardless.
    EXPECT_GT(traffic_ratio, compute_ratio + 0.04);
    EXPECT_GT(traffic_ratio, 0.55);
    EXPECT_LT(traffic_ratio, 1.05);
}

TEST(AccelModel, FocusTrafficInPaperBand)
{
    // Fig. 12: Focus cuts DRAM access to ~0.2x of dense.
    Traces t;
    const RunMetrics sa = simulateAccelerator(
        AccelConfig::systolicArray(), t.dense);
    const RunMetrics fo =
        simulateAccelerator(AccelConfig::focus(), t.focus);
    const double ratio =
        static_cast<double>(fo.dramTotalBytes()) /
        static_cast<double>(sa.dramTotalBytes());
    EXPECT_GT(ratio, 0.10);
    EXPECT_LT(ratio, 0.40);
}

TEST(AccelModel, EnergyComponentsPositiveAndOrdered)
{
    Traces t;
    const RunMetrics sa = simulateAccelerator(
        AccelConfig::systolicArray(), t.dense);
    EXPECT_GT(sa.energy.core, 0.0);
    EXPECT_GT(sa.energy.buffer, 0.0);
    EXPECT_GT(sa.energy.dram, 0.0);
    EXPECT_EQ(sa.energy.sec, 0.0);
    EXPECT_EQ(sa.energy.sic, 0.0);

    const RunMetrics fo =
        simulateAccelerator(AccelConfig::focus(), t.focus);
    EXPECT_GT(fo.energy.sec, 0.0);
    EXPECT_GT(fo.energy.sic, 0.0);
    // Focus unit energy is a small fraction (Fig. 9(c)).
    EXPECT_LT(fo.energy.sec + fo.energy.sic,
              0.1 * fo.energy.total());
    // Total energy improves on dense.
    EXPECT_LT(fo.energy.total(), 0.5 * sa.energy.total());
}

TEST(AccelModel, UtilizationHighForDenseAndFocus)
{
    Traces t;
    const RunMetrics sa = simulateAccelerator(
        AccelConfig::systolicArray(), t.dense);
    EXPECT_GT(sa.utilization, 0.7);
    EXPECT_LE(sa.utilization, 1.0);
    const RunMetrics fo =
        simulateAccelerator(AccelConfig::focus(), t.focus);
    // Fig. 13: average utilization ~0.92 despite concentration.
    EXPECT_GT(fo.utilization, 0.6);
}

TEST(AccelModel, TileLengthsRecordedOnlyForSic)
{
    Traces t;
    const RunMetrics sa = simulateAccelerator(
        AccelConfig::systolicArray(), t.dense);
    EXPECT_TRUE(sa.tile_lengths.empty());
    const RunMetrics fo =
        simulateAccelerator(AccelConfig::focus(), t.focus);
    EXPECT_FALSE(fo.tile_lengths.empty());
}

TEST(AccelModel, SecStallZeroAtPaperScale)
{
    Traces t;
    const RunMetrics fo =
        simulateAccelerator(AccelConfig::focus(), t.focus);
    EXPECT_EQ(fo.stall_sec, 0u);
}

TEST(AccelModel, MeanInputFracTracksConcentration)
{
    Traces t;
    const RunMetrics sa = simulateAccelerator(
        AccelConfig::systolicArray(), t.dense);
    const RunMetrics fo =
        simulateAccelerator(AccelConfig::focus(), t.focus);
    EXPECT_NEAR(sa.mean_input_frac, 1.0, 0.05);
    EXPECT_LT(fo.mean_input_frac, 0.45);
}

TEST(GpuModel, SlowerThanSystolicDense)
{
    // Paper: Focus is 7.9x over the GPU but 4.47x over the SA, so
    // the GPU is ~0.57x the SA's speed on dense work.
    Traces t;
    const RunMetrics sa = simulateAccelerator(
        AccelConfig::systolicArray(), t.dense);
    const double t_gpu = gpuSeconds(t.dense, GpuConfig{}, false);
    const double ratio = sa.seconds() / t_gpu;
    EXPECT_GT(ratio, 0.35);
    EXPECT_LT(ratio, 0.85);
}

TEST(GpuModel, TokenReductionHelps)
{
    Traces t;
    const WorkloadTrace ff =
        buildTrace(t.mp, t.dp, MethodConfig::frameFusionBaseline(),
                   flatAggregate(t.mp.layers, 0.33, 1.0));
    const GpuConfig gpu;
    const double dense_s = gpuSeconds(t.dense, gpu, false);
    const double ff_s = gpuSeconds(ff, gpu, true);
    EXPECT_LT(ff_s, dense_s);
    EXPECT_GT(dense_s / ff_s, 2.0);
    EXPECT_LT(dense_s / ff_s, 4.5);
}

// ---------------------------------------------------------------
// Area model (Tbl. III)
// ---------------------------------------------------------------

TEST(Area, MatchesTableIII)
{
    EXPECT_NEAR(totalArea(AccelConfig::systolicArray()), 3.12, 0.06);
    EXPECT_NEAR(totalArea(AccelConfig::focus()), 3.21, 0.06);
    EXPECT_NEAR(totalArea(AccelConfig::adaptiv()), 3.38, 0.08);
    EXPECT_NEAR(totalArea(AccelConfig::cmc()), 3.58, 0.08);
}

TEST(Area, FocusUnitOverheadSmall)
{
    // Paper: Focus unit is ~2.7% of the systolic-array design.
    const double base = totalArea(AccelConfig::systolicArray());
    const double focus = totalArea(AccelConfig::focus());
    const double overhead = (focus - base) / base;
    EXPECT_GT(overhead, 0.015);
    EXPECT_LT(overhead, 0.04);
}

TEST(Area, BreakdownSharesMatchFig9c)
{
    const auto parts = areaBreakdown(AccelConfig::focus());
    const double total = totalArea(AccelConfig::focus());
    EXPECT_NEAR(parts.at("systolic_array") / total, 0.44, 0.05);
    EXPECT_NEAR(parts.at("buffer") / total, 0.43, 0.05);
    EXPECT_NEAR(parts.at("sfu") / total, 0.10, 0.03);
    EXPECT_NEAR(parts.at("sec") / total, 0.019, 0.008);
    EXPECT_NEAR(parts.at("sic") / total, 0.008, 0.005);
}

/**
 * Hand-built single-layer trace whose one SIC GEMM draws more tile
 * lengths than the Fig. 13 recording cap (204,800 > 200,000 for the
 * Focus geometry: 2 m-tiles x 3200 n-tiles x 32 k-sub-tiles).
 */
WorkloadTrace
capOvershootTrace()
{
    WorkloadTrace tr;
    tr.method = "focus";
    tr.visual0 = 2048;
    tr.visual_original = 2048;
    tr.hidden = 1024;
    tr.heads = 8;
    tr.head_dim = 128;
    tr.ffn_inner = 4096;
    tr.tile_fracs = {0.3, 0.7, 0.5};
    LayerEvents layer;
    layer.visual_in = 2048;
    layer.visual_out = 2048;
    GemmEvent g;
    g.site = GemmSite::Qkv;
    g.m = 2048;
    g.k = 1024;
    g.n = 102400;
    g.psi_in = 0.5;
    layer.gemms.push_back(g);
    tr.layers.push_back(layer);
    return tr;
}

TEST(AccelModel, TileLengthRecordingStopsExactlyAtCap)
{
    // A whole-batch insert used to overshoot the cap by up to one
    // GEMM's worth of entries; the insert must now truncate exactly.
    const WorkloadTrace tr = capOvershootTrace();
    for (const SimBackend backend :
         {SimBackend::Walk, SimBackend::Fast}) {
        const SimBackend saved = activeSimBackend();
        setSimBackend(backend);
        const RunMetrics rm =
            simulateAccelerator(AccelConfig::focus(), tr);
        setSimBackend(saved);
        EXPECT_EQ(rm.tile_lengths.size(), 200000u)
            << simBackendName(backend);
    }
}

TEST(AccelModelDeathTest, PanicsOnNonPositiveConfigDimensions)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const WorkloadTrace dense = buildDenseTrace(mp, dp);

    AccelConfig bad_rows = AccelConfig::systolicArray();
    bad_rows.array_rows = 0;
    EXPECT_DEATH(simulateAccelerator(bad_rows, dense),
                 "non-positive");

    AccelConfig bad_cols = AccelConfig::systolicArray();
    bad_cols.array_cols = -32;
    EXPECT_DEATH(simulateAccelerator(bad_cols, dense),
                 "non-positive");

    AccelConfig bad_mtile = AccelConfig::focus();
    bad_mtile.m_tile = 0;
    EXPECT_DEATH(simulateAccelerator(bad_mtile, dense),
                 "non-positive");

    AccelConfig bad_lanes = AccelConfig::focus();
    bad_lanes.sec_lanes = -1;
    EXPECT_DEATH(simulateAccelerator(bad_lanes, dense),
                 "non-positive");
}

} // namespace
} // namespace focus
