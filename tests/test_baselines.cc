/**
 * @file
 * Tests for the baseline token-reduction methods: AdapTiV, CMC,
 * FrameFusion.
 */

#include <gtest/gtest.h>

#include "baselines/adaptiv.h"
#include "baselines/cmc.h"
#include "baselines/framefusion.h"
#include "common/rng.h"
#include "workload/profiles.h"
#include "workload/video_gen.h"

namespace focus
{
namespace
{

/** Validity checks shared by all reductions. */
void
checkReduction(const TokenReduction &red, int64_t m)
{
    ASSERT_EQ(static_cast<int64_t>(red.assign.size()), m);
    std::vector<bool> kept(static_cast<size_t>(m), false);
    for (int64_t k : red.kept) {
        ASSERT_GE(k, 0);
        ASSERT_LT(k, m);
        kept[static_cast<size_t>(k)] = true;
    }
    // Kept list ascending and unique.
    for (size_t i = 1; i < red.kept.size(); ++i) {
        EXPECT_LT(red.kept[i - 1], red.kept[i]);
    }
    for (int64_t i = 0; i < m; ++i) {
        const int64_t rep = red.assign[static_cast<size_t>(i)];
        if (rep >= 0) {
            EXPECT_TRUE(kept[static_cast<size_t>(rep)])
                << "token " << i << " assigned to non-kept " << rep;
        }
    }
}

VideoSample
makeSample(const char *dataset, uint64_t seed = 3)
{
    const DatasetProfile dp = datasetProfile(dataset);
    const ModelProfile mp = modelProfile("Llava-Vid");
    const VideoGenerator gen(dp, mp, seed);
    return gen.sample(0);
}

TEST(Adaptiv, SignAgreementBounds)
{
    const float a[4] = {1, -1, 1, -1};
    const float b[4] = {1, -1, 1, -1};
    const float c[4] = {-1, 1, -1, 1};
    EXPECT_DOUBLE_EQ(signAgreement(a, b, 4), 1.0);
    EXPECT_DOUBLE_EQ(signAgreement(a, c, 4), 0.0);
}

TEST(Adaptiv, IdenticalTokensMergeToOnePerFrame)
{
    Tensor x(8, 16);
    for (int64_t i = 0; i < 8; ++i) {
        for (int64_t j = 0; j < 16; ++j) {
            x(i, j) = j % 2 == 0 ? 1.0f : -1.0f;
        }
    }
    std::vector<TokenCoord> coords;
    for (int f = 0; f < 2; ++f) {
        for (int r = 0; r < 2; ++r) {
            for (int c = 0; c < 2; ++c) {
                coords.push_back(TokenCoord{f, r, c});
            }
        }
    }
    AdaptivConfig cfg;
    const TokenReduction red = adaptivReduce(x, coords, 2, 2, 2, cfg);
    checkReduction(red, 8);
    // Intra-frame only: one survivor per frame.
    EXPECT_EQ(red.kept.size(), 2u);
}

TEST(Adaptiv, ThresholdMonotonic)
{
    const VideoSample s = makeSample("VideoMME");
    double prev_keep = 0.0;
    for (double th : {0.60, 0.70, 0.80, 0.95}) {
        AdaptivConfig cfg;
        cfg.sign_threshold = th;
        const TokenReduction red =
            adaptivReduce(s.visual_tokens, s.coords, s.frames,
                          s.grid_h, s.grid_w, cfg);
        checkReduction(red, s.numVisual());
        EXPECT_GE(red.keepFraction() + 1e-12, prev_keep);
        prev_keep = red.keepFraction();
    }
}

TEST(Cmc, StaticVideoKeepsOnlyFrameZero)
{
    // Identical frames: every token in frames > 0 inter-codes to its
    // frame-0 ancestor.
    const int f = 3, h = 3, w = 3;
    Tensor x(f * h * w, 16);
    Rng rng(1);
    for (int64_t i = 0; i < h * w; ++i) {
        for (int64_t j = 0; j < 16; ++j) {
            x(i, j) = static_cast<float>(rng.gaussian());
        }
    }
    for (int64_t ff = 1; ff < f; ++ff) {
        for (int64_t i = 0; i < h * w; ++i) {
            for (int64_t j = 0; j < 16; ++j) {
                x(ff * h * w + i, j) = x(i, j);
            }
        }
    }
    std::vector<TokenCoord> coords;
    for (int ff = 0; ff < f; ++ff) {
        for (int r = 0; r < h; ++r) {
            for (int c = 0; c < w; ++c) {
                coords.push_back(TokenCoord{ff, r, c});
            }
        }
    }
    CmcConfig cfg;
    const TokenReduction red = cmcReduce(x, coords, f, h, w, cfg);
    checkReduction(red, f * h * w);
    EXPECT_EQ(red.kept.size(), static_cast<size_t>(h * w));
    // Chains resolve to frame 0, not frame f-1.
    for (int64_t i = (f - 1) * h * w; i < f * h * w; ++i) {
        EXPECT_LT(red.assign[static_cast<size_t>(i)], h * w);
    }
}

TEST(Cmc, MotionSearchFindsShiftedContent)
{
    // Frame 1 is frame 0 shifted right by one column; direct
    // same-position SAD is large but the search window finds it.
    const int h = 4, w = 6;
    Tensor x(2 * h * w, 16);
    Rng rng(2);
    for (int64_t i = 0; i < h * w; ++i) {
        for (int64_t j = 0; j < 16; ++j) {
            x(i, j) = static_cast<float>(rng.gaussian(0.0, 2.0));
        }
    }
    for (int r = 0; r < h; ++r) {
        for (int c = 1; c < w; ++c) {
            for (int64_t j = 0; j < 16; ++j) {
                x(h * w + r * w + c, j) = x(r * w + (c - 1), j);
            }
        }
    }
    std::vector<TokenCoord> coords;
    for (int f = 0; f < 2; ++f) {
        for (int r = 0; r < h; ++r) {
            for (int c = 0; c < w; ++c) {
                coords.push_back(TokenCoord{f, r, c});
            }
        }
    }
    CmcConfig cfg;
    cfg.sad_threshold = 0.05;
    const TokenReduction red = cmcReduce(x, coords, 2, h, w, cfg);
    checkReduction(red, 2 * h * w);
    // All shifted tokens (c >= 1 in frame 1) matched.
    int matched = 0;
    for (int r = 0; r < h; ++r) {
        for (int c = 1; c < w; ++c) {
            const int64_t i = h * w + r * w + c;
            matched += red.assign[static_cast<size_t>(i)] != i ? 1 : 0;
        }
    }
    EXPECT_EQ(matched, h * (w - 1));
}

TEST(Cmc, NormalizedSadProperties)
{
    const float a[4] = {1, 1, 1, 1};
    const float b[4] = {1, 1, 1, 1};
    EXPECT_DOUBLE_EQ(normalizedSad(a, b, 4), 0.0);
    const float c[4] = {2, 2, 2, 2};
    EXPECT_DOUBLE_EQ(normalizedSad(a, c, 4), 1.0);
}

TEST(FrameFusion, BudgetRespected)
{
    const VideoSample s = makeSample("VideoMME");
    FrameFusionConfig cfg;
    cfg.reduction = 0.70;
    const TokenReduction red =
        frameFusionReduce(s.visual_tokens, s.coords, s.frames,
                          s.grid_h, s.grid_w, cfg);
    checkReduction(red, s.numVisual());
    EXPECT_NEAR(red.keepFraction(), 0.30, 0.05);
}

TEST(FrameFusion, ZeroReductionIsIdentity)
{
    const VideoSample s = makeSample("MVBench");
    FrameFusionConfig cfg;
    cfg.reduction = 0.0;
    const TokenReduction red =
        frameFusionReduce(s.visual_tokens, s.coords, s.frames,
                          s.grid_h, s.grid_w, cfg);
    EXPECT_EQ(red.kept.size(),
              static_cast<size_t>(s.numVisual()));
}

class FrameFusionSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(FrameFusionSweep, KeepMatchesBudgetAcrossLevels)
{
    const VideoSample s = makeSample("MLVU", 11);
    FrameFusionConfig cfg;
    cfg.reduction = GetParam();
    const TokenReduction red =
        frameFusionReduce(s.visual_tokens, s.coords, s.frames,
                          s.grid_h, s.grid_w, cfg);
    checkReduction(red, s.numVisual());
    EXPECT_NEAR(red.keepFraction(), 1.0 - GetParam(), 0.08);
}

INSTANTIATE_TEST_SUITE_P(Levels, FrameFusionSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.8));

TEST(IdentityReduction, IsIdentity)
{
    const TokenReduction red = identityReduction(5);
    EXPECT_EQ(red.kept.size(), 5u);
    for (int64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(red.assign[static_cast<size_t>(i)], i);
    }
    EXPECT_DOUBLE_EQ(red.keepFraction(), 1.0);
}

} // namespace
} // namespace focus
