/**
 * @file
 * Tests for the cluster serving layer (serve/cluster.h).
 *
 * The load-bearing contract is *bit-identity*: a cluster of one
 * replica with default knobs must reproduce every ServingSimulator
 * metric exactly, at every thread count and under both cycle-model
 * backends.  Around it sit property tests for the consistent-hash
 * ring (balance, minimal remapping, history independence), the
 * interconnect term's exact-zero-at-split-1 guarantee, and behaviour
 * tests for shedding, continuous batching and replica scaling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"
#include "serve/cluster.h"
#include "sim/systolic.h"

namespace focus
{
namespace
{

QueueConfig
smallOpenConfig(int requests = 6, double rate_rps = 0.05)
{
    QueueConfig q;
    q.process = ArrivalProcess::OpenPoisson;
    q.arrival_rate_rps = rate_rps;
    q.num_requests = requests;
    q.seed = 42;

    RequestClass focus_cls;
    focus_cls.model = "Llava-Vid";
    focus_cls.dataset = "VideoMME";
    focus_cls.method = MethodConfig::focusFull();
    focus_cls.weight = 3.0;
    focus_cls.slo_latency_s = 120.0;
    q.mix.push_back(focus_cls);

    RequestClass dense_cls;
    dense_cls.model = "Llava-Vid";
    dense_cls.dataset = "VideoMME";
    dense_cls.method = MethodConfig::dense();
    dense_cls.weight = 1.0;
    dense_cls.slo_latency_s = 480.0;
    q.mix.push_back(dense_cls);
    return q;
}

EvalOptions
smallEval()
{
    EvalOptions opts;
    opts.samples = 2;
    opts.seed = 42;
    return opts;
}

/** Restore the ambient cycle-model backend on scope exit. */
struct BackendGuard
{
    SimBackend saved = activeSimBackend();
    ~BackendGuard() { setSimBackend(saved); }
};

// ---- hash ring: properties ----

TEST(HashRing, RoutesDeterministicallyInRange)
{
    const HashRing ring(8);
    EXPECT_EQ(ring.replicas(), 8);
    for (int i = 0; i < 1000; ++i) {
        const std::string key = "key-" + std::to_string(i);
        const int r = ring.route(key);
        EXPECT_GE(r, 0);
        EXPECT_LT(r, 8);
        EXPECT_EQ(r, ring.route(key));
        EXPECT_EQ(r, ring.route(HashRing::hashKey(key)));
    }
}

TEST(HashRing, VirtualNodesBoundLoadImbalance)
{
    const int replicas = 8;
    const int keys = 20000;
    const HashRing ring(replicas);
    std::vector<int> hits(replicas, 0);
    for (int i = 0; i < keys; ++i) {
        hits[static_cast<size_t>(
            ring.route("prefix#" + std::to_string(i)))] += 1;
    }
    const double mean =
        static_cast<double>(keys) / static_cast<double>(replicas);
    for (int r = 0; r < replicas; ++r) {
        // Every replica owns a meaningful share...
        EXPECT_GT(hits[static_cast<size_t>(r)], 0.5 * mean);
        // ...and none dominates (64 vnodes keep max/mean modest).
        EXPECT_LT(hits[static_cast<size_t>(r)], 1.5 * mean);
    }
}

TEST(HashRing, NearIdenticalKeysStillSpread)
{
    // The serving router's real key space: a handful of class labels
    // crossed with small sequential prefix ids.  Keys differing only
    // in a short suffix must not cluster on the ring (this is why
    // hashKey finishes with an avalanche mix — bare FNV-1a fails it).
    const int replicas = 8;
    const HashRing ring(replicas);
    std::vector<int> hits(replicas, 0);
    int keys = 0;
    for (const char *cls : {"Llava-Vid/VideoMME/Focus",
                            "Llava-Vid/VideoMME/Dense",
                            "MiniCPM/MVBench/Focus",
                            "Llava-OV/MLVU-Long/Focus"}) {
        for (int p = 0; p < 64; ++p) {
            hits[static_cast<size_t>(ring.route(
                std::string(cls) + "#" + std::to_string(p)))] += 1;
            keys += 1;
        }
    }
    const double mean =
        static_cast<double>(keys) / static_cast<double>(replicas);
    for (int r = 0; r < replicas; ++r) {
        // Loose band — 256 keys carry real sampling noise — but each
        // replica must own a share, and a clustered hash (a ~4x
        // pile-up on 3 of 8 replicas) must fail loudly.
        EXPECT_GT(hits[static_cast<size_t>(r)], 0.3 * mean);
        EXPECT_LT(hits[static_cast<size_t>(r)], 2.0 * mean);
    }
}

TEST(HashRing, AddingAReplicaMovesOnlyItsShare)
{
    const int keys = 4000;
    HashRing ring(7);
    std::vector<int> before(keys);
    for (int i = 0; i < keys; ++i) {
        before[static_cast<size_t>(i)] =
            ring.route("k" + std::to_string(i));
    }
    const int added = ring.addReplica();
    EXPECT_EQ(added, 7);
    EXPECT_EQ(ring.replicas(), 8);
    int moved = 0;
    for (int i = 0; i < keys; ++i) {
        const int now = ring.route("k" + std::to_string(i));
        if (now != before[static_cast<size_t>(i)]) {
            // A key only ever moves *to* the new replica.
            EXPECT_EQ(now, added);
            moved += 1;
        }
    }
    // Expected movement is K/N = 500; allow 2x slack, but demand
    // some movement (the new replica is not idle).
    EXPECT_GT(moved, 0);
    EXPECT_LT(moved, 2 * keys / 8);
}

TEST(HashRing, RemovingAReplicaStrandsOnlyItsKeys)
{
    const int keys = 4000;
    HashRing ring(8);
    std::vector<int> before(keys);
    for (int i = 0; i < keys; ++i) {
        before[static_cast<size_t>(i)] =
            ring.route("k" + std::to_string(i));
    }
    ring.removeReplica(3);
    EXPECT_EQ(ring.replicas(), 7);
    for (int i = 0; i < keys; ++i) {
        const int now = ring.route("k" + std::to_string(i));
        if (before[static_cast<size_t>(i)] != 3) {
            // Survivors keep every key they already owned.
            EXPECT_EQ(now, before[static_cast<size_t>(i)]);
        } else {
            EXPECT_NE(now, 3);
        }
    }
}

TEST(HashRing, PlacementIndependentOfMembershipHistory)
{
    // Same member set reached three ways: directly, by shrinking,
    // and by growing.  Placement must be a pure function of the set.
    const HashRing direct(5);
    HashRing shrunk(6);
    shrunk.removeReplica(5);
    HashRing grown(3);
    grown.addReplica();
    grown.addReplica();
    ASSERT_EQ(shrunk.members(), direct.members());
    ASSERT_EQ(grown.members(), direct.members());
    for (int i = 0; i < 2000; ++i) {
        const std::string key = "key#" + std::to_string(i);
        EXPECT_EQ(shrunk.route(key), direct.route(key));
        EXPECT_EQ(grown.route(key), direct.route(key));
    }
}

TEST(HashRingDeathTest, RejectsDegenerateRings)
{
    EXPECT_EXIT(HashRing(0), ::testing::ExitedWithCode(1),
                "replica");
    EXPECT_EXIT(HashRing(-1), ::testing::ExitedWithCode(1),
                "replica");
    EXPECT_EXIT(HashRing(2, 0), ::testing::ExitedWithCode(1),
                "virtual-node");
    HashRing ring(2);
    EXPECT_EXIT(ring.removeReplica(9), ::testing::ExitedWithCode(1),
                "unknown replica");
    ring.removeReplica(0);
    EXPECT_EXIT(ring.removeReplica(1), ::testing::ExitedWithCode(1),
                "last replica");
}

TEST(ClusterDeathTest, RejectsInvalidConfigs)
{
    const QueueConfig q = smallOpenConfig();
    ServingSimulator base(q, AccelConfig::focus(), smallEval());

    ClusterConfig c0;
    c0.replicas = 0;
    EXPECT_EXIT(ClusterSimulator(base, c0),
                ::testing::ExitedWithCode(1), "replica");

    ClusterConfig bad_tp;
    bad_tp.tensor_parallel = 0;
    EXPECT_EXIT(ClusterSimulator(base, bad_tp),
                ::testing::ExitedWithCode(1),
                "invalid split factor");

    ClusterConfig bad_dp;
    bad_dp.data_parallel = -2;
    EXPECT_EXIT(ClusterSimulator(base, bad_dp),
                ::testing::ExitedWithCode(1),
                "invalid split factor");

    ClusterConfig bad_theta;
    bad_theta.continuous_theta = 1.0;
    EXPECT_EXIT(ClusterSimulator(base, bad_theta),
                ::testing::ExitedWithCode(1), "theta");

    ClusterConfig bad_shed;
    bad_shed.shed_backlog_s = -0.5;
    EXPECT_EXIT(ClusterSimulator(base, bad_shed),
                ::testing::ExitedWithCode(1), "backlog");

    ClusterConfig bad_vnodes;
    bad_vnodes.vnodes = 0;
    EXPECT_EXIT(ClusterSimulator(base, bad_vnodes),
                ::testing::ExitedWithCode(1), "virtual-node");

    QueueConfig closed = q;
    closed.process = ArrivalProcess::ClosedLoop;
    closed.clients = 2;
    ServingSimulator closed_base(closed, AccelConfig::focus(),
                                 smallEval());
    ClusterSimulator cluster(closed_base, ClusterConfig{});
    EXPECT_EXIT(cluster.run(SchedulerConfig{}),
                ::testing::ExitedWithCode(1), "open-loop");
}

// ---- cluster of one: bit-identity ----

void
expectReportsIdentical(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.throughput_rps, b.throughput_rps);
    EXPECT_EQ(a.latency.mean, b.latency.mean);
    EXPECT_EQ(a.latency.p50, b.latency.p50);
    EXPECT_EQ(a.latency.p95, b.latency.p95);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
    EXPECT_EQ(a.latency.max, b.latency.max);
    EXPECT_EQ(a.mean_occupancy, b.mean_occupancy);
    EXPECT_EQ(a.slo_attainment, b.slo_attainment);
    EXPECT_EQ(a.shed, b.shed);

    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        const RequestOutcome &x = a.outcomes[i];
        const RequestOutcome &y = b.outcomes[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.class_id, y.class_id);
        EXPECT_EQ(x.batch_id, y.batch_id);
        EXPECT_EQ(x.batch_size, y.batch_size);
        EXPECT_EQ(x.arrival_s, y.arrival_s);
        EXPECT_EQ(x.start_s, y.start_s);
        EXPECT_EQ(x.finish_s, y.finish_s);
        EXPECT_EQ(x.slo_met, y.slo_met);
        EXPECT_EQ(x.shed, y.shed);
    }

    ASSERT_EQ(a.batches.size(), b.batches.size());
    for (size_t i = 0; i < a.batches.size(); ++i) {
        const BatchRecord &x = a.batches[i];
        const BatchRecord &y = b.batches[i];
        EXPECT_EQ(x.request_ids, y.request_ids);
        EXPECT_EQ(x.ready_s, y.ready_s);
        EXPECT_EQ(x.start_s, y.start_s);
        EXPECT_EQ(x.service_s, y.service_s);
        EXPECT_EQ(x.metrics.cycles, y.metrics.cycles);
        EXPECT_EQ(x.metrics.dramTotalBytes(),
                  y.metrics.dramTotalBytes());
    }

    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (size_t i = 0; i < a.classes.size(); ++i) {
        const ClassOutcome &x = a.classes[i];
        const ClassOutcome &y = b.classes[i];
        EXPECT_EQ(x.label, y.label);
        EXPECT_EQ(x.requests, y.requests);
        EXPECT_EQ(x.shed, y.shed);
        EXPECT_EQ(x.accuracy, y.accuracy);
        EXPECT_EQ(x.mean_latency_s, y.mean_latency_s);
        EXPECT_EQ(x.slo_attainment, y.slo_attainment);
        EXPECT_EQ(x.solo_latency_s, y.solo_latency_s);
    }
}

TEST(ClusterEquivalence, ClusterOfOneIsBitIdenticalToServingSim)
{
    const QueueConfig q = smallOpenConfig(6);
    SchedulerConfig sched;
    sched.policy = BatchPolicy::Timeout;
    sched.max_batch = 4;
    sched.timeout_s = 25.0;

    BackendGuard guard;
    for (const SimBackend backend :
         {SimBackend::Walk, SimBackend::Fast}) {
        setSimBackend(backend);
        for (const int threads : {1, 4}) {
            ThreadPool pool(threads);

            ServingSimulator ref(q, AccelConfig::focus(),
                                 smallEval());
            const ServingReport expect = ref.run(sched, &pool);

            ServingSimulator base(q, AccelConfig::focus(),
                                  smallEval());
            ClusterConfig one;
            one.replicas = 1;
            ClusterSimulator cluster(base, one);
            const ClusterReport got = cluster.run(sched, &pool);

            expectReportsIdentical(expect, got.merged);
            EXPECT_EQ(got.admitted, 6);
            EXPECT_EQ(got.shed, 0);
            EXPECT_EQ(got.shed_rate, 0.0);
            EXPECT_EQ(got.load_imbalance, 1.0);
            EXPECT_EQ(got.interconnect_bytes, 0u);
            ASSERT_EQ(got.replicas.size(), 1u);
            EXPECT_EQ(got.replicas[0].routed, 6);
            EXPECT_EQ(got.replicas[0].batches,
                      static_cast<int>(expect.batches.size()));
            EXPECT_EQ(got.replicas[0].makespan_s, expect.makespan_s);
            for (const BatchRecord &b : got.merged.batches) {
                EXPECT_EQ(b.replica, 0);
            }
        }
    }
}

TEST(ClusterEquivalence, RoundRobinRoutingMatchesHashRingOfOne)
{
    const QueueConfig q = smallOpenConfig(6);
    const SchedulerConfig sched;
    ServingSimulator base(q, AccelConfig::focus(), smallEval());

    ClusterConfig ring_cfg;
    ClusterConfig rr_cfg;
    rr_cfg.routing = RoutingPolicy::RoundRobin;
    const ClusterReport a =
        ClusterSimulator(base, ring_cfg).run(sched);
    const ClusterReport b =
        ClusterSimulator(base, rr_cfg).run(sched);
    expectReportsIdentical(a.merged, b.merged);
}

// ---- multi-replica behaviour ----

TEST(Cluster, RoundRobinSpreadsRequestsEvenly)
{
    const QueueConfig q = smallOpenConfig(9, 0.5);
    ServingSimulator base(q, AccelConfig::focus(), smallEval());
    ClusterConfig cfg;
    cfg.replicas = 3;
    cfg.routing = RoutingPolicy::RoundRobin;
    const ClusterReport rep =
        ClusterSimulator(base, cfg).run(SchedulerConfig{});
    ASSERT_EQ(rep.replicas.size(), 3u);
    for (const ReplicaStats &rs : rep.replicas) {
        EXPECT_EQ(rs.routed, 3);
    }
    EXPECT_EQ(rep.load_imbalance, 1.0);
    EXPECT_EQ(rep.shed, 0);
}

TEST(Cluster, HashRoutingKeepsPrefixAffinity)
{
    // Same (class, prefix) key always lands on the same replica.
    const QueueConfig q = smallOpenConfig(24, 0.5);
    const std::vector<ServeRequest> stream =
        RequestQueue(q).generate();
    const HashRing ring(4);
    std::map<std::string, int> seen;
    for (const ServeRequest &r : stream) {
        const RequestClass &cls =
            q.mix[static_cast<size_t>(r.class_id)];
        const std::string key =
            ClusterSimulator::routingKey(r, cls);
        const int replica = ring.route(key);
        const auto it = seen.find(key);
        if (it != seen.end()) {
            EXPECT_EQ(it->second, replica);
        } else {
            seen.emplace(key, replica);
        }
    }
}

TEST(Cluster, MoreReplicasNeverSlowTheFleet)
{
    const QueueConfig q = smallOpenConfig(10, 1.0);
    ServingSimulator base(q, AccelConfig::focus(), smallEval());
    // Single policy: removing requests from a FIFO server never
    // delays the rest, so sharding monotonically helps (batching
    // policies add timeout-flush dynamics that can mask this).
    SchedulerConfig sched;
    sched.policy = BatchPolicy::Single;

    double prev_makespan = 0.0;
    bool first = true;
    for (const int replicas : {1, 2, 4}) {
        ClusterConfig cfg;
        cfg.replicas = replicas;
        cfg.routing = RoutingPolicy::RoundRobin;
        const ClusterReport rep =
            ClusterSimulator(base, cfg).run(sched);
        EXPECT_EQ(rep.merged.outcomes.size(), 10u);
        EXPECT_EQ(rep.shed, 0);
        if (!first) {
            EXPECT_LE(rep.merged.makespan_s, prev_makespan);
        }
        prev_makespan = rep.merged.makespan_s;
        first = false;
    }
}

TEST(Cluster, SheddingBoundsBacklogAndCountsMisses)
{
    // An overloaded single replica with a tight backlog bound must
    // shed, and everything it sheds counts as an SLO miss.
    const QueueConfig q = smallOpenConfig(12, 100.0);
    ServingSimulator base(q, AccelConfig::focus(), smallEval());

    ClusterConfig tight;
    tight.shed_backlog_s = 1.0;
    const ClusterReport shed_rep =
        ClusterSimulator(base, tight).run(SchedulerConfig{});
    EXPECT_GT(shed_rep.shed, 0);
    EXPECT_EQ(shed_rep.admitted + shed_rep.shed, 12);
    EXPECT_EQ(shed_rep.merged.shed, shed_rep.shed);
    EXPECT_EQ(shed_rep.merged.outcomes.size(), 12u);

    int shed_seen = 0;
    for (const RequestOutcome &o : shed_rep.merged.outcomes) {
        if (o.shed) {
            shed_seen += 1;
            EXPECT_FALSE(o.slo_met);
            EXPECT_EQ(o.batch_id, -1);
            EXPECT_EQ(o.finish_s, o.arrival_s);
        }
    }
    EXPECT_EQ(shed_seen, shed_rep.shed);

    int class_shed = 0;
    for (const ClassOutcome &c : shed_rep.merged.classes) {
        class_shed += c.shed;
    }
    EXPECT_EQ(class_shed, shed_rep.shed);

    // A looser bound sheds no more than a tighter one; no bound
    // sheds nothing.
    ClusterConfig loose = tight;
    loose.shed_backlog_s = 1e9;
    const ClusterReport loose_rep =
        ClusterSimulator(base, loose).run(SchedulerConfig{});
    EXPECT_LE(loose_rep.shed, shed_rep.shed);

    const ClusterReport open_rep =
        ClusterSimulator(base, ClusterConfig{})
            .run(SchedulerConfig{});
    EXPECT_EQ(open_rep.shed, 0);
    // Shedding can only improve the served latency tail.
    EXPECT_LE(shed_rep.merged.latency.p99,
              open_rep.merged.latency.p99);
}

TEST(Cluster, TensorParallelAddsInterconnectAndCutsMakespan)
{
    const QueueConfig q = smallOpenConfig(6, 1.0);
    ServingSimulator base(q, AccelConfig::focus(), smallEval());
    const SchedulerConfig sched;

    ClusterConfig plain;
    const ClusterReport unsplit =
        ClusterSimulator(base, plain).run(sched);
    // The interconnect term is *exactly* zero without a split.
    EXPECT_EQ(unsplit.interconnect_bytes, 0u);
    for (const BatchRecord &b : unsplit.merged.batches) {
        EXPECT_EQ(b.metrics.interconnect_bytes, 0u);
        EXPECT_EQ(b.metrics.interconnect_cycles, 0u);
        EXPECT_EQ(b.metrics.energy.interconnect, 0.0);
    }

    ClusterConfig tp2 = plain;
    tp2.tensor_parallel = 2;
    const ClusterReport split =
        ClusterSimulator(base, tp2).run(sched);
    EXPECT_GT(split.interconnect_bytes, 0u);
    // Each shard computes roughly half a layer between collectives,
    // so batches finish faster despite the interconnect tax.
    EXPECT_LT(split.merged.makespan_s, unsplit.merged.makespan_s);
    for (const BatchRecord &b : split.merged.batches) {
        EXPECT_GT(b.metrics.interconnect_bytes, 0u);
        EXPECT_GT(b.metrics.interconnect_cycles, 0u);
    }
}

TEST(Cluster, LayerCyclesPartitionTotalCycles)
{
    const QueueConfig q = smallOpenConfig(4);
    ServingSimulator base(q, AccelConfig::focus(), smallEval());
    ClusterSimulator cluster(base, ClusterConfig{});
    const ClusterReport rep = cluster.run(SchedulerConfig{});
    for (const BatchRecord &b : rep.merged.batches) {
        ASSERT_FALSE(b.metrics.layer_cycles.empty());
        uint64_t sum = 0;
        for (const uint64_t c : b.metrics.layer_cycles) {
            sum += c;
        }
        EXPECT_EQ(sum, b.metrics.cycles);
    }
}

TEST(Cluster, ContinuousBatchingNeverStretchesTheMakespan)
{
    // Launching at the SEC knee can only overlap work that serial
    // boundaries would serialize.
    const QueueConfig q = smallOpenConfig(10, 2.0);
    ServingSimulator base(q, AccelConfig::focus(), smallEval());
    SchedulerConfig sched;
    sched.policy = BatchPolicy::FixedSize;
    sched.max_batch = 2;

    ClusterConfig serial;
    const ClusterReport serial_rep =
        ClusterSimulator(base, serial).run(sched);

    ClusterConfig cont;
    cont.continuous_theta = 0.5;
    const ClusterReport cont_rep =
        ClusterSimulator(base, cont).run(sched);

    EXPECT_GT(cont_rep.merged.makespan_s, 0.0);
    EXPECT_LE(cont_rep.merged.makespan_s,
              serial_rep.merged.makespan_s);
    EXPECT_EQ(cont_rep.merged.outcomes.size(), 10u);
    for (const RequestOutcome &o : cont_rep.merged.outcomes) {
        EXPECT_GE(o.start_s, o.arrival_s);
        EXPECT_GT(o.finish_s, o.start_s);
    }
}

TEST(Cluster, AdvancedKnobsStayThreadDeterministic)
{
    const QueueConfig q = smallOpenConfig(8, 1.0);
    SchedulerConfig sched;
    sched.policy = BatchPolicy::Timeout;
    sched.max_batch = 4;

    ClusterConfig cfg;
    cfg.replicas = 2;
    cfg.tensor_parallel = 2;
    cfg.continuous_theta = 0.3;
    cfg.shed_backlog_s = 500.0;

    ThreadPool pool1(1);
    ServingSimulator base1(q, AccelConfig::focus(), smallEval());
    const ClusterReport a =
        ClusterSimulator(base1, cfg).run(sched, &pool1);

    ThreadPool pool4(4);
    ServingSimulator base4(q, AccelConfig::focus(), smallEval());
    const ClusterReport b =
        ClusterSimulator(base4, cfg).run(sched, &pool4);

    expectReportsIdentical(a.merged, b.merged);
    EXPECT_EQ(a.interconnect_bytes, b.interconnect_bytes);
    EXPECT_EQ(a.shed, b.shed);
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (size_t r = 0; r < a.replicas.size(); ++r) {
        EXPECT_EQ(a.replicas[r].routed, b.replicas[r].routed);
        EXPECT_EQ(a.replicas[r].busy_s, b.replicas[r].busy_s);
    }
}

} // namespace
} // namespace focus