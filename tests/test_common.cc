/**
 * @file
 * Unit tests for the common substrate: Half, Rng, stats, math utils.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/half.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/stats.h"

namespace focus
{
namespace
{

// ---------------------------------------------------------------
// Half
// ---------------------------------------------------------------

TEST(Half, ZeroRoundTrips)
{
    EXPECT_EQ(Half(0.0f).toFloat(), 0.0f);
    EXPECT_EQ(Half(-0.0f).bits(), 0x8000u);
}

TEST(Half, ExactSmallIntegers)
{
    for (int i = -2048; i <= 2048; ++i) {
        EXPECT_EQ(Half(static_cast<float>(i)).toFloat(),
                  static_cast<float>(i))
            << "integer " << i;
    }
}

TEST(Half, KnownBitPatterns)
{
    EXPECT_EQ(Half(1.0f).bits(), 0x3c00u);
    EXPECT_EQ(Half(-2.0f).bits(), 0xc000u);
    EXPECT_EQ(Half(0.5f).bits(), 0x3800u);
    EXPECT_EQ(Half(65504.0f).bits(), 0x7bffu); // max normal
}

TEST(Half, OverflowSaturatesToInfinity)
{
    EXPECT_EQ(Half(1e6f).bits(), 0x7c00u);
    EXPECT_EQ(Half(-1e6f).bits(), 0xfc00u);
    EXPECT_TRUE(std::isinf(Half(70000.0f).toFloat()));
}

TEST(Half, NanPreserved)
{
    const float nan = std::nanf("");
    EXPECT_TRUE(std::isnan(Half(nan).toFloat()));
}

TEST(Half, SubnormalsRepresentable)
{
    // Smallest positive subnormal half = 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(Half(tiny).bits(), 0x0001u);
    EXPECT_EQ(Half(tiny).toFloat(), tiny);
    // Underflow to zero below half of the smallest subnormal.
    EXPECT_EQ(Half(std::ldexp(1.0f, -26)).bits(), 0x0000u);
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10);
    // RNE picks the even mantissa (1.0).
    const float midpoint = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(Half(midpoint).bits(), Half(1.0f).bits());
    // 1 + 3*2^-11 is between odd and even; rounds up to even.
    const float mid2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
    EXPECT_EQ(Half(mid2).bits(),
              static_cast<uint16_t>(Half(1.0f).bits() + 2));
}

TEST(Half, RoundTripIsIdempotent)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const float v =
            static_cast<float>(rng.gaussian(0.0, 10.0));
        const float once = fp16Round(v);
        EXPECT_EQ(fp16Round(once), once);
    }
}

TEST(Half, SignBit)
{
    EXPECT_FALSE(Half(3.0f).signBit());
    EXPECT_TRUE(Half(-3.0f).signBit());
}

// ---------------------------------------------------------------
// Rng
// ---------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.next() == b.next() ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntUnbiasedRange)
{
    Rng rng(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 3000; ++i) {
        const uint64_t v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ForkIndependentStreams)
{
    Rng parent(9);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += c1.next() == c2.next() ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkDeterministic)
{
    Rng p1(9), p2(9);
    Rng a = p1.fork(5);
    Rng b = p2.fork(5);
    EXPECT_EQ(a.next(), b.next());
}

// ---------------------------------------------------------------
// Stats
// ---------------------------------------------------------------

TEST(ScalarSummary, BasicMoments)
{
    ScalarSummary s;
    for (double v : {1.0, 2.0, 3.0, 4.0}) {
        s.add(v);
    }
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(ScalarSummary, MergeMatchesCombined)
{
    ScalarSummary a, b, all;
    for (int i = 0; i < 10; ++i) {
        const double v = i * 0.7 - 2.0;
        (i < 5 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, BinningAndCdf)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) {
        h.add(i + 0.5);
    }
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(h.binCount(i), 1u);
    }
    EXPECT_DOUBLE_EQ(h.cdfAt(4.4), 0.4);
    EXPECT_DOUBLE_EQ(h.cdfAt(100.0), 1.0);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(5.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(StatSet, IncrementAndMerge)
{
    StatSet a, b;
    a.inc("x");
    a.inc("x", 2);
    b.inc("x", 10);
    b.inc("y");
    a.merge(b);
    EXPECT_EQ(a.get("x"), 13u);
    EXPECT_EQ(a.get("y"), 1u);
    EXPECT_EQ(a.get("z"), 0u);
    EXPECT_TRUE(a.has("y"));
    EXPECT_FALSE(a.has("z"));
}

// ---------------------------------------------------------------
// math_util
// ---------------------------------------------------------------

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv<int64_t>(1, 1024), 1);
}

TEST(MathUtil, Pow2Helpers)
{
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(48));
    EXPECT_FALSE(isPow2(0));
    EXPECT_EQ(log2Exact(1024), 10);
}

} // namespace
} // namespace focus
