/**
 * @file
 * Tests for the DDR4 DRAM model: row-buffer behaviour, address
 * mapping, stream-mode calibration, energy accounting.
 */

#include <gtest/gtest.h>

#include "sim/dram.h"

namespace focus
{
namespace
{

TEST(Dram, RowHitCheaperThanMiss)
{
    DramConfig cfg;
    DramModel dram(cfg);
    const uint64_t first = dram.access(0, 64, false);   // row miss
    const uint64_t second = dram.access(64 * 4, 64, false); // same row?
    // First access activates; cost includes tRCD.
    EXPECT_GT(first, static_cast<uint64_t>(cfg.t_bl));
    // Accessing the same channel's row again is hit-priced.
    (void)second;
    const uint64_t third = dram.access(0, 64, false);
    EXPECT_EQ(third, static_cast<uint64_t>(cfg.t_bl));
}

TEST(Dram, ConsecutiveBurstsInterleaveChannels)
{
    DramConfig cfg;
    DramModel dram(cfg);
    dram.access(0, 64, false);
    dram.access(64, 64, false);
    dram.access(128, 64, false);
    dram.access(192, 64, false);
    // Four consecutive bursts hit four distinct channels, so each is
    // a fresh row in its own bank: 4 row misses.
    EXPECT_EQ(dram.stats.get("row_miss_rd"), 4u);
}

TEST(Dram, RowMissAfterConflict)
{
    DramConfig cfg;
    DramModel dram(cfg);
    // Same channel and bank, different row: row_bytes * channels *
    // banks apart.
    const uint64_t stride = static_cast<uint64_t>(cfg.row_bytes) *
        cfg.channels * cfg.banks_per_channel;
    dram.access(0, 64, false);
    dram.access(stride, 64, false);
    dram.access(0, 64, false);
    EXPECT_EQ(dram.stats.get("row_miss_rd"), 3u);
}

TEST(Dram, StreamEfficiencyInBand)
{
    DramConfig cfg;
    DramModel dram(cfg);
    const double eff = dram.streamEfficiency();
    EXPECT_GT(eff, 0.80);
    EXPECT_LE(eff, 1.0);
}

TEST(Dram, StreamCyclesMatchBandwidth)
{
    DramConfig cfg;
    DramModel dram(cfg);
    const uint64_t bytes = 1 << 20;
    const double peak = cfg.bytes_per_cycle_per_channel * cfg.channels;
    const uint64_t cycles = dram.streamCycles(bytes);
    EXPECT_GE(cycles, static_cast<uint64_t>(bytes / peak));
    EXPECT_LE(cycles, static_cast<uint64_t>(1.3 * bytes / peak));
}

TEST(Dram, StreamModeConsistentWithRequestMode)
{
    // For a large contiguous read, request-mode busy cycles summed
    // across channels should be close to stream-mode cycles * channels
    // (request mode serializes what stream mode overlaps; compare
    // per-channel occupancy).
    DramConfig cfg;
    DramModel req(cfg);
    const uint64_t bytes = 512 * 1024;
    uint64_t busy = 0;
    for (uint64_t a = 0; a < bytes; a += 64) {
        busy += req.access(a, 64, false);
    }
    DramModel strm(cfg);
    const uint64_t stream = strm.streamCycles(bytes) * cfg.channels;
    EXPECT_NEAR(static_cast<double>(busy),
                static_cast<double>(stream),
                0.25 * static_cast<double>(stream));
}

TEST(Dram, EnergyGrowsWithTraffic)
{
    DramConfig cfg;
    DramModel dram(cfg);
    dram.addStreamEnergy(1 << 20);
    const double e1 = dram.dynamicEnergyJ();
    dram.addStreamEnergy(1 << 20);
    const double e2 = dram.dynamicEnergyJ();
    EXPECT_GT(e1, 0.0);
    EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
}

TEST(Dram, BackgroundEnergyScalesWithTime)
{
    DramConfig cfg;
    DramModel dram(cfg);
    const double e = dram.backgroundEnergyJ(500000000, 0.5); // 1 s
    EXPECT_NEAR(e, cfg.p_background_mw * 1e-3, 1e-9);
}

TEST(Dram, ResetClearsState)
{
    DramConfig cfg;
    DramModel dram(cfg);
    dram.access(0, 4096, true);
    dram.reset();
    EXPECT_EQ(dram.totalBytes(), 0u);
    EXPECT_EQ(dram.dynamicEnergyJ(), 0.0);
}

TEST(Dram, ZeroByteStreamIsFree)
{
    DramConfig cfg;
    DramModel dram(cfg);
    EXPECT_EQ(dram.streamCycles(0), 0u);
    dram.addStreamEnergy(0);
    EXPECT_EQ(dram.dynamicEnergyJ(), 0.0);
    EXPECT_EQ(dram.totalBytes(), 0u);
}

TEST(Dram, SingleByteStreamRoundsUpToOneCycle)
{
    DramConfig cfg;
    DramModel dram(cfg);
    // A sub-burst transfer still occupies the bus for a cycle.
    EXPECT_EQ(dram.streamCycles(1), 1u);
    dram.addStreamEnergy(1);
    // One row activation plus one byte moved.
    EXPECT_GT(dram.dynamicEnergyJ(), 0.0);
    EXPECT_EQ(dram.totalBytes(), 1u);
}

TEST(Dram, HugeStreamMatchesBandwidthWithoutOverflow)
{
    DramConfig cfg;
    DramModel dram(cfg);
    // > 4 GiB: must not truncate through any 32-bit intermediate.
    const uint64_t bytes = 5ull << 30;
    const uint64_t cycles = dram.streamCycles(bytes);
    const double peak = cfg.bytes_per_cycle_per_channel * cfg.channels;
    const double expect =
        static_cast<double>(bytes) / (peak * dram.streamEfficiency());
    EXPECT_NEAR(static_cast<double>(cycles), expect, 1.0);
    // Far beyond what 2^32 bytes at peak bandwidth would take.
    EXPECT_GT(cycles, static_cast<uint64_t>(
        static_cast<double>(4ull << 30) / peak));
}

TEST(Dram, StreamCyclesMonotonicInBytes)
{
    DramConfig cfg;
    DramModel dram(cfg);
    uint64_t prev = 0;
    for (const uint64_t bytes :
         {0ull, 1ull, 64ull, 4096ull, 1ull << 20, 1ull << 30,
          5ull << 30}) {
        const uint64_t c = dram.streamCycles(bytes);
        EXPECT_GE(c, prev) << bytes;
        prev = c;
    }
}

TEST(Dram, BackgroundEnergyMonotonicInCycles)
{
    DramConfig cfg;
    DramModel dram(cfg);
    EXPECT_EQ(dram.backgroundEnergyJ(0, 0.5), 0.0);
    double prev = 0.0;
    for (const uint64_t cycles :
         {1ull, 1000ull, 1ull << 20, 500000000ull, 1ull << 40}) {
        const double e = dram.backgroundEnergyJ(cycles, 0.5);
        EXPECT_GT(e, prev) << cycles;
        prev = e;
    }
}

} // namespace
} // namespace focus
