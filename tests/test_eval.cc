/**
 * @file
 * Tests for the evaluation pipeline: aggregation correctness, trace
 * sparsity accounting, FrameFusion budget solving, method naming,
 * and cross-run determinism.
 */

#include <gtest/gtest.h>

#include "eval/evaluator.h"

namespace focus
{
namespace
{

EvalOptions
quick(int samples = 2)
{
    EvalOptions o;
    o.samples = samples;
    o.seed = 777;
    return o;
}

TEST(MethodConfig, NamesAreDistinct)
{
    EXPECT_EQ(MethodConfig::dense().name(), "Dense");
    EXPECT_EQ(MethodConfig::focusFull().name(), "Focus");
    EXPECT_EQ(MethodConfig::focusSecOnly().name(), "Focus-SEC");
    EXPECT_EQ(MethodConfig::focusSicOnly().name(), "Focus-SIC");
    EXPECT_EQ(MethodConfig::focusTokenWise().name(),
              "Focus-TokenWise");
    EXPECT_EQ(MethodConfig::adaptivBaseline().name(), "AdapTiV");
    EXPECT_EQ(MethodConfig::cmcBaseline().name(), "CMC");
    EXPECT_EQ(MethodConfig::frameFusionBaseline().name(),
              "FrameFusion");
    MethodConfig q = MethodConfig::focusFull();
    q.int8 = true;
    EXPECT_EQ(q.name(), "Focus-INT8");
}

TEST(Evaluator, DeterministicAcrossInstances)
{
    Evaluator a("Llava-Vid", "MVBench", quick());
    Evaluator b("Llava-Vid", "MVBench", quick());
    const MethodEval ea = a.runFunctional(MethodConfig::focusFull());
    const MethodEval eb = b.runFunctional(MethodConfig::focusFull());
    EXPECT_DOUBLE_EQ(ea.accuracy, eb.accuracy);
    EXPECT_DOUBLE_EQ(ea.sparsity, eb.sparsity);
    ASSERT_EQ(ea.agg.psi_oproj.size(), eb.agg.psi_oproj.size());
    for (size_t i = 0; i < ea.agg.psi_oproj.size(); ++i) {
        EXPECT_DOUBLE_EQ(ea.agg.psi_oproj[i], eb.agg.psi_oproj[i]);
    }
}

TEST(Evaluator, ModelsSeeDistinctWorkloads)
{
    Evaluator a("Llava-Vid", "MVBench", quick());
    Evaluator b("Llava-OV", "MVBench", quick());
    const MethodEval ea = a.runFunctional(MethodConfig::focusFull());
    const MethodEval eb = b.runFunctional(MethodConfig::focusFull());
    // Different profiles -> different measured concentration.
    EXPECT_NE(ea.agg.psi_oproj.front(), eb.agg.psi_oproj.front());
}

TEST(Evaluator, AggregateLayerCountsMatchProfile)
{
    Evaluator ev("Llava-Vid", "MVBench", quick());
    const MethodEval e = ev.runFunctional(MethodConfig::focusFull());
    const int layers = ev.modelProfile().layers;
    EXPECT_EQ(e.agg.reduced_layers, layers);
    EXPECT_EQ(static_cast<int>(e.agg.keep_in.size()), layers);
    EXPECT_EQ(static_cast<int>(e.agg.keep_out.size()), layers);
    EXPECT_EQ(e.agg.samples, 2);
    // keep_in is non-increasing under SEC.
    for (size_t l = 1; l < e.agg.keep_in.size(); ++l) {
        EXPECT_LE(e.agg.keep_in[l], e.agg.keep_in[l - 1] + 1e-9);
    }
}

TEST(Evaluator, TraceSparsityZeroForDense)
{
    Evaluator ev("Llava-Vid", "MVBench", quick());
    const MethodEval e = ev.runFunctional(MethodConfig::dense());
    EXPECT_NEAR(ev.traceSparsity(MethodConfig::dense(), e), 0.0, 1e-9);
}

class FfBudget : public ::testing::TestWithParam<double>
{
};

TEST_P(FfBudget, SolverHitsTarget)
{
    Evaluator ev("Llava-Vid", "VideoMME", quick());
    const double target = GetParam();
    const double reduction = ev.frameFusionReductionFor(target);
    EXPECT_GT(reduction, 0.0);
    EXPECT_LT(reduction, 1.0);
    // Verify by running FrameFusion with that reduction.
    MethodConfig ff = MethodConfig::frameFusionBaseline();
    ff.framefusion.reduction = reduction;
    const MethodEval e = ev.runFunctional(ff);
    EXPECT_NEAR(ev.traceSparsity(ff, e), target, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Targets, FfBudget,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8));

TEST(Evaluator, StandardMethodsRoster)
{
    Evaluator ev("Llava-Vid", "MVBench", quick());
    const auto methods = ev.standardMethods();
    ASSERT_EQ(methods.size(), 5u);
    EXPECT_EQ(methods[0].kind, MethodKind::Dense);
    EXPECT_EQ(methods[1].kind, MethodKind::FrameFusion);
    EXPECT_EQ(methods[4].kind, MethodKind::Focus);
}

TEST(Evaluator, SimulateProducesConsistentEval)
{
    Evaluator ev("Llava-Vid", "MVBench", quick());
    MethodEval out;
    const RunMetrics rm = ev.simulate(MethodConfig::focusFull(),
                                      AccelConfig::focus(), &out);
    EXPECT_GT(rm.cycles, 0u);
    EXPECT_EQ(out.method, "Focus");
    EXPECT_GT(out.agg.tile_fracs.size(), 0u);
}

TEST(Evaluator, MiniCpmHasFewerFullScaleTokens)
{
    Evaluator a("Llava-Vid", "VideoMME", quick());
    Evaluator b("MiniCPM", "VideoMME", quick());
    const MethodEval ea = a.runFunctional(MethodConfig::dense());
    const MethodEval eb = b.runFunctional(MethodConfig::dense());
    const WorkloadTrace ta =
        a.buildFullTrace(MethodConfig::dense(), ea);
    const WorkloadTrace tb =
        b.buildFullTrace(MethodConfig::dense(), eb);
    EXPECT_LT(tb.visual_original, ta.visual_original);
    EXPECT_LT(tb.totalMacs(), ta.totalMacs());
}

TEST(Evaluator, QwenScheduleRetainsMore)
{
    // Qwen2.5-VL uses a milder retention schedule (Tbl. V context).
    const ModelProfile qwen = modelProfile("Qwen2.5-VL");
    const ModelProfile llava = modelProfile("Llava-OV");
    EXPECT_GT(qwen.retentionAfterLayer(27, 28),
              llava.retentionAfterLayer(27, 28));
}

} // namespace
} // namespace focus
