/**
 * @file
 * Tests for the FocusUnit facade: semantic pruning state, gather
 * delegation, offset encoding, and stats bookkeeping.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "focus/focus_unit.h"
#include "tensor/ops.h"

namespace focus
{
namespace
{

std::vector<TokenCoord>
rasterCoords(int f, int h, int w)
{
    std::vector<TokenCoord> coords;
    for (int ff = 0; ff < f; ++ff) {
        for (int rr = 0; rr < h; ++rr) {
            for (int cc = 0; cc < w; ++cc) {
                coords.push_back(TokenCoord{ff, rr, cc});
            }
        }
    }
    return coords;
}

/** One attention head where text attends mostly to chosen tokens. */
Tensor
headAttending(int64_t visual, int64_t text,
              const std::vector<int64_t> &favored)
{
    Tensor p(visual + text, visual + text);
    for (int64_t i = visual; i < visual + text; ++i) {
        float *row = p.row(i);
        for (int64_t j = 0; j < visual; ++j) {
            row[j] = 0.001f;
        }
        for (int64_t f : favored) {
            row[f] = 0.5f;
        }
    }
    return p;
}

TEST(FocusUnit, SemanticPruneKeepsAttendedTokens)
{
    FocusConfig cfg;
    FocusUnit unit(cfg, rasterCoords(2, 2, 2)); // 8 visual tokens
    const Tensor head = headAttending(8, 2, {3, 5});
    const auto retained = unit.semanticPrune({head}, 2, 2);
    EXPECT_EQ(retained, (std::vector<int64_t>{3, 5}));
    EXPECT_EQ(unit.activeCoords().size(), 2u);
    EXPECT_EQ(unit.activeOriginal(), (std::vector<int64_t>{3, 5}));
    EXPECT_DOUBLE_EQ(unit.stats().tokenKeepFraction(), 0.25);
}

TEST(FocusUnit, SecondPruneComposesWithFirst)
{
    FocusConfig cfg;
    FocusUnit unit(cfg, rasterCoords(2, 2, 2));
    unit.semanticPrune({headAttending(8, 2, {1, 3, 5, 7})}, 2, 4);
    // Active set is now {1,3,5,7}; favor positions 1 and 2 of it.
    const Tensor head2 = headAttending(4, 2, {1, 2});
    unit.semanticPrune({head2}, 2, 2);
    EXPECT_EQ(unit.activeOriginal(), (std::vector<int64_t>{3, 5}));
}

TEST(FocusUnit, DisabledSecKeepsEverything)
{
    FocusConfig cfg;
    cfg.sec_enable = false;
    FocusUnit unit(cfg, rasterCoords(1, 2, 2));
    const auto retained =
        unit.semanticPrune({headAttending(4, 1, {0})}, 1, 1);
    EXPECT_EQ(retained.size(), 4u);
    EXPECT_DOUBLE_EQ(unit.stats().tokenKeepFraction(), 1.0);
}

TEST(FocusUnit, ConcentrateTracksVectorStats)
{
    FocusConfig cfg;
    FocusUnit unit(cfg, rasterCoords(2, 2, 2));
    Tensor x(8, 32);
    for (int64_t i = 0; i < 8; ++i) {
        for (int64_t j = 0; j < 32; ++j) {
            x(i, j) = 1.0f + 0.01f * static_cast<float>(j);
        }
    }
    const SicResult res = unit.concentrate(x);
    EXPECT_EQ(res.total_vectors, 8);
    EXPECT_EQ(res.unique_vectors, 1);
    EXPECT_DOUBLE_EQ(unit.stats().vectorUniqueFraction(), 1.0 / 8.0);
}

TEST(FocusUnit, ConcentrateAcceptsTrailingTextRows)
{
    FocusConfig cfg;
    FocusUnit unit(cfg, rasterCoords(1, 1, 2)); // 2 visual tokens
    Tensor x(4, 32);                            // + 2 text rows
    for (int64_t i = 0; i < 4; ++i) {
        for (int64_t j = 0; j < 32; ++j) {
            x(i, j) = 2.0f;
        }
    }
    // Only the spatial neighbour pair can merge; text rows stay.
    const SicResult res = unit.concentrate(x);
    EXPECT_EQ(res.unique_vectors, 3);
}

TEST(FocusUnit, DisabledSicIsNoop)
{
    FocusConfig cfg;
    cfg.sic_enable = false;
    FocusUnit unit(cfg, rasterCoords(1, 1, 2));
    Tensor x(2, 32);
    x.fill(1.0f);
    const Tensor before = x;
    const SicResult res = unit.concentrate(x);
    EXPECT_EQ(res.total_vectors, 0);
    EXPECT_LT(maxAbsDiff(x, before), 1e-12); // values untouched
    EXPECT_DOUBLE_EQ(unit.stats().vectorUniqueFraction(), 1.0);
}

TEST(FocusUnit, OffsetEncodingRoundTripsActiveSet)
{
    FocusConfig cfg;
    FocusUnit unit(cfg, rasterCoords(2, 2, 2));
    unit.semanticPrune({headAttending(8, 2, {0, 6})}, 2, 2);
    const OffsetEncoding enc = unit.offsetEncoding();
    EXPECT_EQ(decodeOffsets(enc), (std::vector<int64_t>{0, 6}));
}

TEST(FocusUnit, TopPModeSelectsAdaptively)
{
    FocusConfig cfg;
    cfg.sec.select = SecSelect::TopP;
    cfg.sec.top_p = 0.9;
    FocusUnit unit(cfg, rasterCoords(2, 2, 2));
    // One dominant token: top-p keeps just it, regardless of k.
    Tensor head(10, 10);
    for (int64_t i = 8; i < 10; ++i) {
        for (int64_t j = 0; j < 8; ++j) {
            head(i, j) = 1e-4f;
        }
        head(i, 2) = 0.9f;
    }
    const auto retained = unit.semanticPrune({head}, 2, 999);
    EXPECT_EQ(retained, (std::vector<int64_t>{2}));
}

} // namespace
} // namespace focus
