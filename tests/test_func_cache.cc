/**
 * @file
 * FunctionalCache and batched-forward bit-identity tests.
 *
 * The PR-7 contract is that the functional-evaluation reuse layer
 * (eval/func_cache.h) and the batched QA forward path
 * (VlmModel::forwardBatch) are pure performance features: every
 * printed double is bit-identical to the historical per-sample path
 * at every thread count and batch split.  These tests pin that
 * contract with exact (EXPECT_EQ) floating-point comparisons, and
 * cover the cache bookkeeping itself — key collision safety across
 * seeds / sample counts / method parameterizations that share a
 * display name, eviction of the oldest ready entry, and the
 * FOCUS_FUNC_CACHE=off bypass.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "eval/evaluator.h"
#include "eval/func_cache.h"
#include "runtime/thread_pool.h"
#include "vlm/method.h"
#include "vlm/model.h"
#include "workload/video_gen.h"

namespace focus
{
namespace
{

EvalOptions
quick(int samples = 3)
{
    EvalOptions o;
    o.samples = samples;
    o.seed = 777;
    return o;
}

/**
 * Save/restore the process-wide cache mode and capacity around a
 * test, clearing resident entries on both sides so tests neither see
 * nor leak each other's state.
 */
class CacheGuard
{
  public:
    CacheGuard()
        : mode_(activeFuncCacheMode()),
          capacity_(FunctionalCache::instance().capacity())
    {
        FunctionalCache::instance().clear();
    }
    ~CacheGuard()
    {
        setFuncCacheMode(mode_);
        FunctionalCache::instance().setCapacity(capacity_);
        FunctionalCache::instance().clear();
    }

    CacheGuard(const CacheGuard &) = delete;
    CacheGuard &operator=(const CacheGuard &) = delete;

  private:
    FuncCacheMode mode_;
    std::size_t capacity_;
};

void
expectVecEq(const std::vector<double> &a, const std::vector<double> &b,
            const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << what << "[" << i << "]";
    }
}

/** Exact equality on every MethodEval field (bit-identity contract). */
void
expectEvalBitEqual(const MethodEval &a, const MethodEval &b)
{
    EXPECT_EQ(a.method, b.method);
    EXPECT_EQ(a.accuracy, b.accuracy);
    EXPECT_EQ(a.sparsity, b.sparsity);
    EXPECT_EQ(a.agg.reduced_layers, b.agg.reduced_layers);
    EXPECT_EQ(a.agg.samples, b.agg.samples);
    EXPECT_EQ(a.agg.accuracy, b.agg.accuracy);
    EXPECT_EQ(a.agg.sparsity, b.agg.sparsity);
    expectVecEq(a.agg.keep_in, b.agg.keep_in, "keep_in");
    expectVecEq(a.agg.keep_out, b.agg.keep_out, "keep_out");
    expectVecEq(a.agg.psi_qkv, b.agg.psi_qkv, "psi_qkv");
    expectVecEq(a.agg.psi_oproj, b.agg.psi_oproj, "psi_oproj");
    expectVecEq(a.agg.psi_ffn, b.agg.psi_ffn, "psi_ffn");
    expectVecEq(a.agg.psi_down, b.agg.psi_down, "psi_down");
    expectVecEq(a.agg.tile_fracs, b.agg.tile_fracs, "tile_fracs");
}

/** Exact equality on every ForwardResult field. */
void
expectForwardBitEqual(const ForwardResult &a, const ForwardResult &b)
{
    EXPECT_EQ(a.correct, b.correct);
    EXPECT_EQ(a.predicted_color, b.predicted_color);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.dense_ops, b.dense_ops);
    EXPECT_EQ(a.visual_initial, b.visual_initial);
    EXPECT_EQ(a.visual_original, b.visual_original);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t l = 0; l < a.layers.size(); ++l) {
        const LayerRecord &la = a.layers[l];
        const LayerRecord &lb = b.layers[l];
        EXPECT_EQ(la.visual_in, lb.visual_in) << "layer " << l;
        EXPECT_EQ(la.visual_out, lb.visual_out) << "layer " << l;
        EXPECT_EQ(la.text, lb.text) << "layer " << l;
        EXPECT_EQ(la.psi_qkv, lb.psi_qkv) << "layer " << l;
        EXPECT_EQ(la.psi_oproj, lb.psi_oproj) << "layer " << l;
        EXPECT_EQ(la.psi_ffn, lb.psi_ffn) << "layer " << l;
        EXPECT_EQ(la.psi_down, lb.psi_down) << "layer " << l;
        expectVecEq(la.tile_fracs, lb.tile_fracs, "layer tile_fracs");
    }
    ASSERT_EQ(a.readout_attention.size(), b.readout_attention.size());
    for (std::size_t i = 0; i < a.readout_attention.size(); ++i) {
        EXPECT_EQ(a.readout_attention[i], b.readout_attention[i])
            << "readout_attention[" << i << "]";
    }
    ASSERT_EQ(a.active_original.size(), b.active_original.size());
    for (std::size_t i = 0; i < a.active_original.size(); ++i) {
        EXPECT_EQ(a.active_original[i], b.active_original[i])
            << "active_original[" << i << "]";
    }
}

// The cached/batched path must reproduce the historical per-sample
// path exactly, for every method family, at 1 and 4 threads; the
// second cached call must be a hit returning the same doubles.
TEST(FuncCache, CachedMatchesUncachedAcrossMethodsAndThreads)
{
    CacheGuard guard;
    const Evaluator ev("Llava-Vid", "VideoMME", quick());
    const std::vector<MethodConfig> methods = {
        MethodConfig::dense(),
        MethodConfig::focusFull(),
        MethodConfig::cmcBaseline(),
        MethodConfig::frameFusionBaseline(),
    };
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        for (const MethodConfig &m : methods) {
            setFuncCacheMode(FuncCacheMode::Off);
            const MethodEval direct = ev.runFunctional(m, &pool);

            setFuncCacheMode(FuncCacheMode::On);
            FunctionalCache::instance().clear();
            const MethodEval batched = ev.runFunctional(m, &pool);
            expectEvalBitEqual(direct, batched);

            const FunctionalCache::Stats before =
                FunctionalCache::instance().stats();
            const MethodEval again = ev.runFunctional(m, &pool);
            const FunctionalCache::Stats after =
                FunctionalCache::instance().stats();
            EXPECT_EQ(after.hits, before.hits + 1)
                << m.name() << " at " << threads << " threads";
            EXPECT_EQ(after.misses, before.misses);
            expectEvalBitEqual(batched, again);
        }
    }
}

// forwardBatch must match forward() sample by sample, for every way
// of splitting the batch, including the INT8 variant.
TEST(FuncCache, ForwardBatchMatchesPerSample)
{
    CacheGuard guard;
    const Evaluator ev("MiniCPM", "MVBench", quick(4));
    const VideoGenerator &gen = ev.generator();

    MethodConfig focus_q = MethodConfig::focusFull();
    focus_q.int8 = true;

    std::vector<VideoSample> samples;
    for (uint64_t i = 0; i < 4; ++i) {
        samples.push_back(gen.sample(i));
    }

    for (const MethodConfig &m :
         {MethodConfig::focusFull(), focus_q,
          MethodConfig::adaptivBaseline()}) {
        std::vector<ForwardResult> ref;
        for (const VideoSample &s : samples) {
            ref.push_back(ev.model().forward(s, m, gen.bank()));
        }

        const std::vector<std::vector<int>> splits = {
            {4}, {1, 3}, {2, 2}, {1, 1, 1, 1}};
        for (const std::vector<int> &split : splits) {
            std::vector<ForwardResult> got;
            std::size_t off = 0;
            for (int chunk : split) {
                std::vector<const VideoSample *> ptrs;
                for (int i = 0; i < chunk; ++i) {
                    ptrs.push_back(&samples[off + i]);
                }
                std::vector<ForwardResult> part = ev.model().forwardBatch(
                    ptrs.data(), chunk, m, gen.bank());
                ASSERT_EQ(part.size(), static_cast<std::size_t>(chunk));
                for (ForwardResult &r : part) {
                    got.push_back(std::move(r));
                }
                off += chunk;
            }
            ASSERT_EQ(got.size(), ref.size());
            for (std::size_t i = 0; i < ref.size(); ++i) {
                expectForwardBitEqual(ref[i], got[i]);
            }
        }
    }
}

// The key must separate everything the result depends on — model,
// dataset, seed, sample count, and the full method parameterization
// (two configs sharing a display name must still miss).
TEST(FuncCache, KeyDistinguishesFullParameterization)
{
    const EvalOptions base = quick();
    EvalOptions reseeded = quick();
    reseeded.seed = 778;
    const EvalOptions more_samples = quick(4);

    const MethodConfig f = MethodConfig::focusFull();
    const std::string key =
        functionalCacheKey("Llava-Vid", "VideoMME", base, f);

    EXPECT_NE(key,
              functionalCacheKey("Llava-OV", "VideoMME", base, f));
    EXPECT_NE(key, functionalCacheKey("Llava-Vid", "MLVU", base, f));
    EXPECT_NE(key,
              functionalCacheKey("Llava-Vid", "VideoMME", reseeded, f));
    EXPECT_NE(key, functionalCacheKey("Llava-Vid", "VideoMME",
                                      more_samples, f));

    // Same display name, different parameterization: the signature
    // (and hence the key) must differ even though name() collapses.
    MethodConfig tweaked = MethodConfig::focusFull();
    tweaked.focus.sic.m_tile += 1;
    EXPECT_EQ(f.name(), tweaked.name());
    EXPECT_NE(methodSignature(f), methodSignature(tweaked));
    EXPECT_NE(key, functionalCacheKey("Llava-Vid", "VideoMME", base,
                                      tweaked));
}

// Overflow evicts the oldest ready entry; a re-run of the evicted
// method misses but returns the identical result; Off mode bypasses
// the cache entirely, and a bypassed cache reports all-zero stats
// (stale totals from an earlier On phase would misrepresent a cache
// that is currently serving nothing).
TEST(FuncCache, EvictionAndOffSwitchBypass)
{
    CacheGuard guard;
    setFuncCacheMode(FuncCacheMode::On);
    FunctionalCache &cache = FunctionalCache::instance();
    cache.setCapacity(2);

    const EvalOptions opts = quick(2);
    const Evaluator ev("Llava-OV", "MLVU", opts);
    ThreadPool pool(2);

    const MethodConfig m1 = MethodConfig::dense();
    const MethodConfig m2 = MethodConfig::cmcBaseline();
    const MethodConfig m3 = MethodConfig::focusSecOnly();
    const std::string k1 =
        functionalCacheKey("Llava-OV", "MLVU", opts, m1);

    const MethodEval e1 = ev.runFunctional(m1, &pool);
    ev.runFunctional(m2, &pool);
    EXPECT_TRUE(cache.contains(k1));

    ev.runFunctional(m3, &pool); // overflows: oldest (m1) evicted
    FunctionalCache::Stats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_FALSE(cache.contains(k1));

    const MethodEval e1_again = ev.runFunctional(m1, &pool);
    expectEvalBitEqual(e1, e1_again);
    EXPECT_EQ(cache.stats().misses, s.misses + 1);

    const FunctionalCache::Stats before = cache.stats();
    EXPECT_GT(before.misses, 0u);
    setFuncCacheMode(FuncCacheMode::Off);
    ev.runFunctional(m1, &pool);
    const FunctionalCache::Stats off_stats = cache.stats();
    EXPECT_EQ(off_stats.hits, 0u);
    EXPECT_EQ(off_stats.misses, 0u);
    EXPECT_EQ(off_stats.evictions, 0u);
    EXPECT_EQ(off_stats.entries, 0u);

    // The internal totals survive the bypass and resurface on
    // re-enable, untouched by the Off-mode runFunctional above.
    setFuncCacheMode(FuncCacheMode::On);
    const FunctionalCache::Stats restored = cache.stats();
    EXPECT_EQ(restored.hits, before.hits);
    EXPECT_EQ(restored.misses, before.misses);
    EXPECT_EQ(restored.evictions, before.evictions);
    EXPECT_EQ(restored.entries, before.entries);
}

// The per-Evaluator dense-trace memo must be invisible: repeated
// traceSparsity calls and a fresh Evaluator agree exactly.
TEST(FuncCache, DenseTraceMemoStable)
{
    CacheGuard guard;
    setFuncCacheMode(FuncCacheMode::On);
    const Evaluator ev("Llava-Vid", "VideoMME", quick(2));
    const MethodConfig m = MethodConfig::focusFull();
    const MethodEval e = ev.runFunctional(m);

    const double s1 = ev.traceSparsity(m, e);
    const double s2 = ev.traceSparsity(m, e);
    EXPECT_EQ(s1, s2);
    EXPECT_GT(s1, 0.0);

    const Evaluator fresh("Llava-Vid", "VideoMME", quick(2));
    EXPECT_EQ(s1, fresh.traceSparsity(m, e));
}

} // namespace
} // namespace focus
