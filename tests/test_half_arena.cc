/**
 * @file
 * Tests for the prefix-cache storage tier's numeric and memory
 * primitives: the fast fp16 conversion (bit-exact to the reference on
 * every binary16 pattern and across the classification boundaries),
 * the bf16 conversions, the batch converters, and the SlabArena
 * pooled allocator (alignment, byte budget, free-list reuse, misuse
 * panics).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/half.h"

namespace focus
{
namespace
{

// Death tests first (by convention): forking is cleanest before
// other tests have started pool threads.
TEST(ArenaDeathTest, PanicsOnMisuse)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH({ SlabArena a(0); }, "capacity must be positive");
    EXPECT_DEATH(
        {
            SlabArena a(1024);
            a.alloc(0);
        },
        "non-positive size");
    EXPECT_DEATH(
        {
            SlabArena a(1024);
            a.free(nullptr, 64);
        },
        "null pointer");
    EXPECT_DEATH(
        {
            SlabArena a(1024);
            int foreign = 0;
            a.free(&foreign, 64);
        },
        "not from this arena");
}

// ---------------------------------------------------------------
// binary16
// ---------------------------------------------------------------

TEST(Half, AllPatternsRoundTripExactly)
{
    // Every non-NaN binary16 value widens to float and converts back
    // to the identical bit pattern; NaN stays NaN (payload may gain
    // the quiet bit, sign and NaN-ness are preserved).
    for (uint32_t b = 0; b <= 0xffffu; ++b) {
        const uint16_t h = static_cast<uint16_t>(b);
        const float f = halfBitsToFloat(h);
        const uint16_t back = floatToHalfBits(f);
        const bool is_nan =
            (h & 0x7c00u) == 0x7c00u && (h & 0x03ffu) != 0;
        if (is_nan) {
            EXPECT_TRUE(std::isnan(f));
            EXPECT_EQ(back & 0x7c00u, 0x7c00u);
            EXPECT_NE(back & 0x03ffu, 0u);
            EXPECT_EQ(back & 0x8000u, h & 0x8000u);
        } else {
            EXPECT_EQ(back, h) << "pattern 0x" << std::hex << b;
        }
    }
}

TEST(Half, FastMatchesReferenceOnBoundaryBands)
{
    // The fast path classifies by magnitude against three thresholds
    // (subnormal floor, normal floor, overflow) plus the inf/NaN
    // band; sweep a dense window around each, both signs.
    const uint32_t centers[] = {0x33000000u, 0x38800000u, 0x47800000u,
                                0x7f800000u};
    for (const uint32_t c : centers) {
        for (int64_t d = -65536; d <= 65536; ++d) {
            const uint32_t abs =
                static_cast<uint32_t>(static_cast<int64_t>(c) + d);
            for (const uint32_t sign : {0u, 0x80000000u}) {
                const float f = detail::bitsFloat(sign | abs);
                ASSERT_EQ(floatToHalfBitsFast(f), floatToHalfBits(f))
                    << "bits 0x" << std::hex << (sign | abs);
            }
        }
    }
}

TEST(Half, FastMatchesReferenceOnStridedSweepAndSpecials)
{
    // Coarse sweep of the whole uint32 space (coprime stride hits
    // every exponent) plus the exact special values.
    for (uint64_t b = 0; b <= 0xffffffffull; b += 251) {
        const float f = detail::bitsFloat(static_cast<uint32_t>(b));
        ASSERT_EQ(floatToHalfBitsFast(f), floatToHalfBits(f))
            << "bits 0x" << std::hex << b;
    }
    const uint32_t specials[] = {
        0x00000000u, 0x80000000u, // +-0
        0x00000001u, 0x807fffffu, // float subnormals
        0x7f800000u, 0xff800000u, // +-inf
        0x7f800001u, 0x7fc00000u, 0xffc00001u, // NaNs
        0x3f800000u, 0xbf800000u, // +-1
        0x477fe000u, 0x477ff000u, // just below half overflow
        0x38800000u - 1, 0x33000000u - 1,
    };
    for (const uint32_t b : specials) {
        const float f = detail::bitsFloat(b);
        EXPECT_EQ(floatToHalfBitsFast(f), floatToHalfBits(f))
            << "bits 0x" << std::hex << b;
    }
}

TEST(Half, KnownConversions)
{
    EXPECT_EQ(floatToHalfBits(1.0f), 0x3c00u);
    EXPECT_EQ(floatToHalfBits(-2.0f), 0xc000u);
    EXPECT_EQ(floatToHalfBits(65504.0f), 0x7bffu); // half max
    EXPECT_EQ(floatToHalfBits(65536.0f), 0x7c00u); // overflow -> inf
    EXPECT_EQ(floatToHalfBits(5.9604645e-8f), 0x0001u); // min subnorm
    // RNE: 1 + 1/2048 is exactly between 1.0 and 1 + 1/1024 -> even.
    EXPECT_EQ(floatToHalfBits(1.00048828125f), 0x3c00u);
}

// ---------------------------------------------------------------
// bfloat16
// ---------------------------------------------------------------

TEST(Bf16, RoundTripAndRounding)
{
    // Every bf16 pattern is exactly representable in float, and
    // non-NaN patterns survive the round trip bit for bit.
    for (uint32_t b = 0; b <= 0xffffu; ++b) {
        const uint16_t h = static_cast<uint16_t>(b);
        const float f = bf16BitsToFloat(h);
        const bool is_nan =
            (h & 0x7f80u) == 0x7f80u && (h & 0x007fu) != 0;
        if (is_nan) {
            EXPECT_TRUE(std::isnan(f));
            const uint16_t back = floatToBf16Bits(f);
            EXPECT_EQ(back & 0x7f80u, 0x7f80u);
            EXPECT_NE(back & 0x007fu, 0u);
        } else {
            EXPECT_EQ(floatToBf16Bits(f), h)
                << "pattern 0x" << std::hex << b;
        }
    }
    // RNE on the dropped 16 bits: halfway rounds to even.
    EXPECT_EQ(floatToBf16Bits(detail::bitsFloat(0x3f808000u)),
              0x3f80u); // tie, even stays
    EXPECT_EQ(floatToBf16Bits(detail::bitsFloat(0x3f818000u)),
              0x3f82u); // tie, odd rounds up
    EXPECT_EQ(floatToBf16Bits(detail::bitsFloat(0x3f808001u)),
              0x3f81u); // just past tie
    // NaN with payload only in the low 16 bits keeps NaN-ness.
    const float low_nan = detail::bitsFloat(0x7f800001u);
    EXPECT_TRUE(std::isnan(bf16BitsToFloat(floatToBf16Bits(low_nan))));
}

// ---------------------------------------------------------------
// batch converters
// ---------------------------------------------------------------

TEST(BatchConvert, MatchesScalarKernels)
{
    std::vector<float> src;
    for (int i = -300; i < 300; ++i) {
        src.push_back(std::ldexp(1.0f + static_cast<float>(i & 7) / 8,
                                 i / 12));
        src.push_back(-src.back());
    }
    std::vector<uint16_t> h(src.size()), b(src.size());
    floatToHalfN(src.data(), h.data(), src.size());
    floatToBf16N(src.data(), b.data(), src.size());
    for (size_t i = 0; i < src.size(); ++i) {
        EXPECT_EQ(h[i], floatToHalfBits(src[i]));
        EXPECT_EQ(b[i], floatToBf16Bits(src[i]));
    }
    std::vector<float> hf(src.size()), bf(src.size());
    halfToFloatN(h.data(), hf.data(), h.size());
    bf16ToFloatN(b.data(), bf.data(), b.size());
    for (size_t i = 0; i < src.size(); ++i) {
        EXPECT_EQ(hf[i], halfBitsToFloat(h[i]));
        EXPECT_EQ(bf[i], bf16BitsToFloat(b[i]));
    }
    // n == 0 is a no-op (null pointers allowed).
    floatToHalfN(nullptr, nullptr, 0);
    halfToFloatN(nullptr, nullptr, 0);
}

// ---------------------------------------------------------------
// SlabArena
// ---------------------------------------------------------------

TEST(Arena, AlignmentAndAccounting)
{
    SlabArena a(1 << 20);
    EXPECT_EQ(a.capacity(), 1 << 20);
    EXPECT_EQ(a.allocated(), 0);

    void *p1 = a.alloc(100); // rounds to 128
    void *p2 = a.alloc(64);
    ASSERT_NE(p1, nullptr);
    ASSERT_NE(p2, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p1) % SlabArena::kAlign, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % SlabArena::kAlign, 0u);
    EXPECT_EQ(a.allocated(), 128 + 64);
    EXPECT_EQ(a.peak(), 128 + 64);

    a.free(p1, 100);
    EXPECT_EQ(a.allocated(), 64);
    EXPECT_EQ(a.peak(), 128 + 64); // peak is a high-water mark
}

TEST(Arena, BudgetIsLiveBytes)
{
    SlabArena a(256);
    void *p1 = a.alloc(128);
    void *p2 = a.alloc(128);
    ASSERT_NE(p1, nullptr);
    ASSERT_NE(p2, nullptr);
    // Budget exhausted: alloc fails without throwing.
    EXPECT_EQ(a.alloc(64), nullptr);
    // Freeing restores headroom — the budget bounds *live* bytes.
    a.free(p1, 128);
    void *p3 = a.alloc(128);
    ASSERT_NE(p3, nullptr);
    // A single slab larger than the whole budget can never fit.
    SlabArena small(64);
    EXPECT_EQ(small.alloc(65), nullptr);
}

TEST(Arena, FreeListReusesExactSizes)
{
    SlabArena a(1 << 20);
    void *p1 = a.alloc(4096);
    const int64_t chunks = a.chunkCount();
    a.free(p1, 4096);
    // Same size comes back from the free list: identical pointer, no
    // new chunk.
    void *p2 = a.alloc(4096);
    EXPECT_EQ(p2, p1);
    EXPECT_EQ(a.chunkCount(), chunks);
    // A different size bump-allocates fresh memory instead.
    void *p3 = a.alloc(2048);
    EXPECT_NE(p3, p2);
}

TEST(Arena, LargeRequestGetsOwnChunk)
{
    SlabArena a(4 << 20);
    // Larger than the 256 KiB chunk granularity: sized to fit.
    void *p = a.alloc(1 << 20);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % SlabArena::kAlign, 0u);
    EXPECT_EQ(a.allocated(), 1 << 20);
    a.free(p, 1 << 20);
    EXPECT_EQ(a.allocated(), 0);
}

} // namespace
} // namespace focus
