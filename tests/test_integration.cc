/**
 * @file
 * Integration tests: the full functional -> trace -> simulation
 * pipeline, cross-method orderings, and paper-level properties.
 * Sample counts are kept small; these are structural checks, the
 * bench harness produces the headline numbers.
 */

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "eval/report.h"
#include "sim/gpu_model.h"

namespace focus
{
namespace
{

EvalOptions
quickOpts(int samples = 3)
{
    EvalOptions o;
    o.samples = samples;
    o.seed = 2024;
    return o;
}

TEST(Integration, FocusSparsityBeatsBaselines)
{
    Evaluator ev("Llava-Vid", "VideoMME", quickOpts());
    const MethodEval focus =
        ev.runFunctional(MethodConfig::focusFull());
    const MethodEval ada =
        ev.runFunctional(MethodConfig::adaptivBaseline());
    const MethodEval cmc =
        ev.runFunctional(MethodConfig::cmcBaseline());

    const double s_focus =
        ev.traceSparsity(MethodConfig::focusFull(), focus);
    const double s_ada =
        ev.traceSparsity(MethodConfig::adaptivBaseline(), ada);
    const double s_cmc =
        ev.traceSparsity(MethodConfig::cmcBaseline(), cmc);

    EXPECT_GT(s_focus, s_ada + 0.15);
    EXPECT_GT(s_focus, s_cmc + 0.15);
    // Paper band: ~0.76-0.86.
    EXPECT_GT(s_focus, 0.70);
    EXPECT_LT(s_focus, 0.92);
}

TEST(Integration, FrameFusionHitsSeventyPercent)
{
    Evaluator ev("Llava-Vid", "VideoMME", quickOpts());
    MethodConfig ff = MethodConfig::frameFusionBaseline();
    ff.framefusion.reduction = ev.frameFusionReductionFor(0.70);
    const MethodEval e = ev.runFunctional(ff);
    EXPECT_NEAR(ev.traceSparsity(ff, e), 0.70, 0.06);
}

TEST(Integration, EndToEndSpeedupOrdering)
{
    Evaluator ev("Llava-Vid", "VideoMME", quickOpts());
    const RunMetrics sa = ev.simulate(MethodConfig::dense(),
                                      AccelConfig::systolicArray());
    const RunMetrics ada = ev.simulate(
        MethodConfig::adaptivBaseline(), AccelConfig::adaptiv());
    const RunMetrics cmc =
        ev.simulate(MethodConfig::cmcBaseline(), AccelConfig::cmc());
    const RunMetrics fo =
        ev.simulate(MethodConfig::focusFull(), AccelConfig::focus());

    EXPECT_LT(fo.cycles, ada.cycles);
    EXPECT_LT(fo.cycles, cmc.cycles);
    EXPECT_LT(ada.cycles, sa.cycles);
    EXPECT_LT(cmc.cycles, sa.cycles);

    // Energy ordering matches (Fig. 9(b)).
    EXPECT_LT(fo.energy.total(), ada.energy.total());
    EXPECT_LT(fo.energy.total(), cmc.energy.total());
}

TEST(Integration, AccuracyWithinReasonOfDense)
{
    // Paper: Focus degrades accuracy by ~1.2% on average; at tiny
    // sample counts we only require no catastrophic loss.
    Evaluator ev("Llava-Vid", "VideoMME", quickOpts(8));
    const MethodEval dense = ev.runFunctional(MethodConfig::dense());
    const MethodEval focus =
        ev.runFunctional(MethodConfig::focusFull());
    EXPECT_GE(focus.accuracy, dense.accuracy - 0.25);
}

TEST(Integration, Int8SparsityNearFp16)
{
    // Tbl. IV: sparsity change under INT8 is small.
    Evaluator ev("Llava-Vid", "VideoMME", quickOpts());
    MethodConfig fp = MethodConfig::focusFull();
    MethodConfig q = MethodConfig::focusFull();
    q.int8 = true;
    const MethodEval a = ev.runFunctional(fp);
    const MethodEval b = ev.runFunctional(q);
    EXPECT_NEAR(ev.traceSparsity(fp, a), ev.traceSparsity(q, b), 0.05);
}

TEST(Integration, PromptChangesHeatmap)
{
    // Fig. 2(a): attention shifts with the question.  Two samples
    // with different target types must produce different importance
    // rankings over the same... (scenes differ too, so we check the
    // weaker but meaningful property: the heatmap peak follows the
    // per-sample relevant region).
    Evaluator ev("Llava-Vid", "VideoMME", quickOpts());
    const VideoGenerator &gen = ev.generator();
    int hits = 0;
    for (uint64_t i = 0; i < 4; ++i) {
        const VideoSample s = gen.sample(i);
        const auto imp = ev.model().attentionHeatmap(s);
        // The best grounded token must rank inside the global top 5%
        // (individual background tokens can spike under noise, but
        // the grounded region must be near the top of the ranking —
        // that is what SEC's top-k keeps).
        std::vector<int64_t> grounded = s.relevant_tokens;
        grounded.insert(grounded.end(), s.distractor_tokens.begin(),
                        s.distractor_tokens.end());
        float best_grounded = 0.0f;
        for (int64_t rel : grounded) {
            best_grounded = std::max(
                best_grounded, imp[static_cast<size_t>(rel)]);
        }
        int64_t above = 0;
        for (float v : imp) {
            above += v > best_grounded ? 1 : 0;
        }
        if (above <= static_cast<int64_t>(imp.size()) / 20) {
            ++hits;
        }
    }
    EXPECT_GE(hits, 3);
}

TEST(Integration, ImageDatasetsRun)
{
    // Tbl. V generalization: single-frame workloads execute through
    // the same pipeline (temporal block extent degenerates).
    Evaluator ev("Qwen2.5-VL", "VQAv2", quickOpts());
    MethodConfig focus = MethodConfig::focusFull();
    focus.focus.sic.block_f = 1;
    const MethodEval e = ev.runFunctional(focus);
    EXPECT_GT(ev.traceSparsity(focus, e), 0.3);
    EXPECT_GT(e.accuracy, 0.2);
}

TEST(Integration, GpuRelativeOrdering)
{
    Evaluator ev("Llava-Vid", "VideoMME", quickOpts());
    MethodEval dense_eval;
    const RunMetrics sa = ev.simulate(MethodConfig::dense(),
                                      AccelConfig::systolicArray(),
                                      &dense_eval);
    const RunMetrics fo =
        ev.simulate(MethodConfig::focusFull(), AccelConfig::focus());
    const WorkloadTrace dense_tr =
        ev.buildFullTrace(MethodConfig::dense(), dense_eval);
    const double t_gpu = gpuSeconds(dense_tr, GpuConfig{}, false);
    // Focus beats the GPU by more than it beats the dense SA.
    EXPECT_GT(t_gpu / fo.seconds(), sa.seconds() / fo.seconds());
}

TEST(Report, TableRenders)
{
    TextTable t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    const std::string s = t.render();
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_EQ(fmtX(2.345), "2.35x");
    EXPECT_EQ(fmtPct(0.5, 1), "50.0");
}

} // namespace
} // namespace focus
