/**
 * @file
 * Blocked GEMM kernel layer (tensor/kernels.h): bit-exactness of the
 * blocked portable kernels against the naive references across
 * odd/prime/degenerate shapes, fp16 packing parity, the row gather
 * map, accumulate mode, backend dispatch, thread-count bit-identity
 * (raw kernels and through Evaluator::runFunctional), and — when
 * built with FOCUS_WITH_BLAS — tolerance agreement of the BLAS path.
 *
 * SFU tier (SfuKernels.*): exact-backend bit-identity to the
 * historical scalar loops, vector-backend tolerance vs libm
 * (polynomial expf, fused softmax, SiLU/GELU, RMSNorm, similarity
 * gather), NaN propagation, degenerate shapes, thread-count
 * invariance, and the FOCUS_MATH_BACKEND dispatch.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "common/half.h"
#include "common/rng.h"
#include "eval/evaluator.h"
#include "runtime/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

using namespace focus;

namespace
{

std::vector<float>
randomBuf(Rng &rng, int64_t n)
{
    std::vector<float> v(static_cast<size_t>(n));
    for (auto &x : v) {
        x = static_cast<float>(rng.gaussian());
    }
    return v;
}

/** memcmp two float buffers — strict bit-identity. */
bool
bitsEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
        std::memcmp(a.data(), b.data(),
                    a.size() * sizeof(float)) == 0;
}

// Shapes chosen to hit every dispatch edge: unit dims, primes off the
// 4x8 tile grid, exact tile multiples, one-off sizes around the
// kMc=64 M-block boundary, and k=300 > kKc=256 to exercise the
// multi-K-block C reload path.
struct Shape
{
    int64_t m, n, k;
};

const Shape kShapes[] = {
    {1, 1, 1},    {1, 16, 3},    {5, 1, 7},       {7, 9, 5},
    {13, 17, 11}, {31, 29, 37},  {64, 64, 64},    {65, 63, 66},
    {100, 37, 53}, {127, 129, 64}, {40, 24, 300},
};

} // namespace

TEST(KernelsGemm, BlockedBitIdenticalToNaive)
{
    Rng rng(11);
    for (const Shape &s : kShapes) {
        const std::vector<float> a = randomBuf(rng, s.m * s.k);
        const std::vector<float> b = randomBuf(rng, s.k * s.n);
        std::vector<float> c_blocked(static_cast<size_t>(s.m * s.n),
                                     -1.0f); // garbage: must be ignored
        std::vector<float> c_naive(static_cast<size_t>(s.m * s.n),
                                   0.0f);
        kernels::gemmF32(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                         c_blocked.data(), s.n);
        kernels::gemmNaiveF32(s.m, s.n, s.k, a.data(), s.k, b.data(),
                              s.n, c_naive.data(), s.n);
        EXPECT_TRUE(bitsEqual(c_blocked, c_naive))
            << "shape " << s.m << "x" << s.n << "x" << s.k;
    }
}

TEST(KernelsGemm, KZeroYieldsZeroOutput)
{
    std::vector<float> a, b;
    std::vector<float> c(15, 123.0f);
    kernels::gemmF32(3, 5, 0, a.data(), 0, b.data(), 5, c.data(), 5);
    for (float v : c) {
        EXPECT_EQ(v, 0.0f);
    }
}

TEST(KernelsGemm, Fp16PackingMatchesNaiveFp16)
{
    Rng rng(12);
    for (const Shape &s : kShapes) {
        const std::vector<float> a = randomBuf(rng, s.m * s.k);
        const std::vector<float> b = randomBuf(rng, s.k * s.n);
        std::vector<float> c_blocked(static_cast<size_t>(s.m * s.n));
        std::vector<float> c_naive(static_cast<size_t>(s.m * s.n),
                                   0.0f);
        kernels::gemmF32(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n,
                         c_blocked.data(), s.n, /*fp16_inputs=*/true);
        kernels::gemmNaiveF32(s.m, s.n, s.k, a.data(), s.k, b.data(),
                              s.n, c_naive.data(), s.n,
                              /*fp16_inputs=*/true);
        EXPECT_TRUE(bitsEqual(c_blocked, c_naive))
            << "fp16 shape " << s.m << "x" << s.n << "x" << s.k;
    }
}

TEST(KernelsGemm, Fp16RoundsEachOperandOnce)
{
    // The packed-rounding path must equal rounding both operands
    // up front and running the plain-fp32 kernel.
    Rng rng(13);
    const int64_t m = 9, n = 21, k = 33;
    std::vector<float> a = randomBuf(rng, m * k);
    std::vector<float> b = randomBuf(rng, k * n);
    std::vector<float> c_fp16(static_cast<size_t>(m * n));
    kernels::gemmF32(m, n, k, a.data(), k, b.data(), n, c_fp16.data(),
                     n, /*fp16_inputs=*/true);
    for (auto &v : a) {
        v = fp16Round(v);
    }
    for (auto &v : b) {
        v = fp16Round(v);
    }
    std::vector<float> c_ref(static_cast<size_t>(m * n));
    kernels::gemmF32(m, n, k, a.data(), k, b.data(), n, c_ref.data(),
                     n);
    EXPECT_TRUE(bitsEqual(c_fp16, c_ref));
}

TEST(KernelsGemm, RowGatherMapMatchesMaterializedGather)
{
    Rng rng(14);
    const int64_t src_rows = 12, m = 7, n = 19, k = 23;
    const std::vector<float> a = randomBuf(rng, src_rows * k);
    const std::vector<float> b = randomBuf(rng, k * n);
    const int64_t map[] = {3, 0, 11, 5, 5, 9, 1};

    std::vector<float> c_map(static_cast<size_t>(m * n));
    kernels::gemmF32(m, n, k, a.data(), k, b.data(), n, c_map.data(),
                     n, false, map);

    std::vector<float> gathered(static_cast<size_t>(m * k));
    for (int64_t i = 0; i < m; ++i) {
        std::memcpy(&gathered[static_cast<size_t>(i * k)],
                    &a[static_cast<size_t>(map[i] * k)],
                    static_cast<size_t>(k) * sizeof(float));
    }
    std::vector<float> c_ref(static_cast<size_t>(m * n));
    kernels::gemmF32(m, n, k, gathered.data(), k, b.data(), n,
                     c_ref.data(), n);
    EXPECT_TRUE(bitsEqual(c_map, c_ref));
}

TEST(KernelsGemm, AccumulateAddsOntoExistingC)
{
    Rng rng(15);
    const int64_t m = 33, n = 41, k = 29;
    const std::vector<float> a = randomBuf(rng, m * k);
    const std::vector<float> b = randomBuf(rng, k * n);
    const std::vector<float> seed_c = randomBuf(rng, m * n);

    std::vector<float> c_acc = seed_c;
    kernels::gemmF32(m, n, k, a.data(), k, b.data(), n, c_acc.data(),
                     n, false, nullptr, /*accumulate=*/true);

    // Naive reference accumulates into whatever C holds.
    std::vector<float> c_ref = seed_c;
    kernels::gemmNaiveF32(m, n, k, a.data(), k, b.data(), n,
                          c_ref.data(), n);
    EXPECT_TRUE(bitsEqual(c_acc, c_ref));
}

TEST(KernelsGemm, ThreadCountBitIdentity)
{
    // Large enough to cross the parallel-dispatch threshold with
    // several M blocks.
    Rng rng(16);
    const int64_t m = 300, n = 96, k = 128;
    const std::vector<float> a = randomBuf(rng, m * k);
    const std::vector<float> b = randomBuf(rng, k * n);
    std::vector<float> c1(static_cast<size_t>(m * n));
    std::vector<float> c4(static_cast<size_t>(m * n));

    ThreadPool::setGlobalThreads(1);
    kernels::gemmF32(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
    ThreadPool::setGlobalThreads(4);
    kernels::gemmF32(m, n, k, a.data(), k, b.data(), n, c4.data(), n);
    ThreadPool::setGlobalThreads(0); // back to default sizing

    EXPECT_TRUE(bitsEqual(c1, c4));

    std::vector<float> c_naive(static_cast<size_t>(m * n), 0.0f);
    kernels::gemmNaiveF32(m, n, k, a.data(), k, b.data(), n,
                          c_naive.data(), n);
    EXPECT_TRUE(bitsEqual(c4, c_naive));
}

TEST(KernelsTransB, BlockedBitIdenticalToNaive)
{
    Rng rng(17);
    for (const Shape &s : kShapes) {
        const std::vector<float> a = randomBuf(rng, s.m * s.k);
        const std::vector<float> b = randomBuf(rng, s.n * s.k);
        std::vector<float> c_blocked(static_cast<size_t>(s.m * s.n));
        std::vector<float> c_naive(static_cast<size_t>(s.m * s.n));
        kernels::gemmTransBF32(s.m, s.n, s.k, a.data(), s.k, b.data(),
                               s.k, c_blocked.data(), s.n);
        kernels::gemmTransBNaiveF32(s.m, s.n, s.k, a.data(), s.k,
                                    b.data(), s.k, c_naive.data(),
                                    s.n);
        EXPECT_TRUE(bitsEqual(c_blocked, c_naive))
            << "transB shape " << s.m << "x" << s.n << "x" << s.k;
    }
}

TEST(KernelsDotRows, MatchesTransBReferenceRow)
{
    // dotRowsScaled(q, ...) over j rows == row 0 of the naive
    // A*B^T reference with A = q, then scaled.
    Rng rng(18);
    const int64_t k = 37;
    for (int64_t rows : {1, 2, 3, 4, 5, 8, 13}) {
        const std::vector<float> q = randomBuf(rng, k);
        const std::vector<float> b = randomBuf(rng, rows * k);
        std::vector<float> out(static_cast<size_t>(rows));
        kernels::dotRowsScaled(q.data(), b.data(), k, rows, k, 0.25f,
                               out.data());
        std::vector<float> ref(static_cast<size_t>(rows));
        kernels::gemmTransBNaiveF32(1, rows, k, q.data(), k, b.data(),
                                    k, ref.data(), rows);
        for (auto &v : ref) {
            v *= 0.25f;
        }
        EXPECT_TRUE(bitsEqual(out, ref)) << "rows=" << rows;
    }
}

TEST(KernelsDotRows, TracksOpsDotWithinTolerance)
{
    // ops.h dot is compiled without the kernel clones, so its
    // contraction can differ from dot4's; anchor the kernel's values
    // to it within float tolerance.
    Rng rng(23);
    for (int64_t k : {1, 3, 7, 32, 64, 129}) {
        const std::vector<float> q = randomBuf(rng, k);
        const std::vector<float> b = randomBuf(rng, 6 * k);
        std::vector<float> out(6);
        kernels::dotRowsScaled(q.data(), b.data(), k, 6, k, 1.0f,
                               out.data());
        for (int64_t j = 0; j < 6; ++j) {
            const float want = dot(q.data(), b.data() + j * k, k);
            EXPECT_NEAR(out[static_cast<size_t>(j)], want,
                        1e-4 *
                            (1.0 +
                             std::abs(static_cast<double>(want))))
                << "k=" << k << " j=" << j;
        }
    }
}

TEST(KernelsInt8, MatchesReferenceTripleLoop)
{
    Rng rng(19);
    const int64_t m = 13, n = 21, k = 31;
    std::vector<int8_t> a(static_cast<size_t>(m * k));
    std::vector<int8_t> bt(static_cast<size_t>(n * k));
    for (auto &v : a) {
        v = static_cast<int8_t>(
            static_cast<int64_t>(rng.uniformInt(255)) - 127);
    }
    for (auto &v : bt) {
        v = static_cast<int8_t>(
            static_cast<int64_t>(rng.uniformInt(255)) - 127);
    }
    const std::vector<float> as = randomBuf(rng, m);
    const std::vector<float> bs = randomBuf(rng, n);

    std::vector<float> c(static_cast<size_t>(m * n));
    kernels::gemmInt8S32(m, n, k, a.data(), as.data(), bt.data(),
                         bs.data(), c.data(), n);

    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            int32_t acc = 0;
            for (int64_t p = 0; p < k; ++p) {
                acc += static_cast<int32_t>(a[static_cast<size_t>(
                           i * k + p)]) *
                    static_cast<int32_t>(
                           bt[static_cast<size_t>(j * k + p)]);
            }
            const float want = static_cast<float>(acc) *
                as[static_cast<size_t>(i)] * bs[static_cast<size_t>(j)];
            EXPECT_EQ(c[static_cast<size_t>(i * n + j)], want);
        }
    }
}

TEST(KernelsDispatch, TensorGemmHonorsBackendSwitch)
{
    Rng rng(20);
    Tensor a(9, 14), b(14, 11);
    for (int64_t i = 0; i < a.numel(); ++i) {
        a.data()[i] = static_cast<float>(rng.gaussian());
    }
    for (int64_t i = 0; i < b.numel(); ++i) {
        b.data()[i] = static_cast<float>(rng.gaussian());
    }
    Tensor c_portable, c_naive;
    const kernels::GemmBackend prev = kernels::activeBackend();
    kernels::setBackend(kernels::GemmBackend::Portable);
    gemm(a, b, c_portable);
    kernels::setBackend(kernels::GemmBackend::Naive);
    gemm(a, b, c_naive);
    kernels::setBackend(prev);
    EXPECT_EQ(maxAbsDiff(c_portable, c_naive), 0.0);
}

TEST(KernelsDispatch, BackendNamesRoundTrip)
{
    kernels::GemmBackend b;
    EXPECT_TRUE(kernels::parseBackend("portable", b));
    EXPECT_EQ(b, kernels::GemmBackend::Portable);
    EXPECT_TRUE(kernels::parseBackend("naive", b));
    EXPECT_EQ(b, kernels::GemmBackend::Naive);
    EXPECT_TRUE(kernels::parseBackend("blas", b));
    EXPECT_EQ(b, kernels::GemmBackend::Blas);
    EXPECT_FALSE(kernels::parseBackend("mkl", b));
    EXPECT_FALSE(kernels::parseBackend("", b));
    EXPECT_STREQ(kernels::backendName(kernels::GemmBackend::Portable),
                 "portable");
    EXPECT_STREQ(kernels::backendName(kernels::GemmBackend::Naive),
                 "naive");
    EXPECT_STREQ(kernels::backendName(kernels::GemmBackend::Blas),
                 "blas");
}

TEST(KernelsBlas, AgreesWithPortableWithinTolerance)
{
    if (!kernels::blasAvailable()) {
        GTEST_SKIP() << "built without FOCUS_WITH_BLAS";
    }
    Rng rng(21);
    const int64_t m = 45, n = 38, k = 51;
    const std::vector<float> a = randomBuf(rng, m * k);
    const std::vector<float> b = randomBuf(rng, k * n);
    std::vector<float> c_blas(static_cast<size_t>(m * n));
    std::vector<float> c_ref(static_cast<size_t>(m * n));
    kernels::gemmBlasF32(m, n, k, a.data(), k, b.data(), n,
                         c_blas.data(), n);
    kernels::gemmF32(m, n, k, a.data(), k, b.data(), n, c_ref.data(),
                     n);
    // BLAS reorders the k reduction, so agreement is approximate:
    // the documented tolerance for these magnitudes (see
    // docs/KERNELS.md).
    for (size_t i = 0; i < c_ref.size(); ++i) {
        EXPECT_NEAR(c_blas[i], c_ref[i],
                    1e-4 *
                        (1.0 + std::abs(static_cast<double>(c_ref[i]))));
    }

    // TransB variant too.
    const std::vector<float> bt = randomBuf(rng, n * k);
    std::vector<float> t_blas(static_cast<size_t>(m * n));
    std::vector<float> t_ref(static_cast<size_t>(m * n));
    kernels::gemmTransBBlasF32(m, n, k, a.data(), k, bt.data(), k,
                               t_blas.data(), n);
    kernels::gemmTransBF32(m, n, k, a.data(), k, bt.data(), k,
                           t_ref.data(), n);
    for (size_t i = 0; i < t_ref.size(); ++i) {
        EXPECT_NEAR(t_blas[i], t_ref[i],
                    1e-4 *
                        (1.0 + std::abs(static_cast<double>(t_ref[i]))));
    }
}

// The end-to-end contract the kernel layer must not break: functional
// evaluation aggregates stay bit-identical at every thread count (the
// blocked GEMM's M-block fan-out composes with the per-sample
// fan-out).
TEST(KernelsDeterminism, RunFunctionalBitIdenticalAcrossThreadCounts)
{
    EvalOptions o;
    o.samples = 3;
    Evaluator ev("Llava-Vid", "MVBench", o);

    ThreadPool serial_pool(1);
    ThreadPool parallel_pool(4);
    const MethodEval serial =
        ev.runFunctional(MethodConfig::focusFull(), &serial_pool);
    const MethodEval parallel =
        ev.runFunctional(MethodConfig::focusFull(), &parallel_pool);

    EXPECT_EQ(serial.accuracy, parallel.accuracy);
    EXPECT_EQ(serial.sparsity, parallel.sparsity);
    ASSERT_EQ(serial.agg.keep_in.size(), parallel.agg.keep_in.size());
    for (size_t l = 0; l < serial.agg.keep_in.size(); ++l) {
        EXPECT_EQ(serial.agg.keep_in[l], parallel.agg.keep_in[l]);
        EXPECT_EQ(serial.agg.psi_qkv[l], parallel.agg.psi_qkv[l]);
        EXPECT_EQ(serial.agg.psi_ffn[l], parallel.agg.psi_ffn[l]);
    }
}

// -----------------------------------------------------------------
// SFU tier
// -----------------------------------------------------------------

namespace
{

/** RAII math-backend override (restores the ambient backend). */
class MathBackendGuard
{
  public:
    explicit MathBackendGuard(kernels::MathBackend b)
        : prev_(kernels::activeMathBackend())
    {
        kernels::setMathBackend(b);
    }
    ~MathBackendGuard() { kernels::setMathBackend(prev_); }

  private:
    kernels::MathBackend prev_;
};

} // namespace

TEST(SfuKernels, VectorExpTracksLibmAtUlpScale)
{
    MathBackendGuard guard(kernels::MathBackend::Vector);
    // Dense sweep of the non-flushed range plus random gaussians:
    // the polynomial is specified to ~2 ulp relative error on
    // [-86, 88]; below -86 it flushes to zero (SfuKernels.
    // VectorExpSpecialValues covers that).
    std::vector<float> xs;
    for (float x = -85.9f; x <= 86.5f; x += 0.173f) {
        xs.push_back(x);
    }
    Rng rng(31);
    for (int i = 0; i < 500; ++i) {
        xs.push_back(static_cast<float>(rng.gaussian(0.0, 4.0)));
    }
    std::vector<float> got = xs;
    kernels::expRowsF32(1, static_cast<int64_t>(got.size()), got.data(),
                        static_cast<int64_t>(got.size()));
    for (size_t i = 0; i < xs.size(); ++i) {
        const double want = std::exp(static_cast<double>(xs[i]));
        EXPECT_NEAR(got[i], want, 5e-7 * want) << "x=" << xs[i];
    }
}

TEST(SfuKernels, VectorExpSpecialValues)
{
    MathBackendGuard guard(kernels::MathBackend::Vector);
    constexpr float inf = std::numeric_limits<float>::infinity();
    float v[6] = {std::numeric_limits<float>::quiet_NaN(), -inf, inf,
                  0.0f, -87.0f, -1e30f};
    kernels::expRowsF32(1, 6, v, 6);
    EXPECT_TRUE(std::isnan(v[0]));
    EXPECT_EQ(v[1], 0.0f);  // flush-to-zero below the clamp range
    EXPECT_GT(v[2], 1e38f); // saturates large but finite
    EXPECT_EQ(v[3], 1.0f);
    EXPECT_EQ(v[4], 0.0f); // below -86: flushed (never denormal)
    EXPECT_EQ(v[5], 0.0f); // softmax -1e30 masks give exactly 0
}

TEST(SfuKernels, SoftmaxExactBitIdenticalToHistoricalLoop)
{
    MathBackendGuard guard(kernels::MathBackend::Exact);
    Rng rng(32);
    const int64_t rows = 9, cols = 37;
    std::vector<float> x = randomBuf(rng, rows * cols);
    std::vector<float> ref = x;
    kernels::softmaxRowsF32(rows, cols, x.data(), cols);
    // The pre-SFU-tier tensor/ops.cc loop, verbatim.
    for (int64_t i = 0; i < rows; ++i) {
        float *row = ref.data() + i * cols;
        float mx = row[0];
        for (int64_t j = 1; j < cols; ++j) {
            mx = std::max(mx, row[j]);
        }
        float sum = 0.0f;
        for (int64_t j = 0; j < cols; ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
        }
        const float inv = 1.0f / sum;
        for (int64_t j = 0; j < cols; ++j) {
            row[j] *= inv;
        }
    }
    EXPECT_TRUE(bitsEqual(x, ref));
}

TEST(SfuKernels, SoftmaxVectorTracksExact)
{
    Rng rng(33);
    for (int64_t cols : {1, 3, 7, 8, 64, 129}) {
        const int64_t rows = 5;
        std::vector<float> base(static_cast<size_t>(rows * cols));
        for (auto &v : base) {
            v = static_cast<float>(rng.gaussian(0.0, 3.0));
        }
        std::vector<float> exact = base, vec = base;
        {
            MathBackendGuard g(kernels::MathBackend::Exact);
            kernels::softmaxRowsF32(rows, cols, exact.data(), cols);
        }
        {
            MathBackendGuard g(kernels::MathBackend::Vector);
            kernels::softmaxRowsF32(rows, cols, vec.data(), cols);
        }
        for (int64_t i = 0; i < rows; ++i) {
            float sum = 0.0f;
            for (int64_t j = 0; j < cols; ++j) {
                const size_t at = static_cast<size_t>(i * cols + j);
                EXPECT_NEAR(vec[at], exact[at], 2e-6)
                    << "cols=" << cols << " (" << i << "," << j << ")";
                sum += vec[at];
            }
            EXPECT_NEAR(sum, 1.0f, 1e-5);
        }
    }
}

TEST(SfuKernels, SoftmaxVectorPropagatesNaNForAllMaskedRows)
{
    MathBackendGuard guard(kernels::MathBackend::Vector);
    constexpr float ninf = -std::numeric_limits<float>::infinity();
    std::vector<float> x = {ninf, ninf, ninf, 0.5f, 0.25f, 0.125f};
    kernels::softmaxRowsF32(2, 3, x.data(), 3);
    for (int j = 0; j < 3; ++j) {
        EXPECT_TRUE(std::isnan(x[static_cast<size_t>(j)]));
        EXPECT_GT(x[static_cast<size_t>(3 + j)], 0.0f);
    }
}

TEST(SfuKernels, SoftmaxDegenerateShapesAreNoops)
{
    for (kernels::MathBackend b :
         {kernels::MathBackend::Exact, kernels::MathBackend::Vector}) {
        MathBackendGuard guard(b);
        float sentinel[3] = {1.0f, 2.0f, 3.0f};
        kernels::softmaxRowsF32(0, 3, sentinel, 3);
        kernels::softmaxRowsF32(3, 0, sentinel, 0);
        EXPECT_EQ(sentinel[0], 1.0f);
        EXPECT_EQ(sentinel[1], 2.0f);
        EXPECT_EQ(sentinel[2], 3.0f);
        EXPECT_EQ(kernels::expBiasedSumF32(sentinel, 0, 0.0f), 0.0f);
        kernels::expRowsF32(0, 3, sentinel, 3);
        EXPECT_EQ(sentinel[0], 1.0f);
    }
}

TEST(SfuKernels, ExpBiasedSumExactMatchesHistoricalReadoutLoop)
{
    MathBackendGuard guard(kernels::MathBackend::Exact);
    Rng rng(34);
    std::vector<float> x = randomBuf(rng, 61);
    std::vector<float> ref = x;
    float mx = -1e30f;
    for (float v : x) {
        mx = std::max(mx, v);
    }
    const float got_sum =
        kernels::expBiasedSumF32(x.data(), 61, mx);
    float want_sum = 0.0f;
    for (auto &v : ref) {
        v = std::exp(v - mx);
        want_sum += v;
    }
    EXPECT_EQ(got_sum, want_sum);
    EXPECT_TRUE(bitsEqual(x, ref));
}

TEST(SfuKernels, ActivationsVectorTracksExact)
{
    Rng rng(35);
    std::vector<float> base = randomBuf(rng, 513);
    base.push_back(30.0f); // deep saturation both sides
    base.push_back(-30.0f);
    const int64_t n = static_cast<int64_t>(base.size());
    std::vector<float> se = base, sv = base, ge = base, gv = base;
    {
        MathBackendGuard g(kernels::MathBackend::Exact);
        kernels::siluF32(se.data(), n);
        kernels::geluF32(ge.data(), n);
    }
    {
        MathBackendGuard g(kernels::MathBackend::Vector);
        kernels::siluF32(sv.data(), n);
        kernels::geluF32(gv.data(), n);
    }
    for (size_t i = 0; i < base.size(); ++i) {
        const double tol =
            1e-6 * (1.0 + std::abs(static_cast<double>(base[i])));
        EXPECT_NEAR(sv[i], se[i], tol) << "silu x=" << base[i];
        EXPECT_NEAR(gv[i], ge[i], tol) << "gelu x=" << base[i];
    }
}

TEST(SfuKernels, RmsNormVectorTracksExact)
{
    Rng rng(36);
    const int64_t rows = 4, cols = 129;
    std::vector<float> base = randomBuf(rng, rows * cols);
    std::vector<float> gain = randomBuf(rng, cols);
    std::vector<float> exact = base, vec = base;
    {
        MathBackendGuard g(kernels::MathBackend::Exact);
        kernels::rmsNormRowsF32(rows, cols, exact.data(), cols,
                                gain.data(), 1e-6f);
    }
    {
        MathBackendGuard g(kernels::MathBackend::Vector);
        kernels::rmsNormRowsF32(rows, cols, vec.data(), cols,
                                gain.data(), 1e-6f);
    }
    for (size_t i = 0; i < exact.size(); ++i) {
        EXPECT_NEAR(vec[i], exact[i],
                    1e-5 *
                        (1.0 + std::abs(static_cast<double>(exact[i]))));
    }
}

TEST(SfuKernels, SimGatherExactBitIdenticalToPrenormCosine)
{
    MathBackendGuard guard(kernels::MathBackend::Exact);
    Rng rng(37);
    const int64_t rows = 12, n = 32;
    const std::vector<float> pack = randomBuf(rng, rows * n);
    std::vector<float> norms(static_cast<size_t>(rows));
    kernels::l2NormRowsF32(pack.data(), n, rows, n, norms.data());
    const int64_t cand[] = {3, 0, 11, 7, 7, 2};
    std::vector<float> sims(6);
    kernels::simGatherF32(pack.data(), norms[0], pack.data(), n,
                          norms.data(), cand, 6, n, sims.data());
    for (int64_t c = 0; c < 6; ++c) {
        const float want = cosineSimilarityPrenorm(
            pack.data(), norms[0], pack.data() + cand[c] * n,
            norms[static_cast<size_t>(cand[c])], n);
        EXPECT_EQ(sims[static_cast<size_t>(c)], want);
        EXPECT_EQ(norms[static_cast<size_t>(c)],
                  l2Norm(pack.data() + c * n, n));
    }
    EXPECT_NEAR(sims[1], 1.0f, 1e-6); // cand[1] == 0: key vs itself
}

TEST(SfuKernels, SimGatherVectorTracksExact)
{
    Rng rng(38);
    for (int64_t n : {8, 32, 33}) {
        const int64_t rows = 9;
        const std::vector<float> pack = randomBuf(rng, rows * n);
        std::vector<float> norms(static_cast<size_t>(rows));
        std::vector<float> norms_vec(static_cast<size_t>(rows));
        const int64_t cand[] = {1, 2, 3, 4, 5, 6, 7, 8};
        std::vector<float> exact(8), vec(8);
        {
            MathBackendGuard g(kernels::MathBackend::Exact);
            kernels::l2NormRowsF32(pack.data(), n, rows, n,
                                   norms.data());
            kernels::simGatherF32(pack.data(), norms[0], pack.data(),
                                  n, norms.data(), cand, 8, n,
                                  exact.data());
        }
        {
            MathBackendGuard g(kernels::MathBackend::Vector);
            kernels::l2NormRowsF32(pack.data(), n, rows, n,
                                   norms_vec.data());
            kernels::simGatherF32(pack.data(), norms_vec[0],
                                  pack.data(), n, norms_vec.data(),
                                  cand, 8, n, vec.data());
        }
        for (size_t c = 0; c < 8; ++c) {
            EXPECT_NEAR(vec[c], exact[c], 1e-5)
                << "n=" << n << " cand=" << c;
        }
        // Zero-norm candidates never match on either backend.
        std::vector<float> zero_pack(static_cast<size_t>(2 * n), 0.0f);
        std::copy(pack.begin(), pack.begin() + n, zero_pack.begin());
        float znorms[2];
        kernels::l2NormRowsF32(zero_pack.data(), n, 2, n, znorms);
        const int64_t zc[] = {1};
        float zsim = -1.0f;
        kernels::simGatherF32(zero_pack.data(), znorms[0],
                              zero_pack.data(), n, znorms, zc, 1, n,
                              &zsim);
        EXPECT_EQ(zsim, 0.0f);
    }
}

TEST(SfuKernels, ThreadCountBitIdentity)
{
    // Large enough to cross the row fan-out threshold on both
    // backends; per-row work is independent, so results must be
    // bit-identical at every pool width.
    Rng rng(39);
    const int64_t rows = 300, cols = 300;
    const std::vector<float> base = randomBuf(rng, rows * cols);
    for (kernels::MathBackend b :
         {kernels::MathBackend::Exact, kernels::MathBackend::Vector}) {
        MathBackendGuard guard(b);
        std::vector<float> c1 = base, c4 = base;
        ThreadPool::setGlobalThreads(1);
        kernels::softmaxRowsF32(rows, cols, c1.data(), cols);
        ThreadPool::setGlobalThreads(4);
        kernels::softmaxRowsF32(rows, cols, c4.data(), cols);
        ThreadPool::setGlobalThreads(0);
        EXPECT_TRUE(bitsEqual(c1, c4))
            << kernels::mathBackendName(b);

        std::vector<float> r1 = base, r4 = base;
        ThreadPool::setGlobalThreads(1);
        kernels::rmsNormRowsF32(rows, cols, r1.data(), cols, nullptr,
                                1e-6f);
        ThreadPool::setGlobalThreads(4);
        kernels::rmsNormRowsF32(rows, cols, r4.data(), cols, nullptr,
                                1e-6f);
        ThreadPool::setGlobalThreads(0);
        EXPECT_TRUE(bitsEqual(r1, r4))
            << kernels::mathBackendName(b);
    }
}

TEST(SfuKernels, MathBackendNamesRoundTrip)
{
    kernels::MathBackend b;
    EXPECT_TRUE(kernels::parseMathBackend("exact", b));
    EXPECT_EQ(b, kernels::MathBackend::Exact);
    EXPECT_TRUE(kernels::parseMathBackend("vector", b));
    EXPECT_EQ(b, kernels::MathBackend::Vector);
    EXPECT_FALSE(kernels::parseMathBackend("fast", b));
    EXPECT_FALSE(kernels::parseMathBackend("", b));
    EXPECT_STREQ(kernels::mathBackendName(kernels::MathBackend::Exact),
                 "exact");
    EXPECT_STREQ(
        kernels::mathBackendName(kernels::MathBackend::Vector),
        "vector");
}

TEST(SfuKernels, MathBackendFollowsEnvironment)
{
    // The ambient backend must match FOCUS_MATH_BACKEND (Exact when
    // unset) — this runs in both CI matrix legs, so it pins the env
    // initialization path for each value.
    kernels::MathBackend want = kernels::MathBackend::Exact;
    if (const char *env = std::getenv("FOCUS_MATH_BACKEND")) {
        if (*env != '\0') {
            ASSERT_TRUE(kernels::parseMathBackend(env, want))
                << "unparseable FOCUS_MATH_BACKEND in test env";
        }
    }
    EXPECT_EQ(kernels::activeMathBackend(), want);
}

TEST(SfuKernels, OpsSoftmaxDispatchesOnMathBackend)
{
    // Through the tensor/ops.h entry point: the two backends must
    // agree to tolerance but are not expected to be bit-identical.
    Rng rng(40);
    Tensor base(6, 50);
    for (int64_t i = 0; i < base.numel(); ++i) {
        base.data()[i] = static_cast<float>(rng.gaussian(0.0, 2.0));
    }
    Tensor te = base, tv = base;
    {
        MathBackendGuard g(kernels::MathBackend::Exact);
        softmaxRows(te);
    }
    {
        MathBackendGuard g(kernels::MathBackend::Vector);
        softmaxRows(tv);
    }
    EXPECT_LT(maxAbsDiff(tv, te), 2e-6);
}

TEST(KernelsQuant, GemmInt8TensorPathUnchanged)
{
    // tensor/quant.cc gemmInt8 now routes through the kernel layer;
    // its int8 result must still track the fp32 product closely
    // (same bound as tests/test_tensor.cc used pre-refactor).
    Rng rng(22);
    Tensor a(12, 40), b(40, 9);
    for (int64_t i = 0; i < a.numel(); ++i) {
        a.data()[i] = static_cast<float>(rng.gaussian());
    }
    for (int64_t i = 0; i < b.numel(); ++i) {
        b.data()[i] = static_cast<float>(rng.gaussian());
    }
    Tensor cf, cq;
    gemm(a, b, cf);
    gemmInt8(a, b, cq);
    EXPECT_LT(relativeError(cq, cf), 0.05);
}
