/**
 * @file
 * Tests for the convolution-style layouter: the conflict-free bank
 * mapping of Fig. 7 and the block-fetch buffer.
 */

#include <gtest/gtest.h>

#include <set>

#include "focus/layouter.h"

namespace focus
{
namespace
{

TEST(Layouter, PaperWorkedExamples)
{
    // Fig. 7, W=5.  First example: f=1, r=1, c=2.  The figure prints
    // "bank = 7", but its own formula 1%2*4 + 1%2*2 + 2%2 evaluates
    // to 6 (a typo in the figure; c=3 would give 7).  We assert the
    // formula.
    TokenCoord t1{1, 1, 2};
    EXPECT_EQ(layouterBank(t1), 6);
    EXPECT_EQ(layouterOffset(t1, 5), 1);
    // f=1, r=4, c=3 -> bank 5, offset 7.
    TokenCoord t2{1, 4, 3};
    EXPECT_EQ(layouterBank(t2), 5);
    EXPECT_EQ(layouterOffset(t2, 5), 7);
}

TEST(Layouter, BankFormula)
{
    EXPECT_EQ(layouterBank(TokenCoord{0, 0, 0}), 0);
    EXPECT_EQ(layouterBank(TokenCoord{0, 0, 1}), 1);
    EXPECT_EQ(layouterBank(TokenCoord{0, 1, 0}), 2);
    EXPECT_EQ(layouterBank(TokenCoord{1, 0, 0}), 4);
    EXPECT_EQ(layouterBank(TokenCoord{1, 1, 1}), 7);
}

TEST(Layouter, Every2x2x2BlockIsConflictFree)
{
    // Exhaustive: for every window anchor in a 6x9x9 volume, the 8
    // members map to 8 distinct banks.
    for (int f = 1; f < 6; ++f) {
        for (int r = 1; r < 9; ++r) {
            for (int c = 1; c < 9; ++c) {
                std::set<int> banks;
                for (int df = 0; df < 2; ++df) {
                    for (int dr = 0; dr < 2; ++dr) {
                        for (int dc = 0; dc < 2; ++dc) {
                            banks.insert(layouterBank(TokenCoord{
                                f - df, r - dr, c - dc}));
                        }
                    }
                }
                EXPECT_EQ(banks.size(), 8u)
                    << "anchor (" << f << "," << r << "," << c << ")";
            }
        }
    }
}

TEST(Layouter, SameBankSlotsAreDistinctWithinFramePair)
{
    // Within a frame pair (f, f+1) and a W x H frame, no two tokens
    // mapping to the same bank share an offset.
    const int w = 9, h = 7;
    for (int f = 0; f < 2; ++f) {
        std::set<std::pair<int, int64_t>> slots;
        for (int r = 0; r < h; ++r) {
            for (int c = 0; c < w; ++c) {
                const TokenCoord t{f, r, c};
                const auto key = std::make_pair(
                    layouterBank(t), layouterOffset(t, w));
                EXPECT_TRUE(slots.insert(key).second)
                    << "collision at (" << f << "," << r << "," << c
                    << ")";
            }
        }
    }
}

TEST(LayouterBuffer, StoreAndFetchBlock)
{
    const int w = 5;
    LayouterBuffer buf(w, 64);
    // Store two full 5x5 frames with ids = flat index.
    int64_t id = 0;
    for (int f = 0; f < 2; ++f) {
        for (int r = 0; r < 5; ++r) {
            for (int c = 0; c < 5; ++c) {
                buf.store(TokenCoord{f, r, c}, id++);
            }
        }
    }
    int64_t ids[8];
    const int distinct = buf.fetchBlock(TokenCoord{1, 1, 1}, ids);
    EXPECT_EQ(distinct, 8);
    // Member order is (df, dr, dc) lexicographic; key is (1,1,1).
    EXPECT_EQ(ids[0], 25 + 5 + 1); // (1,1,1)
    EXPECT_EQ(ids[7], 0);          // (0,0,0)
}

TEST(LayouterBuffer, MissingMembersReportedAsNegative)
{
    LayouterBuffer buf(5, 64);
    buf.store(TokenCoord{0, 0, 0}, 42);
    int64_t ids[8];
    buf.fetchBlock(TokenCoord{0, 0, 0}, ids);
    EXPECT_EQ(ids[0], 42);
    for (int i = 1; i < 8; ++i) {
        EXPECT_EQ(ids[i], -1); // out of volume or never stored
    }
}

TEST(LayouterBuffer, WindowBufferSizeMatchesPaper)
{
    // Tbl. I: 16 KB layouter buffer for a 256-vector window.  At 32
    // fp16 elements (64 B) per vector: 256 * 64 = 16 KB.
    const int64_t vectors = 256;
    const int64_t bytes_per_vector = 32 * 2;
    EXPECT_EQ(vectors * bytes_per_vector, 16 * 1024);
}

} // namespace
} // namespace focus
