/**
 * @file
 * Observability subsystem tests: metrics-registry determinism across
 * thread counts, histogram bucket-boundary invariants, trace JSON
 * well-formedness, off-mode bypass, the FOCUS_OBS / FOCUS_LOG env
 * dispatch contracts, and the ring-buffer memory bound.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "eval/evaluator.h"
#include "eval/func_cache.h"
#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "runtime/thread_pool.h"
#include "vlm/method.h"

namespace focus
{
namespace
{

using obs::MetricsRegistry;
using obs::ObsMode;

/** Save/restore the obs mode and zero the registry around a test. */
class ObsGuard
{
  public:
    explicit ObsGuard(ObsMode mode) : saved_(obs::activeObsMode())
    {
        obs::setObsMode(mode);
        MetricsRegistry::instance().resetAll();
        obs::clearTrace();
    }
    ~ObsGuard()
    {
        MetricsRegistry::instance().resetAll();
        obs::clearTrace();
        obs::setObsMode(saved_);
    }

    ObsGuard(const ObsGuard &) = delete;
    ObsGuard &operator=(const ObsGuard &) = delete;

  private:
    ObsMode saved_;
};

// ---- minimal JSON validator (structure only, no value model) ----

bool parseValue(const char *&p, const char *end);

void
skipWs(const char *&p, const char *end)
{
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                       *p == '\r')) {
        ++p;
    }
}

bool
parseString(const char *&p, const char *end)
{
    if (p >= end || *p != '"') {
        return false;
    }
    ++p;
    while (p < end && *p != '"') {
        if (*p == '\\') {
            ++p;
            if (p >= end) {
                return false;
            }
        }
        ++p;
    }
    if (p >= end) {
        return false;
    }
    ++p; // closing quote
    return true;
}

bool
parseNumber(const char *&p, const char *end)
{
    const char *start = p;
    if (p < end && *p == '-') {
        ++p;
    }
    while (p < end &&
           ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' ||
            *p == 'E' || *p == '+' || *p == '-')) {
        ++p;
    }
    return p > start;
}

bool
parseObject(const char *&p, const char *end)
{
    ++p; // '{'
    skipWs(p, end);
    if (p < end && *p == '}') {
        ++p;
        return true;
    }
    for (;;) {
        skipWs(p, end);
        if (!parseString(p, end)) {
            return false;
        }
        skipWs(p, end);
        if (p >= end || *p != ':') {
            return false;
        }
        ++p;
        if (!parseValue(p, end)) {
            return false;
        }
        skipWs(p, end);
        if (p < end && *p == ',') {
            ++p;
            continue;
        }
        break;
    }
    if (p >= end || *p != '}') {
        return false;
    }
    ++p;
    return true;
}

bool
parseArray(const char *&p, const char *end)
{
    ++p; // '['
    skipWs(p, end);
    if (p < end && *p == ']') {
        ++p;
        return true;
    }
    for (;;) {
        if (!parseValue(p, end)) {
            return false;
        }
        skipWs(p, end);
        if (p < end && *p == ',') {
            ++p;
            continue;
        }
        break;
    }
    if (p >= end || *p != ']') {
        return false;
    }
    ++p;
    return true;
}

bool
parseValue(const char *&p, const char *end)
{
    skipWs(p, end);
    if (p >= end) {
        return false;
    }
    if (*p == '{') {
        return parseObject(p, end);
    }
    if (*p == '[') {
        return parseArray(p, end);
    }
    if (*p == '"') {
        return parseString(p, end);
    }
    return parseNumber(p, end);
}

bool
isValidJson(const std::string &doc)
{
    const char *p = doc.data();
    const char *end = doc.data() + doc.size();
    if (!parseValue(p, end)) {
        return false;
    }
    skipWs(p, end);
    return p == end;
}

EvalOptions
quick(int samples = 2)
{
    EvalOptions o;
    o.samples = samples;
    o.seed = 99;
    return o;
}

// ---- registry basics ----

TEST(Obs, CounterGaugeBasics)
{
    ObsGuard guard(ObsMode::Counters);
    MetricsRegistry &reg = MetricsRegistry::instance();
    obs::Counter &c = reg.counter("test.basic.counter");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(&reg.counter("test.basic.counter"), &c);

    obs::Gauge &g = reg.gauge("test.basic.gauge");
    g.set(-7);
    g.add(10);
    EXPECT_EQ(g.value(), 3);

    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
}

TEST(Obs, CounterKindMismatchDies)
{
    ObsGuard guard(ObsMode::Counters);
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.counter("test.kind.work");
    reg.schedCounter("test.kind.sched");
    EXPECT_DEATH(reg.schedCounter("test.kind.work"),
                 "registered as a work counter");
    EXPECT_DEATH(reg.counter("test.kind.sched"),
                 "registered as a sched counter");
}

TEST(Obs, HistogramBucketBoundaries)
{
    ObsGuard guard(ObsMode::Counters);
    obs::Histogram &h = MetricsRegistry::instance().histogram(
        "test.hist.boundaries", {1.0, 2.0, 4.0});
    ASSERT_EQ(h.buckets(), 4u); // three bounds + overflow

    // Bounds are inclusive upper bounds: a value exactly on a bound
    // lands in that bound's bucket, epsilon above lands in the next.
    for (const double v : {0.5, 1.0}) {
        h.observe(v);
    }
    for (const double v : {1.0000001, 2.0}) {
        h.observe(v);
    }
    for (const double v : {3.0, 4.0}) {
        h.observe(v);
    }
    h.observe(4.0000001); // overflow

    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.count(), 7u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(Obs, HistogramContractViolationsDie)
{
    ObsGuard guard(ObsMode::Counters);
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.histogram("test.hist.fixed", {1.0, 2.0});
    EXPECT_DEATH(reg.histogram("test.hist.fixed", {1.0, 3.0}),
                 "different");
    EXPECT_DEATH(reg.histogram("test.hist.bad", {2.0, 1.0}),
                 "ascending");
    EXPECT_DEATH(
        reg.histogram("test.hist.empty", std::vector<double>{}),
        "at least one");
}

// Atomic counter totals commute: hammering one counter from many
// threads gives the same total as the serial loop.
TEST(Obs, CounterTotalsThreadInvariant)
{
    ObsGuard guard(ObsMode::Counters);
    obs::Counter &c =
        MetricsRegistry::instance().counter("test.invariant.adds");
    obs::Histogram &h = MetricsRegistry::instance().histogram(
        "test.invariant.hist", {10.0, 100.0, 1000.0});

    std::vector<uint64_t> totals;
    for (const int threads : {1, 4}) {
        MetricsRegistry::instance().resetAll();
        ThreadPool pool(threads);
        pool.parallelFor(2000, [&](int64_t i) {
            c.add(static_cast<uint64_t>(i % 7));
            h.observe(static_cast<double>(i));
        });
        totals.push_back(c.value());
        EXPECT_EQ(h.count(), 2000u);
        EXPECT_EQ(h.bucketCount(0), 11u);   // 0..10
        EXPECT_EQ(h.bucketCount(1), 90u);   // 11..100
        EXPECT_EQ(h.bucketCount(2), 900u);  // 101..1000
        EXPECT_EQ(h.bucketCount(3), 999u);  // 1001..1999
    }
    EXPECT_EQ(totals[0], totals[1]);
}

// The real instrumented pipeline: a functional evaluation's *work*
// counters (kernel MACs, softmax rows, gather dots) are bit-identical
// at 1 and 4 threads.  Sched counters are exempt by design.
TEST(Obs, WorkCountersDeterministicAcrossThreadCounts)
{
    ObsGuard guard(ObsMode::Counters);
    const FuncCacheMode cache_mode = activeFuncCacheMode();
    setFuncCacheMode(FuncCacheMode::Off); // force recompute per run

    const Evaluator ev("Llava-OV", "MLVU", quick());
    const MethodConfig method = MethodConfig::focusFull();

    std::vector<std::vector<std::pair<std::string, uint64_t>>> runs;
    for (const int threads : {1, 4}) {
        MetricsRegistry::instance().resetAll();
        ThreadPool pool(threads);
        ev.runFunctional(method, &pool);
        runs.push_back(MetricsRegistry::instance().counterValues(
            obs::CounterKind::Work));
    }
    setFuncCacheMode(cache_mode);

    ASSERT_FALSE(runs[0].empty());
    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
        EXPECT_EQ(runs[0][i].first, runs[1][i].first);
        EXPECT_EQ(runs[0][i].second, runs[1][i].second)
            << "work counter '" << runs[0][i].first
            << "' drifted across thread counts";
    }
}

TEST(Obs, FuncCacheCountersStreamIntoRegistry)
{
    ObsGuard guard(ObsMode::Counters);
    const FuncCacheMode cache_mode = activeFuncCacheMode();
    setFuncCacheMode(FuncCacheMode::On);
    FunctionalCache::instance().clear();

    const Evaluator ev("Llava-OV", "MLVU", quick());
    ThreadPool pool(2);
    ev.runFunctional(MethodConfig::dense(), &pool);
    ev.runFunctional(MethodConfig::dense(), &pool);

    MetricsRegistry &reg = MetricsRegistry::instance();
    EXPECT_GE(reg.counter("func_cache.misses").value(), 1u);
    EXPECT_GE(reg.counter("func_cache.hits").value(), 1u);

    FunctionalCache::instance().clear();
    setFuncCacheMode(cache_mode);
}

// ---- off-mode bypass ----

TEST(Obs, OffModeRecordsNothing)
{
    ObsGuard guard(ObsMode::Off);
    EXPECT_FALSE(obs::countersEnabled());
    EXPECT_FALSE(obs::traceEnabled());

    const size_t before = obs::traceEventCount();
    {
        obs::TraceSpan span("test.off.span");
    }
    EXPECT_EQ(obs::traceEventCount(), before);

    // Instrumented layers skip the registry entirely: a functional
    // run must not bump any counter.
    const Evaluator ev("Llava-OV", "MLVU", quick());
    ThreadPool pool(2);
    ev.runFunctional(MethodConfig::dense(), &pool);
    for (const auto &kv : MetricsRegistry::instance().counterValues(
             obs::CounterKind::Work)) {
        EXPECT_EQ(kv.second, 0u) << kv.first;
    }
}

TEST(Obs, CountersModeDisablesSpans)
{
    ObsGuard guard(ObsMode::Counters);
    EXPECT_TRUE(obs::countersEnabled());
    EXPECT_FALSE(obs::traceEnabled());
    const size_t before = obs::traceEventCount();
    {
        obs::TraceSpan span("test.counters.span");
    }
    EXPECT_EQ(obs::traceEventCount(), before);
}

// ---- trace spans ----

TEST(Obs, TraceSpansRecordAndExport)
{
    ObsGuard guard(ObsMode::Trace);
    {
        obs::TraceSpan outer("test.trace.outer");
        obs::TraceSpan inner("test.trace.inner");
    }
    ThreadPool pool(3);
    pool.parallelFor(8, [](int64_t) {
        obs::TraceSpan span("test.trace.task");
    });
    EXPECT_GE(obs::traceEventCount(), size_t{10});

    const std::string doc = obs::traceJson();
    EXPECT_TRUE(isValidJson(doc)) << doc.substr(0, 400);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(doc.find("\"test.trace.outer\""), std::string::npos);
    EXPECT_NE(doc.find("\"test.trace.task\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\""), std::string::npos);
    EXPECT_NE(doc.find("\"tid\""), std::string::npos);
}

TEST(Obs, TraceRingStaysBounded)
{
    ObsGuard guard(ObsMode::Trace);
    const uint64_t dropped_before = obs::traceDroppedCount();
    const size_t n = obs::kTraceRingCapacity + 500;
    for (size_t i = 0; i < n; ++i) {
        obs::TraceSpan span("test.ring.spin");
    }
    // This thread's ring holds at most its capacity; the overflow is
    // accounted as drops, not memory.
    EXPECT_LE(obs::traceEventCount(),
              obs::kTraceRingCapacity * 4); // a few rings may exist
    EXPECT_GE(obs::traceDroppedCount() - dropped_before,
              uint64_t{500});
    EXPECT_GE(
        MetricsRegistry::instance()
            .schedCounter("obs.trace.dropped")
            .value(),
        uint64_t{500});
}

// ---- JSON export + flush ----

TEST(Obs, MetricsJsonWellFormed)
{
    ObsGuard guard(ObsMode::Counters);
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.counter("test.json.work").add(3);
    reg.schedCounter("test.json.sched").add(1);
    reg.gauge("test.json.gauge").set(-5);
    reg.histogram("test.json.hist", {1.0, 10.0}).observe(2.0);

    const std::string doc = reg.toJson();
    EXPECT_TRUE(isValidJson(doc)) << doc;
    EXPECT_NE(doc.find("\"schema\": \"focus-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"mode\": \"counters\""), std::string::npos);
    EXPECT_NE(doc.find("\"test.json.work\": 3"), std::string::npos);
    EXPECT_NE(doc.find("\"test.json.sched\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"test.json.gauge\": -5"), std::string::npos);
    EXPECT_NE(doc.find("\"counts\": [0, 1, 0]"), std::string::npos);
    // Work and sched counters live in separate sections: the sched
    // name must appear after the "sched_counters" key.
    EXPECT_GT(doc.find("\"test.json.sched\""),
              doc.find("\"sched_counters\""));
}

TEST(Obs, FlushWritesBothFiles)
{
    ObsGuard guard(ObsMode::Trace);
    MetricsRegistry::instance().counter("test.flush.counter").add(1);
    {
        obs::TraceSpan span("test.flush.span");
    }

    char tmpl[] = "/tmp/focus_obs_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    const std::string dir(tmpl);
    obs::flushObsJson(dir);

    for (const char *name : {"/metrics.json", "/trace.json"}) {
        const std::string path = dir + name;
        FILE *f = std::fopen(path.c_str(), "r");
        ASSERT_NE(f, nullptr) << path;
        std::string body;
        char buf[4096];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
            body.append(buf, got);
        }
        std::fclose(f);
        EXPECT_TRUE(isValidJson(body)) << path;
        std::remove(path.c_str());
    }
    rmdir(dir.c_str());
}

// ---- env dispatch contracts ----

TEST(Obs, ModeNamesRoundTrip)
{
    for (const ObsMode m :
         {ObsMode::Off, ObsMode::Counters, ObsMode::Trace}) {
        ObsMode parsed = ObsMode::Off;
        ASSERT_TRUE(obs::parseObsMode(obs::obsModeName(m), parsed));
        EXPECT_EQ(parsed, m);
    }
    ObsMode parsed = ObsMode::Off;
    EXPECT_FALSE(obs::parseObsMode("bogus", parsed));
    EXPECT_FALSE(obs::parseObsMode(nullptr, parsed));
}

TEST(Obs, EnvDispatchContract)
{
    ASSERT_EQ(unsetenv("FOCUS_OBS"), 0);
    EXPECT_EQ(obs::obsModeFromEnv(), ObsMode::Off);
    ASSERT_EQ(setenv("FOCUS_OBS", "", 1), 0);
    EXPECT_EQ(obs::obsModeFromEnv(), ObsMode::Off);
    ASSERT_EQ(setenv("FOCUS_OBS", "counters", 1), 0);
    EXPECT_EQ(obs::obsModeFromEnv(), ObsMode::Counters);
    ASSERT_EQ(setenv("FOCUS_OBS", "trace", 1), 0);
    EXPECT_EQ(obs::obsModeFromEnv(), ObsMode::Trace);
    ASSERT_EQ(setenv("FOCUS_OBS", "verbose", 1), 0);
    EXPECT_DEATH(obs::obsModeFromEnv(), "FOCUS_OBS.*off|counters");
    ASSERT_EQ(unsetenv("FOCUS_OBS"), 0);
}

TEST(Obs, LogLevelDispatchContract)
{
    const LogLevel saved = activeLogLevel();

    EXPECT_STREQ(logLevelName(LogLevel::Quiet), "quiet");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");

    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(activeLogLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(activeLogLevel(), LogLevel::Warn);

    ASSERT_EQ(unsetenv("FOCUS_LOG"), 0);
    EXPECT_EQ(logLevelFromEnv(), LogLevel::Info);
    ASSERT_EQ(setenv("FOCUS_LOG", "quiet", 1), 0);
    EXPECT_EQ(logLevelFromEnv(), LogLevel::Quiet);
    ASSERT_EQ(setenv("FOCUS_LOG", "warn", 1), 0);
    EXPECT_EQ(logLevelFromEnv(), LogLevel::Warn);
    ASSERT_EQ(setenv("FOCUS_LOG", "debug", 1), 0);
    EXPECT_DEATH(logLevelFromEnv(), "FOCUS_LOG.*quiet|warn|info");
    ASSERT_EQ(unsetenv("FOCUS_LOG"), 0);

    setLogLevel(saved);
}

} // namespace
} // namespace focus
