/**
 * @file
 * Tests for the cross-request prefix cache tier: the cache proper
 * (doorkeeper admission, LRU-within-a-byte-budget, stats), the
 * prefix-cached trace transform, Zipf-skewed prefix identities, and
 * the serving/cluster integration contracts — FOCUS_PREFIX_CACHE=off
 * and a zero budget reproduce the pre-cache replay bit for bit at
 * every thread count, hits reduce latency, hash-affinity routing
 * beats round-robin on hit rate, and a cluster of one replica with a
 * cache matches the single box with the same cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"
#include "serve/cluster.h"
#include "serve/prefix_cache.h"
#include "serve/serving_sim.h"
#include "sim/trace.h"
#include "workload/profiles.h"

namespace focus
{
namespace
{

/** A slab of rows x cols 16-bit values with a fixed seed. */
SlabSpec
slab(int64_t rows, int64_t cols)
{
    SlabSpec s;
    s.rows = rows;
    s.cols = cols;
    s.full_bytes = rows * cols * 64;
    s.seed = 7;
    return s;
}

PrefixCacheConfig
ampleConfig()
{
    PrefixCacheConfig cfg;
    cfg.budget_bytes = 1 << 20;
    return cfg;
}

QueueConfig
cachedOpenConfig(int requests, int cardinality = 4)
{
    QueueConfig q;
    q.process = ArrivalProcess::OpenPoisson;
    q.arrival_rate_rps = 0.05;
    q.num_requests = requests;
    q.seed = 42;

    RequestClass focus_cls;
    focus_cls.model = "Llava-Vid";
    focus_cls.dataset = "VideoMME";
    focus_cls.method = MethodConfig::focusFull();
    focus_cls.weight = 3.0;
    focus_cls.slo_latency_s = 120.0;
    focus_cls.prefix_cardinality = cardinality;
    focus_cls.prefix_zipf = 0.9;
    q.mix.push_back(focus_cls);

    RequestClass dense_cls;
    dense_cls.model = "Llava-Vid";
    dense_cls.dataset = "VideoMME";
    dense_cls.method = MethodConfig::dense();
    dense_cls.weight = 1.0;
    dense_cls.slo_latency_s = 480.0;
    dense_cls.prefix_cardinality = cardinality;
    dense_cls.prefix_zipf = 0.9;
    q.mix.push_back(dense_cls);
    return q;
}

EvalOptions
smallEval()
{
    EvalOptions opts;
    opts.samples = 2;
    opts.seed = 42;
    return opts;
}

SchedulerConfig
timeoutSched()
{
    SchedulerConfig sched;
    sched.policy = BatchPolicy::Timeout;
    sched.max_batch = 3;
    sched.timeout_s = 30.0;
    return sched;
}

/**
 * Save/restore the process-wide prefix-cache mode around a test and
 * force it On, so the suite also passes under the CI leg that runs
 * with FOCUS_PREFIX_CACHE=off in the environment.
 */
class ModeGuard
{
  public:
    ModeGuard() : mode_(activePrefixCacheMode())
    {
        setPrefixCacheMode(PrefixCacheMode::On);
    }
    ~ModeGuard() { setPrefixCacheMode(mode_); }

    ModeGuard(const ModeGuard &) = delete;
    ModeGuard &operator=(const ModeGuard &) = delete;

  private:
    const PrefixCacheMode mode_;
};

/** Every numeric field of two reports must match bit for bit. */
void
expectReportsIdentical(const ServingReport &a, const ServingReport &b)
{
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].arrival_s, b.outcomes[i].arrival_s);
        EXPECT_EQ(a.outcomes[i].start_s, b.outcomes[i].start_s);
        EXPECT_EQ(a.outcomes[i].finish_s, b.outcomes[i].finish_s);
        EXPECT_EQ(a.outcomes[i].batch_id, b.outcomes[i].batch_id);
        EXPECT_EQ(a.outcomes[i].prefix_hit, b.outcomes[i].prefix_hit);
    }
    ASSERT_EQ(a.batches.size(), b.batches.size());
    for (size_t i = 0; i < a.batches.size(); ++i) {
        EXPECT_EQ(a.batches[i].metrics.cycles,
                  b.batches[i].metrics.cycles);
        EXPECT_EQ(a.batches[i].service_s, b.batches[i].service_s);
        EXPECT_EQ(a.batches[i].start_s, b.batches[i].start_s);
    }
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.throughput_rps, b.throughput_rps);
    EXPECT_EQ(a.latency.mean, b.latency.mean);
    EXPECT_EQ(a.latency.p50, b.latency.p50);
    EXPECT_EQ(a.latency.p95, b.latency.p95);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
    EXPECT_EQ(a.slo_attainment, b.slo_attainment);
    EXPECT_EQ(a.prefix_cache.lookups, b.prefix_cache.lookups);
    EXPECT_EQ(a.prefix_cache.hits, b.prefix_cache.hits);
    EXPECT_EQ(a.prefix_cache.misses, b.prefix_cache.misses);
    EXPECT_EQ(a.prefix_cache.admissions, b.prefix_cache.admissions);
    EXPECT_EQ(a.prefix_cache.evictions, b.prefix_cache.evictions);
    EXPECT_EQ(a.prefix_cache.bytes_resident,
              b.prefix_cache.bytes_resident);
    EXPECT_EQ(a.prefix_cache.err_sum, b.prefix_cache.err_sum);
    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (size_t c = 0; c < a.classes.size(); ++c) {
        EXPECT_EQ(a.classes[c].mean_latency_s,
                  b.classes[c].mean_latency_s);
        EXPECT_EQ(a.classes[c].prefix_hits, b.classes[c].prefix_hits);
    }
}

// Death tests first (by convention): forking is cleanest before
// other tests have started pool threads.
TEST(PrefixCacheDeathTest, RejectsDegenerateInputs)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            const ModelProfile mp = modelProfile("Llava-Vid");
            const DatasetProfile dp = datasetProfile("VideoMME");
            WorkloadTrace tr = buildDenseTrace(mp, dp);
            tr.batch_size = 2;
            applyPrefixCache(tr);
        },
        "single-query");
    EXPECT_DEATH(
        {
            // Runs in the death-test child: force the mode On so the
            // check fires even under a FOCUS_PREFIX_CACHE=off leg.
            setPrefixCacheMode(PrefixCacheMode::On);
            PrefixCache c(ampleConfig());
            c.admit("k", slab(0, 8));
        },
        "empty slab");
}

// ---------------------------------------------------------------
// cache proper
// ---------------------------------------------------------------

TEST(PrefixCache, DoorkeeperAdmitsOnSecondMiss)
{
    ModeGuard guard;
    PrefixCache c(ampleConfig());
    ASSERT_TRUE(c.enabled());

    EXPECT_FALSE(c.lookup("a"));
    c.admit("a", slab(64, 64)); // first miss: sketch only
    EXPECT_FALSE(c.lookup("a"));
    c.admit("a", slab(64, 64)); // second miss: stored
    EXPECT_TRUE(c.lookup("a"));

    const PrefixCacheStats s = c.stats();
    EXPECT_EQ(s.lookups, 3);
    EXPECT_EQ(s.hits, 1);
    EXPECT_EQ(s.misses, 2);
    EXPECT_EQ(s.admissions, 1);
    EXPECT_EQ(s.rejected, 1); // the doorkeeper absorption
    EXPECT_EQ(s.evictions, 0);
    EXPECT_EQ(s.bytes_resident, 64 * 64 * 2);
    EXPECT_EQ(s.full_bytes_resident, slab(64, 64).full_bytes);
    EXPECT_EQ(s.err_slabs, 1);
    // fp16 round-trip of gaussian values: small but nonzero error.
    EXPECT_GT(s.meanRoundTripError(), 0.0);
    EXPECT_LT(s.meanRoundTripError(), 1e-2);
}

TEST(PrefixCache, LruEvictionWithinByteBudget)
{
    ModeGuard guard;
    // Budget fits exactly two 8 KiB slabs.
    PrefixCacheConfig cfg;
    cfg.budget_bytes = 2 * 64 * 64 * 2;
    PrefixCache c(cfg);

    const auto store = [&](const std::string &key) {
        EXPECT_FALSE(c.lookup(key));
        c.admit(key, slab(64, 64));
        EXPECT_FALSE(c.lookup(key));
        c.admit(key, slab(64, 64));
    };
    store("a");
    store("b");
    store("c"); // evicts "a" (least recently used)

    EXPECT_TRUE(c.lookup("b"));
    EXPECT_TRUE(c.lookup("c"));
    EXPECT_FALSE(c.lookup("a"));
    const PrefixCacheStats s = c.stats();
    EXPECT_EQ(s.evictions, 1);
    EXPECT_EQ(s.bytes_resident, cfg.budget_bytes);
    EXPECT_EQ(s.bytes_peak, cfg.budget_bytes);

    // "a" re-admits immediately (its sketch bits are still set) and
    // evicts the now-LRU "b" — the lookup above touched c after b.
    c.admit("a", slab(64, 64));
    EXPECT_TRUE(c.lookup("a"));
    EXPECT_TRUE(c.lookup("c"));
    EXPECT_FALSE(c.lookup("b"));
}

TEST(PrefixCache, OversizedSlabIsRejectedNotStored)
{
    ModeGuard guard;
    PrefixCacheConfig cfg;
    cfg.budget_bytes = 1024;
    PrefixCache c(cfg);
    c.admit("big", slab(64, 64)); // sketch
    c.admit("big", slab(64, 64)); // 8 KiB > 1 KiB budget
    EXPECT_FALSE(c.lookup("big"));
    EXPECT_EQ(c.stats().admissions, 0);
    EXPECT_EQ(c.stats().rejected, 2);
    EXPECT_EQ(c.stats().bytes_resident, 0);
}

TEST(PrefixCache, DisabledCacheCountsNothing)
{
    ModeGuard guard;
    // Zero budget disables regardless of mode.
    PrefixCacheConfig zero;
    PrefixCache z(zero);
    EXPECT_FALSE(z.enabled());
    EXPECT_FALSE(z.lookup("a"));
    z.admit("a", slab(64, 64));
    EXPECT_EQ(z.stats().lookups, 0);
    EXPECT_EQ(z.stats().misses, 0);

    // FOCUS_PREFIX_CACHE=off disables even with a budget.
    setPrefixCacheMode(PrefixCacheMode::Off);
    PrefixCache off(ampleConfig());
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.lookup("a"));
    EXPECT_EQ(off.stats().lookups, 0);

    EXPECT_STREQ(prefixCacheModeName(PrefixCacheMode::On), "on");
    EXPECT_STREQ(prefixCacheModeName(PrefixCacheMode::Off), "off");
}

TEST(PrefixCache, Bf16SlabsCarryLargerRoundTripError)
{
    ModeGuard guard;
    PrefixCacheConfig f16 = ampleConfig();
    PrefixCacheConfig bf16 = ampleConfig();
    bf16.format = SlabFormat::Bf16;
    PrefixCache a(f16), b(bf16);
    a.admit("k", slab(64, 64));
    a.admit("k", slab(64, 64));
    b.admit("k", slab(64, 64));
    b.admit("k", slab(64, 64));
    // Same payload (same key seed); bf16 keeps 8 mantissa bits to
    // fp16's 11, so its round-trip error is strictly larger.
    EXPECT_GT(b.stats().meanRoundTripError(),
              a.stats().meanRoundTripError());
}

// ---------------------------------------------------------------
// trace transform
// ---------------------------------------------------------------

TEST(PrefixCachedTrace, MovesVisualRowsToCachedContext)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const WorkloadTrace base = buildDenseTrace(mp, dp);
    const WorkloadTrace hit = applyPrefixCache(base);

    ASSERT_EQ(hit.layers.size(), base.layers.size());
    EXPECT_EQ(hit.visual0, 0);
    EXPECT_TRUE(hit.tile_fracs.empty());
    for (size_t l = 0; l < hit.layers.size(); ++l) {
        const LayerEvents &hl = hit.layers[l];
        const LayerEvents &bl = base.layers[l];
        EXPECT_EQ(hl.cached_visual, bl.visual_in);
        EXPECT_EQ(hl.visual_in, 0);
        EXPECT_EQ(hl.visual_out, 0);
        EXPECT_EQ(hl.sec_topk, 0);
        EXPECT_EQ(hl.text, bl.text);
        for (const GemmEvent &g : hl.gemms) {
            EXPECT_EQ(g.psi_in, 1.0);
            EXPECT_FALSE(g.gather_out);
            switch (g.site) {
              case GemmSite::Qk:
                // Every original key survives as attention context.
                EXPECT_EQ(g.m, bl.text);
                EXPECT_EQ(g.n, bl.text + bl.visual_in);
                break;
              case GemmSite::Pv:
                EXPECT_EQ(g.m, bl.text);
                EXPECT_EQ(g.k, bl.text + bl.visual_in);
                break;
              default:
                // Projections/FFN cover only the text rows.
                EXPECT_EQ(g.m, bl.text);
                break;
            }
        }
    }

    // A hit costs strictly less than recomputing the prefix…
    const AccelConfig accel = AccelConfig::focus();
    const RunMetrics mb = simulateAccelerator(accel, base);
    const RunMetrics mh = simulateAccelerator(accel, hit);
    EXPECT_LT(mh.seconds(), mb.seconds());
    // …but still pays the cached-KV attention streaming: more DRAM
    // traffic than a text-only request with no cached context.
    WorkloadTrace text_only = applyPrefixCache(base);
    for (LayerEvents &l : text_only.layers) {
        l.cached_visual = 0;
        for (GemmEvent &g : l.gemms) {
            if (g.site == GemmSite::Qk) {
                g.n = l.text;
            }
            if (g.site == GemmSite::Pv) {
                g.k = l.text;
            }
        }
    }
    const RunMetrics mt = simulateAccelerator(accel, text_only);
    EXPECT_GT(mh.dramTotalBytes(), mt.dramTotalBytes());
    EXPECT_GT(mh.sfu_ops, mt.sfu_ops);
}

// ---------------------------------------------------------------
// Zipf prefix identities
// ---------------------------------------------------------------

TEST(RequestQueue, ZipfSkewsPrefixPopularity)
{
    QueueConfig q = cachedOpenConfig(600, 16);
    q.mix[0].prefix_zipf = 1.2;
    q.mix[1].prefix_zipf = 1.2;
    const std::vector<ServeRequest> s = RequestQueue(q).generate();
    std::map<int64_t, int> freq;
    for (const ServeRequest &r : s) {
        ASSERT_GE(r.prefix_id, 0);
        ASSERT_LT(r.prefix_id, 16);
        freq[r.prefix_id] += 1;
    }
    // Rank 0 is the hottest identity by a wide margin.
    EXPECT_GT(freq[0], freq[8] * 2);
    EXPECT_GT(freq[0], freq[15]);

    // zipf = 0 keeps the historical uniform draw (and its exact RNG
    // consumption): same seed, same class sequence, ids in range.
    QueueConfig u = q;
    u.mix[0].prefix_zipf = 0.0;
    u.mix[1].prefix_zipf = 0.0;
    const std::vector<ServeRequest> us = RequestQueue(u).generate();
    for (size_t i = 0; i < us.size(); ++i) {
        EXPECT_EQ(us[i].class_id, s[i].class_id);
        EXPECT_EQ(us[i].arrival_s, s[i].arrival_s);
        EXPECT_LT(us[i].prefix_id, 16);
    }
}

TEST(RequestQueue, PrefixKeyMatchesClusterRoutingKey)
{
    const QueueConfig q = cachedOpenConfig(8);
    const std::vector<ServeRequest> s = RequestQueue(q).generate();
    for (const ServeRequest &r : s) {
        const RequestClass &cls =
            q.mix[static_cast<size_t>(r.class_id)];
        const std::string key = prefixKey(r, cls);
        EXPECT_EQ(key, cls.label() + "#" +
                           std::to_string(r.prefix_id));
        EXPECT_EQ(key, ClusterSimulator::routingKey(r, cls));
    }
}

// ---------------------------------------------------------------
// serving integration
// ---------------------------------------------------------------

TEST(ServingPrefixCache, OffAndZeroBudgetAreBitIdentical)
{
    ModeGuard guard;
    const QueueConfig q = cachedOpenConfig(12);
    const SchedulerConfig sched = timeoutSched();

    // Baseline: no cache configured at all (the pre-cache path).
    ServingSimulator base(q, AccelConfig::focus(), smallEval());
    const ServingReport r_base = base.run(sched);

    // Zero budget: cache object exists but stores nothing.
    ServingSimulator zero(q, AccelConfig::focus(), smallEval());
    zero.setPrefixCache(PrefixCacheConfig{});
    const ServingReport r_zero = zero.run(sched);
    expectReportsIdentical(r_base, r_zero);

    // FOCUS_PREFIX_CACHE=off with an ample budget.
    setPrefixCacheMode(PrefixCacheMode::Off);
    ServingSimulator off(q, AccelConfig::focus(), smallEval());
    off.setPrefixCache(ampleConfig());
    const ServingReport r_off = off.run(sched);
    setPrefixCacheMode(PrefixCacheMode::On);
    expectReportsIdentical(r_base, r_off);

    // And the baseline itself is thread-count invariant.
    ThreadPool p4(4);
    ServingSimulator base4(q, AccelConfig::focus(), smallEval());
    const ServingReport r4 = base4.run(sched, &p4);
    expectReportsIdentical(r_base, r4);
}

TEST(ServingPrefixCache, HitsReduceLatencyAndAreThreadInvariant)
{
    ModeGuard guard;
    const QueueConfig q = cachedOpenConfig(16);
    const SchedulerConfig sched = timeoutSched();

    ServingSimulator plain(q, AccelConfig::focus(), smallEval());
    const ServingReport r_plain = plain.run(sched);

    ServingSimulator cached(q, AccelConfig::focus(), smallEval());
    cached.setPrefixCache(ampleConfig());
    const ServingReport r_cached = cached.run(sched);

    // Hot prefixes repeat within 16 Zipf(0.9) draws over 4 ids, so
    // the cache must convert some of them.
    EXPECT_GT(r_cached.prefix_cache.lookups, 0);
    EXPECT_GT(r_cached.prefix_cache.hits, 0);
    EXPECT_GT(r_cached.prefix_cache.admissions, 0);
    int hit_outcomes = 0;
    int class_hits = 0;
    for (const RequestOutcome &o : r_cached.outcomes) {
        hit_outcomes += o.prefix_hit ? 1 : 0;
    }
    for (const ClassOutcome &c : r_cached.classes) {
        class_hits += c.prefix_hits;
    }
    EXPECT_EQ(hit_outcomes,
              static_cast<int>(r_cached.prefix_cache.hits));
    EXPECT_EQ(class_hits, hit_outcomes);

    // Hits skip the prefix recomputation, so the replay gets faster:
    // batch membership is identical, every batch costs at most the
    // uncached fusion, and the hit batches cost strictly less.
    ASSERT_EQ(r_cached.batches.size(), r_plain.batches.size());
    EXPECT_LT(r_cached.latency.mean, r_plain.latency.mean);
    EXPECT_LE(r_cached.latency.p95, r_plain.latency.p95);
    EXPECT_LE(r_cached.makespan_s, r_plain.makespan_s);

    // The per-class hit-solo reference is cheaper than the solo.
    for (int cls = 0; cls < 2; ++cls) {
        EXPECT_LT(cached.classHitSolo(cls).seconds(),
                  cached.classSolo(cls).seconds());
    }

    // Same enabled cache, 4 threads: bit-identical (the cache
    // pre-pass is serial by construction).
    ThreadPool p4(4);
    ServingSimulator cached4(q, AccelConfig::focus(), smallEval());
    cached4.setPrefixCache(ampleConfig());
    const ServingReport r4 = cached4.run(sched, &p4);
    expectReportsIdentical(r_cached, r4);
}

TEST(ServingPrefixCache, HitRateGrowsWithBudget)
{
    ModeGuard guard;
    const QueueConfig q = cachedOpenConfig(24, 8);
    const SchedulerConfig sched = timeoutSched();
    ServingSimulator sim(q, AccelConfig::focus(), smallEval());

    // One simulator sweeps budgets, sharing calibration and the
    // composition cache across runs.
    const int64_t slab_bytes =
        sim.comboSlabSpec(sim.classCombo(0), "probe").bytes();
    double prev_rate = -1.0;
    for (const int64_t budget :
         {slab_bytes, 4 * slab_bytes, 64 * slab_bytes}) {
        PrefixCacheConfig cfg;
        cfg.budget_bytes = budget;
        sim.setPrefixCache(cfg);
        const ServingReport rep = sim.run(sched);
        EXPECT_GE(rep.prefix_cache.hitRate(), prev_rate);
        EXPECT_LE(rep.prefix_cache.bytes_resident, budget);
        EXPECT_LE(rep.prefix_cache.bytes_peak, budget);
        prev_rate = rep.prefix_cache.hitRate();
    }
    EXPECT_GT(prev_rate, 0.0);
}

// ---------------------------------------------------------------
// cluster integration
// ---------------------------------------------------------------

TEST(ClusterPrefixCache, ClusterOfOneMatchesSingleBox)
{
    ModeGuard guard;
    const QueueConfig q = cachedOpenConfig(12);
    const SchedulerConfig sched = timeoutSched();

    ServingSimulator sim(q, AccelConfig::focus(), smallEval());
    sim.setPrefixCache(ampleConfig());
    const ServingReport single = sim.run(sched);

    ClusterConfig cc;
    cc.replicas = 1;
    cc.prefix_cache = ampleConfig();
    ClusterSimulator cluster(sim, cc);
    const ClusterReport rep = cluster.run(sched);

    expectReportsIdentical(single, rep.merged);
    ASSERT_EQ(rep.replicas.size(), 1u);
    EXPECT_EQ(rep.replicas[0].prefix_hits, single.prefix_cache.hits);
    EXPECT_EQ(rep.replicas[0].prefix_misses,
              single.prefix_cache.misses);
}

TEST(ClusterPrefixCache, HashAffinityBeatsRoundRobinHitRate)
{
    ModeGuard guard;
    // 4 replicas, enough requests that hot prefixes repeat per
    // replica under affinity routing.
    const QueueConfig q = cachedOpenConfig(48, 8);
    const SchedulerConfig sched = timeoutSched();
    ServingSimulator sim(q, AccelConfig::focus(), smallEval());

    ClusterConfig hashed;
    hashed.replicas = 4;
    hashed.routing = RoutingPolicy::HashRing;
    hashed.prefix_cache = ampleConfig();
    const ClusterReport r_hash = ClusterSimulator(sim, hashed).run(sched);

    ClusterConfig rr = hashed;
    rr.routing = RoutingPolicy::RoundRobin;
    const ClusterReport r_rr = ClusterSimulator(sim, rr).run(sched);

    // Affinity routing sends every repeat of a prefix to the replica
    // holding its slab; round-robin scatters repeats across all four
    // caches (each paying its own doorkeeper) and forfeits hits.
    EXPECT_GT(r_hash.prefix_cache.hits, 0);
    EXPECT_GT(r_hash.prefix_cache.hitRate(),
              r_rr.prefix_cache.hitRate());

    // Advanced path (tensor-parallel shards) still resolves the
    // cache and stays deterministic across thread counts.
    ClusterConfig tp = hashed;
    tp.tensor_parallel = 2;
    const ClusterReport r_tp1 = ClusterSimulator(sim, tp).run(sched);
    ThreadPool p4(4);
    const ClusterReport r_tp4 =
        ClusterSimulator(sim, tp).run(sched, &p4);
    EXPECT_EQ(r_tp1.prefix_cache.hits, r_tp4.prefix_cache.hits);
    EXPECT_EQ(r_tp1.merged.makespan_s, r_tp4.merged.makespan_s);
    EXPECT_EQ(r_tp1.prefix_cache.hits, r_hash.prefix_cache.hits);
}

} // namespace
} // namespace focus
