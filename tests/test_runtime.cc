/**
 * @file
 * Tests for the parallel execution runtime: pool lifecycle,
 * parallelFor index coverage, exception propagation, nesting, the
 * FOCUS_THREADS override, and the determinism contract — evaluator
 * and experiment-grid results must be bit-identical at every thread
 * count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "runtime/thread_pool.h"

namespace focus
{
namespace
{

EvalOptions
quick(int samples = 5)
{
    EvalOptions o;
    o.samples = samples;
    o.seed = 321;
    return o;
}

// Death tests first (by convention): forking is cleanest before
// other tests have started pool threads.
TEST(RuntimeDeathTest, RunFunctionalPanicsOnNonPositiveSamples)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            EvalOptions o;
            o.samples = 0;
            Evaluator ev("Llava-Vid", "MVBench", o);
            ev.runFunctional(MethodConfig::dense());
        },
        "samples must be positive");
}

TEST(ThreadPool, StartStopAndThreadCount)
{
    {
        ThreadPool p(1);
        EXPECT_EQ(p.threads(), 1);
    }
    {
        ThreadPool p(4);
        EXPECT_EQ(p.threads(), 4);
    }
    // Repeated construction/destruction must not leak or hang.
    for (int i = 0; i < 5; ++i) {
        ThreadPool p(3);
        p.parallelFor(1, [](int64_t) {});
    }
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce)
{
    ThreadPool p(4);
    constexpr int64_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    p.parallelFor(n, [&](int64_t i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "index " << i;
    }
}

TEST(ThreadPool, ZeroAndNegativeCountsAreNoOps)
{
    ThreadPool p(4);
    std::atomic<int> calls{0};
    p.parallelFor(0, [&](int64_t) { calls.fetch_add(1); });
    p.parallelFor(-5, [&](int64_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleThreadRunsInlineOnCaller)
{
    ThreadPool p(1);
    const std::thread::id self = std::this_thread::get_id();
    std::vector<std::thread::id> ids(16);
    p.parallelFor(16, [&](int64_t i) {
        // The serial fallback still marks the parallel region, so a
        // nested parallelFor on any pool stays inline.
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        ids[static_cast<size_t>(i)] = std::this_thread::get_id();
    });
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    for (const std::thread::id &id : ids) {
        EXPECT_EQ(id, self);
    }
}

TEST(ThreadPool, SingleIndexDoesNotSuppressNestedFanOut)
{
    // One work item carries no outer parallelism, so a one-cell
    // experiment grid must still fan its sample layer out.
    ThreadPool p(4);
    std::atomic<int> calls{0};
    p.parallelFor(1, [&](int64_t) {
        EXPECT_FALSE(ThreadPool::inParallelRegion());
        p.parallelFor(64, [&](int64_t) { calls.fetch_add(1); });
    });
    EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPool, SerialPoolSuppressesNestedFanOut)
{
    ThreadPool serial(1);
    ThreadPool wide(4);
    const std::thread::id self = std::this_thread::get_id();
    std::vector<std::thread::id> ids(8);
    serial.parallelFor(2, [&](int64_t outer) {
        wide.parallelFor(4, [&](int64_t inner) {
            ids[static_cast<size_t>(outer * 4 + inner)] =
                std::this_thread::get_id();
        });
    });
    for (const std::thread::id &id : ids) {
        EXPECT_EQ(id, self);
    }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool p(4);
    EXPECT_THROW(p.parallelFor(100,
                               [](int64_t i) {
                                   if (i == 37) {
                                       throw std::runtime_error(
                                           "boom");
                                   }
                               }),
                 std::runtime_error);
    // The pool must stay usable after a throwing job.
    std::atomic<int> calls{0};
    p.parallelFor(64, [&](int64_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesFromSerialFallback)
{
    ThreadPool p(1);
    EXPECT_THROW(p.parallelFor(4,
                               [](int64_t) {
                                   throw std::runtime_error("boom");
                               }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool p(4);
    std::atomic<int> calls{0};
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    p.parallelFor(8, [&](int64_t) {
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        p.parallelFor(8, [&](int64_t) { calls.fetch_add(1); });
    });
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPool, FocusThreadsEnvControlsDefault)
{
    ASSERT_EQ(setenv("FOCUS_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3);
    // Invalid values fall back to hardware concurrency (>= 1).
    ASSERT_EQ(setenv("FOCUS_THREADS", "0", 1), 0);
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
    ASSERT_EQ(unsetenv("FOCUS_THREADS"), 0);
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(ThreadPool, SetGlobalThreadsResizesGlobalPool)
{
    ThreadPool::setGlobalThreads(2);
    EXPECT_EQ(ThreadPool::global().threads(), 2);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::global().threads(), 1);
    ThreadPool::setGlobalThreads(0); // back to the default sizing
    EXPECT_EQ(ThreadPool::global().threads(),
              ThreadPool::defaultThreads());
}

// The acceptance contract of the refactor: MethodEval aggregates are
// bit-identical between the serial pool and a parallel pool.
TEST(Determinism, RunFunctionalBitIdenticalAcrossThreadCounts)
{
    Evaluator ev("Llava-Vid", "MVBench", quick());

    ThreadPool serial_pool(1);
    ThreadPool parallel_pool(4);
    const MethodEval serial =
        ev.runFunctional(MethodConfig::focusFull(), &serial_pool);
    const MethodEval parallel =
        ev.runFunctional(MethodConfig::focusFull(), &parallel_pool);

    EXPECT_EQ(serial.method, parallel.method);
    EXPECT_EQ(serial.accuracy, parallel.accuracy);
    EXPECT_EQ(serial.sparsity, parallel.sparsity);
    EXPECT_EQ(serial.agg.samples, parallel.agg.samples);
    ASSERT_EQ(serial.agg.keep_in.size(), parallel.agg.keep_in.size());
    ASSERT_EQ(serial.agg.tile_fracs.size(),
              parallel.agg.tile_fracs.size());
    for (size_t l = 0; l < serial.agg.keep_in.size(); ++l) {
        EXPECT_EQ(serial.agg.keep_in[l], parallel.agg.keep_in[l]);
        EXPECT_EQ(serial.agg.keep_out[l], parallel.agg.keep_out[l]);
        EXPECT_EQ(serial.agg.psi_qkv[l], parallel.agg.psi_qkv[l]);
        EXPECT_EQ(serial.agg.psi_oproj[l],
                  parallel.agg.psi_oproj[l]);
        EXPECT_EQ(serial.agg.psi_ffn[l], parallel.agg.psi_ffn[l]);
        EXPECT_EQ(serial.agg.psi_down[l], parallel.agg.psi_down[l]);
    }
    for (size_t i = 0; i < serial.agg.tile_fracs.size(); ++i) {
        EXPECT_EQ(serial.agg.tile_fracs[i],
                  parallel.agg.tile_fracs[i]);
    }
}

ExperimentGrid
smallGrid()
{
    ExperimentGrid grid(quick(3));
    grid.add({"Llava-Vid", "MVBench", MethodConfig::dense(),
              AccelConfig::systolicArray()});
    grid.add({"Llava-Vid", "MVBench", MethodConfig::focusFull(),
              AccelConfig::focus()});
    ExperimentCell sparsity_cell{"Llava-OV", "MVBench",
                                 MethodConfig::cmcBaseline(),
                                 AccelConfig::cmc()};
    sparsity_cell.trace_sparsity = true;
    sparsity_cell.keep_trace = true;
    grid.add(sparsity_cell);
    return grid;
}

TEST(Determinism, ExperimentGridBitIdenticalAcrossThreadCounts)
{
    ThreadPool serial_pool(1);
    ThreadPool parallel_pool(4);
    ExperimentGrid ga = smallGrid();
    ExperimentGrid gb = smallGrid();
    const std::vector<ExperimentResult> a = ga.run(serial_pool);
    const std::vector<ExperimentResult> b = gb.run(parallel_pool);

    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].eval.accuracy, b[i].eval.accuracy);
        EXPECT_EQ(a[i].eval.sparsity, b[i].eval.sparsity);
        EXPECT_EQ(a[i].metrics.cycles, b[i].metrics.cycles);
        EXPECT_EQ(a[i].metrics.dramTotalBytes(),
                  b[i].metrics.dramTotalBytes());
        EXPECT_EQ(a[i].metrics.energy.total(),
                  b[i].metrics.energy.total());
        EXPECT_EQ(a[i].metrics.utilization, b[i].metrics.utilization);
        EXPECT_EQ(a[i].trace_sparsity, b[i].trace_sparsity);
        EXPECT_EQ(a[i].trace.totalMacs(), b[i].trace.totalMacs());
    }
}

TEST(ExperimentGrid, ResultsFollowInsertionOrderAndFlags)
{
    ThreadPool pool(4);
    ExperimentGrid grid(quick(2));

    ExperimentCell functional_only{"Llava-Vid", "MVBench",
                                   MethodConfig::dense()};
    functional_only.simulate = false;
    const size_t f_id = grid.add(functional_only);

    ExperimentCell simulated{"Llava-Vid", "MVBench",
                             MethodConfig::focusFull(),
                             AccelConfig::focus()};
    simulated.tag = "focus";
    const size_t s_id = grid.add(simulated);
    EXPECT_EQ(grid.size(), 2u);

    const std::vector<ExperimentResult> res = grid.run(pool);
    ASSERT_EQ(res.size(), 2u);
    EXPECT_EQ(res[f_id].cell.method.name(), "Dense");
    EXPECT_EQ(res[f_id].metrics.cycles, 0u); // not simulated
    EXPECT_EQ(res[s_id].cell.tag, "focus");
    EXPECT_GT(res[s_id].metrics.cycles, 0u);
    EXPECT_GT(res[s_id].eval.sparsity, 0.0);
}

TEST(ExperimentGrid, SharesEvaluatorAcrossCells)
{
    ExperimentGrid grid(quick(2));
    const Evaluator &a = grid.evaluator("Llava-Vid", "MVBench");
    const Evaluator &b = grid.evaluator("Llava-Vid", "MVBench");
    EXPECT_EQ(&a, &b);
    const Evaluator &c = grid.evaluator("Llava-OV", "MVBench");
    EXPECT_NE(&a, &c);
}

} // namespace
} // namespace focus
