/**
 * @file
 * Tests for the Semantic Concentrator: importance analysis, top-k
 * selection (exact and streaming-sorter emulation), offset encoding.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "focus/offset_encoding.h"
#include "focus/sec.h"

namespace focus
{
namespace
{

TEST(SecImportance, MaxOverTextRowsAndHeads)
{
    // 2 image tokens, 2 text tokens, 2 heads; hand-built maps.
    const int64_t m = 2, t = 2, total = m + t;
    Tensor h0(total, total), h1(total, total);
    // Text rows are 2 and 3; image columns are 0 and 1.
    h0(2, 0) = 0.3f;
    h0(3, 0) = 0.1f;
    h0(2, 1) = 0.05f;
    h1(3, 1) = 0.6f;
    h1(2, 0) = 0.2f;
    const auto imp = secImportance({h0, h1}, m, t);
    ASSERT_EQ(imp.size(), 2u);
    EXPECT_FLOAT_EQ(imp[0], 0.3f);
    EXPECT_FLOAT_EQ(imp[1], 0.6f);
}

TEST(SecImportance, IgnoresImageToImageBlock)
{
    const int64_t m = 2, t = 1;
    Tensor h(m + t, m + t);
    h(0, 1) = 0.99f; // image-to-image; must not count
    h(2, 1) = 0.10f;
    const auto imp = secImportance({h}, m, t);
    EXPECT_FLOAT_EQ(imp[0], 0.0f);
    EXPECT_FLOAT_EQ(imp[1], 0.10f);
}

TEST(SecTopK, SelectsLargestAscending)
{
    const std::vector<float> imp = {0.1f, 0.9f, 0.5f, 0.7f, 0.2f};
    const auto idx = secTopK(imp, 3);
    EXPECT_EQ(idx, (std::vector<int64_t>{1, 2, 3}));
}

TEST(SecTopK, KGreaterThanMReturnsAll)
{
    const std::vector<float> imp = {0.3f, 0.2f};
    const auto idx = secTopK(imp, 10);
    EXPECT_EQ(idx, (std::vector<int64_t>{0, 1}));
}

TEST(SecTopK, TieBreaksTowardLowerIndex)
{
    const std::vector<float> imp = {0.5f, 0.5f, 0.5f, 0.5f};
    const auto idx = secTopK(imp, 2);
    EXPECT_EQ(idx, (std::vector<int64_t>{0, 1}));
}

class StreamingTopKTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t, int64_t>>
{
};

TEST_P(StreamingTopKTest, MatchesExactTopK)
{
    const auto [lanes, m, k] = GetParam();
    Rng rng(static_cast<uint64_t>(lanes * 1000 + k));
    std::vector<float> imp(static_cast<size_t>(m));
    for (auto &v : imp) {
        v = static_cast<float>(rng.uniform());
    }
    StreamingTopK sorter(lanes, k);
    const auto got = sorter.select(imp);
    const auto want = secTopK(imp, k);
    EXPECT_EQ(got, want);
}

TEST_P(StreamingTopKTest, CycleCountIsPassesTimesM)
{
    const auto [lanes, m, k] = GetParam();
    if (k >= m) {
        GTEST_SKIP();
    }
    std::vector<float> imp(static_cast<size_t>(m), 0.5f);
    StreamingTopK sorter(lanes, k);
    sorter.select(imp);
    const uint64_t passes = static_cast<uint64_t>((k + lanes - 1) /
                                                  lanes);
    EXPECT_EQ(sorter.cycles(), passes * static_cast<uint64_t>(m));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamingTopKTest,
    ::testing::Values(std::make_tuple(4, 100, 10),
                      std::make_tuple(32, 800, 320),
                      std::make_tuple(32, 800, 80),
                      std::make_tuple(8, 64, 64),
                      std::make_tuple(1, 50, 7),
                      std::make_tuple(32, 1000, 1)));

TEST(StreamingTopK, DuplicateValuesStillExactSet)
{
    Rng rng(5);
    std::vector<float> imp(200);
    for (auto &v : imp) {
        // Few distinct values -> many ties.
        v = static_cast<float>(rng.uniformInt(5)) * 0.1f;
    }
    StreamingTopK sorter(16, 50);
    EXPECT_EQ(sorter.select(imp), secTopK(imp, 50));
}

// ---------------------------------------------------------------
// Offset encoding
// ---------------------------------------------------------------

TEST(OffsetEncoding, RoundTripSimple)
{
    const std::vector<int64_t> retained = {0, 3, 4, 10, 500};
    const auto enc = encodeOffsets(retained);
    EXPECT_EQ(decodeOffsets(enc), retained);
}

TEST(OffsetEncoding, FirstTokenZeroHasOffsetOne)
{
    const auto enc = encodeOffsets({0});
    ASSERT_EQ(enc.offsets.size(), 1u);
    EXPECT_EQ(enc.offsets[0], 1u);
}

TEST(OffsetEncoding, HugeGapsUseEscapes)
{
    const std::vector<int64_t> retained = {5, 5 + 200000};
    const auto enc = encodeOffsets(retained);
    EXPECT_GT(enc.offsets.size(), 2u); // escapes present
    EXPECT_EQ(decodeOffsets(enc), retained);
}

TEST(OffsetEncoding, ExactEscapeMultipleGap)
{
    const int64_t gap = static_cast<int64_t>(
        OffsetEncoding::kEscape) * 2;
    const std::vector<int64_t> retained = {7, 7 + gap};
    EXPECT_EQ(decodeOffsets(encodeOffsets(retained)), retained);
}

TEST(OffsetEncoding, PropertyRandomSets)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<int64_t> retained;
        int64_t pos = -1;
        const int n = 1 + static_cast<int>(rng.uniformInt(100));
        for (int i = 0; i < n; ++i) {
            pos += 1 + static_cast<int64_t>(rng.uniformInt(100000));
            retained.push_back(pos);
        }
        EXPECT_EQ(decodeOffsets(encodeOffsets(retained)), retained);
    }
}

TEST(OffsetEncoding, ByteSizeIsTwoPerEntry)
{
    const auto enc = encodeOffsets({1, 2, 3});
    EXPECT_EQ(enc.byteSize(), 6u);
}

} // namespace
} // namespace focus
