/**
 * @file
 * Tests for the adaptive SEC selection extensions (Sec. VII-D future
 * work): top-p and attention-threshold pruning.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/evaluator.h"
#include "focus/sec.h"

namespace focus
{
namespace
{

TEST(SecTopP, PeakedDistributionKeepsFew)
{
    std::vector<float> imp(100, 0.001f);
    imp[42] = 10.0f;
    const auto keep = secTopP(imp, 0.9);
    EXPECT_EQ(keep.size(), 1u);
    EXPECT_EQ(keep[0], 42);
}

TEST(SecTopP, FlatDistributionKeepsMany)
{
    std::vector<float> imp(100, 1.0f);
    const auto keep = secTopP(imp, 0.9);
    EXPECT_GE(keep.size(), 90u);
}

TEST(SecTopP, MonotoneInP)
{
    Rng rng(3);
    std::vector<float> imp(200);
    for (auto &v : imp) {
        v = static_cast<float>(rng.uniform());
    }
    size_t prev = 0;
    for (double p : {0.5, 0.7, 0.9, 0.99}) {
        const auto keep = secTopP(imp, p);
        EXPECT_GE(keep.size(), prev);
        prev = keep.size();
    }
}

TEST(SecTopP, IndicesAscendingAndValid)
{
    Rng rng(5);
    std::vector<float> imp(64);
    for (auto &v : imp) {
        v = static_cast<float>(rng.uniform());
    }
    const auto keep = secTopP(imp, 0.8);
    for (size_t i = 1; i < keep.size(); ++i) {
        EXPECT_LT(keep[i - 1], keep[i]);
    }
    EXPECT_FALSE(keep.empty());
}

TEST(SecTopP, KeepsHighestMassPrefix)
{
    // The retained set must be exactly the most-important tokens:
    // the minimum retained importance >= the maximum dropped one.
    Rng rng(7);
    std::vector<float> imp(128);
    for (auto &v : imp) {
        v = static_cast<float>(rng.uniform());
    }
    const auto keep = secTopP(imp, 0.6);
    std::vector<bool> kept(imp.size(), false);
    float min_kept = 1e30f;
    for (int64_t i : keep) {
        kept[static_cast<size_t>(i)] = true;
        min_kept = std::min(min_kept, imp[static_cast<size_t>(i)]);
    }
    for (size_t i = 0; i < imp.size(); ++i) {
        if (!kept[i]) {
            EXPECT_LE(imp[i], min_kept);
        }
    }
}

TEST(SecThreshold, KeepsAboveFractionOfMax)
{
    std::vector<float> imp = {0.1f, 1.0f, 0.04f, 0.5f, 0.06f};
    const auto keep = secThreshold(imp, 0.05);
    EXPECT_EQ(keep, (std::vector<int64_t>{0, 1, 3, 4}));
}

TEST(SecThreshold, AlwaysKeepsArgmax)
{
    std::vector<float> imp = {0.2f, 0.9f, 0.3f};
    const auto keep = secThreshold(imp, 1.0); // cut above everything
    EXPECT_EQ(keep, (std::vector<int64_t>{1}));
}

TEST(SecAdaptive, TopPVariesRetentionAcrossSamples)
{
    // The paper's caveat: adaptive pruning introduces runtime
    // variation across inputs.  Retained counts should differ
    // between samples under top-p while being constant under top-k.
    EvalOptions opts;
    opts.samples = 1;
    Evaluator ev("Llava-Vid", "VideoMME", opts);

    MethodConfig topp = MethodConfig::focusFull();
    topp.focus.sec.select = SecSelect::TopP;
    topp.focus.sec.top_p = 0.92;

    std::vector<int64_t> finals;
    for (uint64_t s = 0; s < 4; ++s) {
        const VideoSample sample = ev.generator().sample(s);
        const ForwardResult r =
            ev.model().forward(sample, topp, ev.generator().bank());
        finals.push_back(r.layers.back().visual_out);
    }
    bool varies = false;
    for (size_t i = 1; i < finals.size(); ++i) {
        varies = varies || finals[i] != finals[0];
    }
    EXPECT_TRUE(varies);
}

TEST(SecAdaptive, TopPEndToEndProducesSparsity)
{
    EvalOptions opts;
    opts.samples = 3;
    Evaluator ev("Llava-Vid", "VideoMME", opts);

    MethodConfig topp = MethodConfig::focusFull();
    topp.focus.sec.select = SecSelect::TopP;
    topp.focus.sec.top_p = 0.92;

    const MethodEval e = ev.runFunctional(topp);
    EXPECT_GT(ev.traceSparsity(topp, e), 0.4);
    EXPECT_GT(e.accuracy, 0.0);

    // Trace construction uses measured keeps, not the Tbl. I
    // schedule: final token count should reflect the measurement.
    const WorkloadTrace tr = ev.buildFullTrace(topp, e);
    const double measured_keep = e.agg.keep_out.back();
    const double trace_keep =
        static_cast<double>(tr.layers.back().visual_out) /
        static_cast<double>(tr.visual_original);
    EXPECT_NEAR(trace_keep, measured_keep, 0.05);
}

TEST(SecAdaptive, ThresholdEndToEndRuns)
{
    EvalOptions opts;
    opts.samples = 2;
    Evaluator ev("Llava-Vid", "MVBench", opts);

    MethodConfig th = MethodConfig::focusFull();
    th.focus.sec.select = SecSelect::Threshold;
    th.focus.sec.threshold = 0.05;

    const MethodEval e = ev.runFunctional(th);
    EXPECT_GT(ev.traceSparsity(th, e), 0.2);
}

} // namespace
} // namespace focus
