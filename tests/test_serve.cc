/**
 * @file
 * Tests for the serving layer: request-stream determinism, batch
 * formation policies, the batch-of-1 bit-identity contract against
 * Evaluator::simulate, and thread-count determinism of the full
 * serving simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "eval/evaluator.h"
#include "runtime/thread_pool.h"
#include "serve/serving_sim.h"
#include "workload/profiles.h"

namespace focus
{
namespace
{

QueueConfig
smallOpenConfig(int requests = 6)
{
    QueueConfig q;
    q.process = ArrivalProcess::OpenPoisson;
    q.arrival_rate_rps = 0.05;
    q.num_requests = requests;
    q.seed = 42;

    RequestClass focus_cls;
    focus_cls.model = "Llava-Vid";
    focus_cls.dataset = "VideoMME";
    focus_cls.method = MethodConfig::focusFull();
    focus_cls.weight = 3.0;
    focus_cls.slo_latency_s = 120.0;
    q.mix.push_back(focus_cls);

    RequestClass dense_cls;
    dense_cls.model = "Llava-Vid";
    dense_cls.dataset = "VideoMME";
    dense_cls.method = MethodConfig::dense();
    dense_cls.weight = 1.0;
    dense_cls.slo_latency_s = 480.0;
    q.mix.push_back(dense_cls);
    return q;
}

EvalOptions
smallEval()
{
    EvalOptions opts;
    opts.samples = 2;
    opts.seed = 42;
    return opts;
}

/** Hand-built stream with fixed arrivals and one class. */
std::vector<ServeRequest>
arrivalsAt(const std::vector<double> &times)
{
    std::vector<ServeRequest> stream;
    for (size_t i = 0; i < times.size(); ++i) {
        ServeRequest r;
        r.id = static_cast<int64_t>(i);
        r.arrival_s = times[i];
        r.slo_latency_s = 100.0;
        stream.push_back(r);
    }
    return stream;
}

// ---- request queue ----

TEST(RequestQueue, OpenLoopDeterministicAndSorted)
{
    const QueueConfig q = smallOpenConfig(32);
    const std::vector<ServeRequest> a = RequestQueue(q).generate();
    const std::vector<ServeRequest> b = RequestQueue(q).generate();
    ASSERT_EQ(a.size(), 32u);
    ASSERT_EQ(b.size(), a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, static_cast<int64_t>(i));
        EXPECT_EQ(a[i].class_id, b[i].class_id);
        EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_GE(a[i].class_id, 0);
        EXPECT_LT(a[i].class_id, static_cast<int>(q.mix.size()));
        if (i > 0) {
            EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
        }
        EXPECT_EQ(a[i].slo_latency_s,
                  q.mix[static_cast<size_t>(a[i].class_id)]
                      .slo_latency_s);
    }
    // A different seed produces a different stream.
    QueueConfig q2 = q;
    q2.seed = 43;
    const std::vector<ServeRequest> c = RequestQueue(q2).generate();
    bool differs = false;
    for (size_t i = 0; i < c.size(); ++i) {
        differs = differs || c[i].arrival_s != a[i].arrival_s;
    }
    EXPECT_TRUE(differs);
}

TEST(RequestQueue, ClosedLoopRoundRobinThinkTimes)
{
    QueueConfig q = smallOpenConfig(9);
    q.process = ArrivalProcess::ClosedLoop;
    q.clients = 3;
    q.think_mean_s = 5.0;
    const std::vector<ServeRequest> s = RequestQueue(q).generate();
    ASSERT_EQ(s.size(), 9u);
    for (size_t i = 0; i < s.size(); ++i) {
        EXPECT_EQ(s[i].client, static_cast<int>(i % 3));
        EXPECT_GE(s[i].think_s, 0.0);
        EXPECT_EQ(s[i].arrival_s, 0.0);
    }
}

TEST(RequestQueueDeathTest, RejectsBadConfigs)
{
    QueueConfig empty = smallOpenConfig();
    empty.mix.clear();
    EXPECT_EXIT(RequestQueue{empty}, ::testing::ExitedWithCode(1),
                "empty request mix");

    QueueConfig bad_rate = smallOpenConfig();
    bad_rate.arrival_rate_rps = 0.0;
    EXPECT_EXIT(RequestQueue{bad_rate},
                ::testing::ExitedWithCode(1), "arrival rate");

    QueueConfig bad_clients = smallOpenConfig();
    bad_clients.process = ArrivalProcess::ClosedLoop;
    bad_clients.clients = 0;
    EXPECT_EXIT(RequestQueue{bad_clients},
                ::testing::ExitedWithCode(1), "client count");
}

// ---- batch scheduler ----

TEST(BatchScheduler, FixedSizeChunksWithEndFlush)
{
    SchedulerConfig cfg;
    cfg.policy = BatchPolicy::FixedSize;
    cfg.max_batch = 3;
    const BatchScheduler sched(cfg);
    const std::vector<ServeRequest> stream =
        arrivalsAt({0, 1, 2, 3, 10});
    const std::vector<BatchKey> keys(stream.size(), BatchKey{});
    const std::vector<PlannedBatch> plan =
        sched.planOpenLoop(stream, keys);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].members,
              (std::vector<size_t>{0, 1, 2}));
    EXPECT_EQ(plan[0].ready_s, 2.0); // closes when full
    EXPECT_EQ(plan[1].members, (std::vector<size_t>{3, 4}));
    EXPECT_EQ(plan[1].ready_s, 10.0); // stream-end flush
}

TEST(BatchScheduler, TimeoutBoundsOldestWait)
{
    SchedulerConfig cfg;
    cfg.policy = BatchPolicy::Timeout;
    cfg.max_batch = 8;
    cfg.timeout_s = 10.0;
    const BatchScheduler sched(cfg);
    const std::vector<ServeRequest> stream =
        arrivalsAt({0, 5, 100});
    const std::vector<BatchKey> keys(stream.size(), BatchKey{});
    const std::vector<PlannedBatch> plan =
        sched.planOpenLoop(stream, keys);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].members, (std::vector<size_t>{0, 1}));
    EXPECT_EQ(plan[0].ready_s, 10.0); // opened at 0, timed out
    EXPECT_EQ(plan[1].members, (std::vector<size_t>{2}));
    EXPECT_EQ(plan[1].ready_s, 110.0);
}

TEST(BatchScheduler, ModelsNeverShareABatch)
{
    SchedulerConfig cfg;
    cfg.policy = BatchPolicy::FixedSize;
    cfg.max_batch = 4;
    const BatchScheduler sched(cfg);
    const std::vector<ServeRequest> stream =
        arrivalsAt({0, 1, 2, 3});
    std::vector<BatchKey> keys(stream.size(), BatchKey{});
    keys[1].model = 1;
    keys[3].model = 1;
    const std::vector<PlannedBatch> plan =
        sched.planOpenLoop(stream, keys);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].members, (std::vector<size_t>{0, 2}));
    EXPECT_EQ(plan[1].members, (std::vector<size_t>{1, 3}));
}

TEST(BatchScheduler, ConcAwareGroupsByRetainedTokenBand)
{
    SchedulerConfig cfg;
    cfg.policy = BatchPolicy::ConcAware;
    cfg.max_batch = 4;
    cfg.timeout_s = 100.0;
    const BatchScheduler sched(cfg);
    const std::vector<ServeRequest> stream =
        arrivalsAt({0, 1, 2, 3});
    std::vector<BatchKey> keys(stream.size(), BatchKey{});
    keys[0].cost = 1100; // same power-of-two band as 1900
    keys[1].cost = 5000; // different band
    keys[2].cost = 1900;
    keys[3].cost = 5500;
    const std::vector<PlannedBatch> plan =
        sched.planOpenLoop(stream, keys);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].members, (std::vector<size_t>{0, 2}));
    EXPECT_EQ(plan[1].members, (std::vector<size_t>{1, 3}));
}

TEST(BatchScheduler, PickPendingHonoursPolicyAndOrder)
{
    SchedulerConfig cfg;
    cfg.policy = BatchPolicy::ConcAware;
    cfg.max_batch = 2;
    const BatchScheduler sched(cfg);
    std::vector<BatchKey> keys(4, BatchKey{});
    keys[0].cost = 1100;
    keys[1].cost = 5000;
    keys[2].cost = 1900;
    keys[3].cost = 1500;
    const std::vector<size_t> pending{0, 1, 2, 3};
    const std::vector<size_t> picked =
        sched.pickPending(pending, keys);
    // Oldest first, filled with band-compatible requests, capped.
    EXPECT_EQ(picked, (std::vector<size_t>{0, 2}));

    SchedulerConfig single;
    single.policy = BatchPolicy::Single;
    single.max_batch = 4;
    EXPECT_EQ(BatchScheduler(single).pickPending(pending, keys),
              (std::vector<size_t>{0}));
}

// ---- serving simulation ----

TEST(ServingSim, BatchOfOneIsBitIdenticalToEvaluatorSimulate)
{
    QueueConfig q = smallOpenConfig(3);
    q.mix.resize(1); // Focus class only
    ServingSimulator sim(q, AccelConfig::focus(), smallEval());

    SchedulerConfig sched;
    sched.policy = BatchPolicy::Single;
    sched.max_batch = 1;
    const ServingReport rep = sim.run(sched);

    const Evaluator ev("Llava-Vid", "VideoMME", smallEval());
    const RunMetrics ref =
        ev.simulate(MethodConfig::focusFull(), AccelConfig::focus());

    ASSERT_EQ(rep.batches.size(), 3u);
    for (const BatchRecord &b : rep.batches) {
        EXPECT_EQ(b.metrics.cycles, ref.cycles);
        EXPECT_EQ(b.metrics.stall_sec, ref.stall_sec);
        EXPECT_EQ(b.metrics.dram_act_read, ref.dram_act_read);
        EXPECT_EQ(b.metrics.dram_weights, ref.dram_weights);
        EXPECT_EQ(b.metrics.sfu_ops, ref.sfu_ops);
        EXPECT_EQ(b.metrics.sec_ops, ref.sec_ops);
        EXPECT_EQ(b.metrics.energy.total(), ref.energy.total());
        EXPECT_EQ(b.service_s, ref.seconds());
    }
    for (const RequestOutcome &o : rep.outcomes) {
        EXPECT_EQ(o.batch_size, 1);
        EXPECT_EQ(o.finish_s, o.start_s + ref.seconds());
    }
}

TEST(ServingSim, DeterministicAcrossThreadCounts)
{
    const QueueConfig q = smallOpenConfig(6);
    SchedulerConfig sched;
    sched.policy = BatchPolicy::Timeout;
    sched.max_batch = 3;
    sched.timeout_s = 30.0;

    ThreadPool p1(1), p4(4);
    ServingSimulator sim1(q, AccelConfig::focus(), smallEval());
    ServingSimulator sim4(q, AccelConfig::focus(), smallEval());
    const ServingReport r1 = sim1.run(sched, &p1);
    const ServingReport r4 = sim4.run(sched, &p4);

    ASSERT_EQ(r1.outcomes.size(), r4.outcomes.size());
    for (size_t i = 0; i < r1.outcomes.size(); ++i) {
        EXPECT_EQ(r1.outcomes[i].arrival_s, r4.outcomes[i].arrival_s);
        EXPECT_EQ(r1.outcomes[i].start_s, r4.outcomes[i].start_s);
        EXPECT_EQ(r1.outcomes[i].finish_s, r4.outcomes[i].finish_s);
        EXPECT_EQ(r1.outcomes[i].batch_id, r4.outcomes[i].batch_id);
    }
    ASSERT_EQ(r1.batches.size(), r4.batches.size());
    for (size_t b = 0; b < r1.batches.size(); ++b) {
        EXPECT_EQ(r1.batches[b].metrics.cycles,
                  r4.batches[b].metrics.cycles);
        EXPECT_EQ(r1.batches[b].service_s, r4.batches[b].service_s);
    }
    EXPECT_EQ(r1.throughput_rps, r4.throughput_rps);
    EXPECT_EQ(r1.latency.p99, r4.latency.p99);
}

TEST(ServingSim, ClosedLoopRespectsClientCausality)
{
    QueueConfig q = smallOpenConfig(8);
    q.process = ArrivalProcess::ClosedLoop;
    q.clients = 2;
    q.think_mean_s = 5.0;
    ServingSimulator sim(q, AccelConfig::focus(), smallEval());

    SchedulerConfig sched;
    sched.policy = BatchPolicy::Timeout;
    sched.max_batch = 2;
    const ServingReport rep = sim.run(sched);

    ASSERT_EQ(rep.outcomes.size(), 8u);
    for (const RequestOutcome &o : rep.outcomes) {
        EXPECT_GE(o.start_s, o.arrival_s);
        EXPECT_GT(o.finish_s, o.start_s);
    }
    // A client's next request is issued only after its previous one
    // finished (plus think time).
    for (size_t i = 0; i + 2 < rep.outcomes.size(); ++i) {
        EXPECT_GE(rep.outcomes[i + 2].arrival_s,
                  rep.outcomes[i].finish_s);
    }
    // Batches never overlap on the single accelerator.
    for (size_t b = 1; b < rep.batches.size(); ++b) {
        EXPECT_GE(rep.batches[b].start_s,
                  rep.batches[b - 1].start_s +
                      rep.batches[b - 1].service_s);
    }
}

TEST(ServingSim, ReportStatsAreConsistent)
{
    const QueueConfig q = smallOpenConfig(6);
    ServingSimulator sim(q, AccelConfig::focus(), smallEval());
    SchedulerConfig sched;
    sched.policy = BatchPolicy::Timeout;
    sched.max_batch = 3;
    sched.timeout_s = 30.0;
    const ServingReport rep = sim.run(sched);

    EXPECT_GT(rep.throughput_rps, 0.0);
    EXPECT_GT(rep.makespan_s, 0.0);
    EXPECT_LE(rep.latency.p50, rep.latency.p95);
    EXPECT_LE(rep.latency.p95, rep.latency.p99);
    EXPECT_LE(rep.latency.p99, rep.latency.max);
    EXPECT_GT(rep.mean_occupancy, 0.0);
    EXPECT_LE(rep.mean_occupancy, 1.0);
    for (const RequestOutcome &o : rep.outcomes) {
        EXPECT_EQ(o.slo_met,
                  o.latency_s() <=
                      q.mix[static_cast<size_t>(o.class_id)]
                          .slo_latency_s);
    }
    ASSERT_EQ(rep.classes.size(), q.mix.size());
    int total = 0;
    for (const ClassOutcome &c : rep.classes) {
        total += c.requests;
        EXPECT_GE(c.solo_latency_s, 0.0);
    }
    EXPECT_EQ(total, q.num_requests);
    // The dense class is its own dense reference: delta == 0.
    EXPECT_EQ(rep.classes[1].accuracyDelta(), 0.0);
}

TEST(ServingSim, EvaluatorSimulateBatchMatchesSeam)
{
    EvalOptions opts;
    opts.samples = 1;
    const Evaluator ev("Llava-Vid", "VideoMME", opts);

    // Singleton batch: bit-identical to the unbatched entry point.
    const RunMetrics solo =
        ev.simulate(MethodConfig::focusFull(), AccelConfig::focus());
    const RunMetrics batch1 = ev.simulateBatch(
        {MethodConfig::focusFull()}, AccelConfig::focus());
    EXPECT_EQ(batch1.cycles, solo.cycles);
    EXPECT_EQ(batch1.energy.total(), solo.energy.total());

    // Two-method batch: per-query quadratic terms sum (never
    // (r1+r2)^2), and shared-weight fusion plus DMA overlap make the
    // fused pass cheaper than back-to-back runs.
    const RunMetrics dense =
        ev.simulate(MethodConfig::dense(), AccelConfig::focus());
    const RunMetrics fused = ev.simulateBatch(
        {MethodConfig::focusFull(), MethodConfig::dense()},
        AccelConfig::focus());
    EXPECT_EQ(fused.sfu_ops, solo.sfu_ops + dense.sfu_ops);
    EXPECT_EQ(fused.sec_ops, solo.sec_ops + dense.sec_ops);
    EXPECT_LT(fused.cycles, solo.cycles + dense.cycles);
    EXPECT_LT(fused.dram_weights,
              solo.dram_weights + dense.dram_weights);
}

// ---- long-video profile roster ----

TEST(ServingWorkloads, LongVideoProfileDoublesFrameCount)
{
    const DatasetProfile lv = datasetProfile("MLVU-Long");
    int max_paper_frames = 0;
    int64_t max_paper_tokens = 0;
    for (const std::string &name : videoDatasetNames()) {
        const DatasetProfile p = datasetProfile(name);
        max_paper_frames = std::max(max_paper_frames, p.frames);
        max_paper_tokens =
            std::max(max_paper_tokens, p.full_visual_tokens);
    }
    EXPECT_GE(lv.frames, 2 * max_paper_frames);
    EXPECT_GE(lv.full_visual_tokens, 2 * max_paper_tokens);
    EXPECT_TRUE(lv.isVideo());
}

TEST(ServingWorkloads, ExtendedRosterRegistersLongVideo)
{
    const std::vector<std::string> ext = extendedVideoDatasetNames();
    for (const std::string &name : videoDatasetNames()) {
        EXPECT_NE(std::find(ext.begin(), ext.end(), name), ext.end());
    }
    EXPECT_NE(std::find(ext.begin(), ext.end(), "MLVU-Long"),
              ext.end());
    EXPECT_EQ(ext.size(), videoDatasetNames().size() + 1);
    // Every roster entry resolves to a profile.
    for (const std::string &name : ext) {
        EXPECT_FALSE(datasetProfile(name).name.empty());
    }
}

TEST(ServingWorkloads, StandardMixUsesHeavyTokenRegime)
{
    const std::vector<RequestClass> mix = standardServingMix();
    ASSERT_GE(mix.size(), 3u);
    bool has_long = false;
    for (const RequestClass &c : mix) {
        has_long = has_long || c.dataset == "MLVU-Long";
    }
    EXPECT_TRUE(has_long);
}

} // namespace
} // namespace focus