/**
 * @file
 * Tests for the Similarity Concentrator: gather semantics, map
 * correctness, scatter losslessness, tile-boundary behaviour, and
 * vector- vs token-granularity properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "focus/sic.h"
#include "tensor/ops.h"

namespace focus
{
namespace
{

/** Coordinates of a small FxHxW raster. */
std::vector<TokenCoord>
rasterCoords(int f, int h, int w)
{
    std::vector<TokenCoord> coords;
    for (int ff = 0; ff < f; ++ff) {
        for (int rr = 0; rr < h; ++rr) {
            for (int cc = 0; cc < w; ++cc) {
                coords.push_back(TokenCoord{ff, rr, cc});
            }
        }
    }
    return coords;
}

Tensor
randomActivations(Rng &rng, int64_t rows, int64_t cols)
{
    Tensor t(rows, cols);
    for (int64_t i = 0; i < t.numel(); ++i) {
        t.data()[i] = static_cast<float>(rng.gaussian());
    }
    return t;
}

TEST(SicGather, IdenticalNeighboursDeduplicate)
{
    // Two frames of 2x2, all tokens identical: every token whose
    // block has an in-tile predecessor should match.
    const auto coords = rasterCoords(2, 2, 2);
    Tensor x(8, 32);
    for (int64_t i = 0; i < 8; ++i) {
        for (int64_t j = 0; j < 32; ++j) {
            x(i, j) = static_cast<float>(j) * 0.1f + 1.0f;
        }
    }
    SicConfig cfg;
    const SicResult res = sicGather(x, coords, cfg);
    // Only token (0,0,0) has no predecessor: 1 unique vector.
    EXPECT_EQ(res.unique_vectors, 1);
    EXPECT_EQ(res.total_vectors, 8);
}

TEST(SicGather, OrthogonalRowsAllUnique)
{
    const auto coords = rasterCoords(2, 2, 2);
    Tensor x(8, 32);
    for (int64_t i = 0; i < 8; ++i) {
        x(i, i * 4) = 1.0f; // mutually orthogonal
    }
    SicConfig cfg;
    const SicResult res = sicGather(x, coords, cfg);
    EXPECT_EQ(res.unique_vectors, 8);
    EXPECT_DOUBLE_EQ(res.uniqueFrac(), 1.0);
}

TEST(SicGather, MatchedRowsGetRepresentativeValues)
{
    const auto coords = rasterCoords(1, 1, 2);
    Tensor x(2, 32);
    for (int64_t j = 0; j < 32; ++j) {
        x(0, j) = static_cast<float>(j + 1);
        x(1, j) = static_cast<float>(j + 1) * 1.02f; // cosine ~1
    }
    SicConfig cfg;
    cfg.block_f = 1;
    cfg.block_h = 1;
    cfg.block_w = 2;
    const SicResult res = sicGather(x, coords, cfg);
    EXPECT_EQ(res.unique_vectors, 1);
    for (int64_t j = 0; j < 32; ++j) {
        EXPECT_EQ(x(1, j), x(0, j)); // replaced by representative
    }
}

TEST(SicGather, ThresholdControlsMatching)
{
    const auto coords = rasterCoords(1, 1, 2);
    Tensor x(2, 32);
    for (int64_t j = 0; j < 32; ++j) {
        x(0, j) = 1.0f;
        x(1, j) = 1.0f;
    }
    x(1, 0) = -3.0f; // decorrelate (cos ~ 0.78)
    SicConfig strict;
    strict.block_f = 1;
    strict.block_h = 1;
    strict.block_w = 2;
    Tensor x1 = x;
    EXPECT_EQ(sicGather(x1, coords, strict).unique_vectors, 2);

    SicConfig loose = strict;
    loose.threshold = 0.3f;
    Tensor x2 = x;
    EXPECT_EQ(sicGather(x2, coords, loose).unique_vectors, 1);
}

TEST(SicGather, TextRowsNeverMatch)
{
    std::vector<TokenCoord> coords = {TokenCoord{0, 0, 0},
                                      TokenCoord{-1, 0, 0},
                                      TokenCoord{-1, 0, 0}};
    Tensor x(3, 32);
    for (int64_t i = 0; i < 3; ++i) {
        for (int64_t j = 0; j < 32; ++j) {
            x(i, j) = 1.0f;
        }
    }
    SicConfig cfg;
    const SicResult res = sicGather(x, coords, cfg);
    EXPECT_EQ(res.unique_vectors, 3);
}

TEST(SicGather, TileBoundaryBlocksMatching)
{
    // Identical adjacent tokens, but a 1-row tile: no comparisons
    // can happen (the Fig. 10(a) boundary effect taken to the
    // extreme).
    const auto coords = rasterCoords(1, 1, 4);
    Tensor x(4, 32);
    for (int64_t i = 0; i < 4; ++i) {
        for (int64_t j = 0; j < 32; ++j) {
            x(i, j) = 1.0f;
        }
    }
    SicConfig cfg;
    cfg.block_f = 1;
    cfg.block_h = 1;
    cfg.block_w = 2;
    cfg.m_tile = 1;
    EXPECT_EQ(sicGather(x, coords, cfg).unique_vectors, 4);

    cfg.m_tile = 4;
    Tensor x2 = x;
    for (int64_t i = 0; i < 4; ++i) {
        for (int64_t j = 0; j < 32; ++j) {
            x2(i, j) = 1.0f;
        }
    }
    EXPECT_EQ(sicGather(x2, coords, cfg).unique_vectors, 1);
}

TEST(SicGather, SmallerTilesNeverIncreaseMatching)
{
    Rng rng(42);
    const auto coords = rasterCoords(2, 4, 4);
    Tensor base = randomActivations(rng, 32, 64);
    // Correlate neighbours so matches exist.
    for (int64_t i = 1; i < 32; ++i) {
        for (int64_t j = 0; j < 64; ++j) {
            base(i, j) = 0.9f * base(i - 1, j) + 0.1f * base(i, j);
        }
    }
    SicConfig cfg;
    int64_t prev_unique = -1;
    for (int64_t tile : {32, 16, 8, 4}) {
        cfg.m_tile = tile;
        Tensor x = base;
        const SicResult res = sicGather(x, coords, cfg);
        if (prev_unique >= 0) {
            EXPECT_GE(res.unique_vectors, prev_unique)
                << "tile " << tile;
        }
        prev_unique = res.unique_vectors;
    }
}

TEST(SicGather, VectorWiseFindsAtLeastTokenWise)
{
    // Property (Fig. 2(c)): vector granularity removes at least as
    // many vectors (fractionally) as token granularity.
    Rng rng(7);
    const auto coords = rasterCoords(2, 5, 5);
    Tensor base = randomActivations(rng, 50, 64);
    for (int64_t i = 25; i < 50; ++i) {
        // Second frame resembles the first with partial-slice noise.
        for (int64_t j = 0; j < 64; ++j) {
            base(i, j) = base(i - 25, j);
        }
        for (int64_t j = 0; j < 16; ++j) {
            base(i, j) += static_cast<float>(rng.gaussian(0.0, 2.0));
        }
    }
    SicConfig vec_cfg;
    Tensor xv = base;
    const double vec_frac =
        sicGather(xv, coords, vec_cfg).uniqueFrac();

    SicConfig tok_cfg;
    tok_cfg.token_wise = true;
    Tensor xt = base;
    const double tok_frac =
        sicGather(xt, coords, tok_cfg).uniqueFrac();

    EXPECT_LE(vec_frac, tok_frac + 1e-9);
}

TEST(SicGather, MapsAreConsistent)
{
    Rng rng(11);
    const auto coords = rasterCoords(2, 4, 4);
    Tensor x = randomActivations(rng, 32, 64);
    for (int64_t i = 16; i < 32; ++i) {
        for (int64_t j = 0; j < 64; ++j) {
            x(i, j) = x(i - 16, j) * 1.01f;
        }
    }
    SicConfig cfg;
    const SicResult res = sicGather(x, coords, cfg);
    for (const SliceMap &map : res.maps) {
        ASSERT_EQ(static_cast<int64_t>(map.compact_index.size()),
                  map.rows);
        for (int64_t i = 0; i < map.rows; ++i) {
            const int32_t ci =
                map.compact_index[static_cast<size_t>(i)];
            EXPECT_GE(ci, 0);
            EXPECT_LT(ci, map.unique);
        }
        // Compact indices appear in ascending first-use order.
        int32_t next = 0;
        for (int64_t i = 0; i < map.rows; ++i) {
            const int32_t ci =
                map.compact_index[static_cast<size_t>(i)];
            if (ci == next) {
                ++next;
            } else {
                EXPECT_LT(ci, next);
            }
        }
        EXPECT_EQ(next, map.unique);
    }
}

TEST(SicScatter, RoundTripIsLossless)
{
    Rng rng(13);
    const auto coords = rasterCoords(2, 4, 4);
    Tensor x = randomActivations(rng, 32, 64);
    for (int64_t i = 16; i < 32; ++i) {
        for (int64_t j = 0; j < 64; ++j) {
            x(i, j) = x(i - 16, j);
        }
    }
    SicConfig cfg;
    const SicResult res = sicGather(x, coords, cfg);
    ASSERT_LT(res.unique_vectors, res.total_vectors);

    const std::vector<Tensor> compact = sicCompactBuffers(x, res);
    const Tensor rebuilt = sicScatter(res, compact, 32, 64);
    EXPECT_LT(maxAbsDiff(rebuilt, x), 1e-9);
}

TEST(SicGather, BlockExtentWidensMatching)
{
    // A token similar to its (f-1) neighbour two frames back is only
    // matched when the temporal block extent covers it.
    Rng rng(17);
    const auto coords = rasterCoords(3, 2, 2);
    Tensor base = randomActivations(rng, 12, 32);
    // Frame 2 equals frame 0 but differs from frame 1.
    for (int64_t i = 8; i < 12; ++i) {
        for (int64_t j = 0; j < 32; ++j) {
            base(i, j) = base(i - 8, j);
        }
    }
    SicConfig small;
    small.block_f = 2;
    Tensor x1 = base;
    const int64_t u2 = sicGather(x1, coords, small).unique_vectors;

    SicConfig big = small;
    big.block_f = 3;
    Tensor x2 = base;
    const int64_t u3 = sicGather(x2, coords, big).unique_vectors;
    EXPECT_LE(u3, u2);
    EXPECT_LT(u3, 12);
}

TEST(SicGather, UniqueFracStatsMatchCounts)
{
    Rng rng(19);
    const auto coords = rasterCoords(2, 3, 3);
    Tensor x = randomActivations(rng, 18, 64);
    SicConfig cfg;
    const SicResult res = sicGather(x, coords, cfg);
    double total = 0.0;
    for (const SliceMap &m : res.maps) {
        total += static_cast<double>(m.unique);
    }
    EXPECT_DOUBLE_EQ(total,
                     static_cast<double>(res.unique_vectors));
    EXPECT_EQ(res.maps.size(), res.tile_slice_unique_frac.size());
}

} // namespace
} // namespace focus
