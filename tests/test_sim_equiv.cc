/**
 * @file
 * Dual-backend equivalence harness for the cycle models: the `fast`
 * closed-form backend must reproduce the `walk` reference bit for bit
 * — cycles, stalls, op counters, DRAM bytes, tile lengths, sampler
 * state — over randomized and degenerate GEMM shapes, every
 * architecture, empty and non-empty psi distributions, and whole
 * traces (including fused batches and the memoization path), at 1 and
 * 4 threads.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "runtime/thread_pool.h"
#include "sim/accel_model.h"
#include "sim/systolic.h"
#include "sim/trace.h"

namespace focus
{
namespace
{

/** Restore the active sim backend when a test scope exits. */
class BackendGuard
{
  public:
    BackendGuard() : saved_(activeSimBackend()) {}
    ~BackendGuard() { setSimBackend(saved_); }

  private:
    SimBackend saved_;
};

void
expectTimingEq(const GemmTiming &w, const GemmTiming &f,
               const char *what)
{
    EXPECT_EQ(w.cycles, f.cycles) << what;
    EXPECT_EQ(w.stall_scatter, f.stall_scatter) << what;
    EXPECT_EQ(w.stall_matcher, f.stall_matcher) << what;
    // Op counters are integer-valued doubles; equality must be exact,
    // not approximate — that is the contract the closed forms claim.
    EXPECT_EQ(w.mac_ops, f.mac_ops) << what;
    EXPECT_EQ(w.scatter_ops, f.scatter_ops) << what;
    EXPECT_EQ(w.matcher_ops, f.matcher_ops) << what;
    ASSERT_EQ(w.tile_lengths.size(), f.tile_lengths.size()) << what;
    for (size_t i = 0; i < w.tile_lengths.size(); ++i) {
        ASSERT_EQ(w.tile_lengths[i], f.tile_lengths[i])
            << what << " tile_lengths[" << i << "]";
    }
}

/**
 * Run one shape through both backends with independently-seeded
 * samplers over the same distribution and assert bit-identical
 * results plus identical final sampler cursors.
 */
void
checkShape(const AccelConfig &cfg, int64_t m, int64_t k, int64_t n,
           const std::vector<double> *dist, double mean,
           bool sic_input, bool gather_out)
{
    FracSampler psi_w(dist, mean);
    FracSampler psi_f(dist, mean);
    const GemmTiming w =
        timeGemmWalk(cfg, m, k, n, psi_w, sic_input, gather_out);
    const GemmTiming f =
        timeGemmFast(cfg, m, k, n, psi_f, sic_input, gather_out);
    char what[128];
    std::snprintf(what, sizeof(what),
                  "m=%lld k=%lld n=%lld sic=%d gather=%d dist=%zu",
                  static_cast<long long>(m), static_cast<long long>(k),
                  static_cast<long long>(n), sic_input ? 1 : 0,
                  gather_out ? 1 : 0, dist != nullptr ? dist->size() : 0);
    expectTimingEq(w, f, what);
    EXPECT_EQ(psi_w.cursor(), psi_f.cursor()) << what;
}

std::vector<AccelConfig>
allArchConfigs()
{
    return {AccelConfig::systolicArray(), AccelConfig::adaptiv(),
            AccelConfig::cmc(), AccelConfig::focus()};
}

TEST(SimEquiv, DegenerateAndEdgeShapes)
{
    // Degenerate dims, exact tile multiples, primes straddling the
    // array/tile sizes, and k spanning many sub-tiles.
    const int64_t dims[] = {0,  1,  7,   31,   32,   33,
                            64, 97, 255, 1024, 1025, 3584};
    const std::vector<double> fracs = {0.0,  0.25, 0.5, 0.75,
                                       1.25, -0.5, 1.0};
    for (const AccelConfig &cfg : allArchConfigs()) {
        for (int64_t m : dims) {
            for (int64_t k : {int64_t{0}, int64_t{1}, int64_t{33},
                              int64_t{3584}}) {
                for (int64_t n : {int64_t{0}, int64_t{32},
                                  int64_t{97}}) {
                    checkShape(cfg, m, k, n, nullptr, 1.0, false,
                               false);
                    checkShape(cfg, m, k, n, nullptr, 0.4, true,
                               false);
                    checkShape(cfg, m, k, n, &fracs, 1.0, true, true);
                }
            }
        }
    }
}

TEST(SimEquiv, RandomizedShapeSweep)
{
    std::mt19937 rng(20260807u);
    std::uniform_int_distribution<int64_t> dim(1, 4096);
    std::uniform_real_distribution<double> frac(-0.2, 1.4);
    std::uniform_int_distribution<int> dist_len(1, 96);
    std::uniform_int_distribution<int> coin(0, 1);
    const std::vector<AccelConfig> archs = allArchConfigs();
    for (int it = 0; it < 60; ++it) {
        const AccelConfig &cfg = archs[static_cast<size_t>(it) %
                                       archs.size()];
        std::vector<double> fracs(
            static_cast<size_t>(dist_len(rng)));
        for (double &v : fracs) {
            v = frac(rng);
        }
        const bool sic = coin(rng) == 1;
        const bool gather = coin(rng) == 1;
        const bool empirical = coin(rng) == 1;
        checkShape(cfg, dim(rng), dim(rng), dim(rng),
                   empirical ? &fracs : nullptr, frac(rng), sic,
                   gather);
    }
}

TEST(SimEquiv, SamplerCursorContinuesAcrossCalls)
{
    // A shared sampler must end up in the same state after a sequence
    // of mixed dense/SIC GEMMs on either backend (the sampler-order
    // invariant memoization relies on).
    const AccelConfig cfg = AccelConfig::focus();
    const std::vector<double> fracs = {0.1, 0.9, 0.4, 0.7, 0.2,
                                       0.6, 0.3};
    FracSampler psi_w(&fracs, 1.0);
    FracSampler psi_f(&fracs, 1.0);
    const struct
    {
        int64_t m, k, n;
        bool sic;
    } seq[] = {{100, 64, 96, true},
               {50, 32, 32, false},
               {1025, 3584, 33, true},
               {7, 7, 7, true}};
    for (const auto &s : seq) {
        const GemmTiming w =
            timeGemmWalk(cfg, s.m, s.k, s.n, psi_w, s.sic, false);
        const GemmTiming f =
            timeGemmFast(cfg, s.m, s.k, s.n, psi_f, s.sic, false);
        expectTimingEq(w, f, "sequence step");
        ASSERT_EQ(psi_w.cursor(), psi_f.cursor());
    }
}

TEST(SimEquiv, DrawCountMatchesWalkConsumption)
{
    const AccelConfig cfg = AccelConfig::focus();
    const std::vector<double> fracs(13, 0.5);
    const int64_t shapes[][3] = {{1, 1, 1},      {1024, 3584, 3584},
                                 {1025, 33, 97}, {0, 64, 64},
                                 {64, 0, 64},    {31, 4096, 1}};
    for (const auto &s : shapes) {
        FracSampler psi(&fracs, 1.0);
        timeGemmWalk(cfg, s[0], s[1], s[2], psi, true, false);
        const uint64_t draws = timeGemmDraws(cfg, s[0], s[1], s[2]);
        EXPECT_EQ(psi.cursor(), draws % fracs.size())
            << s[0] << "x" << s[1] << "x" << s[2];
    }
}

// ---------------------------------------------------------------
// Whole-trace equivalence through simulateAccelerator
// ---------------------------------------------------------------

FunctionalAggregate
flatAggregate(int layers, double keep, double psi)
{
    FunctionalAggregate agg;
    agg.reduced_layers = layers;
    agg.keep_in.assign(static_cast<size_t>(layers), keep);
    agg.keep_out.assign(static_cast<size_t>(layers), keep);
    agg.psi_qkv.assign(static_cast<size_t>(layers), psi);
    agg.psi_oproj.assign(static_cast<size_t>(layers), psi);
    agg.psi_ffn.assign(static_cast<size_t>(layers), psi);
    agg.psi_down.assign(static_cast<size_t>(layers), psi);
    return agg;
}

void
expectRunEq(const RunMetrics &w, const RunMetrics &f)
{
    EXPECT_EQ(w.cycles, f.cycles);
    EXPECT_EQ(w.stall_scatter, f.stall_scatter);
    EXPECT_EQ(w.stall_matcher, f.stall_matcher);
    EXPECT_EQ(w.stall_sec, f.stall_sec);
    EXPECT_EQ(w.mac_ops, f.mac_ops);
    EXPECT_EQ(w.scatter_ops, f.scatter_ops);
    EXPECT_EQ(w.matcher_ops, f.matcher_ops);
    EXPECT_EQ(w.sec_ops, f.sec_ops);
    EXPECT_EQ(w.sfu_ops, f.sfu_ops);
    EXPECT_EQ(w.merge_ops, f.merge_ops);
    EXPECT_EQ(w.dram_act_read, f.dram_act_read);
    EXPECT_EQ(w.dram_act_write, f.dram_act_write);
    EXPECT_EQ(w.dram_weights, f.dram_weights);
    EXPECT_EQ(w.dram_maps, f.dram_maps);
    EXPECT_EQ(w.dram_codec_extra, f.dram_codec_extra);
    EXPECT_EQ(w.ib_bytes, f.ib_bytes);
    EXPECT_EQ(w.wb_bytes, f.wb_bytes);
    EXPECT_EQ(w.ob_bytes, f.ob_bytes);
    EXPECT_EQ(w.utilization, f.utilization);
    EXPECT_EQ(w.mean_input_frac, f.mean_input_frac);
    EXPECT_EQ(w.energy.total(), f.energy.total());
    ASSERT_EQ(w.tile_lengths.size(), f.tile_lengths.size());
    for (size_t i = 0; i < w.tile_lengths.size(); ++i) {
        ASSERT_EQ(w.tile_lengths[i], f.tile_lengths[i])
            << "tile_lengths[" << i << "]";
    }
}

void
checkTrace(const AccelConfig &cfg, const WorkloadTrace &trace)
{
    BackendGuard guard;
    setSimBackend(SimBackend::Walk);
    const RunMetrics w = simulateAccelerator(cfg, trace);
    setSimBackend(SimBackend::Fast);
    const RunMetrics f = simulateAccelerator(cfg, trace);
    expectRunEq(w, f);
}

class SimEquivThreads : public ::testing::TestWithParam<int>
{
  protected:
    void SetUp() override { ThreadPool::setGlobalThreads(GetParam()); }
    void TearDown() override { ThreadPool::setGlobalThreads(0); }
};

TEST_P(SimEquivThreads, TraceEquivalenceAllArchitectures)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    const WorkloadTrace dense = buildDenseTrace(mp, dp);
    WorkloadTrace fo = buildTrace(mp, dp, MethodConfig::focusFull(),
                                  flatAggregate(mp.layers, 1.0, 0.5));
    const WorkloadTrace cmc =
        buildTrace(mp, dp, MethodConfig::cmcBaseline(),
                   flatAggregate(mp.layers, 0.53, 1.0));

    checkTrace(AccelConfig::systolicArray(), dense);
    checkTrace(AccelConfig::adaptiv(), dense);
    checkTrace(AccelConfig::cmc(), cmc);

    // Empty tile_fracs: SIC GEMMs fall back to the mean-backed
    // sampler (closed-form fast path).
    fo.tile_fracs.clear();
    checkTrace(AccelConfig::focus(), fo);

    // Non-empty distributions, sized to leave the round-robin cursor
    // misaligned between repeats (7) and aligned often (64) — both
    // memoization-key regimes.
    fo.tile_fracs = {0.12, 0.93, 0.47, 0.71, 0.25, 0.66, 0.38};
    checkTrace(AccelConfig::focus(), fo);
    fo.tile_fracs.assign(64, 0.0);
    for (size_t i = 0; i < fo.tile_fracs.size(); ++i) {
        fo.tile_fracs[i] =
            0.05 + 0.9 * static_cast<double>(i) / 63.0;
    }
    checkTrace(AccelConfig::focus(), fo);
}

TEST_P(SimEquivThreads, FusedTraceEquivalence)
{
    const ModelProfile mp = modelProfile("Llava-Vid");
    const DatasetProfile dp = datasetProfile("VideoMME");
    WorkloadTrace a = buildTrace(mp, dp, MethodConfig::focusFull(),
                                 flatAggregate(mp.layers, 1.0, 0.5));
    WorkloadTrace b = buildTrace(mp, dp, MethodConfig::focusFull(),
                                 flatAggregate(mp.layers, 0.8, 0.6));
    a.tile_fracs = {0.2, 0.8, 0.5};
    b.tile_fracs = {0.4, 0.9};
    const WorkloadTrace fused = fuseTraces({&a, &b});
    checkTrace(AccelConfig::focus(), fused);
}

INSTANTIATE_TEST_SUITE_P(Threads, SimEquivThreads,
                         ::testing::Values(1, 4));

} // namespace
} // namespace focus
