/**
 * @file
 * Tests for the systolic-array cycle model: dense timing formula,
 * concentrated-input savings, scatter/matcher stalls, SEC overlap.
 */

#include <gtest/gtest.h>

#include "sim/systolic.h"

namespace focus
{
namespace
{

FracSampler
constSampler(double v)
{
    return FracSampler(nullptr, v);
}

TEST(Systolic, DenseCycleFormula)
{
    // One tile, m=1024, K=3584, N=32 on a 32x32 array:
    // b (first load) + K/b subtiles * (m + fill).
    AccelConfig cfg = AccelConfig::systolicArray();
    FracSampler psi = constSampler(1.0);
    const GemmTiming t = timeGemm(cfg, 1024, 3584, 32, psi, false,
                                  false);
    const uint64_t fill = 31 + 31;
    const uint64_t expect = 32 + 112 * (1024 + fill);
    EXPECT_EQ(t.cycles, expect);
    EXPECT_DOUBLE_EQ(t.mac_ops, 1024.0 * 3584 * 32);
}

TEST(Systolic, PaperAsymptoticCostKOverBTimesM)
{
    // Sec. VI-A: GEMM takes K/b * m cycles per tile, far exceeding
    // the 8m matcher cost for K = 3584.
    AccelConfig cfg = AccelConfig::focus();
    FracSampler psi = constSampler(1.0);
    const GemmTiming t = timeGemm(cfg, 1024, 3584, 32, psi, false,
                                  false);
    const double asym = 3584.0 / 32 * 1024;
    EXPECT_NEAR(static_cast<double>(t.cycles), asym, 0.1 * asym);
}

TEST(Systolic, ConcentratedInputReducesCycles)
{
    AccelConfig cfg = AccelConfig::focus();
    FracSampler dense = constSampler(1.0);
    FracSampler half = constSampler(0.5);
    const GemmTiming td =
        timeGemm(cfg, 1024, 3584, 3584, dense, false, false);
    const GemmTiming th =
        timeGemm(cfg, 1024, 3584, 3584, half, true, false);
    EXPECT_LT(th.cycles, td.cycles);
    EXPECT_NEAR(static_cast<double>(th.cycles),
                0.5 * static_cast<double>(td.cycles),
                0.2 * static_cast<double>(td.cycles));
    EXPECT_FALSE(th.tile_lengths.empty());
}

TEST(Systolic, ScatterStallsWithFewAccumulators)
{
    AccelConfig cfg = AccelConfig::focus();
    cfg.scatter_accumulators = 8; // tiny
    FracSampler psi = constSampler(0.3);
    const GemmTiming t =
        timeGemm(cfg, 1024, 3584, 32, psi, true, false);
    EXPECT_GT(t.stall_scatter, 0u);

    AccelConfig wide = AccelConfig::focus();
    wide.scatter_accumulators = 160;
    FracSampler psi2 = constSampler(0.3);
    const GemmTiming t2 =
        timeGemm(wide, 1024, 3584, 32, psi2, true, false);
    EXPECT_LT(t2.cycles, t.cycles);
}

TEST(Systolic, AccumulatorSweepMatchesFig10d)
{
    // At the paper's operating concentration (~psi 0.6), 64
    // accumulators are within a few percent of 160 while 32 stall
    // roughly 1.5x (Fig. 10(d)).
    AccelConfig cfg = AccelConfig::focus();
    FracSampler p64 = constSampler(0.6);
    cfg.scatter_accumulators = 64;
    const uint64_t c64 =
        timeGemm(cfg, 1024, 3584, 3584, p64, true, false).cycles;
    cfg.scatter_accumulators = 160;
    FracSampler p160 = constSampler(0.6);
    const uint64_t c160 =
        timeGemm(cfg, 1024, 3584, 3584, p160, true, false).cycles;
    cfg.scatter_accumulators = 32;
    FracSampler p32 = constSampler(0.6);
    const uint64_t c32 =
        timeGemm(cfg, 1024, 3584, 3584, p32, true, false).cycles;
    EXPECT_LE(static_cast<double>(c64),
              1.08 * static_cast<double>(c160));
    EXPECT_GT(static_cast<double>(c32),
              1.30 * static_cast<double>(c160));
    EXPECT_LT(static_cast<double>(c32),
              1.80 * static_cast<double>(c160));
}

TEST(Systolic, MatcherOffCriticalPathForLargeK)
{
    // K = 3584 >> 256: gather adds no stall (Sec. VI-A).
    AccelConfig cfg = AccelConfig::focus();
    FracSampler psi = constSampler(1.0);
    const GemmTiming t =
        timeGemm(cfg, 1024, 3584, 32, psi, false, true);
    EXPECT_EQ(t.stall_matcher, 0u);
}

TEST(Systolic, MatcherStallsForSmallK)
{
    // K = 128 < 256: the paper's corner case; a single matcher
    // stalls, extra matchers recover.
    AccelConfig cfg = AccelConfig::focus();
    cfg.sic_matchers = 1;
    FracSampler psi = constSampler(1.0);
    const GemmTiming t1 =
        timeGemm(cfg, 1024, 128, 32, psi, false, true);
    EXPECT_GT(t1.stall_matcher, 0u);

    cfg.sic_matchers = 4;
    FracSampler psi2 = constSampler(1.0);
    const GemmTiming t4 =
        timeGemm(cfg, 1024, 128, 32, psi2, false, true);
    EXPECT_LT(t4.stall_matcher, t1.stall_matcher);
}

TEST(Systolic, UtilizationBounded)
{
    AccelConfig cfg = AccelConfig::focus();
    FracSampler psi = constSampler(0.8);
    const GemmTiming t =
        timeGemm(cfg, 4096, 3584, 3584, psi, true, true);
    EXPECT_GT(t.utilization(cfg), 0.0);
    EXPECT_LE(t.utilization(cfg), 1.0);
}

TEST(Systolic, EmpiricalDistributionSampled)
{
    AccelConfig cfg = AccelConfig::focus();
    std::vector<double> fracs = {0.25, 0.75};
    FracSampler psi(&fracs, 1.0);
    const GemmTiming t =
        timeGemm(cfg, 2048, 64, 32, psi, true, false);
    // Two m-tiles x two k-subtiles alternate 0.25/0.75 of 1024.
    ASSERT_EQ(t.tile_lengths.size(), 4u);
    EXPECT_EQ(t.tile_lengths[0], 256);
    EXPECT_EQ(t.tile_lengths[1], 768);
}

TEST(Systolic, SecSorterOverlappedAtPaperDims)
{
    // M = 6272, T = 109, h = 128, n = 28 heads, k = 2509 (40%):
    // the sorter hides fully behind image-query attention.
    AccelConfig cfg = AccelConfig::focus();
    EXPECT_EQ(secSorterStall(cfg, 6272, 109, 128, 28, 2509), 0u);
}

TEST(Systolic, SecSorterStallsForDegenerateDims)
{
    // Tiny head dim and single head: sorting cannot hide.
    AccelConfig cfg = AccelConfig::focus();
    EXPECT_GT(secSorterStall(cfg, 6272, 4, 1, 1, 6000), 0u);
}

TEST(Systolic, ZeroDimsAreNoop)
{
    AccelConfig cfg = AccelConfig::focus();
    FracSampler psi = constSampler(1.0);
    const GemmTiming t = timeGemm(cfg, 0, 128, 32, psi, false, false);
    EXPECT_EQ(t.cycles, 0u);
    EXPECT_EQ(secSorterStall(cfg, 100, 8, 64, 8, 0), 0u);
}

} // namespace
} // namespace focus
