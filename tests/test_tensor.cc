/**
 * @file
 * Unit tests for the tensor substrate: Tensor, GEMM, softmax,
 * RMSNorm, similarity kernels, INT8 quantization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace focus
{
namespace
{

Tensor
randomTensor(Rng &rng, int64_t r, int64_t c, double scale = 1.0)
{
    Tensor t(r, c);
    for (int64_t i = 0; i < t.numel(); ++i) {
        t.data()[i] = static_cast<float>(rng.gaussian(0.0, scale));
    }
    return t;
}

TEST(Tensor, ShapeAndIndexing)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 4);
    t(2, 3) = 7.0f;
    EXPECT_EQ(t.row(2)[3], 7.0f);
    EXPECT_EQ(t.numel(), 12);
}

TEST(Tensor, Rank3Indexing)
{
    Tensor t(2, 3, 4);
    t(1, 2, 3) = 5.0f;
    EXPECT_EQ(t(1, 2, 3), 5.0f);
    EXPECT_EQ(t.numel(), 24);
}

TEST(Tensor, Reshape)
{
    Tensor t(2, 6);
    t(1, 5) = 9.0f;
    Tensor r = t.reshaped({3, 4});
    EXPECT_EQ(r.rows(), 3);
    EXPECT_EQ(r(2, 3), 9.0f);
}

TEST(Tensor, SliceRows)
{
    Tensor t(4, 2);
    for (int64_t i = 0; i < 4; ++i) {
        t(i, 0) = static_cast<float>(i);
    }
    Tensor s = t.sliceRows(1, 3);
    EXPECT_EQ(s.rows(), 2);
    EXPECT_EQ(s(0, 0), 1.0f);
    EXPECT_EQ(s(1, 0), 2.0f);
}

TEST(Tensor, Fp16RoundingChangesPrecision)
{
    Tensor t(1, 1);
    t(0, 0) = 1.0001f;
    t.roundToFp16();
    EXPECT_NE(t(0, 0), 1.0001f);
    EXPECT_NEAR(t(0, 0), 1.0f, 1e-3);
}

TEST(Gemm, MatchesNaiveReference)
{
    Rng rng(3);
    const Tensor a = randomTensor(rng, 7, 5);
    const Tensor b = randomTensor(rng, 5, 9);
    Tensor c;
    gemm(a, b, c);
    for (int64_t i = 0; i < 7; ++i) {
        for (int64_t j = 0; j < 9; ++j) {
            float ref = 0.0f;
            for (int64_t k = 0; k < 5; ++k) {
                ref += a(i, k) * b(k, j);
            }
            EXPECT_NEAR(c(i, j), ref, 1e-4);
        }
    }
}

TEST(Gemm, IdentityIsNoop)
{
    Rng rng(4);
    const Tensor a = randomTensor(rng, 6, 6);
    Tensor eye(6, 6);
    for (int64_t i = 0; i < 6; ++i) {
        eye(i, i) = 1.0f;
    }
    Tensor c;
    gemm(a, eye, c);
    EXPECT_LT(maxAbsDiff(a, c), 1e-6);
}

TEST(Gemm, TransBMatchesExplicitTranspose)
{
    Rng rng(5);
    const Tensor a = randomTensor(rng, 4, 8);
    const Tensor b = randomTensor(rng, 6, 8); // (N x K)
    Tensor bt(8, 6);
    for (int64_t i = 0; i < 6; ++i) {
        for (int64_t j = 0; j < 8; ++j) {
            bt(j, i) = b(i, j);
        }
    }
    Tensor c1, c2;
    gemmTransB(a, b, c1);
    gemm(a, bt, c2);
    EXPECT_LT(maxAbsDiff(c1, c2), 1e-4);
}

TEST(Softmax, RowsSumToOne)
{
    Rng rng(6);
    Tensor t = randomTensor(rng, 5, 11, 3.0);
    softmaxRows(t);
    for (int64_t i = 0; i < 5; ++i) {
        float sum = 0.0f;
        for (int64_t j = 0; j < 11; ++j) {
            EXPECT_GE(t(i, j), 0.0f);
            sum += t(i, j);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(Softmax, StableUnderLargeLogits)
{
    Tensor t(1, 3);
    t(0, 0) = 1000.0f;
    t(0, 1) = 999.0f;
    t(0, 2) = -1000.0f;
    softmaxRows(t);
    EXPECT_FALSE(std::isnan(t(0, 0)));
    EXPECT_GT(t(0, 0), t(0, 1));
    EXPECT_NEAR(t(0, 2), 0.0f, 1e-6);
}

TEST(Softmax, MaskedEntriesGetZero)
{
    Tensor t(1, 4);
    Tensor mask(1, 4);
    mask(0, 3) = -1e30f;
    softmaxRowsMasked(t, mask);
    EXPECT_NEAR(t(0, 3), 0.0f, 1e-6);
    EXPECT_NEAR(t(0, 0), 1.0f / 3.0f, 1e-5);
}

TEST(Softmax, ZeroColumnTensorIsNoop)
{
    // Historical bug: the row loop read row[0] of an empty row.
    Tensor t(3, 0);
    softmaxRows(t);
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.numel(), 0);
}

TEST(Softmax, ZeroRowTensorIsNoop)
{
    Tensor t(0, 7);
    softmaxRows(t);
    EXPECT_EQ(t.rows(), 0);
}

TEST(Softmax, SingleColumnRowsBecomeOne)
{
    Tensor t(3, 1);
    t(0, 0) = -50.0f;
    t(1, 0) = 0.0f;
    t(2, 0) = 1234.0f;
    softmaxRows(t);
    for (int64_t i = 0; i < 3; ++i) {
        EXPECT_EQ(t(i, 0), 1.0f);
    }
}

TEST(Softmax, MaskedValidatesRankBeforeMutating)
{
    // Rank must be rejected up front — historically the panic fired
    // inside softmaxRows only after the mask had been added.
    Tensor t(2, 3, 4);
    Tensor mask(2, 3, 4);
    EXPECT_DEATH(softmaxRowsMasked(t, mask), "rank-2");
}

TEST(Softmax, AllMaskedRowPropagatesNaN)
{
    constexpr float ninf = -std::numeric_limits<float>::infinity();
    Tensor t(2, 3);
    Tensor mask(2, 3);
    for (int64_t j = 0; j < 3; ++j) {
        mask(0, j) = ninf; // row 0: everything masked
    }
    softmaxRowsMasked(t, mask);
    for (int64_t j = 0; j < 3; ++j) {
        // -inf - (-inf) = NaN must propagate, not silently become a
        // uniform (or garbage) distribution.
        EXPECT_TRUE(std::isnan(t(0, j))) << "col " << j;
        EXPECT_NEAR(t(1, j), 1.0f / 3.0f, 1e-5);
    }
}

TEST(RmsNorm, UnitRmsAfterNorm)
{
    Rng rng(7);
    Tensor t = randomTensor(rng, 4, 64, 5.0);
    Tensor gain;
    rmsNormRows(t, gain);
    for (int64_t i = 0; i < 4; ++i) {
        float ms = 0.0f;
        for (int64_t j = 0; j < 64; ++j) {
            ms += t(i, j) * t(i, j);
        }
        EXPECT_NEAR(ms / 64.0f, 1.0f, 1e-3);
    }
}

TEST(RmsNorm, GainApplies)
{
    Tensor t(1, 2);
    t(0, 0) = 3.0f;
    t(0, 1) = 3.0f;
    Tensor gain(2);
    gain(0) = 2.0f;
    gain(1) = 1.0f;
    rmsNormRows(t, gain);
    EXPECT_NEAR(t(0, 0) / t(0, 1), 2.0f, 1e-5);
}

TEST(RmsNorm, MismatchedGainPanics)
{
    // Historical bug: a non-empty gain of the wrong length was
    // silently ignored, producing un-gained output.
    Tensor t(2, 4);
    t.fill(1.0f);
    Tensor gain(3);
    gain.fill(2.0f);
    EXPECT_DEATH(rmsNormRows(t, gain), "gain numel");
}

TEST(RmsNorm, DegenerateShapesAreNoops)
{
    Tensor empty_gain;
    Tensor zero_cols(4, 0);
    rmsNormRows(zero_cols, empty_gain); // historically 0/0 -> NaN fill
    EXPECT_EQ(zero_cols.numel(), 0);
    Tensor zero_rows(0, 5);
    rmsNormRows(zero_rows, empty_gain);
    EXPECT_EQ(zero_rows.rows(), 0);
    // One column: normalizes to +/- sqrt(1 + eps-ish) sign-preserving.
    Tensor one(2, 1);
    one(0, 0) = -7.0f;
    one(1, 0) = 0.5f;
    rmsNormRows(one, empty_gain);
    EXPECT_NEAR(one(0, 0), -1.0f, 1e-5);
    EXPECT_NEAR(one(1, 0), 1.0f, 1e-5);
}

TEST(Activations, SiluAndGeluShapes)
{
    Tensor t(1, 3);
    t(0, 0) = 0.0f;
    t(0, 1) = 10.0f;
    t(0, 2) = -10.0f;
    Tensor g = t;
    siluInPlace(t);
    EXPECT_NEAR(t(0, 0), 0.0f, 1e-6);
    EXPECT_NEAR(t(0, 1), 10.0f, 1e-3);
    EXPECT_NEAR(t(0, 2), 0.0f, 1e-3);
    geluInPlace(g);
    EXPECT_NEAR(g(0, 0), 0.0f, 1e-6);
    EXPECT_NEAR(g(0, 1), 10.0f, 1e-3);
}

TEST(Activations, EmptyTensorsAreNoops)
{
    Tensor a(0, 8);
    siluInPlace(a);
    geluInPlace(a);
    EXPECT_EQ(a.numel(), 0);
    Tensor b(8, 0);
    siluInPlace(b);
    geluInPlace(b);
    EXPECT_EQ(b.numel(), 0);
}

TEST(Similarity, CosineOfParallelVectorsIsOne)
{
    const float a[4] = {1, 2, 3, 4};
    const float b[4] = {2, 4, 6, 8};
    EXPECT_NEAR(cosineSimilarity(a, b, 4), 1.0f, 1e-6);
}

TEST(Similarity, CosineOfOrthogonalVectorsIsZero)
{
    const float a[2] = {1, 0};
    const float b[2] = {0, 1};
    EXPECT_NEAR(cosineSimilarity(a, b, 2), 0.0f, 1e-6);
}

TEST(Similarity, ZeroVectorNeverMatches)
{
    const float a[3] = {0, 0, 0};
    const float b[3] = {1, 2, 3};
    EXPECT_EQ(cosineSimilarity(a, b, 3), 0.0f);
}

TEST(Similarity, PrenormAgreesWithDirect)
{
    Rng rng(8);
    Tensor t = randomTensor(rng, 2, 32);
    const float na = l2Norm(t.row(0), 32);
    const float nb = l2Norm(t.row(1), 32);
    EXPECT_NEAR(cosineSimilarity(t.row(0), t.row(1), 32),
                cosineSimilarityPrenorm(t.row(0), na, t.row(1), nb, 32),
                1e-6);
}

TEST(Quant, RoundTripErrorBounded)
{
    Rng rng(9);
    const Tensor t = randomTensor(rng, 16, 64, 2.0);
    const Tensor q = int8RoundTrip(t);
    // Max error per element is scale/2 = absmax/254.
    for (int64_t i = 0; i < 16; ++i) {
        float absmax = 0.0f;
        for (int64_t j = 0; j < 64; ++j) {
            absmax = std::max(absmax, std::abs(t(i, j)));
        }
        for (int64_t j = 0; j < 64; ++j) {
            EXPECT_LE(std::abs(t(i, j) - q(i, j)),
                      absmax / 127.0f * 0.5f + 1e-6f);
        }
    }
}

TEST(Quant, Int8GemmApproximatesFloatGemm)
{
    Rng rng(10);
    const Tensor a = randomTensor(rng, 8, 32);
    const Tensor b = randomTensor(rng, 32, 8);
    Tensor cf, cq;
    gemm(a, b, cf);
    gemmInt8(a, b, cq);
    EXPECT_LT(relativeError(cq, cf), 0.05);
}

TEST(Quant, ScalesArePerRow)
{
    Tensor t(2, 2);
    t(0, 0) = 100.0f;
    t(0, 1) = -50.0f;
    t(1, 0) = 0.01f;
    t(1, 1) = 0.005f;
    const QuantizedMatrix q = quantizeRows(t);
    EXPECT_NEAR(q.scales[0], 100.0f / 127.0f, 1e-5);
    EXPECT_NEAR(q.scales[1], 0.01f / 127.0f, 1e-7);
    // Small-magnitude row keeps relative precision.
    const Tensor d = dequantize(q);
    EXPECT_NEAR(d(1, 1), 0.005f, 1e-4);
}

} // namespace
} // namespace focus
